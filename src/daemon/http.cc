#include "daemon/http.hh"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

namespace reqisc::daemon
{

namespace
{

std::string
toLower(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    return s;
}

std::string
trim(const std::string &s)
{
    std::size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

const char *
statusText(int status)
{
    switch (status) {
    case 200: return "OK";
    case 202: return "Accepted";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 409: return "Conflict";
    case 410: return "Gone";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    default: return "Unknown";
    }
}

/** Blocking full write (the socket has a send timeout). */
bool
writeAll(int fd, const std::string &data)
{
    std::size_t off = 0;
    while (off < data.size()) {
        const ssize_t n = ::send(fd, data.data() + off,
                                 data.size() - off, MSG_NOSIGNAL);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

} // namespace

const std::string *
HttpRequest::header(const std::string &name) const
{
    const std::string key = toLower(name);
    for (const auto &[n, v] : headers)
        if (n == key)
            return &v;
    return nullptr;
}

HttpServer::HttpServer(HttpServerOptions opts, Handler handler)
    : opts_(std::move(opts)), handler_(std::move(handler))
{
}

HttpServer::~HttpServer()
{
    stop();
}

bool
HttpServer::start(std::string &error)
{
    listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd_ < 0) {
        error = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    const int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(opts_.port));
    if (::inet_pton(AF_INET, opts_.host.c_str(), &addr.sin_addr) !=
        1) {
        error = "invalid listen address '" + opts_.host + "'";
        ::close(listenFd_);
        listenFd_ = -1;
        return false;
    }
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) < 0) {
        error = std::string("bind: ") + std::strerror(errno);
        ::close(listenFd_);
        listenFd_ = -1;
        return false;
    }
    if (::listen(listenFd_, opts_.backlog) < 0) {
        error = std::string("listen: ") + std::strerror(errno);
        ::close(listenFd_);
        listenFd_ = -1;
        return false;
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(listenFd_,
                      reinterpret_cast<sockaddr *>(&bound),
                      &len) == 0)
        port_ = ntohs(bound.sin_port);
    stopping_.store(false);
    acceptThread_ = std::thread([this] { acceptLoop(); });
    const int n = std::max(1, opts_.handlerThreads);
    handlers_.reserve(n);
    for (int i = 0; i < n; ++i)
        handlers_.emplace_back([this] { handlerLoop(); });
    started_ = true;
    return true;
}

void
HttpServer::stop()
{
    if (!started_)
        return;
    stopping_.store(true);
    cv_.notify_all();
    if (acceptThread_.joinable())
        acceptThread_.join();
    for (std::thread &t : handlers_)
        if (t.joinable())
            t.join();
    handlers_.clear();
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
    }
    // Close connections accepted but never picked up by a handler.
    for (auto &[fd, peer] : conns_) {
        (void)peer;
        ::close(fd);
    }
    conns_.clear();
    started_ = false;
}

void
HttpServer::acceptLoop()
{
    while (!stopping_.load()) {
        pollfd pfd{listenFd_, POLLIN, 0};
        const int r = ::poll(&pfd, 1, 100 /* ms */);
        if (r <= 0)
            continue;  // timeout (re-check stopping_) or EINTR
        sockaddr_in peer{};
        socklen_t len = sizeof(peer);
        const int fd = ::accept(
            listenFd_, reinterpret_cast<sockaddr *>(&peer), &len);
        if (fd < 0)
            continue;
        timeval tv{};
        tv.tv_sec = opts_.ioTimeoutSeconds;
        ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
        ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
        char ip[INET_ADDRSTRLEN] = "?";
        ::inet_ntop(AF_INET, &peer.sin_addr, ip, sizeof(ip));
        std::string who =
            std::string(ip) + ":" + std::to_string(ntohs(peer.sin_port));
        {
            std::lock_guard<std::mutex> lk(mu_);
            conns_.emplace_back(fd, std::move(who));
        }
        cv_.notify_one();
    }
}

void
HttpServer::handlerLoop()
{
    for (;;) {
        int fd = -1;
        std::string peer;
        {
            std::unique_lock<std::mutex> lk(mu_);
            cv_.wait(lk, [this] {
                return stopping_.load() || !conns_.empty();
            });
            if (conns_.empty())
                return;  // stopping and nothing left to serve
            fd = conns_.front().first;
            peer = std::move(conns_.front().second);
            conns_.pop_front();
        }
        serveConnection(fd, peer);
        ::close(fd);
    }
}

HttpResponse
HttpServer::makeError(int status, const std::string &message)
{
    HttpResponse res;
    res.status = status;
    if (errorBody_) {
        res.body = errorBody_(status, message);
    } else {
        res.contentType = "text/plain";
        res.body = message + "\n";
    }
    return res;
}

void
HttpServer::sendResponse(int fd, const HttpResponse &res)
{
    std::string out = "HTTP/1.1 " + std::to_string(res.status) + " " +
                      statusText(res.status) + "\r\n";
    out += "Content-Type: " + res.contentType + "\r\n";
    out += "Content-Length: " + std::to_string(res.body.size()) +
           "\r\n";
    for (const auto &[name, value] : res.headers)
        out += name + ": " + value + "\r\n";
    out += "Connection: close\r\n\r\n";
    out += res.body;
    writeAll(fd, out);
}

void
HttpServer::serveConnection(int fd, const std::string &peer)
{
    // ---- read the request head (line + headers) -----------------------
    std::string buf;
    std::size_t headEnd = std::string::npos;
    char chunk[4096];
    while (headEnd == std::string::npos) {
        if (buf.size() > opts_.maxHeaderBytes) {
            sendResponse(fd,
                         makeError(431, "request head too large"));
            return;
        }
        const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n <= 0)
            return;  // peer went away or socket timed out
        buf.append(chunk, static_cast<std::size_t>(n));
        headEnd = buf.find("\r\n\r\n");
    }

    HttpRequest req;
    req.peer = peer;
    {
        const std::string head = buf.substr(0, headEnd);
        std::size_t pos = 0;
        bool firstLine = true;
        while (pos <= head.size()) {
            std::size_t eol = head.find("\r\n", pos);
            if (eol == std::string::npos)
                eol = head.size();
            const std::string line = head.substr(pos, eol - pos);
            pos = eol + 2;
            if (firstLine) {
                firstLine = false;
                const std::size_t sp1 = line.find(' ');
                const std::size_t sp2 =
                    sp1 == std::string::npos
                        ? std::string::npos
                        : line.find(' ', sp1 + 1);
                if (sp2 == std::string::npos ||
                    line.compare(sp2 + 1, 8, "HTTP/1.1") != 0) {
                    sendResponse(
                        fd, makeError(400, "malformed request line"));
                    return;
                }
                req.method = line.substr(0, sp1);
                req.target = line.substr(sp1 + 1, sp2 - sp1 - 1);
            } else if (!line.empty()) {
                const std::size_t colon = line.find(':');
                if (colon == std::string::npos) {
                    sendResponse(fd,
                                 makeError(400, "malformed header"));
                    return;
                }
                req.headers.emplace_back(
                    toLower(trim(line.substr(0, colon))),
                    trim(line.substr(colon + 1)));
            }
            if (eol == head.size())
                break;
        }
    }
    if (req.header("transfer-encoding")) {
        sendResponse(
            fd, makeError(501, "transfer-encoding not supported"));
        return;
    }

    // ---- read the body (Content-Length framing) -----------------------
    std::size_t contentLength = 0;
    if (const std::string *cl = req.header("content-length")) {
        char *end = nullptr;
        const unsigned long long parsed =
            std::strtoull(cl->c_str(), &end, 10);
        if (end == cl->c_str() || *end != '\0') {
            sendResponse(fd,
                         makeError(400, "malformed content-length"));
            return;
        }
        contentLength = static_cast<std::size_t>(parsed);
    }
    if (contentLength > opts_.maxBodyBytes) {
        // Reject before reading: the client may be mid-upload, so
        // close without draining (Connection: close makes that
        // legitimate).
        sendResponse(fd, makeError(413, "request body too large"));
        return;
    }
    if (const std::string *expect = req.header("expect")) {
        if (toLower(*expect) == "100-continue" &&
            !writeAll(fd, "HTTP/1.1 100 Continue\r\n\r\n"))
            return;
    }
    req.body = buf.substr(headEnd + 4);
    while (req.body.size() < contentLength) {
        const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n <= 0)
            return;
        req.body.append(chunk, static_cast<std::size_t>(n));
    }
    if (req.body.size() > contentLength)
        req.body.resize(contentLength);  // ignore pipelined extra

    // ---- dispatch -----------------------------------------------------
    HttpResponse res;
    try {
        res = handler_(req);
    } catch (const std::exception &e) {
        res = makeError(500, e.what());
    } catch (...) {
        res = makeError(500, "unknown handler error");
    }
    sendResponse(fd, res);
}

const std::string *
HttpClientResponse::header(const std::string &name) const
{
    const std::string key = toLower(name);
    for (const auto &[n, v] : headers)
        if (n == key)
            return &v;
    return nullptr;
}

bool
httpRequest(
    const std::string &host, int port, const std::string &method,
    const std::string &target, const std::string &body,
    const std::vector<std::pair<std::string, std::string>> &headers,
    HttpClientResponse &out, std::string &error)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        error = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        error = "invalid address '" + host + "'";
        ::close(fd);
        return false;
    }
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) < 0) {
        error = std::string("connect: ") + std::strerror(errno);
        ::close(fd);
        return false;
    }
    std::string req = method + " " + target + " HTTP/1.1\r\n";
    req += "Host: " + host + "\r\n";
    for (const auto &[name, value] : headers)
        req += name + ": " + value + "\r\n";
    if (!body.empty() || method == "POST")
        req += "Content-Length: " + std::to_string(body.size()) +
               "\r\n";
    req += "Connection: close\r\n\r\n";
    req += body;
    if (!writeAll(fd, req)) {
        error = "send failed";
        ::close(fd);
        return false;
    }
    std::string response;
    char chunk[4096];
    for (;;) {
        const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            break;
        response.append(chunk, static_cast<std::size_t>(n));
    }
    ::close(fd);
    const std::size_t headEnd = response.find("\r\n\r\n");
    if (headEnd == std::string::npos) {
        error = "malformed response (no header terminator)";
        return false;
    }
    // Status line: HTTP/1.1 NNN Reason
    const std::size_t sp = response.find(' ');
    if (sp == std::string::npos || sp + 4 > headEnd) {
        error = "malformed status line";
        return false;
    }
    out.status = std::atoi(response.c_str() + sp + 1);
    out.headers.clear();
    std::size_t pos = response.find("\r\n") + 2;
    while (pos < headEnd) {
        std::size_t eol = response.find("\r\n", pos);
        if (eol == std::string::npos || eol > headEnd)
            eol = headEnd;
        const std::string line = response.substr(pos, eol - pos);
        const std::size_t colon = line.find(':');
        if (colon != std::string::npos)
            out.headers.emplace_back(
                toLower(trim(line.substr(0, colon))),
                trim(line.substr(colon + 1)));
        pos = eol + 2;
    }
    out.body = response.substr(headEnd + 4);
    return true;
}

} // namespace reqisc::daemon
