#include "daemon/daemon.hh"

#include <algorithm>
#include <cmath>
#include <utility>

#include "backend/json.hh"
#include "isa/schedule.hh"
#include "obs/log.hh"
#include "obs/metrics.hh"
#include "service/api.hh"
#include "service/error.hh"

namespace reqisc::daemon
{

namespace
{

using backend::JsonValue;
using service::ApiError;
using service::ApiException;
using service::makeError;
namespace errc = reqisc::service::errc;

/** Daemon-level metrics, registered lazily on first use. */
struct DaemonMetrics
{
    obs::Counter *requests;
    obs::Counter *jobsAccepted;
    obs::Counter *jobsCompleted;
    obs::Counter *jobsFailed;
    obs::Counter *jobsCanceled;
    obs::Counter *rejectsQueueFull;
    obs::Counter *rejectsQuota;
    obs::Counter *rejectsDraining;
    obs::Gauge *activeJobs;
};

DaemonMetrics &daemonMetrics()
{
    static DaemonMetrics m = [] {
        auto &r = obs::Registry::global();
        return DaemonMetrics{
            r.counter("reqisc_daemon_requests_total",
                      "HTTP requests handled"),
            r.counter("reqisc_daemon_jobs_accepted_total",
                      "Jobs admitted via POST /v1/jobs"),
            r.counter("reqisc_daemon_jobs_completed_total",
                      "Daemon jobs finished successfully"),
            r.counter("reqisc_daemon_jobs_failed_total",
                      "Daemon jobs finished with an error"),
            r.counter("reqisc_daemon_jobs_canceled_total",
                      "Jobs canceled while still queued"),
            r.counter("reqisc_daemon_rejects_queue_full_total",
                      "Submissions rejected 429 queue-full"),
            r.counter("reqisc_daemon_rejects_quota_total",
                      "Submissions rejected 429 quota-exceeded"),
            r.counter("reqisc_daemon_rejects_draining_total",
                      "Submissions rejected 503 shutting-down"),
            r.gauge("reqisc_daemon_active_jobs",
                    "Jobs queued or running in the daemon"),
        };
    }();
    return m;
}

/** {apiVersion, error: {...}} with the error's HTTP status. */
HttpResponse
errorResponse(const ApiError &err)
{
    JsonValue doc = JsonValue::makeObject();
    doc.set("apiVersion",
            JsonValue::makeNumber(
                static_cast<double>(service::api::kApiVersion)));
    doc.set("error", service::api::errorToJson(err));
    HttpResponse res;
    res.status = err.httpStatus;
    res.body = backend::dumpJson(doc, true);
    return res;
}

HttpResponse
jsonResponse(int status, const JsonValue &doc)
{
    HttpResponse res;
    res.status = status;
    res.body = backend::dumpJson(doc, true);
    return res;
}

/** Parse the {id} path segment; 0 on garbage (0 is never issued). */
std::uint64_t
parseId(const std::string &s)
{
    if (s.empty())
        return 0;
    std::uint64_t id = 0;
    for (char c : s) {
        if (c < '0' || c > '9')
            return 0;
        id = id * 10 + static_cast<std::uint64_t>(c - '0');
        if (id > (1ull << 62))
            return 0;
    }
    return id;
}

} // namespace

const char *
jobStateName(JobState s)
{
    switch (s) {
    case JobState::Queued: return "queued";
    case JobState::Running: return "running";
    case JobState::Done: return "done";
    case JobState::Failed: return "failed";
    case JobState::Canceled: return "canceled";
    }
    return "unknown";
}

CompileDaemon::CompileDaemon(DaemonOptions opts)
    : opts_(std::move(opts)),
      svc_(std::make_unique<service::CompileService>(opts_.service)),
      server_(opts_.http,
              [this](const HttpRequest &req) { return handle(req); })
{
    // Even transport-level failures (413, malformed framing) speak
    // the wire schema.
    server_.setErrorBody([](int status, const std::string &message) {
        const char *code = errc::kInternal;
        if (status == 413)
            code = errc::kBodyTooLarge;
        else if (status >= 400 && status < 500)
            code = errc::kBadRequest;
        ApiError err = makeError(code, message);
        err.httpStatus = status;
        JsonValue doc = JsonValue::makeObject();
        doc.set("apiVersion",
                JsonValue::makeNumber(static_cast<double>(
                    service::api::kApiVersion)));
        doc.set("error", service::api::errorToJson(err));
        return backend::dumpJson(doc, true);
    });
}

CompileDaemon::~CompileDaemon()
{
    // Stop serving first, then join the compile workers while the
    // registry (mu_, jobs_, drainedCv_) is still alive — their
    // onPass/onDone callbacks lock mu_ up to the very last job.
    server_.stop();
    svc_.reset();
}

bool
CompileDaemon::start(std::string &error)
{
    if (!server_.start(error))
        return false;
    obs::log(obs::LogLevel::Info, "daemon", "listening",
             {{"port", std::to_string(server_.port())},
              {"maxQueue", std::to_string(opts_.maxQueue)},
              {"quotaRate", std::to_string(opts_.quotaRate)}});
    return true;
}

void
CompileDaemon::beginDrain()
{
    std::lock_guard<std::mutex> lk(mu_);
    draining_ = true;
}

void
CompileDaemon::waitDrained()
{
    std::unique_lock<std::mutex> lk(mu_);
    drainedCv_.wait(lk, [this] { return active_ == 0; });
}

void
CompileDaemon::stop()
{
    server_.stop();
}

std::uint64_t
CompileDaemon::accepted() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return accepted_;
}

HttpResponse
CompileDaemon::handle(const HttpRequest &req)
{
    daemonMetrics().requests->inc();
    // Strip any query string; the v1 API does not use them.
    std::string path = req.target;
    if (const std::size_t q = path.find('?');
        q != std::string::npos)
        path.resize(q);

    if (path == "/healthz") {
        if (req.method != "GET")
            return errorResponse(makeError(errc::kMethodNotAllowed,
                                           "use GET on /healthz"));
        return handleHealth();
    }
    if (path == "/metrics") {
        if (req.method != "GET")
            return errorResponse(makeError(errc::kMethodNotAllowed,
                                           "use GET on /metrics"));
        return handleMetrics();
    }
    if (path == "/v1/jobs") {
        if (req.method != "POST")
            return errorResponse(makeError(errc::kMethodNotAllowed,
                                           "use POST on /v1/jobs"));
        return handleSubmit(req);
    }
    const std::string prefix = "/v1/jobs/";
    if (path.rfind(prefix, 0) == 0) {
        std::string rest = path.substr(prefix.size());
        bool wantResult = false;
        const std::string suffix = "/result";
        if (rest.size() > suffix.size() &&
            rest.compare(rest.size() - suffix.size(), suffix.size(),
                         suffix) == 0) {
            wantResult = true;
            rest.resize(rest.size() - suffix.size());
        }
        const std::uint64_t id = parseId(rest);
        if (id == 0)
            return errorResponse(makeError(
                errc::kNotFound, "no such job", path));
        if (wantResult) {
            if (req.method != "GET")
                return errorResponse(
                    makeError(errc::kMethodNotAllowed,
                              "use GET on /v1/jobs/{id}/result"));
            return handleResult(id);
        }
        if (req.method == "GET")
            return handleStatus(id);
        if (req.method == "DELETE")
            return handleCancel(id);
        return errorResponse(
            makeError(errc::kMethodNotAllowed,
                      "use GET or DELETE on /v1/jobs/{id}"));
    }
    return errorResponse(
        makeError(errc::kNotFound, "no such route", path));
}

bool
CompileDaemon::admitQuotaLocked(const HttpRequest &req,
                                HttpResponse &res)
{
    if (opts_.quotaRate <= 0.0)
        return true;
    // The peer IP scopes the key (the port changes per connection),
    // with the client-supplied X-Client-Id refining it — a header
    // alone must not mint unaccountable fresh buckets.
    std::string key = req.peer.substr(0, req.peer.find(':'));
    if (const std::string *cid = req.header("x-client-id"))
        key += '|' + *cid;

    const auto now = std::chrono::steady_clock::now();
    // Periodically sweep buckets idle long enough to be full again:
    // erasing one is indistinguishable from keeping it (a fresh
    // bucket starts at quotaBurst), and the map stays bounded by the
    // recent client set instead of every client ever seen.
    if (++quotaSweep_ >= 256) {
        quotaSweep_ = 0;
        for (auto it = quotas_.begin(); it != quotas_.end();) {
            const double idle =
                std::chrono::duration<double>(
                    now - it->second.lastRefill)
                    .count();
            if (it->second.tokens + idle * opts_.quotaRate >=
                opts_.quotaBurst)
                it = quotas_.erase(it);
            else
                ++it;
        }
    }

    QuotaBucket &b = quotas_[key];
    if (!b.initialized) {
        b.tokens = opts_.quotaBurst;
        b.lastRefill = now;
        b.initialized = true;
    } else {
        const double elapsed =
            std::chrono::duration<double>(now - b.lastRefill)
                .count();
        b.tokens = std::min(opts_.quotaBurst,
                            b.tokens + elapsed * opts_.quotaRate);
        b.lastRefill = now;
    }
    if (b.tokens >= 1.0) {
        b.tokens -= 1.0;
        return true;
    }
    daemonMetrics().rejectsQuota->inc();
    const double waitSeconds =
        (1.0 - b.tokens) / opts_.quotaRate;
    res = errorResponse(makeError(
        errc::kQuotaExceeded,
        "client submission quota exhausted", key));
    res.headers.emplace_back(
        "Retry-After",
        std::to_string(std::max(
            1, static_cast<int>(std::ceil(waitSeconds)))));
    return false;
}

void
CompileDaemon::recordFinishedLocked(std::uint64_t id)
{
    if (opts_.maxFinished == 0)
        return;
    finishedOrder_.push_back(id);
    while (finishedOrder_.size() > opts_.maxFinished) {
        jobs_.erase(finishedOrder_.front());
        finishedOrder_.pop_front();
    }
}

HttpResponse
CompileDaemon::handleSubmit(const HttpRequest &req)
{
    // Fast-path drain rejection before the body is even parsed; the
    // authoritative check is repeated inside the admission section
    // below, where it cannot race beginDrain()/waitDrained().
    {
        std::lock_guard<std::mutex> lk(mu_);
        if (draining_) {
            daemonMetrics().rejectsDraining->inc();
            HttpResponse res = errorResponse(makeError(
                errc::kShuttingDown,
                "daemon is draining; resubmit elsewhere"));
            res.headers.emplace_back("Retry-After", "1");
            return res;
        }
    }

    service::CompileRequest creq;
    try {
        const JsonValue body =
            backend::parseJson(req.body, "request");
        creq = service::api::compileRequestFromJson(body);
    } catch (const ApiException &e) {
        return errorResponse(e.error());
    } catch (const backend::JsonError &e) {
        return errorResponse(
            makeError(errc::kBadRequest, e.what()));
    }

    auto rec = std::make_shared<JobRecord>();
    rec->name = creq.name;
    if (creq.schedule)
        rec->scheduleStrategy =
            isa::strategyName(creq.scheduleOptions.strategy);

    // Stream per-pass progress into the record; the first trace also
    // flips the job to Running (a worker has it).
    creq.onPass = [this, rec](const compiler::PassTrace &t) {
        std::lock_guard<std::mutex> lk(mu_);
        if (rec->state == JobState::Queued)
            rec->state = JobState::Running;
        rec->progress.push_back(t);
    };
    creq.onDone = [this, rec](service::JobResult res) {
        const bool ok = res.ok;
        {
            std::lock_guard<std::mutex> lk(mu_);
            rec->state = ok ? JobState::Done : JobState::Failed;
            rec->result = std::move(res);
            --active_;
            daemonMetrics().activeJobs->set(
                static_cast<double>(active_));
            recordFinishedLocked(rec->id);
        }
        (ok ? daemonMetrics().jobsCompleted
            : daemonMetrics().jobsFailed)
            ->inc();
        drainedCv_.notify_all();
    };

    std::uint64_t id = 0;
    {
        // Every admission decision and the submit under ONE lock:
        // concurrent submissions cannot squeeze past the bound, a
        // submission cannot slip in after waitDrained() observed an
        // empty registry, and the worker callbacks block on this
        // mutex until the record is indexed.
        std::lock_guard<std::mutex> lk(mu_);
        if (draining_) {
            daemonMetrics().rejectsDraining->inc();
            HttpResponse res = errorResponse(makeError(
                errc::kShuttingDown,
                "daemon is draining; resubmit elsewhere"));
            res.headers.emplace_back("Retry-After", "1");
            return res;
        }
        if (opts_.maxQueue && active_ >= opts_.maxQueue) {
            daemonMetrics().rejectsQueueFull->inc();
            HttpResponse res = errorResponse(makeError(
                errc::kQueueFull,
                "admission queue is full (" +
                    std::to_string(opts_.maxQueue) + " jobs)"));
            res.headers.emplace_back("Retry-After", "1");
            return res;
        }
        // Quota last: a submission bounced by the drain or the queue
        // bound must not charge the client's bucket.
        HttpResponse quotaRes;
        if (!admitQuotaLocked(req, quotaRes))
            return quotaRes;
        id = svc_->submit(std::move(creq));
        rec->id = id;
        jobs_.emplace(id, rec);
        ++accepted_;
        ++active_;
        daemonMetrics().jobsAccepted->inc();
        daemonMetrics().activeJobs->set(
            static_cast<double>(active_));
    }

    JsonValue doc = JsonValue::makeObject();
    doc.set("apiVersion",
            JsonValue::makeNumber(
                static_cast<double>(service::api::kApiVersion)));
    doc.set("id", JsonValue::makeNumber(static_cast<double>(id)));
    doc.set("status", JsonValue::makeString("queued"));
    return jsonResponse(202, doc);
}

HttpResponse
CompileDaemon::handleStatus(std::uint64_t id)
{
    std::lock_guard<std::mutex> lk(mu_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end())
        return errorResponse(makeError(
            errc::kNotFound, "no such job", std::to_string(id)));
    const JobRecord &rec = *it->second;
    JsonValue doc = JsonValue::makeObject();
    doc.set("apiVersion",
            JsonValue::makeNumber(
                static_cast<double>(service::api::kApiVersion)));
    doc.set("id", JsonValue::makeNumber(static_cast<double>(id)));
    doc.set("name", JsonValue::makeString(rec.name));
    doc.set("status",
            JsonValue::makeString(jobStateName(rec.state)));
    JsonValue passes = JsonValue::makeArray();
    for (const compiler::PassTrace &t : rec.progress)
        passes.push(service::api::passTraceToJson(t));
    doc.set("passes", std::move(passes));
    if (rec.state == JobState::Done ||
        rec.state == JobState::Failed) {
        doc.set("ok", JsonValue::makeBool(rec.result.ok));
        doc.set("seconds",
                JsonValue::makeNumber(rec.result.seconds));
        if (!rec.result.ok)
            doc.set("error", service::api::errorToJson(
                                 rec.result.errorInfo));
    }
    return jsonResponse(200, doc);
}

HttpResponse
CompileDaemon::handleResult(std::uint64_t id)
{
    std::lock_guard<std::mutex> lk(mu_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end())
        return errorResponse(makeError(
            errc::kNotFound, "no such job", std::to_string(id)));
    const JobRecord &rec = *it->second;
    switch (rec.state) {
    case JobState::Queued:
    case JobState::Running:
        return errorResponse(makeError(
            errc::kNotReady,
            "job is still " + std::string(jobStateName(rec.state)),
            std::to_string(id)));
    case JobState::Canceled:
        return errorResponse(makeError(
            errc::kCanceled, "job was canceled before running",
            std::to_string(id)));
    case JobState::Done:
    case JobState::Failed:
        break;
    }
    service::api::ResultEmitOptions emit;
    emit.artifacts = true;
    emit.isaText = true;
    emit.scheduleStrategy = rec.scheduleStrategy;
    return jsonResponse(
        200, service::api::jobResultToJson(rec.result, emit));
}

HttpResponse
CompileDaemon::handleCancel(std::uint64_t id)
{
    std::lock_guard<std::mutex> lk(mu_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end())
        return errorResponse(makeError(
            errc::kNotFound, "no such job", std::to_string(id)));
    JobRecord &rec = *it->second;
    if (rec.state == JobState::Canceled) {
        // Idempotent: canceling twice reports the same outcome.
        JsonValue doc = JsonValue::makeObject();
        doc.set("apiVersion",
                JsonValue::makeNumber(static_cast<double>(
                    service::api::kApiVersion)));
        doc.set("id",
                JsonValue::makeNumber(static_cast<double>(id)));
        doc.set("status", JsonValue::makeString("canceled"));
        return jsonResponse(200, doc);
    }
    switch (svc_->cancel(id)) {
    case service::CompileService::CancelOutcome::Canceled: {
        rec.state = JobState::Canceled;
        --active_;
        daemonMetrics().activeJobs->set(
            static_cast<double>(active_));
        daemonMetrics().jobsCanceled->inc();
        recordFinishedLocked(id);
        drainedCv_.notify_all();
        JsonValue doc = JsonValue::makeObject();
        doc.set("apiVersion",
                JsonValue::makeNumber(static_cast<double>(
                    service::api::kApiVersion)));
        doc.set("id",
                JsonValue::makeNumber(static_cast<double>(id)));
        doc.set("status", JsonValue::makeString("canceled"));
        return jsonResponse(200, doc);
    }
    case service::CompileService::CancelOutcome::Running:
        return errorResponse(makeError(
            errc::kNotCancelable,
            "job is already running; cancellation never "
            "interrupts a compile",
            std::to_string(id)));
    case service::CompileService::CancelOutcome::Finished:
    case service::CompileService::CancelOutcome::Unknown:
        break;
    }
    return errorResponse(makeError(errc::kAlreadyCompleted,
                                   "job already completed",
                                   std::to_string(id)));
}

HttpResponse
CompileDaemon::handleHealth()
{
    JsonValue doc = JsonValue::makeObject();
    doc.set("status", JsonValue::makeString("ok"));
    std::lock_guard<std::mutex> lk(mu_);
    doc.set("draining", JsonValue::makeBool(draining_));
    doc.set("activeJobs",
            JsonValue::makeNumber(static_cast<double>(active_)));
    doc.set("accepted",
            JsonValue::makeNumber(static_cast<double>(accepted_)));
    return jsonResponse(200, doc);
}

HttpResponse
CompileDaemon::handleMetrics()
{
    HttpResponse res;
    res.contentType = "text/plain; version=0.0.4";
    res.body = obs::metricsSnapshot();
    return res;
}

} // namespace reqisc::daemon
