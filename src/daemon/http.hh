/**
 * @file
 * Dependency-free HTTP/1.1 server for reqisc-compiled: a hand-rolled
 * POSIX socket loop and request parser, deliberately small because
 * the container build must not grow third-party dependencies.
 *
 * Model: one listener thread accepts connections (poll with a short
 * timeout so stop() is prompt) and hands the sockets to a fixed pool
 * of handler threads; each connection carries exactly one request
 * (every response says `Connection: close`). That trades keep-alive
 * throughput for a server with no connection state machine — the
 * right trade for a compile daemon whose requests are milliseconds
 * of framing around seconds of compilation.
 *
 * Protocol support is exactly what the daemon's clients need:
 * request line + headers + Content-Length body, `Expect:
 * 100-continue` (acknowledged before the body is read), and an
 * enforced body cap (the oversized request is rejected with 413 and
 * the connection dropped without reading the rest). Chunked
 * transfer-encoding is rejected as unsupported.
 */

#ifndef REQISC_DAEMON_HTTP_HH
#define REQISC_DAEMON_HTTP_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace reqisc::daemon
{

/** One parsed request. */
struct HttpRequest
{
    std::string method;  //!< "GET", "POST", "DELETE", ...
    std::string target;  //!< request target, e.g. "/v1/jobs/7"
    /** Header fields, names lowercased, in arrival order. */
    std::vector<std::pair<std::string, std::string>> headers;
    std::string body;
    /** Peer address ("ip:port") — its IP scopes the quota key. */
    std::string peer;

    /** Case-insensitive header lookup; nullptr when absent. */
    const std::string *header(const std::string &name) const;
};

/** One response; the server adds framing headers itself. */
struct HttpResponse
{
    int status = 200;
    std::string contentType = "application/json";
    std::string body;
    /** Extra headers (e.g. {"Retry-After", "2"}). */
    std::vector<std::pair<std::string, std::string>> headers;
};

struct HttpServerOptions
{
    std::string host = "127.0.0.1";
    /** TCP port; 0 binds an ephemeral port (read it from port()). */
    int port = 0;
    int handlerThreads = 2;
    int backlog = 64;
    /** Reject request bodies larger than this with 413. */
    std::size_t maxBodyBytes = 4u << 20;
    /** Cap on the request line + headers (malformed-client guard). */
    std::size_t maxHeaderBytes = 16u << 10;
    /** Per-socket receive/send timeout, seconds. */
    int ioTimeoutSeconds = 10;
};

class HttpServer
{
  public:
    using Handler = std::function<HttpResponse(const HttpRequest &)>;
    /**
     * Formats the body of server-generated error responses (413,
     * 400 on a malformed request). Receives the status and a
     * one-line message; the daemon installs the JSON error shape
     * here so even framing errors speak the wire schema.
     */
    using ErrorBody = std::function<std::string(int status,
                                                const std::string &)>;

    HttpServer(HttpServerOptions opts, Handler handler);
    ~HttpServer();  //!< stop()s if still running

    HttpServer(const HttpServer &) = delete;
    HttpServer &operator=(const HttpServer &) = delete;

    /** Override the plain-text default for generated error bodies. */
    void setErrorBody(ErrorBody fn) { errorBody_ = std::move(fn); }

    /** Bind + listen + spawn threads. False (with error) on failure. */
    bool start(std::string &error);

    /** The bound port (the ephemeral one when options.port was 0). */
    int port() const { return port_; }

    /**
     * Stop accepting, finish requests already being handled, join
     * all threads. Idempotent.
     */
    void stop();

  private:
    void acceptLoop();
    void handlerLoop();
    void serveConnection(int fd, const std::string &peer);
    void sendResponse(int fd, const HttpResponse &res);
    HttpResponse makeError(int status, const std::string &message);

    HttpServerOptions opts_;
    Handler handler_;
    ErrorBody errorBody_;
    int listenFd_ = -1;
    int port_ = 0;
    std::atomic<bool> stopping_{false};
    std::thread acceptThread_;
    std::vector<std::thread> handlers_;
    std::mutex mu_;
    std::condition_variable cv_;
    /** Accepted sockets waiting for a handler: {fd, peer}. */
    std::deque<std::pair<int, std::string>> conns_;
    bool started_ = false;
};

/** A client-side response (see httpRequest). */
struct HttpClientResponse
{
    int status = 0;
    std::vector<std::pair<std::string, std::string>> headers;
    std::string body;

    const std::string *header(const std::string &name) const;
};

/**
 * Minimal blocking HTTP/1.1 client for the loopback uses in this
 * repo (tests, bench_daemon): one request per connection, reads to
 * EOF (the server always answers `Connection: close`). Returns
 * false and fills `error` on connect/IO/parse failure.
 */
bool httpRequest(
    const std::string &host, int port, const std::string &method,
    const std::string &target, const std::string &body,
    const std::vector<std::pair<std::string, std::string>> &headers,
    HttpClientResponse &out, std::string &error);

} // namespace reqisc::daemon

#endif // REQISC_DAEMON_HTTP_HH
