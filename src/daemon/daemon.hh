/**
 * @file
 * reqisc-compiled — the compile service as a network daemon, on the
 * v1 job API (service/api.hh):
 *
 *     POST   /v1/jobs           submit a compile job (202 + id)
 *     GET    /v1/jobs/{id}      status + per-pass progress so far
 *     GET    /v1/jobs/{id}/result  the full result document
 *     DELETE /v1/jobs/{id}      cancel (only a still-queued job)
 *     GET    /healthz           liveness (+ draining flag)
 *     GET    /metrics           Prometheus exposition (src/obs)
 *
 * The daemon is a thin registry over a service::CompileService: a
 * submission is validated (strict schema, pipeline spec checked up
 * front), admitted against a bounded queue and per-client token
 * buckets, and handed to the service with an onPass hook (streaming
 * per-pass progress into the registry) and an onDone hook (storing
 * the result). Overload is always an immediate structured 429 with
 * Retry-After — the daemon never blocks a client on a full queue.
 *
 * Graceful drain: beginDrain() makes every new submission a 503
 * `shutting-down` while queued and running jobs keep going;
 * waitDrained() returns once none are left. The reqisc-compiled
 * binary wires SIGTERM to exactly that, then flushes the persistent
 * caches and the flight recorder — an accepted job is never lost to
 * a shutdown.
 */

#ifndef REQISC_DAEMON_DAEMON_HH
#define REQISC_DAEMON_DAEMON_HH

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "daemon/http.hh"
#include "service/service.hh"

namespace reqisc::daemon
{

struct DaemonOptions
{
    service::ServiceOptions service;
    HttpServerOptions http;
    /**
     * Admission bound: jobs queued-or-running beyond which POST
     * /v1/jobs answers 429 `queue-full` (with Retry-After) instead
     * of enqueueing. 0 disables the bound.
     */
    std::size_t maxQueue = 64;
    /**
     * Per-client token bucket (0 rate disables quotas): each client
     * — keyed by peer IP, refined by the `X-Client-Id` header when
     * sent — accrues `quotaRate` submissions/second up to
     * `quotaBurst`. An empty bucket answers 429 `quota-exceeded` +
     * Retry-After. Quota is only charged for admitted submissions;
     * buckets idle long enough to be full again are swept out.
     */
    double quotaRate = 0.0;
    double quotaBurst = 8.0;
    /**
     * Retain at most this many finished (done/failed/canceled) job
     * records, evicting the oldest-finished beyond the cap — a
     * long-running daemon must not grow with every job it ever
     * served. An evicted job's status/result answer 404. 0 keeps
     * every record forever.
     */
    std::size_t maxFinished = 1024;
};

/** Registry state of one submitted job. */
enum class JobState
{
    Queued,
    Running,
    Done,
    Failed,
    Canceled,
};

const char *jobStateName(JobState s);

class CompileDaemon
{
  public:
    explicit CompileDaemon(DaemonOptions opts);
    ~CompileDaemon();

    CompileDaemon(const CompileDaemon &) = delete;
    CompileDaemon &operator=(const CompileDaemon &) = delete;

    /** Start the HTTP server. False (with error) on bind failure. */
    bool start(std::string &error);

    /** The bound TCP port. */
    int port() const { return server_.port(); }

    /** Stop admitting jobs (503 shutting-down); serving continues. */
    void beginDrain();
    /** Block until no job is queued or running. */
    void waitDrained();
    /** Stop the HTTP server (after draining, normally). */
    void stop();

    /** Jobs accepted over the daemon's lifetime. */
    std::uint64_t accepted() const;

    /** The service underneath (cache flush, stats). */
    service::CompileService &service() { return *svc_; }

  private:
    struct JobRecord
    {
        std::uint64_t id = 0;
        std::string name;
        JobState state = JobState::Queued;
        std::string scheduleStrategy;  //!< label for the result doc
        /** Pass traces streamed from the worker, in pass order. */
        std::vector<compiler::PassTrace> progress;
        service::JobResult result;  //!< filled when Done/Failed
    };

    struct QuotaBucket
    {
        double tokens = 0.0;
        std::chrono::steady_clock::time_point lastRefill;
        bool initialized = false;
    };

    HttpResponse handle(const HttpRequest &req);
    HttpResponse handleSubmit(const HttpRequest &req);
    HttpResponse handleStatus(std::uint64_t id);
    HttpResponse handleResult(std::uint64_t id);
    HttpResponse handleCancel(std::uint64_t id);
    HttpResponse handleHealth();
    HttpResponse handleMetrics();

    /**
     * False + a filled response when the client's bucket is empty.
     * Requires mu_ held: the token is consumed in the same critical
     * section that admits the job, so a rejected submission never
     * charges the bucket.
     */
    bool admitQuotaLocked(const HttpRequest &req, HttpResponse &res);

    /** Note a Done/Failed/Canceled id; evicts past maxFinished. */
    void recordFinishedLocked(std::uint64_t id);

    DaemonOptions opts_;

    mutable std::mutex mu_;
    std::condition_variable drainedCv_;
    /**
     * shared_ptr so the worker-side onPass/onDone closures keep the
     * record alive independent of map mutations (incl. eviction).
     */
    std::map<std::uint64_t, std::shared_ptr<JobRecord>> jobs_;
    /** Finished job ids in completion order, for eviction. */
    std::deque<std::uint64_t> finishedOrder_;
    std::map<std::string, QuotaBucket> quotas_;
    std::uint64_t quotaSweep_ = 0;  //!< admissions since last sweep
    std::uint64_t accepted_ = 0;
    std::size_t active_ = 0;  //!< jobs queued or running
    bool draining_ = false;

    /**
     * Declared after the registry state on purpose: destroying the
     * service joins workers whose onPass/onDone callbacks lock mu_
     * and touch jobs_/active_/drainedCv_, so it must die first (the
     * destructor also resets it explicitly, after stopping the
     * server).
     */
    std::unique_ptr<service::CompileService> svc_;
    HttpServer server_;
};

} // namespace reqisc::daemon

#endif // REQISC_DAEMON_DAEMON_HH
