/**
 * @file
 * reqisc-compiled — the compile service as a long-running network
 * daemon (see daemon/daemon.hh for the route table).
 *
 *   reqisc-compiled --port 8080 --jobs 4 --cache-dir /var/cache/reqisc
 *   reqisc-compiled --port 0 --port-file /tmp/port   # ephemeral
 *
 * Shutdown: SIGTERM (or SIGINT) starts a graceful drain — the
 * listener keeps answering but every new submission gets 503
 * `shutting-down`, queued and running jobs finish, per-client
 * results stay fetchable until the last in-flight job completes —
 * then the persistent caches and the flight recorder are flushed
 * and the process exits 0. An accepted job is never lost to a
 * shutdown.
 *
 * Exit status: 0 clean shutdown, 1 runtime failure (bind error),
 * 2 usage errors (bad flag, malformed chip file).
 */

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>

#include "backend/backend.hh"
#include "backend/json.hh"
#include "daemon/daemon.hh"
#include "obs/log.hh"
#include "obs/metrics.hh"
#include "obs/obs.hh"
#include "service/api.hh"
#include "service/error.hh"

#ifndef REQISC_VERSION
#define REQISC_VERSION "unknown"
#endif

namespace
{

using namespace reqisc;

std::atomic<int> g_signal{0};

void
onSignal(int sig)
{
    g_signal.store(sig);
}

void
printUsage(std::ostream &os)
{
    os << "usage: reqisc-compiled [options]\n"
          "\n"
          "options:\n"
          "  --host ADDR           listen address (default: "
          "127.0.0.1)\n"
          "  --port N              TCP port; 0 = ephemeral "
          "(default: 8788)\n"
          "  --port-file FILE      write the bound port to FILE "
          "once listening\n"
          "  --jobs N              compile worker threads; 0 = all "
          "cores (default: 1)\n"
          "  --block-workers N     intra-job resynthesis workers "
          "(default: 1)\n"
          "  --cache-dir DIR       persist the SU(4) caches in DIR\n"
          "  --backend FILE        compile every job to the chip "
          "described by FILE\n"
          "  --max-queue N         admission bound: reject "
          "submissions with 429\n"
          "                        once N jobs are queued or "
          "running; 0 = unbounded\n"
          "                        (default: 64)\n"
          "  --quota-rate R        per-client token bucket: R "
          "submissions/second\n"
          "                        (default: 0 = quotas off)\n"
          "  --quota-burst B       bucket capacity (default: 8)\n"
          "  --max-finished N      retain at most N finished job "
          "records, evicting\n"
          "                        the oldest (status/result then "
          "404); 0 = keep all\n"
          "                        (default: 1024)\n"
          "  --max-body BYTES      reject larger request bodies "
          "with 413\n"
          "                        (default: 4194304)\n"
          "  --http-threads N      HTTP handler threads (default: "
          "2)\n"
          "  --flight-dump FILE    write the flight recorder's "
          "last-events dump\n"
          "                        on job failure, fatal signal and "
          "shutdown\n"
          "  --version             print the version and exit\n"
          "  --help                this text\n";
}

struct DaemonCli
{
    daemon::DaemonOptions opts;
    std::string portFile;
    std::string backendPath;
    std::string flightDump;
};

bool
parseArgs(int argc, char **argv, DaemonCli &cli)
{
    auto value = [&](int &i) -> const char * {
        if (i + 1 >= argc) {
            std::cerr << "reqisc-compiled: missing value for "
                      << argv[i] << "\n";
            return nullptr;
        }
        return argv[++i];
    };
    cli.opts.http.port = 8788;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            printUsage(std::cout);
            std::exit(0);
        } else if (arg == "--version") {
            std::cout << "reqisc-compiled " << REQISC_VERSION
                      << "\n";
            std::exit(0);
        } else if (arg == "--host") {
            const char *v = value(i);
            if (!v)
                return false;
            cli.opts.http.host = v;
        } else if (arg == "--port") {
            const char *v = value(i);
            if (!v)
                return false;
            cli.opts.http.port = std::atoi(v);
        } else if (arg == "--port-file") {
            const char *v = value(i);
            if (!v)
                return false;
            cli.portFile = v;
        } else if (arg == "--jobs") {
            const char *v = value(i);
            if (!v)
                return false;
            cli.opts.service.threads = std::atoi(v);
        } else if (arg == "--block-workers") {
            const char *v = value(i);
            if (!v)
                return false;
            cli.opts.service.blockWorkers = std::atoi(v);
        } else if (arg == "--cache-dir") {
            const char *v = value(i);
            if (!v)
                return false;
            cli.opts.service.cacheDir = v;
        } else if (arg == "--backend") {
            const char *v = value(i);
            if (!v)
                return false;
            cli.backendPath = v;
        } else if (arg == "--max-queue") {
            const char *v = value(i);
            if (!v)
                return false;
            cli.opts.maxQueue =
                static_cast<std::size_t>(std::atol(v));
        } else if (arg == "--quota-rate") {
            const char *v = value(i);
            if (!v)
                return false;
            cli.opts.quotaRate = std::atof(v);
        } else if (arg == "--quota-burst") {
            const char *v = value(i);
            if (!v)
                return false;
            cli.opts.quotaBurst = std::atof(v);
        } else if (arg == "--max-finished") {
            const char *v = value(i);
            if (!v)
                return false;
            cli.opts.maxFinished =
                static_cast<std::size_t>(std::atol(v));
        } else if (arg == "--max-body") {
            const char *v = value(i);
            if (!v)
                return false;
            cli.opts.http.maxBodyBytes =
                static_cast<std::size_t>(std::atol(v));
        } else if (arg == "--http-threads") {
            const char *v = value(i);
            if (!v)
                return false;
            cli.opts.http.handlerThreads = std::atoi(v);
        } else if (arg == "--flight-dump") {
            const char *v = value(i);
            if (!v)
                return false;
            cli.flightDump = v;
        } else {
            std::cerr << "reqisc-compiled: unknown option '" << arg
                      << "'\n";
            return false;
        }
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    DaemonCli cli;
    if (!parseArgs(argc, argv, cli)) {
        printUsage(std::cerr);
        return 2;
    }

    // /metrics must always have numbers: enable the metrics
    // registry (but not the tracer — span collection grows without
    // bound and a daemon runs indefinitely).
    obs::Registry::global().setEnabled(true);
    if (!cli.flightDump.empty()) {
        obs::flight::setDumpPath(cli.flightDump);
        obs::flight::installSignalHandlers();
    }

    if (!cli.backendPath.empty()) {
        try {
            cli.opts.service.backend =
                std::make_shared<const backend::Backend>(
                    backend::Backend::fromJsonFile(
                        cli.backendPath));
        } catch (const backend::JsonError &e) {
            // The one startup failure with a structured shape:
            // report it the way the wire would.
            const service::ApiError err = service::makeError(
                service::errc::kBadChipFile, e.what(),
                cli.backendPath);
            std::cerr << "reqisc-compiled: [" << err.code << "] "
                      << err.message << "\n";
            return 2;
        }
    }

    daemon::CompileDaemon d(cli.opts);
    std::string error;
    if (!d.start(error)) {
        std::cerr << "reqisc-compiled: " << error << "\n";
        return 1;
    }
    if (!cli.portFile.empty()) {
        std::ofstream out(cli.portFile, std::ios::trunc);
        out << d.port() << "\n";
        if (!out) {
            std::cerr << "reqisc-compiled: cannot write --port-file "
                      << cli.portFile << "\n";
            return 1;
        }
    }
    std::fprintf(stderr, "reqisc-compiled %s listening on %s:%d\n",
                 REQISC_VERSION, cli.opts.http.host.c_str(),
                 d.port());

    std::signal(SIGTERM, onSignal);
    std::signal(SIGINT, onSignal);
    while (g_signal.load() == 0)
        std::this_thread::sleep_for(
            std::chrono::milliseconds(100));

    // Graceful drain: refuse new work, let accepted work finish,
    // keep serving status/result polls the whole time.
    std::fprintf(stderr,
                 "reqisc-compiled: signal %d, draining...\n",
                 g_signal.load());
    d.beginDrain();
    d.waitDrained();
    d.stop();
    d.service().saveCaches();
    if (!cli.flightDump.empty())
        obs::flight::dumpNow("shutdown");
    std::fprintf(stderr, "reqisc-compiled: drained, bye\n");
    return 0;
}
