/**
 * @file
 * SABRE qubit routing and the SU(4)-aware mirroring-SABRE variant
 * (Section 5.3.2).
 *
 * Mirroring-SABRE adds a "last mapped layer" L of already-emitted 2Q
 * gates with no later gate on their wires; a SWAP whose physical pair
 * matches a gate in L is absorbed into that gate (replacing it by its
 * mirror), contributing zero #2Q overhead. Absorbable candidates that
 * also lower the heuristic cost below the no-swap baseline H0 are
 * preferred; otherwise the standard SABRE heuristic decides.
 */

#ifndef REQISC_ROUTE_SABRE_HH
#define REQISC_ROUTE_SABRE_HH

#include <vector>

#include "circuit/circuit.hh"
#include "route/topology.hh"

namespace reqisc::route
{

/** Routing configuration. */
struct RouteOptions
{
    bool mirroring = false;      //!< enable mirroring-SABRE
    double extendedWeight = 0.5; //!< W, lookahead weight
    int extendedSize = 20;       //!< |E|, lookahead window
    double decayIncrement = 0.001;
    int decayResetInterval = 5;
    bool reverseTraversalInit = true;  //!< SABRE-style initial layout
    unsigned seed = 7;
};

/** Routed circuit with mapping bookkeeping. */
struct RouteResult
{
    circuit::Circuit circuit;        //!< gates on physical wires
    std::vector<int> initialLayout;  //!< logical q starts on wire
    std::vector<int> finalLayout;    //!< logical q ends on wire
    int swapsInserted = 0;           //!< explicit SWAPs added
    int swapsAbsorbed = 0;           //!< SWAPs mirrored into L gates
};

/**
 * Route a logical circuit onto the topology. Every 2Q gate of the
 * output acts on connected physical wires. Inserted SWAPs appear as
 * Op::SWAP gates (callers lower or fuse them per ISA).
 */
RouteResult sabreRoute(const circuit::Circuit &logical,
                       const Topology &topo,
                       const RouteOptions &opts = {});

} // namespace reqisc::route

#endif // REQISC_ROUTE_SABRE_HH
