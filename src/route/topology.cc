#include "route/topology.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <deque>

namespace reqisc::route
{

Topology::Topology(int n, std::string name)
    : n_(n), name_(std::move(name)), adj_(n)
{
}

void
Topology::addEdge(int a, int b)
{
    assert(a != b && a >= 0 && b >= 0 && a < n_ && b < n_);
    if (connected(a, b))
        return;
    edges_.push_back(std::minmax(a, b));
    adj_[a].push_back(b);
    adj_[b].push_back(a);
}

bool
Topology::connected(int a, int b) const
{
    const auto &na = adj_[a];
    return std::find(na.begin(), na.end(), b) != na.end();
}

void
Topology::computeDistances()
{
    dist_.assign(n_, std::vector<int>(n_, 1 << 20));
    for (int s = 0; s < n_; ++s) {
        dist_[s][s] = 0;
        std::deque<int> queue{s};
        while (!queue.empty()) {
            const int u = queue.front();
            queue.pop_front();
            for (int v : adj_[u]) {
                if (dist_[s][v] > dist_[s][u] + 1) {
                    dist_[s][v] = dist_[s][u] + 1;
                    queue.push_back(v);
                }
            }
        }
    }
}

Topology
Topology::chain(int n)
{
    Topology t(n, "chain");
    for (int i = 0; i + 1 < n; ++i)
        t.addEdge(i, i + 1);
    t.computeDistances();
    return t;
}

Topology
Topology::grid(int rows, int cols)
{
    Topology t(rows * cols, "grid");
    for (int r = 0; r < rows; ++r)
        for (int c = 0; c < cols; ++c) {
            const int q = r * cols + c;
            if (c + 1 < cols)
                t.addEdge(q, q + 1);
            if (r + 1 < rows)
                t.addEdge(q, q + cols);
        }
    t.computeDistances();
    return t;
}

Topology
Topology::gridFor(int n)
{
    int cols = static_cast<int>(std::ceil(std::sqrt(n)));
    int rows = (n + cols - 1) / cols;
    return grid(rows, cols);
}

Topology
Topology::custom(int n, const std::vector<std::pair<int, int>> &edges,
                 std::string name)
{
    Topology t(n, std::move(name));
    for (const auto &[a, b] : edges)
        t.addEdge(a, b);
    t.computeDistances();
    return t;
}

bool
Topology::isConnected() const
{
    if (n_ <= 1)
        return true;
    for (int q = 1; q < n_; ++q)
        if (dist_[0][q] >= (1 << 20))
            return false;
    return true;
}

Topology
Topology::allToAll(int n)
{
    Topology t(n, "all2all");
    for (int a = 0; a < n; ++a)
        for (int b = a + 1; b < n; ++b)
            t.addEdge(a, b);
    t.computeDistances();
    return t;
}

} // namespace reqisc::route
