#include "route/sabre.hh"

#include <algorithm>
#include <cmath>
#include <deque>

#include "circuit/dag.hh"

namespace reqisc::route
{

using circuit::Circuit;
using circuit::Dag;
using circuit::Gate;
using circuit::Op;

namespace
{

/** Mutable routing state for one pass. */
struct Router
{
    const Circuit &logical;
    const Topology &topo;
    const RouteOptions &opts;
    Dag dag;

    std::vector<int> phys;      //!< logical q -> physical wire
    std::vector<int> host;      //!< physical wire -> logical q or -1
    std::vector<int> pending;   //!< unfinished predecessor count
    std::vector<bool> done;
    std::vector<double> decay;
    std::vector<int> lastTouch; //!< per wire: last emitted gate index

    Circuit out;
    int swapsInserted = 0;
    int swapsAbsorbed = 0;

    Router(const Circuit &l, const Topology &t, const RouteOptions &o,
           const std::vector<int> &init)
        : logical(l), topo(t), opts(o), dag(circuit::buildDag(l)),
          phys(init), host(t.numQubits(), -1),
          pending(l.size(), 0), done(l.size(), false),
          decay(t.numQubits(), 0.0), lastTouch(t.numQubits(), -1),
          out(t.numQubits())
    {
        for (int q = 0; q < l.numQubits(); ++q)
            host[phys[q]] = q;
        for (size_t i = 0; i < l.size(); ++i)
            pending[i] = static_cast<int>(dag.nodes[i].preds.size());
    }

    bool
    executable(size_t i) const
    {
        const Gate &g = logical[i];
        if (g.numQubits() == 1)
            return true;
        return topo.connected(phys[g.qubits[0]], phys[g.qubits[1]]);
    }

    void
    emitGate(size_t i)
    {
        Gate g = logical[i];
        for (int &q : g.qubits)
            q = phys[q];
        out.add(g);
        const int idx = static_cast<int>(out.size()) - 1;
        for (int q : out[idx].qubits)
            lastTouch[q] = idx;
        done[i] = true;
        for (int s : dag.nodes[i].succs)
            --pending[s];
    }

    void
    applySwap(int p1, int p2)
    {
        const int l1 = host[p1], l2 = host[p2];
        if (l1 >= 0)
            phys[l1] = p2;
        if (l2 >= 0)
            phys[l2] = p1;
        std::swap(host[p1], host[p2]);
        decay[p1] += opts.decayIncrement;
        decay[p2] += opts.decayIncrement;
    }

    /** Ready gates (all DAG predecessors emitted). */
    std::vector<size_t>
    readyGates() const
    {
        std::vector<size_t> r;
        for (size_t i = 0; i < logical.size(); ++i)
            if (!done[i] && pending[i] == 0)
                r.push_back(i);
        return r;
    }

    /** The next `count` 2Q gates beyond the front (lookahead set). */
    std::vector<size_t>
    extendedSet(const std::vector<size_t> &front) const
    {
        std::vector<size_t> ext;
        std::deque<size_t> queue(front.begin(), front.end());
        std::vector<bool> seen(logical.size(), false);
        for (size_t f : front)
            seen[f] = true;
        while (!queue.empty() &&
               static_cast<int>(ext.size()) < opts.extendedSize) {
            size_t i = queue.front();
            queue.pop_front();
            for (int s : dag.nodes[i].succs) {
                if (seen[s] || done[s])
                    continue;
                seen[s] = true;
                queue.push_back(s);
                if (logical[s].numQubits() == 2)
                    ext.push_back(s);
            }
        }
        return ext;
    }

    double
    mappingCost(const std::vector<size_t> &front2q,
                const std::vector<size_t> &ext,
                const std::vector<int> &mapping) const
    {
        double cost = 0.0;
        for (size_t i : front2q) {
            const Gate &g = logical[i];
            cost += topo.distance(mapping[g.qubits[0]],
                                  mapping[g.qubits[1]]);
        }
        cost /= std::max<size_t>(1, front2q.size());
        if (!ext.empty()) {
            double e = 0.0;
            for (size_t i : ext) {
                const Gate &g = logical[i];
                e += topo.distance(mapping[g.qubits[0]],
                                   mapping[g.qubits[1]]);
            }
            cost += opts.extendedWeight * e / ext.size();
        }
        return cost;
    }

    /**
     * True iff a SWAP on wires (p1, p2) can be absorbed by mirroring
     * an already-emitted 2Q gate. Trailing 1Q gates on p1/p2 are
     * allowed: SWAP(p,q) u(p) = u(q) SWAP(p,q), so they commute
     * through the inserted SWAP with relabelled wires. @p idx
     * receives the index of the gate to mirror.
     */
    bool
    absorbable(int p1, int p2, int &idx) const
    {
        // Walk back over trailing 1Q gates on p1 or p2; no other
        // gate may touch these wires after the mirror candidate.
        // Bounded scan keeps the candidate loop linear overall.
        int i = static_cast<int>(out.size()) - 1;
        const int floor_idx = std::max(0, i - 256);
        for (; i >= floor_idx; --i) {
            const Gate &g = out[static_cast<size_t>(i)];
            bool touches = false;
            for (int q : g.qubits)
                if (q == p1 || q == p2)
                    touches = true;
            if (!touches)
                continue;
            if (g.numQubits() == 1)
                continue;   // commutes through with a relabel
            break;
        }
        if (i < 0)
            return false;
        idx = i;
        const Gate &g = out[static_cast<size_t>(i)];
        if (!g.is2Q())
            return false;
        if (g.op != Op::U4 && g.op != Op::CAN && g.op != Op::CX &&
            g.op != Op::CZ && g.op != Op::ISWAP && g.op != Op::SQISW &&
            g.op != Op::B)
            return false;
        return (g.qubits[0] == p1 && g.qubits[1] == p2) ||
               (g.qubits[0] == p2 && g.qubits[1] == p1);
    }

    /** Mirror out[idx] and relabel the 1Q tail on wires (p1, p2). */
    void
    absorbSwap(int idx, int p1, int p2)
    {
        Gate &g = out[static_cast<size_t>(idx)];
        const qmath::Matrix swap_m = Gate::swap(0, 1).matrix();
        g = Gate::u4(g.qubits[0], g.qubits[1],
                     swap_m * g.matrix());
        for (size_t j = idx + 1; j < out.size(); ++j)
            for (int &q : out[j].qubits) {
                if (q == p1)
                    q = p2;
                else if (q == p2)
                    q = p1;
            }
        // lastTouch entries for p1/p2 swap with the relabel.
        std::swap(lastTouch[p1], lastTouch[p2]);
        if (lastTouch[p1] < idx)
            lastTouch[p1] = idx;
        if (lastTouch[p2] < idx)
            lastTouch[p2] = idx;
    }

    void
    run()
    {
        int stuck_swaps = 0;
        while (true) {
            // Execute everything executable.
            bool progressed = true;
            while (progressed) {
                progressed = false;
                for (size_t i : readyGates()) {
                    if (executable(i)) {
                        emitGate(i);
                        progressed = true;
                        stuck_swaps = 0;
                        std::fill(decay.begin(), decay.end(), 0.0);
                    }
                }
            }
            std::vector<size_t> ready = readyGates();
            if (ready.empty())
                break;
            std::vector<size_t> front2q;
            for (size_t i : ready)
                if (logical[i].numQubits() == 2)
                    front2q.push_back(i);
            assert(!front2q.empty());
            std::vector<size_t> ext = extendedSet(front2q);

            // Candidate SWAPs: edges touching a front-layer qubit.
            std::vector<std::pair<int, int>> cands;
            for (size_t i : front2q)
                for (int q : logical[i].qubits)
                    for (int nb : topo.neighbors(phys[q]))
                        cands.push_back(std::minmax(phys[q], nb));
            std::sort(cands.begin(), cands.end());
            cands.erase(std::unique(cands.begin(), cands.end()),
                        cands.end());

            const double h0 = mappingCost(front2q, ext, phys);
            double best_h = 1e18;
            std::pair<int, int> best{-1, -1};
            double best_abs_h = 1e18;
            std::pair<int, int> best_abs{-1, -1};
            int best_abs_idx = -1;
            for (const auto &[p1, p2] : cands) {
                std::vector<int> trial = phys;
                const int l1 = host[p1], l2 = host[p2];
                if (l1 >= 0)
                    trial[l1] = p2;
                if (l2 >= 0)
                    trial[l2] = p1;
                const double cost = mappingCost(front2q, ext, trial);
                const double h =
                    (1.0 + std::max(decay[p1], decay[p2])) * cost;
                if (h < best_h) {
                    best_h = h;
                    best = {p1, p2};
                }
                int idx = -1;
                if (opts.mirroring && cost < h0 &&
                    absorbable(p1, p2, idx) && h < best_abs_h) {
                    best_abs_h = h;
                    best_abs = {p1, p2};
                    best_abs_idx = idx;
                }
            }
            ++stuck_swaps;
            if (stuck_swaps > 8 * topo.numQubits() + 64) {
                // Escape hatch: walk the first front gate together
                // along a shortest path.
                const Gate &g = logical[front2q.front()];
                int p1 = phys[g.qubits[0]];
                const int p2 = phys[g.qubits[1]];
                while (topo.distance(p1, p2) > 1) {
                    for (int nb : topo.neighbors(p1)) {
                        if (topo.distance(nb, p2) <
                            topo.distance(p1, p2)) {
                            out.add(Gate::swap(p1, nb));
                            for (int q : {p1, nb})
                                lastTouch[q] =
                                    static_cast<int>(out.size()) - 1;
                            applySwap(p1, nb);
                            ++swapsInserted;
                            p1 = nb;
                            break;
                        }
                    }
                }
                continue;
            }
            if (best_abs.first >= 0) {
                // Absorb: mirror the last-layer gate in place.
                absorbSwap(best_abs_idx, best_abs.first,
                           best_abs.second);
                applySwap(best_abs.first, best_abs.second);
                ++swapsAbsorbed;
                continue;
            }
            assert(best.first >= 0);
            out.add(Gate::swap(best.first, best.second));
            for (int q : {best.first, best.second})
                lastTouch[q] = static_cast<int>(out.size()) - 1;
            applySwap(best.first, best.second);
            ++swapsInserted;
        }
    }
};

} // namespace

RouteResult
sabreRoute(const Circuit &logical, const Topology &topo,
           const RouteOptions &opts)
{
    assert(logical.numQubits() <= topo.numQubits());
#ifndef NDEBUG
    for (const Gate &g : logical)
        assert(g.numQubits() <= 2 && "route expects a 2Q-basis input");
#endif
    std::vector<int> init(logical.numQubits());
    for (int q = 0; q < logical.numQubits(); ++q)
        init[q] = q;

    if (opts.reverseTraversalInit && logical.count2Q() > 0) {
        // SABRE-style: route the reversed circuit once and adopt its
        // final layout as the forward pass's initial layout.
        Circuit rev(logical.numQubits());
        for (auto it = logical.gates().rbegin();
             it != logical.gates().rend(); ++it)
            rev.add(*it);
        RouteOptions ropts = opts;
        ropts.reverseTraversalInit = false;
        ropts.mirroring = false;
        Router pre(rev, topo, ropts, init);
        pre.run();
        for (int q = 0; q < logical.numQubits(); ++q)
            init[q] = pre.phys[q];
    }

    Router router(logical, topo, opts, init);
    router.run();

    RouteResult res;
    res.circuit = std::move(router.out);
    res.initialLayout = init;
    res.finalLayout.assign(logical.numQubits(), 0);
    for (int q = 0; q < logical.numQubits(); ++q)
        res.finalLayout[q] = router.phys[q];
    res.swapsInserted = router.swapsInserted;
    res.swapsAbsorbed = router.swapsAbsorbed;
    return res;
}

} // namespace reqisc::route
