/**
 * @file
 * Device coupling topologies for the mapping experiments: 1D chain,
 * 2D grid and all-to-all (Section 6.4).
 *
 * A Topology is an undirected graph over physical qubits 0..n-1 with
 * an all-pairs BFS distance matrix (the SABRE heuristic's metric).
 * Edges are symmetric: two-qubit gates may be scheduled on a pair in
 * either orientation.
 */

#ifndef REQISC_ROUTE_TOPOLOGY_HH
#define REQISC_ROUTE_TOPOLOGY_HH

#include <string>
#include <vector>

namespace reqisc::route
{

/** Undirected device connectivity graph with cached distances. */
class Topology
{
  public:
    /** Linear chain q0 - q1 - ... - q(n-1). */
    static Topology chain(int n);

    /** rows x cols grid with nearest-neighbour edges. */
    static Topology grid(int rows, int cols);

    /** Near-square grid holding at least n qubits. */
    static Topology gridFor(int n);

    /** Fully connected device (logical-level compilation). */
    static Topology allToAll(int n);

    /**
     * Arbitrary edge list (the backend chip-file path). Endpoints
     * must be in [0, n) and distinct per edge; duplicate edges are
     * collapsed. The graph may be disconnected — callers that need
     * full reachability (routing) check isConnected() first.
     */
    static Topology custom(int n,
                           const std::vector<std::pair<int, int>> &edges,
                           std::string name = "custom");

    /** True iff every qubit is reachable from qubit 0. */
    bool isConnected() const;

    int numQubits() const { return n_; }
    bool connected(int a, int b) const;
    const std::vector<std::pair<int, int>> &edges() const
    {
        return edges_;
    }
    const std::vector<int> &neighbors(int q) const
    {
        return adj_[q];
    }

    /** Shortest-path hop distance (precomputed BFS). */
    int distance(int a, int b) const { return dist_[a][b]; }

    const std::string &name() const { return name_; }

  private:
    Topology(int n, std::string name);
    void addEdge(int a, int b);
    void computeDistances();

    int n_;
    std::string name_;
    std::vector<std::pair<int, int>> edges_;
    std::vector<std::vector<int>> adj_;
    std::vector<std::vector<int>> dist_;
};

} // namespace reqisc::route

#endif // REQISC_ROUTE_TOPOLOGY_HH
