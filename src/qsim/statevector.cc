#include "qsim/statevector.hh"

#include <algorithm>
#include <cmath>

namespace reqisc::qsim
{

StateVector::StateVector(int num_qubits)
    : numQubits_(num_qubits),
      amps_(static_cast<size_t>(1) << num_qubits, Complex(0.0, 0.0))
{
    amps_[0] = 1.0;
}

void
StateVector::applyMatrix(const std::vector<int> &qubits,
                         const Matrix &m)
{
    const int k = static_cast<int>(qubits.size());
    const int sub = 1 << k;
    assert(m.rows() == sub && m.cols() == sub);
    // Bit position of each gate qubit in the global index
    // (qubit 0 = most significant).
    std::vector<int> shift(k);
    for (int i = 0; i < k; ++i)
        shift[i] = numQubits_ - 1 - qubits[i];
    // Enumerate all base indices with the gate-qubit bits cleared.
    size_t mask = 0;
    for (int i = 0; i < k; ++i)
        mask |= (static_cast<size_t>(1) << shift[i]);
    const size_t dim_total = amps_.size();
    std::vector<size_t> offs(sub);
    for (int s = 0; s < sub; ++s) {
        size_t o = 0;
        for (int i = 0; i < k; ++i)
            // Gate index bit i (MSB-first within the gate).
            if (s & (1 << (k - 1 - i)))
                o |= (static_cast<size_t>(1) << shift[i]);
        offs[s] = o;
    }
    std::vector<Complex> buf(sub);
    for (size_t base = 0; base < dim_total; ++base) {
        if (base & mask)
            continue;
        for (int s = 0; s < sub; ++s)
            buf[s] = amps_[base | offs[s]];
        for (int r = 0; r < sub; ++r) {
            Complex acc(0.0, 0.0);
            for (int s = 0; s < sub; ++s)
                acc += m(r, s) * buf[s];
            amps_[base | offs[r]] = acc;
        }
    }
}

void
StateVector::applyGate(const circuit::Gate &g)
{
    applyMatrix(g.qubits, g.matrix());
}

void
StateVector::applyCircuit(const circuit::Circuit &c)
{
    assert(c.numQubits() == numQubits_);
    for (const auto &g : c)
        applyGate(g);
}

std::vector<double>
StateVector::probabilities() const
{
    std::vector<double> p(amps_.size());
    for (size_t i = 0; i < amps_.size(); ++i)
        p[i] = std::norm(amps_[i]);
    return p;
}

void
StateVector::permuteQubits(const std::vector<int> &perm)
{
    assert(static_cast<int>(perm.size()) == numQubits_);
    std::vector<Complex> out(amps_.size(), Complex(0.0, 0.0));
    for (size_t idx = 0; idx < amps_.size(); ++idx) {
        size_t nidx = 0;
        for (int q = 0; q < numQubits_; ++q) {
            const int bit =
                (idx >> (numQubits_ - 1 - q)) & 1;
            if (bit)
                nidx |= (static_cast<size_t>(1)
                         << (numQubits_ - 1 - perm[q]));
        }
        out[nidx] = amps_[idx];
    }
    amps_ = std::move(out);
}

double
StateVector::fidelity(const StateVector &other) const
{
    assert(other.amps_.size() == amps_.size());
    Complex ov(0.0, 0.0);
    for (size_t i = 0; i < amps_.size(); ++i)
        ov += std::conj(amps_[i]) * other.amps_[i];
    return std::norm(ov);
}

Matrix
buildUnitary(const circuit::Circuit &c)
{
    const int n = c.numQubits();
    const size_t dim = static_cast<size_t>(1) << n;
    Matrix u = Matrix::identity(static_cast<int>(dim));
    // Apply the circuit to each column expressed as a statevector.
    // For the small n used by verification this is fast enough and
    // reuses the well-tested statevector kernels.
    for (size_t col = 0; col < dim; ++col) {
        StateVector sv(n);
        sv.amplitudes().assign(dim, Complex(0.0, 0.0));
        sv.amplitudes()[col] = 1.0;
        sv.applyCircuit(c);
        for (size_t row = 0; row < dim; ++row)
            u(static_cast<int>(row), static_cast<int>(col)) =
                sv.amplitudes()[row];
    }
    return u;
}

std::vector<int>
inversePermutation(const std::vector<int> &perm)
{
    std::vector<int> inv(perm.size());
    for (size_t q = 0; q < perm.size(); ++q)
        inv[perm[q]] = static_cast<int>(q);
    return inv;
}

Matrix
buildUnitaryWithPermutation(const circuit::Circuit &c,
                            const std::vector<int> &perm)
{
    const int n = c.numQubits();
    const size_t dim = static_cast<size_t>(1) << n;
    // perm says logical qubit q ended on wire perm[q]; undoing it
    // moves the bit on wire perm[q] back to q, i.e. the inverse map.
    const std::vector<int> inv = inversePermutation(perm);
    Matrix u(static_cast<int>(dim), static_cast<int>(dim));
    for (size_t col = 0; col < dim; ++col) {
        StateVector sv(n);
        sv.amplitudes().assign(dim, Complex(0.0, 0.0));
        sv.amplitudes()[col] = 1.0;
        sv.applyCircuit(c);
        sv.permuteQubits(inv);
        for (size_t row = 0; row < dim; ++row)
            u(static_cast<int>(row), static_cast<int>(col)) =
                sv.amplitudes()[row];
    }
    return u;
}

double
hellingerFidelity(const std::vector<double> &p,
                  const std::vector<double> &q)
{
    assert(p.size() == q.size());
    double s = 0.0;
    for (size_t i = 0; i < p.size(); ++i)
        s += std::sqrt(std::max(0.0, p[i]) * std::max(0.0, q[i]));
    return s * s;
}

} // namespace reqisc::qsim
