/**
 * @file
 * Density-matrix simulator with depolarizing noise.
 *
 * Implements the paper's fidelity-experiment noise model (Section
 * 6.7): a depolarizing channel follows every two-qubit gate with an
 * error rate scaled proportionally to the gate's pulse duration,
 * p = p0 * tau / tau0.
 */

#ifndef REQISC_QSIM_DENSITY_HH
#define REQISC_QSIM_DENSITY_HH

#include <vector>

#include "circuit/circuit.hh"
#include "qmath/matrix.hh"

namespace reqisc::qsim
{

using qmath::Complex;
using qmath::Matrix;

/** Dense density matrix over n qubits (n <= ~11 practically). */
class DensityMatrix
{
  public:
    /** Initialize to |0..0><0..0|. */
    explicit DensityMatrix(int num_qubits);

    int numQubits() const { return numQubits_; }
    size_t dim() const { return static_cast<size_t>(1) << numQubits_; }

    /** rho -> U rho U^dagger with U a k-qubit gate matrix. */
    void applyMatrix(const std::vector<int> &qubits, const Matrix &m);

    void applyGate(const circuit::Gate &g);

    /**
     * Depolarizing channel on a qubit subset:
     * rho -> (1-p) rho + p * (I/2^k  (x)  Tr_subset rho).
     */
    void depolarize(const std::vector<int> &qubits, double p);

    /**
     * General channel rho -> sum_k K_k rho K_k^dagger on a qubit
     * subset. The caller is responsible for trace preservation
     * (sum K^dagger K = I).
     */
    void applyKraus(const std::vector<int> &qubits,
                    const std::vector<Matrix> &kraus);

    /**
     * Amplitude damping (T1-style energy relaxation) on one qubit:
     * |1> decays to |0> with probability gamma.
     */
    void amplitudeDamp(int qubit, double gamma);

    /**
     * Phase damping (T2-style dephasing) on one qubit: off-diagonal
     * coherence is scaled by sqrt(1 - lambda).
     */
    void phaseDamp(int qubit, double lambda);

    /** Diagonal of rho: computational-basis probabilities. */
    std::vector<double> probabilities() const;

    double traceReal() const;

    /** Relabel qubits (same semantics as StateVector::permuteQubits). */
    void permuteQubits(const std::vector<int> &perm);

  private:
    int numQubits_;
    /** Row-major 2^n x 2^n storage. */
    std::vector<Complex> rho_;

    size_t index(size_t r, size_t c) const { return r * dim() + c; }
};

/**
 * Simulate a circuit with a depolarizing channel of strength
 * p = p0 * duration(gate) / tau0 after every multi-qubit gate, and
 * return the final computational-basis distribution.
 *
 * @param c circuit to run
 * @param gate_duration per-gate pulse duration model
 * @param p0 base error rate at duration tau0
 * @param tau0 reference duration (conventional CNOT pulse)
 * @param final_perm optional output permutation (empty = identity)
 */
std::vector<double> simulateNoisy(
    const circuit::Circuit &c,
    const std::function<double(const circuit::Gate &)> &gate_duration,
    double p0, double tau0, const std::vector<int> &final_perm = {});

} // namespace reqisc::qsim

#endif // REQISC_QSIM_DENSITY_HH
