/**
 * @file
 * Statevector simulator.
 *
 * Index convention: qubit 0 is the most significant bit of the state
 * index, matching the kron() ordering used by the gate library.
 * Dense and exact: memory is 16 bytes * 2^n, so intended for the
 * <= ~20-qubit verification workloads of the test and bench suites,
 * not large-scale simulation.
 */

#ifndef REQISC_QSIM_STATEVECTOR_HH
#define REQISC_QSIM_STATEVECTOR_HH

#include <vector>

#include "circuit/circuit.hh"
#include "qmath/matrix.hh"

namespace reqisc::qsim
{

using qmath::Complex;
using qmath::Matrix;

/** Dense statevector over n qubits. */
class StateVector
{
  public:
    /** Initialize to |0...0>. */
    explicit StateVector(int num_qubits);

    int numQubits() const { return numQubits_; }
    size_t dim() const { return amps_.size(); }

    const std::vector<Complex> &amplitudes() const { return amps_; }
    std::vector<Complex> &amplitudes() { return amps_; }

    /** Apply a k-qubit matrix (first listed qubit most significant). */
    void applyMatrix(const std::vector<int> &qubits, const Matrix &m);

    /** Apply one gate. */
    void applyGate(const circuit::Gate &g);

    /** Run a whole circuit. */
    void applyCircuit(const circuit::Circuit &c);

    /** Measurement probabilities in the computational basis. */
    std::vector<double> probabilities() const;

    /**
     * Permute qubits: amplitude of basis state b moves to the state
     * where qubit perm[q] holds the bit previously on qubit q. Used to
     * undo compile-time mirroring / routing permutations.
     */
    void permuteQubits(const std::vector<int> &perm);

    /** |<this|other>|^2 state fidelity. */
    double fidelity(const StateVector &other) const;

  private:
    int numQubits_;
    std::vector<Complex> amps_;
};

/** Build the full 2^n x 2^n unitary of a circuit. */
Matrix buildUnitary(const circuit::Circuit &c);

/**
 * Build the unitary of a circuit followed by a final qubit
 * permutation (logical qubit q ends on wire perm[q]).
 */
Matrix buildUnitaryWithPermutation(const circuit::Circuit &c,
                                   const std::vector<int> &perm);

/** Inverse of a qubit permutation. */
std::vector<int> inversePermutation(const std::vector<int> &perm);

/** Hellinger fidelity between two probability distributions. */
double hellingerFidelity(const std::vector<double> &p,
                         const std::vector<double> &q);

} // namespace reqisc::qsim

#endif // REQISC_QSIM_STATEVECTOR_HH
