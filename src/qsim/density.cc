#include "qsim/density.hh"

#include <algorithm>
#include <cmath>

#include "qsim/statevector.hh"

namespace reqisc::qsim
{

DensityMatrix::DensityMatrix(int num_qubits)
    : numQubits_(num_qubits),
      rho_((static_cast<size_t>(1) << num_qubits) *
           (static_cast<size_t>(1) << num_qubits), Complex(0.0, 0.0))
{
    rho_[0] = 1.0;
}

void
DensityMatrix::applyMatrix(const std::vector<int> &qubits,
                           const Matrix &m)
{
    const int k = static_cast<int>(qubits.size());
    const int sub = 1 << k;
    const size_t d = dim();
    std::vector<int> shift(k);
    for (int i = 0; i < k; ++i)
        shift[i] = numQubits_ - 1 - qubits[i];
    size_t mask = 0;
    for (int i = 0; i < k; ++i)
        mask |= (static_cast<size_t>(1) << shift[i]);
    std::vector<size_t> offs(sub);
    for (int s = 0; s < sub; ++s) {
        size_t o = 0;
        for (int i = 0; i < k; ++i)
            if (s & (1 << (k - 1 - i)))
                o |= (static_cast<size_t>(1) << shift[i]);
        offs[s] = o;
    }
    std::vector<Complex> buf(sub);
    // Left multiply: rows.
    for (size_t base = 0; base < d; ++base) {
        if (base & mask)
            continue;
        for (size_t col = 0; col < d; ++col) {
            for (int s = 0; s < sub; ++s)
                buf[s] = rho_[index(base | offs[s], col)];
            for (int r = 0; r < sub; ++r) {
                Complex acc(0.0, 0.0);
                for (int s = 0; s < sub; ++s)
                    acc += m(r, s) * buf[s];
                rho_[index(base | offs[r], col)] = acc;
            }
        }
    }
    // Right multiply by m^dagger: columns.
    for (size_t base = 0; base < d; ++base) {
        if (base & mask)
            continue;
        for (size_t row = 0; row < d; ++row) {
            for (int s = 0; s < sub; ++s)
                buf[s] = rho_[index(row, base | offs[s])];
            for (int r = 0; r < sub; ++r) {
                Complex acc(0.0, 0.0);
                for (int s = 0; s < sub; ++s)
                    acc += buf[s] * std::conj(m(r, s));
                rho_[index(row, base | offs[r])] = acc;
            }
        }
    }
}

void
DensityMatrix::applyGate(const circuit::Gate &g)
{
    applyMatrix(g.qubits, g.matrix());
}

void
DensityMatrix::depolarize(const std::vector<int> &qubits, double p)
{
    if (p <= 0.0)
        return;
    const int k = static_cast<int>(qubits.size());
    const int sub = 1 << k;
    const size_t d = dim();
    std::vector<int> shift(k);
    for (int i = 0; i < k; ++i)
        shift[i] = numQubits_ - 1 - qubits[i];
    size_t mask = 0;
    for (int i = 0; i < k; ++i)
        mask |= (static_cast<size_t>(1) << shift[i]);
    std::vector<size_t> offs(sub);
    for (int s = 0; s < sub; ++s) {
        size_t o = 0;
        for (int i = 0; i < k; ++i)
            if (s & (1 << (k - 1 - i)))
                o |= (static_cast<size_t>(1) << shift[i]);
        offs[s] = o;
    }
    // rho -> (1-p) rho + p * I/sub (x) Tr_sub(rho).
    for (size_t rbase = 0; rbase < d; ++rbase) {
        if (rbase & mask)
            continue;
        for (size_t cbase = 0; cbase < d; ++cbase) {
            if (cbase & mask)
                continue;
            // Partial trace element over the subset.
            Complex tr(0.0, 0.0);
            for (int s = 0; s < sub; ++s)
                tr += rho_[index(rbase | offs[s], cbase | offs[s])];
            for (int r = 0; r < sub; ++r)
                for (int s = 0; s < sub; ++s) {
                    Complex &e =
                        rho_[index(rbase | offs[r], cbase | offs[s])];
                    e *= (1.0 - p);
                    if (r == s)
                        e += p * tr / static_cast<double>(sub);
                }
        }
    }
}

void
DensityMatrix::applyKraus(const std::vector<int> &qubits,
                          const std::vector<Matrix> &kraus)
{
    const std::vector<Complex> original = rho_;
    std::vector<Complex> acc(rho_.size(), Complex(0.0, 0.0));
    for (const Matrix &k : kraus) {
        rho_ = original;
        applyMatrix(qubits, k);  // linear, so valid for non-unitary k
        for (size_t i = 0; i < rho_.size(); ++i)
            acc[i] += rho_[i];
    }
    rho_ = std::move(acc);
}

void
DensityMatrix::amplitudeDamp(int qubit, double gamma)
{
    if (gamma <= 0.0)
        return;
    Matrix k0(2, 2), k1(2, 2);
    k0(0, 0) = 1.0;
    k0(1, 1) = std::sqrt(1.0 - gamma);
    k1(0, 1) = std::sqrt(gamma);
    applyKraus({qubit}, {k0, k1});
}

void
DensityMatrix::phaseDamp(int qubit, double lambda)
{
    if (lambda <= 0.0)
        return;
    Matrix k0(2, 2), k1(2, 2);
    k0(0, 0) = 1.0;
    k0(1, 1) = std::sqrt(1.0 - lambda);
    k1(1, 1) = std::sqrt(lambda);
    applyKraus({qubit}, {k0, k1});
}

std::vector<double>
DensityMatrix::probabilities() const
{
    const size_t d = dim();
    std::vector<double> p(d);
    for (size_t i = 0; i < d; ++i)
        p[i] = rho_[index(i, i)].real();
    return p;
}

double
DensityMatrix::traceReal() const
{
    const size_t d = dim();
    double t = 0.0;
    for (size_t i = 0; i < d; ++i)
        t += rho_[index(i, i)].real();
    return t;
}

void
DensityMatrix::permuteQubits(const std::vector<int> &perm)
{
    const size_t d = dim();
    auto mapIndex = [&](size_t idx) {
        size_t nidx = 0;
        for (int q = 0; q < numQubits_; ++q) {
            const int bit = (idx >> (numQubits_ - 1 - q)) & 1;
            if (bit)
                nidx |= (static_cast<size_t>(1)
                         << (numQubits_ - 1 - perm[q]));
        }
        return nidx;
    };
    std::vector<Complex> out(rho_.size(), Complex(0.0, 0.0));
    for (size_t r = 0; r < d; ++r)
        for (size_t c = 0; c < d; ++c)
            out[mapIndex(r) * d + mapIndex(c)] = rho_[index(r, c)];
    rho_ = std::move(out);
}

std::vector<double>
simulateNoisy(
    const circuit::Circuit &c,
    const std::function<double(const circuit::Gate &)> &gate_duration,
    double p0, double tau0, const std::vector<int> &final_perm)
{
    DensityMatrix rho(c.numQubits());
    for (const auto &g : c) {
        rho.applyGate(g);
        if (g.numQubits() >= 2) {
            const double p =
                std::min(1.0, p0 * gate_duration(g) / tau0);
            rho.depolarize(g.qubits, p);
        }
    }
    if (!final_perm.empty())
        rho.permuteQubits(inversePermutation(final_perm));
    return rho.probabilities();
}

} // namespace reqisc::qsim
