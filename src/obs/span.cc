#include "obs/span.hh"

#include <algorithm>
#include <cstring>

#include "obs/flight.hh"

namespace reqisc::obs
{

namespace
{

using Clock = std::chrono::steady_clock;

/**
 * Current JobScope name. A fixed trivially-destructible buffer (not
 * a std::string) so instrumentation running during thread/process
 * teardown can still read it safely; sized to the flight-event job
 * field so every consumer sees the same truncation.
 */
thread_local char tlsJob[flight::kJobBytes] = {};

void setTlsJob(const char *s, std::size_t len)
{
    const std::size_t n =
        len < sizeof(tlsJob) - 1 ? len : sizeof(tlsJob) - 1;
    std::memcpy(tlsJob, s, n);
    tlsJob[n] = '\0';
}

std::int64_t nsSince(SteadyTime epoch, SteadyTime t)
{
    // Clamp: a backdated start captured before the tracer epoch
    // (first touch races) must not produce negative timestamps.
    const auto ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(t -
                                                             epoch)
            .count();
    return ns < 0 ? 0 : ns;
}

/**
 * Registers this thread's log on first use and retires it (handing
 * ownership of buffered events to the tracer) at thread exit.
 */
struct ThreadLogHolder
{
    detail::ThreadLog *log = nullptr;

    ~ThreadLogHolder()
    {
        if (log != nullptr)
            log->tracer->retire(log);
    }
};

thread_local ThreadLogHolder tlsLog;

} // namespace

// ---- Tracer ------------------------------------------------------------

Tracer::Tracer() : epoch_(Clock::now()) {}

Tracer &Tracer::global()
{
    static Tracer *g = new Tracer();
    return *g;
}

detail::ThreadLog &Tracer::threadLog()
{
    if (tlsLog.log == nullptr || tlsLog.log->tracer != this)
    {
        auto log = std::make_unique<detail::ThreadLog>();
        log->tracer = this;
        std::lock_guard lock(mu_);
        log->tid = nextTid_++;
        live_.push_back(log.get());
        // The thread_local holder keeps the raw pointer; ownership
        // transfers to retired_ when the thread exits.
        tlsLog.log = log.release();
    }
    return *tlsLog.log;
}

void Tracer::retire(detail::ThreadLog *log)
{
    std::lock_guard lock(mu_);
    live_.erase(std::remove(live_.begin(), live_.end(), log),
                live_.end());
    retired_.emplace_back(log);
}

std::vector<TraceEvent> Tracer::collect()
{
    std::vector<TraceEvent> out;
    std::lock_guard lock(mu_);
    for (detail::ThreadLog *log : live_)
    {
        std::lock_guard logLock(log->mu);
        out.insert(out.end(), log->events.begin(),
                   log->events.end());
    }
    for (const auto &log : retired_)
    {
        std::lock_guard logLock(log->mu);
        out.insert(out.end(), log->events.begin(),
                   log->events.end());
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const TraceEvent &a, const TraceEvent &b) {
                         return a.startNs < b.startNs;
                     });
    return out;
}

void Tracer::clear()
{
    std::lock_guard lock(mu_);
    for (detail::ThreadLog *log : live_)
    {
        std::lock_guard logLock(log->mu);
        log->events.clear();
    }
    // Retired threads can never log again; drop their logs entirely.
    retired_.clear();
}

// ---- Span --------------------------------------------------------------

Span::Span(std::string name) : name_(std::move(name))
{
    open({}, /*useStackParent=*/true);
    start_ = Clock::now();
    flight::recordAt(start_, flight::Kind::SpanBegin,
                     name_.c_str());
}

Span::Span(std::string name, SpanContext parent)
    : name_(std::move(name))
{
    open(parent, /*useStackParent=*/false);
    start_ = Clock::now();
    flight::recordAt(start_, flight::Kind::SpanBegin,
                     name_.c_str());
}

Span::Span(std::string name, SteadyTime start)
    : name_(std::move(name)), start_(start)
{
    open({}, /*useStackParent=*/true);
    flight::recordAt(start_, flight::Kind::SpanBegin,
                     name_.c_str());
}

void Span::open(SpanContext explicitParent, bool useStackParent)
{
    Tracer &tracer = Tracer::global();
    if (!tracer.enabled())
        return;
    detail::ThreadLog &log = tracer.threadLog();
    id_ = tracer.nextId();
    if (useStackParent)
        parent_ = log.stack.empty() ? 0 : log.stack.back();
    else
        parent_ = explicitParent.id;
    log.stack.push_back(id_);
    // Annotation inheritance: spans opened under a JobScope carry
    // the job name so traces correlate with logs/flight dumps.
    if (tlsJob[0] != '\0')
        args_.emplace_back("job", tlsJob);
}

Span::~Span()
{
    // Inert spans skip the clock read entirely unless the flight
    // recorder wants the end event; callers that need the duration
    // despite disabled tracing call stop() themselves.
    if (!stopped_ && (id_ != 0 || flight::enabled()))
        stop();
}

double Span::stop()
{
    if (stopped_)
        return seconds_;
    stopped_ = true;
    const SteadyTime end = Clock::now();
    seconds_ = std::chrono::duration<double>(end - start_).count();
    flight::recordAt(
        end, flight::Kind::SpanEnd, name_.c_str(), "",
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                end - start_)
                .count()));
    if (id_ == 0)
        return seconds_;

    Tracer &tracer = Tracer::global();
    detail::ThreadLog &log = tracer.threadLog();
    // Pop this span; an unbalanced stack (impossible with RAII use)
    // would self-heal by searching downward.
    if (!log.stack.empty() && log.stack.back() == id_)
        log.stack.pop_back();
    else
        log.stack.erase(
            std::remove(log.stack.begin(), log.stack.end(), id_),
            log.stack.end());

    TraceEvent ev;
    ev.name = name_;
    ev.id = id_;
    ev.parent = parent_;
    ev.tid = log.tid;
    ev.startNs = nsSince(tracer.epoch(), start_);
    ev.durNs = nsSince(tracer.epoch(), end) - ev.startNs;
    ev.args = std::move(args_);
    std::lock_guard lock(log.mu);
    log.events.push_back(std::move(ev));
    return seconds_;
}

void Span::annotate(const std::string &key,
                    const std::string &value)
{
    if (id_ == 0 || stopped_)
        return;
    args_.emplace_back(key, value);
}

// ---- Free functions ----------------------------------------------------

void recordSpan(const std::string &name, SteadyTime start,
                SteadyTime end, SpanContext parent)
{
    flight::recordAt(
        end, flight::Kind::SpanEnd, name.c_str(), "",
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                end - start)
                .count()));
    Tracer &tracer = Tracer::global();
    if (!tracer.enabled())
        return;
    detail::ThreadLog &log = tracer.threadLog();
    TraceEvent ev;
    ev.name = name;
    ev.id = tracer.nextId();
    ev.parent = parent.id != 0
                    ? parent.id
                    : (log.stack.empty() ? 0 : log.stack.back());
    ev.tid = log.tid;
    ev.startNs = nsSince(tracer.epoch(), start);
    ev.durNs = nsSince(tracer.epoch(), end) - ev.startNs;
    if (ev.durNs < 0)
        ev.durNs = 0;
    std::lock_guard lock(log.mu);
    log.events.push_back(std::move(ev));
}

SpanContext currentSpan()
{
    Tracer &tracer = Tracer::global();
    if (!tracer.enabled())
        return {};
    detail::ThreadLog &log = tracer.threadLog();
    return {log.stack.empty() ? 0 : log.stack.back()};
}

// ---- Job attribution ---------------------------------------------------

const char *currentJobName()
{
    return tlsJob;
}

JobScope::JobScope(const std::string &job) : prev_(tlsJob)
{
    setTlsJob(job.data(), job.size());
}

JobScope::~JobScope()
{
    setTlsJob(prev_.data(), prev_.size());
}

} // namespace reqisc::obs
