#include "obs/log.hh"

#include <algorithm>
#include <chrono>
#include <unordered_map>

#include "obs/flight.hh"
#include "obs/span.hh"

namespace reqisc::obs
{

namespace
{

using Clock = std::chrono::steady_clock;

/** Registers on first use, retires at thread exit (cf. span.cc). */
struct LogBufferHolder
{
    detail::LogBuffer *buf = nullptr;

    ~LogBufferHolder()
    {
        if (buf != nullptr)
            buf->logger->retire(buf);
    }
};

thread_local LogBufferHolder tlsBuf;

/** Token bucket for one (component, message) key on this thread. */
struct Bucket
{
    double tokens = 0.0;
    Clock::time_point last;
    bool init = false;
};

/**
 * Per-thread buckets keep the limiter lock-free; the global rate is
 * therefore bounded by threads x perSec (documented in log.hh).
 */
bool rateLimited(Logger &logger, const std::string &component,
                 const std::string &message)
{
    const double perSec = logger.rateLimitPerSec();
    if (perSec <= 0.0)
        return false;
    const double burst =
        std::max(1.0, logger.rateLimitBurst());
    thread_local std::unordered_map<std::string, Bucket> buckets;
    Bucket &b = buckets[component + '\0' + message];
    const Clock::time_point now = Clock::now();
    if (!b.init)
    {
        b.tokens = burst;
        b.last = now;
        b.init = true;
    }
    const double dt =
        std::chrono::duration<double>(now - b.last).count();
    b.last = now;
    b.tokens = std::min(burst, b.tokens + dt * perSec);
    if (b.tokens < 1.0)
        return true;
    b.tokens -= 1.0;
    return false;
}

void appendEscaped(std::string &out, const std::string &s)
{
    for (const char ch : s)
    {
        const unsigned char c = static_cast<unsigned char>(ch);
        if (c == '"' || c == '\\')
        {
            out += '\\';
            out += ch;
        }
        else if (c < 0x20)
        {
            static const char *hex = "0123456789abcdef";
            out += "\\u00";
            out += hex[c >> 4];
            out += hex[c & 0xf];
        }
        else
        {
            out += ch;
        }
    }
}

} // namespace

const char *logLevelName(LogLevel level)
{
    switch (level)
    {
    case LogLevel::Debug: return "debug";
    case LogLevel::Info: return "info";
    case LogLevel::Warn: return "warn";
    case LogLevel::Error: return "error";
    }
    return "unknown";
}

bool parseLogLevel(const std::string &text, LogLevel &out)
{
    if (text == "debug")
        out = LogLevel::Debug;
    else if (text == "info")
        out = LogLevel::Info;
    else if (text == "warn")
        out = LogLevel::Warn;
    else if (text == "error")
        out = LogLevel::Error;
    else
        return false;
    return true;
}

// ---- Logger ------------------------------------------------------------

Logger &Logger::global()
{
    // Leaky: outlives every static/thread_local destructor so late
    // records during teardown stay safe.
    static Logger *g = new Logger();
    return *g;
}

void Logger::setRateLimit(double perSec, double burst)
{
    rateBits_.store(std::bit_cast<std::uint64_t>(perSec),
                    std::memory_order_relaxed);
    burstBits_.store(std::bit_cast<std::uint64_t>(burst),
                     std::memory_order_relaxed);
}

double Logger::rateLimitPerSec() const
{
    return std::bit_cast<double>(
        rateBits_.load(std::memory_order_relaxed));
}

double Logger::rateLimitBurst() const
{
    return std::bit_cast<double>(
        burstBits_.load(std::memory_order_relaxed));
}

detail::LogBuffer &Logger::threadBuffer()
{
    if (tlsBuf.buf == nullptr || tlsBuf.buf->logger != this)
    {
        auto buf = std::make_unique<detail::LogBuffer>();
        buf->logger = this;
        std::lock_guard lock(mu_);
        buf->tid = nextTid_++;
        live_.push_back(buf.get());
        tlsBuf.buf = buf.release();
    }
    return *tlsBuf.buf;
}

void Logger::retire(detail::LogBuffer *buf)
{
    std::lock_guard lock(mu_);
    live_.erase(std::remove(live_.begin(), live_.end(), buf),
                live_.end());
    retired_.emplace_back(buf);
}

void Logger::append(LogRecord &&rec)
{
    detail::LogBuffer &buf = threadBuffer();
    rec.tid = buf.tid;
    std::lock_guard lock(buf.mu);
    buf.records.push_back(std::move(rec));
}

std::vector<LogRecord> Logger::collect()
{
    std::vector<LogRecord> out;
    std::lock_guard lock(mu_);
    for (detail::LogBuffer *buf : live_)
    {
        std::lock_guard bufLock(buf->mu);
        out.insert(out.end(), buf->records.begin(),
                   buf->records.end());
    }
    for (const auto &buf : retired_)
    {
        std::lock_guard bufLock(buf->mu);
        out.insert(out.end(), buf->records.begin(),
                   buf->records.end());
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const LogRecord &a, const LogRecord &b) {
                         return a.tsNs < b.tsNs;
                     });
    return out;
}

void Logger::clear()
{
    std::lock_guard lock(mu_);
    for (detail::LogBuffer *buf : live_)
    {
        std::lock_guard bufLock(buf->mu);
        buf->records.clear();
    }
    retired_.clear();
    dropped_.store(0, std::memory_order_relaxed);
}

// ---- Free functions ----------------------------------------------------

void log(LogLevel level, const std::string &component,
         const std::string &message, LogFields fields)
{
    // The flight recorder sees every call — including records the
    // logger is about to filter — so crash dumps keep debug chatter.
    flight::record(flight::Kind::Log, component.c_str(),
                   message.c_str(), 0.0,
                   static_cast<int>(level));

    Logger &logger = Logger::global();
    if (!logger.enabled())
        return;
    if (static_cast<std::uint8_t>(level) <
        static_cast<std::uint8_t>(logger.minLevel()))
        return;
    if (rateLimited(logger, component, message))
    {
        logger.noteDropped();
        return;
    }

    LogRecord rec;
    rec.level = level;
    rec.tsNs = std::chrono::duration_cast<std::chrono::nanoseconds>(
                   Clock::now() - Tracer::global().epoch())
                   .count();
    if (rec.tsNs < 0)
        rec.tsNs = 0;
    rec.component = component;
    rec.message = message;
    rec.job = currentJobName();
    rec.fields = std::move(fields);
    logger.append(std::move(rec));
}

std::string jsonLines(const std::vector<LogRecord> &records)
{
    std::string out;
    out.reserve(records.size() * 128);
    for (const LogRecord &r : records)
    {
        out += "{\"tsNs\":" + std::to_string(r.tsNs);
        out += ",\"level\":\"";
        out += logLevelName(r.level);
        out += "\",\"tid\":" + std::to_string(r.tid);
        out += ",\"component\":\"";
        appendEscaped(out, r.component);
        out += "\"";
        if (!r.job.empty())
        {
            out += ",\"job\":\"";
            appendEscaped(out, r.job);
            out += "\"";
        }
        out += ",\"msg\":\"";
        appendEscaped(out, r.message);
        out += "\",\"fields\":{";
        bool first = true;
        for (const auto &[k, v] : r.fields)
        {
            if (!first)
                out += ',';
            first = false;
            out += "\"";
            appendEscaped(out, k);
            out += "\":\"";
            appendEscaped(out, v);
            out += "\"";
        }
        out += "}}\n";
    }
    return out;
}

} // namespace reqisc::obs
