#include "obs/trace_json.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>

namespace reqisc::obs
{

namespace
{

void appendEscaped(std::string &out, const std::string &s)
{
    for (const char ch : s)
    {
        switch (ch)
        {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(ch) < 0x20)
            {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(ch)));
                out += buf;
            }
            else
            {
                out += ch;
            }
            break;
        }
    }
}

void appendMicros(std::string &out, std::int64_t ns)
{
    // ns -> fractional µs with 3 decimals, exact (no doubles).
    if (ns < 0)
        ns = 0;
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%lld.%03lld",
                  static_cast<long long>(ns / 1000),
                  static_cast<long long>(ns % 1000));
    out += buf;
}

} // namespace

std::string chromeTraceJson(const std::vector<TraceEvent> &events)
{
    std::string out;
    out.reserve(events.size() * 160 + 64);
    out += "{\"traceEvents\":[";
    bool first = true;
    for (const TraceEvent &ev : events)
    {
        if (!first)
            out += ",";
        first = false;
        out += "\n{\"name\":\"";
        appendEscaped(out, ev.name);
        out += "\",\"cat\":\"reqisc\",\"ph\":\"X\",\"ts\":";
        appendMicros(out, ev.startNs);
        out += ",\"dur\":";
        appendMicros(out, ev.durNs);
        out += ",\"pid\":1,\"tid\":";
        out += std::to_string(ev.tid);
        out += ",\"args\":{\"id\":";
        out += std::to_string(ev.id);
        out += ",\"parent\":";
        out += std::to_string(ev.parent);
        for (const auto &[key, value] : ev.args)
        {
            out += ",\"";
            appendEscaped(out, key);
            out += "\":\"";
            appendEscaped(out, value);
            out += "\"";
        }
        out += "}}";
    }
    out += "\n],\"displayTimeUnit\":\"ms\"}\n";
    return out;
}

bool writeTextFile(const std::string &path,
                   const std::string &content, std::string &error)
{
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    if (!f)
    {
        error = path + ": " + std::strerror(errno);
        return false;
    }
    f << content;
    f.flush();
    if (!f)
    {
        error = path + ": write failed";
        return false;
    }
    return true;
}

} // namespace reqisc::obs
