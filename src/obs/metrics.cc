#include "obs/metrics.hh"

#include <algorithm>
#include <bit>
#include <charconv>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <system_error>

#include "obs/flight.hh"

namespace reqisc::obs
{

namespace detail
{

std::size_t threadSlot()
{
    static std::atomic<std::size_t> next{0};
    thread_local const std::size_t slot =
        next.fetch_add(1, std::memory_order_relaxed) % kSlots;
    return slot;
}

namespace
{

/** Shortest round-trip decimal for the exposition format. */
std::string formatDouble(double v)
{
    if (std::isinf(v))
        return v > 0 ? "+Inf" : "-Inf";
    if (std::isnan(v))
        return "NaN";
    char buf[32];
    const auto [end, ec] =
        std::to_chars(buf, buf + sizeof(buf), v);
    if (ec != std::errc{})
        return "0";  // unreachable for finite doubles with 32 chars
    return std::string(buf, end);
}

} // namespace

} // namespace detail

// ---- Counter -----------------------------------------------------------

Counter::Counter(std::string name, std::string help,
                 const std::atomic<bool> *enabled)
    : name_(std::move(name)), help_(std::move(help)),
      enabled_(enabled),
      cells_(std::make_unique<detail::CounterCell[]>(detail::kSlots))
{
}

void Counter::add(std::int64_t n)
{
    // The flight recorder sees every delta regardless of whether
    // the (opt-in) registry is collecting.
    flight::record(flight::Kind::Counter, name_.c_str(), "",
                   static_cast<double>(n));
    if (!enabled_->load(std::memory_order_relaxed))
        return;
    cells_[detail::threadSlot()].v.fetch_add(
        n, std::memory_order_relaxed);
}

std::int64_t Counter::value() const
{
    std::int64_t total = 0;
    for (std::size_t i = 0; i < detail::kSlots; ++i)
        total += cells_[i].v.load(std::memory_order_relaxed);
    return total;
}

// ---- Gauge -------------------------------------------------------------

Gauge::Gauge(std::string name, std::string help,
             const std::atomic<bool> *enabled)
    : name_(std::move(name)), help_(std::move(help)),
      enabled_(enabled), bits_(std::bit_cast<std::uint64_t>(0.0))
{
}

void Gauge::set(double v)
{
    flight::record(flight::Kind::Gauge, name_.c_str(), "", v);
    if (!enabled_->load(std::memory_order_relaxed))
        return;
    bits_.store(std::bit_cast<std::uint64_t>(v),
                std::memory_order_relaxed);
}

void Gauge::add(double d)
{
    flight::record(flight::Kind::Gauge, name_.c_str(), "delta", d);
    if (!enabled_->load(std::memory_order_relaxed))
        return;
    std::uint64_t cur = bits_.load(std::memory_order_relaxed);
    while (!bits_.compare_exchange_weak(
        cur, std::bit_cast<std::uint64_t>(
                 std::bit_cast<double>(cur) + d),
        std::memory_order_relaxed, std::memory_order_relaxed))
    {
    }
}

double Gauge::value() const
{
    return std::bit_cast<double>(
        bits_.load(std::memory_order_relaxed));
}

// ---- Histogram ---------------------------------------------------------

Histogram::Histogram(std::string name, std::string help,
                     std::vector<double> bounds,
                     const std::atomic<bool> *enabled)
    : name_(std::move(name)), help_(std::move(help)),
      bounds_(std::move(bounds)), enabled_(enabled)
{
    if (bounds_.empty())
        throw std::invalid_argument(
            "obs: histogram '" + name_ + "' needs >= 1 bound");
    for (std::size_t i = 0; i < bounds_.size(); ++i)
    {
        if (!std::isfinite(bounds_[i]) ||
            (i > 0 && bounds_[i] <= bounds_[i - 1]))
            throw std::invalid_argument(
                "obs: histogram '" + name_ +
                "' bounds must be finite and strictly increasing");
    }
    cells_ = std::make_unique<Cell[]>(detail::kSlots);
    const std::size_t nb = bounds_.size() + 1;  // + overflow
    for (std::size_t i = 0; i < detail::kSlots; ++i)
        cells_[i].buckets =
            std::make_unique<std::atomic<std::uint64_t>[]>(nb);
}

void Histogram::observe(double v)
{
    flight::record(flight::Kind::Histogram, name_.c_str(), "", v);
    if (!enabled_->load(std::memory_order_relaxed))
        return;
    // First bound >= v, i.e. the Prometheus `le` bucket; past-the-end
    // lands in the +Inf overflow slot.
    const std::size_t idx =
        std::lower_bound(bounds_.begin(), bounds_.end(), v) -
        bounds_.begin();
    Cell &cell = cells_[detail::threadSlot()];
    cell.buckets[idx].fetch_add(1, std::memory_order_relaxed);
    cell.count.fetch_add(1, std::memory_order_relaxed);
    cell.sum.fetch_add(v, std::memory_order_relaxed);
}

// ---- Snapshots ---------------------------------------------------------

double HistogramSnapshot::quantile(double q) const
{
    // No samples -> no quantiles: NaN sentinel (see metrics.hh).
    if (count == 0 || bounds.empty())
        return std::numeric_limits<double>::quiet_NaN();
    q = std::clamp(q, 0.0, 1.0);
    const double rank = q * static_cast<double>(count);
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < bounds.size(); ++i)
    {
        const std::uint64_t prev = cum;
        cum += buckets[i];
        if (static_cast<double>(cum) >= rank)
        {
            const double lower = i == 0 ? 0.0 : bounds[i - 1];
            const std::uint64_t inBucket = buckets[i];
            if (inBucket == 0)
                return bounds[i];
            return lower +
                   (bounds[i] - lower) *
                       (rank - static_cast<double>(prev)) /
                       static_cast<double>(inBucket);
        }
    }
    // Rank falls in the +Inf bucket: the best bounded estimate is the
    // largest finite bound (Prometheus does the same).
    return bounds.back();
}

std::string MetricsSnapshot::prometheusText() const
{
    std::string out;
    out.reserve(1024);
    for (const auto &c : counters)
    {
        out += "# HELP " + c.name + " " + c.help + "\n";
        out += "# TYPE " + c.name + " counter\n";
        out += c.name + " " + std::to_string(c.value) + "\n";
    }
    for (const auto &g : gauges)
    {
        out += "# HELP " + g.name + " " + g.help + "\n";
        out += "# TYPE " + g.name + " gauge\n";
        out += g.name + " " + detail::formatDouble(g.value) + "\n";
    }
    for (const auto &h : histograms)
    {
        out += "# HELP " + h.name + " " + h.help + "\n";
        out += "# TYPE " + h.name + " histogram\n";
        std::uint64_t cum = 0;
        for (std::size_t i = 0; i < h.bounds.size(); ++i)
        {
            cum += h.buckets[i];
            out += h.name + "_bucket{le=\"" +
                   detail::formatDouble(h.bounds[i]) + "\"} " +
                   std::to_string(cum) + "\n";
        }
        out += h.name + "_bucket{le=\"+Inf\"} " +
               std::to_string(h.count) + "\n";
        out += h.name + "_sum " + detail::formatDouble(h.sum) + "\n";
        out += h.name + "_count " + std::to_string(h.count) + "\n";
    }
    return out;
}

// ---- Registry ----------------------------------------------------------

Registry &Registry::global()
{
    // Leaky: outlives every static/thread_local destructor so late
    // metric writes during teardown stay safe.
    static Registry *g = new Registry();
    return *g;
}

Counter *Registry::counter(const std::string &name,
                           const std::string &help)
{
    std::lock_guard lock(mu_);
    if (gauges_.count(name) || histograms_.count(name))
        throw std::invalid_argument(
            "obs: metric '" + name +
            "' already registered with a different type");
    auto it = counters_.find(name);
    if (it == counters_.end())
        it = counters_
                 .emplace(name, std::unique_ptr<Counter>(new Counter(
                                    name, help, &enabled_)))
                 .first;
    return it->second.get();
}

Gauge *Registry::gauge(const std::string &name,
                       const std::string &help)
{
    std::lock_guard lock(mu_);
    if (counters_.count(name) || histograms_.count(name))
        throw std::invalid_argument(
            "obs: metric '" + name +
            "' already registered with a different type");
    auto it = gauges_.find(name);
    if (it == gauges_.end())
        it = gauges_
                 .emplace(name, std::unique_ptr<Gauge>(
                                    new Gauge(name, help, &enabled_)))
                 .first;
    return it->second.get();
}

Histogram *Registry::histogram(const std::string &name,
                               const std::string &help,
                               std::vector<double> bounds)
{
    std::lock_guard lock(mu_);
    if (counters_.count(name) || gauges_.count(name))
        throw std::invalid_argument(
            "obs: metric '" + name +
            "' already registered with a different type");
    auto it = histograms_.find(name);
    if (it == histograms_.end())
    {
        if (bounds.empty())
            bounds = defaultTimeBuckets();
        it = histograms_
                 .emplace(name,
                          std::unique_ptr<Histogram>(new Histogram(
                              name, help, std::move(bounds),
                              &enabled_)))
                 .first;
    }
    return it->second.get();
}

MetricsSnapshot Registry::snapshot() const
{
    std::lock_guard lock(mu_);
    MetricsSnapshot snap;
    snap.counters.reserve(counters_.size());
    for (const auto &[name, c] : counters_)
        snap.counters.push_back({name, c->help_, c->value()});
    snap.gauges.reserve(gauges_.size());
    for (const auto &[name, g] : gauges_)
        snap.gauges.push_back({name, g->help_, g->value()});
    snap.histograms.reserve(histograms_.size());
    for (const auto &[name, h] : histograms_)
    {
        HistogramSnapshot hs;
        hs.name = name;
        hs.help = h->help_;
        hs.bounds = h->bounds_;
        const std::size_t nb = hs.bounds.size() + 1;
        hs.buckets.assign(nb, 0);
        for (std::size_t cell = 0; cell < detail::kSlots; ++cell)
        {
            const auto &c = h->cells_[cell];
            for (std::size_t b = 0; b < nb; ++b)
                hs.buckets[b] +=
                    c.buckets[b].load(std::memory_order_relaxed);
            hs.count += c.count.load(std::memory_order_relaxed);
            hs.sum += c.sum.load(std::memory_order_relaxed);
        }
        snap.histograms.push_back(std::move(hs));
    }
    return snap;
}

std::vector<double> defaultTimeBuckets()
{
    // 1-2.5-5 per decade, 1 µs .. 10 s.
    std::vector<double> b;
    for (double decade = 1e-6; decade < 10.0; decade *= 10.0)
    {
        b.push_back(decade);
        b.push_back(decade * 2.5);
        b.push_back(decade * 5.0);
    }
    b.push_back(10.0);
    return b;
}

std::string metricsSnapshot()
{
    return Registry::global().snapshot().prometheusText();
}

} // namespace reqisc::obs
