/**
 * @file
 * Leveled structured logging: JSON-lines records (timestamp,
 * thread, level, component, message, key/value fields, current job)
 * buffered per thread and merged by the sink at export time.
 *
 * Model mirrors obs/span.hh's tracer: each thread owns a record
 * buffer registered with the Logger on first use and retired (handed
 * back) at thread exit, so records written on short-lived pool
 * threads survive into collect(). The logger is a leaky singleton,
 * *disabled* by default — reqisc-compile enables it via
 * --log-out FILE (with --log-level LVL severity filtering) and
 * writes the JSON-lines file at exit; a future daemon would stream
 * collect() instead. Independent of obs::setEnabled(): logging can
 * be on with tracing off and vice versa.
 *
 * Every log() call additionally feeds the always-on flight recorder
 * (before the enabled/severity/rate checks), so the last few hundred
 * records — including filtered debug chatter — are always available
 * in a crash or job-failure dump.
 *
 * Hot paths are protected by a token-bucket rate limiter keyed on
 * (component, message) per thread: each key accrues
 * rateLimitPerSec() tokens per second up to rateLimitBurst(); a
 * record that finds no token is counted in droppedCount() and
 * otherwise ignored. Per-thread buckets make the global bound
 * approximate (threads x rate) but keep the hot path lock-free.
 *
 * Timestamps are steady-clock nanoseconds since the tracer epoch
 * (the repo-wide clock discipline; also makes log records line up
 * with trace spans and flight events on one timeline).
 */

#ifndef REQISC_OBS_LOG_HH
#define REQISC_OBS_LOG_HH

#include <atomic>
#include <bit>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace reqisc::obs
{

enum class LogLevel : std::uint8_t
{
    Debug = 0,
    Info = 1,
    Warn = 2,
    Error = 3,
};

/** Lower-case wire name ("debug", "info", "warn", "error"). */
const char *logLevelName(LogLevel level);

/** Parse a wire name (case-sensitive); false on unknown input. */
bool parseLogLevel(const std::string &text, LogLevel &out);

using LogFields = std::vector<std::pair<std::string, std::string>>;

/** One structured record, ready for export. */
struct LogRecord
{
    LogLevel level = LogLevel::Info;
    std::int64_t tsNs = 0;  //!< steady ns since the tracer epoch
    std::uint32_t tid = 0;  //!< dense per-thread logger index
    std::string component;
    std::string message;
    std::string job;  //!< JobScope name at the call ("" = none)
    LogFields fields;
};

namespace detail
{
struct LogBuffer;
}

/** Process-wide record sink; see @file for the model. */
class Logger
{
  public:
    Logger() = default;
    Logger(const Logger &) = delete;
    Logger &operator=(const Logger &) = delete;

    /** Leaky singleton (safe to use from static destructors). */
    static Logger &global();

    void setEnabled(bool on)
    {
        enabled_.store(on, std::memory_order_relaxed);
    }
    bool enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** Records below this severity are discarded (default Info). */
    void setMinLevel(LogLevel level)
    {
        minLevel_.store(static_cast<std::uint8_t>(level),
                        std::memory_order_relaxed);
    }
    LogLevel minLevel() const
    {
        return static_cast<LogLevel>(
            minLevel_.load(std::memory_order_relaxed));
    }

    /**
     * Token-bucket limit per (component, message) key per thread.
     * perSec <= 0 disables limiting. Default: 100/s, burst 200.
     */
    void setRateLimit(double perSec, double burst);
    double rateLimitPerSec() const;
    double rateLimitBurst() const;

    /** Records discarded by the rate limiter since start/clear. */
    std::uint64_t droppedCount() const
    {
        return dropped_.load(std::memory_order_relaxed);
    }

    /**
     * Copy out every buffered record (live and retired threads),
     * sorted by timestamp.
     */
    std::vector<LogRecord> collect();

    /** Drop all buffered records and reset the dropped counter. */
    void clear();

    /** Internal: append a finished record (log() calls this). */
    void append(LogRecord &&rec);

    /** Internal: count a record discarded by the rate limiter. */
    void noteDropped()
    {
        dropped_.fetch_add(1, std::memory_order_relaxed);
    }

    /** Internal: hand a thread's buffer back at thread exit. */
    void retire(detail::LogBuffer *buf);

  private:
    detail::LogBuffer &threadBuffer();

    std::atomic<bool> enabled_{false};
    std::atomic<std::uint8_t> minLevel_{
        static_cast<std::uint8_t>(LogLevel::Info)};
    std::atomic<std::uint64_t> rateBits_{
        std::bit_cast<std::uint64_t>(100.0)};
    std::atomic<std::uint64_t> burstBits_{
        std::bit_cast<std::uint64_t>(200.0)};
    std::atomic<std::uint64_t> dropped_{0};

    std::mutex mu_;  //!< buffer lists + tid assignment
    std::uint32_t nextTid_ = 0;
    std::vector<detail::LogBuffer *> live_;
    std::vector<std::unique_ptr<detail::LogBuffer>> retired_;
};

namespace detail
{

/** Per-thread record buffer (mirrors span.hh's ThreadLog). */
struct LogBuffer
{
    Logger *logger = nullptr;
    std::uint32_t tid = 0;
    std::mutex mu;  //!< records only
    std::vector<LogRecord> records;
};

} // namespace detail

/**
 * Emit one structured record to Logger::global() (and, always, to
 * the flight recorder). The current JobScope name is attached
 * automatically.
 */
void log(LogLevel level, const std::string &component,
         const std::string &message, LogFields fields = {});

/**
 * Serialize records as JSON lines — one object per line:
 * {"tsNs":N,"level":"info","tid":T,"component":"...","job":"...",
 *  "msg":"...","fields":{"k":"v",...}}
 * ("job" is omitted when empty; "fields" is always present.)
 */
std::string jsonLines(const std::vector<LogRecord> &records);

} // namespace reqisc::obs

#endif // REQISC_OBS_LOG_HH
