#include "obs/flight.hh"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <type_traits>

#include "obs/span.hh"

namespace reqisc::obs::flight
{

namespace
{

static_assert(sizeof(Event) % sizeof(std::uint64_t) == 0,
              "Event must be word-copyable");
static_assert(std::is_trivially_copyable_v<Event>,
              "Event slots are copied as raw words");

constexpr std::size_t kEventWords =
    sizeof(Event) / sizeof(std::uint64_t);

/**
 * Single-writer ring: the owning thread serializes events into the
 * slot words with relaxed stores and publishes with a release bump
 * of head; readers validate against head after copying (see @file
 * in flight.hh). Allocated once per thread, never freed.
 */
struct Ring
{
    std::atomic<std::uint64_t> head{0};  //!< next write index
    std::uint32_t tid = 0;
    std::atomic<std::uint64_t> words[kRingCapacity * kEventWords];
};

// All globals are constant-initialized (zero) so the signal handler
// can touch them even if it fires before any dynamic initializer.
std::atomic<bool> g_enabled{true};
std::atomic<std::uint64_t> g_seq{0};
std::atomic<std::uint64_t> g_clearSeq{0};
std::atomic<std::uint32_t> g_ringCount{0};
std::atomic<std::uint64_t> g_droppedThreads{0};
std::atomic<Ring *> g_rings[kMaxThreads];

char g_dumpPath[1024];
std::atomic<bool> g_dumpPathSet{false};
std::atomic<bool> g_dumpBusy{false};

/** Scratch for the signal-handler dump (bss; pages touched lazily). */
Event g_dumpBuf[kMaxThreads * kRingCapacity];

std::int64_t nsSinceEpoch(std::chrono::steady_clock::time_point t)
{
    // Same epoch as the tracer so flight timestamps line up with
    // exported trace events. Initialized on the first record — the
    // signal handler never calls this (events carry their tsNs).
    static const SteadyTime epoch = Tracer::global().epoch();
    const auto ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(t -
                                                             epoch)
            .count();
    return ns < 0 ? 0 : ns;
}

Ring *threadRing()
{
    thread_local Ring *ring = []() -> Ring * {
        const std::uint32_t idx =
            g_ringCount.fetch_add(1, std::memory_order_relaxed);
        if (idx >= kMaxThreads)
        {
            g_droppedThreads.fetch_add(1,
                                       std::memory_order_relaxed);
            return nullptr;
        }
        Ring *r = new Ring();  // leaky: signal-handler traversable
        r->tid = idx;
        g_rings[idx].store(r, std::memory_order_release);
        return r;
    }();
    return ring;
}

void copyField(char *dst, std::size_t cap, const char *src)
{
    if (src == nullptr)
        src = "";
    std::size_t n = 0;
    while (n + 1 < cap && src[n] != '\0')
    {
        dst[n] = src[n];
        ++n;
    }
    dst[n] = '\0';
}

// ---- Async-signal-safe collection --------------------------------------

/**
 * Copy every readable event into out (capacity cap), heapsort by
 * seq, return the count. Uses only atomics, memcpy and stack space —
 * shared between the signal handler and the normal snapshot path.
 */
std::size_t collectInto(Event *out, std::size_t cap)
{
    const std::uint64_t minSeq =
        g_clearSeq.load(std::memory_order_relaxed);
    std::size_t n = 0;
    std::uint32_t rings =
        g_ringCount.load(std::memory_order_acquire);
    if (rings > kMaxThreads)
        rings = kMaxThreads;
    for (std::uint32_t i = 0; i < rings && n < cap; ++i)
    {
        Ring *r = g_rings[i].load(std::memory_order_acquire);
        if (r == nullptr)
            continue;
        const std::uint64_t h0 =
            r->head.load(std::memory_order_acquire);
        const std::uint64_t lo =
            h0 > kRingCapacity ? h0 - kRingCapacity : 0;
        for (std::uint64_t e = lo; e < h0 && n < cap; ++e)
        {
            std::uint64_t raw[kEventWords];
            const std::atomic<std::uint64_t> *w =
                &r->words[(e % kRingCapacity) * kEventWords];
            for (std::size_t j = 0; j < kEventWords; ++j)
                raw[j] = w[j].load(std::memory_order_relaxed);
            // Validate after copying: if the writer has started
            // overwriting this slot (head advanced past e + cap - 1)
            // the copy may be torn — discard it.
            const std::uint64_t h1 =
                r->head.load(std::memory_order_acquire);
            if (h1 - e > kRingCapacity - 1)
                continue;
            Event ev;
            std::memcpy(&ev, raw, sizeof(Event));
            if (ev.seq == 0 || ev.seq <= minSeq)
                continue;
            // Defensive termination: a torn-but-validated-looking
            // slot must still not overrun the string fields.
            ev.name[kNameBytes - 1] = '\0';
            ev.detail[kDetailBytes - 1] = '\0';
            ev.job[kJobBytes - 1] = '\0';
            out[n++] = ev;
        }
    }

    // In-place heapsort by seq (no allocation, no recursion).
    auto siftDown = [&out](std::size_t start, std::size_t end) {
        std::size_t root = start;
        while (2 * root + 1 < end)
        {
            std::size_t child = 2 * root + 1;
            if (child + 1 < end &&
                out[child].seq < out[child + 1].seq)
                ++child;
            if (out[root].seq >= out[child].seq)
                return;
            Event tmp = out[root];
            out[root] = out[child];
            out[child] = tmp;
            root = child;
        }
    };
    if (n > 1)
    {
        for (std::size_t s = n / 2; s > 0; --s)
            siftDown(s - 1, n);
        for (std::size_t e = n - 1; e > 0; --e)
        {
            Event tmp = out[0];
            out[0] = out[e];
            out[e] = tmp;
            siftDown(0, e);
        }
    }
    return n;
}

// ---- Async-signal-safe serialization -----------------------------------

/** Byte sink; implementations must stay async-signal-safe. */
using Sink = void (*)(void *ctx, const char *data, std::size_t n);

struct FdSink
{
    int fd = -1;
    bool ok = true;
    std::size_t len = 0;
    char buf[4096];
};

void fdFlush(FdSink &s)
{
    std::size_t off = 0;
    while (s.ok && off < s.len)
    {
        const ::ssize_t w = ::write(s.fd, s.buf + off, s.len - off);
        if (w < 0)
        {
            if (errno == EINTR)
                continue;
            s.ok = false;
            break;
        }
        off += static_cast<std::size_t>(w);
    }
    s.len = 0;
}

void fdSinkWrite(void *ctx, const char *data, std::size_t n)
{
    FdSink &s = *static_cast<FdSink *>(ctx);
    while (n > 0 && s.ok)
    {
        const std::size_t room = sizeof(s.buf) - s.len;
        const std::size_t take = n < room ? n : room;
        std::memcpy(s.buf + s.len, data, take);
        s.len += take;
        data += take;
        n -= take;
        if (s.len == sizeof(s.buf))
            fdFlush(s);
    }
}

void strSinkWrite(void *ctx, const char *data, std::size_t n)
{
    static_cast<std::string *>(ctx)->append(data, n);
}

void put(Sink sink, void *ctx, const char *s)
{
    sink(ctx, s, std::strlen(s));
}

void putUInt(Sink sink, void *ctx, std::uint64_t v)
{
    char buf[24];
    std::size_t i = sizeof(buf);
    do
    {
        buf[--i] = static_cast<char>('0' + v % 10);
        v /= 10;
    } while (v != 0);
    sink(ctx, buf + i, sizeof(buf) - i);
}

void putInt(Sink sink, void *ctx, std::int64_t v)
{
    if (v < 0)
    {
        put(sink, ctx, "-");
        // Negate via uint64 so INT64_MIN stays defined.
        putUInt(sink, ctx,
                ~static_cast<std::uint64_t>(v) + 1);
    }
    else
    {
        putUInt(sink, ctx, static_cast<std::uint64_t>(v));
    }
}

/**
 * JSON number for a double without snprintf: integers print as
 * integers, other finite values as fixed 6-decimal point values,
 * non-finite values as null (JSON has no NaN/Inf literals).
 */
void putDouble(Sink sink, void *ctx, double v)
{
    if (!(v == v) || v > 9e15 || v < -9e15)
    {
        if (v > 9e15)
            put(sink, ctx, "9e15");
        else if (v < -9e15)
            put(sink, ctx, "-9e15");
        else
            put(sink, ctx, "null");
        return;
    }
    const std::int64_t ip = static_cast<std::int64_t>(v);
    if (static_cast<double>(ip) == v)
    {
        putInt(sink, ctx, ip);
        return;
    }
    double a = v;
    if (a < 0)
    {
        put(sink, ctx, "-");
        a = -a;
    }
    const std::uint64_t scaled =
        static_cast<std::uint64_t>(a * 1e6 + 0.5);
    putUInt(sink, ctx, scaled / 1000000);
    put(sink, ctx, ".");
    char frac[7];
    std::uint64_t f = scaled % 1000000;
    for (std::size_t i = 6; i > 0; --i)
    {
        frac[i - 1] = static_cast<char>('0' + f % 10);
        f /= 10;
    }
    frac[6] = '\0';
    sink(ctx, frac, 6);
}

void putEscaped(Sink sink, void *ctx, const char *s)
{
    for (std::size_t i = 0; s[i] != '\0'; ++i)
    {
        const unsigned char c = static_cast<unsigned char>(s[i]);
        if (c == '"' || c == '\\')
        {
            const char esc[2] = {'\\', static_cast<char>(c)};
            sink(ctx, esc, 2);
        }
        else if (c < 0x20)
        {
            static const char *hex = "0123456789abcdef";
            const char esc[6] = {'\\', 'u', '0', '0',
                                 hex[c >> 4], hex[c & 0xf]};
            sink(ctx, esc, 6);
        }
        else
        {
            sink(ctx, s + i, 1);
        }
    }
}

const char *levelNameFor(std::uint8_t level)
{
    static const char *const names[] = {"debug", "info", "warn",
                                        "error"};
    return level < 4 ? names[level] : "unknown";
}

void serializeEvents(const Event *evs, std::size_t n,
                     const char *trigger, int signo, Sink sink,
                     void *ctx)
{
    put(sink, ctx, "{\"flightRecorder\":{\"version\":1");
    put(sink, ctx, ",\"trigger\":\"");
    putEscaped(sink, ctx, trigger);
    put(sink, ctx, "\",\"signal\":");
    putInt(sink, ctx, signo);
    put(sink, ctx, ",\"capacityPerThread\":");
    putUInt(sink, ctx, kRingCapacity);
    put(sink, ctx, ",\"threads\":");
    putUInt(sink, ctx,
            g_ringCount.load(std::memory_order_relaxed));
    put(sink, ctx, ",\"droppedThreads\":");
    putUInt(sink, ctx,
            g_droppedThreads.load(std::memory_order_relaxed));
    put(sink, ctx, ",\"events\":[");
    for (std::size_t i = 0; i < n; ++i)
    {
        const Event &e = evs[i];
        put(sink, ctx, i == 0 ? "\n{\"seq\":" : ",\n{\"seq\":");
        putUInt(sink, ctx, e.seq);
        put(sink, ctx, ",\"tsNs\":");
        putInt(sink, ctx, e.tsNs);
        put(sink, ctx, ",\"tid\":");
        putUInt(sink, ctx, e.tid);
        put(sink, ctx, ",\"kind\":\"");
        put(sink, ctx, kindName(static_cast<Kind>(e.kind)));
        put(sink, ctx, "\"");
        if (static_cast<Kind>(e.kind) == Kind::Log)
        {
            put(sink, ctx, ",\"level\":\"");
            put(sink, ctx, levelNameFor(e.level));
            put(sink, ctx, "\"");
        }
        put(sink, ctx, ",\"name\":\"");
        putEscaped(sink, ctx, e.name);
        put(sink, ctx, "\",\"detail\":\"");
        putEscaped(sink, ctx, e.detail);
        put(sink, ctx, "\",\"job\":\"");
        putEscaped(sink, ctx, e.job);
        put(sink, ctx, "\",\"value\":");
        putDouble(sink, ctx, e.value);
        put(sink, ctx, "}");
    }
    put(sink, ctx, "\n]}}\n");
}

bool dumpToFd(int fd, const Event *evs, std::size_t n,
              const char *trigger, int signo)
{
    FdSink s;
    s.fd = fd;
    serializeEvents(evs, n, trigger, signo, fdSinkWrite, &s);
    fdFlush(s);
    return s.ok;
}

void signalHandler(int sig)
{
    // Re-entrancy guard: a crash inside the dump must not recurse.
    if (!g_dumpBusy.exchange(true, std::memory_order_acq_rel) &&
        g_dumpPathSet.load(std::memory_order_acquire))
    {
        const int fd = ::open(g_dumpPath,
                              O_WRONLY | O_CREAT | O_TRUNC, 0644);
        if (fd >= 0)
        {
            const std::size_t n = collectInto(
                g_dumpBuf, kMaxThreads * kRingCapacity);
            dumpToFd(fd, g_dumpBuf, n, "signal", sig);
            ::close(fd);
        }
    }
    // SA_RESETHAND restored the default disposition; re-raise so
    // the process still dies with the original signal.
    ::raise(sig);
}

} // namespace

// ---- Public API --------------------------------------------------------

const char *kindName(Kind k)
{
    switch (k)
    {
    case Kind::SpanBegin: return "spanBegin";
    case Kind::SpanEnd: return "spanEnd";
    case Kind::Log: return "log";
    case Kind::Counter: return "counter";
    case Kind::Gauge: return "gauge";
    case Kind::Histogram: return "histogram";
    }
    return "unknown";
}

bool enabled()
{
    return g_enabled.load(std::memory_order_relaxed);
}

void setEnabled(bool on)
{
    g_enabled.store(on, std::memory_order_relaxed);
}

void recordAt(std::chrono::steady_clock::time_point when, Kind kind,
              const char *name, const char *detail, double value,
              int level)
{
    if (!g_enabled.load(std::memory_order_relaxed))
        return;
    Ring *r = threadRing();
    if (r == nullptr)
        return;
    Event e{};
    e.seq = g_seq.fetch_add(1, std::memory_order_relaxed) + 1;
    e.tsNs = nsSinceEpoch(when);
    e.value = value;
    e.tid = r->tid;
    e.kind = static_cast<std::uint8_t>(kind);
    e.level = static_cast<std::uint8_t>(level);
    copyField(e.name, kNameBytes, name);
    copyField(e.detail, kDetailBytes, detail);
    copyField(e.job, kJobBytes, currentJobName());

    std::uint64_t raw[kEventWords];
    std::memcpy(raw, &e, sizeof(Event));
    const std::uint64_t h =
        r->head.load(std::memory_order_relaxed);
    std::atomic<std::uint64_t> *w =
        &r->words[(h % kRingCapacity) * kEventWords];
    for (std::size_t j = 0; j < kEventWords; ++j)
        w[j].store(raw[j], std::memory_order_relaxed);
    r->head.store(h + 1, std::memory_order_release);
}

void record(Kind kind, const char *name, const char *detail,
            double value, int level)
{
    recordAt(std::chrono::steady_clock::now(), kind, name, detail,
             value, level);
}

std::vector<Event> snapshotEvents()
{
    std::vector<Event> out(kMaxThreads * kRingCapacity);
    out.resize(collectInto(out.data(), out.size()));
    return out;
}

std::string snapshotJson(const char *trigger)
{
    const std::vector<Event> evs = snapshotEvents();
    std::string out;
    out.reserve(256 + evs.size() * 160);
    serializeEvents(evs.data(), evs.size(), trigger, 0,
                    strSinkWrite, &out);
    return out;
}

void clear()
{
    g_clearSeq.store(g_seq.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
}

void setDumpPath(const std::string &path)
{
    if (path.empty() || path.size() >= sizeof(g_dumpPath))
    {
        g_dumpPathSet.store(false, std::memory_order_release);
        return;
    }
    g_dumpPathSet.store(false, std::memory_order_release);
    std::memcpy(g_dumpPath, path.c_str(), path.size() + 1);
    g_dumpPathSet.store(true, std::memory_order_release);
}

std::string dumpPath()
{
    if (!g_dumpPathSet.load(std::memory_order_acquire))
        return {};
    return g_dumpPath;
}

bool dumpToFile(const std::string &path, const char *trigger)
{
    const int fd = ::open(path.c_str(),
                          O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0)
        return false;
    const std::vector<Event> evs = snapshotEvents();
    const bool ok =
        dumpToFd(fd, evs.data(), evs.size(), trigger, 0);
    return ::close(fd) == 0 && ok;
}

bool dumpNow(const char *trigger)
{
    const std::string path = dumpPath();
    if (path.empty())
        return false;
    return dumpToFile(path, trigger);
}

void installSignalHandlers()
{
    // Make sure the epoch + this thread's ring exist before any
    // handler can fire (the handler itself allocates nothing).
    record(Kind::Log, "flight", "signal handlers installed", 0.0,
           /*level=*/0);
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = signalHandler;
    sa.sa_flags = SA_RESETHAND;
    sigemptyset(&sa.sa_mask);
    for (const int sig :
         {SIGSEGV, SIGABRT, SIGBUS, SIGFPE, SIGILL})
        ::sigaction(sig, &sa, nullptr);
}

std::uint64_t droppedThreadCount()
{
    return g_droppedThreads.load(std::memory_order_relaxed);
}

} // namespace reqisc::obs::flight
