/**
 * @file
 * Chrome trace-event JSON export for obs::TraceEvent lists, loadable
 * in Perfetto (https://ui.perfetto.dev) or chrome://tracing, plus the
 * small file-writing helper the CLI uses for --trace-out /
 * --metrics-out.
 *
 * Note: src/obs is below src/backend in the dependency order, so this
 * carries its own minimal JSON string escaping instead of using
 * backend/json.hh.
 */

#ifndef REQISC_OBS_TRACE_JSON_HH
#define REQISC_OBS_TRACE_JSON_HH

#include <string>
#include <vector>

#include "obs/span.hh"

namespace reqisc::obs
{

/**
 * Serialize events as the JSON-object trace format:
 * {"traceEvents": [...], "displayTimeUnit": "ms"} with one "X"
 * (complete) event per span — ts/dur in microseconds (fractional,
 * 3 decimals = ns precision), pid 1, the dense obs tid, and span
 * id/parent plus annotations under "args".
 */
std::string chromeTraceJson(const std::vector<TraceEvent> &events);

/**
 * Write content to path (truncating). Returns false and fills error
 * with a strerror-style message on failure.
 */
bool writeTextFile(const std::string &path,
                   const std::string &content, std::string &error);

} // namespace reqisc::obs

#endif // REQISC_OBS_TRACE_JSON_HH
