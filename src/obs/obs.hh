/**
 * @file
 * Umbrella header for the observability layer: metrics registry
 * (obs/metrics.hh) + structured spans (obs/span.hh), with one switch
 * for both. See docs/OBSERVABILITY.md for the metric catalog, span
 * hierarchy and export formats.
 */

#ifndef REQISC_OBS_OBS_HH
#define REQISC_OBS_OBS_HH

#include "obs/metrics.hh"
#include "obs/span.hh"

namespace reqisc::obs
{

/** Turn metrics collection and span tracing on/off together. */
inline void setEnabled(bool on)
{
    Registry::global().setEnabled(on);
    Tracer::global().setEnabled(on);
}

/** True when either half of the layer is recording. */
inline bool enabled()
{
    return Registry::global().enabled() ||
           Tracer::global().enabled();
}

} // namespace reqisc::obs

#endif // REQISC_OBS_OBS_HH
