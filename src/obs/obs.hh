/**
 * @file
 * Umbrella header for the observability layer: metrics registry
 * (obs/metrics.hh), structured spans (obs/span.hh), structured
 * logging (obs/log.hh) and the always-on flight recorder
 * (obs/flight.hh). See docs/OBSERVABILITY.md for the metric
 * catalog, span hierarchy and export formats.
 *
 * setEnabled() flips metrics + tracing together (the opt-in,
 * export-oriented halves). The logger keeps its own switch (enabled
 * by --log-out), and the flight recorder is on by default — neither
 * is touched here.
 */

#ifndef REQISC_OBS_OBS_HH
#define REQISC_OBS_OBS_HH

#include "obs/flight.hh"
#include "obs/log.hh"
#include "obs/metrics.hh"
#include "obs/span.hh"

namespace reqisc::obs
{

/** Turn metrics collection and span tracing on/off together. */
inline void setEnabled(bool on)
{
    Registry::global().setEnabled(on);
    Tracer::global().setEnabled(on);
}

/** True when either half of the layer is recording. */
inline bool enabled()
{
    return Registry::global().enabled() ||
           Tracer::global().enabled();
}

} // namespace reqisc::obs

#endif // REQISC_OBS_OBS_HH
