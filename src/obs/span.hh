/**
 * @file
 * Structured spans: RAII-timed, nestable, cross-thread-linkable
 * trace sections buffered per thread and collectable as a flat event
 * list (exported to Chrome trace-event JSON by obs/trace_json.hh).
 *
 * Model: each thread owns a ThreadLog (registered with the Tracer on
 * first use, retired at thread exit so no events are lost). Opening a
 * Span allocates a process-unique id, parents it on the owning
 * thread's innermost live span (or an explicit SpanContext for
 * cross-thread links, e.g. BlockPool tasks parented on the job span
 * that enqueued them) and pushes it on the thread's span stack;
 * stop()/destruction pops the stack and appends one completed
 * TraceEvent. Timestamps are std::chrono::steady_clock nanoseconds
 * relative to the tracer's epoch (captured at construction).
 *
 * Cost model mirrors obs/metrics.hh: when the tracer is disabled at
 * Span construction the span is inert — no id, no buffering, just
 * the clock reads needed for stop()'s return value (PassManager
 * feeds PassTrace from it, so the measurement must exist even with
 * tracing off). Tracer::global() is a leaky singleton, disabled by
 * default.
 */

#ifndef REQISC_OBS_SPAN_HH
#define REQISC_OBS_SPAN_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace reqisc::obs
{

using SteadyTime = std::chrono::steady_clock::time_point;

/** Opaque span identity for cross-thread parent links (0 = none). */
struct SpanContext
{
    std::uint64_t id = 0;
};

/** One completed span, ready for export. */
struct TraceEvent
{
    std::string name;
    std::uint64_t id = 0;
    std::uint64_t parent = 0;   //!< 0 = root
    std::uint32_t tid = 0;      //!< dense per-thread index
    std::int64_t startNs = 0;   //!< steady ns since tracer epoch
    std::int64_t durNs = 0;
    std::vector<std::pair<std::string, std::string>> args;
};

namespace detail
{
struct ThreadLog;
}

/** Process-wide span sink; see @file for the model. */
class Tracer
{
  public:
    Tracer();
    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    /** Leaky singleton (safe to use from static destructors). */
    static Tracer &global();

    void setEnabled(bool on)
    {
        enabled_.store(on, std::memory_order_relaxed);
    }
    bool enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /**
     * Copy out every buffered event (live and retired threads),
     * sorted by start time. Spans still open are not included.
     */
    std::vector<TraceEvent> collect();

    /** Drop all buffered events (open spans still record on stop). */
    void clear();

    SteadyTime epoch() const { return epoch_; }

    /** Internal: hand a thread's log back at thread exit. */
    void retire(detail::ThreadLog *log);

  private:
    friend class Span;
    friend struct detail::ThreadLog;
    friend SpanContext currentSpan();
    friend void recordSpan(const std::string &, SteadyTime,
                           SteadyTime, SpanContext);

    detail::ThreadLog &threadLog();
    std::uint64_t nextId()
    {
        return nextId_.fetch_add(1, std::memory_order_relaxed) + 1;
    }

    std::atomic<bool> enabled_{false};
    std::atomic<std::uint64_t> nextId_{0};
    SteadyTime epoch_;

    std::mutex mu_;  //!< guards the log lists + tid assignment
    std::uint32_t nextTid_ = 0;
    std::vector<detail::ThreadLog *> live_;
    std::vector<std::unique_ptr<detail::ThreadLog>> retired_;
};

namespace detail
{

/** Per-thread event buffer + open-span stack (owner-only stack). */
struct ThreadLog
{
    Tracer *tracer = nullptr;
    std::uint32_t tid = 0;
    std::mutex mu;  //!< events only; stack is owner-thread-only
    std::vector<TraceEvent> events;
    std::vector<std::uint64_t> stack;
};

} // namespace detail

/**
 * RAII trace section. Records to Tracer::global(). The enabled check
 * happens at construction: a span opened while tracing is off stays
 * inert even if tracing turns on before it closes (and vice versa),
 * so toggling mid-span never unbalances the thread's span stack.
 */
class Span
{
  public:
    /** Open now, parented on the thread's innermost live span. */
    explicit Span(std::string name);
    /** Open now with an explicit (possibly cross-thread) parent. */
    Span(std::string name, SpanContext parent);
    /**
     * Open with a backdated start (e.g. a queue-wait measured from
     * an enqueue timestamp), parented on the innermost live span.
     */
    Span(std::string name, SteadyTime start);

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

    ~Span();

    /**
     * Close the span and return its duration in seconds. Idempotent
     * (later calls return the first duration). Returns a valid
     * duration even when tracing is disabled.
     */
    double stop();

    /** Attach a key=value to the exported event (active spans only). */
    void annotate(const std::string &key, const std::string &value);

    /** Identity for cross-thread parent links ({0} when inert). */
    SpanContext context() const { return {id_}; }

  private:
    void open(SpanContext explicitParent, bool useStackParent);

    std::string name_;
    SteadyTime start_;
    std::uint64_t id_ = 0;  //!< 0 = inert
    std::uint64_t parent_ = 0;
    bool stopped_ = false;
    double seconds_ = 0.0;
    std::vector<std::pair<std::string, std::string>> args_;
};

/**
 * Record an already-measured interval as a completed span (used
 * where RAII does not fit, e.g. queue wait computed from an enqueue
 * timestamp carried in the job). With parent.id == 0 the event is
 * parented on the calling thread's innermost live span.
 */
void recordSpan(const std::string &name, SteadyTime start,
                SteadyTime end, SpanContext parent = {});

/** Innermost live span on this thread ({0} if none/disabled). */
SpanContext currentSpan();

/**
 * Name of the job this thread is currently working under ("" when
 * outside any JobScope). Stored in a fixed, trivially-destructible
 * thread-local buffer so it stays readable from late/teardown
 * instrumentation paths. Spans opened inside a scope auto-annotate
 * themselves with job=<name>, and the flight recorder + structured
 * logger stamp it on every record, so traces, logs and flight dumps
 * all correlate by job without manual matching.
 */
const char *currentJobName();

/**
 * RAII job attribution scope: everything this thread records between
 * construction and destruction (spans, log records, flight events —
 * and, via BlockPool's capture, block tasks fanned out to helper
 * threads) carries this job name. Scopes nest; the previous name is
 * restored on destruction. Names longer than the flight-event job
 * field (31 chars) are truncated consistently everywhere.
 */
class JobScope
{
  public:
    explicit JobScope(const std::string &job);
    JobScope(const JobScope &) = delete;
    JobScope &operator=(const JobScope &) = delete;
    ~JobScope();

  private:
    std::string prev_;
};

} // namespace reqisc::obs

#endif // REQISC_OBS_SPAN_HH
