/**
 * @file
 * Thread-safe metrics registry: counters, gauges and fixed-bucket
 * histograms with Prometheus-exposition-format snapshots.
 *
 * The hot-path contract is contention-freedom: every counter and
 * histogram owns an array of cache-line-aligned per-thread cells
 * indexed by a dense thread slot (detail::threadSlot), so concurrent
 * writers touch disjoint cache lines and a write is one relaxed
 * atomic RMW behind a relaxed enabled check. Cells are merged only at
 * snapshot time. A snapshot taken while writers are running is
 * eventually consistent (it may miss increments still in flight);
 * after joining the writing threads it is exact. More threads than
 * slots wrap around and share cells — still correct (all cell ops are
 * atomic), just no longer contention-free.
 *
 * Gauges are a single atomic (last-set-wins across threads), which
 * matches their use: low-frequency level signals (queue depth,
 * jobs in flight), not high-rate accumulation.
 *
 * A Registry is instantiable for tests; production code uses the
 * process-wide Registry::global(), which starts *disabled* — every
 * write is a no-op costing one relaxed load until setEnabled(true)
 * (the near-zero-cost-when-off contract, bench-guarded by
 * bench_service's obsOverhead metric). Metric registration is
 * independent of the enabled flag and idempotent by name.
 *
 * This layer is at the very bottom of the dependency order: it may
 * be used from any other subsystem and depends only on the standard
 * library. All time-valued metrics are seconds measured with
 * std::chrono::steady_clock (the repo-wide clock discipline).
 */

#ifndef REQISC_OBS_METRICS_HH
#define REQISC_OBS_METRICS_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace reqisc::obs
{

namespace detail
{

/** Per-thread cell count per metric (wraps beyond this, see @file). */
inline constexpr std::size_t kSlots = 64;

/** Dense per-thread slot in [0, kSlots), stable for the thread. */
std::size_t threadSlot();

struct alignas(64) CounterCell
{
    std::atomic<std::int64_t> v{0};
};

} // namespace detail

class Registry;

/** Monotonically increasing sum (Prometheus `counter`). */
class Counter
{
  public:
    /**
     * Out of line (unlike PR 7) so every delta also reaches the
     * always-on flight recorder before the registry enabled check.
     */
    void add(std::int64_t n = 1);
    void inc() { add(1); }

    /** Merged value over all thread cells. */
    std::int64_t value() const;

  private:
    friend class Registry;
    Counter(std::string name, std::string help,
            const std::atomic<bool> *enabled);

    std::string name_, help_;
    const std::atomic<bool> *enabled_;
    std::unique_ptr<detail::CounterCell[]> cells_;
};

/** Last-set-wins level signal (Prometheus `gauge`). */
class Gauge
{
  public:
    void set(double v);
    void add(double d);  //!< CAS loop; for inc/dec-style gauges
    double value() const;

  private:
    friend class Registry;
    Gauge(std::string name, std::string help,
          const std::atomic<bool> *enabled);

    std::string name_, help_;
    const std::atomic<bool> *enabled_;
    std::atomic<std::uint64_t> bits_;  //!< bit-cast double
};

/**
 * Fixed-bucket histogram (Prometheus `histogram`): cumulative `le`
 * buckets over strictly increasing finite upper bounds plus an
 * implicit +Inf overflow bucket, a total count and a value sum.
 */
class Histogram
{
  public:
    void observe(double v);

    const std::vector<double> &bounds() const { return bounds_; }

  private:
    friend class Registry;
    Histogram(std::string name, std::string help,
              std::vector<double> bounds,
              const std::atomic<bool> *enabled);

    struct alignas(64) Cell
    {
        /** One per finite bound plus the +Inf overflow bucket. */
        std::unique_ptr<std::atomic<std::uint64_t>[]> buckets;
        std::atomic<std::uint64_t> count{0};
        std::atomic<double> sum{0.0};
    };

    std::string name_, help_;
    std::vector<double> bounds_;
    const std::atomic<bool> *enabled_;
    std::unique_ptr<Cell[]> cells_;
};

// ---- Snapshots ---------------------------------------------------------

struct CounterSnapshot
{
    std::string name, help;
    std::int64_t value = 0;
};

struct GaugeSnapshot
{
    std::string name, help;
    double value = 0.0;
};

struct HistogramSnapshot
{
    std::string name, help;
    std::vector<double> bounds;          //!< finite upper bounds
    std::vector<std::uint64_t> buckets;  //!< per bucket; last = +Inf
    std::uint64_t count = 0;
    double sum = 0.0;

    /**
     * Prometheus histogram_quantile semantics: find the bucket the
     * q-rank falls in and interpolate linearly inside it (lower edge
     * of the first bucket is 0 — observations are assumed
     * non-negative, which every time-valued metric here satisfies).
     * Ranks beyond the last finite bound return that bound.
     *
     * An empty histogram (count == 0) has no quantiles: returns
     * quiet NaN — the same sentinel Prometheus's
     * histogram_quantile() yields with no samples — so a consumer
     * (obsreport) can distinguish "no data" from a genuine 0-valued
     * quantile instead of dividing by a zero count. Check with
     * std::isnan before using the result.
     */
    double quantile(double q) const;
};

struct MetricsSnapshot
{
    std::vector<CounterSnapshot> counters;
    std::vector<GaugeSnapshot> gauges;
    std::vector<HistogramSnapshot> histograms;

    /**
     * Prometheus text exposition format (version 0.0.4): HELP/TYPE
     * comment pairs, one sample line per counter/gauge, cumulative
     * `le`-labelled bucket lines plus _sum/_count per histogram.
     * Families are emitted name-sorted within each type; doubles are
     * shortest-round-trip formatted.
     */
    std::string prometheusText() const;
};

// ---- Registry ----------------------------------------------------------

/** Owner of the metric objects; see @file for the hot-path model. */
class Registry
{
  public:
    Registry() = default;
    Registry(const Registry &) = delete;
    Registry &operator=(const Registry &) = delete;

    /** Process-wide registry (leaky singleton; starts disabled). */
    static Registry &global();

    void setEnabled(bool on)
    {
        enabled_.store(on, std::memory_order_relaxed);
    }
    bool enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /**
     * Register (or fetch) a metric by name. Returned pointers are
     * stable for the registry's lifetime. Re-registering an existing
     * name of the same type returns the existing metric (help and,
     * for histograms, bounds of the first registration win); a name
     * clash across types throws std::invalid_argument.
     */
    Counter *counter(const std::string &name,
                     const std::string &help);
    Gauge *gauge(const std::string &name, const std::string &help);
    Histogram *histogram(const std::string &name,
                         const std::string &help,
                         std::vector<double> bounds = {});

    /** Merge every metric's cells into a consistent-enough copy. */
    MetricsSnapshot snapshot() const;

  private:
    std::atomic<bool> enabled_{false};
    mutable std::mutex mu_;  //!< registration + snapshot only
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/**
 * Default histogram bounds for second-valued observations:
 * log-spaced 1 µs .. 10 s (1-2.5-5 decades), covering cache
 * verifications through whole-job compiles.
 */
std::vector<double> defaultTimeBuckets();

/**
 * Prometheus exposition of the global registry — the string the
 * future compile daemon will serve on /metrics, and what
 * `reqisc-compile --metrics-out` writes.
 */
std::string metricsSnapshot();

} // namespace reqisc::obs

#endif // REQISC_OBS_METRICS_HH
