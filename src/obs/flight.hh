/**
 * @file
 * Always-on flight recorder: a black box that keeps the last few
 * hundred observability events per thread in fixed-size lock-free
 * ring buffers, so that when a job fails or the process dies on a
 * fatal signal there is always a recent-history dump to read —
 * without ever enabling the (opt-in) tracer or metrics registry.
 *
 * Model: each thread owns one single-writer ring of kRingCapacity
 * pre-sized slots (registered in a fixed global table on first use,
 * never freed, so the table stays traversable from a signal
 * handler). A record is a fixed-layout Event — span begin/end, log
 * record, or metric delta — stamped with a process-global sequence
 * number, a steady-clock timestamp on the tracer's epoch (so flight
 * dumps line up with exported traces), and the current JobScope
 * name. Writers serialize the event into the slot as relaxed
 * word-sized atomic stores and then publish by bumping the ring
 * head (release); readers copy slots with relaxed loads and discard
 * any slot the head overtook while copying (seqlock-style torn-read
 * rejection), so no lock is ever taken on the hot path or in the
 * dump path.
 *
 * Dump triggers: job failure (CompileService), fatal signal
 * (installSignalHandlers(): SIGSEGV/SIGABRT/SIGBUS/SIGFPE/SIGILL via
 * an async-signal-safe writer that uses only open/write, atomics and
 * hand-rolled formatting — no malloc, no locks), or on demand
 * (reqisc-compile --flight-dump FILE dumps at exit). The dump is one
 * self-contained JSON document; see docs/OBSERVABILITY.md.
 *
 * Memory bound: kMaxThreads rings x kRingCapacity slots x
 * sizeof(Event) (~184 B) — threads beyond the table capacity drop
 * their events (counted in droppedThreadCount()) rather than grow.
 *
 * Enabled by default; the cost per record (one clock read, a few
 * bounded string copies and ~23 relaxed stores) is paid identically
 * whether the tracer/registry are on or off, so it cannot move the
 * bench_service obsEfficiency perf-guard ratio.
 */

#ifndef REQISC_OBS_FLIGHT_HH
#define REQISC_OBS_FLIGHT_HH

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace reqisc::obs::flight
{

/** What an Event records; see kindName() for the wire spelling. */
enum class Kind : std::uint8_t
{
    SpanBegin = 0,  //!< a Span opened (value unused)
    SpanEnd = 1,    //!< a Span closed (value = duration ns)
    Log = 2,        //!< a log record (level = severity)
    Counter = 3,    //!< counter increment (value = delta)
    Gauge = 4,      //!< gauge update (value = new value)
    Histogram = 5,  //!< histogram observation (value = sample)
};

/** Stable lower-camel wire name ("spanBegin", ..., "histogram"). */
const char *kindName(Kind k);

inline constexpr std::size_t kRingCapacity = 256;
inline constexpr std::size_t kMaxThreads = 128;
inline constexpr std::size_t kNameBytes = 56;
inline constexpr std::size_t kDetailBytes = 64;
inline constexpr std::size_t kJobBytes = 32;

/**
 * One recorded event. Fixed layout, trivially copyable (slots are
 * copied word-wise through atomics); strings are NUL-terminated and
 * truncated to their field size.
 */
struct Event
{
    std::uint64_t seq = 0;   //!< process-global, 1-based, dense
    std::int64_t tsNs = 0;   //!< steady ns since the tracer epoch
    double value = 0.0;      //!< kind-dependent payload
    std::uint32_t tid = 0;   //!< dense flight thread index
    std::uint8_t kind = 0;   //!< Kind
    std::uint8_t level = 0;  //!< log severity (Kind::Log only)
    std::uint16_t pad = 0;
    char name[kNameBytes] = {};     //!< span/metric/component name
    char detail[kDetailBytes] = {}; //!< log message / extra context
    char job[kJobBytes] = {};       //!< JobScope name ("" = none)
};

/** Recorder on/off (default ON — this is the always-on black box). */
bool enabled();
void setEnabled(bool on);

/** Record an event now on this thread's ring (no-op when off). */
void record(Kind kind, const char *name, const char *detail = "",
            double value = 0.0, int level = 0);

/** Record with an explicit timestamp (backdated span ends etc.). */
void recordAt(std::chrono::steady_clock::time_point when, Kind kind,
              const char *name, const char *detail = "",
              double value = 0.0, int level = 0);

/**
 * Copy out every currently-readable event, merged across threads
 * and sorted by seq (i.e. global record order). Torn slots (lapped
 * by their writer mid-copy) and events recorded before the last
 * clear() are excluded. Safe to call concurrently with writers.
 *
 * Capacity caveat: once a thread has recorded kRingCapacity events,
 * its oldest readable slot is the one its writer may already be
 * reusing (the write is only visible after the head is published),
 * so a snapshot exposes at most kRingCapacity - 1 events per thread
 * — the price of keeping the hot path lock-free.
 */
std::vector<Event> snapshotEvents();

/** The snapshot serialized as the flight-dump JSON document. */
std::string snapshotJson(const char *trigger);

/**
 * Hide every event recorded so far from future snapshots/dumps
 * (watermark-based: rings are untouched, so this is safe against
 * concurrent writers). Test isolation helper.
 */
void clear();

/**
 * Set (or, with "", unset) the file the automatic triggers write:
 * job-failure dumps and the fatal-signal handler both go here.
 */
void setDumpPath(const std::string &path);
std::string dumpPath();

/**
 * Write a dump to the configured path with the given trigger tag.
 * Returns false when no path is set or the write fails.
 */
bool dumpNow(const char *trigger);

/** Write a dump to an explicit path (used by tests and the CLI). */
bool dumpToFile(const std::string &path, const char *trigger);

/**
 * Install SIGSEGV/SIGABRT/SIGBUS/SIGFPE/SIGILL handlers
 * (SA_RESETHAND) that write a dump to the configured path through
 * the async-signal-safe writer and then re-raise so the process
 * still dies with the original signal. Idempotent.
 */
void installSignalHandlers();

/** Threads that found the ring table full and record nothing. */
std::uint64_t droppedThreadCount();

} // namespace reqisc::obs::flight

#endif // REQISC_OBS_FLIGHT_HH
