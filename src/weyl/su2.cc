#include "weyl/su2.hh"

#include <cmath>
#include <numbers>

namespace reqisc::weyl
{

using qmath::Complex;
using qmath::Matrix;

Matrix
u3Matrix(double theta, double phi, double lambda)
{
    const double c = std::cos(theta / 2.0);
    const double s = std::sin(theta / 2.0);
    Matrix m(2, 2);
    m(0, 0) = c;
    m(0, 1) = -std::exp(Complex(0.0, lambda)) * s;
    m(1, 0) = std::exp(Complex(0.0, phi)) * s;
    m(1, 1) = std::exp(Complex(0.0, phi + lambda)) * c;
    return m;
}

U3Angles
u3Angles(const Matrix &u)
{
    assert(u.rows() == 2 && u.cols() == 2);
    U3Angles a;
    const double c = std::abs(u(0, 0));
    const double s = std::abs(u(1, 0));
    a.theta = 2.0 * std::atan2(s, c);
    const double eps = 1e-12;
    if (c > eps && s > eps) {
        a.phase = std::arg(u(0, 0));
        a.phi = std::arg(u(1, 0)) - a.phase;
        a.lambda = std::arg(-u(0, 1)) - a.phase;
    } else if (c > eps) {
        // Diagonal gate: only phi + lambda is physical.
        a.phase = std::arg(u(0, 0));
        a.phi = 0.0;
        a.lambda = std::arg(u(1, 1)) - a.phase;
    } else {
        // Anti-diagonal gate (theta = pi): only phi - lambda matters.
        a.phase = std::arg(u(1, 0));
        a.phi = 0.0;
        a.lambda = std::arg(-u(0, 1)) - a.phase;
    }
    return a;
}

bool
isIdentityUpToPhase(const Matrix &u, double tol)
{
    return u.approxEqualUpToPhase(Matrix::identity(u.rows()), tol);
}

} // namespace reqisc::weyl
