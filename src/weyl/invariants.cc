#include "weyl/invariants.hh"

#include <cmath>

namespace reqisc::weyl
{

namespace
{

/** Determinant of a 4x4 complex matrix (Gaussian elimination). */
Complex
det4(Matrix t)
{
    Complex d(1.0, 0.0);
    for (int col = 0; col < 4; ++col) {
        int piv = col;
        for (int r = col + 1; r < 4; ++r)
            if (std::abs(t(r, col)) > std::abs(t(piv, col)))
                piv = r;
        if (std::abs(t(piv, col)) < 1e-300)
            return {0.0, 0.0};
        if (piv != col) {
            for (int c = 0; c < 4; ++c)
                std::swap(t(piv, c), t(col, c));
            d = -d;
        }
        d *= t(col, col);
        for (int r = col + 1; r < 4; ++r) {
            const Complex f = t(r, col) / t(col, col);
            for (int c = col; c < 4; ++c)
                t(r, c) -= f * t(col, c);
        }
    }
    return d;
}

} // namespace

MakhlinInvariants
makhlinInvariants(const Matrix &u)
{
    assert(u.rows() == 4 && u.cols() == 4);
    const Matrix &mb = magicBasis();
    const Matrix m = mb.dagger() * u * mb;
    const Matrix mtm = m.transpose() * m;
    const Complex tr = mtm.trace();
    const Complex tr2 = (mtm * mtm).trace();
    const Complex det = det4(u);
    MakhlinInvariants inv;
    inv.g1 = tr * tr / (16.0 * det);
    inv.g2 = ((tr * tr - tr2) / (4.0 * det)).real();
    return inv;
}

MakhlinInvariants
makhlinFromCoord(const WeylCoord &c)
{
    return makhlinInvariants(canonicalGate(c));
}

bool
locallyEquivalentFast(const Matrix &u, const Matrix &v, double tol)
{
    return makhlinInvariants(u).approxEqual(makhlinInvariants(v),
                                            tol);
}

} // namespace reqisc::weyl
