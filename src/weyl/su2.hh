/**
 * @file
 * One-qubit gate parameterization (U3 Euler angles).
 *
 * The compiler emits circuits over the {Can, U3} gate set, so every
 * 2x2 local factor produced by KAK or synthesis must be expressible as
 * U3(theta, phi, lambda) up to a tracked global phase.
 *
 * Angles are radians, following the OpenQASM u3 convention:
 * U3(theta, phi, lambda) = Rz(phi) Ry(theta) Rz(lambda) up to global
 * phase, with theta in [0, pi].
 */

#ifndef REQISC_WEYL_SU2_HH
#define REQISC_WEYL_SU2_HH

#include "qmath/matrix.hh"

namespace reqisc::weyl
{

/** Euler angles with the global phase of the input. */
struct U3Angles
{
    double theta = 0.0;
    double phi = 0.0;
    double lambda = 0.0;
    double phase = 0.0;   //!< input = e^{i phase} * U3(theta,phi,lambda)
};

/**
 * The standard U3 matrix
 *   [[cos(t/2),            -e^{i l} sin(t/2)],
 *    [e^{i p} sin(t/2),  e^{i(p+l)} cos(t/2)]].
 */
qmath::Matrix u3Matrix(double theta, double phi, double lambda);

/** Extract Euler angles from an arbitrary 2x2 unitary. */
U3Angles u3Angles(const qmath::Matrix &u);

/** True iff u is the identity up to global phase. */
bool isIdentityUpToPhase(const qmath::Matrix &u, double tol = 1e-9);

} // namespace reqisc::weyl

#endif // REQISC_WEYL_SU2_HH
