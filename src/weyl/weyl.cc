#include "weyl/weyl.hh"

#include <algorithm>
#include <array>
#include <cmath>
#include <numbers>
#include <sstream>

#include "qmath/eig.hh"

namespace reqisc::weyl
{

namespace
{

constexpr double kPi = std::numbers::pi;
constexpr double kPi2 = kPi / 2.0;
constexpr double kPi4 = kPi / 4.0;

using qmath::kI;

/** Determinant of a small complex matrix by Gaussian elimination. */
Complex
determinant(Matrix t)
{
    const int n = t.rows();
    Complex d(1.0, 0.0);
    for (int col = 0; col < n; ++col) {
        int piv = col;
        for (int r = col + 1; r < n; ++r)
            if (std::abs(t(r, col)) > std::abs(t(piv, col)))
                piv = r;
        if (std::abs(t(piv, col)) < 1e-300)
            return {0.0, 0.0};
        if (piv != col) {
            for (int c = 0; c < n; ++c)
                std::swap(t(piv, c), t(col, c));
            d = -d;
        }
        d *= t(col, col);
        for (int r = col + 1; r < n; ++r) {
            const Complex f = t(r, col) / t(col, col);
            for (int c = col; c < n; ++c)
                t(r, c) -= f * t(col, c);
        }
    }
    return d;
}

/** Diagonal signs of M^dagger P M for the two-qubit Paulis P. */
struct MagicSigns
{
    std::array<double, 4> xx, yy, zz;
};

const MagicSigns &
magicSigns()
{
    static const MagicSigns signs = [] {
        MagicSigns s;
        const Matrix &m = magicBasis();
        const Matrix dx = m.dagger() * qmath::pauliXX() * m;
        const Matrix dy = m.dagger() * qmath::pauliYY() * m;
        const Matrix dz = m.dagger() * qmath::pauliZZ() * m;
        for (int i = 0; i < 4; ++i) {
            s.xx[i] = dx(i, i).real();
            s.yy[i] = dy(i, i).real();
            s.zz[i] = dz(i, i).real();
        }
        return s;
    }();
    return signs;
}

const Matrix &
sGate()
{
    static const Matrix s{{1.0, 0.0}, {0.0, kI}};
    return s;
}

const Matrix &
hGate()
{
    static const Matrix h = [] {
        const double r = 1.0 / std::sqrt(2.0);
        return Matrix{{r, r}, {r, -r}};
    }();
    return h;
}

/** sqrt(X) rotation exp(-i pi/4 X), used to swap the y and z axes. */
const Matrix &
vGate()
{
    static const Matrix v = [] {
        const double r = 1.0 / std::sqrt(2.0);
        return Matrix{{Complex(r, 0), Complex(0, -r)},
                      {Complex(0, -r), Complex(r, 0)}};
    }();
    return v;
}

/**
 * In-place canonicalization moves. Each move rewrites
 *   phase * (a1 (x) a2) * Can(c) * (b1 (x) b2)
 * into an equal product with transformed coordinates.
 */
struct Factors
{
    Complex phase;
    Matrix a1, a2, b1, b2;
    WeylCoord c;
};

double &
axisRef(WeylCoord &c, int axis)
{
    return axis == 0 ? c.x : (axis == 1 ? c.y : c.z);
}

/** Shift coordinate 'axis' by -k*pi/2 (translation move). */
void
moveTranslate(Factors &f, int axis, int k)
{
    if (k == 0)
        return;
    axisRef(f.c, axis) -= k * kPi2;
    // Can(c) = Can(c') * (-i P)^k with P = XX/YY/ZZ; fold the Pauli
    // into the right factors and the phase globally.
    const Matrix &p = axis == 0 ? qmath::pauliX()
                    : axis == 1 ? qmath::pauliY() : qmath::pauliZ();
    int km = ((k % 4) + 4) % 4;
    static const Complex iPow[4] = {Complex(1, 0), Complex(0, -1),
                                    Complex(-1, 0), Complex(0, 1)};
    f.phase *= iPow[km];
    if (km % 2 == 1) {
        f.b1 = p * f.b1;
        f.b2 = p * f.b2;
    }
}

/** Flip the signs of two coordinates (axis pair identified by the
 *  remaining fixed axis). */
void
moveFlip(Factors &f, int fixed_axis)
{
    // Conjugating by (P (x) I) with P the Pauli of the fixed axis
    // flips the signs of the other two coordinates.
    const Matrix &p = fixed_axis == 0 ? qmath::pauliX()
                    : fixed_axis == 1 ? qmath::pauliY()
                    : qmath::pauliZ();
    for (int axis = 0; axis < 3; ++axis)
        if (axis != fixed_axis)
            axisRef(f.c, axis) = -axisRef(f.c, axis);
    f.a1 = f.a1 * p;
    f.b1 = p * f.b1;
}

/** Swap two coordinates via a symmetric local Clifford. */
void
moveSwap(Factors &f, int axis_a, int axis_b)
{
    if (axis_a > axis_b)
        std::swap(axis_a, axis_b);
    const Matrix *k = nullptr;
    if (axis_a == 0 && axis_b == 1)
        k = &sGate();          // swaps x <-> y
    else if (axis_a == 1 && axis_b == 2)
        k = &vGate();          // swaps y <-> z
    else
        k = &hGate();          // swaps x <-> z
    std::swap(axisRef(f.c, axis_a), axisRef(f.c, axis_b));
    // Can(c) = K^dagger Can(c') K with K = k (x) k.
    f.a1 = f.a1 * k->dagger();
    f.a2 = f.a2 * k->dagger();
    f.b1 = (*k) * f.b1;
    f.b2 = (*k) * f.b2;
}

/**
 * Normalize a 2x2 factor to determinant one.
 * @return the removed scalar r such that input = r * output.
 */
Complex
fixDeterminant(Matrix &m)
{
    const Complex det = m(0, 0) * m(1, 1) - m(0, 1) * m(1, 0);
    const Complex root = std::exp(Complex(0.0, 0.5 * std::arg(det))) *
                         std::sqrt(std::abs(det));
    if (std::abs(root) < 1e-300)
        return {1.0, 0.0};
    m *= Complex(1.0, 0.0) / root;
    return root;
}

/** Canonicalize the coordinates of f into the Weyl chamber. */
void
canonicalize(Factors &f)
{
    const double tol = 1e-12;
    // 1. Centered reduction of every coordinate into [-pi/4, pi/4].
    for (int axis = 0; axis < 3; ++axis) {
        const double v = axisRef(f.c, axis);
        const int k = static_cast<int>(std::lround(v / kPi2));
        moveTranslate(f, axis, k);
    }
    // 2. At most one negative coordinate (pairwise sign flips).
    auto negatives = [&]() {
        int count = 0;
        for (int axis = 0; axis < 3; ++axis)
            if (axisRef(f.c, axis) < -tol)
                ++count;
        return count;
    };
    while (negatives() >= 2) {
        int first = -1, second = -1;
        for (int axis = 0; axis < 3; ++axis) {
            if (axisRef(f.c, axis) < -tol) {
                if (first < 0)
                    first = axis;
                else if (second < 0)
                    second = axis;
            }
        }
        // The move flips the two non-fixed axes.
        moveFlip(f, 3 - first - second);
    }
    // 3. Sort by magnitude descending (bubble with swap moves).
    for (int pass = 0; pass < 3; ++pass)
        for (int axis = 0; axis < 2; ++axis)
            if (std::abs(axisRef(f.c, axis)) + tol <
                std::abs(axisRef(f.c, axis + 1)))
                moveSwap(f, axis, axis + 1);
    // 4. Push the (single) negative sign into z.
    if (f.c.x < -tol)
        moveFlip(f, 2);    // flips x and y
    if (f.c.y < -tol)
        moveFlip(f, 0);    // flips y and z
    // A boundary |z| == y case may reintroduce y < 0; prefer z < 0.
    if (f.c.y < -tol)
        moveFlip(f, 0);
    // 5. The x = pi/4 face identifies (pi/4, y, z) ~ (pi/4, y, -z):
    //    enforce z >= 0 there via flip(x,z) + translate.
    if (std::abs(f.c.x - kPi4) < 1e-9 && f.c.z < -tol) {
        moveFlip(f, 1);            // (x,z) -> (-x,-z)
        moveTranslate(f, 0, -1);   // -x -> -x + pi/2 = pi/2 - x
        // x unchanged (= pi/4), z now positive; re-sort y vs z if the
        // flip broke the ordering (cannot happen: |z| <= y).
    }
    // 6. Snap tiny numerical dust so boundary checks are stable.
    for (int axis = 0; axis < 3; ++axis) {
        double &v = axisRef(f.c, axis);
        if (std::abs(v) < 1e-14)
            v = 0.0;
    }
}

} // namespace

bool
WeylCoord::inChamber(double tol) const
{
    if (!(x <= kPi4 + tol && x >= y - tol && y >= std::abs(z) - tol &&
          y >= -tol))
        return false;
    if (std::abs(x - kPi4) < tol && z < -tol)
        return false;
    return true;
}

double
WeylCoord::distance(const WeylCoord &o) const
{
    const double dx = x - o.x, dy = y - o.y, dz = z - o.z;
    return std::sqrt(dx * dx + dy * dy + dz * dz);
}

bool
WeylCoord::approxEqual(const WeylCoord &o, double tol) const
{
    return distance(o) <= tol;
}

std::string
WeylCoord::toString() const
{
    std::ostringstream os;
    os.precision(6);
    os << "(" << x << ", " << y << ", " << z << ")";
    return os.str();
}

WeylCoord WeylCoord::cnot() { return {kPi4, 0.0, 0.0}; }
WeylCoord WeylCoord::iswap() { return {kPi4, kPi4, 0.0}; }
WeylCoord WeylCoord::swap() { return {kPi4, kPi4, kPi4}; }
WeylCoord WeylCoord::sqisw() { return {kPi / 8.0, kPi / 8.0, 0.0}; }
WeylCoord WeylCoord::bgate() { return {kPi4, kPi / 8.0, 0.0}; }
WeylCoord WeylCoord::cv() { return {kPi / 8.0, 0.0, 0.0}; }

Matrix
canonicalGate(const WeylCoord &c)
{
    // Closed form in the computational basis: the generator splits
    // into the {|00>,|11>} block (x - y) and the {|01>,|10>} block
    // (x + y), with ZZ contributing the phases exp(-+ i z).
    Matrix u(4, 4);
    const Complex em = std::exp(Complex(0.0, -c.z));
    const Complex ep = std::exp(Complex(0.0, c.z));
    const double m = c.x - c.y;
    const double p = c.x + c.y;
    u(0, 0) = em * std::cos(m);
    u(0, 3) = em * Complex(0.0, -1.0) * std::sin(m);
    u(3, 0) = u(0, 3);
    u(3, 3) = u(0, 0);
    u(1, 1) = ep * std::cos(p);
    u(1, 2) = ep * Complex(0.0, -1.0) * std::sin(p);
    u(2, 1) = u(1, 2);
    u(2, 2) = u(1, 1);
    return u;
}

const Matrix &
magicBasis()
{
    static const Matrix m = [] {
        const double r = 1.0 / std::sqrt(2.0);
        Matrix mm(4, 4);
        mm(0, 0) = r;       mm(0, 3) = r * kI;
        mm(1, 1) = r * kI;  mm(1, 2) = r;
        mm(2, 1) = r * kI;  mm(2, 2) = -r;
        mm(3, 0) = r;       mm(3, 3) = -r * kI;
        return mm;
    }();
    return m;
}

Matrix
KakDecomposition::reconstruct() const
{
    return kron(a1, a2) * canonicalGate(coord) * kron(b1, b2) * phase;
}

KakDecomposition
kakDecompose(const Matrix &u)
{
    assert(u.rows() == 4 && u.cols() == 4);

    // Normalize into SU(4), remembering the removed phase.
    const Complex det = determinant(u);
    const Complex phase0 =
        std::exp(Complex(0.0, std::arg(det) / 4.0)) *
        std::pow(std::abs(det), 0.25);
    Matrix su = u * (Complex(1.0, 0.0) / phase0);

    const Matrix &m = magicBasis();
    const Matrix up = m.dagger() * su * m;
    const Matrix m2 = up.transpose() * up;

    // Split into commuting real symmetric parts and diagonalize.
    Matrix re(4, 4), im(4, 4);
    for (int i = 0; i < 4; ++i)
        for (int j = 0; j < 4; ++j) {
            re(i, j) = Complex(m2(i, j).real(), 0.0);
            im(i, j) = Complex(m2(i, j).imag(), 0.0);
        }
    const Matrix q = qmath::simultaneousDiagonalize(re, im);

    // Eigenphases theta_k with Delta^2 = D = q^T m2 q.
    const Matrix d = q.transpose() * m2 * q;
    std::array<double, 4> theta;
    for (int i = 0; i < 4; ++i)
        theta[i] = 0.5 * std::arg(d(i, i));

    // Make det(Delta) real positive so O1 lands in SO(4).
    Matrix delta_inv(4, 4);
    auto buildDeltaInv = [&]() {
        for (int i = 0; i < 4; ++i)
            delta_inv(i, i) = std::exp(Complex(0.0, -theta[i]));
    };
    buildDeltaInv();
    Matrix o1 = up * q * delta_inv;
    if (determinant(o1).real() < 0.0) {
        theta[0] -= kPi;
        buildDeltaInv();
        o1 = up * q * delta_inv;
    }

    // Raw coordinates from the eigenphases via the magic-basis signs.
    const MagicSigns &sg = magicSigns();
    WeylCoord raw;
    for (int i = 0; i < 4; ++i) {
        raw.x += -0.25 * theta[i] * sg.xx[i];
        raw.y += -0.25 * theta[i] * sg.yy[i];
        raw.z += -0.25 * theta[i] * sg.zz[i];
    }
    // Residual uniform component of theta is a global phase.
    double uniform = 0.0;
    for (int i = 0; i < 4; ++i)
        uniform += 0.25 * (theta[i] +
                           raw.x * sg.xx[i] + raw.y * sg.yy[i] +
                           raw.z * sg.zz[i]);

    // Back to the computational basis.
    const Matrix left = m * o1 * m.dagger();
    const Matrix right = m * q.transpose() * m.dagger();

    Factors f;
    f.c = raw;
    f.phase = phase0 * std::exp(Complex(0.0, uniform));

    Matrix a1, a2, b1, b2;
    double res_a = qmath::kronFactor2x2(left, a1, a2);
    double res_b = qmath::kronFactor2x2(right, b1, b2);
    (void)res_a;
    (void)res_b;
    // Normalize factors into SU(2) and fold phases out.
    const Complex pa = fixDeterminant(a1) * fixDeterminant(a2);
    const Complex pb = fixDeterminant(b1) * fixDeterminant(b2);
    // pa/pb track determinant magnitudes; recover the exact residual
    // phases by direct comparison (robust against factor scaling).
    (void)pa;
    (void)pb;
    auto residualPhase = [](const Matrix &prod, const Matrix &target) {
        // target = phase * prod with prod, target unitary.
        Complex acc(0.0, 0.0);
        for (int i = 0; i < 4; ++i)
            for (int j = 0; j < 4; ++j)
                acc += std::conj(prod(i, j)) * target(i, j);
        return acc / std::abs(acc);
    };
    f.phase *= residualPhase(kron(a1, a2), left);
    f.phase *= residualPhase(kron(b1, b2), right);
    f.a1 = a1;
    f.a2 = a2;
    f.b1 = b1;
    f.b2 = b2;

    canonicalize(f);

    // Re-normalize the factors into SU(2) after the moves (Pauli and
    // Clifford multiplications can change determinants by phases).
    auto renorm = [&](Matrix &first, Matrix &second) {
        const Complex d1 = determinant(first);
        const Complex d2 = determinant(second);
        const Complex r1 = std::exp(Complex(0.0, 0.5 * std::arg(d1)));
        const Complex r2 = std::exp(Complex(0.0, 0.5 * std::arg(d2)));
        first *= Complex(1.0, 0.0) / r1;
        second *= Complex(1.0, 0.0) / r2;
        f.phase *= r1 * r2;
    };
    renorm(f.a1, f.a2);
    renorm(f.b1, f.b2);

    KakDecomposition out;
    out.phase = f.phase;
    out.a1 = f.a1;
    out.a2 = f.a2;
    out.b1 = f.b1;
    out.b2 = f.b2;
    out.coord = f.c;
    return out;
}

WeylCoord
weylCoordinate(const Matrix &u)
{
    return kakDecompose(u).coord;
}

bool
locallyEquivalent(const Matrix &u, const Matrix &v, double tol)
{
    return weylCoordinate(u).approxEqual(weylCoordinate(v), tol);
}

WeylCoord
mirrorCoord(const WeylCoord &c)
{
    WeylCoord m;
    if (c.z >= 0.0)
        m = {kPi4 - c.z, kPi4 - c.y, c.x - kPi4};
    else
        m = {kPi4 + c.z, kPi4 - c.y, kPi4 - c.x};
    // On the x = pi/4 face, (pi/4, y, z) ~ (pi/4, y, -z); keep the
    // canonical z >= 0 representative.
    if (std::abs(m.x - kPi4) < 1e-12 && m.z < 0.0)
        m.z = -m.z;
    return m;
}

WeylCoord
randomWeylCoord(qmath::Rng &rng)
{
    return weylCoordinate(qmath::randomUnitary(4, rng));
}

} // namespace reqisc::weyl
