/**
 * @file
 * Makhlin local invariants of two-qubit gates.
 *
 * (G1, G2) with G1 complex and G2 real are invariant under one-qubit
 * gates and determine the local-equivalence class — a cheaper test
 * than a full KAK decomposition, used by the compiler's distinct-
 * SU(4) clustering and by the test suite as an independent oracle.
 *
 * Convention (Makhlin 2002): with M = MB^dagger U MB the magic-basis
 * transform, G1 = tr(M^T M)^2 / (16 det U) and
 * G2 = (tr(M^T M)^2 - tr((M^T M)^2)) / (4 det U), which makes both
 * invariants insensitive to global phase.
 */

#ifndef REQISC_WEYL_INVARIANTS_HH
#define REQISC_WEYL_INVARIANTS_HH

#include "weyl/weyl.hh"

namespace reqisc::weyl
{

/** The Makhlin invariant pair of a two-qubit gate. */
struct MakhlinInvariants
{
    Complex g1{0.0, 0.0};
    double g2 = 0.0;

    bool approxEqual(const MakhlinInvariants &o,
                     double tol = 1e-9) const
    {
        return std::abs(g1 - o.g1) <= tol && std::abs(g2 - o.g2) <=
               tol;
    }
};

/** Compute the invariants of a 4x4 unitary. */
MakhlinInvariants makhlinInvariants(const Matrix &u);

/** Invariants evaluated directly from a Weyl coordinate. */
MakhlinInvariants makhlinFromCoord(const WeylCoord &c);

/**
 * Local-equivalence test via invariants (no KAK); tolerance applies
 * to the invariant distance.
 */
bool locallyEquivalentFast(const Matrix &u, const Matrix &v,
                           double tol = 1e-8);

} // namespace reqisc::weyl

#endif // REQISC_WEYL_INVARIANTS_HH
