/**
 * @file
 * Weyl chamber geometry and the KAK (canonical) decomposition.
 *
 * Conventions follow the paper body: the canonical gate is
 *   Can(x, y, z) := exp(-i (x XX + y YY + z ZZ))
 * and the Weyl chamber is
 *   W := { pi/4 >= x >= y >= |z|, z >= 0 if x = pi/4 }.
 * Any U in U(4) factors as
 *   U = phase * (A1 (x) A2) * Can(x, y, z) * (B1 (x) B2)
 * with A_i, B_i in SU(2); this module computes that factorization and
 * canonicalizes the coordinates into W with explicit, individually
 * verifiable local-correction moves.
 */

#ifndef REQISC_WEYL_WEYL_HH
#define REQISC_WEYL_WEYL_HH

#include <cmath>
#include <string>

#include "qmath/matrix.hh"
#include "qmath/random.hh"

namespace reqisc::weyl
{

using qmath::Complex;
using qmath::Matrix;

/** A point (x, y, z) in (or near) the Weyl chamber. */
struct WeylCoord
{
    double x = 0.0;
    double y = 0.0;
    double z = 0.0;

    /** Chamber membership test (with tolerance on the boundary). */
    bool inChamber(double tol = 1e-9) const;

    /** L1 norm |x|+|y|+|z|, the near-identity metric of Section 4.3. */
    double norm1() const { return std::abs(x) + std::abs(y) +
                                  std::abs(z); }

    /** Euclidean distance to another coordinate. */
    double distance(const WeylCoord &o) const;

    bool approxEqual(const WeylCoord &o, double tol = 1e-9) const;

    std::string toString() const;

    // Coordinates of the named gate classes used throughout the paper.
    static WeylCoord identity() { return {0.0, 0.0, 0.0}; }
    static WeylCoord cnot();    //!< (pi/4, 0, 0), also CZ
    static WeylCoord iswap();   //!< (pi/4, pi/4, 0)
    static WeylCoord swap();    //!< (pi/4, pi/4, pi/4)
    static WeylCoord sqisw();   //!< (pi/8, pi/8, 0)
    static WeylCoord bgate();   //!< (pi/4, pi/8, 0)
    static WeylCoord cv();      //!< (pi/8, 0, 0), controlled-sqrt(X)
};

/** The canonical gate Can(x,y,z) = exp(-i(x XX + y YY + z ZZ)). */
Matrix canonicalGate(const WeylCoord &c);

/** The magic (Bell) basis change matrix M of Appendix A. */
const Matrix &magicBasis();

/**
 * Full KAK decomposition
 * u = phase * (a1 (x) a2) * Can(coord) * (b1 (x) b2).
 */
struct KakDecomposition
{
    Complex phase{1.0, 0.0};
    Matrix a1, a2;     //!< left (applied after Can) SU(2) factors
    Matrix b1, b2;     //!< right (applied before Can) SU(2) factors
    WeylCoord coord;

    /** Rebuild the 4x4 unitary from the factors. */
    Matrix reconstruct() const;
};

/**
 * Decompose a 4x4 unitary. The returned coordinates are always inside
 * the Weyl chamber and reconstruct() equals u to ~1e-12.
 *
 * @param u (approximately) unitary 4x4 input
 */
KakDecomposition kakDecompose(const Matrix &u);

/** Weyl coordinates only (cheaper interface, same algorithm). */
WeylCoord weylCoordinate(const Matrix &u);

/** True iff u and v differ only by one-qubit gates (same coordinate). */
bool locallyEquivalent(const Matrix &u, const Matrix &v,
                       double tol = 1e-8);

/**
 * Coordinates of the mirror gate SWAP * Can(x,y,z) (Section 4.3).
 * Mirroring maps near-identity gates to the far side of the chamber.
 */
WeylCoord mirrorCoord(const WeylCoord &c);

/**
 * Haar-random expectation sample of Weyl coordinates: the coordinate
 * of a Haar-random SU(4) drawn with the given engine.
 */
WeylCoord randomWeylCoord(qmath::Rng &rng);

} // namespace reqisc::weyl

#endif // REQISC_WEYL_WEYL_HH
