/**
 * @file
 * Concrete-chip hardware description: the "R" in RQISA.
 *
 * A Backend is one calibrated device — a connectivity graph whose
 * edges each carry their *own* canonical coupling (a, b, c) and 2Q
 * error rate, and whose qubits each carry their own T1/T2/readout
 * calibration. It is the single hardware source of truth the whole
 * stack consumes:
 *  - route: `topology()` (the SABRE metric),
 *  - isa: `durationModel()` (per-edge genAshN durations) and
 *    `noiseModel()` (per-qubit decoherence, per-edge 2Q error),
 *  - backend/reconfigure.hh: the per-edge native-gate selection loop,
 *  - service + reqisc-compile: `--backend <chip.json>`.
 *
 * Chip files are JSON (schema in docs/ARCHITECTURE.md, examples under
 * examples/chips/). Units follow the repo convention: couplings are
 * canonical coefficients in the reference strength scale (g_ref = 1),
 * all times (T1/T2, durations) are in 1/g_ref units, and `p0` is the
 * 2Q depolarizing rate at the reference duration
 * uarch::conventionalCnotDuration(). Validation is strict and every
 * rejection names the file, line and field (tests/test_backend.cc).
 */

#ifndef REQISC_BACKEND_BACKEND_HH
#define REQISC_BACKEND_BACKEND_HH

#include <limits>
#include <string>
#include <vector>

#include "isa/duration_model.hh"
#include "isa/fidelity.hh"
#include "route/topology.hh"
#include "uarch/coupling.hh"

namespace reqisc::backend
{

/** Per-qubit calibration data. */
struct QubitCalibration
{
    /** Energy-relaxation time, 1/g_ref units; infinity = ideal. */
    double t1 = std::numeric_limits<double>::infinity();
    /** Dephasing time, 1/g_ref units; infinity = ideal. */
    double t2 = std::numeric_limits<double>::infinity();
    /** Readout (measurement) error probability in [0, 1). */
    double readoutError = 0.0;

    /**
     * Combined decoherence rate 0.5 * (1/T1 + 1/T2): the per-unit-
     * time log-fidelity loss the analytic estimators charge while the
     * qubit is exposed (idling mid-circuit or being driven).
     */
    double decayRate() const;
};

/** Per-edge (qubit-pair) calibration data. */
struct EdgeProperties
{
    int a = 0;  //!< endpoint, a < b after normalization
    int b = 1;  //!< endpoint
    /** This edge's canonical coupling Hamiltonian coefficients. */
    uarch::Coupling coupling = uarch::Coupling::xy(1.0);
    /** 2Q depolarizing rate at the reference duration tau0. */
    double p0 = 1e-3;
};

/** One concrete chip: topology + per-edge / per-qubit calibration. */
class Backend
{
  public:
    Backend() = default;

    /**
     * Homogeneous chip: every edge of `topo` gets `cpl` / `p0`,
     * every qubit gets `qubit`. This is the pre-backend repo default
     * expressed as a Backend (bench/common uses it).
     */
    static Backend uniform(const route::Topology &topo,
                           const uarch::Coupling &cpl =
                               uarch::Coupling::xy(1.0),
                           const QubitCalibration &qubit = {},
                           double p0 = 1e-3);

    /**
     * Parse and validate a chip description. `context` prefixes
     * error messages (pass the file name). Throws JsonError with
     * "<context>:<line>: ..." on malformed JSON or any schema
     * violation: missing/mistyped fields, qubit indices out of
     * range, self-loop or duplicate edges, non-positive T1/T2 or
     * coupling strength, non-canonical coupling, p0/readoutError
     * outside [0, 1), or a disconnected topology.
     */
    static Backend fromJson(const std::string &text,
                            const std::string &context = "<json>");

    /** fromJson on a file's contents; context = path. */
    static Backend fromJsonFile(const std::string &path);

    const std::string &name() const { return name_; }
    int numQubits() const
    {
        return static_cast<int>(qubits_.size());
    }
    const std::vector<QubitCalibration> &qubits() const
    {
        return qubits_;
    }
    const QubitCalibration &qubit(int q) const
    {
        return qubits_[static_cast<size_t>(q)];
    }
    const std::vector<EdgeProperties> &edges() const
    {
        return edges_;
    }

    bool hasEdge(int a, int b) const;
    /** Throws std::invalid_argument when (a, b) is not an edge. */
    const EdgeProperties &edge(int a, int b) const;

    /** Connectivity graph (built once at construction). */
    const route::Topology &topology() const { return topo_; }

    /**
     * True when every edge has the same coupling and p0 and every
     * qubit the same calibration (the reconfiguration loop then
     * degenerates to one choice chip-wide).
     */
    bool isHomogeneous(double tol = 1e-12) const;

    /**
     * Scheduler duration model: per-edge couplings installed in
     * isa::DurationModel::edgeCoupling, with the strongest edge as
     * the fallback coupling.
     */
    isa::DurationModel durationModel() const;

    /**
     * Timeline noise model: per-qubit T1/T2 vectors and per-edge p0
     * installed over the isa::NoiseModel defaults.
     */
    isa::NoiseModel noiseModel() const;

  private:
    Backend(std::string name, std::vector<QubitCalibration> qubits,
            std::vector<EdgeProperties> edges);

    std::string name_;
    std::vector<QubitCalibration> qubits_;
    std::vector<EdgeProperties> edges_;
    route::Topology topo_ = route::Topology::chain(1);
};

} // namespace reqisc::backend

#endif // REQISC_BACKEND_BACKEND_HH
