#include "backend/reconfigure.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <stdexcept>

#include "uarch/duration.hh"

namespace reqisc::backend
{

const std::vector<GateSetCandidate> &
gateSetCandidates()
{
    static const std::vector<GateSetCandidate> kCandidates = {
        {circuit::Op::CX, weyl::WeylCoord::cnot(), "cx"},
        {circuit::Op::SQISW, weyl::WeylCoord::sqisw(), "sqisw"},
        {circuit::Op::B, weyl::WeylCoord::bgate(), "b"},
    };
    return kCandidates;
}

const Workload &
defaultWorkload()
{
    // The 2Q class mix of the compiled suite after fusion, mirroring
    // and routing: CNOT-class dominated, a routing-SWAP share, the
    // other named classes, and a generic + near-identity tail.
    static const Workload kDefault = {
        {weyl::WeylCoord::cnot(), 0.45},
        {weyl::WeylCoord::swap(), 0.15},
        {weyl::WeylCoord::sqisw(), 0.05},
        {weyl::WeylCoord::iswap(), 0.05},
        {weyl::WeylCoord::bgate(), 0.05},
        {{0.55, 0.35, 0.15}, 0.15},   // generic interior SU(4)
        {{0.06, 0.03, 0.015}, 0.10},  // near-identity residual
    };
    return kDefault;
}

Workload
workloadFromCircuits(const std::vector<circuit::Circuit> &circuits,
                     double cluster_tol)
{
    Workload w;
    double total = 0.0;
    for (const circuit::Circuit &c : circuits) {
        for (const circuit::Gate &g : c) {
            if (!g.is2Q())
                continue;
            const weyl::WeylCoord coord = g.weylCoord();
            total += 1.0;
            bool found = false;
            for (auto &[rep, weight] : w) {
                if (rep.approxEqual(coord, cluster_tol)) {
                    weight += 1.0;
                    found = true;
                    break;
                }
            }
            if (!found)
                w.emplace_back(coord, 1.0);
        }
    }
    if (total > 0.0)
        for (auto &[rep, weight] : w)
            weight /= total;
    return w;
}

int
applicationsFor(circuit::Op op, const weyl::WeylCoord &target,
                double tol)
{
    if (target.norm1() < tol)
        return 0;
    const GateSetCandidate *cand = nullptr;
    for (const GateSetCandidate &c : gateSetCandidates())
        if (c.op == op)
            cand = &c;
    if (!cand)
        throw std::invalid_argument(
            std::string("applicationsFor: '") + circuit::opName(op) +
            "' is not a gate-set candidate");
    if (cand->coord.approxEqual(target, tol))
        return 1;
    switch (op) {
      case circuit::Op::CX:
        // Two CX + locals realize exactly the z = 0 classes
        // (Shende-Bullock-Markov); everything else needs three.
        return std::abs(target.z) < tol ? 2 : 3;
      case circuit::Op::SQISW:
        // Two SQiSW + locals cover W' = {x >= y + |z|}
        // (arXiv:2105.06074); three suffice everywhere.
        return target.x >= target.y + std::abs(target.z) - tol ? 2
                                                               : 3;
      case circuit::Op::B:
        // Two B applications realize any SU(4) (Zhang et al.,
        // PRL 93, 020502).
        return 2;
      default:
        break;
    }
    throw std::invalid_argument("applicationsFor: unreachable");
}

double
expectedApplications(circuit::Op op, const Workload &w)
{
    double apps = 0.0, total = 0.0;
    for (const auto &[coord, weight] : w) {
        if (weight < 0.0)
            throw std::invalid_argument(
                "expectedApplications: negative workload weight");
        apps += weight * applicationsFor(op, coord);
        total += weight;
    }
    if (total <= 0.0)
        throw std::invalid_argument(
            "expectedApplications: empty workload");
    return apps / total;
}

namespace
{

/** Score one candidate on one edge (appFidelity^expectedApps). */
EdgeInstruction
scoreCandidate(const Backend &backend, const EdgeProperties &edge,
               const GateSetCandidate &cand, double expected_apps,
               double tau0)
{
    EdgeInstruction instr;
    instr.a = edge.a;
    instr.b = edge.b;
    instr.op = cand.op;
    instr.name = cand.name;
    instr.coord = cand.coord;
    const uarch::DurationInfo info =
        uarch::durationInfo(edge.coupling, cand.coord);
    instr.duration = info.tau;
    instr.scheme = info.scheme;
    const double perr =
        std::min(1.0, edge.p0 * instr.duration / tau0);
    const double rate = backend.qubit(edge.a).decayRate() +
                        backend.qubit(edge.b).decayRate();
    instr.appFidelity =
        (1.0 - perr) * std::exp(-instr.duration * rate);
    instr.expectedApps = expected_apps;
    instr.score = std::pow(instr.appFidelity, expected_apps);
    return instr;
}

const EdgeInstruction &
lookup(const std::vector<EdgeInstruction> &table, int a, int b)
{
    if (a > b)
        std::swap(a, b);
    for (const EdgeInstruction &e : table)
        if (e.a == a && e.b == b)
            return e;
    throw std::invalid_argument(
        "ReconfigureResult: no instruction for edge (q" +
        std::to_string(a) + ", q" + std::to_string(b) + ")");
}

} // namespace

const EdgeInstruction &
ReconfigureResult::instruction(int a, int b) const
{
    return lookup(table, a, b);
}

const EdgeInstruction &
ReconfigureResult::uniformInstruction(int a, int b) const
{
    return lookup(uniformTable, a, b);
}

bool
ReconfigureResult::differsFromUniform() const
{
    for (const EdgeInstruction &e : table)
        if (e.op != uniformOp)
            return true;
    return false;
}

ReconfigureResult
reconfigure(const Backend &backend, const ReconfigureOptions &opts)
{
    const Workload &workload =
        opts.workload.empty() ? defaultWorkload() : opts.workload;
    const std::vector<GateSetCandidate> &cands = gateSetCandidates();
    std::vector<double> expected;
    expected.reserve(cands.size());
    for (const GateSetCandidate &c : cands)
        expected.push_back(expectedApplications(c.op, workload));

    ReconfigureResult res;
    res.table.reserve(backend.edges().size());
    // log-score per candidate summed over edges: the uniform baseline
    // is the single candidate with the best chip-wide product.
    std::vector<double> uniformLog(cands.size(), 0.0);
    std::vector<std::vector<EdgeInstruction>> scored(cands.size());
    for (size_t ci = 0; ci < cands.size(); ++ci)
        scored[ci].reserve(backend.edges().size());

    for (const EdgeProperties &edge : backend.edges()) {
        size_t best = 0;
        for (size_t ci = 0; ci < cands.size(); ++ci) {
            scored[ci].push_back(scoreCandidate(
                backend, edge, cands[ci], expected[ci], opts.tau0));
            const EdgeInstruction &instr = scored[ci].back();
            uniformLog[ci] +=
                std::log(std::max(instr.score, 1e-300));
            const EdgeInstruction &cur = scored[best].back();
            // Deterministic selection: best score, then shorter
            // pulse, then candidate order.
            const EdgeInstruction &challenger = instr;
            if (ci != best &&
                (challenger.score > cur.score ||
                 (challenger.score == cur.score &&
                  challenger.duration < cur.duration)))
                best = ci;
        }
        res.table.push_back(scored[best].back());
    }

    size_t bestUniform = 0;
    for (size_t ci = 1; ci < cands.size(); ++ci)
        if (uniformLog[ci] > uniformLog[bestUniform])
            bestUniform = ci;
    res.uniformOp = cands[bestUniform].op;
    res.uniformName = cands[bestUniform].name;
    res.uniformTable = std::move(scored[bestUniform]);

    if (opts.solvePulses) {
        for (EdgeInstruction &instr : res.table) {
            const uarch::GateScheme scheme(
                backend.edge(instr.a, instr.b).coupling);
            instr.pulse = scheme.solveCoord(instr.coord);
        }
    }
    return res;
}

double
estimateFidelity(const circuit::Circuit &routed,
                 const Backend &backend,
                 const std::vector<EdgeInstruction> &table,
                 bool include_readout)
{
    double logf = 0.0;
    std::set<int> used;
    for (const circuit::Gate &g : routed) {
        if (g.numQubits() > 2)
            throw std::invalid_argument(
                std::string("estimateFidelity: ") +
                circuit::opName(g.op) +
                " acts on more than two qubits; lower the circuit "
                "first");
        for (int q : g.qubits)
            used.insert(q);
        if (g.is1Q()) {
            logf -= isa::kDefaultOneQubitDuration *
                    backend.qubit(g.qubits[0]).decayRate();
            continue;
        }
        if (!backend.hasEdge(g.qubits[0], g.qubits[1]))
            throw std::invalid_argument(
                "estimateFidelity: 2Q gate on unconnected pair q" +
                std::to_string(g.qubits[0]) + ",q" +
                std::to_string(g.qubits[1]) +
                "; route the circuit onto the backend first");
        const EdgeInstruction &instr =
            lookup(table, g.qubits[0], g.qubits[1]);
        logf += std::log(
            std::max(instr.score,
                     std::numeric_limits<double>::min()));
    }
    double f = std::exp(logf);
    if (include_readout)
        for (int q : used)
            f *= 1.0 - backend.qubit(q).readoutError;
    return f;
}

} // namespace reqisc::backend
