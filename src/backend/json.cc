#include "backend/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace reqisc::backend
{

const JsonValue *
JsonValue::find(const std::string &key) const
{
    const JsonValue *found = nullptr;
    for (const auto &[k, v] : object)
        if (k == key)
            found = &v;
    return found;
}

JsonValue
JsonValue::makeNull()
{
    return JsonValue{};
}

JsonValue
JsonValue::makeBool(bool b)
{
    JsonValue v;
    v.kind = Kind::Bool;
    v.boolean = b;
    return v;
}

JsonValue
JsonValue::makeNumber(double n)
{
    JsonValue v;
    v.kind = Kind::Number;
    v.number = n;
    return v;
}

JsonValue
JsonValue::makeString(std::string s)
{
    JsonValue v;
    v.kind = Kind::String;
    v.str = std::move(s);
    return v;
}

JsonValue
JsonValue::makeArray()
{
    JsonValue v;
    v.kind = Kind::Array;
    return v;
}

JsonValue
JsonValue::makeObject()
{
    JsonValue v;
    v.kind = Kind::Object;
    return v;
}

JsonValue &
JsonValue::set(const std::string &key, JsonValue v)
{
    object.emplace_back(key, std::move(v));
    return *this;
}

JsonValue &
JsonValue::push(JsonValue v)
{
    array.push_back(std::move(v));
    return *this;
}

const char *
JsonValue::kindName(Kind k)
{
    switch (k) {
      case Kind::Null: return "null";
      case Kind::Bool: return "bool";
      case Kind::Number: return "number";
      case Kind::String: return "string";
      case Kind::Array: return "array";
      case Kind::Object: return "object";
    }
    return "?";
}

namespace
{

class Parser
{
  public:
    Parser(const std::string &text, const std::string &context)
        : text_(text), context_(context)
    {
    }

    JsonValue parseDocument()
    {
        JsonValue v = parseValue();
        skipWhitespace();
        if (pos_ < text_.size())
            fail("trailing content after the top-level value");
        return v;
    }

  private:
    [[noreturn]] void fail(const std::string &msg) const
    {
        throw JsonError(context_ + ":" + std::to_string(line_) +
                        ": " + msg);
    }

    void skipWhitespace()
    {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c == '\n')
                ++line_;
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            ++pos_;
        }
    }

    char peek()
    {
        skipWhitespace();
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "', got '" +
                 text_[pos_] + "'");
        ++pos_;
    }

    bool consumeIf(char c)
    {
        if (pos_ < text_.size() && peek() == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    void expectKeyword(const char *word)
    {
        for (const char *p = word; *p; ++p) {
            if (pos_ >= text_.size() || text_[pos_] != *p)
                fail(std::string("invalid literal (expected '") +
                     word + "')");
            ++pos_;
        }
    }

    JsonValue parseValue()
    {
        const char c = peek();
        JsonValue v;
        v.line = line_;
        switch (c) {
          case '{': parseObject(v); break;
          case '[': parseArray(v); break;
          case '"':
            v.kind = JsonValue::Kind::String;
            v.str = parseString();
            break;
          case 't':
            expectKeyword("true");
            v.kind = JsonValue::Kind::Bool;
            v.boolean = true;
            break;
          case 'f':
            expectKeyword("false");
            v.kind = JsonValue::Kind::Bool;
            v.boolean = false;
            break;
          case 'n':
            expectKeyword("null");
            v.kind = JsonValue::Kind::Null;
            break;
          default:
            if (c == '-' || std::isdigit(static_cast<unsigned char>(c)))
                parseNumber(v);
            else
                fail(std::string("unexpected character '") + c + "'");
        }
        return v;
    }

    void parseObject(JsonValue &v)
    {
        v.kind = JsonValue::Kind::Object;
        expect('{');
        if (consumeIf('}'))
            return;
        for (;;) {
            if (peek() != '"')
                fail("expected a quoted object key");
            std::string key = parseString();
            expect(':');
            v.object.emplace_back(std::move(key), parseValue());
            if (consumeIf(','))
                continue;
            expect('}');
            return;
        }
    }

    void parseArray(JsonValue &v)
    {
        v.kind = JsonValue::Kind::Array;
        expect('[');
        if (consumeIf(']'))
            return;
        for (;;) {
            v.array.push_back(parseValue());
            if (consumeIf(','))
                continue;
            expect(']');
            return;
        }
    }

    std::string parseString()
    {
        expect('"');
        std::string out;
        for (;;) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c == '\n')
                fail("unterminated string");
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape sequence");
            const char e = text_[pos_++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'n': out += '\n'; break;
              case 't': out += '\t'; break;
              case 'r': out += '\r'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              default:
                fail(std::string("unsupported escape '\\") + e + "'");
            }
        }
    }

    void parseNumber(JsonValue &v)
    {
        const size_t start = pos_;
        if (consumeIf('-')) {
        }
        auto digits = [&] {
            size_t n = 0;
            while (pos_ < text_.size() &&
                   std::isdigit(
                       static_cast<unsigned char>(text_[pos_]))) {
                ++pos_;
                ++n;
            }
            return n;
        };
        if (digits() == 0)
            fail("malformed number");
        if (pos_ < text_.size() && text_[pos_] == '.') {
            ++pos_;
            if (digits() == 0)
                fail("malformed number (missing fraction digits)");
        }
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            if (digits() == 0)
                fail("malformed number (missing exponent digits)");
        }
        v.kind = JsonValue::Kind::Number;
        v.number = std::strtod(text_.substr(start, pos_ - start).c_str(),
                               nullptr);
    }

    const std::string &text_;
    const std::string &context_;
    size_t pos_ = 0;
    int line_ = 1;
};

} // namespace

JsonValue
parseJson(const std::string &text, const std::string &context)
{
    return Parser(text, context).parseDocument();
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned char>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

namespace
{

/** %.17g, except exact doubles in the integer-safe range print as
 *  integers (stable keys like counts stay grep-able). */
std::string
formatNumber(double n)
{
    if (!std::isfinite(n))
        return "null";
    constexpr double kSafe = 9007199254740992.0;  // 2^53
    if (n == std::floor(n) && std::fabs(n) < kSafe) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%lld",
                      static_cast<long long>(n));
        return buf;
    }
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", n);
    return buf;
}

void
dumpValue(const JsonValue &v, bool pretty, int depth,
          std::string &out)
{
    const auto newline = [&](int d) {
        if (!pretty)
            return;
        out += '\n';
        out.append(static_cast<std::size_t>(d) * 2, ' ');
    };
    switch (v.kind) {
      case JsonValue::Kind::Null:
        out += "null";
        break;
      case JsonValue::Kind::Bool:
        out += v.boolean ? "true" : "false";
        break;
      case JsonValue::Kind::Number:
        out += formatNumber(v.number);
        break;
      case JsonValue::Kind::String:
        out += '"';
        out += jsonEscape(v.str);
        out += '"';
        break;
      case JsonValue::Kind::Array:
        if (v.array.empty()) {
            out += "[]";
            break;
        }
        out += '[';
        for (std::size_t i = 0; i < v.array.size(); ++i) {
            if (i)
                out += ',';
            newline(depth + 1);
            dumpValue(v.array[i], pretty, depth + 1, out);
        }
        newline(depth);
        out += ']';
        break;
      case JsonValue::Kind::Object:
        if (v.object.empty()) {
            out += "{}";
            break;
        }
        out += '{';
        for (std::size_t i = 0; i < v.object.size(); ++i) {
            if (i)
                out += ',';
            newline(depth + 1);
            out += '"';
            out += jsonEscape(v.object[i].first);
            out += "\":";
            if (pretty)
                out += ' ';
            dumpValue(v.object[i].second, pretty, depth + 1, out);
        }
        newline(depth);
        out += '}';
        break;
    }
}

} // namespace

std::string
dumpJson(const JsonValue &v, bool pretty)
{
    std::string out;
    dumpValue(v, pretty, 0, out);
    if (pretty)
        out += '\n';
    return out;
}

} // namespace reqisc::backend
