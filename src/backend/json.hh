/**
 * @file
 * Minimal JSON reader/writer: chip description files on the way in,
 * every --json summary and daemon wire response on the way out
 * (built as JsonValue trees and serialized by dumpJson).
 *
 * Hand-rolled on purpose: the container build must not grow
 * third-party dependencies. Supports the JSON value grammar (objects, arrays,
 * strings with the common escapes, numbers, true/false/null) and
 * tracks the source line of every value so schema validation can
 * report `file:line: field ...` errors (tests/test_backend.cc pins
 * the error paths).
 *
 * Not a general-purpose library: no \uXXXX surrogate pairs, no
 * duplicate-key detection (the last key wins on lookup), numbers are
 * parsed as double.
 */

#ifndef REQISC_BACKEND_JSON_HH
#define REQISC_BACKEND_JSON_HH

#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace reqisc::backend
{

/** Parse or schema error, already carrying "file:line:" context. */
class JsonError : public std::runtime_error
{
  public:
    explicit JsonError(const std::string &msg)
        : std::runtime_error(msg)
    {
    }
};

/** One parsed JSON value (a small tagged tree). */
class JsonValue
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<JsonValue> array;
    /** Key order is preserved (useful for deterministic errors). */
    std::vector<std::pair<std::string, JsonValue>> object;
    /** 1-based source line where this value starts. */
    int line = 0;

    bool isNull() const { return kind == Kind::Null; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }
    bool isArray() const { return kind == Kind::Array; }
    bool isObject() const { return kind == Kind::Object; }

    /** Object member lookup; nullptr when absent (last key wins). */
    const JsonValue *find(const std::string &key) const;

    static const char *kindName(Kind k);

    // ----- Builders (the emit-side tree constructors) -------------------
    // Every JSON document the repo writes (CLI --json, the daemon's
    // wire responses, bench summaries) is assembled as a JsonValue
    // tree and serialized by dumpJson, so there is exactly one
    // emitter to keep correct.
    static JsonValue makeNull();
    static JsonValue makeBool(bool b);
    static JsonValue makeNumber(double n);
    static JsonValue makeString(std::string s);
    static JsonValue makeArray();
    static JsonValue makeObject();

    /** Append an object member (no duplicate-key check; see @file). */
    JsonValue &set(const std::string &key, JsonValue v);
    /** Append an array element. */
    JsonValue &push(JsonValue v);
};

/**
 * Parse a complete JSON document. `context` (typically the file
 * name) prefixes every error message: "<context>:<line>: ...".
 * Trailing non-whitespace after the top-level value is an error.
 */
JsonValue parseJson(const std::string &text,
                    const std::string &context = "<json>");

/**
 * Escape a string for embedding in emitted JSON (quotes, backslash,
 * control characters). The emit-side counterpart of the reader,
 * shared by reqisc-compile and the --json bench summaries.
 */
std::string jsonEscape(const std::string &s);

/**
 * Serialize a JsonValue tree. Numbers that hold an exact integer in
 * the double-safe range print without a decimal point; everything
 * else uses %.17g (round-trip exact through parseJson). Non-finite
 * numbers (no JSON spelling) serialize as null. `pretty` indents
 * with two spaces per level; compact output has no whitespace.
 */
std::string dumpJson(const JsonValue &v, bool pretty = false);

} // namespace reqisc::backend

#endif // REQISC_BACKEND_JSON_HH
