/**
 * @file
 * Minimal JSON reader for chip description files.
 *
 * Hand-rolled on purpose: the repo's only JSON *input* is the backend
 * chip files, and the container build must not grow third-party
 * dependencies. Supports the JSON value grammar (objects, arrays,
 * strings with the common escapes, numbers, true/false/null) and
 * tracks the source line of every value so schema validation can
 * report `file:line: field ...` errors (tests/test_backend.cc pins
 * the error paths).
 *
 * Not a general-purpose library: no \uXXXX surrogate pairs, no
 * duplicate-key detection (the last key wins on lookup), numbers are
 * parsed as double.
 */

#ifndef REQISC_BACKEND_JSON_HH
#define REQISC_BACKEND_JSON_HH

#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace reqisc::backend
{

/** Parse or schema error, already carrying "file:line:" context. */
class JsonError : public std::runtime_error
{
  public:
    explicit JsonError(const std::string &msg)
        : std::runtime_error(msg)
    {
    }
};

/** One parsed JSON value (a small tagged tree). */
class JsonValue
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<JsonValue> array;
    /** Key order is preserved (useful for deterministic errors). */
    std::vector<std::pair<std::string, JsonValue>> object;
    /** 1-based source line where this value starts. */
    int line = 0;

    bool isNull() const { return kind == Kind::Null; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }
    bool isArray() const { return kind == Kind::Array; }
    bool isObject() const { return kind == Kind::Object; }

    /** Object member lookup; nullptr when absent (last key wins). */
    const JsonValue *find(const std::string &key) const;

    static const char *kindName(Kind k);
};

/**
 * Parse a complete JSON document. `context` (typically the file
 * name) prefixes every error message: "<context>:<line>: ...".
 * Trailing non-whitespace after the top-level value is an error.
 */
JsonValue parseJson(const std::string &text,
                    const std::string &context = "<json>");

/**
 * Escape a string for embedding in emitted JSON (quotes, backslash,
 * control characters). The emit-side counterpart of the reader,
 * shared by reqisc-compile and the --json bench summaries.
 */
std::string jsonEscape(const std::string &s);

} // namespace reqisc::backend

#endif // REQISC_BACKEND_JSON_HH
