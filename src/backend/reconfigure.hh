/**
 * @file
 * Per-edge native gate-set selection: the reconfiguration loop that
 * makes the instruction set fit the chip instead of the other way
 * around (the paper's central claim; cf. the SQiSW gate-set design
 * study, arXiv:2105.06074, which runs the same trade-off for one
 * homogeneous device).
 *
 * For every edge of a Backend the loop
 *  1. solves the genAshN time-optimal duration of each candidate
 *     native 2Q instruction against that edge's own coupling
 *     (uarch::optimalDuration),
 *  2. scores each candidate with the isa fidelity model under that
 *     edge's calibration: per-application fidelity
 *       (1 - p0_e * tau / tau0) * exp(-tau * (r_a + r_b))
 *     (depolarizing at the edge's rate, decoherence of both qubits
 *     while driven, r_q = QubitCalibration::decayRate()), raised to
 *     the workload-expected number of applications a generic SU(4)
 *     needs over that fixed basis,
 *  3. emits the best candidate as the edge's native instruction.
 *
 * The per-target application counts follow the known fixed-basis
 * synthesis results (CX: 2 applications iff z = 0, else 3; SQiSW:
 * 2 applications iff x >= y + |z| — the W' region of
 * arXiv:2105.06074 — else 3; B: always 2; any basis: 1 for its own
 * class, 0 for identity) and are pinned against the numeric
 * decomposition synth::su4ToFixedBasis in tests/test_backend.cc.
 *
 * The result also carries the best *uniform* gate set (one candidate
 * chip-wide, the conventional fixed-ISA baseline); by construction
 * the per-edge table scores at least as well on every edge, and
 * estimateFidelity() inherits that dominance for every routed
 * circuit — bench_backend quantifies the gap.
 */

#ifndef REQISC_BACKEND_RECONFIGURE_HH
#define REQISC_BACKEND_RECONFIGURE_HH

#include <string>
#include <utility>
#include <vector>

#include "backend/backend.hh"
#include "circuit/circuit.hh"
#include "uarch/genashn.hh"
#include "weyl/weyl.hh"

namespace reqisc::backend
{

/** One candidate native 2Q instruction. */
struct GateSetCandidate
{
    circuit::Op op;         //!< named gate (usable as a fixed basis)
    weyl::WeylCoord coord;  //!< its Weyl class
    const char *name;       //!< mnemonic for tables/JSON
};

/**
 * The candidate set the loop considers: CX, SQiSW and B — the named
 * classes synth::su4ToFixedBasis can use as a fixed basis, covering
 * the three regimes (perfect entangler of the conventional ISA, the
 * half-entangler the SQiSW study advocates, the 2-application
 * optimum).
 */
const std::vector<GateSetCandidate> &gateSetCandidates();

/**
 * A workload histogram: Weyl classes with non-negative weights
 * (normalized internally). Scores average application counts over
 * this distribution.
 */
using Workload = std::vector<std::pair<weyl::WeylCoord, double>>;

/**
 * Default workload: the 2Q class mix of typical compiled NISQ
 * programs — CNOT-class dominated, routing SWAPs, a tail of generic
 * and near-identity SU(4)s from fusion/mirroring.
 */
const Workload &defaultWorkload();

/** Empirical workload: the 2Q Weyl classes of concrete circuits. */
Workload workloadFromCircuits(
    const std::vector<circuit::Circuit> &circuits,
    double cluster_tol = 1e-6);

/**
 * Applications of fixed basis `op` (plus free 1Q layers) needed to
 * realize the class `target`: 0 for identity, 1 for the basis' own
 * class, else the analytic 2-vs-3 rules above. Throws
 * std::invalid_argument for an op outside gateSetCandidates().
 */
int applicationsFor(circuit::Op op, const weyl::WeylCoord &target,
                    double tol = 1e-9);

/** Workload-expected applications per 2Q instruction. */
double expectedApplications(circuit::Op op, const Workload &w);

/** The selected native instruction of one edge. */
struct EdgeInstruction
{
    int a = 0, b = 1;        //!< edge endpoints (a < b)
    circuit::Op op = circuit::Op::CX;
    std::string name;        //!< candidate mnemonic
    weyl::WeylCoord coord;
    double duration = 0.0;     //!< genAshN tau on this edge, 1/g_ref
    uarch::SubScheme scheme = uarch::SubScheme::ND;
    double appFidelity = 0.0;  //!< per-application fidelity estimate
    double expectedApps = 0.0; //!< workload-expected applications
    double score = 0.0;        //!< appFidelity ^ expectedApps
    /** Drive parameters (solved when ReconfigureOptions::solvePulses). */
    uarch::PulseSolution pulse;
};

/** Reconfiguration knobs. */
struct ReconfigureOptions
{
    /** Scoring workload; empty = defaultWorkload(). */
    Workload workload;
    /** Reference duration for the p0 error scaling. */
    double tau0 = uarch::conventionalCnotDuration(1.0);
    /** Also run the genAshN pulse solver for each chosen entry. */
    bool solvePulses = false;
};

/** Per-edge instruction table plus the uniform baseline. */
struct ReconfigureResult
{
    /** Chosen instruction per edge, aligned with Backend::edges(). */
    std::vector<EdgeInstruction> table;
    /** Best single chip-wide gate set (the fixed-ISA baseline). */
    std::vector<EdgeInstruction> uniformTable;
    circuit::Op uniformOp = circuit::Op::CX;
    std::string uniformName;

    /** Table lookup; throws std::invalid_argument off-edge. */
    const EdgeInstruction &instruction(int a, int b) const;
    const EdgeInstruction &uniformInstruction(int a, int b) const;

    /** True when any edge chose a non-uniform instruction. */
    bool differsFromUniform() const;
};

/** Run the gate-set selection loop for every edge of the chip. */
ReconfigureResult reconfigure(const Backend &backend,
                              const ReconfigureOptions &opts = {});

/**
 * Estimated fidelity of a circuit routed onto the chip (every 2Q
 * gate on an edge; throws std::invalid_argument otherwise) executed
 * with the given instruction table: the product of per-2Q-gate
 * scores (each compiled SU(4) modeled as a workload draw over the
 * edge's native instruction), 1Q-gate decoherence factors, and —
 * when `include_readout` — one (1 - readoutError) factor per used
 * qubit. Comparable across tables of the same Backend; the per-edge
 * table dominates the uniform one by construction.
 */
double estimateFidelity(const circuit::Circuit &routed,
                        const Backend &backend,
                        const std::vector<EdgeInstruction> &table,
                        bool include_readout = true);

} // namespace reqisc::backend

#endif // REQISC_BACKEND_RECONFIGURE_HH
