#include "backend/backend.hh"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "backend/json.hh"

namespace reqisc::backend
{

namespace
{

[[noreturn]] void
schemaError(const std::string &context, int line,
            const std::string &msg)
{
    throw JsonError(context + ":" + std::to_string(line) + ": " +
                    msg);
}

/** Required member of `obj`, with kind check. */
const JsonValue &
require(const JsonValue &obj, const std::string &key,
        JsonValue::Kind kind, const std::string &context,
        const std::string &where)
{
    const JsonValue *v = obj.find(key);
    if (!v)
        schemaError(context, obj.line,
                    where + ": missing required field '" + key + "'");
    if (v->kind != kind)
        schemaError(context, v->line,
                    where + "." + key + ": expected " +
                        JsonValue::kindName(kind) + ", got " +
                        JsonValue::kindName(v->kind));
    return *v;
}

/** Optional numeric member; returns `fallback` when absent. */
double
optionalNumber(const JsonValue &obj, const std::string &key,
               double fallback, const std::string &context,
               const std::string &where, int *line_out = nullptr)
{
    const JsonValue *v = obj.find(key);
    if (!v)
        return fallback;
    if (!v->isNumber())
        schemaError(context, v->line,
                    where + "." + key + ": expected number, got " +
                        JsonValue::kindName(v->kind));
    if (line_out)
        *line_out = v->line;
    return v->number;
}

void
rejectUnknownKeys(const JsonValue &obj,
                  std::initializer_list<const char *> known,
                  const std::string &context,
                  const std::string &where)
{
    for (const auto &[key, value] : obj.object) {
        bool ok = false;
        for (const char *k : known)
            if (key == k)
                ok = true;
        if (!ok)
            schemaError(context, value.line,
                        where + ": unknown field '" + key + "'");
    }
}

uarch::Coupling
parseCoupling(const JsonValue &v, const std::string &context,
              const std::string &where)
{
    if (!v.isObject())
        schemaError(context, v.line,
                    where + ": expected object, got " +
                        JsonValue::kindName(v.kind));
    uarch::Coupling cpl;
    if (v.find("type")) {
        // Shorthand: {"type": "xy"|"xx", "g": strength}.
        rejectUnknownKeys(v, {"type", "g"}, context, where);
        const JsonValue &type = require(v, "type",
                                        JsonValue::Kind::String,
                                        context, where);
        const double g = optionalNumber(v, "g", 1.0, context, where);
        if (g <= 0.0)
            schemaError(context, v.line,
                        where + ".g: coupling strength must be "
                        "positive, got " + std::to_string(g));
        if (type.str == "xy")
            cpl = uarch::Coupling::xy(g);
        else if (type.str == "xx")
            cpl = uarch::Coupling::xx(g);
        else
            schemaError(context, type.line,
                        where + ".type: unknown coupling type '" +
                            type.str + "' (expected \"xy\" or "
                            "\"xx\")");
        return cpl;
    }
    rejectUnknownKeys(v, {"a", "b", "c"}, context, where);
    cpl.a = require(v, "a", JsonValue::Kind::Number, context, where)
                .number;
    cpl.b = optionalNumber(v, "b", 0.0, context, where);
    cpl.c = optionalNumber(v, "c", 0.0, context, where);
    if (cpl.strength() <= 0.0)
        schemaError(context, v.line,
                    where + ": coupling strength a + b + |c| must "
                    "be positive");
    if (!cpl.isCanonical(1e-9))
        schemaError(context, v.line,
                    where + ": coupling coefficients must be "
                    "canonical (a >= b >= |c|, a > 0)");
    return cpl;
}

} // namespace

double
QubitCalibration::decayRate() const
{
    double r = 0.0;
    if (std::isfinite(t1) && t1 > 0.0)
        r += 0.5 / t1;
    if (std::isfinite(t2) && t2 > 0.0)
        r += 0.5 / t2;
    return r;
}

Backend::Backend(std::string name,
                 std::vector<QubitCalibration> qubits,
                 std::vector<EdgeProperties> edges)
    : name_(std::move(name)), qubits_(std::move(qubits)),
      edges_(std::move(edges)), topo_(route::Topology::chain(1))
{
    std::vector<std::pair<int, int>> pairs;
    pairs.reserve(edges_.size());
    for (const EdgeProperties &e : edges_)
        pairs.emplace_back(e.a, e.b);
    topo_ = route::Topology::custom(numQubits(), pairs, name_);
}

Backend
Backend::uniform(const route::Topology &topo,
                 const uarch::Coupling &cpl,
                 const QubitCalibration &qubit, double p0)
{
    std::vector<QubitCalibration> qubits(
        static_cast<size_t>(topo.numQubits()), qubit);
    std::vector<EdgeProperties> edges;
    edges.reserve(topo.edges().size());
    for (const auto &[a, b] : topo.edges())
        edges.push_back(EdgeProperties{a, b, cpl, p0});
    return Backend(topo.name(), std::move(qubits),
                   std::move(edges));
}

Backend
Backend::fromJson(const std::string &text,
                  const std::string &context)
{
    const JsonValue doc = parseJson(text, context);
    if (!doc.isObject())
        schemaError(context, doc.line,
                    "chip file: expected a top-level object");
    rejectUnknownKeys(doc,
                     {"name", "description", "qubits", "edges"},
                     context, "chip");

    std::string name = "chip";
    if (const JsonValue *n = doc.find("name")) {
        if (!n->isString())
            schemaError(context, n->line,
                        std::string("chip.name: expected string, "
                                    "got ") +
                            JsonValue::kindName(n->kind));
        name = n->str;
    }

    const JsonValue &qubits_v = require(
        doc, "qubits", JsonValue::Kind::Array, context, "chip");
    if (qubits_v.array.empty())
        schemaError(context, qubits_v.line,
                    "chip.qubits: must list at least one qubit");
    std::vector<QubitCalibration> qubits;
    qubits.reserve(qubits_v.array.size());
    for (size_t i = 0; i < qubits_v.array.size(); ++i) {
        const JsonValue &q = qubits_v.array[i];
        const std::string where =
            "qubits[" + std::to_string(i) + "]";
        if (!q.isObject())
            schemaError(context, q.line,
                        where + ": expected object, got " +
                            JsonValue::kindName(q.kind));
        rejectUnknownKeys(q, {"t1", "t2", "readoutError"}, context,
                          where);
        QubitCalibration cal;
        int line = q.line;
        cal.t1 = optionalNumber(q, "t1", cal.t1, context, where,
                                &line);
        if (cal.t1 <= 0.0 || std::isnan(cal.t1))
            schemaError(context, line,
                        where + ".t1: must be positive, got " +
                            std::to_string(cal.t1));
        line = q.line;
        cal.t2 = optionalNumber(q, "t2", cal.t2, context, where,
                                &line);
        if (cal.t2 <= 0.0 || std::isnan(cal.t2))
            schemaError(context, line,
                        where + ".t2: must be positive, got " +
                            std::to_string(cal.t2));
        line = q.line;
        cal.readoutError = optionalNumber(q, "readoutError", 0.0,
                                          context, where, &line);
        if (cal.readoutError < 0.0 || cal.readoutError >= 1.0 ||
            std::isnan(cal.readoutError))
            schemaError(context, line,
                        where + ".readoutError: must be in [0, 1)");
        qubits.push_back(cal);
    }
    const int n = static_cast<int>(qubits.size());

    const JsonValue &edges_v = require(
        doc, "edges", JsonValue::Kind::Array, context, "chip");
    if (edges_v.array.empty())
        schemaError(context, edges_v.line,
                    "chip.edges: must list at least one edge");
    std::vector<EdgeProperties> edges;
    edges.reserve(edges_v.array.size());
    for (size_t i = 0; i < edges_v.array.size(); ++i) {
        const JsonValue &e = edges_v.array[i];
        const std::string where = "edges[" + std::to_string(i) + "]";
        if (!e.isObject())
            schemaError(context, e.line,
                        where + ": expected object, got " +
                            JsonValue::kindName(e.kind));
        rejectUnknownKeys(e, {"qubits", "coupling", "p0"}, context,
                          where);
        const JsonValue &pair = require(
            e, "qubits", JsonValue::Kind::Array, context, where);
        if (pair.array.size() != 2 || !pair.array[0].isNumber() ||
            !pair.array[1].isNumber())
            schemaError(context, pair.line,
                        where + ".qubits: expected a pair of qubit "
                        "indices");
        EdgeProperties edge;
        for (int k = 0; k < 2; ++k) {
            const double idx = pair.array[static_cast<size_t>(k)]
                                   .number;
            if (idx != std::floor(idx) || idx < 0.0 || idx >= n)
                schemaError(
                    context, pair.line,
                    where + ".qubits[" + std::to_string(k) + "] = " +
                        std::to_string(static_cast<long>(idx)) +
                        ": out of range [0, " + std::to_string(n) +
                        ")");
            (k == 0 ? edge.a : edge.b) = static_cast<int>(idx);
        }
        if (edge.a == edge.b)
            schemaError(context, pair.line,
                        where + ".qubits: self-loop on q" +
                            std::to_string(edge.a));
        if (edge.a > edge.b)
            std::swap(edge.a, edge.b);
        for (size_t j = 0; j < edges.size(); ++j)
            if (edges[j].a == edge.a && edges[j].b == edge.b)
                schemaError(context, pair.line,
                            where + ": duplicate of edges[" +
                                std::to_string(j) + "] (q" +
                                std::to_string(edge.a) + ", q" +
                                std::to_string(edge.b) + ")");
        edge.coupling = parseCoupling(
            require(e, "coupling", JsonValue::Kind::Object, context,
                    where),
            context, where + ".coupling");
        int line = e.line;
        edge.p0 = optionalNumber(e, "p0", edge.p0, context, where,
                                 &line);
        if (edge.p0 < 0.0 || edge.p0 >= 1.0 || std::isnan(edge.p0))
            schemaError(context, line,
                        where + ".p0: must be in [0, 1)");
        edges.push_back(edge);
    }

    Backend b(std::move(name), std::move(qubits), std::move(edges));
    if (!b.topology().isConnected())
        schemaError(context, edges_v.line,
                    "chip.edges: the topology is disconnected "
                    "(every qubit must be reachable from q0)");
    return b;
}

Backend
Backend::fromJsonFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw JsonError(path + ": cannot open chip file");
    std::ostringstream text;
    text << in.rdbuf();
    return fromJson(text.str(), path);
}

bool
Backend::hasEdge(int a, int b) const
{
    if (a > b)
        std::swap(a, b);
    for (const EdgeProperties &e : edges_)
        if (e.a == a && e.b == b)
            return true;
    return false;
}

const EdgeProperties &
Backend::edge(int a, int b) const
{
    if (a > b)
        std::swap(a, b);
    for (const EdgeProperties &e : edges_)
        if (e.a == a && e.b == b)
            return e;
    throw std::invalid_argument(
        "backend '" + name_ + "': no edge (q" + std::to_string(a) +
        ", q" + std::to_string(b) + ")");
}

bool
Backend::isHomogeneous(double tol) const
{
    for (const EdgeProperties &e : edges_) {
        const EdgeProperties &ref = edges_.front();
        if (std::abs(e.coupling.a - ref.coupling.a) > tol ||
            std::abs(e.coupling.b - ref.coupling.b) > tol ||
            std::abs(e.coupling.c - ref.coupling.c) > tol ||
            std::abs(e.p0 - ref.p0) > tol)
            return false;
    }
    for (const QubitCalibration &q : qubits_) {
        const QubitCalibration &ref = qubits_.front();
        // Infinite T1/T2 compare equal; mixed finite/infinite do not.
        if (q.t1 != ref.t1 &&
            !(std::abs(q.t1 - ref.t1) <= tol))
            return false;
        if (q.t2 != ref.t2 && !(std::abs(q.t2 - ref.t2) <= tol))
            return false;
        if (std::abs(q.readoutError - ref.readoutError) > tol)
            return false;
    }
    return true;
}

isa::DurationModel
Backend::durationModel() const
{
    isa::DurationModel model;
    const EdgeProperties *strongest = nullptr;
    for (const EdgeProperties &e : edges_) {
        model.edgeCoupling[{e.a, e.b}] = e.coupling;
        if (!strongest ||
            e.coupling.strength() > strongest->coupling.strength())
            strongest = &e;
    }
    if (strongest)
        model.coupling = strongest->coupling;
    return model;
}

isa::NoiseModel
Backend::noiseModel() const
{
    isa::NoiseModel noise;
    noise.t1PerQubit.reserve(qubits_.size());
    noise.t2PerQubit.reserve(qubits_.size());
    for (const QubitCalibration &q : qubits_) {
        noise.t1PerQubit.push_back(q.t1);
        noise.t2PerQubit.push_back(q.t2);
    }
    for (const EdgeProperties &e : edges_)
        noise.p0PerEdge[{e.a, e.b}] = e.p0;
    return noise;
}

} // namespace reqisc::backend
