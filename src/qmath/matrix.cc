#include "qmath/matrix.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "qmath/kernels.hh"
#include "qmath/svd.hh"

namespace reqisc::qmath
{

void
Matrix::resizeForOverwrite(int rows, int cols)
{
    assert(rows >= 0 && cols >= 0);
    rows_ = rows;
    cols_ = cols;
    const size_t n = size();
    if (n <= kInlineCap) {
        data_ = sbo_;
    } else {
        if (heap_.size() < n)
            heap_.resize(n);
        data_ = heap_.data();
    }
}

void
Matrix::setZero(int rows, int cols)
{
    resizeForOverwrite(rows, cols);
    std::fill_n(data_, size(), Complex(0.0, 0.0));
}

void
Matrix::setIdentity(int n)
{
    setZero(n, n);
    for (int i = 0; i < n; ++i)
        data_[static_cast<size_t>(i) * n + i] = Complex(1.0, 0.0);
}

void
Matrix::assignCopy(const Matrix &o)
{
    rows_ = o.rows_;
    cols_ = o.cols_;
    const size_t n = size();
    if (n <= kInlineCap) {
        std::copy_n(o.data_, n, sbo_);
        data_ = sbo_;
    } else {
        heap_.assign(o.data_, o.data_ + n);
        data_ = heap_.data();
    }
}

void
Matrix::assignMove(Matrix &&o) noexcept
{
    rows_ = o.rows_;
    cols_ = o.cols_;
    const size_t n = size();
    if (n <= kInlineCap) {
        // Inline payloads are copied; the source stays valid as-is.
        std::copy_n(o.data_, n, sbo_);
        data_ = sbo_;
    } else {
        heap_ = std::move(o.heap_);
        data_ = heap_.data();
        o.rows_ = 0;
        o.cols_ = 0;
        o.data_ = o.sbo_;
    }
}

Matrix::Matrix(std::initializer_list<std::initializer_list<Complex>> rows)
    : rows_(0), cols_(0)
{
    const int r = static_cast<int>(rows.size());
    const int c = rows.size()
        ? static_cast<int>(rows.begin()->size()) : 0;
    resizeForOverwrite(r, c);
    Complex *out = data_;
    for (const auto &row : rows) {
        assert(static_cast<int>(row.size()) == cols_);
        for (const auto &v : row)
            *out++ = v;
    }
}

Matrix
Matrix::identity(int n)
{
    Matrix m;
    m.setIdentity(n);
    return m;
}

Matrix
Matrix::operator+(const Matrix &o) const
{
    assert(rows_ == o.rows_ && cols_ == o.cols_);
    Matrix r;
    r.resizeForOverwrite(rows_, cols_);
    for (size_t k = 0; k < size(); ++k)
        r.data_[k] = data_[k] + o.data_[k];
    return r;
}

Matrix
Matrix::operator-(const Matrix &o) const
{
    assert(rows_ == o.rows_ && cols_ == o.cols_);
    Matrix r;
    r.resizeForOverwrite(rows_, cols_);
    for (size_t k = 0; k < size(); ++k)
        r.data_[k] = data_[k] - o.data_[k];
    return r;
}

Matrix
Matrix::operator*(const Matrix &o) const
{
    Matrix r;
    kernels::mulInto(r, *this, o);
    return r;
}

Matrix
Matrix::operator*(const Complex &s) const
{
    Matrix r(*this);
    kernels::scaleInPlace(r, s);
    return r;
}

Matrix &
Matrix::operator+=(const Matrix &o)
{
    assert(rows_ == o.rows_ && cols_ == o.cols_);
    for (size_t k = 0; k < size(); ++k)
        data_[k] += o.data_[k];
    return *this;
}

Matrix &
Matrix::operator-=(const Matrix &o)
{
    assert(rows_ == o.rows_ && cols_ == o.cols_);
    for (size_t k = 0; k < size(); ++k)
        data_[k] -= o.data_[k];
    return *this;
}

Matrix &
Matrix::operator*=(const Complex &s)
{
    kernels::scaleInPlace(*this, s);
    return *this;
}

Matrix
Matrix::dagger() const
{
    Matrix r;
    kernels::daggerInto(r, *this);
    return r;
}

Matrix
Matrix::transpose() const
{
    Matrix r;
    r.resizeForOverwrite(cols_, rows_);
    for (int i = 0; i < rows_; ++i)
        for (int j = 0; j < cols_; ++j)
            r(j, i) = (*this)(i, j);
    return r;
}

Matrix
Matrix::conjugate() const
{
    Matrix r;
    r.resizeForOverwrite(rows_, cols_);
    for (size_t k = 0; k < size(); ++k)
        r.data_[k] = std::conj(data_[k]);
    return r;
}

Complex
Matrix::trace() const
{
    return kernels::trace(*this);
}

double
Matrix::frobeniusNorm() const
{
    return kernels::frobeniusNorm(*this);
}

double
Matrix::maxAbs() const
{
    return kernels::maxAbs(*this);
}

bool
Matrix::approxEqual(const Matrix &o, double tol) const
{
    if (rows_ != o.rows_ || cols_ != o.cols_)
        return false;
    for (size_t k = 0; k < size(); ++k)
        if (std::abs(data_[k] - o.data_[k]) > tol)
            return false;
    return true;
}

bool
Matrix::approxEqualUpToPhase(const Matrix &o, double tol) const
{
    if (rows_ != o.rows_ || cols_ != o.cols_)
        return false;
    // Find the largest entry of o to estimate the relative phase.
    size_t kmax = 0;
    double best = -1.0;
    for (size_t k = 0; k < size(); ++k) {
        if (std::abs(o.data_[k]) > best) {
            best = std::abs(o.data_[k]);
            kmax = k;
        }
    }
    if (best < tol)
        return approxEqual(o, tol);
    Complex phase = data_[kmax] / o.data_[kmax];
    double mag = std::abs(phase);
    if (mag < 1e-14)
        return false;
    phase /= mag;
    for (size_t k = 0; k < size(); ++k)
        if (std::abs(data_[k] - phase * o.data_[k]) > tol)
            return false;
    return true;
}

bool
Matrix::isUnitary(double tol) const
{
    if (rows_ != cols_)
        return false;
    return ((*this) * dagger()).approxEqual(identity(rows_), tol);
}

bool
Matrix::isHermitian(double tol) const
{
    if (rows_ != cols_)
        return false;
    return approxEqual(dagger(), tol);
}

std::string
Matrix::toString(int precision) const
{
    std::ostringstream os;
    os.precision(precision);
    os << std::fixed;
    for (int i = 0; i < rows_; ++i) {
        os << "[ ";
        for (int j = 0; j < cols_; ++j) {
            const Complex v = (*this)(i, j);
            os << v.real() << (v.imag() >= 0 ? "+" : "-")
               << std::abs(v.imag()) << "i ";
        }
        os << "]\n";
    }
    return os.str();
}

Matrix
kron(const Matrix &a, const Matrix &b)
{
    Matrix r;
    kernels::kronInto(r, a, b);
    return r;
}

Matrix
kronAll(const std::vector<Matrix> &factors)
{
    assert(!factors.empty());
    Matrix r = factors.front();
    Matrix tmp;
    for (size_t i = 1; i < factors.size(); ++i) {
        kernels::kronInto(tmp, r, factors[i]);
        std::swap(r, tmp);
    }
    return r;
}

Complex
hsInner(const Matrix &a, const Matrix &b)
{
    assert(a.rows() == b.rows() && a.cols() == b.cols());
    Complex s(0.0, 0.0);
    for (int i = 0; i < a.rows(); ++i)
        for (int j = 0; j < a.cols(); ++j)
            s += std::conj(a(i, j)) * b(i, j);
    return s;
}

double
traceFidelity(const Matrix &u, const Matrix &v)
{
    return std::abs(hsInner(u, v)) / u.rows();
}

double
traceInfidelity(const Matrix &u, const Matrix &v)
{
    return 1.0 - traceFidelity(u, v);
}

double
kronFactor2x2(const Matrix &m, Matrix &a, Matrix &b)
{
    assert(m.rows() == 4 && m.cols() == 4);
    // Rearrangement R: R[(i1,j1),(i2,j2)] = m[(i1,i2),(j1,j2)].
    // m = a(x)b <=> R = vec(a) vec(b)^T (rank one).
    Matrix r(4, 4);
    for (int i1 = 0; i1 < 2; ++i1)
        for (int j1 = 0; j1 < 2; ++j1)
            for (int i2 = 0; i2 < 2; ++i2)
                for (int j2 = 0; j2 < 2; ++j2)
                    r(i1 * 2 + j1, i2 * 2 + j2) =
                        m(i1 * 2 + i2, j1 * 2 + j2);
    // Dominant singular triple of the 4x4 rearrangement via the
    // robust one-sided Jacobi SVD.
    SvdResult s = svd(r);
    const double sigma = s.s[0];
    const double sq = std::sqrt(sigma);
    a.resizeForOverwrite(2, 2);
    b.resizeForOverwrite(2, 2);
    // vec(a) = sqrt(sigma) * u_0, vec(b) = sqrt(sigma) * conj(v_0).
    a(0, 0) = s.u(0, 0) * sq; a(0, 1) = s.u(1, 0) * sq;
    a(1, 0) = s.u(2, 0) * sq; a(1, 1) = s.u(3, 0) * sq;
    b(0, 0) = std::conj(s.v(0, 0)) * sq;
    b(0, 1) = std::conj(s.v(1, 0)) * sq;
    b(1, 0) = std::conj(s.v(2, 0)) * sq;
    b(1, 1) = std::conj(s.v(3, 0)) * sq;
    return (m - kron(a, b)).frobeniusNorm();
}

namespace
{

Matrix
makePauli(char which)
{
    switch (which) {
      case 'I': return {{1.0, 0.0}, {0.0, 1.0}};
      case 'X': return {{0.0, 1.0}, {1.0, 0.0}};
      case 'Y': return {{0.0, -kI}, {kI, 0.0}};
      default:  return {{1.0, 0.0}, {0.0, -1.0}};
    }
}

} // namespace

const Matrix &pauliI() { static const Matrix m = makePauli('I'); return m; }
const Matrix &pauliX() { static const Matrix m = makePauli('X'); return m; }
const Matrix &pauliY() { static const Matrix m = makePauli('Y'); return m; }
const Matrix &pauliZ() { static const Matrix m = makePauli('Z'); return m; }

const Matrix &
pauliXX()
{
    static const Matrix m = kron(pauliX(), pauliX());
    return m;
}

const Matrix &
pauliYY()
{
    static const Matrix m = kron(pauliY(), pauliY());
    return m;
}

const Matrix &
pauliZZ()
{
    static const Matrix m = kron(pauliZ(), pauliZ());
    return m;
}

} // namespace reqisc::qmath
