#include "qmath/matrix.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "qmath/svd.hh"

namespace reqisc::qmath
{

Matrix::Matrix(std::initializer_list<std::initializer_list<Complex>> rows)
    : rows_(static_cast<int>(rows.size())),
      cols_(rows.size() ? static_cast<int>(rows.begin()->size()) : 0)
{
    data_.reserve(static_cast<size_t>(rows_) * cols_);
    for (const auto &row : rows) {
        assert(static_cast<int>(row.size()) == cols_);
        for (const auto &v : row)
            data_.push_back(v);
    }
}

Matrix
Matrix::identity(int n)
{
    Matrix m(n, n);
    for (int i = 0; i < n; ++i)
        m(i, i) = 1.0;
    return m;
}

Matrix
Matrix::operator+(const Matrix &o) const
{
    assert(rows_ == o.rows_ && cols_ == o.cols_);
    Matrix r(rows_, cols_);
    for (size_t k = 0; k < data_.size(); ++k)
        r.data_[k] = data_[k] + o.data_[k];
    return r;
}

Matrix
Matrix::operator-(const Matrix &o) const
{
    assert(rows_ == o.rows_ && cols_ == o.cols_);
    Matrix r(rows_, cols_);
    for (size_t k = 0; k < data_.size(); ++k)
        r.data_[k] = data_[k] - o.data_[k];
    return r;
}

Matrix
Matrix::operator*(const Matrix &o) const
{
    assert(cols_ == o.rows_);
    Matrix r(rows_, o.cols_);
    for (int i = 0; i < rows_; ++i) {
        for (int k = 0; k < cols_; ++k) {
            const Complex aik = (*this)(i, k);
            if (aik == Complex(0.0, 0.0))
                continue;
            const Complex *brow = &o.data_[static_cast<size_t>(k) *
                                           o.cols_];
            Complex *rrow = &r.data_[static_cast<size_t>(i) * o.cols_];
            for (int j = 0; j < o.cols_; ++j)
                rrow[j] += aik * brow[j];
        }
    }
    return r;
}

Matrix
Matrix::operator*(const Complex &s) const
{
    Matrix r(rows_, cols_);
    for (size_t k = 0; k < data_.size(); ++k)
        r.data_[k] = data_[k] * s;
    return r;
}

Matrix &
Matrix::operator+=(const Matrix &o)
{
    assert(rows_ == o.rows_ && cols_ == o.cols_);
    for (size_t k = 0; k < data_.size(); ++k)
        data_[k] += o.data_[k];
    return *this;
}

Matrix &
Matrix::operator-=(const Matrix &o)
{
    assert(rows_ == o.rows_ && cols_ == o.cols_);
    for (size_t k = 0; k < data_.size(); ++k)
        data_[k] -= o.data_[k];
    return *this;
}

Matrix &
Matrix::operator*=(const Complex &s)
{
    for (auto &v : data_)
        v *= s;
    return *this;
}

Matrix
Matrix::dagger() const
{
    Matrix r(cols_, rows_);
    for (int i = 0; i < rows_; ++i)
        for (int j = 0; j < cols_; ++j)
            r(j, i) = std::conj((*this)(i, j));
    return r;
}

Matrix
Matrix::transpose() const
{
    Matrix r(cols_, rows_);
    for (int i = 0; i < rows_; ++i)
        for (int j = 0; j < cols_; ++j)
            r(j, i) = (*this)(i, j);
    return r;
}

Matrix
Matrix::conjugate() const
{
    Matrix r(rows_, cols_);
    for (size_t k = 0; k < data_.size(); ++k)
        r.data_[k] = std::conj(data_[k]);
    return r;
}

Complex
Matrix::trace() const
{
    assert(rows_ == cols_);
    Complex t(0.0, 0.0);
    for (int i = 0; i < rows_; ++i)
        t += (*this)(i, i);
    return t;
}

double
Matrix::frobeniusNorm() const
{
    double s = 0.0;
    for (const auto &v : data_)
        s += std::norm(v);
    return std::sqrt(s);
}

double
Matrix::maxAbs() const
{
    double m = 0.0;
    for (const auto &v : data_)
        m = std::max(m, std::abs(v));
    return m;
}

bool
Matrix::approxEqual(const Matrix &o, double tol) const
{
    if (rows_ != o.rows_ || cols_ != o.cols_)
        return false;
    for (size_t k = 0; k < data_.size(); ++k)
        if (std::abs(data_[k] - o.data_[k]) > tol)
            return false;
    return true;
}

bool
Matrix::approxEqualUpToPhase(const Matrix &o, double tol) const
{
    if (rows_ != o.rows_ || cols_ != o.cols_)
        return false;
    // Find the largest entry of o to estimate the relative phase.
    size_t kmax = 0;
    double best = -1.0;
    for (size_t k = 0; k < data_.size(); ++k) {
        if (std::abs(o.data_[k]) > best) {
            best = std::abs(o.data_[k]);
            kmax = k;
        }
    }
    if (best < tol)
        return approxEqual(o, tol);
    Complex phase = data_[kmax] / o.data_[kmax];
    double mag = std::abs(phase);
    if (mag < 1e-14)
        return false;
    phase /= mag;
    for (size_t k = 0; k < data_.size(); ++k)
        if (std::abs(data_[k] - phase * o.data_[k]) > tol)
            return false;
    return true;
}

bool
Matrix::isUnitary(double tol) const
{
    if (rows_ != cols_)
        return false;
    return ((*this) * dagger()).approxEqual(identity(rows_), tol);
}

bool
Matrix::isHermitian(double tol) const
{
    if (rows_ != cols_)
        return false;
    return approxEqual(dagger(), tol);
}

std::string
Matrix::toString(int precision) const
{
    std::ostringstream os;
    os.precision(precision);
    os << std::fixed;
    for (int i = 0; i < rows_; ++i) {
        os << "[ ";
        for (int j = 0; j < cols_; ++j) {
            const Complex v = (*this)(i, j);
            os << v.real() << (v.imag() >= 0 ? "+" : "-")
               << std::abs(v.imag()) << "i ";
        }
        os << "]\n";
    }
    return os.str();
}

Matrix
kron(const Matrix &a, const Matrix &b)
{
    Matrix r(a.rows() * b.rows(), a.cols() * b.cols());
    for (int i = 0; i < a.rows(); ++i)
        for (int j = 0; j < a.cols(); ++j) {
            const Complex aij = a(i, j);
            if (aij == Complex(0.0, 0.0))
                continue;
            for (int k = 0; k < b.rows(); ++k)
                for (int l = 0; l < b.cols(); ++l)
                    r(i * b.rows() + k, j * b.cols() + l) = aij * b(k, l);
        }
    return r;
}

Matrix
kronAll(const std::vector<Matrix> &factors)
{
    assert(!factors.empty());
    Matrix r = factors.front();
    for (size_t i = 1; i < factors.size(); ++i)
        r = kron(r, factors[i]);
    return r;
}

Complex
hsInner(const Matrix &a, const Matrix &b)
{
    assert(a.rows() == b.rows() && a.cols() == b.cols());
    Complex s(0.0, 0.0);
    for (int i = 0; i < a.rows(); ++i)
        for (int j = 0; j < a.cols(); ++j)
            s += std::conj(a(i, j)) * b(i, j);
    return s;
}

double
traceFidelity(const Matrix &u, const Matrix &v)
{
    return std::abs(hsInner(u, v)) / u.rows();
}

double
traceInfidelity(const Matrix &u, const Matrix &v)
{
    return 1.0 - traceFidelity(u, v);
}

double
kronFactor2x2(const Matrix &m, Matrix &a, Matrix &b)
{
    assert(m.rows() == 4 && m.cols() == 4);
    // Rearrangement R: R[(i1,j1),(i2,j2)] = m[(i1,i2),(j1,j2)].
    // m = a(x)b <=> R = vec(a) vec(b)^T (rank one).
    Matrix r(4, 4);
    for (int i1 = 0; i1 < 2; ++i1)
        for (int j1 = 0; j1 < 2; ++j1)
            for (int i2 = 0; i2 < 2; ++i2)
                for (int j2 = 0; j2 < 2; ++j2)
                    r(i1 * 2 + j1, i2 * 2 + j2) =
                        m(i1 * 2 + i2, j1 * 2 + j2);
    // Dominant singular triple of the 4x4 rearrangement via the
    // robust one-sided Jacobi SVD.
    SvdResult s = svd(r);
    const double sigma = s.s[0];
    const double sq = std::sqrt(sigma);
    a = Matrix(2, 2);
    b = Matrix(2, 2);
    // vec(a) = sqrt(sigma) * u_0, vec(b) = sqrt(sigma) * conj(v_0).
    a(0, 0) = s.u(0, 0) * sq; a(0, 1) = s.u(1, 0) * sq;
    a(1, 0) = s.u(2, 0) * sq; a(1, 1) = s.u(3, 0) * sq;
    b(0, 0) = std::conj(s.v(0, 0)) * sq;
    b(0, 1) = std::conj(s.v(1, 0)) * sq;
    b(1, 0) = std::conj(s.v(2, 0)) * sq;
    b(1, 1) = std::conj(s.v(3, 0)) * sq;
    return (m - kron(a, b)).frobeniusNorm();
}

namespace
{

Matrix
makePauli(char which)
{
    switch (which) {
      case 'I': return {{1.0, 0.0}, {0.0, 1.0}};
      case 'X': return {{0.0, 1.0}, {1.0, 0.0}};
      case 'Y': return {{0.0, -kI}, {kI, 0.0}};
      default:  return {{1.0, 0.0}, {0.0, -1.0}};
    }
}

} // namespace

const Matrix &pauliI() { static const Matrix m = makePauli('I'); return m; }
const Matrix &pauliX() { static const Matrix m = makePauli('X'); return m; }
const Matrix &pauliY() { static const Matrix m = makePauli('Y'); return m; }
const Matrix &pauliZ() { static const Matrix m = makePauli('Z'); return m; }

const Matrix &
pauliXX()
{
    static const Matrix m = kron(pauliX(), pauliX());
    return m;
}

const Matrix &
pauliYY()
{
    static const Matrix m = kron(pauliY(), pauliY());
    return m;
}

const Matrix &
pauliZZ()
{
    static const Matrix m = kron(pauliZ(), pauliZ());
    return m;
}

} // namespace reqisc::qmath
