/**
 * @file
 * Matrix exponentials of Hermitian generators.
 *
 * The genAshN scheme and all simulators only ever exponentiate
 * Hermitian Hamiltonians, so exp(-i t H) = V exp(-i t w) V^dagger via
 * the Jacobi eigensolver is exact to machine precision and cheap.
 */

#ifndef REQISC_QMATH_EXPM_HH
#define REQISC_QMATH_EXPM_HH

#include "qmath/matrix.hh"

namespace reqisc::qmath
{

/**
 * exp(-i t h) for Hermitian h.
 *
 * @param h Hermitian generator
 * @param t evolution time (default 1)
 * @return the unitary exp(-i t h)
 */
Matrix expim(const Matrix &h, double t = 1.0);

/** exp(+i t h) for Hermitian h. */
Matrix expimPlus(const Matrix &h, double t = 1.0);

} // namespace reqisc::qmath

#endif // REQISC_QMATH_EXPM_HH
