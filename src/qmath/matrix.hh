/**
 * @file
 * Dense complex matrix type and basic linear-algebra operations.
 *
 * ReQISC works almost exclusively with small dense complex matrices
 * (2x2 one-qubit gates, 4x4 two-qubit gates, 8x8 synthesis blocks and
 * 2^n x 2^n simulator unitaries for small n), so a simple row-major
 * dense representation is the right substrate.
 *
 * Tensor-product convention: kron(A, B) puts A on the more significant
 * subsystem — row/column index = (i_A * dim_B + i_B) — which is why
 * the first listed qubit of a Gate is the most significant bit
 * everywhere downstream.
 */

#ifndef REQISC_QMATH_MATRIX_HH
#define REQISC_QMATH_MATRIX_HH

#include <cassert>
#include <complex>
#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

namespace reqisc::qmath
{

using Complex = std::complex<double>;

/** Imaginary unit, used pervasively when building gate matrices. */
inline constexpr Complex kI{0.0, 1.0};

/** Machine-precision-scale default tolerance for approx comparisons. */
inline constexpr double kDefaultTol = 1e-10;

/**
 * Row-major dense complex matrix.
 *
 * Sized at runtime, with small-buffer-optimized storage: matrices up
 * to kInlineDim x kInlineDim (8x8 — every gate and synthesis block)
 * live inline with no heap allocation; only the 2^n x 2^n simulator
 * unitaries spill to the heap. The element-wise operators and
 * *, kron() and dagger() route through the fixed-size fast kernels in
 * qmath/kernels.hh (SIMD when built with REQISC_SIMD, bit-identical
 * scalar otherwise); hot loops that want zero temporaries use the
 * destination-passing kernels::*Into entry points directly.
 */
class Matrix
{
  public:
    /** Largest dimension stored inline (and kernel-specialized). */
    static constexpr int kInlineDim = 8;

    Matrix() : rows_(0), cols_(0) {}

    Matrix(int rows, int cols) : rows_(0), cols_(0)
    {
        assert(rows >= 0 && cols >= 0);
        setZero(rows, cols);
    }

    Matrix(const Matrix &o) : rows_(0), cols_(0) { assignCopy(o); }

    Matrix(Matrix &&o) noexcept : rows_(0), cols_(0)
    {
        assignMove(std::move(o));
    }

    Matrix &
    operator=(const Matrix &o)
    {
        if (this != &o)
            assignCopy(o);
        return *this;
    }

    Matrix &
    operator=(Matrix &&o) noexcept
    {
        if (this != &o)
            assignMove(std::move(o));
        return *this;
    }

    /** Build from a nested initializer list (row by row). */
    Matrix(std::initializer_list<std::initializer_list<Complex>> rows);

    /** @return the n x n identity matrix. */
    static Matrix identity(int n);

    /** @return an all-zero rows x cols matrix. */
    static Matrix zeros(int rows, int cols) { return Matrix(rows, cols); }

    int rows() const { return rows_; }
    int cols() const { return cols_; }
    size_t size() const { return static_cast<size_t>(rows_) * cols_; }
    bool empty() const { return size() == 0; }

    /**
     * Reshape without initializing: after the call the contents are
     * unspecified and the caller overwrites every element. Reuses the
     * inline buffer / existing heap capacity, so destination-passing
     * kernels can recycle a matrix with no allocation.
     */
    void resizeForOverwrite(int rows, int cols);

    /** Reshape to an all-zero rows x cols matrix, reusing storage. */
    void setZero(int rows, int cols);

    /** Reshape to the n x n identity, reusing storage. */
    void setIdentity(int n);

    Complex &
    operator()(int i, int j)
    {
        assert(i >= 0 && i < rows_ && j >= 0 && j < cols_);
        return data_[static_cast<size_t>(i) * cols_ + j];
    }

    const Complex &
    operator()(int i, int j) const
    {
        assert(i >= 0 && i < rows_ && j >= 0 && j < cols_);
        return data_[static_cast<size_t>(i) * cols_ + j];
    }

    /** Raw storage access (row-major), used by the simulators. */
    Complex *data() { return data_; }
    const Complex *data() const { return data_; }

    Matrix operator+(const Matrix &o) const;
    Matrix operator-(const Matrix &o) const;
    Matrix operator*(const Matrix &o) const;
    Matrix operator*(const Complex &s) const;
    Matrix &operator+=(const Matrix &o);
    Matrix &operator-=(const Matrix &o);
    Matrix &operator*=(const Complex &s);

    /** @return the conjugate transpose. */
    Matrix dagger() const;

    /** @return the (non-conjugated) transpose. */
    Matrix transpose() const;

    /** @return the entrywise complex conjugate. */
    Matrix conjugate() const;

    Complex trace() const;

    /** Frobenius norm sqrt(sum |a_ij|^2). */
    double frobeniusNorm() const;

    /** Largest entrywise magnitude. */
    double maxAbs() const;

    /** Entrywise comparison with absolute tolerance. */
    bool approxEqual(const Matrix &o, double tol = kDefaultTol) const;

    /**
     * Compare up to a global phase: true iff there is a unit-modulus
     * phase p with |this - p*o| <= tol entrywise.
     */
    bool approxEqualUpToPhase(const Matrix &o,
                              double tol = kDefaultTol) const;

    /** true iff M Mdag = I within tol. */
    bool isUnitary(double tol = kDefaultTol) const;

    /** true iff M = Mdag within tol. */
    bool isHermitian(double tol = kDefaultTol) const;

    /** Human-readable dump, mostly for debugging and test failures. */
    std::string toString(int precision = 4) const;

  private:
    static constexpr size_t kInlineCap =
        static_cast<size_t>(kInlineDim) * kInlineDim;

    void assignCopy(const Matrix &o);
    void assignMove(Matrix &&o) noexcept;

    int rows_;
    int cols_;
    Complex *data_ = sbo_;     //!< sbo_ or heap_.data()
    std::vector<Complex> heap_;
    alignas(32) Complex sbo_[kInlineCap];
};

inline Matrix
operator*(const Complex &s, const Matrix &m)
{
    return m * s;
}

/** Kronecker (tensor) product a (x) b. */
Matrix kron(const Matrix &a, const Matrix &b);

/** Tensor product of a list of factors, left factor = most significant. */
Matrix kronAll(const std::vector<Matrix> &factors);

/** Tr(a^dagger b), the Hilbert-Schmidt inner product. */
Complex hsInner(const Matrix &a, const Matrix &b);

/**
 * Phase-invariant gate fidelity |Tr(Udag V)| / N for N x N unitaries.
 * 1.0 means U and V agree up to a global phase.
 */
double traceFidelity(const Matrix &u, const Matrix &v);

/** 1 - traceFidelity, the infidelity used throughout the paper. */
double traceInfidelity(const Matrix &u, const Matrix &v);

/**
 * Nearest Kronecker factorization of a 4x4 matrix m ~ a (x) b
 * (Pitsianis-Van Loan rearrangement + dominant rank-1 term).
 * For exact tensor products of unitaries the result is exact and both
 * factors are returned with unit determinant phase normalization.
 *
 * @param m input 4x4 matrix
 * @param a output 2x2 left factor
 * @param b output 2x2 right factor
 * @return Frobenius norm of the residual m - a (x) b
 */
double kronFactor2x2(const Matrix &m, Matrix &a, Matrix &b);

/** Pauli and frequently used constant matrices. */
const Matrix &pauliI();
const Matrix &pauliX();
const Matrix &pauliY();
const Matrix &pauliZ();

/** Two-qubit Pauli products XX, YY, ZZ. */
const Matrix &pauliXX();
const Matrix &pauliYY();
const Matrix &pauliZZ();

} // namespace reqisc::qmath

#endif // REQISC_QMATH_MATRIX_HH
