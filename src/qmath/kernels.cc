/**
 * @file
 * Scalar kernels, the generic fallbacks and the one dispatch point.
 *
 * This TU is compiled with -ffp-contract=off so the scalar kernels
 * stay mul/add exactly — the SIMD backend reproduces them
 * bit-for-bit (see the bit-identity rule in kernels.hh).
 */

#include "qmath/kernels.hh"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <string>

#include "qmath/kernels_detail.hh"

namespace reqisc::qmath::kernels
{

namespace
{

using detail::SimdOps;

/*
 * Scalar complex helpers, written against the raw double pairs so
 * the arithmetic is pinned to exactly one rounding per mul/add —
 * independent of how the standard library spells complex multiply.
 */

/** acc += a * b (complex), naive formula: one chain per component. */
inline void
cmulAcc(double &ar_re, double &ar_im, double a_re, double a_im,
        double b_re, double b_im)
{
    ar_re += a_re * b_re - a_im * b_im;
    ar_im += a_re * b_im + a_im * b_re;
}

template <int N>
void
mulNScalar(Complex *r, const Complex *a, const Complex *b)
{
    const double *ad = reinterpret_cast<const double *>(a);
    const double *bd = reinterpret_cast<const double *>(b);
    double *rd = reinterpret_cast<double *>(r);
    for (int i = 0; i < N; ++i) {
        double acc[2 * N] = {};
        const double *arow = ad + 2 * i * N;
        for (int k = 0; k < N; ++k) {
            const double are = arow[2 * k];
            const double aim = arow[2 * k + 1];
            const double *brow = bd + 2 * k * N;
            for (int j = 0; j < N; ++j)
                cmulAcc(acc[2 * j], acc[2 * j + 1], are, aim,
                        brow[2 * j], brow[2 * j + 1]);
        }
        std::memcpy(rd + 2 * i * N, acc, sizeof(acc));
    }
}

void
kronSmallScalar(Complex *r, const Complex *a, int ar, int ac,
                const Complex *b, int br, int bc)
{
    const double *ad = reinterpret_cast<const double *>(a);
    const double *bd = reinterpret_cast<const double *>(b);
    double *rd = reinterpret_cast<double *>(r);
    const int rc = ac * bc;
    for (int i = 0; i < ar; ++i)
        for (int j = 0; j < ac; ++j) {
            const double are = ad[2 * (i * ac + j)];
            const double aim = ad[2 * (i * ac + j) + 1];
            for (int k = 0; k < br; ++k) {
                double *row = rd + 2 * ((i * br + k) * rc + j * bc);
                const double *brow = bd + 2 * k * bc;
                for (int l = 0; l < bc; ++l) {
                    row[2 * l] = are * brow[2 * l] -
                                 aim * brow[2 * l + 1];
                    row[2 * l + 1] = are * brow[2 * l + 1] +
                                     aim * brow[2 * l];
                }
            }
        }
}

void
daggerScalar(Complex *r, const Complex *a, int rows, int cols)
{
    const double *ad = reinterpret_cast<const double *>(a);
    double *rd = reinterpret_cast<double *>(r);
    for (int i = 0; i < rows; ++i)
        for (int j = 0; j < cols; ++j) {
            const double *src = ad + 2 * (i * cols + j);
            double *dst = rd + 2 * (j * rows + i);
            dst[0] = src[0];
            dst[1] = -src[1];
        }
}

void
axpyScalar(Complex *y, const Complex &s, const Complex *x,
           std::size_t n)
{
    const double sre = s.real(), sim = s.imag();
    const double *xd = reinterpret_cast<const double *>(x);
    double *yd = reinterpret_cast<double *>(y);
    for (std::size_t k = 0; k < n; ++k)
        cmulAcc(yd[2 * k], yd[2 * k + 1], sre, sim, xd[2 * k],
                xd[2 * k + 1]);
}

void
scaleScalar(Complex *x, const Complex &s, std::size_t n)
{
    const double sre = s.real(), sim = s.imag();
    double *xd = reinterpret_cast<double *>(x);
    for (std::size_t k = 0; k < n; ++k) {
        const double re = xd[2 * k];
        const double im = xd[2 * k + 1];
        xd[2 * k] = re * sre - im * sim;
        xd[2 * k + 1] = re * sim + im * sre;
    }
}

constexpr SimdOps kScalarOps = {
    "scalar",    mulNScalar<2>, mulNScalar<4>, mulNScalar<8>,
    kronSmallScalar, daggerScalar, axpyScalar, scaleScalar,
};

/** Case-insensitive membership in the "force scalar" env values. */
bool
envForcesScalar()
{
    const char *v = std::getenv("REQISC_SIMD");
    if (!v)
        return false;
    std::string s(v);
    for (char &c : s)
        c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    return s == "off" || s == "0" || s == "false" || s == "scalar" ||
           s == "no";
}

const SimdOps *
bestOps()
{
#ifdef REQISC_SIMD_AVX2
    if (detail::avx2Supported())
        return &detail::avx2Ops();
#endif
    return &kScalarOps;
}

const SimdOps *
initialOps()
{
    if (envForcesScalar())
        return &kScalarOps;
    return bestOps();
}

/**
 * The one dispatch point. Initialized on first use (idempotent, so
 * a benign first-use race resolves to the same pointer); flipped
 * only by setSimdEnabled(), which tests call single-threaded.
 */
std::atomic<const SimdOps *> g_ops{nullptr};

inline const SimdOps &
activeOps()
{
    const SimdOps *p = g_ops.load(std::memory_order_relaxed);
    if (!p) {
        p = initialOps();
        g_ops.store(p, std::memory_order_relaxed);
    }
    return *p;
}

/** Operand dims small enough for the dense (skip-free) loops. */
inline bool
smallDims(int m, int k, int n)
{
    return m <= Matrix::kInlineDim && k <= Matrix::kInlineDim &&
           n <= Matrix::kInlineDim;
}

} // namespace

bool
simdCompiledIn()
{
#ifdef REQISC_SIMD_AVX2
    return true;
#else
    return false;
#endif
}

bool
simdActive()
{
    return activeOps().name != kScalarOps.name;
}

bool
setSimdEnabled(bool on)
{
    g_ops.store(on ? bestOps() : &kScalarOps,
                std::memory_order_relaxed);
    return simdActive();
}

const char *
backendName()
{
    return activeOps().name;
}

void
mulInto(Matrix &dst, const Matrix &a, const Matrix &b)
{
    assert(&dst != &a && &dst != &b);
    assert(a.cols() == b.rows());
    const int n = a.rows();
    if (n == a.cols() && n == b.cols() &&
        (n == 2 || n == 4 || n == 8)) {
        const SimdOps &ops = activeOps();
        dst.resizeForOverwrite(n, n);
        (n == 2 ? ops.mul2 : n == 4 ? ops.mul4 : ops.mul8)(
            dst.data(), a.data(), b.data());
        return;
    }
    mulGenericInto(dst, a, b);
}

void
mulGenericInto(Matrix &dst, const Matrix &a, const Matrix &b)
{
    assert(&dst != &a && &dst != &b);
    assert(a.cols() == b.rows());
    const int m = a.rows(), kk = a.cols(), n = b.cols();
    dst.setZero(m, n);
    const Complex *ad = a.data();
    const Complex *bd = b.data();
    Complex *rd = dst.data();
    if (smallDims(m, kk, n)) {
        // Dense: gates and synthesis blocks are dense, so the old
        // per-element zero test only cost branches here. Every
        // accumulation runs, in k order (NaN/Inf now propagate).
        for (int i = 0; i < m; ++i) {
            double *rrow = reinterpret_cast<double *>(rd +
                                                      static_cast<size_t>(i) * n);
            const double *arow = reinterpret_cast<const double *>(
                ad + static_cast<size_t>(i) * kk);
            for (int k = 0; k < kk; ++k) {
                const double are = arow[2 * k];
                const double aim = arow[2 * k + 1];
                const double *brow = reinterpret_cast<const double *>(
                    bd + static_cast<size_t>(k) * n);
                for (int j = 0; j < n; ++j)
                    cmulAcc(rrow[2 * j], rrow[2 * j + 1], are, aim,
                            brow[2 * j], brow[2 * j + 1]);
            }
        }
        return;
    }
    // Large operands: structured zeros (lifted gates, simulator
    // unitaries) are common enough that skipping a zero row of
    // accumulations is a real win.
    for (int i = 0; i < m; ++i) {
        for (int k = 0; k < kk; ++k) {
            const Complex aik = ad[static_cast<size_t>(i) * kk + k];
            if (aik == Complex(0.0, 0.0))
                continue;
            const Complex *brow = bd + static_cast<size_t>(k) * n;
            Complex *rrow = rd + static_cast<size_t>(i) * n;
            for (int j = 0; j < n; ++j)
                rrow[j] += aik * brow[j];
        }
    }
}

void
kronInto(Matrix &dst, const Matrix &a, const Matrix &b)
{
    assert(&dst != &a && &dst != &b);
    const int rr = a.rows() * b.rows();
    const int rc = a.cols() * b.cols();
    if (rr <= Matrix::kInlineDim && rc <= Matrix::kInlineDim &&
        !a.empty() && !b.empty()) {
        dst.resizeForOverwrite(rr, rc);
        activeOps().kronSmall(dst.data(), a.data(), a.rows(),
                              a.cols(), b.data(), b.rows(), b.cols());
        return;
    }
    dst.setZero(rr, rc);
    for (int i = 0; i < a.rows(); ++i)
        for (int j = 0; j < a.cols(); ++j) {
            const Complex aij = a(i, j);
            if (aij == Complex(0.0, 0.0))
                continue;
            for (int k = 0; k < b.rows(); ++k)
                for (int l = 0; l < b.cols(); ++l)
                    dst(i * b.rows() + k, j * b.cols() + l) =
                        aij * b(k, l);
        }
}

void
daggerInto(Matrix &dst, const Matrix &a)
{
    assert(&dst != &a);
    dst.resizeForOverwrite(a.cols(), a.rows());
    activeOps().dagger(dst.data(), a.data(), a.rows(), a.cols());
}

void
axpyInPlace(Matrix &y, const Complex &s, const Matrix &x)
{
    assert(y.rows() == x.rows() && y.cols() == x.cols());
    activeOps().axpy(y.data(), s, x.data(), y.size());
}

void
scaleInPlace(Matrix &m, const Complex &s)
{
    activeOps().scale(m.data(), s, m.size());
}

Complex
mulTrace(const Matrix &a, const Matrix &b)
{
    assert(a.rows() == a.cols() && b.rows() == b.cols());
    assert(a.cols() == b.rows());
    const int n = a.rows();
    const double *ad = reinterpret_cast<const double *>(a.data());
    const double *bd = reinterpret_cast<const double *>(b.data());
    // Mirrors trace(mul(a, b)) exactly: the (i,i) chain accumulates
    // over k first, then the diagonal sums in i order.
    double tre = 0.0, tim = 0.0;
    for (int i = 0; i < n; ++i) {
        double rre = 0.0, rim = 0.0;
        const double *arow = ad + 2 * static_cast<size_t>(i) * n;
        for (int k = 0; k < n; ++k)
            cmulAcc(rre, rim, arow[2 * k], arow[2 * k + 1],
                    bd[2 * (static_cast<size_t>(k) * n + i)],
                    bd[2 * (static_cast<size_t>(k) * n + i) + 1]);
        tre += rre;
        tim += rim;
    }
    return {tre, tim};
}

Complex
trace(const Matrix &a)
{
    assert(a.rows() == a.cols());
    Complex t(0.0, 0.0);
    for (int i = 0; i < a.rows(); ++i)
        t += a(i, i);
    return t;
}

double
frobeniusNorm(const Matrix &a)
{
    double s = 0.0;
    const Complex *d = a.data();
    const size_t n = a.size();
    for (size_t k = 0; k < n; ++k)
        s += std::norm(d[k]);
    return std::sqrt(s);
}

double
maxAbs(const Matrix &a)
{
    double m = 0.0;
    const Complex *d = a.data();
    const size_t n = a.size();
    for (size_t k = 0; k < n; ++k)
        m = std::max(m, std::abs(d[k]));
    return m;
}

} // namespace reqisc::qmath::kernels
