#include "qmath/optimize.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace reqisc::qmath
{

MinimizeResult
nelderMead(const std::function<double(const std::vector<double> &)> &f,
           const std::vector<double> &x0, double step, double tol,
           int max_iter)
{
    const size_t n = x0.size();
    assert(n >= 1);
    std::vector<std::vector<double>> pts(n + 1, x0);
    for (size_t i = 0; i < n; ++i)
        pts[i + 1][i] += step;
    std::vector<double> vals(n + 1);
    for (size_t i = 0; i <= n; ++i)
        vals[i] = f(pts[i]);

    MinimizeResult res;
    int it = 0;
    for (; it < max_iter; ++it) {
        // Order simplex.
        std::vector<size_t> ord(n + 1);
        for (size_t i = 0; i <= n; ++i)
            ord[i] = i;
        std::sort(ord.begin(), ord.end(), [&](size_t a, size_t b) {
            return vals[a] < vals[b];
        });
        const size_t best = ord[0], worst = ord[n], second = ord[n - 1];
        if (std::abs(vals[worst] - vals[best]) <
                tol * (std::abs(vals[best]) + tol))
            break;

        // Centroid of all but worst.
        std::vector<double> cen(n, 0.0);
        for (size_t i = 0; i <= n; ++i) {
            if (i == worst)
                continue;
            for (size_t d = 0; d < n; ++d)
                cen[d] += pts[i][d];
        }
        for (size_t d = 0; d < n; ++d)
            cen[d] /= static_cast<double>(n);

        auto blend = [&](double coef) {
            std::vector<double> p(n);
            for (size_t d = 0; d < n; ++d)
                p[d] = cen[d] + coef * (pts[worst][d] - cen[d]);
            return p;
        };

        std::vector<double> xr = blend(-1.0);
        double fr = f(xr);
        if (fr < vals[ord[0]]) {
            std::vector<double> xe = blend(-2.0);
            double fe = f(xe);
            if (fe < fr) {
                pts[worst] = xe;
                vals[worst] = fe;
            } else {
                pts[worst] = xr;
                vals[worst] = fr;
            }
        } else if (fr < vals[second]) {
            pts[worst] = xr;
            vals[worst] = fr;
        } else {
            std::vector<double> xc = blend(0.5);
            double fc = f(xc);
            if (fc < vals[worst]) {
                pts[worst] = xc;
                vals[worst] = fc;
            } else {
                // Shrink toward best.
                for (size_t i = 0; i <= n; ++i) {
                    if (i == best)
                        continue;
                    for (size_t d = 0; d < n; ++d)
                        pts[i][d] = pts[best][d] +
                            0.5 * (pts[i][d] - pts[best][d]);
                    vals[i] = f(pts[i]);
                }
            }
        }
    }
    size_t bi = 0;
    for (size_t i = 1; i <= n; ++i)
        if (vals[i] < vals[bi])
            bi = i;
    res.x = pts[bi];
    res.value = vals[bi];
    res.iterations = it;
    res.converged = it < max_iter;
    return res;
}

RootResult
newtonSolve(const std::function<std::vector<double>(
                const std::vector<double> &)> &f,
            const std::vector<double> &x0, double tol, int max_iter)
{
    const size_t n = x0.size();
    std::vector<double> x = x0;
    auto norm = [](const std::vector<double> &v) {
        double s = 0.0;
        for (double e : v)
            s += e * e;
        return std::sqrt(s);
    };
    std::vector<double> fx = f(x);
    assert(fx.size() == n);
    double r = norm(fx);
    RootResult res;
    for (int it = 0; it < max_iter; ++it) {
        if (r < tol) {
            res.converged = true;
            break;
        }
        // Forward-difference Jacobian.
        std::vector<std::vector<double>> jac(n, std::vector<double>(n));
        for (size_t j = 0; j < n; ++j) {
            const double h =
                1e-7 * std::max(1.0, std::abs(x[j]));
            std::vector<double> xp = x;
            xp[j] += h;
            std::vector<double> fp = f(xp);
            for (size_t i = 0; i < n; ++i)
                jac[i][j] = (fp[i] - fx[i]) / h;
        }
        // Solve jac * dx = -fx by Gaussian elimination with partial
        // pivoting (n is 1..3 here).
        std::vector<std::vector<double>> a = jac;
        std::vector<double> b(n);
        for (size_t i = 0; i < n; ++i)
            b[i] = -fx[i];
        bool singular = false;
        for (size_t col = 0; col < n; ++col) {
            size_t piv = col;
            for (size_t row = col + 1; row < n; ++row)
                if (std::abs(a[row][col]) > std::abs(a[piv][col]))
                    piv = row;
            if (std::abs(a[piv][col]) < 1e-14) {
                singular = true;
                break;
            }
            std::swap(a[piv], a[col]);
            std::swap(b[piv], b[col]);
            for (size_t row = col + 1; row < n; ++row) {
                const double fmul = a[row][col] / a[col][col];
                for (size_t c = col; c < n; ++c)
                    a[row][c] -= fmul * a[col][c];
                b[row] -= fmul * b[col];
            }
        }
        if (singular)
            break;
        std::vector<double> dx(n);
        for (int i = static_cast<int>(n) - 1; i >= 0; --i) {
            double s = b[i];
            for (size_t c = i + 1; c < n; ++c)
                s -= a[i][c] * dx[c];
            dx[i] = s / a[i][i];
        }
        // Backtracking line search on the residual norm.
        double lambda = 1.0;
        bool improved = false;
        for (int ls = 0; ls < 40; ++ls) {
            std::vector<double> xn = x;
            for (size_t d = 0; d < n; ++d)
                xn[d] += lambda * dx[d];
            std::vector<double> fn = f(xn);
            const double rn = norm(fn);
            if (rn < r) {
                x = xn;
                fx = fn;
                r = rn;
                improved = true;
                break;
            }
            lambda *= 0.5;
        }
        if (!improved)
            break;
    }
    if (r < tol)
        res.converged = true;
    res.x = x;
    res.residual = r;
    return res;
}

double
bisect(const std::function<double(double)> &f, double lo, double hi,
       double tol, int max_iter)
{
    double flo = f(lo);
    double fhi = f(hi);
    if (flo == 0.0)
        return lo;
    if (fhi == 0.0)
        return hi;
    assert(flo * fhi <= 0.0);
    for (int it = 0; it < max_iter && (hi - lo) > tol; ++it) {
        const double mid = 0.5 * (lo + hi);
        const double fm = f(mid);
        if (fm == 0.0)
            return mid;
        if (flo * fm < 0.0) {
            hi = mid;
            fhi = fm;
        } else {
            lo = mid;
            flo = fm;
        }
    }
    return 0.5 * (lo + hi);
}

} // namespace reqisc::qmath
