#include "qmath/svd.hh"

#include <algorithm>
#include <array>
#include <cmath>

namespace reqisc::qmath
{

SvdResult
svd(const Matrix &a)
{
    assert(a.rows() == a.cols());
    const int n = a.rows();
    Matrix u = a;                      // becomes U * Sigma
    Matrix v = Matrix::identity(n);    // accumulates V

    const double scale = std::max(a.frobeniusNorm(), 1e-300);
    for (int sweep = 0; sweep < 120; ++sweep) {
        double off = 0.0;
        for (int p = 0; p < n - 1; ++p) {
            for (int q = p + 1; q < n; ++q) {
                // 2x2 Gram matrix of columns p, q.
                Complex cpq(0.0, 0.0);
                double app = 0.0, aqq = 0.0;
                for (int i = 0; i < n; ++i) {
                    app += std::norm(u(i, p));
                    aqq += std::norm(u(i, q));
                    cpq += std::conj(u(i, p)) * u(i, q);
                }
                const double mag = std::abs(cpq);
                off = std::max(off, mag);
                if (mag < 1e-18 * scale * scale)
                    continue;
                const Complex phase = cpq / mag;
                const double zeta = (app - aqq) / (2.0 * mag);
                const double t = (zeta >= 0.0)
                    ? 1.0 / (zeta + std::sqrt(1.0 + zeta * zeta))
                    : 1.0 / (zeta - std::sqrt(1.0 + zeta * zeta));
                const double c = 1.0 / std::sqrt(1.0 + t * t);
                const double s = t * c;
                const Complex sp = s * phase;
                for (int i = 0; i < n; ++i) {
                    const Complex uip = u(i, p);
                    const Complex uiq = u(i, q);
                    u(i, p) = c * uip + std::conj(sp) * uiq;
                    u(i, q) = -sp * uip + c * uiq;
                }
                for (int i = 0; i < n; ++i) {
                    const Complex vip = v(i, p);
                    const Complex viq = v(i, q);
                    v(i, p) = c * vip + std::conj(sp) * viq;
                    v(i, q) = -sp * vip + c * viq;
                }
            }
        }
        if (off < 1e-15 * scale * scale)
            break;
    }

    // Column norms of U*Sigma are the singular values. Fixed scratch
    // for the small sizes synthesis uses (the Matrix temporaries are
    // already inline via the small-buffer optimization; the result's
    // std::vector s is the one remaining allocation).
    std::array<double, Matrix::kInlineDim> nrmSmall;
    std::array<int, Matrix::kInlineDim> orderSmall;
    std::vector<double> nrmBig;
    std::vector<int> orderBig;
    double *nrm = nrmSmall.data();
    int *order = orderSmall.data();
    if (n > Matrix::kInlineDim) {
        nrmBig.resize(n);
        orderBig.resize(n);
        nrm = nrmBig.data();
        order = orderBig.data();
    }
    for (int j = 0; j < n; ++j) {
        double s2 = 0.0;
        for (int i = 0; i < n; ++i)
            s2 += std::norm(u(i, j));
        nrm[j] = std::sqrt(s2);
        order[j] = j;
    }

    // Sort singular values descending, permuting u and v columns
    // (normalizing u's as they land).
    std::sort(order, order + n,
              [&](int x, int y) { return nrm[x] > nrm[y]; });
    SvdResult out;
    out.s.resize(n);
    out.u.setZero(n, n);
    out.v.resizeForOverwrite(n, n);
    for (int j = 0; j < n; ++j) {
        const int src = order[j];
        out.s[j] = nrm[src];
        for (int i = 0; i < n; ++i)
            out.v(i, j) = v(i, src);
        if (nrm[src] > 1e-300)
            for (int i = 0; i < n; ++i)
                out.u(i, j) = u(i, src) / nrm[src];
    }

    // Complete zero columns of u into an orthonormal basis so u is
    // always exactly unitary (needed by polarUnitary for singular a).
    for (int j = 0; j < n; ++j) {
        double nrm = 0.0;
        for (int i = 0; i < n; ++i)
            nrm += std::norm(out.u(i, j));
        if (nrm > 0.5)
            continue;
        // Gram-Schmidt a unit vector against the existing columns.
        for (int cand = 0; cand < n; ++cand) {
            Matrix e(n, 1);
            e(cand, 0) = 1.0;
            for (int k = 0; k < n; ++k) {
                if (k == j)
                    continue;
                Complex proj(0.0, 0.0);
                for (int i = 0; i < n; ++i)
                    proj += std::conj(out.u(i, k)) * e(i, 0);
                for (int i = 0; i < n; ++i)
                    e(i, 0) -= proj * out.u(i, k);
            }
            double en = e.frobeniusNorm();
            if (en > 1e-6) {
                for (int i = 0; i < n; ++i)
                    out.u(i, j) = e(i, 0) / en;
                break;
            }
        }
    }
    return out;
}

Matrix
polarUnitary(const Matrix &a)
{
    SvdResult r = svd(a);
    return r.u * r.v.dagger();
}

} // namespace reqisc::qmath
