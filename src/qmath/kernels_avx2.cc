/**
 * @file
 * AVX2 kernel backend. Compiled only when REQISC_SIMD is on and the
 * target is x86_64; built with -mavx2 -ffp-contract=off.
 *
 * Bit-identity with the scalar backend (see kernels.hh) hinges on one
 * pattern: a complex multiply-accumulate is expressed per 256-bit
 * vector of two interleaved complexes as
 *
 *   p   = addsub(are * bv, aim * bswap)       // bswap = im/re swapped
 *   acc = acc + p
 *
 * which performs, per lane pair, exactly
 *
 *   re: are*br (1 rounding) - aim*bi (1 rounding) -> sub (1 rounding)
 *   im: are*bi (1 rounding) + aim*br (1 rounding) -> add (1 rounding)
 *
 * — the same operation sequence as the scalar cmulAcc helper. Only
 * mul/add/sub/addsub intrinsics appear below; never an FMA, which
 * would skip the intermediate rounding and break identity.
 */

#include <immintrin.h>

#include "qmath/kernels_detail.hh"

namespace reqisc::qmath::kernels::detail
{

namespace
{

/** [re, im, re, im] with b's re/im swapped in each 128-bit half. */
inline __m256d
swapReIm(__m256d v)
{
    return _mm256_permute_pd(v, 0x5);
}

/** Two-complex multiply s * v given pre-broadcast s components. */
inline __m256d
cmul2(__m256d sre, __m256d sim, __m256d v)
{
    return _mm256_addsub_pd(_mm256_mul_pd(sre, v),
                            _mm256_mul_pd(sim, swapReIm(v)));
}

template <int N>
void
mulNAvx2(Complex *r, const Complex *a, const Complex *b)
{
    static_assert(N % 2 == 0, "row must be whole 256-bit vectors");
    constexpr int V = N / 2; // vectors per row
    const double *ad = reinterpret_cast<const double *>(a);
    const double *bd = reinterpret_cast<const double *>(b);
    double *rd = reinterpret_cast<double *>(r);
    for (int i = 0; i < N; ++i) {
        __m256d acc[V];
        for (int v = 0; v < V; ++v)
            acc[v] = _mm256_setzero_pd();
        const double *arow = ad + 2 * i * N;
        for (int k = 0; k < N; ++k) {
            const __m256d are = _mm256_set1_pd(arow[2 * k]);
            const __m256d aim = _mm256_set1_pd(arow[2 * k + 1]);
            const double *brow = bd + 2 * k * N;
            for (int v = 0; v < V; ++v) {
                const __m256d bv = _mm256_loadu_pd(brow + 4 * v);
                acc[v] = _mm256_add_pd(acc[v], cmul2(are, aim, bv));
            }
        }
        for (int v = 0; v < V; ++v)
            _mm256_storeu_pd(rd + 2 * i * N + 4 * v, acc[v]);
    }
}

void
kronSmallAvx2(Complex *r, const Complex *a, int ar, int ac,
              const Complex *b, int br, int bc)
{
    const double *ad = reinterpret_cast<const double *>(a);
    const double *bd = reinterpret_cast<const double *>(b);
    double *rd = reinterpret_cast<double *>(r);
    const int rc = ac * bc;
    for (int i = 0; i < ar; ++i)
        for (int j = 0; j < ac; ++j) {
            const double are_s = ad[2 * (i * ac + j)];
            const double aim_s = ad[2 * (i * ac + j) + 1];
            const __m256d are = _mm256_set1_pd(are_s);
            const __m256d aim = _mm256_set1_pd(aim_s);
            for (int k = 0; k < br; ++k) {
                double *row = rd + 2 * ((i * br + k) * rc + j * bc);
                const double *brow = bd + 2 * k * bc;
                int l = 0;
                for (; l + 2 <= bc; l += 2) {
                    const __m256d bv = _mm256_loadu_pd(brow + 2 * l);
                    _mm256_storeu_pd(row + 2 * l,
                                     cmul2(are, aim, bv));
                }
                for (; l < bc; ++l) {
                    // Scalar tail (bc == 1): same formula, same
                    // rounding sequence as the vector body.
                    row[2 * l] = are_s * brow[2 * l] -
                                 aim_s * brow[2 * l + 1];
                    row[2 * l + 1] = are_s * brow[2 * l + 1] +
                                     aim_s * brow[2 * l];
                }
            }
        }
}

void
daggerAvx2(Complex *r, const Complex *a, int rows, int cols)
{
    // Conjugation flips the imaginary sign bit — exact on every
    // backend, so layout freedom is total; gather by output row.
    const __m128d conjMask = _mm_set_pd(-0.0, 0.0);
    const double *ad = reinterpret_cast<const double *>(a);
    double *rd = reinterpret_cast<double *>(r);
    for (int j = 0; j < cols; ++j)
        for (int i = 0; i < rows; ++i) {
            const __m128d v =
                _mm_loadu_pd(ad + 2 * (i * cols + j));
            _mm_storeu_pd(rd + 2 * (j * rows + i),
                          _mm_xor_pd(v, conjMask));
        }
}

void
axpyAvx2(Complex *y, const Complex &s, const Complex *x,
         std::size_t n)
{
    const double sre_s = s.real(), sim_s = s.imag();
    const __m256d sre = _mm256_set1_pd(sre_s);
    const __m256d sim = _mm256_set1_pd(sim_s);
    double *yd = reinterpret_cast<double *>(y);
    const double *xd = reinterpret_cast<const double *>(x);
    std::size_t k = 0;
    for (; k + 2 <= n; k += 2) {
        const __m256d xv = _mm256_loadu_pd(xd + 2 * k);
        const __m256d yv = _mm256_loadu_pd(yd + 2 * k);
        _mm256_storeu_pd(yd + 2 * k,
                         _mm256_add_pd(yv, cmul2(sre, sim, xv)));
    }
    for (; k < n; ++k) {
        yd[2 * k] += sre_s * xd[2 * k] - sim_s * xd[2 * k + 1];
        yd[2 * k + 1] += sre_s * xd[2 * k + 1] + sim_s * xd[2 * k];
    }
}

void
scaleAvx2(Complex *x, const Complex &s, std::size_t n)
{
    const double sre_s = s.real(), sim_s = s.imag();
    const __m256d sre = _mm256_set1_pd(sre_s);
    const __m256d sim = _mm256_set1_pd(sim_s);
    double *xd = reinterpret_cast<double *>(x);
    std::size_t k = 0;
    for (; k + 2 <= n; k += 2) {
        const __m256d xv = _mm256_loadu_pd(xd + 2 * k);
        _mm256_storeu_pd(xd + 2 * k, cmul2(sre, sim, xv));
    }
    for (; k < n; ++k) {
        const double re = xd[2 * k];
        const double im = xd[2 * k + 1];
        xd[2 * k] = re * sre_s - im * sim_s;
        xd[2 * k + 1] = re * sim_s + im * sre_s;
    }
}

constexpr SimdOps kAvx2Ops = {
    "avx2",       mulNAvx2<2>, mulNAvx2<4>, mulNAvx2<8>,
    kronSmallAvx2, daggerAvx2, axpyAvx2,   scaleAvx2,
};

} // namespace

const SimdOps &
avx2Ops()
{
    return kAvx2Ops;
}

bool
avx2Supported()
{
    return __builtin_cpu_supports("avx2");
}

} // namespace reqisc::qmath::kernels::detail
