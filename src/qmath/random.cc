#include "qmath/random.hh"

#include <cmath>

namespace reqisc::qmath
{

Matrix
randomGinibre(int n, Rng &rng)
{
    std::normal_distribution<double> g(0.0, 1.0);
    Matrix m(n, n);
    for (int i = 0; i < n; ++i)
        for (int j = 0; j < n; ++j)
            m(i, j) = Complex(g(rng), g(rng));
    return m;
}

Matrix
randomUnitary(int n, Rng &rng)
{
    Matrix a = randomGinibre(n, rng);
    // Modified Gram-Schmidt QR; repeated once for orthogonality at
    // machine precision.
    Matrix q(n, n);
    for (int pass = 0; pass < 1; ++pass) {
        for (int j = 0; j < n; ++j) {
            // Copy column j.
            for (int i = 0; i < n; ++i)
                q(i, j) = a(i, j);
            for (int rep = 0; rep < 2; ++rep) {
                for (int k = 0; k < j; ++k) {
                    Complex proj(0.0, 0.0);
                    for (int i = 0; i < n; ++i)
                        proj += std::conj(q(i, k)) * q(i, j);
                    for (int i = 0; i < n; ++i)
                        q(i, j) -= proj * q(i, k);
                }
            }
            double nrm = 0.0;
            for (int i = 0; i < n; ++i)
                nrm += std::norm(q(i, j));
            nrm = std::sqrt(nrm);
            // Haar phase fix: divide by the phase of the R diagonal,
            // i.e. the inner product of q_j with a_j.
            Complex rjj(0.0, 0.0);
            for (int i = 0; i < n; ++i)
                rjj += std::conj(q(i, j)) * a(i, j);
            Complex phase = (std::abs(rjj) > 1e-300)
                ? rjj / std::abs(rjj) : Complex(1.0, 0.0);
            for (int i = 0; i < n; ++i)
                q(i, j) = q(i, j) / nrm * phase;
        }
    }
    return q;
}

Matrix
randomHermitian(int n, Rng &rng)
{
    Matrix g = randomGinibre(n, rng);
    return (g + g.dagger()) * Complex(0.5, 0.0);
}

Matrix
randomSU2(Rng &rng)
{
    Matrix u = randomUnitary(2, rng);
    // Normalize determinant to +1.
    Complex det = u(0, 0) * u(1, 1) - u(0, 1) * u(1, 0);
    Complex fix = std::exp(Complex(0.0, -0.5 * std::arg(det)));
    return u * fix;
}

} // namespace reqisc::qmath
