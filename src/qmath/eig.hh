/**
 * @file
 * Eigensolvers used by the KAK decomposition and the genAshN scheme.
 *
 * All solvers are Jacobi-rotation based: at the 4x4..64x64 scales ReQISC
 * needs, Jacobi is simple, numerically robust and more than fast enough.
 */

#ifndef REQISC_QMATH_EIG_HH
#define REQISC_QMATH_EIG_HH

#include <vector>

#include "qmath/matrix.hh"

namespace reqisc::qmath
{

/** Result of a Hermitian eigendecomposition A = V diag(w) V^dagger. */
struct EigResult
{
    /** Eigenvalues in ascending order. */
    std::vector<double> values;
    /** Unitary matrix whose columns are the eigenvectors. */
    Matrix vectors;
};

/**
 * Eigendecomposition of a complex Hermitian matrix via two-sided
 * Jacobi rotations.
 *
 * @param a Hermitian input (asserted in debug builds)
 * @return eigenvalues (ascending) and unitary eigenvector matrix
 */
EigResult eigh(const Matrix &a);

/**
 * Eigendecomposition of a real symmetric matrix (stored as a complex
 * Matrix with zero imaginary parts). The eigenvector matrix is real
 * orthogonal.
 */
EigResult eighReal(const Matrix &a);

/**
 * Simultaneously diagonalize two commuting real symmetric matrices.
 *
 * Used by the KAK decomposition where Re(M2) and Im(M2) of the magic-
 * basis Gram matrix commute. Returns a real orthogonal matrix Q with
 * determinant +1 such that Q^T a Q and Q^T b Q are both diagonal.
 *
 * @param a first real symmetric matrix
 * @param b second real symmetric matrix, commuting with a
 * @return real orthogonal Q in SO(n)
 */
Matrix simultaneousDiagonalize(const Matrix &a, const Matrix &b);

} // namespace reqisc::qmath

#endif // REQISC_QMATH_EIG_HH
