/**
 * @file
 * Deterministic random sources: Haar-random unitaries, random Hermitian
 * matrices, random coupling coefficients.
 *
 * Everything takes an explicit engine so experiments are reproducible;
 * the paper's artifact is likewise "deterministic; no RNG required" for
 * its tables, and the Haar sweeps in Table 3 fix seeds.
 */

#ifndef REQISC_QMATH_RANDOM_HH
#define REQISC_QMATH_RANDOM_HH

#include <random>

#include "qmath/matrix.hh"

namespace reqisc::qmath
{

using Rng = std::mt19937_64;

/** Standard-normal complex Ginibre matrix. */
Matrix randomGinibre(int n, Rng &rng);

/**
 * Haar-distributed random unitary via QR of a Ginibre matrix with the
 * R-diagonal phase fix (Mezzadri's recipe).
 */
Matrix randomUnitary(int n, Rng &rng);

/** Random Hermitian matrix with i.i.d. Gaussian entries (GUE-like). */
Matrix randomHermitian(int n, Rng &rng);

/** Random 1-qubit special unitary. */
Matrix randomSU2(Rng &rng);

} // namespace reqisc::qmath

#endif // REQISC_QMATH_RANDOM_HH
