/**
 * @file
 * Fixed-size fast kernels for the small dense complex matrices that
 * dominate the synthesis hot path (2x2 one-qubit gates, 4x4 two-qubit
 * gates, 8x8 three-qubit synthesis blocks).
 *
 * Two implementations sit behind one dispatch point: a portable
 * scalar path and, when compiled in (REQISC_SIMD, x86_64), an AVX2
 * path. Both obey the bit-identity rule:
 *
 *   Vectorize across INDEPENDENT OUTPUT ELEMENTS only. A single
 *   accumulation chain (one output element's sum over k, a trace, a
 *   norm) is never split, reordered or contracted into FMA, so every
 *   backend produces bit-identical doubles. Reductions therefore stay
 *   scalar on every backend; the SIMD win comes from the embarrassing
 *   per-element parallelism of mul/kron/axpy/dagger.
 *
 * The kernel translation units are built with -ffp-contract=off so
 * the compiler cannot re-fuse what the rule keeps separate. Compiled
 * artifacts are bit-identical with REQISC_SIMD on and off; CI diffs
 * them on every example circuit.
 *
 * Dispatch is compile-time (is the AVX2 TU linked in?) plus a startup
 * check of the CPU and the REQISC_SIMD environment variable
 * ("off"/"0"/"false"/"scalar" forces the scalar path at runtime — the
 * escape hatch when a SIMD miscompare is suspected), plus
 * setSimdEnabled() so tests can oracle one path against the other in
 * a single binary.
 */

#ifndef REQISC_QMATH_KERNELS_HH
#define REQISC_QMATH_KERNELS_HH

#include "qmath/matrix.hh"

namespace reqisc::qmath::kernels
{

/** true iff the AVX2 kernel TU is linked into this binary. */
bool simdCompiledIn();

/**
 * true iff the SIMD path is taken right now (compiled in, CPU
 * supports AVX2, not disabled by REQISC_SIMD in the environment or
 * setSimdEnabled(false)).
 */
bool simdActive();

/**
 * Force the dispatch to the scalar (false) or SIMD (true) path.
 * Enabling is clamped to what the build/CPU supports.
 * @return the resulting simdActive() state.
 */
bool setSimdEnabled(bool on);

/** "avx2" or "scalar" — the path simdActive() resolves to. */
const char *backendName();

/**
 * dst = a * b. Specialized (and SIMD-dispatched) for square n x n
 * operands with n in {2, 4, 8}; any other conformable shape falls
 * back to the generic loop. dst must not alias a or b; its previous
 * contents and shape are discarded (storage is reused when possible,
 * so a hot loop that keeps its destinations performs no allocation).
 */
void mulInto(Matrix &dst, const Matrix &a, const Matrix &b);

/**
 * The runtime-sized reference product (what Matrix::operator* did
 * before the kernel layer): dense accumulation for operands up to
 * 8x8, the structured-zero skip loop above that. Exposed so tests
 * can oracle the specialized kernels against it and benches can
 * measure the specialization win. dst must not alias a or b.
 */
void mulGenericInto(Matrix &dst, const Matrix &a, const Matrix &b);

/**
 * dst = kron(a, b), A on the more significant subsystem (the repo
 * convention). Specialized for results up to 8x8 (e.g. 2x2 (x) 2x2,
 * 2x2 (x) 4x4, 4x4 (x) 2x2). dst must not alias a or b.
 */
void kronInto(Matrix &dst, const Matrix &a, const Matrix &b);

/** dst = a^dagger (conjugate transpose). dst must not alias a. */
void daggerInto(Matrix &dst, const Matrix &a);

/** y += s * x, elementwise; shapes must match. */
void axpyInPlace(Matrix &y, const Complex &s, const Matrix &x);

/** m *= s, elementwise. */
void scaleInPlace(Matrix &m, const Complex &s);

/**
 * Tr(a * b) without forming the product: sum_i sum_k a(i,k) b(k,i),
 * accumulated in exactly the order the full product + trace would
 * accumulate it, so the value is bit-identical at n^2 instead of n^3
 * work. a and b must be square with matching dims.
 */
Complex mulTrace(const Matrix &a, const Matrix &b);

/** Tr(a); a must be square. Scalar on all backends (one chain). */
Complex trace(const Matrix &a);

/** sqrt(sum |a_ij|^2). Scalar on all backends (one chain). */
double frobeniusNorm(const Matrix &a);

/** max |a_ij|. Scalar on all backends (one chain). */
double maxAbs(const Matrix &a);

} // namespace reqisc::qmath::kernels

#endif // REQISC_QMATH_KERNELS_HH
