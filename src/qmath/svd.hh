/**
 * @file
 * Complex singular value decomposition via one-sided Jacobi.
 *
 * Used by the QFactor-style approximate synthesis engine (optimal
 * unitary block update) and by tensor-factor extraction.
 */

#ifndef REQISC_QMATH_SVD_HH
#define REQISC_QMATH_SVD_HH

#include <vector>

#include "qmath/matrix.hh"

namespace reqisc::qmath
{

/** A = u * diag(s) * v^dagger with u, v unitary and s >= 0 descending. */
struct SvdResult
{
    Matrix u;
    std::vector<double> s;
    Matrix v;
};

/**
 * One-sided Jacobi SVD of a square complex matrix.
 *
 * @param a square input matrix
 * @return SVD with singular values sorted descending
 */
SvdResult svd(const Matrix &a);

/**
 * Closest unitary to a in Frobenius norm (the unitary polar factor
 * u * v^dagger). For (near-)singular a the completion is arbitrary but
 * still exactly unitary.
 */
Matrix polarUnitary(const Matrix &a);

} // namespace reqisc::qmath

#endif // REQISC_QMATH_SVD_HH
