#include "qmath/eig.hh"

#include <algorithm>
#include <array>
#include <cmath>

namespace reqisc::qmath
{

namespace
{

/** Sum of squared magnitudes of off-diagonal entries. */
double
offDiagonalNorm2(const Matrix &a)
{
    double s = 0.0;
    for (int i = 0; i < a.rows(); ++i)
        for (int j = 0; j < a.cols(); ++j)
            if (i != j)
                s += std::norm(a(i, j));
    return s;
}

/**
 * One Jacobi sweep step: build the 2x2 unitary that annihilates
 * a(p,q) of a Hermitian matrix and apply it from both sides,
 * accumulating into v.
 */
void
jacobiRotate(Matrix &a, Matrix &v, int p, int q)
{
    const Complex apq = a(p, q);
    const double mag = std::abs(apq);
    if (mag == 0.0)
        return;
    const double app = a(p, p).real();
    const double aqq = a(q, q).real();
    // Phase that makes the off-diagonal entry real positive.
    const Complex phase = apq / mag;
    // Classic symmetric Jacobi angle on the phase-rotated problem;
    // the zeroing condition for this rotation convention is
    // tan(2*theta) = 2*mag / (app - aqq).
    const double zeta = (app - aqq) / (2.0 * mag);
    const double t = (zeta >= 0.0)
        ? 1.0 / (zeta + std::sqrt(1.0 + zeta * zeta))
        : 1.0 / (zeta - std::sqrt(1.0 + zeta * zeta));
    const double c = 1.0 / std::sqrt(1.0 + t * t);
    const double s = t * c;
    const Complex sp = s * phase;

    const int n = a.rows();
    // A <- J^dagger A J with J = [[c, -conj(sp)], [sp? ...]] realised
    // column-wise: col_p' = c*col_p + conj(sp)*col_q,
    //              col_q' = -sp*col_p + c*col_q.
    for (int i = 0; i < n; ++i) {
        const Complex aip = a(i, p);
        const Complex aiq = a(i, q);
        a(i, p) = c * aip + std::conj(sp) * aiq;
        a(i, q) = -sp * aip + c * aiq;
    }
    for (int j = 0; j < n; ++j) {
        const Complex apj = a(p, j);
        const Complex aqj = a(q, j);
        a(p, j) = c * apj + sp * aqj;
        a(q, j) = -std::conj(sp) * apj + c * aqj;
    }
    for (int i = 0; i < n; ++i) {
        const Complex vip = v(i, p);
        const Complex viq = v(i, q);
        v(i, p) = c * vip + std::conj(sp) * viq;
        v(i, q) = -sp * vip + c * viq;
    }
}

/** Sort eigenpairs ascending by eigenvalue. */
void
sortEigenpairs(EigResult &r)
{
    const int n = static_cast<int>(r.values.size());
    // Fixed scratch for the small sizes everything here uses; the
    // permuted copies stay inline thanks to the Matrix SBO.
    std::array<int, Matrix::kInlineDim> orderSmall;
    std::array<double, Matrix::kInlineDim> wSmall;
    std::vector<int> orderBig;
    std::vector<double> wBig;
    int *order = orderSmall.data();
    double *w = wSmall.data();
    if (n > Matrix::kInlineDim) {
        orderBig.resize(n);
        wBig.resize(n);
        order = orderBig.data();
        w = wBig.data();
    }
    for (int j = 0; j < n; ++j)
        order[j] = j;
    std::sort(order, order + n, [&](int a, int b) {
        return r.values[a] < r.values[b];
    });
    Matrix v;
    v.resizeForOverwrite(n, n);
    for (int j = 0; j < n; ++j) {
        w[j] = r.values[order[j]];
        for (int i = 0; i < n; ++i)
            v(i, j) = r.vectors(i, order[j]);
    }
    std::copy_n(w, n, r.values.begin());
    r.vectors = std::move(v);
}

EigResult
jacobiEig(Matrix a)
{
    const int n = a.rows();
    Matrix v = Matrix::identity(n);
    const double scale = std::max(a.frobeniusNorm(), 1e-300);
    for (int sweep = 0; sweep < 100; ++sweep) {
        if (std::sqrt(offDiagonalNorm2(a)) < 1e-15 * scale)
            break;
        for (int p = 0; p < n - 1; ++p)
            for (int q = p + 1; q < n; ++q)
                jacobiRotate(a, v, p, q);
    }
    EigResult r;
    r.values.resize(n);
    for (int i = 0; i < n; ++i)
        r.values[i] = a(i, i).real();
    r.vectors = std::move(v);
    sortEigenpairs(r);
    return r;
}

} // namespace

EigResult
eigh(const Matrix &a)
{
    assert(a.rows() == a.cols());
    assert(a.isHermitian(1e-8 * std::max(1.0, a.maxAbs())));
    return jacobiEig(a);
}

EigResult
eighReal(const Matrix &a)
{
    EigResult r = jacobiEig(a);
    // Rotations of a real matrix stay real; scrub numerical dust so the
    // caller can rely on exact realness.
    for (int i = 0; i < r.vectors.rows(); ++i)
        for (int j = 0; j < r.vectors.cols(); ++j)
            r.vectors(i, j) = Complex(r.vectors(i, j).real(), 0.0);
    return r;
}

Matrix
simultaneousDiagonalize(const Matrix &a, const Matrix &b)
{
    assert(a.rows() == a.cols() && b.rows() == b.cols());
    assert(a.rows() == b.rows());
    const int n = a.rows();

    // Diagonalize a first; then within each (near-)degenerate
    // eigenvalue cluster of a, diagonalize the restriction of b.
    EigResult ea = eighReal(a);
    Matrix q = ea.vectors;

    const double scale =
        std::max({a.maxAbs(), b.maxAbs(), 1.0});
    const double cluster_tol = 1e-7 * scale;

    int start = 0;
    while (start < n) {
        int end = start + 1;
        while (end < n &&
               std::abs(ea.values[end] - ea.values[start]) < cluster_tol)
            ++end;
        const int m = end - start;
        if (m > 1) {
            // Restrict b to the cluster subspace and diagonalize.
            Matrix sub(m, m);
            // sub = Qc^T b Qc where Qc are the cluster columns.
            for (int i = 0; i < m; ++i)
                for (int j = 0; j < m; ++j) {
                    Complex s(0.0, 0.0);
                    for (int r = 0; r < n; ++r)
                        for (int c = 0; c < n; ++c)
                            s += q(r, start + i) * b(r, c) *
                                 q(c, start + j);
                    sub(i, j) = Complex(s.real(), 0.0);
                }
            // Symmetrize against roundoff.
            Matrix subs = (sub + sub.transpose()) * Complex(0.5, 0.0);
            EigResult eb = eighReal(subs);
            // Rotate the cluster columns of q by eb.vectors.
            Matrix newcols(n, m);
            for (int r = 0; r < n; ++r)
                for (int j = 0; j < m; ++j) {
                    Complex s(0.0, 0.0);
                    for (int i = 0; i < m; ++i)
                        s += q(r, start + i) * eb.vectors(i, j);
                    newcols(r, j) = s;
                }
            for (int r = 0; r < n; ++r)
                for (int j = 0; j < m; ++j)
                    q(r, start + j) =
                        Complex(newcols(r, j).real(), 0.0);
        }
        start = end;
    }

    // Force det(q) = +1 by flipping the last column if necessary.
    // det of a real orthogonal matrix is +-1; compute via LU-free
    // cofactor-safe method: use the product of Householder-free
    // permanent... for small n, expansion by minors is fine.
    // Here we use the generic complex determinant helper below.
    auto det = [&]() {
        // Gaussian elimination determinant (n <= 8 in practice).
        Matrix t = q;
        Complex d(1.0, 0.0);
        for (int col = 0; col < n; ++col) {
            int piv = col;
            for (int r = col + 1; r < n; ++r)
                if (std::abs(t(r, col)) > std::abs(t(piv, col)))
                    piv = r;
            if (std::abs(t(piv, col)) < 1e-300)
                return Complex(0.0, 0.0);
            if (piv != col) {
                for (int c = 0; c < n; ++c)
                    std::swap(t(piv, c), t(col, c));
                d = -d;
            }
            d *= t(col, col);
            for (int r = col + 1; r < n; ++r) {
                const Complex f = t(r, col) / t(col, col);
                for (int c = col; c < n; ++c)
                    t(r, c) -= f * t(col, c);
            }
        }
        return d;
    };
    if (det().real() < 0.0)
        for (int r = 0; r < n; ++r)
            q(r, n - 1) = -q(r, n - 1);
    return q;
}

} // namespace reqisc::qmath
