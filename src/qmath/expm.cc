#include "qmath/expm.hh"

#include <cmath>

#include "qmath/eig.hh"
#include "qmath/kernels.hh"

namespace reqisc::qmath
{

namespace
{

Matrix
expPhase(const Matrix &h, double t)
{
    EigResult e = eigh(h);
    const int n = h.rows();
    // V * diag(exp(i t lambda)) is a column scaling — each output
    // element is the single product the full (diagonal-skipping)
    // matmul would produce, without the n^3 work or the temporary.
    Matrix vd;
    vd.resizeForOverwrite(n, n);
    for (int j = 0; j < n; ++j) {
        const Complex p = std::exp(Complex(0.0, t * e.values[j]));
        for (int i = 0; i < n; ++i)
            vd(i, j) = e.vectors(i, j) * p;
    }
    Matrix vdag;
    kernels::daggerInto(vdag, e.vectors);
    Matrix r;
    kernels::mulInto(r, vd, vdag);
    return r;
}

} // namespace

Matrix
expim(const Matrix &h, double t)
{
    return expPhase(h, -t);
}

Matrix
expimPlus(const Matrix &h, double t)
{
    return expPhase(h, t);
}

} // namespace reqisc::qmath
