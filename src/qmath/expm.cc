#include "qmath/expm.hh"

#include <cmath>

#include "qmath/eig.hh"

namespace reqisc::qmath
{

namespace
{

Matrix
expPhase(const Matrix &h, double t)
{
    EigResult e = eigh(h);
    const int n = h.rows();
    Matrix d(n, n);
    for (int i = 0; i < n; ++i)
        d(i, i) = std::exp(Complex(0.0, t * e.values[i]));
    return e.vectors * d * e.vectors.dagger();
}

} // namespace

Matrix
expim(const Matrix &h, double t)
{
    return expPhase(h, -t);
}

Matrix
expimPlus(const Matrix &h, double t)
{
    return expPhase(h, t);
}

} // namespace reqisc::qmath
