/**
 * @file
 * Internal dispatch table between the scalar and SIMD kernel
 * translation units. Not part of the qmath API — include
 * qmath/kernels.hh instead.
 *
 * Every entry operates on raw row-major Complex storage and obeys the
 * bit-identity rule documented in kernels.hh: identical per-output
 * accumulation order on every backend, no FMA contraction (both TUs
 * build with -ffp-contract=off).
 */

#ifndef REQISC_QMATH_KERNELS_DETAIL_HH
#define REQISC_QMATH_KERNELS_DETAIL_HH

#include <cstddef>

#include "qmath/matrix.hh"

namespace reqisc::qmath::kernels::detail
{

/** Function-pointer table one backend exports. */
struct SimdOps
{
    const char *name;
    /** r = a * b for square n x n, n in {2, 4, 8}; r never aliases. */
    void (*mul2)(Complex *r, const Complex *a, const Complex *b);
    void (*mul4)(Complex *r, const Complex *a, const Complex *b);
    void (*mul8)(Complex *r, const Complex *a, const Complex *b);
    /** r = kron(a, b) with every element written (no zero skip). */
    void (*kronSmall)(Complex *r, const Complex *a, int ar, int ac,
                      const Complex *b, int br, int bc);
    /** r (cols x rows) = conj-transpose of a (rows x cols). */
    void (*dagger)(Complex *r, const Complex *a, int rows, int cols);
    /** y[k] += s * x[k] for k < n. */
    void (*axpy)(Complex *y, const Complex &s, const Complex *x,
                 std::size_t n);
    /** x[k] *= s for k < n. */
    void (*scale)(Complex *x, const Complex &s, std::size_t n);
};

#ifdef REQISC_SIMD_AVX2
/** The AVX2 table (kernels_avx2.cc); linked only when compiled in. */
const SimdOps &avx2Ops();
/** Startup CPU check — false on x86_64 hardware without AVX2. */
bool avx2Supported();
#endif

} // namespace reqisc::qmath::kernels::detail

#endif // REQISC_QMATH_KERNELS_DETAIL_HH
