/**
 * @file
 * Small derivative-free optimizers and root finders.
 *
 * The paper's reference implementation solves the genAshN EA+/EA-
 * transcendental equations with scipy (grid search + SLSQP + fsolve);
 * these are the C++ equivalents: a Nelder-Mead simplex minimizer for
 * the coarse refinement and a damped-Newton root finder (numerical
 * Jacobian) to pinpoint roots, plus a bisection helper for the
 * sinc-inverse solves of the ND subscheme.
 */

#ifndef REQISC_QMATH_OPTIMIZE_HH
#define REQISC_QMATH_OPTIMIZE_HH

#include <functional>
#include <vector>

namespace reqisc::qmath
{

/** Result of a minimization run. */
struct MinimizeResult
{
    std::vector<double> x;
    double value = 0.0;
    int iterations = 0;
    bool converged = false;
};

/**
 * Nelder-Mead simplex minimization.
 *
 * @param f objective
 * @param x0 starting point
 * @param step initial simplex edge length
 * @param tol stop when the simplex value spread falls below tol
 * @param max_iter iteration budget
 */
MinimizeResult nelderMead(
    const std::function<double(const std::vector<double> &)> &f,
    const std::vector<double> &x0, double step = 0.1,
    double tol = 1e-14, int max_iter = 2000);

/** Result of a multivariate root solve. */
struct RootResult
{
    std::vector<double> x;
    double residual = 0.0;
    bool converged = false;
};

/**
 * Damped Newton iteration for f: R^n -> R^n with a forward-difference
 * Jacobian; used to polish roots located by grid + Nelder-Mead.
 *
 * @param f residual function
 * @param x0 starting point
 * @param tol convergence threshold on the residual norm
 * @param max_iter iteration budget
 */
RootResult newtonSolve(
    const std::function<std::vector<double>(
        const std::vector<double> &)> &f,
    const std::vector<double> &x0, double tol = 1e-13,
    int max_iter = 80);

/**
 * Bisection root finder for a scalar function on [lo, hi]; requires a
 * sign change. @return the root location.
 */
double bisect(const std::function<double(double)> &f, double lo,
              double hi, double tol = 1e-15, int max_iter = 200);

} // namespace reqisc::qmath

#endif // REQISC_QMATH_OPTIMIZE_HH
