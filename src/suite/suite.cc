#include "suite/suite.hh"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "qmath/random.hh"

namespace reqisc::suite
{

using circuit::Circuit;
using circuit::Gate;
using qmath::Rng;

namespace
{

constexpr double kPi = std::numbers::pi;

std::string
nameOf(const std::string &cat, int a, int b = -1)
{
    std::string n = cat + "_" + std::to_string(a);
    if (b >= 0)
        n += "_" + std::to_string(b);
    return n;
}

} // namespace

Benchmark
makeAlu(int qubits, int units, unsigned seed)
{
    assert(qubits >= 4);
    Rng rng(seed);
    std::uniform_int_distribution<int> dq(0, qubits - 1);
    std::uniform_int_distribution<int> kind(0, 5);
    Circuit c(qubits);
    for (int u = 0; u < units; ++u) {
        int a = dq(rng), b = dq(rng), t = dq(rng);
        while (b == a)
            b = dq(rng);
        while (t == a || t == b)
            t = dq(rng);
        switch (kind(rng)) {
          case 0:
          case 1:
            c.add(Gate::ccx(a, b, t));
            break;
          case 2:
            c.add(Gate::cx(a, t));
            break;
          case 3:
            c.add(Gate::cx(b, t));
            c.add(Gate::x(a));
            break;
          case 4:
            c.add(Gate::peres(a, b, t));
            break;
          default:
            c.add(Gate::x(t));
            c.add(Gate::ccx(a, b, t));
            break;
        }
    }
    Benchmark bm;
    bm.name = nameOf("alu", qubits, static_cast<int>(seed % 97));
    bm.category = "alu";
    bm.circuit = std::move(c);
    return bm;
}

Benchmark
makeBitAdder(int bits)
{
    // a[i], b[i], carry chain c[i]; result in b, carries computed and
    // uncomputed like a textbook carry-save adder.
    const int n = 3 * bits + 1;
    Circuit c(n);
    auto qa = [&](int i) { return i; };
    auto qb = [&](int i) { return bits + i; };
    auto qc = [&](int i) { return 2 * bits + i; };
    for (int i = 0; i < bits; ++i) {
        c.add(Gate::ccx(qa(i), qb(i), qc(i + 1)));
        c.add(Gate::cx(qa(i), qb(i)));
        c.add(Gate::ccx(qc(i), qb(i), qc(i + 1)));
        c.add(Gate::cx(qc(i), qb(i)));
    }
    // Uncompute intermediate carries (keep the final one).
    for (int i = bits - 2; i >= 0; --i)
        c.add(Gate::ccx(qa(i), qb(i), qc(i + 1)));
    Benchmark bm;
    bm.name = nameOf("bit_adder", bits);
    bm.category = "bit_adder";
    bm.circuit = std::move(c);
    return bm;
}

Benchmark
makeComparator(int bits, unsigned seed)
{
    // a > b via borrow propagation: x-conjugated CCX cascade.
    Rng rng(seed);
    const int n = 2 * bits + 2;
    Circuit c(n);
    auto qa = [&](int i) { return i; };
    auto qb = [&](int i) { return bits + i; };
    const int borrow = 2 * bits;
    const int out = 2 * bits + 1;
    for (int i = 0; i < bits; ++i) {
        c.add(Gate::x(qa(i)));
        c.add(Gate::ccx(qa(i), qb(i), borrow));
        c.add(Gate::x(qa(i)));
        c.add(Gate::cx(qb(i), qa(i)));
    }
    c.add(Gate::cx(borrow, out));
    // Uncompute in reverse.
    for (int i = bits - 1; i >= 0; --i) {
        c.add(Gate::cx(qb(i), qa(i)));
        c.add(Gate::x(qa(i)));
        c.add(Gate::ccx(qa(i), qb(i), borrow));
        c.add(Gate::x(qa(i)));
    }
    Benchmark bm;
    bm.name = nameOf("comparator", bits, static_cast<int>(seed % 97));
    bm.category = "comparator";
    bm.circuit = std::move(c);
    return bm;
}

Benchmark
makeEncoding(int inputs, unsigned seed)
{
    // One-hot -> binary encoder: CX fan-in plus CCX parity fixes.
    Rng rng(seed);
    const int outs = std::max(
        2, static_cast<int>(std::ceil(std::log2(inputs + 1))));
    const int n = inputs + outs;
    Circuit c(n);
    for (int i = 0; i < inputs; ++i)
        for (int b = 0; b < outs; ++b)
            if ((i + 1) & (1 << b))
                c.add(Gate::cx(i, inputs + b));
    std::uniform_int_distribution<int> di(0, inputs - 1);
    for (int k = 0; k + 1 < inputs; ++k) {
        int a = di(rng), b = di(rng);
        while (b == a)
            b = di(rng);
        c.add(Gate::ccx(a, b, inputs + (k % outs)));
    }
    Benchmark bm;
    bm.name = nameOf("encoding", n, static_cast<int>(seed % 97));
    bm.category = "encoding";
    bm.circuit = std::move(c);
    return bm;
}

Benchmark
makeGrover(int search_qubits, int iterations)
{
    // k search qubits + (k-2) clean ancillas for the MCX ladder.
    const int k = search_qubits;
    const int n = k + std::max(0, k - 2);
    Circuit c(n);
    std::vector<int> controls(k);
    for (int i = 0; i < k; ++i) {
        controls[i] = i;
        c.add(Gate::h(i));
    }
    for (int it = 0; it < iterations; ++it) {
        // Oracle: phase flip on |11..1> via H-MCX-H on the last wire.
        c.add(Gate::h(k - 1));
        c.add(Gate::mcx(std::vector<int>(controls.begin(),
                                         controls.end() - 1),
                        k - 1));
        c.add(Gate::h(k - 1));
        // Diffusion.
        for (int i = 0; i < k; ++i) {
            c.add(Gate::h(i));
            c.add(Gate::x(i));
        }
        c.add(Gate::h(k - 1));
        c.add(Gate::mcx(std::vector<int>(controls.begin(),
                                         controls.end() - 1),
                        k - 1));
        c.add(Gate::h(k - 1));
        for (int i = 0; i < k; ++i) {
            c.add(Gate::x(i));
            c.add(Gate::h(i));
        }
    }
    Benchmark bm;
    bm.name = nameOf("grover", k);
    bm.category = "grover";
    bm.circuit = std::move(c);
    return bm;
}

Benchmark
makeHwb(int wires, unsigned seed)
{
    // Controlled cyclic-shift network: layers of CSWAPs whose control
    // walks across the register (hidden-weighted-bit flavour).
    Rng rng(seed);
    std::uniform_int_distribution<int> dq(0, wires - 1);
    Circuit c(wires);
    const int layers = wires;
    for (int l = 0; l < layers; ++l) {
        const int ctl = l % wires;
        for (int i = 0; i < wires - 2; i += 2) {
            int a = (ctl + 1 + i) % wires;
            int b = (ctl + 2 + i) % wires;
            if (a == ctl || b == ctl || a == b)
                continue;
            c.add(Gate::cswap(ctl, a, b));
        }
        c.add(Gate::cx(dq(rng), (dq(rng) + 1) % wires == 0
                                    ? (wires - 1)
                                    : dq(rng)));
    }
    Benchmark bm;
    bm.name = nameOf("hwb", wires, static_cast<int>(seed % 97));
    bm.category = "hwb";
    bm.circuit = std::move(c);
    return bm;
}

Benchmark
makeModulo(int bits)
{
    // Incrementer mod 2^bits: MCX cascade; extra ancillas for MCX.
    const int anc = std::max(0, bits - 3);
    const int n = bits + anc;
    Circuit c(n);
    for (int k = bits - 1; k >= 1; --k) {
        std::vector<int> controls;
        for (int i = 0; i < k; ++i)
            controls.push_back(i);
        c.add(Gate::mcx(controls, k));
    }
    c.add(Gate::x(0));
    Benchmark bm;
    bm.name = nameOf("modulo", n);
    bm.category = "modulo";
    bm.circuit = std::move(c);
    return bm;
}

Benchmark
makeMult(int bits)
{
    // Shift-and-add: product accumulator, controlled ripple adds.
    // Qubits: a[bits], b[bits], p[2*bits] (accumulator).
    const int n = 4 * bits;
    Circuit c(n);
    auto qa = [&](int i) { return i; };
    auto qb = [&](int i) { return bits + i; };
    auto qp = [&](int i) { return 2 * bits + i; };
    for (int i = 0; i < bits; ++i)
        for (int j = 0; j < bits; ++j) {
            // p[i+j] ^= a[i] & b[j] plus carry into p[i+j+1].
            c.add(Gate::ccx(qa(i), qb(j), qp(i + j)));
            if (i + j + 1 < 2 * bits)
                c.add(Gate::ccx(qp(i + j), qa(i), qp(i + j + 1)));
        }
    Benchmark bm;
    bm.name = nameOf("mult", n);
    bm.category = "mult";
    bm.circuit = std::move(c);
    return bm;
}

Benchmark
makeQft(int n)
{
    Circuit c(n);
    for (int i = 0; i < n; ++i) {
        c.add(Gate::h(i));
        for (int j = i + 1; j < n; ++j)
            c.add(Gate::cp(j, i, kPi / (1 << (j - i))));
    }
    Benchmark bm;
    bm.name = nameOf("qft", n);
    bm.category = "qft";
    bm.circuit = std::move(c);
    return bm;
}

Benchmark
makeRippleAdd(int bits)
{
    // Cuccaro ripple-carry adder: qubits c0, a[i]/b[i] interleaved,
    // final carry z. MAJ / UMA ladder.
    const int n = 2 * bits + 2;
    Circuit c(n);
    const int c0 = 0;
    auto qb = [&](int i) { return 1 + 2 * i; };
    auto qa = [&](int i) { return 2 + 2 * i; };
    const int z = 2 * bits + 1;
    auto maj = [&](int x, int y, int t) {
        c.add(Gate::cx(t, y));
        c.add(Gate::cx(t, x));
        c.add(Gate::ccx(x, y, t));
    };
    auto uma = [&](int x, int y, int t) {
        c.add(Gate::ccx(x, y, t));
        c.add(Gate::cx(t, x));
        c.add(Gate::cx(x, y));
    };
    maj(c0, qb(0), qa(0));
    for (int i = 1; i < bits; ++i)
        maj(qa(i - 1), qb(i), qa(i));
    c.add(Gate::cx(qa(bits - 1), z));
    for (int i = bits - 1; i >= 1; --i)
        uma(qa(i - 1), qb(i), qa(i));
    uma(c0, qb(0), qa(0));
    Benchmark bm;
    bm.name = nameOf("rip_add", n);
    bm.category = "ripple_add";
    bm.circuit = std::move(c);
    return bm;
}

Benchmark
makeSquare(int bits)
{
    // Squaring = multiplier with a shared operand (extra CCX traffic).
    const int n = 3 * bits + std::max(1, bits - 1);
    Circuit c(n);
    auto qa = [&](int i) { return i; };
    auto qp = [&](int i) { return bits + i; };
    for (int i = 0; i < bits; ++i)
        for (int j = i; j < bits; ++j) {
            const int tgt = qp(std::min(i + j, 2 * bits - 1));
            if (i == j) {
                c.add(Gate::cx(qa(i), tgt));
            } else {
                c.add(Gate::ccx(qa(i), qa(j), tgt));
                if (i + j + 1 < 2 * bits)
                    c.add(Gate::ccx(tgt, qa(i), qp(i + j + 1)));
            }
        }
    Benchmark bm;
    bm.name = nameOf("square", n);
    bm.category = "square";
    bm.circuit = std::move(c);
    return bm;
}

Benchmark
makeSym(int inputs, unsigned seed)
{
    // Symmetric (counting) function: popcount accumulation into a
    // small counter register, then a threshold MCX.
    Rng rng(seed);
    const int cnt = std::max(
        2, static_cast<int>(std::ceil(std::log2(inputs + 1))));
    const int n = inputs + cnt + std::max(0, cnt - 2);
    Circuit c(n);
    auto qc = [&](int i) { return inputs + i; };
    for (int i = 0; i < inputs; ++i) {
        // Increment counter controlled on input i (ripple).
        for (int k = cnt - 1; k >= 1; --k) {
            std::vector<int> controls = {i};
            for (int b2 = 0; b2 < k; ++b2)
                controls.push_back(qc(b2));
            c.add(Gate::mcx(controls, qc(k)));
        }
        c.add(Gate::cx(i, qc(0)));
    }
    Benchmark bm;
    bm.name = nameOf("sym", inputs, static_cast<int>(seed % 97));
    bm.category = "sym";
    bm.circuit = std::move(c);
    return bm;
}

Benchmark
makeTof(int controls)
{
    const int n = controls + 1 + std::max(0, controls - 2);
    Circuit c(n);
    std::vector<int> ctl(controls);
    for (int i = 0; i < controls; ++i)
        ctl[i] = i;
    c.add(Gate::mcx(ctl, controls));
    Benchmark bm;
    bm.name = nameOf("tof", n);
    bm.category = "tof";
    bm.circuit = std::move(c);
    return bm;
}

Benchmark
makeUrf(int wires, int units, unsigned seed)
{
    Rng rng(seed);
    std::uniform_int_distribution<int> dq(0, wires - 1);
    std::uniform_int_distribution<int> kind(0, 3);
    Circuit c(wires);
    for (int u = 0; u < units; ++u) {
        int a = dq(rng), b = dq(rng), t = dq(rng);
        while (b == a)
            b = dq(rng);
        while (t == a || t == b)
            t = dq(rng);
        switch (kind(rng)) {
          case 0:
            c.add(Gate::ccx(a, b, t));
            break;
          case 1:
            c.add(Gate::cswap(a, b, t));
            break;
          case 2:
            c.add(Gate::cx(a, t));
            break;
          default:
            c.add(Gate::x(a));
            c.add(Gate::ccx(a, b, t));
            c.add(Gate::x(a));
            break;
        }
    }
    Benchmark bm;
    bm.name = nameOf("urf", wires, static_cast<int>(seed % 97));
    bm.category = "urf";
    bm.circuit = std::move(c);
    return bm;
}

Benchmark
makePf(int n, int steps, unsigned seed)
{
    // Trotterized transverse-field Ising chain: uniform couplings
    // (the physical model), small per-step angles — the near-identity
    // regime that exercises gate mirroring.
    Rng rng(seed);
    std::uniform_real_distribution<double> dj(0.05, 0.15);
    const double j = dj(rng), h = dj(rng);
    Circuit c(n);
    for (int s = 0; s < steps; ++s) {
        for (int i = 0; i + 1 < n; ++i)
            c.add(Gate::rzz(i, i + 1, j));
        for (int i = 0; i < n; ++i)
            c.add(Gate::rx(i, h));
    }
    Benchmark bm;
    bm.name = nameOf("pf", n, steps);
    bm.category = "pf";
    bm.circuit = std::move(c);
    bm.isTypeII = true;
    return bm;
}

Benchmark
makeQaoa(int n, int layers, unsigned seed)
{
    Rng rng(seed);
    // Random 3-regular-ish graph: each vertex gets ~3 edges.
    std::vector<std::pair<int, int>> edges;
    std::uniform_int_distribution<int> dq(0, n - 1);
    std::vector<int> degree(n, 0);
    int guard = 0;
    while (edges.size() < static_cast<size_t>(3 * n / 2) &&
           guard++ < 40 * n) {
        int a = dq(rng), b = dq(rng);
        if (a == b || degree[a] >= 3 || degree[b] >= 3)
            continue;
        const std::pair<int, int> e = std::minmax(a, b);
        if (std::find(edges.begin(), edges.end(), e) != edges.end())
            continue;
        edges.push_back(e);
        ++degree[a];
        ++degree[b];
    }
    std::uniform_real_distribution<double> ang(0.1, 0.9);
    Circuit c(n);
    for (int i = 0; i < n; ++i)
        c.add(Gate::h(i));
    for (int l = 0; l < layers; ++l) {
        const double gamma = ang(rng), beta = ang(rng);
        for (const auto &[a, b] : edges)
            c.add(Gate::rzz(a, b, gamma));
        for (int i = 0; i < n; ++i)
            c.add(Gate::rx(i, 2.0 * beta));
    }
    Benchmark bm;
    bm.name = nameOf("qaoa", n, layers);
    bm.category = "qaoa";
    bm.circuit = std::move(c);
    bm.isTypeII = true;
    return bm;
}

Benchmark
makeUccsd(int n, int excitations, unsigned seed)
{
    // Pauli-exponential ansatz: CX ladders around RZ(theta), the
    // standard UCCSD compilation pattern.
    Rng rng(seed);
    std::uniform_int_distribution<int> dq(0, n - 1);
    std::uniform_real_distribution<double> ang(0.02, 0.3);
    std::uniform_int_distribution<int> len(2, std::min(4, n));
    Circuit c(n);
    for (int e = 0; e < excitations; ++e) {
        // Random ordered support of 2..4 qubits.
        const int k = len(rng);
        std::vector<int> support;
        while (static_cast<int>(support.size()) < k) {
            int q = dq(rng);
            if (std::find(support.begin(), support.end(), q) ==
                support.end())
                support.push_back(q);
        }
        std::sort(support.begin(), support.end());
        // Basis changes.
        for (size_t i = 0; i < support.size(); ++i)
            if (i % 2 == 0)
                c.add(Gate::h(support[i]));
        for (size_t i = 0; i + 1 < support.size(); ++i)
            c.add(Gate::cx(support[i], support[i + 1]));
        c.add(Gate::rz(support.back(), ang(rng)));
        for (size_t i = support.size() - 1; i >= 1; --i)
            c.add(Gate::cx(support[i - 1], support[i]));
        for (size_t i = 0; i < support.size(); ++i)
            if (i % 2 == 0)
                c.add(Gate::h(support[i]));
    }
    Benchmark bm;
    bm.name = nameOf("uccsd", n, excitations);
    bm.category = "uccsd";
    bm.circuit = std::move(c);
    bm.isTypeII = true;
    return bm;
}

std::vector<Benchmark>
standardSuite(bool full)
{
    std::vector<Benchmark> out;
    const int scale = full ? 2 : 1;
    // One to three instances per category; sizes track the lower end
    // of Table 1 (full doubles the larger instances).
    out.push_back(makeAlu(5, 12, 11));
    out.push_back(makeAlu(6, 30 * scale, 13));
    out.push_back(makeBitAdder(4));
    out.push_back(makeBitAdder(6 * scale));
    out.push_back(makeComparator(3, 17));
    out.push_back(makeComparator(4, 19));
    out.push_back(makeEncoding(5, 23));
    out.push_back(makeEncoding(8, 29));
    out.push_back(makeGrover(5));
    out.push_back(makeHwb(6, 31));
    out.push_back(makeHwb(8, 37));
    out.push_back(makeModulo(5));
    out.push_back(makeMult(3 * scale));
    out.push_back(makePf(10, 3 * scale, 41));
    out.push_back(makeQaoa(8, 2, 43));
    out.push_back(makeQaoa(12, 3 * scale, 47));
    out.push_back(makeQft(8));
    out.push_back(makeQft(full ? 16 : 12));
    out.push_back(makeRippleAdd(5));
    out.push_back(makeRippleAdd(full ? 15 : 8));
    out.push_back(makeSquare(3 * scale));
    out.push_back(makeSym(6, 53));
    out.push_back(makeTof(4));
    out.push_back(makeTof(8));
    out.push_back(makeUccsd(8, 6 * scale, 59));
    out.push_back(makeUccsd(12, 10 * scale, 61));
    out.push_back(makeUrf(8, 120 * scale, 67));
    return out;
}

std::vector<Benchmark>
smallSuite()
{
    std::vector<Benchmark> out;
    out.push_back(makeAlu(5, 10, 71));
    out.push_back(makeComparator(3, 73));
    out.push_back(makeEncoding(4, 79));
    out.push_back(makeHwb(5, 83));
    out.push_back(makeModulo(4));
    out.push_back(makeQft(5));
    out.push_back(makeRippleAdd(3));
    out.push_back(makeTof(3));
    out.push_back(makePf(6, 2, 89));
    out.push_back(makeQaoa(6, 1, 97));
    out.push_back(makeUccsd(6, 3, 101));
    out.push_back(makeGrover(4, 1));
    return out;
}

std::vector<Benchmark>
mediumSuite()
{
    std::vector<Benchmark> out;
    out.push_back(makeAlu(6, 25, 103));
    out.push_back(makeBitAdder(5));
    out.push_back(makeComparator(4, 107));
    out.push_back(makeEncoding(6, 109));
    out.push_back(makeGrover(5));
    out.push_back(makeHwb(7, 113));
    out.push_back(makeModulo(5));
    out.push_back(makeMult(3));
    out.push_back(makePf(10, 2, 127));
    out.push_back(makeQaoa(8, 2, 131));
    out.push_back(makeQft(8));
    out.push_back(makeRippleAdd(5));
    out.push_back(makeSym(6, 137));
    out.push_back(makeTof(5));
    out.push_back(makeUccsd(10, 6, 139));
    out.push_back(makeUrf(8, 60, 149));
    return out;
}

} // namespace reqisc::suite
