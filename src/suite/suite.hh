/**
 * @file
 * Benchmark-suite generators covering the 17 program categories of
 * Table 1 (alu ... urf).
 *
 * The paper draws most instances from RevLib and the TKet benchmark
 * repository, which are not available offline; these generators emit
 * structurally equivalent circuits — the same high-level IR patterns
 * (CCX/MCX arithmetic, phase polynomials, trotterized Pauli
 * rotations) with #2Q / depth in the ranges Table 1 reports — which
 * is what every compiler pass keys on. All generators are
 * deterministic in their (parameters, seed).
 */

#ifndef REQISC_SUITE_SUITE_HH
#define REQISC_SUITE_SUITE_HH

#include <string>
#include <vector>

#include "circuit/circuit.hh"

namespace reqisc::suite
{

/** One benchmark program instance. */
struct Benchmark
{
    std::string name;      //!< e.g. "alu_5_1"
    std::string category;  //!< e.g. "alu"
    circuit::Circuit circuit;  //!< high-level IR
    /** Type-II = variational / Hamiltonian-simulation programs. */
    bool isTypeII = false;
};

// ---- Type-I (digital-logic) generators -------------------------------

/** ALU-style random reversible logic (CCX/CX/X mix). */
Benchmark makeAlu(int qubits, int units, unsigned seed);

/** Carry-save bit adder built from CCX/CX chains. */
Benchmark makeBitAdder(int bits);

/** Magnitude comparator a > b. */
Benchmark makeComparator(int bits, unsigned seed);

/** One-hot to binary encoder network. */
Benchmark makeEncoding(int inputs, unsigned seed);

/** Grover search with an MCX oracle (ancillas included). */
Benchmark makeGrover(int search_qubits, int iterations = 2);

/** Hidden-weighted-bit style controlled permutation network. */
Benchmark makeHwb(int wires, unsigned seed);

/** Modular incrementer (MCX cascade). */
Benchmark makeModulo(int bits);

/** Shift-and-add multiplier. */
Benchmark makeMult(int bits);

/** QFT with controlled-phase ladder. */
Benchmark makeQft(int n);

/** Cuccaro ripple-carry adder (MAJ / UMA blocks). */
Benchmark makeRippleAdd(int bits);

/** Squaring circuit (multiplier with shared operand). */
Benchmark makeSquare(int bits);

/** Symmetric-function (bit-counting) benchmark. */
Benchmark makeSym(int inputs, unsigned seed);

/** n-controlled Toffoli decomposition benchmark. */
Benchmark makeTof(int controls);

/** Large random reversible function (urf style). */
Benchmark makeUrf(int wires, int units, unsigned seed);

// ---- Type-II (Hamiltonian-simulation) generators ----------------------

/** Product-formula (trotterized transverse-field Ising) circuit. */
Benchmark makePf(int n, int steps, unsigned seed);

/** QAOA MaxCut on a random 3-regular graph. */
Benchmark makeQaoa(int n, int layers, unsigned seed);

/** UCCSD-style Pauli-exponential ansatz. */
Benchmark makeUccsd(int n, int excitations, unsigned seed);

// ---- Suites ------------------------------------------------------------

/**
 * The benchmark suite: at least one instance per category; `full`
 * scales counts/sizes toward the paper's Table 1 ranges.
 */
std::vector<Benchmark> standardSuite(bool full = false);

/**
 * Small (<= ~9 qubit) representative instances for the fidelity and
 * verification experiments (Figs 15 and 16).
 */
std::vector<Benchmark> smallSuite();

/** Medium instances for the topology-aware routing study (Fig 12). */
std::vector<Benchmark> mediumSuite();

} // namespace reqisc::suite

#endif // REQISC_SUITE_SUITE_HH
