#include "isa/assembly.hh"

#include <sstream>
#include <stdexcept>

#include "circuit/qasm.hh"  // shared strict numeric-token parsers

namespace reqisc::isa
{

namespace
{

constexpr char kHeader[] = "RQISA 1.0;";
constexpr char kMeasureMnemonic[] = "meas";

/** Thrown with the offending line number attached. */
[[noreturn]] void
fail(int lineno, const std::string &msg)
{
    throw std::runtime_error("rqisa parse error at line " +
                             std::to_string(lineno) + ": " + msg);
}

double
parseDouble(const std::string &tok, int lineno)
{
    double v = 0.0;
    if (!circuit::parseTokenDouble(tok, v))
        fail(lineno, "bad number '" + tok + "'");
    return v;
}

int
parseInt(const std::string &tok, int lineno)
{
    int v = 0;
    if (!circuit::parseTokenInt(tok, v))
        fail(lineno, "bad integer '" + tok + "'");
    return v;
}

} // namespace

std::string
toAssembly(const Program &p)
{
    std::ostringstream os;
    os.precision(17);
    os << kHeader << "\n";
    os << "qubits " << p.numQubits() << ";\n";
    for (const Instruction &i : p.instructions()) {
        os << "@" << i.start << " ";
        if (i.kind == Instruction::Kind::Measure) {
            os << kMeasureMnemonic;
        } else {
            // Opaque matrix payloads have no textual form; a 'u4'
            // line could never round-trip, so refuse loudly.
            if (i.gate.op == circuit::Op::U4)
                throw std::invalid_argument(
                    "isa::toAssembly: opaque u4 block has no RQISA "
                    "form; expand to {Can, U3} "
                    "(circuit::expandToCanU3) before scheduling");
            os << circuit::opName(i.gate.op);
            if (!i.gate.params.empty()) {
                os << "(";
                for (size_t k = 0; k < i.gate.params.size(); ++k)
                    os << (k ? "," : "") << i.gate.params[k];
                os << ")";
            }
        }
        os << " ";
        for (size_t k = 0; k < i.qubits().size(); ++k)
            os << (k ? "," : "") << "q[" << i.qubits()[k] << "]";
        os << " dur " << i.duration << ";\n";
    }
    return os.str();
}

Program
fromAssembly(const std::string &text)
{
    std::istringstream is(text);
    std::string line;
    int lineno = 0;
    bool saw_header = false;
    bool saw_qubits = false;
    Program p;
    while (std::getline(is, line)) {
        ++lineno;
        const size_t comment = line.find('#');
        if (comment != std::string::npos)
            line = line.substr(0, comment);
        const size_t begin = line.find_first_not_of(" \t\r");
        if (begin == std::string::npos)
            continue;
        const size_t end = line.find_last_not_of(" \t\r");
        line = line.substr(begin, end - begin + 1);

        if (!saw_header) {
            if (line != kHeader)
                fail(lineno, "expected '" + std::string(kHeader) +
                                 "' header");
            saw_header = true;
            continue;
        }
        if (line.back() != ';')
            fail(lineno, "missing ';'");
        line.pop_back();
        if (!saw_qubits) {
            std::istringstream ls(line);
            std::string kw, count;
            ls >> kw >> count;
            if (kw != "qubits" || count.empty())
                fail(lineno, "expected 'qubits N;'");
            const int n = parseInt(count, lineno);
            if (n <= 0)
                fail(lineno, "qubit count must be positive");
            p = Program(n);
            saw_qubits = true;
            continue;
        }
        if (line.empty() || line[0] != '@')
            fail(lineno, "instruction must start with '@'");
        const size_t sp0 = line.find(' ');
        if (sp0 == std::string::npos)
            fail(lineno, "missing mnemonic");
        Instruction instr;
        instr.start = parseDouble(line.substr(1, sp0 - 1), lineno);

        size_t cursor = sp0 + 1;
        const size_t mn_end = line.find_first_of(" (", cursor);
        if (mn_end == std::string::npos)
            fail(lineno, "missing operands");
        const std::string mnemonic =
            line.substr(cursor, mn_end - cursor);
        if (mnemonic == kMeasureMnemonic) {
            instr.kind = Instruction::Kind::Measure;
            instr.gate.op = circuit::Op::I;
        } else if (!circuit::opFromName(mnemonic, instr.gate.op)) {
            fail(lineno, "unknown mnemonic '" + mnemonic + "'");
        }
        cursor = mn_end;
        if (line[cursor] == '(') {
            if (instr.kind == Instruction::Kind::Measure)
                fail(lineno, "meas takes no parameters");
            const size_t close = line.find(')', cursor);
            if (close == std::string::npos)
                fail(lineno, "unterminated parameter list");
            std::istringstream ps(
                line.substr(cursor + 1, close - cursor - 1));
            std::string tok;
            while (std::getline(ps, tok, ','))
                instr.gate.params.push_back(parseDouble(tok, lineno));
            cursor = close + 1;
        }
        const size_t dur_kw = line.find(" dur ", cursor);
        if (dur_kw == std::string::npos)
            fail(lineno, "missing 'dur' field");
        std::string operands = line.substr(cursor, dur_kw - cursor);
        size_t pos = 0;
        while ((pos = operands.find("q[", pos)) !=
               std::string::npos) {
            const size_t rb = operands.find(']', pos);
            if (rb == std::string::npos)
                fail(lineno, "unterminated qubit operand");
            instr.gate.qubits.push_back(parseInt(
                operands.substr(pos + 2, rb - pos - 2), lineno));
            pos = rb + 1;
        }
        if (instr.gate.qubits.empty())
            fail(lineno, "instruction with no qubits");
        instr.duration = parseDouble(line.substr(dur_kw + 5), lineno);
        if (instr.kind == Instruction::Kind::Gate &&
            circuit::opParamCount(instr.gate.op) !=
                static_cast<int>(instr.gate.params.size()) &&
            instr.gate.op != circuit::Op::MCX)
            fail(lineno, "wrong parameter count for '" + mnemonic +
                             "'");
        p.add(std::move(instr));
    }
    if (!saw_header)
        fail(lineno ? lineno : 1, "empty input (no RQISA header)");
    if (!saw_qubits)
        fail(lineno ? lineno : 1, "missing 'qubits N;' declaration");
    const std::vector<std::string> errs = p.validate();
    if (!errs.empty())
        throw std::runtime_error("rqisa invalid program: " +
                                 errs.front());
    return p;
}

} // namespace reqisc::isa
