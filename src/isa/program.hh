/**
 * @file
 * The timed RQISA intermediate representation: an executable program
 * is a list of instructions `{op, qubits, start, duration}` over a
 * fixed qubit register, i.e. per-qubit timelines instead of an
 * ordered gate list. This is the layer where the compiler's output
 * stops being a circuit and becomes something a control stack could
 * run (the eQASM/Quil gap the paper's "attainable on hardware"
 * framing points at).
 *
 * Invariants (checked by validate(), enforced on assembly ingest):
 *  - qubit exclusivity: two instructions sharing a qubit never
 *    overlap in time,
 *  - starts and durations are finite and non-negative,
 *  - qubit operands are in range and distinct per instruction,
 *  - with a topology, every 2Q instruction acts on a connected pair.
 *
 * Times are in 1/g units (isa/duration_model.hh). Instruction order
 * in the container is the program's canonical order (schedulers emit
 * sorted by (start, appearance)); the assembly round-trip preserves
 * it byte-for-byte.
 */

#ifndef REQISC_ISA_PROGRAM_HH
#define REQISC_ISA_PROGRAM_HH

#include <string>
#include <vector>

#include "circuit/circuit.hh"
#include "compiler/metrics.hh"
#include "route/topology.hh"

namespace reqisc::isa
{

/** One timed instruction. */
struct Instruction
{
    enum class Kind
    {
        Gate,     //!< a unitary gate (the wrapped circuit::Gate)
        Measure,  //!< computational-basis readout of `qubits()`
    };

    Kind kind = Kind::Gate;
    /**
     * Gate payload. For Kind::Measure only `gate.qubits` is
     * meaningful (the measured qubits); op/params are ignored.
     */
    circuit::Gate gate;
    double start = 0.0;     //!< issue time, 1/g units
    double duration = 0.0;  //!< execution time, 1/g units

    double end() const { return start + duration; }
    const std::vector<int> &qubits() const { return gate.qubits; }

    static Instruction timedGate(circuit::Gate g, double start,
                                 double duration);
    static Instruction measure(int qubit, double start,
                               double duration);
};

/** An executable timed program on a fixed register. */
class Program
{
  public:
    Program() = default;
    explicit Program(int num_qubits) : numQubits_(num_qubits) {}

    int numQubits() const { return numQubits_; }
    size_t size() const { return instrs_.size(); }
    bool empty() const { return instrs_.empty(); }

    const std::vector<Instruction> &instructions() const
    {
        return instrs_;
    }
    const Instruction &operator[](size_t i) const
    {
        return instrs_[i];
    }

    /** Append an instruction (no ordering requirement). */
    void add(Instruction instr);

    /** Canonical order: stable sort by start time. */
    void sortByStart();

    /** End of the last instruction (0 for an empty program). */
    double makespan() const;

    /** Makespan / parallelism / idle-time report. */
    compiler::ScheduleStats stats() const;

    /**
     * Check the program invariants listed in the file header; the
     * returned messages are empty iff the program is valid. A
     * non-null topology additionally checks 2Q connectivity.
     */
    std::vector<std::string>
    validate(const route::Topology *topo = nullptr) const;

    /**
     * Re-ingest: the gate instructions in start order as an untimed
     * circuit (measurements dropped), suitable for feeding back into
     * the compiler or the simulators.
     */
    circuit::Circuit toCircuit() const;

  private:
    int numQubits_ = 0;
    std::vector<Instruction> instrs_;
};

} // namespace reqisc::isa

#endif // REQISC_ISA_PROGRAM_HH
