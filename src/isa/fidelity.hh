/**
 * @file
 * Timeline-aware fidelity estimation: the schedule, not just the
 * gate list, determines attainable fidelity.
 *
 * Extends the paper's Section-6.7 noise model (qsim::simulateNoisy:
 * depolarizing p = p0 * tau / tau0 after every 2Q gate) with
 * per-qubit idle decoherence: whenever a qubit waits between two of
 * its instructions for time dt, it suffers amplitude damping
 * gamma = 1 - exp(-dt/T1) and phase damping
 * lambda = 1 - exp(-dt/T2). Qubits parked in |0> before their first
 * instruction are unaffected (both channels fix the ground state),
 * so only in-window idle time costs fidelity — exactly the quantity
 * ASAP/ALAP scheduling trades off.
 *
 * NoiseModel also hosts the repo-wide default noise constants
 * (p0 = 1e-3 at tau0 = conventional CNOT pulse) previously duplicated
 * across bench/example helpers; with the default-constructed model
 * (T1 = T2 = infinity) simulateTimed reproduces qsim::simulateNoisy
 * on the same gate order.
 */

#ifndef REQISC_ISA_FIDELITY_HH
#define REQISC_ISA_FIDELITY_HH

#include <limits>
#include <map>
#include <utility>
#include <vector>

#include "isa/program.hh"
#include "uarch/duration.hh"

namespace reqisc::isa
{

/** The timeline noise model (all times in 1/g units). */
struct NoiseModel
{
    /** 2Q depolarizing rate at the reference duration tau0. */
    double p0 = 1e-3;
    /** Reference duration: the conventional CNOT pulse pi/(sqrt 2 g). */
    double tau0 = uarch::conventionalCnotDuration(1.0);
    /** Amplitude-damping (energy-relaxation) time; infinity = off. */
    double t1 = std::numeric_limits<double>::infinity();
    /** Dephasing time; infinity = off. */
    double t2 = std::numeric_limits<double>::infinity();
    /**
     * Per-qubit T1/T2 overrides for heterogeneous chips (populated
     * by backend::Backend::noiseModel()). Qubits beyond the vector
     * length — in particular every qubit when the vectors are empty,
     * the pre-backend default — fall back to the scalar t1/t2.
     */
    std::vector<double> t1PerQubit;
    std::vector<double> t2PerQubit;
    /**
     * Per-edge 2Q depolarizing rate at tau0, keyed on the
     * (min, max)-normalized pair; pairs not present use `p0`.
     */
    std::map<std::pair<int, int>, double> p0PerEdge;

    double t1For(int q) const
    {
        return static_cast<size_t>(q) < t1PerQubit.size()
                   ? t1PerQubit[static_cast<size_t>(q)]
                   : t1;
    }
    double t2For(int q) const
    {
        return static_cast<size_t>(q) < t2PerQubit.size()
                   ? t2PerQubit[static_cast<size_t>(q)]
                   : t2;
    }
    double p0For(int a, int b) const;
};

/**
 * Exact density-matrix evaluation of a timed program under the noise
 * model (practical to ~10 qubits): gates in start order, per-2Q-gate
 * depolarizing scaled by the instruction duration, idle decoherence
 * on every in-window wait. Returns the computational-basis
 * distribution; `final_perm` is interpreted as in
 * qsim::simulateNoisy (logical qubit q ends on wire final_perm[q]).
 */
std::vector<double>
simulateTimed(const Program &p, const NoiseModel &noise,
              const std::vector<int> &final_perm = {});

/**
 * Closed-form fidelity proxy for schedule comparison at any size:
 * the product of per-instruction success factors
 *   prod_{2Q gates} (1 - p0 * dur / tau0)
 *   * prod_{idle windows} exp(-dt/T1) * exp(-dt/T2).
 * An upper-bound-flavoured estimate (errors are assumed never to
 * cancel); its value is in ranking schedules of the same circuit,
 * where the gate factors are identical and only the idle product
 * differs.
 */
double analyticFidelity(const Program &p, const NoiseModel &noise);

} // namespace reqisc::isa

#endif // REQISC_ISA_FIDELITY_HH
