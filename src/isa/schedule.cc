#include "isa/schedule.hh"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace reqisc::isa
{

const char *
strategyName(Strategy s)
{
    switch (s) {
      case Strategy::Serial: return "serial";
      case Strategy::Asap: return "asap";
      case Strategy::Alap: return "alap";
    }
    return "?";
}

bool
strategyFromName(const std::string &name, Strategy &out)
{
    if (name == "serial")
        out = Strategy::Serial;
    else if (name == "asap")
        out = Strategy::Asap;
    else if (name == "alap")
        out = Strategy::Alap;
    else
        return false;
    return true;
}

namespace
{

/**
 * ASAP start times for the gate list in the given order: start(g) =
 * max over g's qubits of the time the qubit becomes free. With qubit
 * exclusivity as the only resource constraint this is the per-gate
 * longest dependency chain, so the resulting makespan is the
 * critical-path length of the (order-induced) dependency DAG.
 */
std::vector<double>
asapStarts(const std::vector<const circuit::Gate *> &gates,
           const std::vector<double> &durations, int num_qubits,
           double *makespan_out)
{
    std::vector<double> free(num_qubits, 0.0);
    std::vector<double> starts(gates.size(), 0.0);
    double makespan = 0.0;
    for (size_t i = 0; i < gates.size(); ++i) {
        double t = 0.0;
        for (int q : gates[i]->qubits)
            t = std::max(t, free[q]);
        starts[i] = t;
        const double end = t + durations[i];
        for (int q : gates[i]->qubits)
            free[q] = end;
        makespan = std::max(makespan, end);
    }
    *makespan_out = makespan;
    return starts;
}

} // namespace

Program
schedule(const circuit::Circuit &c, const ScheduleOptions &opts)
{
    std::vector<const circuit::Gate *> gates;
    gates.reserve(c.size());
    for (const circuit::Gate &g : c) {
        if (g.numQubits() > 2)
            throw std::invalid_argument(
                std::string("isa::schedule: ") +
                circuit::opName(g.op) +
                " acts on more than two qubits; lower the circuit "
                "to <= 2-qubit gates first");
        if (opts.topology && g.is2Q() &&
            !opts.topology->connected(g.qubits[0], g.qubits[1]))
            throw std::invalid_argument(
                "isa::schedule: 2Q gate on unconnected pair q" +
                std::to_string(g.qubits[0]) + ",q" +
                std::to_string(g.qubits[1]) +
                "; route the circuit first");
        gates.push_back(&g);
    }
    std::vector<double> durations(gates.size());
    for (size_t i = 0; i < gates.size(); ++i)
        durations[i] = opts.durations.gate(*gates[i]);

    std::vector<double> starts(gates.size(), 0.0);
    switch (opts.strategy) {
      case Strategy::Serial: {
        double cursor = 0.0;
        for (size_t i = 0; i < gates.size(); ++i) {
            starts[i] = cursor;
            cursor += durations[i];
        }
        break;
      }
      case Strategy::Asap: {
        double makespan = 0.0;
        starts = asapStarts(gates, durations, c.numQubits(),
                            &makespan);
        break;
      }
      case Strategy::Alap: {
        // ALAP is the time-mirror of ASAP on the reversed gate list:
        // reversing the list reverses every qubit-order dependency,
        // and the critical path (hence the makespan) of the reversed
        // DAG is the same, so start = T - reversed_end is a valid
        // schedule with each gate as late as its successors allow.
        std::vector<const circuit::Gate *> rgates(gates.rbegin(),
                                                  gates.rend());
        std::vector<double> rdur(durations.rbegin(),
                                 durations.rend());
        double makespan = 0.0;
        const std::vector<double> rstarts = asapStarts(
            rgates, rdur, c.numQubits(), &makespan);
        for (size_t i = 0; i < gates.size(); ++i) {
            const size_t r = gates.size() - 1 - i;
            starts[i] = makespan - (rstarts[r] + rdur[r]);
        }
        break;
      }
    }

    Program p(c.numQubits());
    for (size_t i = 0; i < gates.size(); ++i)
        p.add(Instruction::timedGate(*gates[i], starts[i],
                                     durations[i]));
    p.sortByStart();
    if (opts.measureAtEnd) {
        const double t = p.makespan();
        for (int q = 0; q < c.numQubits(); ++q)
            p.add(Instruction::measure(q, t,
                                       opts.durations.measurement));
    }
    return p;
}

} // namespace reqisc::isa
