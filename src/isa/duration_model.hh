/**
 * @file
 * The hardware duration model of the RQISA program layer.
 *
 * One struct owns every per-instruction duration the scheduler and
 * the timeline-aware noise model consume: two-qubit gates cost their
 * genAshN time-optimal duration on the target coupling
 * (uarch::durationInfo), one-qubit gates and measurements cost the
 * configurable flat defaults below. All durations are in 1/g units
 * (g = canonical coupling strength), the convention of
 * uarch/duration.hh, so the conventional CNOT pulse is
 * pi/sqrt(2) ~ 2.221.
 *
 * The defaults are the single source of truth for these constants —
 * bench harnesses, tests and examples must use them instead of
 * re-declaring ad hoc copies.
 */

#ifndef REQISC_ISA_DURATION_MODEL_HH
#define REQISC_ISA_DURATION_MODEL_HH

#include <map>
#include <utility>

#include "circuit/gate.hh"
#include "uarch/coupling.hh"

namespace reqisc::isa
{

/**
 * Default one-qubit gate duration in 1/g units: ~1/9 of the
 * conventional CNOT pulse, matching the typical 25 ns single-qubit
 * vs 200 ns two-qubit ratio on transmon hardware.
 */
inline constexpr double kDefaultOneQubitDuration = 0.25;

/**
 * Default measurement (readout) duration in 1/g units: a few times
 * the two-qubit pulse, matching ~1 us readout vs ~200 ns gates.
 */
inline constexpr double kDefaultMeasurementDuration = 10.0;

/** Per-instruction durations for one target device. */
struct DurationModel
{
    /** Chip-wide fallback coupling (homogeneous devices). */
    uarch::Coupling coupling = uarch::Coupling::xy(1.0);
    /**
     * Per-edge coupling overrides for heterogeneous chips, keyed on
     * the (min, max)-normalized physical pair. Populated by
     * backend::Backend::durationModel(); empty = every pair uses
     * `coupling` (the pre-backend behavior). A 2Q gate on a pair
     * found here is timed against that edge's own coupling.
     */
    std::map<std::pair<int, int>, uarch::Coupling> edgeCoupling;
    double oneQubit = kDefaultOneQubitDuration;
    double measurement = kDefaultMeasurementDuration;

    /** Coupling used for a pair: the edge override or the fallback. */
    const uarch::Coupling &couplingFor(int a, int b) const;

    /**
     * Duration of a gate: `oneQubit` for 1Q gates, the genAshN
     * optimal duration of its Weyl coordinate on couplingFor(its
     * pair) for 2Q gates. Throws std::invalid_argument for gates on
     * three or more qubits (the scheduler consumes compiled
     * {Can, U3} circuits; lower high-level IR first).
     */
    double gate(const circuit::Gate &g) const;
};

} // namespace reqisc::isa

#endif // REQISC_ISA_DURATION_MODEL_HH
