/**
 * @file
 * List schedulers lowering a compiled circuit into a timed Program.
 *
 * Three strategies over the same per-gate durations
 * (isa/duration_model.hh):
 *  - Serial: one instruction at a time (the pre-isa status quo; the
 *    makespan is the sum of durations — the baseline every other
 *    strategy is measured against),
 *  - Asap: greedy as-soon-as-possible list scheduling — each gate
 *    starts the moment all its qubits are free, which maximizes
 *    2Q-gate parallelism subject to qubit exclusivity for the given
 *    gate order,
 *  - Alap: as-late-as-possible — the time-mirror of Asap (identical
 *    makespan, idle time moved before each qubit's first gate, the
 *    shape preferred when late gates should sit close to measurement).
 *
 * Invariants guaranteed for every strategy: the emitted program
 * passes Program::validate (no qubit overlap; topology respected when
 * one is supplied), preserves the input's per-qubit gate order, and
 * has makespan <= the serial sum of durations. Scheduling is
 * deterministic in (circuit, options).
 */

#ifndef REQISC_ISA_SCHEDULE_HH
#define REQISC_ISA_SCHEDULE_HH

#include <string>

#include "circuit/circuit.hh"
#include "isa/duration_model.hh"
#include "isa/program.hh"
#include "route/topology.hh"

namespace reqisc::isa
{

/** Scheduling strategy. */
enum class Strategy
{
    Serial,
    Asap,
    Alap,
};

const char *strategyName(Strategy s);

/** @return false if `name` is not "serial" / "asap" / "alap". */
bool strategyFromName(const std::string &name, Strategy &out);

/** Scheduling configuration. */
struct ScheduleOptions
{
    Strategy strategy = Strategy::Asap;
    DurationModel durations;
    /**
     * Device connectivity to enforce (the circuit must already be
     * routed); nullptr skips the check (logical programs).
     */
    const route::Topology *topology = nullptr;
    /**
     * Append a Measure instruction on every qubit at the gate
     * makespan (a global readout barrier, the common control-stack
     * shape), extending the makespan by `durations.measurement`.
     */
    bool measureAtEnd = false;
};

/**
 * Lower a circuit (gates on <= 2 qubits; lower high-level IR first)
 * into a timed program. Throws std::invalid_argument on gates with
 * three or more qubits or on a topology violation.
 */
Program schedule(const circuit::Circuit &c,
                 const ScheduleOptions &opts = {});

} // namespace reqisc::isa

#endif // REQISC_ISA_SCHEDULE_HH
