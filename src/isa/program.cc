#include "isa/program.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace reqisc::isa
{

namespace
{

/** Interval-overlap slack: abutting instructions are not a clash. */
constexpr double kOverlapEps = 1e-9;

} // namespace

Instruction
Instruction::timedGate(circuit::Gate g, double start, double duration)
{
    Instruction i;
    i.kind = Kind::Gate;
    i.gate = std::move(g);
    i.start = start;
    i.duration = duration;
    return i;
}

Instruction
Instruction::measure(int qubit, double start, double duration)
{
    Instruction i;
    i.kind = Kind::Measure;
    i.gate.op = circuit::Op::I;
    i.gate.qubits = {qubit};
    i.start = start;
    i.duration = duration;
    return i;
}

void
Program::add(Instruction instr)
{
    instrs_.push_back(std::move(instr));
}

void
Program::sortByStart()
{
    std::stable_sort(instrs_.begin(), instrs_.end(),
                     [](const Instruction &a, const Instruction &b) {
                         return a.start < b.start;
                     });
}

double
Program::makespan() const
{
    double m = 0.0;
    for (const Instruction &i : instrs_)
        m = std::max(m, i.end());
    return m;
}

compiler::ScheduleStats
Program::stats() const
{
    compiler::ScheduleStats s;
    s.scheduled = true;
    s.instructions = static_cast<int>(instrs_.size());
    s.makespan = makespan();
    // Per-qubit occupancy windows for the idle-time accounting.
    std::vector<double> first(numQubits_, -1.0);
    std::vector<double> last(numQubits_, 0.0);
    std::vector<double> busy(numQubits_, 0.0);
    for (const Instruction &i : instrs_) {
        s.serialDuration += i.duration;
        for (int q : i.qubits()) {
            if (first[q] < 0.0 || i.start < first[q])
                first[q] = i.start;
            last[q] = std::max(last[q], i.end());
            busy[q] += i.duration;
        }
    }
    for (int q = 0; q < numQubits_; ++q)
        if (first[q] >= 0.0)
            s.idleTime += (last[q] - first[q]) - busy[q];
    s.parallelism =
        s.makespan > 0.0 ? s.serialDuration / s.makespan : 0.0;
    return s;
}

std::vector<std::string>
Program::validate(const route::Topology *topo) const
{
    std::vector<std::string> errs;
    auto complain = [&](size_t idx, const std::string &what) {
        std::ostringstream os;
        os << "instruction " << idx << ": " << what;
        errs.push_back(os.str());
    };
    // Per-qubit interval lists for the exclusivity check.
    std::vector<std::vector<std::pair<double, double>>> windows(
        numQubits_);
    for (size_t idx = 0; idx < instrs_.size(); ++idx) {
        const Instruction &i = instrs_[idx];
        if (!std::isfinite(i.start) || i.start < 0.0)
            complain(idx, "negative or non-finite start time");
        if (!std::isfinite(i.duration) || i.duration < 0.0)
            complain(idx, "negative or non-finite duration");
        if (i.qubits().empty())
            complain(idx, "no qubit operands");
        bool in_range = true;
        for (int q : i.qubits())
            if (q < 0 || q >= numQubits_) {
                complain(idx, "qubit index out of range");
                in_range = false;
            }
        for (size_t a = 0; a < i.qubits().size(); ++a)
            for (size_t b = a + 1; b < i.qubits().size(); ++b)
                if (i.qubits()[a] == i.qubits()[b])
                    complain(idx, "duplicate qubit operand");
        if (!in_range)
            continue;
        if (topo && i.kind == Instruction::Kind::Gate &&
            i.qubits().size() == 2 &&
            !topo->connected(i.qubits()[0], i.qubits()[1]))
            complain(idx, "2Q gate on unconnected pair q" +
                              std::to_string(i.qubits()[0]) + ",q" +
                              std::to_string(i.qubits()[1]));
        for (int q : i.qubits())
            windows[q].emplace_back(i.start, i.end());
    }
    for (int q = 0; q < numQubits_; ++q) {
        auto &w = windows[q];
        std::sort(w.begin(), w.end());
        for (size_t k = 1; k < w.size(); ++k)
            if (w[k].first < w[k - 1].second - kOverlapEps) {
                std::ostringstream os;
                os << "qubit " << q
                   << ": overlapping instructions at t="
                   << w[k].first;
                errs.push_back(os.str());
            }
    }
    return errs;
}

circuit::Circuit
Program::toCircuit() const
{
    std::vector<const Instruction *> order;
    order.reserve(instrs_.size());
    for (const Instruction &i : instrs_)
        if (i.kind == Instruction::Kind::Gate)
            order.push_back(&i);
    std::stable_sort(order.begin(), order.end(),
                     [](const Instruction *a, const Instruction *b) {
                         return a->start < b->start;
                     });
    circuit::Circuit c(numQubits_);
    for (const Instruction *i : order)
        c.add(i->gate);
    return c;
}

} // namespace reqisc::isa
