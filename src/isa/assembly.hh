/**
 * @file
 * RQISA textual assembly: the interchange format for timed programs,
 * so executable schedules can be dumped, diffed, and re-ingested.
 *
 * Grammar (one instruction per line; '#' starts a comment; numbers
 * are decimal doubles printed with 17 significant digits, which makes
 * the emit -> parse -> emit round-trip byte-identical):
 *
 *   program := "RQISA 1.0;" NL "qubits" INT ";" NL line*
 *   line    := "@" FLOAT mnemonic params? operands "dur" FLOAT ";" NL
 *   mnemonic:= gate-name | "meas"          // gate-name as in QASM
 *   params  := "(" FLOAT ("," FLOAT)* ")"
 *   operands:= "q[" INT "]" ("," "q[" INT "]")*
 *
 * Example:
 *   RQISA 1.0;
 *   qubits 2;
 *   @0 u3(1.5707963267948966,0,3.1415926535897931) q[0] dur 0.25;
 *   @0.25 can(0.78539816339744828,0,0) q[0],q[1] dur 2.2214414690791831;
 *   @2.4714414690791831 meas q[0] dur 10;
 *   @2.4714414690791831 meas q[1] dur 10;
 *
 * The parser enforces the Program invariants (qubit exclusivity,
 * operand ranges) on ingest, so a parsed program is always valid.
 */

#ifndef REQISC_ISA_ASSEMBLY_HH
#define REQISC_ISA_ASSEMBLY_HH

#include <string>

#include "isa/program.hh"

namespace reqisc::isa
{

/**
 * Serialize a program; instruction order is preserved. Throws
 * std::invalid_argument on opaque U4 instructions (no textual form —
 * expand to {Can, U3} before scheduling), so emitted text always
 * re-parses.
 */
std::string toAssembly(const Program &p);

/**
 * Parse assembly written by toAssembly (or hand-written in the same
 * dialect). Throws std::runtime_error with a line number on malformed
 * input or on a program-invariant violation.
 */
Program fromAssembly(const std::string &text);

} // namespace reqisc::isa

#endif // REQISC_ISA_ASSEMBLY_HH
