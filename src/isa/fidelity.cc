#include "isa/fidelity.hh"

#include <algorithm>
#include <cmath>

#include "qsim/density.hh"
#include "qsim/statevector.hh"

namespace reqisc::isa
{

namespace
{

/** Idle gaps shorter than this are scheduling noise, not waiting. */
constexpr double kIdleEps = 1e-12;

/** Decay probability 1 - exp(-dt/T), with T = infinity -> 0. */
double
decayProbability(double dt, double t)
{
    if (!std::isfinite(t) || t <= 0.0)
        return 0.0;
    return 1.0 - std::exp(-dt / t);
}

/** Instructions in execution (start) order. */
std::vector<const Instruction *>
executionOrder(const Program &p)
{
    std::vector<const Instruction *> order;
    order.reserve(p.size());
    for (const Instruction &i : p.instructions())
        order.push_back(&i);
    std::stable_sort(order.begin(), order.end(),
                     [](const Instruction *a, const Instruction *b) {
                         return a->start < b->start;
                     });
    return order;
}

} // namespace

double
NoiseModel::p0For(int a, int b) const
{
    if (!p0PerEdge.empty()) {
        const auto it = p0PerEdge.find(
            std::pair<int, int>(std::minmax(a, b)));
        if (it != p0PerEdge.end())
            return it->second;
    }
    return p0;
}

std::vector<double>
simulateTimed(const Program &p, const NoiseModel &noise,
              const std::vector<int> &final_perm)
{
    qsim::DensityMatrix rho(p.numQubits());
    // -1 marks a qubit not used yet: it sits in |0>, which both idle
    // channels fix, so its wait before the first instruction is free.
    std::vector<double> lastEnd(p.numQubits(), -1.0);
    for (const Instruction *i : executionOrder(p)) {
        for (int q : i->qubits()) {
            if (lastEnd[q] >= 0.0) {
                const double dt = i->start - lastEnd[q];
                if (dt > kIdleEps) {
                    rho.amplitudeDamp(
                        q, decayProbability(dt, noise.t1For(q)));
                    rho.phaseDamp(
                        q, decayProbability(dt, noise.t2For(q)));
                }
            }
            lastEnd[q] = std::max(lastEnd[q], i->end());
        }
        if (i->kind == Instruction::Kind::Gate) {
            rho.applyGate(i->gate);
            if (i->gate.numQubits() >= 2) {
                const double p0 = noise.p0For(i->gate.qubits[0],
                                              i->gate.qubits[1]);
                const double perr = std::min(
                    1.0, p0 * i->duration / noise.tau0);
                rho.depolarize(i->gate.qubits, perr);
            }
        }
        // Measure: ideal readout; it still occupies the qubit (its
        // duration extends lastEnd) and collects idle noise before
        // it starts.
    }
    if (!final_perm.empty())
        rho.permuteQubits(qsim::inversePermutation(final_perm));
    return rho.probabilities();
}

double
analyticFidelity(const Program &p, const NoiseModel &noise)
{
    double f = 1.0;
    std::vector<double> lastEnd(p.numQubits(), -1.0);
    for (const Instruction *i : executionOrder(p)) {
        for (int q : i->qubits()) {
            if (lastEnd[q] >= 0.0) {
                const double dt = i->start - lastEnd[q];
                if (dt > kIdleEps)
                    f *= (1.0 -
                          decayProbability(dt, noise.t1For(q))) *
                         (1.0 -
                          decayProbability(dt, noise.t2For(q)));
            }
            lastEnd[q] = std::max(lastEnd[q], i->end());
        }
        if (i->kind == Instruction::Kind::Gate &&
            i->gate.numQubits() >= 2)
            f *= 1.0 - std::min(1.0, noise.p0For(i->gate.qubits[0],
                                                 i->gate.qubits[1]) *
                                         i->duration / noise.tau0);
    }
    return f;
}

} // namespace reqisc::isa
