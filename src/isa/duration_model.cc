#include "isa/duration_model.hh"

#include <stdexcept>
#include <string>

#include "uarch/duration.hh"

namespace reqisc::isa
{

double
DurationModel::gate(const circuit::Gate &g) const
{
    if (g.is1Q())
        return oneQubit;
    if (g.is2Q())
        return uarch::optimalDuration(coupling, g.weylCoord());
    throw std::invalid_argument(
        std::string("DurationModel: cannot time ") +
        std::to_string(g.numQubits()) + "-qubit gate '" +
        circuit::opName(g.op) + "'; lower to <= 2-qubit gates first");
}

} // namespace reqisc::isa
