#include "isa/duration_model.hh"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "uarch/duration.hh"

namespace reqisc::isa
{

const uarch::Coupling &
DurationModel::couplingFor(int a, int b) const
{
    if (!edgeCoupling.empty()) {
        const auto it = edgeCoupling.find(std::minmax(a, b));
        if (it != edgeCoupling.end())
            return it->second;
    }
    return coupling;
}

double
DurationModel::gate(const circuit::Gate &g) const
{
    if (g.is1Q())
        return oneQubit;
    if (g.is2Q())
        return uarch::optimalDuration(
            couplingFor(g.qubits[0], g.qubits[1]), g.weylCoord());
    throw std::invalid_argument(
        std::string("DurationModel: cannot time ") +
        std::to_string(g.numQubits()) + "-qubit gate '" +
        circuit::opName(g.op) + "'; lower to <= 2-qubit gates first");
}

} // namespace reqisc::isa
