/**
 * @file
 * Baseline compilers standing in for Qiskit O3, TKet and BQSKit
 * (Section 6.1.2), plus their SU(4)-variant ablations (Fig 14).
 *
 * These reproduce the baselines' load-bearing mechanisms — 1Q fusion,
 * CX cancellation, block consolidation + KAK re-synthesis, phase-
 * gadget grouping, and partition + numeric re-synthesis — not their
 * code; absolute reduction numbers differ from the papers' but the
 * orderings that Table 2 / Fig 14 report are preserved.
 */

#ifndef REQISC_COMPILER_BASELINES_HH
#define REQISC_COMPILER_BASELINES_HH

#include "circuit/circuit.hh"

namespace reqisc::compiler
{

/** Qiskit-O3-like: peephole + consolidation, {CX, 1Q} output. */
circuit::Circuit qiskitLike(const circuit::Circuit &input);

/** TKet-like: PauliSimp-style grouping first, then the peephole. */
circuit::Circuit tketLike(const circuit::Circuit &input);

/** BQSKit-like: 3Q partition + numeric synthesis, {CX, 1Q} output. */
circuit::Circuit bqskitLike(const circuit::Circuit &input);

/** Qiskit-SU(4): qiskitLike then 2Q-block fusion into {Can, U3}. */
circuit::Circuit qiskitSU4(const circuit::Circuit &input);

/** TKet-SU(4): tketLike then 2Q-block fusion into {Can, U3}. */
circuit::Circuit tketSU4(const circuit::Circuit &input);

/** BQSKit-SU(4): partition + numeric synthesis over {Can, U3}. */
circuit::Circuit bqskitSU4(const circuit::Circuit &input);

/** Lower any circuit to the {CX, 1Q} ISA using <=3 CX per 2Q gate. */
circuit::Circuit lowerToCnot3(const circuit::Circuit &input);

} // namespace reqisc::compiler

#endif // REQISC_COMPILER_BASELINES_HH
