#include "compiler/baselines.hh"

#include <algorithm>

#include "circuit/lower.hh"
#include "compiler/passes.hh"
#include "synth/synthesis.hh"

namespace reqisc::compiler
{

circuit::Circuit
lowerToCnot3(const circuit::Circuit &input)
{
    Circuit mid =
        circuit::lowerThreeQubit(circuit::decomposeMcx(input));
    Circuit out(input.numQubits());
    for (const Gate &g : mid) {
        if (g.numQubits() == 1 || g.op == Op::CX) {
            out.add(g);
            continue;
        }
        for (Gate &e :
             synth::su4ToCnots(g.qubits[0], g.qubits[1], g.matrix()))
            out.add(std::move(e));
    }
    return out;
}

namespace
{

/**
 * Consolidate 2Q runs and re-emit each through the minimal-CX KAK
 * path (Qiskit's Collect2qBlocks + ConsolidateBlocks equivalent).
 */
Circuit
consolidateBlocks(const Circuit &c)
{
    Circuit fused = fuse2QBlocks(fuse1Q(c));
    Circuit out(c.numQubits());
    for (const Gate &g : fused) {
        if (g.op == Op::U4) {
            for (Gate &e : synth::su4ToCnots(g.qubits[0],
                                             g.qubits[1],
                                             *g.payload))
                out.add(std::move(e));
        } else {
            out.add(g);
        }
    }
    return out;
}

} // namespace

circuit::Circuit
qiskitLike(const circuit::Circuit &input)
{
    Circuit c = lowerToCnot3(input);
    for (int round = 0; round < 2; ++round) {
        c = fuse1Q(c);
        c = cancelAdjacentCx(c);
        c = consolidateBlocks(c);
    }
    return fuse1Q(cancelAdjacentCx(c));
}

circuit::Circuit
tketLike(const circuit::Circuit &input)
{
    Circuit c = circuit::lowerThreeQubit(
        circuit::decomposeMcx(input));
    // PauliSimp-style: group commuting phase gadgets before lowering
    // so same-pair rotations merge.
    c = groupPauliRotations(c);
    c = lowerToCnot3(c);
    for (int round = 0; round < 2; ++round) {
        c = fuse1Q(c);
        c = cancelAdjacentCx(c);
        c = consolidateBlocks(c);
    }
    return fuse1Q(cancelAdjacentCx(c));
}

namespace
{

/** Partition + numeric block re-synthesis over SU(4) blocks. */
Circuit
partitionResynth(const Circuit &input, bool to_cnots)
{
    Circuit c = fuse2QBlocks(fuse1Q(input));
    Circuit out(input.numQubits());
    for (const auto &b : partition3Q(c)) {
        const bool worth = b.qubits.size() == 3 && b.count2Q > 3;
        std::vector<Gate> gates;
        if (worth) {
            Matrix u = Matrix::identity(8);
            auto local = [&](const Gate &g) {
                std::vector<int> idx;
                for (int q : g.qubits)
                    idx.push_back(static_cast<int>(
                        std::find(b.qubits.begin(), b.qubits.end(),
                                  q) - b.qubits.begin()));
                return idx;
            };
            for (const Gate &g : b.gates)
                u = synth::liftGate(g.matrix(), local(g), 3) * u;
            synth::SynthesisOptions opts;
            opts.tol = 1e-8;
            opts.maxBlocks = std::min(7, b.count2Q);
            opts.restarts = 2;
            opts.descending = true;
            synth::SynthesisResult r =
                synth::synthesizeBlock(u, b.qubits, opts);
            if (r.success &&
                static_cast<int>(r.blockCount) <= b.count2Q)
                gates = r.gates;
        }
        if (gates.empty())
            gates = b.gates;
        for (const Gate &g : gates)
            out.add(g);
    }
    if (!to_cnots)
        return circuit::expandToCanU3(fuse2QBlocks(fuse1Q(out)));
    Circuit cx(out.numQubits());
    for (const Gate &g : fuse2QBlocks(fuse1Q(out))) {
        if (g.op == Op::U4 || g.op == Op::CAN) {
            for (Gate &e : synth::su4ToCnots(g.qubits[0],
                                             g.qubits[1],
                                             g.matrix()))
                cx.add(std::move(e));
        } else {
            cx.add(g);
        }
    }
    return cx;
}

} // namespace

circuit::Circuit
bqskitLike(const circuit::Circuit &input)
{
    // Partition the raw CX circuit and re-synthesize each 3Q block
    // numerically, keeping whichever variant needs fewer CX gates.
    Circuit c = fuse1Q(lowerToCnot3(input));
    Circuit out(c.numQubits());
    for (const auto &b : partition3Q(c)) {
        std::vector<Gate> emitted;
        if (b.qubits.size() == 3 && b.count2Q > 3) {
            Matrix u = Matrix::identity(8);
            auto local = [&](const Gate &g) {
                std::vector<int> idx;
                for (int q : g.qubits)
                    idx.push_back(static_cast<int>(
                        std::find(b.qubits.begin(), b.qubits.end(),
                                  q) - b.qubits.begin()));
                return idx;
            };
            for (const Gate &g : b.gates)
                u = synth::liftGate(g.matrix(), local(g), 3) * u;
            synth::SynthesisOptions opts;
            opts.tol = 1e-8;
            opts.maxBlocks = 6;
            opts.restarts = 2;
            opts.descending = true;
            synth::SynthesisResult r =
                synth::synthesizeBlock(u, b.qubits, opts);
            if (r.success) {
                std::vector<Gate> cand;
                for (const Gate &g : r.gates) {
                    if (g.op == Op::U4) {
                        for (Gate &e : synth::su4ToCnots(
                                 g.qubits[0], g.qubits[1],
                                 *g.payload))
                            cand.push_back(std::move(e));
                    } else {
                        cand.push_back(g);
                    }
                }
                int cx = 0;
                for (const Gate &g : cand)
                    if (g.op == Op::CX)
                        ++cx;
                if (cx < b.count2Q)
                    emitted = std::move(cand);
            }
        }
        if (emitted.empty())
            emitted = b.gates;
        for (const Gate &g : emitted)
            out.add(std::move(g));
    }
    return fuse1Q(cancelAdjacentCx(out));
}

circuit::Circuit
qiskitSU4(const circuit::Circuit &input)
{
    return circuit::expandToCanU3(
        fuse2QBlocks(fuse1Q(qiskitLike(input))));
}

circuit::Circuit
tketSU4(const circuit::Circuit &input)
{
    return circuit::expandToCanU3(
        fuse2QBlocks(fuse1Q(tketLike(input))));
}

circuit::Circuit
bqskitSU4(const circuit::Circuit &input)
{
    Circuit c = lowerToCnot3(input);
    return partitionResynth(c, /*to_cnots=*/false);
}

} // namespace reqisc::compiler
