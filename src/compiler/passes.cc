#include "compiler/passes.hh"

#include <algorithm>
#include <map>
#include <optional>

#include "circuit/lower.hh"
#include "synth/instantiate.hh"
#include "synth/synthesis.hh"
#include "uarch/genashn.hh"
#include "weyl/su2.hh"
#include "weyl/weyl.hh"

namespace reqisc::compiler
{

using qmath::Complex;

Circuit
fuse1Q(const Circuit &c)
{
    Circuit out(c.numQubits());
    // Pending accumulated 1Q matrix per qubit.
    std::vector<Matrix> pending(c.numQubits());
    auto flush = [&](int q) {
        if (!pending[q].empty()) {
            if (!weyl::isIdentityUpToPhase(pending[q], 1e-12))
                out.add(circuit::u3FromMatrix(q, pending[q]));
            pending[q] = Matrix();
        }
    };
    for (const Gate &g : c) {
        if (g.numQubits() == 1) {
            int q = g.qubits[0];
            if (pending[q].empty())
                pending[q] = g.matrix();
            else
                pending[q] = g.matrix() * pending[q];
            continue;
        }
        for (int q : g.qubits)
            flush(q);
        out.add(g);
    }
    for (int q = 0; q < c.numQubits(); ++q)
        flush(q);
    return out;
}

Circuit
fuse2QBlocks(const Circuit &c)
{
    struct Block
    {
        int a, b;        // a < b
        Matrix u;        // accumulated 4x4 (a = most significant)
        bool open = true;
    };
    Circuit out(c.numQubits());
    std::vector<Block> blocks;
    // For each qubit: index into blocks of the open block owning it,
    // or -1. Plus pending (not yet blocked) 1Q matrices.
    std::vector<int> owner(c.numQubits(), -1);
    std::vector<Matrix> pending(c.numQubits());

    auto emitBlock = [&](int bi) {
        Block &blk = blocks[bi];
        if (!blk.open)
            return;
        blk.open = false;
        owner[blk.a] = -1;
        owner[blk.b] = -1;
        out.add(Gate::u4(blk.a, blk.b, blk.u));
    };
    auto flushPending = [&](int q) {
        if (!pending[q].empty()) {
            if (!weyl::isIdentityUpToPhase(pending[q], 1e-12))
                out.add(circuit::u3FromMatrix(q, pending[q]));
            pending[q] = Matrix();
        }
    };
    auto lift1Q = [&](const Matrix &m, bool on_a) {
        return on_a ? kron(m, Matrix::identity(2))
                    : kron(Matrix::identity(2), m);
    };

    for (const Gate &g : c) {
        if (g.numQubits() == 1) {
            const int q = g.qubits[0];
            if (owner[q] >= 0) {
                Block &blk = blocks[owner[q]];
                blk.u = lift1Q(g.matrix(), q == blk.a) * blk.u;
            } else {
                pending[q] = pending[q].empty()
                    ? g.matrix() : g.matrix() * pending[q];
            }
            continue;
        }
        if (g.numQubits() >= 3) {
            for (int q : g.qubits) {
                if (owner[q] >= 0)
                    emitBlock(owner[q]);
                flushPending(q);
            }
            out.add(g);
            continue;
        }
        // Two-qubit gate.
        const int a = std::min(g.qubits[0], g.qubits[1]);
        const int b = std::max(g.qubits[0], g.qubits[1]);
        // Gate matrix with `a` as the most significant qubit.
        Matrix gm = g.matrix();
        if (g.qubits[0] != a) {
            // Reorder via conjugation with SWAP.
            Matrix sw = Gate::swap(0, 1).matrix();
            gm = sw * gm * sw;
        }
        if (owner[a] >= 0 && owner[a] == owner[b]) {
            Block &blk = blocks[owner[a]];
            blk.u = gm * blk.u;
            continue;
        }
        if (owner[a] >= 0)
            emitBlock(owner[a]);
        if (owner[b] >= 0)
            emitBlock(owner[b]);
        Block blk;
        blk.a = a;
        blk.b = b;
        blk.u = gm;
        // Fold pending 1Q gates into the fresh block.
        if (!pending[a].empty()) {
            blk.u = blk.u * lift1Q(pending[a], true);
            pending[a] = Matrix();
        }
        if (!pending[b].empty()) {
            blk.u = blk.u * lift1Q(pending[b], false);
            pending[b] = Matrix();
        }
        owner[a] = static_cast<int>(blocks.size());
        owner[b] = owner[a];
        blocks.push_back(std::move(blk));
    }
    for (auto &blk : blocks)
        if (blk.open) {
            out.add(Gate::u4(blk.a, blk.b, blk.u));
            blk.open = false;
        }
    for (int q = 0; q < c.numQubits(); ++q)
        flushPending(q);
    return out;
}

std::vector<Partition3Q>
partition3Q(const Circuit &c)
{
    struct Work
    {
        std::vector<int> qubits;
        std::vector<Gate> gates;
        int count2q = 0;
        bool open = true;
    };
    std::vector<Work> works;
    std::vector<int> owner(c.numQubits(), -1);
    std::vector<int> order;   // emission order of closed works

    auto closeWork = [&](int wi) {
        Work &w = works[wi];
        if (!w.open)
            return;
        w.open = false;
        for (int q : w.qubits)
            if (owner[q] == wi)
                owner[q] = -1;
        order.push_back(wi);
    };

    for (const Gate &g : c) {
        // Find candidate open block: all owned qubits of g map to the
        // same block B, and |B.qubits U g.qubits| <= 3.
        int cand = -2;  // -2 unset, -1 none-owned, >=0 block index
        bool ok = true;
        for (int q : g.qubits) {
            if (owner[q] < 0)
                continue;
            if (cand == -2)
                cand = owner[q];
            else if (cand != owner[q])
                ok = false;
        }
        if (cand >= 0 && ok) {
            Work &w = works[cand];
            std::vector<int> merged = w.qubits;
            for (int q : g.qubits)
                if (std::find(merged.begin(), merged.end(), q) ==
                    merged.end())
                    merged.push_back(q);
            if (merged.size() <= 3) {
                w.qubits = merged;
                for (int q : g.qubits)
                    owner[q] = cand;
                w.gates.push_back(g);
                if (g.numQubits() >= 2)
                    ++w.count2q;
                continue;
            }
        }
        // Close conflicting blocks and open a new one.
        for (int q : g.qubits)
            if (owner[q] >= 0)
                closeWork(owner[q]);
        Work w;
        w.qubits = g.qubits;
        std::sort(w.qubits.begin(), w.qubits.end());
        w.gates.push_back(g);
        w.count2q = g.numQubits() >= 2 ? 1 : 0;
        const int wi = static_cast<int>(works.size());
        for (int q : g.qubits)
            owner[q] = wi;
        works.push_back(std::move(w));
    }
    for (size_t wi = 0; wi < works.size(); ++wi)
        if (works[wi].open)
            closeWork(static_cast<int>(wi));

    std::vector<Partition3Q> out;
    for (int wi : order) {
        Partition3Q p;
        p.qubits = works[wi].qubits;
        std::sort(p.qubits.begin(), p.qubits.end());
        p.gates = std::move(works[wi].gates);
        p.count2Q = works[wi].count2q;
        out.push_back(std::move(p));
    }
    return out;
}

Circuit
blocksToCircuit(const std::vector<Partition3Q> &blocks,
                int num_qubits)
{
    Circuit out(num_qubits);
    for (const auto &b : blocks)
        for (const Gate &g : b.gates)
            out.add(g);
    return out;
}

int
compactnessScore(const Circuit &c)
{
    int score = 0;
    const Gate *prev = nullptr;
    for (const Gate &g : c) {
        if (g.numQubits() < 2)
            continue;
        if (prev) {
            int shared = 0;
            for (int q : g.qubits)
                for (int p : prev->qubits)
                    if (q == p)
                        ++shared;
            score += std::max(0, 2 - shared);
        }
        prev = &g;
    }
    return score;
}

Circuit
dagCompact(const Circuit &input, double tol)
{
    Circuit c = input;
    // A few greedy passes of adjacent exchanges.
    for (int pass = 0; pass < 3; ++pass) {
        bool changed = false;
        for (size_t i = 0; i + 1 < c.size(); ++i) {
            Gate &g1 = c[i];
            // Find the next multi-qubit gate adjacent in the DAG.
            if (!g1.is2Q() || (g1.op != Op::U4 && g1.op != Op::CAN))
                continue;
            size_t j = i + 1;
            bool blocked = false;
            for (; j < c.size(); ++j) {
                const Gate &gj = c[j];
                bool touches = false;
                for (int q : gj.qubits)
                    for (int p : g1.qubits)
                        if (q == p)
                            touches = true;
                if (touches) {
                    if (gj.is2Q() &&
                        (gj.op == Op::U4 || gj.op == Op::CAN))
                        break;
                    blocked = true;
                    break;
                }
            }
            if (blocked || j >= c.size())
                continue;
            Gate &g2 = c[j];
            // The exchange moves g2 before the gates between i and j;
            // it is only legal when none of them touch g2's qubits.
            for (size_t k = i + 1; k < j && !blocked; ++k)
                for (int q : c[k].qubits)
                    for (int p : g2.qubits)
                        if (q == p)
                            blocked = true;
            if (blocked)
                continue;
            // Exchange only pairs sharing exactly one qubit.
            int shared = 0;
            for (int q : g2.qubits)
                for (int p : g1.qubits)
                    if (q == p)
                        ++shared;
            if (shared != 1)
                continue;
            // Try the exchange on a copy and keep it if it lowers the
            // compactness score.
            Circuit trial = c;
            std::swap(trial[i], trial[j]);
            if (compactnessScore(trial) >= compactnessScore(c))
                continue;
            // Re-instantiate the swapped pair against the joint
            // unitary on the union qubits.
            std::vector<int> uq = g1.qubits;
            for (int q : g2.qubits)
                if (std::find(uq.begin(), uq.end(), q) == uq.end())
                    uq.push_back(q);
            std::sort(uq.begin(), uq.end());
            auto local = [&](const Gate &g) {
                std::vector<int> idx;
                for (int q : g.qubits)
                    idx.push_back(static_cast<int>(
                        std::find(uq.begin(), uq.end(), q) -
                        uq.begin()));
                return idx;
            };
            const Matrix m1 = synth::liftGate(g1.matrix(), local(g1),
                                              3);
            const Matrix m2 = synth::liftGate(g2.matrix(), local(g2),
                                              3);
            const Matrix joint = m2 * m1;   // g1 first
            // Reversed order: g2' first, then g1'.
            std::vector<synth::Slot> slots = {
                synth::Slot::free2Q(local(g2)[0], local(g2)[1]),
                synth::Slot::free2Q(local(g1)[0], local(g1)[1]),
            };
            synth::InstantiateOptions iopts;
            iopts.tol = tol;
            iopts.restarts = 2;
            iopts.maxSweeps = 200;
            synth::InstantiateResult r =
                synth::instantiate(joint, 3, slots, iopts);
            if (!r.converged)
                continue;
            Gate ng2 = Gate::u4(g2.qubits[0], g2.qubits[1],
                                r.slots[0].value);
            Gate ng1 = Gate::u4(g1.qubits[0], g1.qubits[1],
                                r.slots[1].value);
            // Keep the slot qubit order consistent: free2Q was built
            // on sorted-local indices matching g's qubit order.
            c[i] = ng2;
            c[j] = ng1;
            changed = true;
        }
        if (!changed)
            break;
    }
    return c;
}

Circuit
hierarchicalSynthesis(const Circuit &input, int m_th, double tol,
                      unsigned seed, synth::BlockMemo *memo,
                      synth::BlockPool *pool)
{
    Circuit fused = fuse2QBlocks(fuse1Q(input));
    Circuit compacted = dagCompact(fused);
    std::vector<Partition3Q> blocks = partition3Q(compacted);

    // Collect the resynthesis targets first: each solve is a pure
    // function of (target unitary, options), independent of every
    // other block, so the set can fan out across a shared BlockPool.
    // Results land in index-addressed slots and are stitched back in
    // block order below — the emitted gate stream is bit-identical
    // to the serial path at every worker count.
    struct Target
    {
        std::size_t block;
        Matrix u;
        synth::SynthesisOptions opts;
    };
    std::vector<Target> targets;
    for (std::size_t bi = 0; bi < blocks.size(); ++bi) {
        const auto &b = blocks[bi];
        if (b.count2Q <= m_th || b.qubits.size() < 3)
            continue;
        // Build the block's 8x8 unitary in local indices.
        Matrix u = Matrix::identity(8);
        auto local = [&](const Gate &g) {
            std::vector<int> idx;
            for (int q : g.qubits)
                idx.push_back(static_cast<int>(
                    std::find(b.qubits.begin(), b.qubits.end(), q) -
                    b.qubits.begin()));
            return idx;
        };
        for (const Gate &g : b.gates)
            u = synth::liftGate(g.matrix(), local(g), 3) * u;
        synth::SynthesisOptions opts;
        opts.tol = tol;
        opts.maxBlocks = std::min(7, b.count2Q - 1);
        opts.descending = true;
        opts.seed = seed;
        opts.memo = memo;
        targets.push_back(Target{bi, std::move(u), opts});
    }

    std::vector<synth::SynthesisResult> results(targets.size());
    auto solveOne = [&](std::size_t t) {
        results[t] = synth::synthesizeBlock(
            targets[t].u, blocks[targets[t].block].qubits,
            targets[t].opts);
    };
    if (pool && pool->helperThreads() > 0 && targets.size() > 1) {
        std::vector<std::function<void()>> tasks;
        tasks.reserve(targets.size());
        for (std::size_t t = 0; t < targets.size(); ++t)
            tasks.push_back([&solveOne, t] { solveOne(t); });
        pool->run(std::move(tasks));
    } else {
        for (std::size_t t = 0; t < targets.size(); ++t)
            solveOne(t);
    }

    Circuit out(input.numQubits());
    std::size_t next = 0;  // walks targets/results in block order
    for (std::size_t bi = 0; bi < blocks.size(); ++bi) {
        const auto &b = blocks[bi];
        if (next >= targets.size() || targets[next].block != bi) {
            for (const Gate &g : b.gates)
                out.add(g);
            continue;
        }
        const synth::SynthesisResult &r = results[next++];
        if (r.success &&
            static_cast<int>(r.blockCount) < b.count2Q) {
            for (const Gate &g : r.gates)
                out.add(g);
        } else {
            for (const Gate &g : b.gates)
                out.add(g);
        }
    }
    // A final same-pair fusion catches merges across block seams.
    return fuse2QBlocks(fuse1Q(out));
}

Circuit
mirrorNearIdentity(const Circuit &c, std::vector<int> &perm, double r)
{
    perm.assign(c.numQubits(), 0);
    for (int q = 0; q < c.numQubits(); ++q)
        perm[q] = q;
    // wire[q]: current physical wire holding logical qubit q.
    std::vector<int> wire = perm;
    Circuit out(c.numQubits());
    const Matrix swap_m = Gate::swap(0, 1).matrix();
    for (const Gate &g : c) {
        Gate mapped = g;
        for (size_t i = 0; i < mapped.qubits.size(); ++i)
            mapped.qubits[i] = wire[g.qubits[i]];
        if (mapped.is2Q() &&
            (mapped.op == Op::U4 || mapped.op == Op::CAN)) {
            weyl::WeylCoord coord = mapped.weylCoord();
            if (uarch::needsMirror(coord, r)) {
                // Replace with SWAP * U and track the rewiring.
                const Matrix u = swap_m * mapped.matrix();
                out.add(Gate::u4(mapped.qubits[0], mapped.qubits[1],
                                 u));
                std::swap(wire[g.qubits[0]], wire[g.qubits[1]]);
                continue;
            }
        }
        out.add(mapped);
    }
    perm = wire;
    return out;
}

Circuit
groupPauliRotations(const Circuit &c)
{
    // Stable-partition diagonal gates toward same-pair neighbours:
    // within maximal runs of mutually commuting diagonal gates
    // (RZZ / CP / RZ / Z / S / T), sort by qubit pair.
    auto isDiagonal = [](const Gate &g) {
        switch (g.op) {
          case Op::RZZ: case Op::CP: case Op::RZ: case Op::Z:
          case Op::S: case Op::Sdg: case Op::T: case Op::Tdg:
            return true;
          default:
            return false;
        }
    };
    Circuit out(c.numQubits());
    std::vector<Gate> run;
    auto flushRun = [&]() {
        std::stable_sort(run.begin(), run.end(),
                         [](const Gate &a, const Gate &b) {
                             return a.qubits < b.qubits;
                         });
        for (Gate &g : run)
            out.add(std::move(g));
        run.clear();
    };
    for (const Gate &g : c) {
        if (isDiagonal(g)) {
            run.push_back(g);
        } else {
            flushRun();
            out.add(g);
        }
    }
    flushRun();
    return out;
}

Circuit
cancelAdjacentCx(const Circuit &c)
{
    Circuit out(c.numQubits());
    // last[q]: index in out of the last gate touching q.
    std::vector<int> last(c.numQubits(), -1);
    std::vector<bool> dead;
    for (const Gate &g : c) {
        bool cancelled = false;
        if (g.op == Op::CX) {
            const int a = g.qubits[0], b = g.qubits[1];
            if (last[a] >= 0 && last[a] == last[b]) {
                const Gate &prev = out[last[a]];
                if (prev.op == Op::CX && !dead[last[a]] &&
                    prev.qubits == g.qubits) {
                    dead[last[a]] = true;
                    last[a] = -1;
                    last[b] = -1;
                    cancelled = true;
                }
            }
        }
        if (cancelled)
            continue;
        out.add(g);
        dead.push_back(false);
        for (int q : g.qubits)
            last[q] = static_cast<int>(out.size()) - 1;
    }
    Circuit filtered(c.numQubits());
    for (size_t i = 0; i < out.size(); ++i)
        if (!dead[i])
            filtered.add(out[i]);
    return filtered;
}

} // namespace reqisc::compiler
