#include "compiler/pipeline.hh"

#include <algorithm>

#include "circuit/lower.hh"
#include "compiler/passes.hh"
#include "synth/instantiate.hh"
#include "synth/synthesis.hh"
#include "synth/templates.hh"

namespace reqisc::compiler
{

circuit::Circuit
templateSynthesis(const circuit::Circuit &c)
{
    auto &lib = synth::TemplateLibrary::instance();
    Circuit out(c.numQubits());
    // Track the last emitted 2Q pair for selective assembly.
    std::pair<int, int> last_pair{-1, -1};
    auto note = [&](const Gate &g) {
        if (g.is2Q())
            last_pair = std::minmax(g.qubits[0], g.qubits[1]);
    };
    for (const Gate &g : c) {
        switch (g.op) {
          case Op::CCX:
          case Op::CCZ:
          case Op::CSWAP:
          case Op::PERES: {
            // Map the preferred concrete pair into role indices.
            std::pair<int, int> pref{-1, -1};
            if (last_pair.first >= 0) {
                int r1 = -1, r2 = -1;
                for (int i = 0; i < 3; ++i) {
                    if (g.qubits[i] == last_pair.first)
                        r1 = i;
                    if (g.qubits[i] == last_pair.second)
                        r2 = i;
                }
                if (r1 >= 0 && r2 >= 0)
                    pref = std::minmax(r1, r2);
            }
            const synth::TemplateEntry &e = lib.pick(g.op, pref);
            for (const Gate &tg : e.gates) {
                Gate mapped = tg;
                for (int &q : mapped.qubits)
                    q = g.qubits[q];
                note(mapped);
                out.add(std::move(mapped));
            }
            break;
          }
          default:
            note(g);
            out.add(g);
        }
    }
    return out;
}

namespace
{

CompileResult
finishPipeline(Circuit c, const CompileOptions &opts)
{
    CompileResult res;
    std::vector<int> perm(c.numQubits());
    for (int q = 0; q < c.numQubits(); ++q)
        perm[q] = q;
    if (opts.applyMirroring && !opts.variationalMode)
        c = mirrorNearIdentity(c, perm, opts.mirrorThreshold);
    if (opts.variationalMode) {
        // Fixed-basis re-expression: one calibrated 2Q gate, all
        // variational freedom in the 1Q layers.
        Circuit fixed(c.numQubits());
        for (const Gate &g : c) {
            if (g.is2Q() && (g.op == Op::U4 || g.op == Op::CAN)) {
                auto gates = synth::su4ToFixedBasis(
                    g.qubits[0], g.qubits[1], g.matrix(),
                    opts.variationalBasis);
                if (!gates.empty()) {
                    for (Gate &e : gates)
                        fixed.add(std::move(e));
                    continue;
                }
            }
            fixed.add(g);
        }
        c = std::move(fixed);
        res.circuit = std::move(c);
        res.finalPermutation = std::move(perm);
        return res;
    }
    res.circuit = circuit::expandToCanU3(c);
    res.finalPermutation = std::move(perm);
    return res;
}

} // namespace

CompileResult
reqiscEff(const circuit::Circuit &input, const CompileOptions &opts)
{
    Circuit c = circuit::decomposeMcx(input);
    c = templateSynthesis(c);
    c = groupPauliRotations(c);
    c = fuse2QBlocks(fuse1Q(c));
    return finishPipeline(std::move(c), opts);
}

CompileResult
reqiscFull(const circuit::Circuit &input, const CompileOptions &opts)
{
    Circuit c = circuit::decomposeMcx(input);
    c = templateSynthesis(c);
    c = groupPauliRotations(c);
    c = fuse2QBlocks(fuse1Q(c));
    if (opts.dagCompacting) {
        c = hierarchicalSynthesis(c, opts.mTh, opts.synthTol,
                                  opts.seed, opts.synthMemo);
    } else {
        // Ablation variant (ReQISC-NC): skip the compacting pass but
        // keep partition + approximate synthesis.
        std::vector<Partition3Q> blocks = partition3Q(c);
        Circuit nc(input.numQubits());
        for (const auto &b : blocks)
            for (const Gate &g : b.gates)
                nc.add(g);
        // Reuse hierarchicalSynthesis' block resynthesis by calling
        // it with compacting already skipped: emulate by synthesizing
        // each block here.
        c = std::move(nc);
        Circuit out(input.numQubits());
        for (const auto &b : partition3Q(c)) {
            if (b.count2Q <= opts.mTh || b.qubits.size() < 3) {
                for (const Gate &g : b.gates)
                    out.add(g);
                continue;
            }
            Matrix u = Matrix::identity(8);
            auto local = [&](const Gate &g) {
                std::vector<int> idx;
                for (int q : g.qubits)
                    idx.push_back(static_cast<int>(
                        std::find(b.qubits.begin(), b.qubits.end(),
                                  q) - b.qubits.begin()));
                return idx;
            };
            for (const Gate &g : b.gates)
                u = synth::liftGate(g.matrix(), local(g), 3) * u;
            synth::SynthesisOptions sopts;
            sopts.tol = opts.synthTol;
            sopts.maxBlocks = std::min(7, b.count2Q - 1);
            sopts.descending = true;
            sopts.seed = opts.seed;
            sopts.memo = opts.synthMemo;
            synth::SynthesisResult r =
                synth::synthesizeBlock(u, b.qubits, sopts);
            if (r.success &&
                static_cast<int>(r.blockCount) < b.count2Q) {
                for (const Gate &g : r.gates)
                    out.add(g);
            } else {
                for (const Gate &g : b.gates)
                    out.add(g);
            }
        }
        c = fuse2QBlocks(fuse1Q(out));
    }
    return finishPipeline(std::move(c), opts);
}

} // namespace reqisc::compiler
