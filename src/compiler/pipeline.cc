#include "compiler/pipeline.hh"

#include <algorithm>

#include "compiler/pass_manager.hh"
#include "compiler/passes.hh"
#include "synth/templates.hh"

namespace reqisc::compiler
{

circuit::Circuit
templateSynthesis(const circuit::Circuit &c)
{
    auto &lib = synth::TemplateLibrary::instance();
    Circuit out(c.numQubits());
    // Track the last emitted 2Q pair for selective assembly.
    std::pair<int, int> last_pair{-1, -1};
    auto note = [&](const Gate &g) {
        if (g.is2Q())
            last_pair = std::minmax(g.qubits[0], g.qubits[1]);
    };
    for (const Gate &g : c) {
        switch (g.op) {
          case Op::CCX:
          case Op::CCZ:
          case Op::CSWAP:
          case Op::PERES: {
            // Map the preferred concrete pair into role indices.
            std::pair<int, int> pref{-1, -1};
            if (last_pair.first >= 0) {
                int r1 = -1, r2 = -1;
                for (int i = 0; i < 3; ++i) {
                    if (g.qubits[i] == last_pair.first)
                        r1 = i;
                    if (g.qubits[i] == last_pair.second)
                        r2 = i;
                }
                if (r1 >= 0 && r2 >= 0)
                    pref = std::minmax(r1, r2);
            }
            const synth::TemplateEntry &e = lib.pick(g.op, pref);
            for (const Gate &tg : e.gates) {
                Gate mapped = tg;
                for (int &q : mapped.qubits)
                    q = g.qubits[q];
                note(mapped);
                out.add(std::move(mapped));
            }
            break;
          }
          default:
            note(g);
            out.add(g);
        }
    }
    return out;
}

namespace
{

/**
 * Both named pipelines are one code path now: expand the named
 * compile-stage pass list under the options and run it over a fresh
 * unit. The wrappers keep the historical CompileResult shape; the
 * per-pass trace is available through the CompilationUnit /
 * service::JobResult route.
 */
CompileResult
runNamedPipeline(PipelineSpec::Kind kind,
                 const circuit::Circuit &input,
                 const CompileOptions &opts)
{
    CompilationUnit unit = CompilationUnit::forInput(input, opts);
    PassManager pm;
    std::string error;
    PipelineSpec spec;
    spec.kind = kind;
    buildPipeline(spec, opts, pm, error);  // named lists never fail
    pm.run(unit);
    CompileResult res;
    res.circuit = std::move(unit.circuit);
    res.finalPermutation = std::move(unit.finalPermutation);
    return res;
}

} // namespace

CompileResult
reqiscEff(const circuit::Circuit &input, const CompileOptions &opts)
{
    return runNamedPipeline(PipelineSpec::Kind::Eff, input, opts);
}

CompileResult
reqiscFull(const circuit::Circuit &input, const CompileOptions &opts)
{
    return runNamedPipeline(PipelineSpec::Kind::Full, input, opts);
}

} // namespace reqisc::compiler
