/**
 * @file
 * Local circuit-optimization passes shared by the ReQISC pipelines
 * and the baseline compilers.
 *
 * All passes are pure Circuit -> Circuit functions preserving the
 * overall unitary up to global phase (mirrorNearIdentity additionally
 * tracks an output-wire permutation). The load-bearing ones: fuse1Q /
 * fuse2QBlocks (greedy fusion into U4 blocks), cancelAdjacentCx,
 * groupPauliRotations (phase-gadget grouping), partition3Q (DAG-order
 * 3-qubit blocking), dagCompact (commutation-aware compaction,
 * Section 5.2.1) and hierarchicalSynthesis (compacting + partition +
 * approximate re-synthesis, the ReQISC-Full extra pass).
 */

#ifndef REQISC_COMPILER_PASSES_HH
#define REQISC_COMPILER_PASSES_HH

#include <vector>

#include "circuit/circuit.hh"
#include "synth/pool.hh"
#include "synth/synthesis.hh"

namespace reqisc::compiler
{

using circuit::Circuit;
using circuit::Gate;
using circuit::Op;
using qmath::Matrix;

/** Merge adjacent one-qubit gates into single U3s, drop identities. */
Circuit fuse1Q(const Circuit &c);

/**
 * Fuse maximal same-pair runs of 2Q gates (with interleaved 1Q gates
 * on the pair) into opaque U4 blocks — the first tier of hierarchical
 * synthesis. Gates on >= 3 qubits act as barriers on their qubits.
 */
Circuit fuse2QBlocks(const Circuit &c);

/** A topological 3-qubit partition block. */
struct Partition3Q
{
    std::vector<int> qubits;       //!< 1..3 distinct qubits
    std::vector<Gate> gates;       //!< block contents, in order
    int count2Q = 0;
};

/**
 * Greedy linear-time partitioning of a {U4/CAN/1Q} circuit into
 * blocks spanning at most three qubits (second tier of hierarchical
 * synthesis). Emitted in a dependency-respecting order.
 */
std::vector<Partition3Q> partition3Q(const Circuit &c);

/** Reassemble partition blocks into a circuit. */
Circuit blocksToCircuit(const std::vector<Partition3Q> &blocks,
                        int num_qubits);

/**
 * Compactness score of a 2Q-gate sequence: the sum over consecutive
 * multi-qubit gates of 0 (same pair), 1 (pairs sharing a qubit) or 2
 * (disjoint pairs). Lower = more fusable / partition-friendly.
 */
int compactnessScore(const Circuit &c);

/**
 * DAG compacting (Section 5.1.3): exchange approximately commuting
 * adjacent SU(4)s when doing so lowers the compactness score, using
 * numeric re-instantiation of the swapped pair (parameters change,
 * Figure 8).
 *
 * @param c circuit over {U4/CAN/1Q}
 * @param tol accepted infidelity for an exchange
 */
Circuit dagCompact(const Circuit &c, double tol = 1e-9);

/**
 * Approximate synthesis over the 3Q partition: blocks with more than
 * `m_th` 2Q gates are re-synthesized into fewer SU(4)s when possible
 * (Section 5.1.2, threshold m_th = 4). `seed` drives the numeric
 * instantiation (deterministic per call); `memo` optionally shares
 * block-synthesis results across calls/circuits (service layer).
 *
 * `pool` optionally fans the independent block solves out across a
 * shared synth::BlockPool. Results are collected into per-block
 * slots and emitted in block order, so the output gate stream is
 * bit-identical to the serial path at every worker count.
 */
Circuit hierarchicalSynthesis(const Circuit &c, int m_th = 4,
                              double tol = 1e-9,
                              unsigned seed = 777,
                              synth::BlockMemo *memo = nullptr,
                              synth::BlockPool *pool = nullptr);

/**
 * Near-identity gate mirroring (Section 4.3). Every 2Q gate whose
 * Weyl coordinate has L1 norm below `r` is composed with SWAP (its
 * mirror) and the rewiring is tracked in the returned permutation:
 * logical qubit q of the input ends on wire perm[q] of the output.
 */
Circuit mirrorNearIdentity(const Circuit &c, std::vector<int> &perm,
                           double r = 0.1);

/**
 * Commutation-aware grouping of two-qubit Pauli rotations (the
 * PHOENIX-style high-level pass for Type-II programs): diagonal
 * rotations (RZZ/CP/RZ) commute freely and are bubbled toward
 * same-pair neighbours so the 2Q fuser can merge them.
 */
Circuit groupPauliRotations(const Circuit &c);

/** Cancel adjacent mutually-inverse CX pairs (baseline peephole). */
Circuit cancelAdjacentCx(const Circuit &c);

} // namespace reqisc::compiler

#endif // REQISC_COMPILER_PASSES_HH
