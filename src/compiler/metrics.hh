/**
 * @file
 * Evaluation metrics (Section 6.1.1): #2Q, Depth2Q, pulse duration
 * and distinct-SU(4) calibration count.
 *
 * Durations are expressed in 1/g units (g = canonical coupling
 * strength), so the conventional CNOT pulse is pi/sqrt(2) ~ 2.221.
 * Two duration models are provided: the conventional fixed-pulse
 * model for CNOT-ISA baselines and the genAshN optimal-duration
 * model for the SU(4) ISA; both are plugged into
 * Circuit::duration(model) as per-gate cost functions.
 */

#ifndef REQISC_COMPILER_METRICS_HH
#define REQISC_COMPILER_METRICS_HH

#include <functional>

#include "circuit/circuit.hh"
#include "uarch/coupling.hh"

namespace reqisc::compiler
{

/** Circuit-level evaluation metrics. */
struct Metrics
{
    int count2Q = 0;
    int depth2Q = 0;
    double duration = 0.0;   //!< critical-path pulse time (1/g units)
    int distinctSU4 = 0;     //!< calibration-overhead proxy
};

/**
 * Per-gate pulse duration model.
 *
 * - Conventional: every CX/CZ costs pi/(sqrt 2 g) (the baseline pulse
 *   on XY-coupled transmons); other 2Q gates cost their minimal CX
 *   count times that (3 for SWAP etc.).
 * - ReQISC: every 2Q gate costs the genAshN optimal duration of its
 *   Weyl coordinate under the given coupling.
 */
std::function<double(const circuit::Gate &)>
conventionalDurationModel(double g = 1.0);

std::function<double(const circuit::Gate &)>
reqiscDurationModel(const uarch::Coupling &cpl);

/** Evaluate all metrics with the given duration model. */
Metrics evaluate(const circuit::Circuit &c,
                 const std::function<double(const circuit::Gate &)>
                     &duration_model);

} // namespace reqisc::compiler

#endif // REQISC_COMPILER_METRICS_HH
