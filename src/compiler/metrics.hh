/**
 * @file
 * Evaluation metrics (Section 6.1.1): #2Q, Depth2Q, pulse duration
 * and distinct-SU(4) calibration count.
 *
 * Durations are expressed in 1/g units (g = canonical coupling
 * strength), so the conventional CNOT pulse is pi/sqrt(2) ~ 2.221.
 * Two duration models are provided: the conventional fixed-pulse
 * model for CNOT-ISA baselines and the genAshN optimal-duration
 * model for the SU(4) ISA; both are plugged into
 * Circuit::duration(model) as per-gate cost functions.
 */

#ifndef REQISC_COMPILER_METRICS_HH
#define REQISC_COMPILER_METRICS_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "circuit/circuit.hh"
#include "uarch/coupling.hh"

namespace reqisc::compiler
{

/**
 * Memoization-cache counters (filled by the service layer when a
 * compile ran against shared caches; all-zero for standalone runs).
 *
 * `hits + misses` per compile is deterministic (the number of memo
 * consultations the pipeline makes), but the hit/miss split depends
 * on what other jobs populated the cache first — consumers comparing
 * runs for determinism should compare the compiled artifacts, not
 * the split.
 */
struct CacheCounters
{
    std::int64_t hits = 0;
    std::int64_t misses = 0;
    std::int64_t evictions = 0;
    double solveSeconds = 0.0;  //!< time spent on the misses

    double hitRate() const
    {
        const std::int64_t total = hits + misses;
        return total ? static_cast<double>(hits) / total : 0.0;
    }
};

/**
 * Timed-schedule report, filled by the isa layer when a compiled
 * circuit was lowered into an executable RQISA program (all-zero with
 * `scheduled == false` otherwise). Times are in 1/g units under the
 * program's isa::DurationModel — unlike `Metrics::duration`, the
 * makespan includes one-qubit gate (and, when requested, measurement)
 * durations, because the program is what the hardware executes.
 */
struct ScheduleStats
{
    bool scheduled = false;
    double makespan = 0.0;        //!< end of the last instruction
    double serialDuration = 0.0;  //!< sum of instruction durations
    /** serialDuration / makespan: average instructions in flight. */
    double parallelism = 0.0;
    /**
     * Total idle time summed over qubits, counting only gaps between
     * a qubit's first and last instruction (decoherence-relevant
     * windows; qubits parked in |0> before first use don't count).
     */
    double idleTime = 0.0;
    int instructions = 0;
};

/**
 * Backend-aware evaluation report for jobs compiled against a
 * concrete chip (src/backend): the compiled circuit is routed onto
 * the chip (`used` + swap counts, set by the route pass) and scored
 * under the per-edge reconfigured gate set vs the best uniform
 * (fixed-ISA) one (fidelities, filled by the reconfigure pass —
 * zero in custom pipelines that route without reconfiguring).
 */
struct BackendStats
{
    bool used = false;  //!< a route pass ran against a chip
    int routedSwaps = 0;       //!< SWAPs SABRE inserted
    int routedSwapsAbsorbed = 0;  //!< SWAPs mirrored away
    /** backend::estimateFidelity under the per-edge table. */
    double fidelityReconfigured = 0.0;
    /** Same circuit under the best uniform gate set. */
    double fidelityUniform = 0.0;
};

/**
 * Per-pass instrumentation record, appended by the PassManager for
 * every pass it runs (src/compiler/pass_manager.hh). Wall time plus
 * the artifact deltas the paper's stage analysis cares about: gate
 * and #2Q counts of the active artifact (the routed circuit once a
 * routing pass produced one, the logical circuit before) immediately
 * before and after the pass, and the scheduled makespan known after
 * the pass (0 until a schedule pass has run).
 *
 * `seconds` is the only nondeterministic field; everything else is a
 * pure function of (input, options, pass list).
 */
struct PassTrace
{
    std::string pass;        //!< registry token ("fuse", "schedule", ...)
    double seconds = 0.0;    //!< wall time spent inside the pass
    int gatesBefore = 0;
    int gatesAfter = 0;
    int count2QBefore = 0;
    int count2QAfter = 0;
    double makespanAfter = 0.0;  //!< Metrics::schedule.makespan so far
    /**
     * Free-form pass annotation (CompilationUnit::passNote), e.g.
     * "workers=4" from hier-synth when block resynthesis ran on a
     * task pool. Purely informational: never part of the determinism
     * contract's compared artifacts.
     */
    std::string note;
};

/** Circuit-level evaluation metrics. */
struct Metrics
{
    int count2Q = 0;
    int depth2Q = 0;
    double duration = 0.0;   //!< critical-path pulse time (1/g units)
    int distinctSU4 = 0;     //!< calibration-overhead proxy
    CacheCounters synthCache;  //!< block-resynthesis memo activity
    CacheCounters pulseCache;  //!< pulse-solve memo activity
    ScheduleStats schedule;    //!< filled when the job was scheduled
    BackendStats backend;      //!< filled when compiled to a chip
    /** One entry per executed pass, in execution order. */
    std::vector<PassTrace> passes;
};

/** One pass's roll-up over a batch of compiles. */
struct PassAggregate
{
    std::string pass;     //!< PassTrace::pass token
    int runs = 0;         //!< times the pass executed
    double seconds = 0.0; //!< summed wall time
    /** Summed #2Q change (count2QAfter - count2QBefore). */
    long long delta2Q = 0;
};

/**
 * Roll up per-pass traces across many compiles, in first-execution
 * order — the one aggregation both `reqisc-compile --stats` and the
 * `bench_service --json` perf-guard summary print, kept here so the
 * two never diverge.
 */
std::vector<PassAggregate>
aggregatePassTraces(const std::vector<const Metrics *> &jobs);

/**
 * Per-gate pulse duration model.
 *
 * - Conventional: every CX/CZ costs pi/(sqrt 2 g) (the baseline pulse
 *   on XY-coupled transmons); other 2Q gates cost their minimal CX
 *   count times that (3 for SWAP etc.).
 * - ReQISC: every 2Q gate costs the genAshN optimal duration of its
 *   Weyl coordinate under the given coupling.
 */
std::function<double(const circuit::Gate &)>
conventionalDurationModel(double g = 1.0);

std::function<double(const circuit::Gate &)>
reqiscDurationModel(const uarch::Coupling &cpl);

/** Evaluate all metrics with the given duration model. */
Metrics evaluate(const circuit::Circuit &c,
                 const std::function<double(const circuit::Gate &)>
                     &duration_model);

} // namespace reqisc::compiler

#endif // REQISC_COMPILER_METRICS_HH
