#include "compiler/pass_manager.hh"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <map>
#include <numeric>
#include <stdexcept>
#include <thread>

#include "circuit/lower.hh"
#include "compiler/passes.hh"
#include "obs/span.hh"
#include "route/sabre.hh"
#include "synth/instantiate.hh"
#include "synth/synthesis.hh"

namespace reqisc::compiler
{

namespace
{

/**
 * Fault-injection hook for the observability pipeline:
 * REQISC_PASS_DELAY_MS="pass=ms[,pass=ms...]" sleeps inside the
 * named passes' spans, so an artificial regression lands in
 * PassTrace, the exported trace and the bench --json output exactly
 * like a real slowdown would — tools/obsreport's attribution is
 * CI-tested against it. Parsed once; malformed items are ignored.
 */
const std::map<std::string, int> &
passDelaysMs()
{
    static const std::map<std::string, int> delays = [] {
        std::map<std::string, int> m;
        const char *env = std::getenv("REQISC_PASS_DELAY_MS");
        if (env == nullptr)
            return m;
        const std::string text(env);
        std::size_t start = 0;
        while (start < text.size()) {
            std::size_t comma = text.find(',', start);
            if (comma == std::string::npos)
                comma = text.size();
            const std::string item =
                text.substr(start, comma - start);
            const std::size_t eq = item.find('=');
            if (eq != std::string::npos && eq > 0) {
                const int ms =
                    std::atoi(item.c_str() + eq + 1);
                if (ms > 0)
                    m[item.substr(0, eq)] = ms;
            }
            start = comma + 1;
        }
        return m;
    }();
    return delays;
}

} // namespace

CompilationUnit
CompilationUnit::forInput(circuit::Circuit in, CompileOptions opts)
{
    CompilationUnit u;
    u.circuit = std::move(in);
    u.options = opts;
    u.finalPermutation.resize(u.circuit.numQubits());
    std::iota(u.finalPermutation.begin(), u.finalPermutation.end(),
              0);
    return u;
}

// ---- PassManager -------------------------------------------------------

void
PassManager::add(std::unique_ptr<Pass> pass)
{
    passes_.push_back(std::move(pass));
}

std::vector<std::string>
PassManager::passNames() const
{
    std::vector<std::string> names;
    names.reserve(passes_.size());
    for (const auto &p : passes_)
        names.push_back(p->name());
    return names;
}

void
PassManager::run(CompilationUnit &unit) const
{
    for (const auto &pass : passes_) {
        PassTrace trace;
        trace.pass = pass->name();
        trace.gatesBefore =
            static_cast<int>(unit.active().size());
        trace.count2QBefore = unit.active().count2Q();
        unit.passNote.clear();
        // One Span is both the PassTrace stopwatch and the exported
        // trace event, so the two can never disagree.
        obs::Span span("pass:" + trace.pass);
        pass->run(unit);
        if (!passDelaysMs().empty()) {
            const auto it = passDelaysMs().find(trace.pass);
            if (it != passDelaysMs().end())
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(it->second));
        }
        trace.seconds = span.stop();
        trace.note = std::move(unit.passNote);
        unit.passNote.clear();
        trace.gatesAfter = static_cast<int>(unit.active().size());
        trace.count2QAfter = unit.active().count2Q();
        trace.makespanAfter = unit.metrics.schedule.makespan;
        unit.metrics.passes.push_back(std::move(trace));
        if (unit.onPass)
            unit.onPass(unit.metrics.passes.back());
    }
}

// ---- The concrete passes -----------------------------------------------

namespace
{

using circuit::Circuit;
using circuit::Gate;
using circuit::Op;
using qmath::Matrix;

/** Program-aware template synthesis (incl. the MCX pre-lowering). */
class TemplateSynthPass final : public Pass
{
  public:
    std::string name() const override { return "synth"; }
    void run(CompilationUnit &u) override
    {
        u.circuit =
            templateSynthesis(circuit::decomposeMcx(u.circuit));
    }
};

class GroupPauliPass final : public Pass
{
  public:
    std::string name() const override { return "group-pauli"; }
    void run(CompilationUnit &u) override
    {
        u.circuit = groupPauliRotations(u.circuit);
    }
};

class FusePass final : public Pass
{
  public:
    std::string name() const override { return "fuse"; }
    void run(CompilationUnit &u) override
    {
        u.circuit = fuse2QBlocks(fuse1Q(u.circuit));
    }
};

class DagCompactPass final : public Pass
{
  public:
    std::string name() const override { return "dag-compact"; }
    void run(CompilationUnit &u) override
    {
        u.circuit = dagCompact(u.circuit);
    }
};

/**
 * Hierarchical synthesis (ReQISC-Full's extra stage). The "nc"
 * variant is the Fig-14 ablation: partition + approximate
 * resynthesis with the DAG-compacting step skipped.
 */
class HierarchicalSynthPass final : public Pass
{
  public:
    explicit HierarchicalSynthPass(bool compacting)
        : compacting_(compacting)
    {
    }

    std::string name() const override
    {
        return compacting_ ? "hier-synth" : "hier-synth:nc";
    }

    void run(CompilationUnit &u) override
    {
        const CompileOptions &opts = u.options;
        if (compacting_) {
            u.circuit = hierarchicalSynthesis(
                u.circuit, opts.mTh, opts.synthTol, opts.seed,
                opts.synthMemo, opts.synthPool);
            u.passNote =
                "workers=" +
                std::to_string(opts.synthPool
                                   ? opts.synthPool->workers()
                                   : 1);
            return;
        }
        // Ablation variant (ReQISC-NC): skip the compacting pass but
        // keep partition + approximate synthesis.
        Circuit c = std::move(u.circuit);
        std::vector<Partition3Q> blocks = partition3Q(c);
        Circuit nc(c.numQubits());
        for (const auto &b : blocks)
            for (const Gate &g : b.gates)
                nc.add(g);
        c = std::move(nc);
        Circuit out(c.numQubits());
        for (const auto &b : partition3Q(c)) {
            if (b.count2Q <= opts.mTh || b.qubits.size() < 3) {
                for (const Gate &g : b.gates)
                    out.add(g);
                continue;
            }
            Matrix unitary = Matrix::identity(8);
            auto local = [&](const Gate &g) {
                std::vector<int> idx;
                for (int q : g.qubits)
                    idx.push_back(static_cast<int>(
                        std::find(b.qubits.begin(), b.qubits.end(),
                                  q) -
                        b.qubits.begin()));
                return idx;
            };
            for (const Gate &g : b.gates)
                unitary =
                    synth::liftGate(g.matrix(), local(g), 3) *
                    unitary;
            synth::SynthesisOptions sopts;
            sopts.tol = opts.synthTol;
            sopts.maxBlocks = std::min(7, b.count2Q - 1);
            sopts.descending = true;
            sopts.seed = opts.seed;
            sopts.memo = opts.synthMemo;
            synth::SynthesisResult r =
                synth::synthesizeBlock(unitary, b.qubits, sopts);
            if (r.success &&
                static_cast<int>(r.blockCount) < b.count2Q) {
                for (const Gate &g : r.gates)
                    out.add(g);
            } else {
                for (const Gate &g : b.gates)
                    out.add(g);
            }
        }
        u.circuit = fuse2QBlocks(fuse1Q(out));
    }

  private:
    bool compacting_;
};

class MirrorPass final : public Pass
{
  public:
    std::string name() const override { return "mirror"; }
    void run(CompilationUnit &u) override
    {
        u.circuit = mirrorNearIdentity(u.circuit,
                                       u.finalPermutation,
                                       u.options.mirrorThreshold);
    }
};

/** Variational fixed-basis re-expression (Section 5.3.1). */
class VariationalRebasePass final : public Pass
{
  public:
    std::string name() const override { return "rebase"; }
    void run(CompilationUnit &u) override
    {
        Circuit fixed(u.circuit.numQubits());
        for (const Gate &g : u.circuit) {
            if (g.is2Q() && (g.op == Op::U4 || g.op == Op::CAN)) {
                auto gates = synth::su4ToFixedBasis(
                    g.qubits[0], g.qubits[1], g.matrix(),
                    u.options.variationalBasis);
                if (!gates.empty()) {
                    for (Gate &e : gates)
                        fixed.add(std::move(e));
                    continue;
                }
            }
            fixed.add(g);
        }
        u.circuit = std::move(fixed);
    }
};

class LowerPass final : public Pass
{
  public:
    std::string name() const override { return "lower"; }
    void run(CompilationUnit &u) override
    {
        u.circuit = circuit::expandToCanU3(u.circuit);
    }
};

/**
 * Mirroring-SABRE onto the backend topology; SWAPs are fused into
 * Can gates (SU(4)-ISA convention: one SWAP = one Can). No-op
 * without a backend (there is no topology to route onto).
 */
class SabreRoutePass final : public Pass
{
  public:
    std::string name() const override { return "route"; }
    void run(CompilationUnit &u) override
    {
        if (!u.backend)
            return;
        route::RouteOptions ropts;
        ropts.mirroring = true;
        ropts.seed = u.options.seed;
        const route::RouteResult rr = route::sabreRoute(
            u.circuit, u.backend->topology(), ropts);
        Circuit phys(rr.circuit.numQubits());
        for (const Gate &g : rr.circuit) {
            if (g.op == Op::SWAP)
                phys.add(Gate::can(g.qubits[0], g.qubits[1],
                                   weyl::WeylCoord::swap()));
            else
                phys.add(g);
        }
        u.metrics.backend.used = true;
        u.metrics.backend.routedSwaps = rr.swapsInserted;
        u.metrics.backend.routedSwapsAbsorbed = rr.swapsAbsorbed;
        // Logical q -> compiled wire -> physical wire.
        u.finalLayout.resize(u.finalPermutation.size());
        for (std::size_t q = 0; q < u.finalPermutation.size(); ++q)
            u.finalLayout[q] = rr.finalLayout[static_cast<
                std::size_t>(u.finalPermutation[q])];
        u.routed = std::move(phys);
        u.hasRouted = true;
    }
};

/**
 * Score the routed circuit under the per-edge reconfigured gate-set
 * table vs the best uniform one. No-op until a backend and a routed
 * artifact exist.
 */
class ReconfigurePass final : public Pass
{
  public:
    std::string name() const override { return "reconfigure"; }
    void run(CompilationUnit &u) override
    {
        if (!u.backend || !u.reconfig || !u.hasRouted)
            return;
        u.metrics.backend.fidelityReconfigured =
            backend::estimateFidelity(u.routed, *u.backend,
                                      u.reconfig->table);
        u.metrics.backend.fidelityUniform =
            backend::estimateFidelity(u.routed, *u.backend,
                                      u.reconfig->uniformTable);
    }
};

/**
 * Evaluate the circuit-level metrics (#2Q, Depth2Q, duration,
 * distinct-SU(4)) of the active artifact: the routed circuit under
 * the backend's per-edge duration model once it exists, the logical
 * circuit under the genAshN model of `coupling` otherwise.
 */
class EstimateFidelityPass final : public Pass
{
  public:
    std::string name() const override { return "estimate"; }
    void run(CompilationUnit &u) override
    {
        Metrics m;
        if (u.backend && u.hasRouted) {
            const isa::DurationModel durations =
                u.backend->durationModel();
            m = evaluate(u.routed,
                         [&durations](const Gate &g) {
                             return g.numQubits() < 2
                                        ? 0.0
                                        : durations.gate(g);
                         });
        } else {
            m = evaluate(u.circuit,
                         reqiscDurationModel(u.coupling));
        }
        u.metrics.count2Q = m.count2Q;
        u.metrics.depth2Q = m.depth2Q;
        u.metrics.duration = m.duration;
        u.metrics.distinctSU4 = m.distinctSU4;
    }
};

/** Lower into a timed RQISA program (isa::schedule). */
class SchedulePass final : public Pass
{
  public:
    explicit SchedulePass(isa::Strategy strategy, bool override_strat)
        : strategy_(strategy), override_(override_strat)
    {
    }

    std::string name() const override
    {
        return override_
                   ? std::string("schedule:") +
                         isa::strategyName(strategy_)
                   : "schedule";
    }

    void run(CompilationUnit &u) override
    {
        isa::ScheduleOptions sopts = u.scheduleOptions;
        if (override_)
            sopts.strategy = strategy_;
        if (u.backend && u.hasRouted) {
            sopts.durations = u.backend->durationModel();
            sopts.topology = &u.backend->topology();
            u.program = isa::schedule(u.routed, sopts);
        } else {
            sopts.durations.coupling = u.coupling;
            u.program = isa::schedule(u.circuit, sopts);
        }
        u.metrics.schedule = u.program.stats();
        u.hasProgram = true;
    }

  private:
    isa::Strategy strategy_;
    bool override_;
};

} // namespace

// ---- Registry and spec parsing -----------------------------------------

const std::vector<PassInfo> &
passRegistry()
{
    static const std::vector<PassInfo> registry = {
        {"synth",
         "program-aware template synthesis (incl. MCX lowering)",
         {}},
        {"group-pauli",
         "commutation-aware 2Q Pauli-rotation grouping",
         {}},
        {"fuse", "greedy 1Q fusion + same-pair SU(4) block fusion",
         {}},
        {"dag-compact",
         "commutation-aware DAG compaction (Section 5.1.3)",
         {}},
        {"hier-synth",
         "DAG compacting + 3Q partition + approximate resynthesis; "
         ":nc skips the compacting step (Fig 14 ablation)",
         {"nc"}},
        {"mirror",
         "near-identity gate mirroring with tracked permutation",
         {}},
        {"rebase",
         "variational fixed-basis re-expression (Section 5.3.1)",
         {}},
        {"lower", "expand to the {Can, U3} normal form", {}},
        {"route",
         "mirroring-SABRE onto the backend topology (SWAP -> Can); "
         "no-op without a backend",
         {}},
        {"reconfigure",
         "score routed circuit: per-edge reconfigured vs uniform "
         "gate set; no-op until routed",
         {}},
        {"schedule",
         "lower into a timed RQISA program; :serial/:asap/:alap "
         "overrides the strategy",
         {"serial", "asap", "alap"}},
        {"estimate",
         "evaluate #2Q / depth / duration / distinct-SU(4) of the "
         "active artifact",
         {}},
    };
    return registry;
}

namespace
{

/** Split "name[:arg]"; find the registry row; validate the arg. */
const PassInfo *
resolveToken(const std::string &token, std::string &name,
             std::string &arg, std::string &error)
{
    const auto colon = token.find(':');
    name = token.substr(0, colon);
    arg = colon == std::string::npos ? ""
                                     : token.substr(colon + 1);
    if (colon != std::string::npos && arg.empty()) {
        // "hier-synth:" must not silently mean "hier-synth": a
        // dangling colon is almost always a truncated argument.
        error = "empty argument in pass token '" + token + "'";
        return nullptr;
    }
    for (const PassInfo &info : passRegistry()) {
        if (info.token != name)
            continue;
        if (!arg.empty() &&
            std::find(info.args.begin(), info.args.end(), arg) ==
                info.args.end()) {
            error = "pass '" + name +
                    "' does not accept argument '" + arg + "'";
            return nullptr;
        }
        return &info;
    }
    error = "unknown pass '" + name + "'";
    return nullptr;
}

} // namespace

std::unique_ptr<Pass>
makePass(const std::string &token, std::string &error)
{
    std::string name, arg;
    if (!resolveToken(token, name, arg, error))
        return nullptr;
    if (name == "synth")
        return std::make_unique<TemplateSynthPass>();
    if (name == "group-pauli")
        return std::make_unique<GroupPauliPass>();
    if (name == "fuse")
        return std::make_unique<FusePass>();
    if (name == "dag-compact")
        return std::make_unique<DagCompactPass>();
    if (name == "hier-synth")
        return std::make_unique<HierarchicalSynthPass>(
            arg != "nc");
    if (name == "mirror")
        return std::make_unique<MirrorPass>();
    if (name == "rebase")
        return std::make_unique<VariationalRebasePass>();
    if (name == "lower")
        return std::make_unique<LowerPass>();
    if (name == "route")
        return std::make_unique<SabreRoutePass>();
    if (name == "reconfigure")
        return std::make_unique<ReconfigurePass>();
    if (name == "schedule") {
        isa::Strategy strat = isa::Strategy::Asap;
        const bool override_strat = !arg.empty();
        if (override_strat)
            isa::strategyFromName(arg, strat);  // arg validated above
        return std::make_unique<SchedulePass>(strat,
                                              override_strat);
    }
    if (name == "estimate")
        return std::make_unique<EstimateFidelityPass>();
    error = "unknown pass '" + name + "'";  // unreachable
    return nullptr;
}

bool
parsePipelineSpec(const std::string &text, PipelineSpec &out,
                  std::string &error)
{
    if (text == "eff") {
        out.kind = PipelineSpec::Kind::Eff;
        out.passes.clear();
        return true;
    }
    if (text == "full") {
        out.kind = PipelineSpec::Kind::Full;
        out.passes.clear();
        return true;
    }
    const std::string prefix = "custom:";
    if (text.compare(0, prefix.size(), prefix) != 0) {
        error = "unknown pipeline '" + text +
                "' (expected eff, full or custom:pass,pass,...)";
        return false;
    }
    const std::string list = text.substr(prefix.size());
    std::vector<std::string> tokens;
    std::size_t start = 0;
    while (start <= list.size()) {
        const std::size_t comma = list.find(',', start);
        const std::string token =
            list.substr(start, comma == std::string::npos
                                   ? std::string::npos
                                   : comma - start);
        if (token.empty()) {
            error = "empty pass name in pipeline spec '" + text +
                    "'";
            return false;
        }
        std::string name, arg;
        if (!resolveToken(token, name, arg, error))
            return false;
        tokens.push_back(token);
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    if (tokens.empty()) {
        error = "empty pass list in pipeline spec '" + text + "'";
        return false;
    }
    out.kind = PipelineSpec::Kind::Custom;
    out.passes = std::move(tokens);
    return true;
}

std::vector<std::string>
compilePassList(PipelineSpec::Kind kind, const CompileOptions &opts)
{
    std::vector<std::string> list = {"synth", "group-pauli",
                                     "fuse"};
    if (kind == PipelineSpec::Kind::Full)
        list.push_back(opts.dagCompacting ? "hier-synth"
                                          : "hier-synth:nc");
    if (opts.applyMirroring && !opts.variationalMode)
        list.push_back("mirror");
    list.push_back(opts.variationalMode ? "rebase" : "lower");
    return list;
}

bool
buildPipeline(const PipelineSpec &spec, const CompileOptions &opts,
              PassManager &pm, std::string &error)
{
    const std::vector<std::string> tokens =
        spec.kind == PipelineSpec::Kind::Custom
            ? spec.passes
            : compilePassList(spec.kind, opts);
    for (const std::string &token : tokens) {
        std::unique_ptr<Pass> pass = makePass(token, error);
        if (!pass)
            return false;
        pm.add(std::move(pass));
    }
    return true;
}

} // namespace reqisc::compiler
