/**
 * @file
 * The pass-manager architecture unifying the ReQISC compilation flow
 * (Section 5.4 staged compiler; the Quil/eQASM layered-compilation
 * contract).
 *
 * One CompilationUnit carries the evolving artifact set — logical
 * circuit, tracked permutation, routed circuit + final layout, timed
 * isa::Program, Metrics — together with the immutable compile
 * context (options, target backend, coupling, schedule options).
 * Passes are first-class objects (`Pass`: name() + run(unit)) and a
 * PassManager runs a declarative list of them, recording wall time
 * and artifact deltas into a per-pass Metrics::passes trace.
 *
 * The three former pipeline wirings all route through here:
 * compiler::reqiscEff / reqiscFull are thin wrappers over the named
 * Eff/Full compile-stage lists, service::CompileService::runJob is
 * "build unit, run pipeline, copy out", and reqisc-compile exposes
 * the spec grammar directly (`--pipeline custom:...`).
 *
 * Pipeline-spec grammar (parsePipelineSpec):
 *
 *     spec    := "eff" | "full" | "custom:" list
 *     list    := token ("," token)*
 *     token   := pass-name (":" arg)?
 *
 * e.g. "custom:synth,mirror,route,schedule:asap". Pass names come
 * from passRegistry(); today only `schedule` and `hier-synth` take
 * an argument (the strategy / the "nc" ablation variant).
 *
 * Determinism contract: for a fixed (input, options, pass list) the
 * artifacts produced by running the manager are bit-identical across
 * runs and thread counts; PassTrace::seconds is the only field that
 * varies. The named Eff/Full lists reproduce the pre-pass-manager
 * monolithic pipelines bit-for-bit (pinned by tests/test_passmanager).
 */

#ifndef REQISC_COMPILER_PASS_MANAGER_HH
#define REQISC_COMPILER_PASS_MANAGER_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "backend/backend.hh"
#include "backend/reconfigure.hh"
#include "circuit/circuit.hh"
#include "compiler/metrics.hh"
#include "compiler/pipeline.hh"
#include "isa/program.hh"
#include "isa/schedule.hh"
#include "uarch/coupling.hh"

namespace reqisc::compiler
{

/**
 * The shared artifact set a pipeline evolves, replacing the ad-hoc
 * structs formerly threaded through CompileResult, JobResult and CLI
 * locals. Context fields are set once before running; artifact
 * fields are produced/updated by passes.
 */
struct CompilationUnit
{
    // ----- immutable context (set before running) ----------------------
    CompileOptions options;      //!< seed, thresholds, memo hooks, ...
    /** Target chip; nullptr compiles device-agnostically. */
    const backend::Backend *backend = nullptr;
    /** Per-edge gate-set tables (required by the reconfigure pass). */
    const backend::ReconfigureResult *reconfig = nullptr;
    /** Device coupling used when no concrete backend is set. */
    uarch::Coupling coupling = uarch::Coupling::xy(1.0);
    /** Base schedule options (strategy may be overridden per pass). */
    isa::ScheduleOptions scheduleOptions;

    // ----- evolving artifacts ------------------------------------------
    /** Current logical-wire artifact (seeded with the input). */
    circuit::Circuit circuit;
    /** Logical qubit q of the input ends on wire finalPermutation[q]. */
    std::vector<int> finalPermutation;
    circuit::Circuit routed;     //!< physical circuit (iff hasRouted)
    /** Logical q ends on physical wire finalLayout[q] (iff hasRouted). */
    std::vector<int> finalLayout;
    bool hasRouted = false;
    isa::Program program;        //!< timed program (iff hasProgram)
    bool hasProgram = false;
    Metrics metrics;             //!< incl. the per-pass trace
    /**
     * Scratch channel a pass may fill during run() to annotate its
     * own trace (copied into PassTrace::note and cleared by the
     * manager around every pass). hier-synth reports its effective
     * block-worker count here.
     */
    std::string passNote;
    /**
     * Optional observer called after every pass with the trace just
     * appended to metrics.passes — live per-pass progress for
     * callers that watch a compile from outside the worker (the
     * daemon streams these into GET /v1/jobs/{id}). Invoked on the
     * compiling thread; the callback must do its own
     * synchronization and must not throw.
     */
    std::function<void(const PassTrace &)> onPass;

    /** The artifact later stages operate on: routed once it exists. */
    const circuit::Circuit &active() const
    {
        return hasRouted ? routed : circuit;
    }

    /** Seed a unit: circuit = input, identity permutation. */
    static CompilationUnit forInput(circuit::Circuit in,
                                    CompileOptions opts = {});
};

/** A first-class compilation stage. */
class Pass
{
  public:
    virtual ~Pass() = default;
    /** Registry token, echoed into PassTrace::pass. */
    virtual std::string name() const = 0;
    virtual void run(CompilationUnit &unit) = 0;
};

/** Runs an ordered pass list over a unit, tracing every pass. */
class PassManager
{
  public:
    void add(std::unique_ptr<Pass> pass);

    std::size_t size() const { return passes_.size(); }
    std::vector<std::string> passNames() const;

    /**
     * Run every pass in order. Each pass appends one PassTrace to
     * unit.metrics.passes (wall time, gate/#2Q before/after on the
     * active artifact, makespan known so far).
     */
    void run(CompilationUnit &unit) const;

  private:
    std::vector<std::unique_ptr<Pass>> passes_;
};

/** A registered pass, for --list-passes and spec validation. */
struct PassInfo
{
    std::string token;    //!< spec name ("synth", "schedule", ...)
    std::string summary;  //!< one-line description
    /** Accepted ":arg" values; empty when the pass takes none. */
    std::vector<std::string> args;
};

/** All registered passes, in canonical listing order. */
const std::vector<PassInfo> &passRegistry();

/**
 * Instantiate a registered pass from a spec token (optionally
 * "name:arg"). Returns nullptr and fills `error` for an unknown name
 * or an argument the pass does not accept.
 */
std::unique_ptr<Pass> makePass(const std::string &token,
                               std::string &error);

/** A parsed --pipeline value. */
struct PipelineSpec
{
    enum class Kind
    {
        Eff,     //!< the named ReQISC-Eff compile pipeline
        Full,    //!< the named ReQISC-Full compile pipeline
        Custom,  //!< explicit pass list
    };
    Kind kind = Kind::Full;
    std::vector<std::string> passes;  //!< tokens; filled for Custom
};

/**
 * Parse "eff", "full" or "custom:tok,tok,...". Returns false and
 * fills `error` (unknown name, empty list, unknown pass token or
 * pass argument) without touching `out` semantics on failure.
 */
bool parsePipelineSpec(const std::string &text, PipelineSpec &out,
                       std::string &error);

/**
 * The compile-stage pass list of a named pipeline under the given
 * options — what reqiscEff/reqiscFull run. The list is a pure
 * function of the options: the Fig-14 dagCompacting ablation is the
 * `hier-synth` -> `hier-synth:nc` edit, variational mode swaps the
 * final `lower` for `rebase` and drops `mirror`.
 */
std::vector<std::string>
compilePassList(PipelineSpec::Kind kind, const CompileOptions &opts);

/**
 * Build a manager from a spec: named specs expand through
 * compilePassList (compile stage only — the service appends its
 * route/estimate/reconfigure/schedule stages); custom specs are
 * taken literally. Returns false and fills `error` on an invalid
 * token.
 */
bool buildPipeline(const PipelineSpec &spec,
                   const CompileOptions &opts, PassManager &pm,
                   std::string &error);

} // namespace reqisc::compiler

#endif // REQISC_COMPILER_PASS_MANAGER_HH
