#include "compiler/metrics.hh"

#include "uarch/duration.hh"
#include "weyl/weyl.hh"

namespace reqisc::compiler
{

std::function<double(const circuit::Gate &)>
conventionalDurationModel(double g)
{
    const double tau = uarch::conventionalCnotDuration(g);
    return [tau](const circuit::Gate &gate) {
        if (gate.numQubits() < 2)
            return 0.0;
        switch (gate.op) {
          case circuit::Op::CX:
          case circuit::Op::CZ:
          case circuit::Op::CY:
            return tau;
          case circuit::Op::SWAP:
            return 3.0 * tau;
          default:
            break;
        }
        // Anything else costs its minimal CX count.
        const weyl::WeylCoord c = gate.weylCoord();
        if (c.norm1() < 1e-9)
            return 0.0;
        if (c.approxEqual(weyl::WeylCoord::cnot(), 1e-9))
            return tau;
        if (std::abs(c.z) < 1e-9)
            return 2.0 * tau;
        return 3.0 * tau;
    };
}

std::function<double(const circuit::Gate &)>
reqiscDurationModel(const uarch::Coupling &cpl)
{
    return [cpl](const circuit::Gate &gate) {
        if (gate.numQubits() < 2)
            return 0.0;
        return uarch::optimalDuration(cpl, gate.weylCoord());
    };
}

Metrics
evaluate(const circuit::Circuit &c,
         const std::function<double(const circuit::Gate &)>
             &duration_model)
{
    Metrics m;
    m.count2Q = c.count2Q();
    m.depth2Q = c.depth2Q();
    m.duration = circuit::criticalPathDuration(c, duration_model);
    m.distinctSU4 = c.countDistinctSU4();
    return m;
}

} // namespace reqisc::compiler
