#include "compiler/metrics.hh"

#include <map>

#include "uarch/duration.hh"
#include "weyl/weyl.hh"

namespace reqisc::compiler
{

std::function<double(const circuit::Gate &)>
conventionalDurationModel(double g)
{
    const double tau = uarch::conventionalCnotDuration(g);
    return [tau](const circuit::Gate &gate) {
        if (gate.numQubits() < 2)
            return 0.0;
        switch (gate.op) {
          case circuit::Op::CX:
          case circuit::Op::CZ:
          case circuit::Op::CY:
            return tau;
          case circuit::Op::SWAP:
            return 3.0 * tau;
          default:
            break;
        }
        // Anything else costs its minimal CX count.
        const weyl::WeylCoord c = gate.weylCoord();
        if (c.norm1() < 1e-9)
            return 0.0;
        if (c.approxEqual(weyl::WeylCoord::cnot(), 1e-9))
            return tau;
        if (std::abs(c.z) < 1e-9)
            return 2.0 * tau;
        return 3.0 * tau;
    };
}

std::function<double(const circuit::Gate &)>
reqiscDurationModel(const uarch::Coupling &cpl)
{
    return [cpl](const circuit::Gate &gate) {
        if (gate.numQubits() < 2)
            return 0.0;
        return uarch::optimalDuration(cpl, gate.weylCoord());
    };
}

Metrics
evaluate(const circuit::Circuit &c,
         const std::function<double(const circuit::Gate &)>
             &duration_model)
{
    Metrics m;
    m.count2Q = c.count2Q();
    m.depth2Q = c.depth2Q();
    m.duration = circuit::criticalPathDuration(c, duration_model);
    m.distinctSU4 = c.countDistinctSU4();
    return m;
}

std::vector<PassAggregate>
aggregatePassTraces(const std::vector<const Metrics *> &jobs)
{
    std::vector<PassAggregate> out;
    std::map<std::string, std::size_t> index;
    for (const Metrics *m : jobs) {
        if (!m)
            continue;
        for (const PassTrace &t : m->passes) {
            auto [it, inserted] =
                index.emplace(t.pass, out.size());
            if (inserted) {
                out.emplace_back();
                out.back().pass = t.pass;
            }
            PassAggregate &a = out[it->second];
            ++a.runs;
            a.seconds += t.seconds;
            a.delta2Q += t.count2QAfter - t.count2QBefore;
        }
    }
    return out;
}

} // namespace reqisc::compiler
