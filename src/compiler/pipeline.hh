/**
 * @file
 * End-to-end ReQISC compilation pipelines (Section 5.4).
 *
 * ReQISC-Eff: program-aware template synthesis + 2Q fusion +
 * mirroring (minimal calibration overhead).
 * ReQISC-Full: adds the hierarchical synthesis pass (DAG compacting +
 * 3Q partition + approximate synthesis) for aggressive #2Q reduction.
 */

#ifndef REQISC_COMPILER_PIPELINE_HH
#define REQISC_COMPILER_PIPELINE_HH

#include <vector>

#include "circuit/circuit.hh"
#include "synth/pool.hh"
#include "synth/synthesis.hh"

namespace reqisc::compiler
{

/** Pipeline configuration knobs. */
struct CompileOptions
{
    bool applyMirroring = true;  //!< near-identity gate mirroring
    double mirrorThreshold = 0.1;
    int mTh = 4;                 //!< hierarchical-synthesis threshold
    double synthTol = 1e-9;      //!< approximate-synthesis precision
    bool dagCompacting = true;   //!< ablation switch (Fig 14)
    /**
     * Seed for the numeric-instantiation searches. Compilation is a
     * deterministic function of (input, options) including this seed,
     * which is what lets the concurrent service promise bit-identical
     * results regardless of thread count.
     */
    unsigned seed = 777;
    /**
     * Optional shared memo for hierarchical block resynthesis (the
     * service layer installs its SynthCache here). A memo must only
     * short-circuit work it re-verified to tolerance, so results are
     * unchanged; nullptr compiles standalone.
     */
    synth::BlockMemo *synthMemo = nullptr;
    /**
     * Optional shared task pool for intra-job parallel block
     * resynthesis inside hier-synth (the service layer installs its
     * BlockPool here). Results are bit-identical to the serial path
     * at every worker count — see hierarchicalSynthesis; nullptr
     * solves blocks serially.
     */
    synth::BlockPool *synthPool = nullptr;
    /**
     * Variational-program mode (Section 5.3.1): re-express every
     * SU(4) over one fixed 2Q basis gate plus parameterized 1Q
     * layers, trading a slightly higher #2Q for a constant-size
     * calibration set (the PMW-protocol trade-off).
     */
    bool variationalMode = false;
    circuit::Op variationalBasis = circuit::Op::SQISW;
};

/** A compiled program: {Can, U3} circuit + tracked output wiring. */
struct CompileResult
{
    circuit::Circuit circuit;
    /** Logical qubit q of the input ends on wire perm[q]. */
    std::vector<int> finalPermutation;
};

/**
 * Program-aware template-based synthesis (Section 5.2.2): unroll
 * 3-qubit IRs through the pre-synthesized ECC template library with
 * selective assembly (prefer variants whose boundary pair fuses with
 * the previously emitted SU(4)).
 */
circuit::Circuit templateSynthesis(const circuit::Circuit &c);

/**
 * The ReQISC-Eff pipeline. Thin compatibility wrapper: expands the
 * named Eff pass list (compiler/pass_manager.hh) and runs it through
 * the PassManager — bit-identical to the historical monolithic
 * implementation for every (input, options, seed).
 */
CompileResult reqiscEff(const circuit::Circuit &input,
                        const CompileOptions &opts = {});

/** The ReQISC-Full pipeline (wrapper, see reqiscEff). */
CompileResult reqiscFull(const circuit::Circuit &input,
                         const CompileOptions &opts = {});

} // namespace reqisc::compiler

#endif // REQISC_COMPILER_PIPELINE_HH
