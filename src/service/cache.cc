#include "service/cache.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <tuple>

#include "obs/obs.hh"
#include "service/persist.hh"
#include "synth/instantiate.hh"

namespace reqisc::service
{

namespace
{

/**
 * Process-wide cache metrics, registered lazily on first cache use.
 * These run beside the per-instance CacheCounters (which feed the
 * per-job --json report); the obs view aggregates over every cache
 * instance in the process, which is what a /metrics scrape wants.
 */
struct CacheMetrics
{
    obs::Counter *synthHits;
    obs::Counter *synthMisses;
    obs::Counter *synthEvictions;
    obs::Histogram *synthVerifySeconds;
    obs::Counter *pulseHits;
    obs::Counter *pulseMisses;
    obs::Counter *pulseEvictions;
};

CacheMetrics &cacheMetrics()
{
    static CacheMetrics m = [] {
        auto &r = obs::Registry::global();
        return CacheMetrics{
            r.counter("reqisc_synth_cache_hits_total",
                      "SynthCache lookups served (verified)"),
            r.counter("reqisc_synth_cache_misses_total",
                      "SynthCache lookups not served (absent or "
                      "failed re-verification)"),
            r.counter("reqisc_synth_cache_evictions_total",
                      "SynthCache LRU evictions"),
            r.histogram("reqisc_synth_cache_verify_seconds",
                        "Rebuild-and-compare re-verification time "
                        "of a SynthCache hit candidate"),
            r.counter("reqisc_pulse_cache_hits_total",
                      "PulseCache lookups served within tolerance"),
            r.counter("reqisc_pulse_cache_misses_total",
                      "PulseCache lookups not served"),
            r.counter("reqisc_pulse_cache_evictions_total",
                      "PulseCache LRU evictions"),
        };
    }();
    return m;
}

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

// Persistent-file identity: magic tags, format versions (bump on any
// layout or key-scheme change; old files are then rejected wholesale)
// and the fingerprint quantization scale the synth keys depend on.
constexpr std::uint32_t kSynthMagic = 0x43535152u;   // "RQSC"
constexpr std::uint32_t kPulseMagic = 0x43505152u;   // "RQPC"
constexpr std::uint32_t kSynthFormatVersion = 1;
constexpr std::uint32_t kPulseFormatVersion = 1;
constexpr double kFingerprintScale = 1e12;

// Parse-time sanity caps (see persist.hh: corrupt counts must fail
// the load, not drive huge allocations).
constexpr std::uint64_t kMaxEntries = 1ull << 22;
constexpr std::uint64_t kMaxKeyWords = 4096;
constexpr std::uint64_t kMaxGates = 1ull << 16;

std::uint64_t
fnv1a(const std::vector<std::int64_t> &words)
{
    std::uint64_t h = kFnvOffset;
    for (std::int64_t w : words) {
        auto u = static_cast<std::uint64_t>(w);
        for (int i = 0; i < 8; ++i) {
            h ^= (u >> (8 * i)) & 0xffu;
            h *= kFnvPrime;
        }
    }
    return h;
}

/**
 * Quantized fingerprint of a unitary after canonicalizing its global
 * phase (divide by the phase of the first maximum-magnitude entry, a
 * deterministic choice). Identical inputs — and inputs differing only
 * by global phase — map to the same word sequence; anything else is
 * a different key, so a key collision never silently changes results
 * (hits are re-verified against the requested target anyway).
 */
std::vector<std::int64_t>
fingerprint(const qmath::Matrix &u)
{
    const int n = u.rows();
    // First strictly-maximal-magnitude entry, scanned row-major.
    double best = -1.0;
    qmath::Complex phase{1.0, 0.0};
    for (int i = 0; i < n; ++i) {
        for (int j = 0; j < n; ++j) {
            const double m = std::abs(u(i, j));
            if (m > best + 1e-12) {
                best = m;
                phase = u(i, j) / m;
            }
        }
    }
    std::vector<std::int64_t> words;
    words.reserve(2 * n * n);
    for (int i = 0; i < n; ++i) {
        for (int j = 0; j < n; ++j) {
            const qmath::Complex v = u(i, j) / phase;
            words.push_back(
                std::llround(v.real() * kFingerprintScale));
            words.push_back(
                std::llround(v.imag() * kFingerprintScale));
        }
    }
    return words;
}

/** Append the search options that determine the outcome. */
void
appendOptions(std::vector<std::int64_t> &words,
              const synth::SynthesisOptions &opts)
{
    words.push_back(std::llround(opts.tol * 1e15));
    words.push_back(opts.maxBlocks);
    words.push_back(opts.restarts);
    words.push_back(static_cast<std::int64_t>(opts.seed));
    words.push_back(opts.descending ? 1 : 0);
}

/** Rebuild the 8x8 unitary of a local-id synthesis result. */
qmath::Matrix
rebuild(const synth::SynthesisResult &r)
{
    qmath::Matrix u = qmath::Matrix::identity(8);
    for (const circuit::Gate &g : r.gates)
        u = synth::liftGate(g.matrix(), g.qubits, 3) * u;
    return u;
}

/** Exact (bit-pattern) double equality, the persistence contract. */
bool
sameBits(double a, double b)
{
    std::uint64_t ua, ub;
    std::memcpy(&ua, &a, sizeof(ua));
    std::memcpy(&ub, &b, sizeof(ub));
    return ua == ub;
}

} // namespace

// ---- SynthCache --------------------------------------------------------

SynthCache::SynthCache(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1)),
      nshards_(capacity_ >= kStripeThreshold ? 16 : 1),
      shardCapacity_(std::max<std::size_t>(capacity_ / nshards_, 1)),
      shards_(std::make_unique<Shard[]>(nshards_))
{
}

bool
SynthCache::lookup(const qmath::Matrix &target,
                   const synth::SynthesisOptions &opts,
                   synth::SynthesisResult &out)
{
    std::vector<std::int64_t> key = fingerprint(target);
    appendOptions(key, opts);
    const std::uint64_t h = fnv1a(key);
    Shard &shard = shardOf(h);

    // Copy the candidate out under the lock, verify outside it: the
    // rebuild-and-compare is the expensive part of a hit, and doing
    // it in the critical section would serialize warm-cache workers.
    synth::SynthesisResult candidate;
    bool found = false;
    {
        std::lock_guard<std::mutex> lk(shard.mu);
        auto [it, last] = shard.entries.equal_range(h);
        for (; it != last; ++it) {
            if (it->second.key == key) {
                candidate = it->second.result;
                found = true;
                break;
            }
        }
        if (!found) {
            ++shard.stats.misses;
            cacheMetrics().synthMisses->inc();
            return false;
        }
    }
    // Re-verify successful entries against the requested target; a
    // failed verification is treated as a miss (the caller
    // recomputes), never as a wrong answer. Failure entries carry no
    // gates to verify — they are trusted on the exact key, which
    // reproduces the deterministic search outcome.
    bool verified = true;
    if (candidate.success) {
        const auto v0 = std::chrono::steady_clock::now();
        verified =
            qmath::traceInfidelity(rebuild(candidate), target) <=
            opts.tol;
        cacheMetrics().synthVerifySeconds->observe(
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - v0)
                .count());
    }
    std::lock_guard<std::mutex> lk(shard.mu);
    if (!verified) {
        ++shard.stats.misses;
        cacheMetrics().synthMisses->inc();
        return false;
    }
    ++shard.stats.hits;
    cacheMetrics().synthHits->inc();
    auto [it, last] = shard.entries.equal_range(h);
    for (; it != last; ++it) {
        if (it->second.key == key) {  // may have been evicted since
            ++it->second.uses;
            it->second.lastUse = ++clock_;
            break;
        }
    }
    out = std::move(candidate);
    return true;
}

void
SynthCache::store(const qmath::Matrix &target,
                  const synth::SynthesisOptions &opts,
                  const synth::SynthesisResult &result,
                  double solve_seconds)
{
    std::vector<std::int64_t> key = fingerprint(target);
    appendOptions(key, opts);
    const std::uint64_t h = fnv1a(key);
    Shard &shard = shardOf(h);

    std::lock_guard<std::mutex> lk(shard.mu);
    shard.stats.solveSeconds += solve_seconds;
    auto [it, last] = shard.entries.equal_range(h);
    for (; it != last; ++it)
        if (it->second.key == key)
            return;  // racing job stored the identical result first
    Entry e;
    e.key = std::move(key);
    e.result = result;
    e.solveSeconds = solve_seconds;
    e.uses = 1;
    e.lastUse = ++clock_;
    shard.entries.emplace(h, std::move(e));
    evictIfNeeded(shard);
}

void
SynthCache::evictIfNeeded(Shard &shard)
{
    while (shard.entries.size() > shardCapacity_) {
        auto victim = shard.entries.begin();
        for (auto it = shard.entries.begin();
             it != shard.entries.end(); ++it)
            if (it->second.lastUse < victim->second.lastUse)
                victim = it;
        shard.entries.erase(victim);
        ++shard.stats.evictions;
        cacheMetrics().synthEvictions->inc();
    }
}

CacheCounters
SynthCache::stats() const
{
    CacheCounters total;
    for (std::size_t s = 0; s < nshards_; ++s) {
        std::lock_guard<std::mutex> lk(shards_[s].mu);
        total.hits += shards_[s].stats.hits;
        total.misses += shards_[s].stats.misses;
        total.evictions += shards_[s].stats.evictions;
        total.solveSeconds += shards_[s].stats.solveSeconds;
    }
    return total;
}

std::size_t
SynthCache::size() const
{
    std::size_t n = 0;
    for (std::size_t s = 0; s < nshards_; ++s) {
        std::lock_guard<std::mutex> lk(shards_[s].mu);
        n += shards_[s].entries.size();
    }
    return n;
}

std::vector<ClassStats>
SynthCache::perClass() const
{
    std::vector<ClassStats> out;
    for (std::size_t s = 0; s < nshards_; ++s) {
        std::lock_guard<std::mutex> lk(shards_[s].mu);
        for (const auto &[h, e] : shards_[s].entries) {
            (void)h;
            ClassStats row;
            row.blockCount = e.result.blockCount;
            row.uses = e.uses;
            row.solveSeconds = e.solveSeconds;
            out.push_back(row);
        }
    }
    return out;
}

bool
SynthCache::save(const std::string &path) const
{
    obs::Span span("persist:synth-save");
    // Snapshot shard by shard, then order deterministically by key so
    // identical cache contents always produce identical files.
    std::vector<Entry> snapshot;
    for (std::size_t s = 0; s < nshards_; ++s) {
        std::lock_guard<std::mutex> lk(shards_[s].mu);
        for (const auto &[h, e] : shards_[s].entries) {
            (void)h;
            snapshot.push_back(e);
        }
    }
    std::sort(snapshot.begin(), snapshot.end(),
              [](const Entry &a, const Entry &b) {
                  return a.key < b.key;
              });

    persist::Writer w;
    w.u32(kSynthMagic);
    w.u32(kSynthFormatVersion);
    w.f64(kFingerprintScale);
    w.u64(snapshot.size());
    for (const Entry &e : snapshot) {
        w.u64(e.key.size());
        for (std::int64_t word : e.key)
            w.i64(word);
        w.u32(e.result.success ? 1u : 0u);
        w.f64(e.result.infidelity);
        w.u32(static_cast<std::uint32_t>(e.result.blockCount));
        w.u64(e.result.gates.size());
        for (const circuit::Gate &g : e.result.gates)
            w.gate(g);
        w.f64(e.solveSeconds);
        w.i64(e.uses);
    }
    const bool ok = w.commit(path);
    obs::log(ok ? obs::LogLevel::Info : obs::LogLevel::Warn,
             "persist",
             ok ? "synth cache saved" : "synth cache save failed",
             {{"path", path},
              {"entries", std::to_string(snapshot.size())}});
    return ok;
}

bool
SynthCache::load(const std::string &path)
{
    obs::Span span("persist:synth-load");
    std::string data;
    if (!persist::Reader::slurp(path, data)) {
        obs::log(obs::LogLevel::Debug, "persist",
                 "synth cache file absent; cold start",
                 {{"path", path}});
        return false;
    }
    persist::Reader r(std::move(data));
    if (!r.verifyChecksum()) {
        obs::log(obs::LogLevel::Warn, "persist",
                 "synth cache rejected: bad checksum; cold start",
                 {{"path", path}});
        return false;
    }
    std::uint32_t magic, version;
    if (!r.u32(magic) || magic != kSynthMagic ||
        !r.u32(version) || version != kSynthFormatVersion) {
        obs::log(obs::LogLevel::Warn, "persist",
                 "synth cache rejected: format mismatch; cold "
                 "start",
                 {{"path", path}});
        return false;
    }
    double scale;
    if (!r.f64(scale) || !sameBits(scale, kFingerprintScale))
        return false;

    // All-or-nothing: parse everything before touching the shards.
    std::uint64_t count;
    if (!r.u64(count) || count > kMaxEntries)
        return false;
    std::vector<Entry> parsed;
    parsed.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        Entry e;
        std::uint64_t nwords;
        if (!r.u64(nwords) || nwords > kMaxKeyWords)
            return false;
        e.key.resize(nwords);
        for (std::uint64_t k = 0; k < nwords; ++k)
            if (!r.i64(e.key[k]))
                return false;
        std::uint32_t success, block_count;
        if (!r.u32(success) || success > 1)
            return false;
        e.result.success = success == 1;
        if (!r.f64(e.result.infidelity))
            return false;
        if (!r.u32(block_count))
            return false;
        e.result.blockCount = static_cast<int>(block_count);
        std::uint64_t ngates;
        if (!r.u64(ngates) || ngates > kMaxGates)
            return false;
        e.result.gates.resize(ngates);
        for (std::uint64_t g = 0; g < ngates; ++g)
            if (!r.gate(e.result.gates[g]))
                return false;
        if (!r.f64(e.solveSeconds) || !r.i64(e.uses))
            return false;
        parsed.push_back(std::move(e));
    }
    if (r.remaining() != 0)
        return false;

    for (Entry &e : parsed) {
        const std::uint64_t h = fnv1a(e.key);
        Shard &shard = shardOf(h);
        std::lock_guard<std::mutex> lk(shard.mu);
        auto [it, last] = shard.entries.equal_range(h);
        bool dup = false;
        for (; it != last; ++it) {
            if (it->second.key == e.key) {
                dup = true;
                break;
            }
        }
        if (dup)
            continue;  // live entry wins over the persisted one
        e.lastUse = ++clock_;
        shard.entries.emplace(h, std::move(e));
        evictIfNeeded(shard);
    }
    obs::log(obs::LogLevel::Info, "persist", "synth cache loaded",
             {{"path", path},
              {"entries", std::to_string(parsed.size())}});
    return true;
}

// ---- PulseCache --------------------------------------------------------

PulseCache::PulseCache(const uarch::Coupling &cpl, double tol,
                       std::size_t capacity)
    : cpl_(cpl), tol_(std::max(tol, 1e-12)), capacity_(capacity)
{
}

std::uint64_t
PulseCache::cellOf(const weyl::WeylCoord &c) const
{
    const std::vector<std::int64_t> cell = {
        static_cast<std::int64_t>(std::floor(c.x / tol_)),
        static_cast<std::int64_t>(std::floor(c.y / tol_)),
        static_cast<std::int64_t>(std::floor(c.z / tol_)),
    };
    return fnv1a(cell);
}

bool
PulseCache::lookup(const weyl::WeylCoord &coord,
                   uarch::PulseSolution &sol)
{
    std::lock_guard<std::mutex> lk(mu_);
    // Probe the coordinate's cell and all 26 neighbours so a match
    // within tolerance is found regardless of cell-boundary effects.
    auto lexLess = [](const weyl::WeylCoord &a,
                      const weyl::WeylCoord &b) {
        return std::tie(a.x, a.y, a.z) < std::tie(b.x, b.y, b.z);
    };
    Entry *best = nullptr;
    double best_dist = tol_;
    for (int dx = -1; dx <= 1; ++dx) {
        for (int dy = -1; dy <= 1; ++dy) {
            for (int dz = -1; dz <= 1; ++dz) {
                weyl::WeylCoord probe = coord;
                probe.x += dx * tol_;
                probe.y += dy * tol_;
                probe.z += dz * tol_;
                auto [it, last] = entries_.equal_range(cellOf(probe));
                for (; it != last; ++it) {
                    Entry &e = it->second;
                    const double d = e.coord.distance(coord);
                    // Deterministic choice among candidates: nearest
                    // first, coordinate-lexicographic on ties (never
                    // container iteration order).
                    const bool better =
                        !best || d < best_dist - 1e-15 ||
                        (std::abs(d - best_dist) <= 1e-15 &&
                         lexLess(e.coord, best->coord));
                    if (d <= tol_ && better) {
                        best = &e;
                        best_dist = d;
                    }
                }
            }
        }
    }
    // Only verified solutions are served: converged, and the solver's
    // own re-extraction matched its target class.
    if (best && best->sol.converged && best->sol.coordError <= tol_) {
        ++best->uses;
        best->lastUse = ++clock_;
        ++stats_.hits;
        cacheMetrics().pulseHits->inc();
        sol = best->sol;
        return true;
    }
    ++stats_.misses;
    cacheMetrics().pulseMisses->inc();
    return false;
}

void
PulseCache::store(const weyl::WeylCoord &coord,
                  const uarch::PulseSolution &sol,
                  double solve_seconds)
{
    std::lock_guard<std::mutex> lk(mu_);
    stats_.solveSeconds += solve_seconds;
    if (!sol.converged)
        return;  // never serve unverified work; re-solve instead
    const std::uint64_t h = cellOf(coord);
    auto [it, last] = entries_.equal_range(h);
    for (; it != last; ++it)
        if (it->second.coord.distance(coord) <= tol_)
            return;  // racing job stored this class first
    Entry e;
    e.coord = coord;
    e.sol = sol;
    e.solveSeconds = solve_seconds;
    e.uses = 1;
    e.lastUse = ++clock_;
    entries_.emplace(h, std::move(e));
    evictIfNeeded();
}

void
PulseCache::evictIfNeeded()
{
    while (entries_.size() > capacity_) {
        auto victim = entries_.begin();
        for (auto it = entries_.begin(); it != entries_.end(); ++it)
            if (it->second.lastUse < victim->second.lastUse)
                victim = it;
        entries_.erase(victim);
        ++stats_.evictions;
        cacheMetrics().pulseEvictions->inc();
    }
}

CacheCounters
PulseCache::stats() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return stats_;
}

std::size_t
PulseCache::size() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return entries_.size();
}

std::vector<ClassStats>
PulseCache::perClass() const
{
    std::lock_guard<std::mutex> lk(mu_);
    std::vector<ClassStats> out;
    out.reserve(entries_.size());
    for (const auto &[h, e] : entries_) {
        (void)h;
        ClassStats s;
        s.coord = e.coord;
        s.uses = e.uses;
        s.solveSeconds = e.solveSeconds;
        out.push_back(s);
    }
    return out;
}

namespace
{

void
writeCoord(persist::Writer &w, const weyl::WeylCoord &c)
{
    w.f64(c.x);
    w.f64(c.y);
    w.f64(c.z);
}

bool
readCoord(persist::Reader &r, weyl::WeylCoord &c)
{
    return r.f64(c.x) && r.f64(c.y) && r.f64(c.z);
}

} // namespace

bool
PulseCache::save(const std::string &path) const
{
    obs::Span span("persist:pulse-save");
    std::vector<Entry> snapshot;
    {
        std::lock_guard<std::mutex> lk(mu_);
        snapshot.reserve(entries_.size());
        for (const auto &[h, e] : entries_) {
            (void)h;
            snapshot.push_back(e);
        }
    }
    std::sort(snapshot.begin(), snapshot.end(),
              [](const Entry &a, const Entry &b) {
                  return std::tie(a.coord.x, a.coord.y, a.coord.z) <
                         std::tie(b.coord.x, b.coord.y, b.coord.z);
              });

    persist::Writer w;
    w.u32(kPulseMagic);
    w.u32(kPulseFormatVersion);
    w.f64(cpl_.a);
    w.f64(cpl_.b);
    w.f64(cpl_.c);
    w.f64(tol_);
    w.u64(snapshot.size());
    for (const Entry &e : snapshot) {
        writeCoord(w, e.coord);
        const uarch::PulseSolution &s = e.sol;
        w.u32(s.converged ? 1u : 0u);
        w.u32(static_cast<std::uint32_t>(s.scheme));
        w.f64(s.tau);
        w.f64(s.omega1);
        w.f64(s.omega2);
        w.f64(s.delta);
        writeCoord(w, s.target);
        writeCoord(w, s.effective);
        w.f64(s.coordError);
        w.u32(s.hasCorrections ? 1u : 0u);
        w.matrix(s.a1);
        w.matrix(s.a2);
        w.matrix(s.b1);
        w.matrix(s.b2);
        w.f64(e.solveSeconds);
        w.i64(e.uses);
    }
    const bool ok = w.commit(path);
    obs::log(ok ? obs::LogLevel::Info : obs::LogLevel::Warn,
             "persist",
             ok ? "pulse cache saved" : "pulse cache save failed",
             {{"path", path},
              {"entries", std::to_string(snapshot.size())}});
    return ok;
}

bool
PulseCache::load(const std::string &path)
{
    obs::Span span("persist:pulse-load");
    std::string data;
    if (!persist::Reader::slurp(path, data)) {
        obs::log(obs::LogLevel::Debug, "persist",
                 "pulse cache file absent; cold start",
                 {{"path", path}});
        return false;
    }
    persist::Reader r(std::move(data));
    if (!r.verifyChecksum()) {
        obs::log(obs::LogLevel::Warn, "persist",
                 "pulse cache rejected: bad checksum; cold start",
                 {{"path", path}});
        return false;
    }
    std::uint32_t magic, version;
    if (!r.u32(magic) || magic != kPulseMagic ||
        !r.u32(version) || version != kPulseFormatVersion) {
        obs::log(obs::LogLevel::Warn, "persist",
                 "pulse cache rejected: format mismatch; cold "
                 "start",
                 {{"path", path}});
        return false;
    }
    double a, b, c, tol;
    if (!r.f64(a) || !r.f64(b) || !r.f64(c) || !r.f64(tol))
        return false;
    // A pulse file is bound to one coupling and one cluster
    // tolerance; anything else would serve solutions for the wrong
    // hardware or cluster classes too aggressively.
    if (!sameBits(a, cpl_.a) || !sameBits(b, cpl_.b) ||
        !sameBits(c, cpl_.c) || !sameBits(tol, tol_))
        return false;

    std::uint64_t count;
    if (!r.u64(count) || count > kMaxEntries)
        return false;
    std::vector<Entry> parsed;
    parsed.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        Entry e;
        if (!readCoord(r, e.coord))
            return false;
        uarch::PulseSolution &s = e.sol;
        std::uint32_t converged, scheme, has_corr;
        if (!r.u32(converged) || converged > 1)
            return false;
        s.converged = converged == 1;
        if (!r.u32(scheme) ||
            scheme > static_cast<std::uint32_t>(
                         uarch::SubScheme::EAMinus))
            return false;
        s.scheme = static_cast<uarch::SubScheme>(scheme);
        if (!r.f64(s.tau) || !r.f64(s.omega1) || !r.f64(s.omega2) ||
            !r.f64(s.delta))
            return false;
        if (!readCoord(r, s.target) || !readCoord(r, s.effective))
            return false;
        if (!r.f64(s.coordError))
            return false;
        if (!r.u32(has_corr) || has_corr > 1)
            return false;
        s.hasCorrections = has_corr == 1;
        if (!r.matrix(s.a1) || !r.matrix(s.a2) || !r.matrix(s.b1) ||
            !r.matrix(s.b2))
            return false;
        if (!r.f64(e.solveSeconds) || !r.i64(e.uses))
            return false;
        parsed.push_back(std::move(e));
    }
    if (r.remaining() != 0)
        return false;

    std::lock_guard<std::mutex> lk(mu_);
    for (Entry &e : parsed) {
        if (!e.sol.converged)
            continue;  // store() never admits these; neither do we
        const std::uint64_t h = cellOf(e.coord);
        auto [it, last] = entries_.equal_range(h);
        bool dup = false;
        for (; it != last; ++it) {
            if (it->second.coord.distance(e.coord) <= tol_) {
                dup = true;
                break;
            }
        }
        if (dup)
            continue;  // live entry wins over the persisted one
        e.lastUse = ++clock_;
        entries_.emplace(h, std::move(e));
        evictIfNeeded();
    }
    obs::log(obs::LogLevel::Info, "persist", "pulse cache loaded",
             {{"path", path},
              {"entries", std::to_string(parsed.size())}});
    return true;
}

} // namespace reqisc::service
