#include "service/cache.hh"

#include <algorithm>
#include <cmath>
#include <tuple>

#include "synth/instantiate.hh"

namespace reqisc::service
{

namespace
{

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t
fnv1a(const std::vector<std::int64_t> &words)
{
    std::uint64_t h = kFnvOffset;
    for (std::int64_t w : words) {
        auto u = static_cast<std::uint64_t>(w);
        for (int i = 0; i < 8; ++i) {
            h ^= (u >> (8 * i)) & 0xffu;
            h *= kFnvPrime;
        }
    }
    return h;
}

/**
 * Quantized fingerprint of a unitary after canonicalizing its global
 * phase (divide by the phase of the first maximum-magnitude entry, a
 * deterministic choice). Identical inputs — and inputs differing only
 * by global phase — map to the same word sequence; anything else is
 * a different key, so a key collision never silently changes results
 * (hits are re-verified against the requested target anyway).
 */
std::vector<std::int64_t>
fingerprint(const qmath::Matrix &u)
{
    const int n = u.rows();
    // First strictly-maximal-magnitude entry, scanned row-major.
    double best = -1.0;
    qmath::Complex phase{1.0, 0.0};
    for (int i = 0; i < n; ++i) {
        for (int j = 0; j < n; ++j) {
            const double m = std::abs(u(i, j));
            if (m > best + 1e-12) {
                best = m;
                phase = u(i, j) / m;
            }
        }
    }
    std::vector<std::int64_t> words;
    words.reserve(2 * n * n);
    const double scale = 1e12;
    for (int i = 0; i < n; ++i) {
        for (int j = 0; j < n; ++j) {
            const qmath::Complex v = u(i, j) / phase;
            words.push_back(std::llround(v.real() * scale));
            words.push_back(std::llround(v.imag() * scale));
        }
    }
    return words;
}

/** Append the search options that determine the outcome. */
void
appendOptions(std::vector<std::int64_t> &words,
              const synth::SynthesisOptions &opts)
{
    words.push_back(std::llround(opts.tol * 1e15));
    words.push_back(opts.maxBlocks);
    words.push_back(opts.restarts);
    words.push_back(static_cast<std::int64_t>(opts.seed));
    words.push_back(opts.descending ? 1 : 0);
}

/** Rebuild the 8x8 unitary of a local-id synthesis result. */
qmath::Matrix
rebuild(const synth::SynthesisResult &r)
{
    qmath::Matrix u = qmath::Matrix::identity(8);
    for (const circuit::Gate &g : r.gates)
        u = synth::liftGate(g.matrix(), g.qubits, 3) * u;
    return u;
}

} // namespace

// ---- SynthCache --------------------------------------------------------

SynthCache::SynthCache(std::size_t capacity) : capacity_(capacity) {}

bool
SynthCache::lookup(const qmath::Matrix &target,
                   const synth::SynthesisOptions &opts,
                   synth::SynthesisResult &out)
{
    std::vector<std::int64_t> key = fingerprint(target);
    appendOptions(key, opts);
    const std::uint64_t h = fnv1a(key);

    // Copy the candidate out under the lock, verify outside it: the
    // rebuild-and-compare is the expensive part of a hit, and doing
    // it in the critical section would serialize warm-cache workers.
    synth::SynthesisResult candidate;
    bool found = false;
    {
        std::lock_guard<std::mutex> lk(mu_);
        auto [it, last] = entries_.equal_range(h);
        for (; it != last; ++it) {
            if (it->second.key == key) {
                candidate = it->second.result;
                found = true;
                break;
            }
        }
        if (!found) {
            ++stats_.misses;
            return false;
        }
    }
    // Re-verify successful entries against the requested target; a
    // failed verification is treated as a miss (the caller
    // recomputes), never as a wrong answer. Failure entries carry no
    // gates to verify — they are trusted on the exact key, which
    // reproduces the deterministic search outcome.
    const bool verified =
        !candidate.success ||
        qmath::traceInfidelity(rebuild(candidate), target) <=
            opts.tol;
    std::lock_guard<std::mutex> lk(mu_);
    if (!verified) {
        ++stats_.misses;
        return false;
    }
    ++stats_.hits;
    auto [it, last] = entries_.equal_range(h);
    for (; it != last; ++it) {
        if (it->second.key == key) {  // may have been evicted since
            ++it->second.uses;
            it->second.lastUse = ++clock_;
            break;
        }
    }
    out = std::move(candidate);
    return true;
}

void
SynthCache::store(const qmath::Matrix &target,
                  const synth::SynthesisOptions &opts,
                  const synth::SynthesisResult &result,
                  double solve_seconds)
{
    std::vector<std::int64_t> key = fingerprint(target);
    appendOptions(key, opts);
    const std::uint64_t h = fnv1a(key);

    std::lock_guard<std::mutex> lk(mu_);
    stats_.solveSeconds += solve_seconds;
    auto [it, last] = entries_.equal_range(h);
    for (; it != last; ++it)
        if (it->second.key == key)
            return;  // racing job stored the identical result first
    Entry e;
    e.key = std::move(key);
    e.result = result;
    e.solveSeconds = solve_seconds;
    e.uses = 1;
    e.lastUse = ++clock_;
    entries_.emplace(h, std::move(e));
    evictIfNeeded();
}

void
SynthCache::evictIfNeeded()
{
    while (entries_.size() > capacity_) {
        auto victim = entries_.begin();
        for (auto it = entries_.begin(); it != entries_.end(); ++it)
            if (it->second.lastUse < victim->second.lastUse)
                victim = it;
        entries_.erase(victim);
        ++stats_.evictions;
    }
}

CacheCounters
SynthCache::stats() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return stats_;
}

std::size_t
SynthCache::size() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return entries_.size();
}

std::vector<ClassStats>
SynthCache::perClass() const
{
    std::lock_guard<std::mutex> lk(mu_);
    std::vector<ClassStats> out;
    out.reserve(entries_.size());
    for (const auto &[h, e] : entries_) {
        (void)h;
        ClassStats s;
        s.blockCount = e.result.blockCount;
        s.uses = e.uses;
        s.solveSeconds = e.solveSeconds;
        out.push_back(s);
    }
    return out;
}

// ---- PulseCache --------------------------------------------------------

PulseCache::PulseCache(const uarch::Coupling &cpl, double tol,
                       std::size_t capacity)
    : cpl_(cpl), tol_(std::max(tol, 1e-12)), capacity_(capacity)
{
}

std::uint64_t
PulseCache::cellOf(const weyl::WeylCoord &c) const
{
    const std::vector<std::int64_t> cell = {
        static_cast<std::int64_t>(std::floor(c.x / tol_)),
        static_cast<std::int64_t>(std::floor(c.y / tol_)),
        static_cast<std::int64_t>(std::floor(c.z / tol_)),
    };
    return fnv1a(cell);
}

bool
PulseCache::lookup(const weyl::WeylCoord &coord,
                   uarch::PulseSolution &sol)
{
    std::lock_guard<std::mutex> lk(mu_);
    // Probe the coordinate's cell and all 26 neighbours so a match
    // within tolerance is found regardless of cell-boundary effects.
    auto lexLess = [](const weyl::WeylCoord &a,
                      const weyl::WeylCoord &b) {
        return std::tie(a.x, a.y, a.z) < std::tie(b.x, b.y, b.z);
    };
    Entry *best = nullptr;
    double best_dist = tol_;
    for (int dx = -1; dx <= 1; ++dx) {
        for (int dy = -1; dy <= 1; ++dy) {
            for (int dz = -1; dz <= 1; ++dz) {
                weyl::WeylCoord probe = coord;
                probe.x += dx * tol_;
                probe.y += dy * tol_;
                probe.z += dz * tol_;
                auto [it, last] = entries_.equal_range(cellOf(probe));
                for (; it != last; ++it) {
                    Entry &e = it->second;
                    const double d = e.coord.distance(coord);
                    // Deterministic choice among candidates: nearest
                    // first, coordinate-lexicographic on ties (never
                    // container iteration order).
                    const bool better =
                        !best || d < best_dist - 1e-15 ||
                        (std::abs(d - best_dist) <= 1e-15 &&
                         lexLess(e.coord, best->coord));
                    if (d <= tol_ && better) {
                        best = &e;
                        best_dist = d;
                    }
                }
            }
        }
    }
    // Only verified solutions are served: converged, and the solver's
    // own re-extraction matched its target class.
    if (best && best->sol.converged && best->sol.coordError <= tol_) {
        ++best->uses;
        best->lastUse = ++clock_;
        ++stats_.hits;
        sol = best->sol;
        return true;
    }
    ++stats_.misses;
    return false;
}

void
PulseCache::store(const weyl::WeylCoord &coord,
                  const uarch::PulseSolution &sol,
                  double solve_seconds)
{
    std::lock_guard<std::mutex> lk(mu_);
    stats_.solveSeconds += solve_seconds;
    if (!sol.converged)
        return;  // never serve unverified work; re-solve instead
    const std::uint64_t h = cellOf(coord);
    auto [it, last] = entries_.equal_range(h);
    for (; it != last; ++it)
        if (it->second.coord.distance(coord) <= tol_)
            return;  // racing job stored this class first
    Entry e;
    e.coord = coord;
    e.sol = sol;
    e.solveSeconds = solve_seconds;
    e.uses = 1;
    e.lastUse = ++clock_;
    entries_.emplace(h, std::move(e));
    evictIfNeeded();
}

void
PulseCache::evictIfNeeded()
{
    while (entries_.size() > capacity_) {
        auto victim = entries_.begin();
        for (auto it = entries_.begin(); it != entries_.end(); ++it)
            if (it->second.lastUse < victim->second.lastUse)
                victim = it;
        entries_.erase(victim);
        ++stats_.evictions;
    }
}

CacheCounters
PulseCache::stats() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return stats_;
}

std::size_t
PulseCache::size() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return entries_.size();
}

std::vector<ClassStats>
PulseCache::perClass() const
{
    std::lock_guard<std::mutex> lk(mu_);
    std::vector<ClassStats> out;
    out.reserve(entries_.size());
    for (const auto &[h, e] : entries_) {
        (void)h;
        ClassStats s;
        s.coord = e.coord;
        s.uses = e.uses;
        s.solveSeconds = e.solveSeconds;
        out.push_back(s);
    }
    return out;
}

} // namespace reqisc::service
