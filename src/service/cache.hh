/**
 * @file
 * SU(4)-equivalence memoization caches for the compilation service.
 *
 * The two expensive kernels of the stack — the 3-qubit structure
 * search (synth::synthesizeBlock) and the genAshN multistart Newton
 * pulse solve (uarch::GateScheme::solveCoord) — are memoized here so
 * repeated classes across a batch of circuits are computed exactly
 * once:
 *
 *  - SynthCache (implements synth::BlockMemo) keys block-resynthesis
 *    results on a phase-canonicalized fingerprint of the target
 *    unitary plus the search options. A hit therefore returns
 *    exactly what the caller would have computed (the search is a
 *    deterministic function of both), and is additionally re-verified
 *    against the requested target before being returned — the bit-
 *    identical-across-thread-counts guarantee of the service rests on
 *    this.
 *
 *  - PulseCache (implements uarch::PulseMemo) keys pulse solutions on
 *    the Weyl coordinate of the SU(4) local-equivalence class, with a
 *    tolerance-aware bucketed lookup (coordinates are hashed into
 *    cells of the cluster tolerance and neighbouring cells are
 *    probed, so equality never depends on which side of a cell
 *    boundary a coordinate falls). Only converged, verified solutions
 *    are ever returned. A PulseCache is bound to one coupling.
 *
 * Both caches are thread-safe (one mutex each; the protected work is
 * micro-seconds against milliseconds-to-seconds solves), LRU-bounded,
 * and instrumented with compiler::CacheCounters plus per-class solve
 * times.
 */

#ifndef REQISC_SERVICE_CACHE_HH
#define REQISC_SERVICE_CACHE_HH

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "compiler/metrics.hh"
#include "synth/synthesis.hh"
#include "uarch/calibration.hh"

namespace reqisc::service
{

using compiler::CacheCounters;

/** Per-class instrumentation row (see `--stats` in reqisc-compile). */
struct ClassStats
{
    weyl::WeylCoord coord;     //!< class representative (pulse cache)
    int blockCount = 0;        //!< synthesized SU(4)s (synth cache)
    std::int64_t uses = 0;     //!< lookups served (initial solve incl.)
    double solveSeconds = 0.0; //!< wall time of the initial solve
};

/** Memoization cache for 3-qubit block resynthesis. */
class SynthCache final : public synth::BlockMemo
{
  public:
    explicit SynthCache(std::size_t capacity = 1 << 14);

    bool lookup(const qmath::Matrix &target,
                const synth::SynthesisOptions &opts,
                synth::SynthesisResult &out) override;

    void store(const qmath::Matrix &target,
               const synth::SynthesisOptions &opts,
               const synth::SynthesisResult &result,
               double solve_seconds) override;

    CacheCounters stats() const;
    std::size_t size() const;

    /** Snapshot of per-entry instrumentation (unordered). */
    std::vector<ClassStats> perClass() const;

  private:
    struct Entry
    {
        std::vector<std::int64_t> key;
        synth::SynthesisResult result;  //!< local qubit ids 0..2
        double solveSeconds = 0.0;
        std::int64_t uses = 0;
        std::uint64_t lastUse = 0;
    };

    void evictIfNeeded();  //!< requires mu_ held

    std::size_t capacity_;
    mutable std::mutex mu_;
    std::unordered_multimap<std::uint64_t, Entry> entries_;
    CacheCounters stats_;
    std::uint64_t clock_ = 0;
};

/** Memoization cache for per-SU(4)-class pulse solutions. */
class PulseCache final : public uarch::PulseMemo
{
  public:
    /**
     * @param cpl the coupling all cached solutions belong to (a
     *        PulseCache must never be shared across couplings)
     * @param tol Weyl-coordinate distance within which two classes
     *        are considered equal (bucket width of the lookup)
     * @param capacity LRU bound on the number of classes kept
     */
    explicit PulseCache(const uarch::Coupling &cpl, double tol = 1e-6,
                        std::size_t capacity = 1 << 14);

    bool lookup(const weyl::WeylCoord &coord,
                uarch::PulseSolution &sol) override;

    void store(const weyl::WeylCoord &coord,
               const uarch::PulseSolution &sol,
               double solve_seconds) override;

    const uarch::Coupling &coupling() const { return cpl_; }
    double tolerance() const { return tol_; }

    CacheCounters stats() const;
    std::size_t size() const;

    /** Snapshot of per-class instrumentation (unordered). */
    std::vector<ClassStats> perClass() const;

  private:
    struct Entry
    {
        weyl::WeylCoord coord;
        uarch::PulseSolution sol;
        double solveSeconds = 0.0;
        std::int64_t uses = 0;
        std::uint64_t lastUse = 0;
    };

    std::uint64_t cellOf(const weyl::WeylCoord &c) const;
    void evictIfNeeded();  //!< requires mu_ held

    uarch::Coupling cpl_;
    double tol_;
    std::size_t capacity_;
    mutable std::mutex mu_;
    /** Cell hash -> entries whose coordinate falls in that cell. */
    std::unordered_multimap<std::uint64_t, Entry> entries_;
    CacheCounters stats_;
    std::uint64_t clock_ = 0;
};

} // namespace reqisc::service

#endif // REQISC_SERVICE_CACHE_HH
