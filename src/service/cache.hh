/**
 * @file
 * SU(4)-equivalence memoization caches for the compilation service.
 *
 * The two expensive kernels of the stack — the 3-qubit structure
 * search (synth::synthesizeBlock) and the genAshN multistart Newton
 * pulse solve (uarch::GateScheme::solveCoord) — are memoized here so
 * repeated classes across a batch of circuits are computed exactly
 * once:
 *
 *  - SynthCache (implements synth::BlockMemo) keys block-resynthesis
 *    results on a phase-canonicalized fingerprint of the target
 *    unitary plus the search options. A hit therefore returns
 *    exactly what the caller would have computed (the search is a
 *    deterministic function of both), and is additionally re-verified
 *    against the requested target before being returned — the bit-
 *    identical-across-thread-counts guarantee of the service rests on
 *    this.
 *
 *  - PulseCache (implements uarch::PulseMemo) keys pulse solutions on
 *    the Weyl coordinate of the SU(4) local-equivalence class, with a
 *    tolerance-aware bucketed lookup (coordinates are hashed into
 *    cells of the cluster tolerance and neighbouring cells are
 *    probed, so equality never depends on which side of a cell
 *    boundary a coordinate falls). Only converged, verified solutions
 *    are ever returned. A PulseCache is bound to one coupling.
 *
 * Concurrency. Both caches are thread-safe. The SynthCache is on the
 * hot path of intra-job parallel block resynthesis (synth::BlockPool
 * workers hammer it concurrently), so its entries are striped across
 * independently locked shards keyed by the fingerprint hash; small
 * caches (below kStripeThreshold) collapse to a single shard, which
 * keeps exact global LRU semantics where capacity pressure actually
 * matters in tests. With multiple shards the capacity bound and LRU
 * eviction are per-shard — an approximation of global LRU that never
 * affects results, only which entries survive pressure. The
 * PulseCache keeps one mutex (its critical sections are microseconds
 * against milliseconds-to-seconds solves). Both are instrumented
 * with compiler::CacheCounters plus per-class solve times.
 *
 * Persistence. Both caches serialize to a single binary file
 * (save/load) in the persist.hh format: a versioned header carrying
 * everything a key's meaning depends on (the fingerprint
 * quantization scale for synthesis; coupling and tolerance for
 * pulses), then the entries, then a whole-file checksum. load() is
 * all-or-nothing: any mismatch (magic, version, header parameters)
 * or corruption (bad checksum, truncation, implausible counts)
 * returns false and leaves the cache exactly as it was — a clean
 * cold start, never an error. Saves go through an atomic rename so
 * readers never observe a partial file.
 */

#ifndef REQISC_SERVICE_CACHE_HH
#define REQISC_SERVICE_CACHE_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "compiler/metrics.hh"
#include "synth/synthesis.hh"
#include "uarch/calibration.hh"

namespace reqisc::service
{

using compiler::CacheCounters;

/** Per-class instrumentation row (see `--stats` in reqisc-compile). */
struct ClassStats
{
    weyl::WeylCoord coord;     //!< class representative (pulse cache)
    int blockCount = 0;        //!< synthesized SU(4)s (synth cache)
    std::int64_t uses = 0;     //!< lookups served (initial solve incl.)
    double solveSeconds = 0.0; //!< wall time of the initial solve
};

/** Memoization cache for 3-qubit block resynthesis. */
class SynthCache final : public synth::BlockMemo
{
  public:
    /** Capacities at or above this are striped across shards. */
    static constexpr std::size_t kStripeThreshold = 1024;

    explicit SynthCache(std::size_t capacity = 1 << 14);

    bool lookup(const qmath::Matrix &target,
                const synth::SynthesisOptions &opts,
                synth::SynthesisResult &out) override;

    void store(const qmath::Matrix &target,
               const synth::SynthesisOptions &opts,
               const synth::SynthesisResult &result,
               double solve_seconds) override;

    CacheCounters stats() const;
    std::size_t size() const;

    /** Lock stripes backing the cache (1 below kStripeThreshold). */
    int shardCount() const { return static_cast<int>(nshards_); }

    /** Snapshot of per-entry instrumentation (unordered). */
    std::vector<ClassStats> perClass() const;

    /**
     * Serialize every entry to `path` via atomic rename.
     * @return false on I/O failure (target left untouched).
     */
    bool save(const std::string &path) const;

    /**
     * Merge entries from a file previously written by save(). Any
     * mismatch or corruption returns false without modifying the
     * cache (clean cold start). Already-present keys are kept.
     */
    bool load(const std::string &path);

  private:
    struct Entry
    {
        std::vector<std::int64_t> key;
        synth::SynthesisResult result;  //!< local qubit ids 0..2
        double solveSeconds = 0.0;
        std::int64_t uses = 0;
        std::uint64_t lastUse = 0;
    };

    struct Shard
    {
        mutable std::mutex mu;
        std::unordered_multimap<std::uint64_t, Entry> entries;
        CacheCounters stats;
    };

    Shard &shardOf(std::uint64_t h) const
    {
        return shards_[h % nshards_];
    }

    void evictIfNeeded(Shard &s);  //!< requires s.mu held

    std::size_t capacity_;       //!< global bound (sum over shards)
    std::size_t nshards_;
    std::size_t shardCapacity_;
    std::unique_ptr<Shard[]> shards_;
    std::atomic<std::uint64_t> clock_{0};
};

/** Memoization cache for per-SU(4)-class pulse solutions. */
class PulseCache final : public uarch::PulseMemo
{
  public:
    /**
     * @param cpl the coupling all cached solutions belong to (a
     *        PulseCache must never be shared across couplings)
     * @param tol Weyl-coordinate distance within which two classes
     *        are considered equal (bucket width of the lookup)
     * @param capacity LRU bound on the number of classes kept
     */
    explicit PulseCache(const uarch::Coupling &cpl, double tol = 1e-6,
                        std::size_t capacity = 1 << 14);

    bool lookup(const weyl::WeylCoord &coord,
                uarch::PulseSolution &sol) override;

    void store(const weyl::WeylCoord &coord,
               const uarch::PulseSolution &sol,
               double solve_seconds) override;

    const uarch::Coupling &coupling() const { return cpl_; }
    double tolerance() const { return tol_; }

    CacheCounters stats() const;
    std::size_t size() const;

    /** Snapshot of per-class instrumentation (unordered). */
    std::vector<ClassStats> perClass() const;

    /**
     * Serialize every entry to `path` via atomic rename. The header
     * carries the bound coupling and tolerance.
     * @return false on I/O failure (target left untouched).
     */
    bool save(const std::string &path) const;

    /**
     * Merge entries from a file previously written by save(). The
     * file's coupling and tolerance must match this cache's exactly
     * (bit-for-bit); any mismatch or corruption returns false
     * without modifying the cache (clean cold start).
     */
    bool load(const std::string &path);

  private:
    struct Entry
    {
        weyl::WeylCoord coord;
        uarch::PulseSolution sol;
        double solveSeconds = 0.0;
        std::int64_t uses = 0;
        std::uint64_t lastUse = 0;
    };

    std::uint64_t cellOf(const weyl::WeylCoord &c) const;
    void evictIfNeeded();  //!< requires mu_ held

    uarch::Coupling cpl_;
    double tol_;
    std::size_t capacity_;
    mutable std::mutex mu_;
    /** Cell hash -> entries whose coordinate falls in that cell. */
    std::unordered_multimap<std::uint64_t, Entry> entries_;
    CacheCounters stats_;
    std::uint64_t clock_ = 0;
};

} // namespace reqisc::service

#endif // REQISC_SERVICE_CACHE_HH
