/**
 * @file
 * Binary (de)serialization primitives for the persistent caches.
 *
 * File layout (little-endian throughout):
 *
 *   u32 magic        'RQSC' (synth) / 'RQPC' (pulse)
 *   u32 formatVersion
 *   ... header + entries (format owned by the cache classes) ...
 *   u64 checksum     FNV-1a over every preceding byte
 *
 * The contract the caches build on:
 *
 *  - Writer buffers everything in memory and commits with
 *    write-to-temporary + std::rename, so a crash mid-save never
 *    leaves a partial file at the target path (atomic on POSIX).
 *  - Reader verifies length and trailing checksum before any field is
 *    parsed; a truncated or corrupted file fails cleanly (load
 *    returns false, the cache cold-starts) — it never throws and
 *    never yields garbage fields.
 *  - Doubles round-trip bit-exactly (raw IEEE-754 bit patterns), so
 *    a reloaded entry is indistinguishable from the freshly computed
 *    one — the bit-identical determinism contract of the service
 *    survives a restart.
 *  - Bumping a format version constant in the caller invalidates old
 *    files wholesale; there is no in-place migration.
 */

#ifndef REQISC_SERVICE_PERSIST_HH
#define REQISC_SERVICE_PERSIST_HH

#include <cstdint>
#include <string>

#include "circuit/gate.hh"
#include "qmath/matrix.hh"

namespace reqisc::service::persist
{

/** FNV-1a over a raw byte range (the file checksum). */
std::uint64_t fnv1aBytes(const void *data, std::size_t n);

/** Append-only little-endian buffer with an atomic file commit. */
class Writer
{
  public:
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    void i64(std::int64_t v);
    /** Raw IEEE-754 bit pattern; round-trips exactly. */
    void f64(double v);
    void matrix(const qmath::Matrix &m);
    void gate(const circuit::Gate &g);

    /**
     * Append the checksum trailer and atomically replace `path`
     * (write `path` + ".tmp", fsync-free rename). @return false on
     * any I/O failure; the target file is left untouched then.
     */
    bool commit(const std::string &path) const;

  private:
    std::string buf_;
};

/** Bounds-checked reader over a fully slurped file. */
class Reader
{
  public:
    /** Read a whole file; false if missing/unreadable. */
    static bool slurp(const std::string &path, std::string &out);

    explicit Reader(std::string data);

    /**
     * Verify the trailing checksum against everything before it and
     * shrink the readable range to exclude the trailer. Must be
     * called (and succeed) before parsing fields.
     */
    bool verifyChecksum();

    // Each accessor returns false on exhausted input (truncation).
    bool u32(std::uint32_t &v);
    bool u64(std::uint64_t &v);
    bool i64(std::int64_t &v);
    bool f64(double &v);
    bool matrix(qmath::Matrix &m);
    bool gate(circuit::Gate &g);

    std::size_t remaining() const { return end_ - pos_; }

  private:
    bool bytes(void *dst, std::size_t n);

    std::string data_;
    std::size_t pos_ = 0;
    std::size_t end_ = 0;
};

} // namespace reqisc::service::persist

#endif // REQISC_SERVICE_PERSIST_HH
