#include "service/persist.hh"

#include <cstdio>
#include <cstring>

namespace reqisc::service::persist
{

namespace
{

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

// Sanity caps applied while parsing: a corrupted count field must
// fail the read, not drive a multi-gigabyte allocation.
constexpr std::uint32_t kMaxDim = 256;
constexpr std::uint32_t kMaxGateQubits = 8;
constexpr std::uint32_t kMaxGateParams = 16;

} // namespace

std::uint64_t
fnv1aBytes(const void *data, std::size_t n)
{
    const auto *p = static_cast<const unsigned char *>(data);
    std::uint64_t h = kFnvOffset;
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= kFnvPrime;
    }
    return h;
}

// ---- Writer ------------------------------------------------------------

void
Writer::u32(std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
}

void
Writer::u64(std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
}

void
Writer::i64(std::int64_t v)
{
    u64(static_cast<std::uint64_t>(v));
}

void
Writer::f64(double v)
{
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
}

void
Writer::matrix(const qmath::Matrix &m)
{
    u32(static_cast<std::uint32_t>(m.rows()));
    u32(static_cast<std::uint32_t>(m.cols()));
    for (int i = 0; i < m.rows(); ++i) {
        for (int j = 0; j < m.cols(); ++j) {
            f64(m(i, j).real());
            f64(m(i, j).imag());
        }
    }
}

void
Writer::gate(const circuit::Gate &g)
{
    u32(static_cast<std::uint32_t>(g.op));
    u32(static_cast<std::uint32_t>(g.qubits.size()));
    for (int q : g.qubits)
        u32(static_cast<std::uint32_t>(q));
    u32(static_cast<std::uint32_t>(g.params.size()));
    for (double p : g.params)
        f64(p);
    u32(g.payload ? 1u : 0u);
    if (g.payload)
        matrix(*g.payload);
}

bool
Writer::commit(const std::string &path) const
{
    std::string out = buf_;
    const std::uint64_t sum = fnv1aBytes(out.data(), out.size());
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<char>((sum >> (8 * i)) & 0xffu));

    const std::string tmp = path + ".tmp";
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (!f)
        return false;
    const bool wrote =
        std::fwrite(out.data(), 1, out.size(), f) == out.size();
    const bool closed = std::fclose(f) == 0;
    if (!wrote || !closed) {
        std::remove(tmp.c_str());
        return false;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

// ---- Reader ------------------------------------------------------------

bool
Reader::slurp(const std::string &path, std::string &out)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return false;
    out.clear();
    char chunk[1 << 16];
    std::size_t n;
    while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0)
        out.append(chunk, n);
    const bool ok = std::ferror(f) == 0;
    std::fclose(f);
    return ok;
}

Reader::Reader(std::string data)
    : data_(std::move(data)), end_(data_.size())
{
}

bool
Reader::verifyChecksum()
{
    if (end_ < 8)
        return false;
    const std::size_t body = end_ - 8;
    std::uint64_t stored = 0;
    for (int i = 0; i < 8; ++i)
        stored |= static_cast<std::uint64_t>(
                      static_cast<unsigned char>(data_[body + i]))
                  << (8 * i);
    if (stored != fnv1aBytes(data_.data(), body))
        return false;
    end_ = body;
    return true;
}

bool
Reader::bytes(void *dst, std::size_t n)
{
    if (end_ - pos_ < n)
        return false;
    std::memcpy(dst, data_.data() + pos_, n);
    pos_ += n;
    return true;
}

bool
Reader::u32(std::uint32_t &v)
{
    unsigned char b[4];
    if (!bytes(b, 4))
        return false;
    v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(b[i]) << (8 * i);
    return true;
}

bool
Reader::u64(std::uint64_t &v)
{
    unsigned char b[8];
    if (!bytes(b, 8))
        return false;
    v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(b[i]) << (8 * i);
    return true;
}

bool
Reader::i64(std::int64_t &v)
{
    std::uint64_t u;
    if (!u64(u))
        return false;
    v = static_cast<std::int64_t>(u);
    return true;
}

bool
Reader::f64(double &v)
{
    std::uint64_t bits;
    if (!u64(bits))
        return false;
    std::memcpy(&v, &bits, sizeof(v));
    return true;
}

bool
Reader::matrix(qmath::Matrix &m)
{
    std::uint32_t rows, cols;
    if (!u32(rows) || !u32(cols))
        return false;
    if (rows > kMaxDim || cols > kMaxDim)
        return false;
    m = qmath::Matrix(static_cast<int>(rows), static_cast<int>(cols));
    for (std::uint32_t i = 0; i < rows; ++i) {
        for (std::uint32_t j = 0; j < cols; ++j) {
            double re, im;
            if (!f64(re) || !f64(im))
                return false;
            m(static_cast<int>(i), static_cast<int>(j)) = {re, im};
        }
    }
    return true;
}

bool
Reader::gate(circuit::Gate &g)
{
    std::uint32_t op, nq, np, has_payload;
    if (!u32(op))
        return false;
    if (op > static_cast<std::uint32_t>(circuit::Op::MCX))
        return false;
    g = circuit::Gate{};
    g.op = static_cast<circuit::Op>(op);
    if (!u32(nq) || nq > kMaxGateQubits)
        return false;
    g.qubits.resize(nq);
    for (std::uint32_t i = 0; i < nq; ++i) {
        std::uint32_t q;
        if (!u32(q))
            return false;
        g.qubits[i] = static_cast<int>(q);
    }
    if (!u32(np) || np > kMaxGateParams)
        return false;
    g.params.resize(np);
    for (std::uint32_t i = 0; i < np; ++i)
        if (!f64(g.params[i]))
            return false;
    if (!u32(has_payload) || has_payload > 1)
        return false;
    if (has_payload) {
        qmath::Matrix m;
        if (!matrix(m))
            return false;
        g.payload = std::make_shared<const qmath::Matrix>(std::move(m));
    }
    return true;
}

} // namespace reqisc::service::persist
