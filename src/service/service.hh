/**
 * @file
 * Concurrent compilation service (the persistent-compiler framing of
 * eQASM / Quil: the compiler sits in front of the QPU as a service,
 * not a one-shot script).
 *
 * A CompileService owns a fixed pool of worker threads, a job queue,
 * and the two SU(4)-equivalence memoization caches of cache.hh,
 * shared across all jobs so repeated classes in a batch are
 * synthesized and pulse-solved exactly once. Jobs are submitted as
 * circuits or raw QASM (parsed in the worker, so parse errors are
 * captured per job like any other failure) and collected with
 * wait()/waitAll().
 *
 * Determinism contract: compilation is a pure function of
 * (input, CompileOptions) — every job carries its own options with a
 * deterministic seed, and the SynthCache only short-circuits work it
 * keys on exactly and re-verifies to tolerance — so the compiled
 * artifacts (gate stream, final permutation) and circuit metrics are
 * bit-identical regardless of the thread count or the order in which
 * jobs interleave. tests/test_service.cc pins this down. Outside the
 * contract: pulse-solve *attribution* (cache hit/miss splits, and
 * JobResult::unsolvedClasses when two distinct classes fall within
 * the cluster tolerance and only one of them converges) follows the
 * schedule, because the PulseCache deliberately shares solutions
 * within tolerance — pulse solutions never feed back into compiled
 * circuits.
 */

#ifndef REQISC_SERVICE_SERVICE_HH
#define REQISC_SERVICE_SERVICE_HH

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include <functional>

#include "backend/backend.hh"
#include "backend/reconfigure.hh"
#include "compiler/metrics.hh"
#include "compiler/pipeline.hh"
#include "isa/program.hh"
#include "isa/schedule.hh"
#include "service/cache.hh"
#include "service/error.hh"
#include "synth/pool.hh"
#include "uarch/calibration.hh"

namespace reqisc::service
{

/**
 * DEPRECATED alias for the two named pipeline specs. The canonical
 * pipeline field is CompileRequest::pipelineSpec ("eff", "full" or
 * "custom:..."); this enum survives only so pre-spec call sites
 * (`req.pipeline = Pipeline::Eff`) keep compiling. It is consulted
 * solely by CompileRequest::resolvedPipelineSpec() when pipelineSpec
 * is empty.
 */
enum class Pipeline
{
    Eff,   //!< alias for pipelineSpec = "eff"
    Full,  //!< alias for pipelineSpec = "full"
};

/** Service-wide configuration (fixed at construction). */
struct ServiceOptions
{
    /** Worker threads; 0 means hardware_concurrency(). */
    int threads = 1;
    bool enableSynthCache = true;
    bool enablePulseCache = true;
    std::size_t synthCacheCapacity = 1 << 14;
    std::size_t pulseCacheCapacity = 1 << 14;
    /** Target hardware: duration model, pulse solves, calibration. */
    uarch::Coupling coupling = uarch::Coupling::xy(1.0);
    /** SU(4)-class clustering tolerance (calibration + pulse cache). */
    double pulseClusterTol = 1e-6;
    /**
     * Intra-job block-resynthesis workers for hier-synth: 1 solves
     * blocks serially (no pool), N > 1 creates one synth::BlockPool
     * with N-1 helper threads shared across all jobs (the submitting
     * worker participates, so the service's total thread count stays
     * `threads + blockWorkers - 1` no matter how many jobs are in
     * flight), 0 sizes the pool to the hardware concurrency left
     * over after the job workers. Compiled artifacts are
     * bit-identical at every setting.
     */
    int blockWorkers = 1;
    /**
     * Directory for persistent caches. When non-empty, the service
     * loads `synth.cache` / `pulse.cache` from it at construction
     * (silently cold-starting on missing, mismatched or corrupt
     * files) and saves both on destruction via atomic rename.
     */
    std::string cacheDir;
    /**
     * Concrete chip (per-edge calibration). When set, the service
     * runs the gate-set reconfiguration loop once at construction
     * and every job additionally: routes the compiled circuit onto
     * the chip topology (mirroring-SABRE), evaluates metrics and
     * schedules under the backend's per-edge duration model, and
     * fills Metrics::backend with the reconfigured-vs-uniform
     * fidelity estimates. The shared pulse cache stays bound to
     * `coupling`, which per-edge couplings would invalidate, so it
     * is disabled for heterogeneous backends.
     */
    std::shared_ptr<const backend::Backend> backend;
};

/** Outcome of one job; `ok == false` carries the captured error. */
struct JobResult
{
    std::uint64_t id = 0;
    std::string name;
    bool ok = false;
    /**
     * Legacy flat error text — exactly errorInfo.message (kept so
     * pre-structured-error consumers read what they always did).
     */
    std::string error;
    /**
     * Structured failure report: classified code + HTTP status +
     * message + detail (service/error.hh). Default-constructed
     * (isError() == false) on success.
     */
    ApiError errorInfo;
    compiler::CompileResult compiled;
    /** Incl. per-job cache counters and the per-pass trace. */
    compiler::Metrics metrics;
    /**
     * Physical circuit on the backend topology (SWAPs fused into
     * Can gates); empty unless the service has a backend. Logical
     * qubit q ends on wire `finalLayout[q]`.
     */
    circuit::Circuit routed;
    std::vector<int> finalLayout;
    /** Timed program (empty unless CompileRequest::schedule). */
    isa::Program program;
    /**
     * Calibration classes the solver could not reach. Like the cache
     * hit/miss split, this can follow the schedule in the corner case
     * of near-coincident classes (see the determinism contract above).
     */
    int unsolvedClasses = 0;
    double seconds = 0.0;            //!< wall time in the worker
};

/** One unit of work. */
struct CompileRequest
{
    std::string name;             //!< label echoed in the result
    circuit::Circuit input;       //!< used unless `qasm` is set
    std::string qasm;             //!< parsed in the worker when set
    /** DEPRECATED alias; see resolvedPipelineSpec(). */
    Pipeline pipeline = Pipeline::Full;
    /**
     * The canonical pipeline field: "eff", "full" or
     * "custom:pass,pass,..." (the pass-manager grammar,
     * compiler/pass_manager.hh). Custom lists run literally, except
     * that requested stages missing from the list are appended: an
     * `estimate` pass always (so JobResult metrics are evaluated)
     * and a `schedule` pass when `schedule` below is set; named
     * specs get the service stages (route on a backend, estimate,
     * reconfigure, schedule when requested) appended automatically.
     * A malformed spec is captured as the job's error like any
     * other per-job failure. Empty falls back to the deprecated
     * `pipeline` enum alias above.
     */
    std::string pipelineSpec;
    compiler::CompileOptions options;
    /** Build the per-circuit calibration plan (shared pulse cache). */
    bool calibrate = true;
    /**
     * Lower the compiled circuit into a timed RQISA program
     * (JobResult::program) and fill Metrics::schedule. The duration
     * model's coupling is overridden with the service-wide
     * ServiceOptions::coupling so timing, pulse solves and metrics
     * all describe the same device.
     */
    bool schedule = false;
    isa::ScheduleOptions scheduleOptions;
    /**
     * Optional per-pass progress observer, invoked on the worker
     * thread after every executed pass with the trace just recorded
     * (compiler::CompilationUnit::onPass). Must synchronize itself
     * and must not throw. Not part of the wire schema.
     */
    std::function<void(const compiler::PassTrace &)> onPass;
    /**
     * Optional completion callback. When set, the finished JobResult
     * is handed to this callback on the worker thread *instead of*
     * being stored for wait()/waitAll() — the submitter owns result
     * delivery (the daemon's job registry). Must not throw. Jobs
     * removed by cancel() never invoke it.
     */
    std::function<void(JobResult)> onDone;

    /**
     * The canonical pipeline spec this request runs: pipelineSpec
     * when non-empty, else the deprecated enum alias spelled as its
     * spec name. Everything downstream (runJob, the wire schema)
     * routes through this and compiler::parsePipelineSpec.
     */
    std::string resolvedPipelineSpec() const
    {
        if (!pipelineSpec.empty())
            return pipelineSpec;
        return pipeline == Pipeline::Eff ? "eff" : "full";
    }
};

/** The concurrent compilation service. */
class CompileService
{
  public:
    explicit CompileService(ServiceOptions opts = {});
    ~CompileService();  //!< drains the queue and joins the workers

    CompileService(const CompileService &) = delete;
    CompileService &operator=(const CompileService &) = delete;

    /** Enqueue one job; returns its id (ids are dense from 1). */
    std::uint64_t submit(CompileRequest req);

    /** Enqueue a batch; returns the ids in order. */
    std::vector<std::uint64_t>
    submitBatch(std::vector<CompileRequest> reqs);

    /**
     * Block until the given job finishes and take its result.
     * Throws std::invalid_argument for an unknown id (never issued,
     * or already taken).
     */
    JobResult wait(std::uint64_t id);

    /**
     * Block until every submitted job finishes; returns all results
     * not yet taken, in submission order.
     */
    std::vector<JobResult> waitAll();

    /** What cancel(id) found. */
    enum class CancelOutcome
    {
        Canceled,  //!< removed from the queue before any work ran
        Running,   //!< a worker already owns it; it will finish
        Finished,  //!< already completed (result stored or delivered)
        Unknown,   //!< id never issued
    };

    /**
     * Best-effort cancellation: a still-queued job is removed (its
     * onDone is never invoked and wait(id) will throw as for an
     * unknown id), a running or finished job is left untouched —
     * compilation is never interrupted mid-pass.
     */
    CancelOutcome cancel(std::uint64_t id);

    int threads() const { return threads_; }
    /** Effective block-resynthesis workers (>= 1). */
    int blockWorkers() const;

    /**
     * Write both caches to ServiceOptions::cacheDir now (also done
     * automatically on destruction). @return true when every enabled
     * cache saved; false with no cacheDir or on I/O failure.
     */
    bool saveCaches() const;
    /** Did construction load a persisted synth / pulse cache file? */
    bool synthCacheWarmStarted() const { return synthLoaded_; }
    bool pulseCacheWarmStarted() const { return pulseLoaded_; }

    /** The chip this service compiles to; nullptr without one. */
    const backend::Backend *backend() const
    {
        return opts_.backend.get();
    }
    /** The reconfigured gate-set tables; nullptr without a backend. */
    const backend::ReconfigureResult *reconfiguration() const
    {
        return opts_.backend ? &reconfig_ : nullptr;
    }

    /** Shared-cache instrumentation (service lifetime totals). */
    CacheCounters synthCacheStats() const;
    CacheCounters pulseCacheStats() const;
    /** Live class counts (entries currently cached). */
    std::size_t synthCacheSize() const;
    std::size_t pulseCacheSize() const;
    /** Per-class rows for `--stats`; empty when a cache is off. */
    std::vector<ClassStats> synthCachePerClass() const;
    std::vector<ClassStats> pulseCachePerClass() const;

  private:
    struct Job
    {
        std::uint64_t id = 0;
        CompileRequest req;
        /** Submission time; the worker reports the queue wait from
         *  it (obs queue-wait span + histogram). */
        std::chrono::steady_clock::time_point enqueuedAt;
    };

    void workerLoop();
    JobResult runJob(const Job &job);

    ServiceOptions opts_;
    int threads_ = 1;
    /** Gate-set tables, computed once when a backend is present. */
    backend::ReconfigureResult reconfig_;
    std::unique_ptr<SynthCache> synthCache_;   //!< null when disabled
    std::unique_ptr<PulseCache> pulseCache_;   //!< null when disabled
    /** Shared intra-job resynthesis pool; null when blockWorkers=1. */
    std::unique_ptr<synth::BlockPool> blockPool_;
    bool synthLoaded_ = false;   //!< persisted synth cache loaded
    bool pulseLoaded_ = false;   //!< persisted pulse cache loaded

    mutable std::mutex mu_;
    std::condition_variable workCv_;   //!< queue -> workers
    std::condition_variable doneCv_;   //!< results -> waiters
    std::deque<Job> queue_;
    std::map<std::uint64_t, JobResult> results_;  //!< finished jobs
    std::unordered_set<std::uint64_t> pending_;   //!< queued/running
    std::uint64_t nextId_ = 1;
    std::uint64_t inFlight_ = 0;       //!< queued or running jobs
    bool stopping_ = false;
    std::vector<std::thread> workers_;
};

} // namespace reqisc::service

#endif // REQISC_SERVICE_SERVICE_HH
