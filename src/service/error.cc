#include "service/error.hh"

#include <utility>

namespace reqisc::service
{

int
httpStatusForCode(const std::string &code)
{
    if (code == errc::kBadRequest || code == errc::kParseError ||
        code == errc::kBadPipelineSpec ||
        code == errc::kBadChipFile)
        return 400;
    if (code == errc::kNotFound)
        return 404;
    if (code == errc::kMethodNotAllowed)
        return 405;
    if (code == errc::kNotReady || code == errc::kNotCancelable ||
        code == errc::kAlreadyCompleted)
        return 409;
    if (code == errc::kCanceled)
        return 410;
    if (code == errc::kBodyTooLarge)
        return 413;
    if (code == errc::kQueueFull || code == errc::kQuotaExceeded)
        return 429;
    if (code == errc::kShuttingDown)
        return 503;
    return 500;  // calibrate-failed, internal, anything unknown
}

ApiError
makeError(const std::string &code, std::string message,
          std::string detail)
{
    ApiError e;
    e.code = code;
    e.httpStatus = httpStatusForCode(code);
    e.message = std::move(message);
    e.detail = std::move(detail);
    return e;
}

} // namespace reqisc::service
