#include "service/api.hh"

#include <cmath>
#include <utility>

#include "circuit/qasm.hh"
#include "compiler/pass_manager.hh"
#include "isa/assembly.hh"
#include "isa/schedule.hh"

namespace reqisc::service::api
{

using backend::JsonValue;

namespace
{

[[noreturn]] void
badRequest(const std::string &message, const std::string &detail = "")
{
    throw ApiException(
        makeError(errc::kBadRequest, message, detail));
}

/** Typed field access for the strict request parser. */
const JsonValue *
field(const JsonValue &obj, const char *key, JsonValue::Kind kind)
{
    const JsonValue *v = obj.find(key);
    if (!v)
        return nullptr;
    // Booleans arrive as Kind::Bool only; everything else must match
    // exactly (numbers are never coerced from strings).
    if (v->kind != kind)
        badRequest(std::string("field '") + key + "' must be " +
                   JsonValue::kindName(kind) + ", got " +
                   JsonValue::kindName(v->kind));
    return v;
}

} // namespace

JsonValue
errorToJson(const ApiError &e)
{
    JsonValue o = JsonValue::makeObject();
    o.set("code", JsonValue::makeString(e.code));
    o.set("httpStatus",
          JsonValue::makeNumber(static_cast<double>(e.httpStatus)));
    o.set("message", JsonValue::makeString(e.message));
    if (!e.detail.empty())
        o.set("detail", JsonValue::makeString(e.detail));
    return o;
}

ApiError
errorFromJson(const JsonValue &v)
{
    ApiError e;
    if (!v.isObject())
        return e;
    if (const JsonValue *c = v.find("code"); c && c->isString())
        e.code = c->str;
    if (const JsonValue *s = v.find("httpStatus");
        s && s->isNumber())
        e.httpStatus = static_cast<int>(s->number);
    if (const JsonValue *m = v.find("message"); m && m->isString())
        e.message = m->str;
    if (const JsonValue *d = v.find("detail"); d && d->isString())
        e.detail = d->str;
    return e;
}

JsonValue
passTraceToJson(const compiler::PassTrace &t)
{
    JsonValue o = JsonValue::makeObject();
    o.set("name", JsonValue::makeString(t.pass));
    o.set("seconds", JsonValue::makeNumber(t.seconds));
    o.set("gatesBefore",
          JsonValue::makeNumber(static_cast<double>(t.gatesBefore)));
    o.set("gatesAfter",
          JsonValue::makeNumber(static_cast<double>(t.gatesAfter)));
    o.set("count2QBefore", JsonValue::makeNumber(
                               static_cast<double>(t.count2QBefore)));
    o.set("count2QAfter", JsonValue::makeNumber(
                              static_cast<double>(t.count2QAfter)));
    o.set("makespan", JsonValue::makeNumber(t.makespanAfter));
    if (!t.note.empty())
        o.set("note", JsonValue::makeString(t.note));
    return o;
}

JsonValue
cacheCountersToJson(const compiler::CacheCounters &c)
{
    JsonValue o = JsonValue::makeObject();
    o.set("hits",
          JsonValue::makeNumber(static_cast<double>(c.hits)));
    o.set("misses",
          JsonValue::makeNumber(static_cast<double>(c.misses)));
    o.set("evictions",
          JsonValue::makeNumber(static_cast<double>(c.evictions)));
    o.set("solveSeconds", JsonValue::makeNumber(c.solveSeconds));
    return o;
}

JsonValue
metricsToJson(const compiler::Metrics &m)
{
    JsonValue o = JsonValue::makeObject();
    o.set("count2Q",
          JsonValue::makeNumber(static_cast<double>(m.count2Q)));
    o.set("depth2Q",
          JsonValue::makeNumber(static_cast<double>(m.depth2Q)));
    o.set("duration", JsonValue::makeNumber(m.duration));
    o.set("distinctSU4",
          JsonValue::makeNumber(static_cast<double>(m.distinctSU4)));
    o.set("synthCacheHitRate",
          JsonValue::makeNumber(m.synthCache.hitRate()));
    o.set("pulseCacheHitRate",
          JsonValue::makeNumber(m.pulseCache.hitRate()));
    o.set("synthCache", cacheCountersToJson(m.synthCache));
    o.set("pulseCache", cacheCountersToJson(m.pulseCache));
    JsonValue passes = JsonValue::makeArray();
    for (const compiler::PassTrace &t : m.passes)
        passes.push(passTraceToJson(t));
    o.set("passes", std::move(passes));
    if (m.backend.used) {
        JsonValue b = JsonValue::makeObject();
        b.set("routedSwaps", JsonValue::makeNumber(
                                 static_cast<double>(
                                     m.backend.routedSwaps)));
        b.set("routedSwapsAbsorbed",
              JsonValue::makeNumber(static_cast<double>(
                  m.backend.routedSwapsAbsorbed)));
        b.set("fidelityReconfigured",
              JsonValue::makeNumber(m.backend.fidelityReconfigured));
        b.set("fidelityUniform",
              JsonValue::makeNumber(m.backend.fidelityUniform));
        o.set("backend", std::move(b));
    }
    if (m.schedule.scheduled) {
        JsonValue s = JsonValue::makeObject();
        s.set("makespan", JsonValue::makeNumber(m.schedule.makespan));
        s.set("serialDuration",
              JsonValue::makeNumber(m.schedule.serialDuration));
        s.set("parallelism",
              JsonValue::makeNumber(m.schedule.parallelism));
        s.set("idleTime", JsonValue::makeNumber(m.schedule.idleTime));
        s.set("instructions",
              JsonValue::makeNumber(
                  static_cast<double>(m.schedule.instructions)));
        o.set("schedule", std::move(s));
    }
    return o;
}

JsonValue
compileRequestToJson(const CompileRequest &req)
{
    JsonValue o = JsonValue::makeObject();
    o.set("apiVersion",
          JsonValue::makeNumber(static_cast<double>(kApiVersion)));
    if (!req.name.empty())
        o.set("name", JsonValue::makeString(req.name));
    o.set("qasm", JsonValue::makeString(
                      req.qasm.empty() ? circuit::toQasm(req.input)
                                       : req.qasm));
    o.set("pipeline",
          JsonValue::makeString(req.resolvedPipelineSpec()));
    o.set("seed", JsonValue::makeNumber(
                      static_cast<double>(req.options.seed)));
    if (req.options.variationalMode)
        o.set("variational", JsonValue::makeBool(true));
    o.set("calibrate", JsonValue::makeBool(req.calibrate));
    if (req.schedule)
        o.set("schedule",
              JsonValue::makeString(
                  isa::strategyName(req.scheduleOptions.strategy)));
    else
        o.set("schedule", JsonValue::makeBool(false));
    return o;
}

CompileRequest
compileRequestFromJson(const JsonValue &v)
{
    if (!v.isObject())
        badRequest("request body must be a JSON object");
    static constexpr const char *kKnown[] = {
        "apiVersion", "name",      "qasm",     "pipeline",
        "seed",       "variational", "calibrate", "schedule",
    };
    for (const auto &[key, value] : v.object) {
        (void)value;
        bool known = false;
        for (const char *k : kKnown)
            known |= key == k;
        if (!known)
            badRequest("unknown field '" + key + "'");
    }
    if (const JsonValue *ver =
            field(v, "apiVersion", JsonValue::Kind::Number)) {
        if (ver->number != static_cast<double>(kApiVersion))
            badRequest("unsupported apiVersion (this server speaks " +
                       std::to_string(kApiVersion) + ")");
    }

    CompileRequest req;
    if (const JsonValue *name =
            field(v, "name", JsonValue::Kind::String))
        req.name = name->str;
    const JsonValue *qasm = field(v, "qasm", JsonValue::Kind::String);
    if (!qasm || qasm->str.empty())
        badRequest("missing required field 'qasm'");
    req.qasm = qasm->str;
    if (const JsonValue *pipeline =
            field(v, "pipeline", JsonValue::Kind::String)) {
        compiler::PipelineSpec spec;
        std::string error;
        if (!compiler::parsePipelineSpec(pipeline->str, spec, error))
            throw ApiException(makeError(errc::kBadPipelineSpec,
                                         error, pipeline->str));
        req.pipelineSpec = pipeline->str;
    } else {
        req.pipelineSpec = "full";
    }
    if (const JsonValue *seed =
            field(v, "seed", JsonValue::Kind::Number)) {
        if (seed->number < 0 ||
            seed->number != std::floor(seed->number))
            badRequest("field 'seed' must be a non-negative integer");
        req.options.seed = static_cast<unsigned>(seed->number);
    }
    if (const JsonValue *variational =
            field(v, "variational", JsonValue::Kind::Bool))
        req.options.variationalMode = variational->boolean;
    if (const JsonValue *calibrate =
            field(v, "calibrate", JsonValue::Kind::Bool))
        req.calibrate = calibrate->boolean;
    if (const JsonValue *schedule = v.find("schedule")) {
        if (schedule->kind == JsonValue::Kind::Bool) {
            req.schedule = schedule->boolean;
        } else if (schedule->isString()) {
            if (!isa::strategyFromName(
                    schedule->str, req.scheduleOptions.strategy))
                badRequest("field 'schedule' must be false, true, "
                           "\"serial\", \"asap\" or \"alap\"",
                           schedule->str);
            req.schedule = true;
        } else {
            badRequest("field 'schedule' must be a bool or a "
                       "strategy name");
        }
    }
    return req;
}

JsonValue
jobResultToJson(const JobResult &r, const ResultEmitOptions &opts)
{
    JsonValue o = JsonValue::makeObject();
    o.set("apiVersion",
          JsonValue::makeNumber(static_cast<double>(kApiVersion)));
    o.set("id",
          JsonValue::makeNumber(static_cast<double>(r.id)));
    o.set("name", JsonValue::makeString(r.name));
    o.set("ok", JsonValue::makeBool(r.ok));
    if (!r.ok) {
        // A pre-structured-errors result (or one built by hand in a
        // test) may only carry the legacy string; never emit an
        // empty code for it.
        ApiError err = r.errorInfo;
        if (!err.isError())
            err = makeError(errc::kInternal, r.error);
        o.set("error", errorToJson(err));
        o.set("seconds", JsonValue::makeNumber(r.seconds));
        return o;
    }
    // Success: splice the metrics fields in at the top level, the
    // shape `reqisc-compile --json` has always printed.
    JsonValue metrics = metricsToJson(r.metrics);
    for (auto &[key, value] : metrics.object)
        o.set(key, std::move(value));
    o.set("unsolvedClasses",
          JsonValue::makeNumber(
              static_cast<double>(r.unsolvedClasses)));
    o.set("seconds", JsonValue::makeNumber(r.seconds));
    if (r.metrics.schedule.scheduled) {
        // Report the strategy that actually ran: a custom schedule:X
        // trace token wins over the caller-supplied label.
        std::string strategy = opts.scheduleStrategy;
        for (const compiler::PassTrace &t : r.metrics.passes)
            if (t.pass.rfind("schedule:", 0) == 0)
                strategy = t.pass.substr(9);
        JsonValue *sched = nullptr;
        for (auto &[key, value] : o.object)
            if (key == "schedule")
                sched = &value;
        if (sched && !strategy.empty())
            sched->set("strategy", JsonValue::makeString(strategy));
        if (sched && opts.isaText) {
            try {
                sched->set("isa", JsonValue::makeString(
                                      isa::toAssembly(r.program)));
            } catch (const std::exception &e) {
                sched->set("isaError",
                           JsonValue::makeString(e.what()));
            }
        }
    }
    if (opts.artifacts) {
        o.set("circuit", JsonValue::makeString(
                             circuit::toQasm(r.compiled.circuit)));
        JsonValue perm = JsonValue::makeArray();
        for (int p : r.compiled.finalPermutation)
            perm.push(
                JsonValue::makeNumber(static_cast<double>(p)));
        o.set("finalPermutation", std::move(perm));
        if (!r.routed.gates().empty() || !r.finalLayout.empty()) {
            o.set("routed",
                  JsonValue::makeString(circuit::toQasm(r.routed)));
            JsonValue layout = JsonValue::makeArray();
            for (int p : r.finalLayout)
                layout.push(
                    JsonValue::makeNumber(static_cast<double>(p)));
            o.set("finalLayout", std::move(layout));
        }
    }
    return o;
}

} // namespace reqisc::service::api
