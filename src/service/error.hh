/**
 * @file
 * The one structured error shape shared by every failure surface:
 * daemon wire responses, JobResult::error, and the CLI exit paths.
 *
 * An ApiError carries a stable kebab-case `code` (the wire
 * identifier clients branch on), the HTTP status the daemon maps it
 * to, a one-line human `message`, and optional `detail` context
 * (file:line, the offending token). Codes are versioned with the
 * wire schema (service/api.hh): existing codes never change meaning
 * within an apiVersion; new ones may be added.
 *
 * Inside the service, failures that have a distinct code are thrown
 * as ApiException and classified in CompileService::runJob; anything
 * else (an unexpected std::exception) becomes `internal`.
 */

#ifndef REQISC_SERVICE_ERROR_HH
#define REQISC_SERVICE_ERROR_HH

#include <stdexcept>
#include <string>

namespace reqisc::service
{

/** Well-known error codes (the wire contract; see docs/SERVICE.md). */
namespace errc
{
inline constexpr const char *kBadRequest = "bad-request";
inline constexpr const char *kParseError = "parse-error";
inline constexpr const char *kBadPipelineSpec = "bad-pipeline-spec";
inline constexpr const char *kBadChipFile = "bad-chip-file";
inline constexpr const char *kNotFound = "not-found";
inline constexpr const char *kMethodNotAllowed = "method-not-allowed";
inline constexpr const char *kNotReady = "not-ready";
inline constexpr const char *kNotCancelable = "not-cancelable";
inline constexpr const char *kAlreadyCompleted = "already-completed";
inline constexpr const char *kCanceled = "canceled";
inline constexpr const char *kBodyTooLarge = "body-too-large";
inline constexpr const char *kQueueFull = "queue-full";
inline constexpr const char *kQuotaExceeded = "quota-exceeded";
inline constexpr const char *kCalibrateFailed = "calibrate-failed";
inline constexpr const char *kShuttingDown = "shutting-down";
inline constexpr const char *kInternal = "internal";
} // namespace errc

/** Structured error: {code, httpStatus, message, detail}. */
struct ApiError
{
    std::string code;     //!< stable wire identifier (errc::*)
    int httpStatus = 500;
    std::string message;  //!< one-line human description
    std::string detail;   //!< optional context ("", when none)

    /** True when this carries an error (default-constructed = none). */
    bool isError() const { return !code.empty(); }
};

/** HTTP status a well-known code maps to (500 for unknown codes). */
int httpStatusForCode(const std::string &code);

/** Build an ApiError with the code's canonical HTTP status. */
ApiError makeError(const std::string &code, std::string message,
                   std::string detail = "");

/**
 * An ApiError as a C++ exception, for the classified throw sites in
 * the service and daemon. what() is the message alone, so catch
 * sites that only keep the string (JobResult::error's legacy field)
 * read exactly what they did before codes existed.
 */
class ApiException : public std::runtime_error
{
  public:
    explicit ApiException(ApiError err)
        : std::runtime_error(err.message), err_(std::move(err))
    {
    }

    const ApiError &error() const { return err_; }

  private:
    ApiError err_;
};

} // namespace reqisc::service

#endif // REQISC_SERVICE_ERROR_HH
