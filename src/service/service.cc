#include "service/service.hh"

#include <chrono>
#include <stdexcept>

#include "circuit/qasm.hh"
#include "route/sabre.hh"

namespace reqisc::service
{

namespace
{

/**
 * Per-job counting adapters: forward to the shared cache while
 * attributing this job's hits/misses/solve time to its Metrics. The
 * hit/miss *split* depends on what other jobs populated first; the
 * compiled artifacts do not (see the determinism contract).
 */
class CountingBlockMemo final : public synth::BlockMemo
{
  public:
    explicit CountingBlockMemo(synth::BlockMemo *inner)
        : inner_(inner)
    {
    }

    bool lookup(const qmath::Matrix &target,
                const synth::SynthesisOptions &opts,
                synth::SynthesisResult &out) override
    {
        const bool hit = inner_->lookup(target, opts, out);
        if (hit)
            ++counters_.hits;
        else
            ++counters_.misses;
        return hit;
    }

    void store(const qmath::Matrix &target,
               const synth::SynthesisOptions &opts,
               const synth::SynthesisResult &result,
               double solve_seconds) override
    {
        counters_.solveSeconds += solve_seconds;
        inner_->store(target, opts, result, solve_seconds);
    }

    const CacheCounters &counters() const { return counters_; }

  private:
    synth::BlockMemo *inner_;
    CacheCounters counters_;
};

class CountingPulseMemo final : public uarch::PulseMemo
{
  public:
    explicit CountingPulseMemo(uarch::PulseMemo *inner)
        : inner_(inner)
    {
    }

    bool lookup(const weyl::WeylCoord &coord,
                uarch::PulseSolution &sol) override
    {
        const bool hit = inner_->lookup(coord, sol);
        if (hit)
            ++counters_.hits;
        else
            ++counters_.misses;
        return hit;
    }

    void store(const weyl::WeylCoord &coord,
               const uarch::PulseSolution &sol,
               double solve_seconds) override
    {
        counters_.solveSeconds += solve_seconds;
        inner_->store(coord, sol, solve_seconds);
    }

    const CacheCounters &counters() const { return counters_; }

  private:
    uarch::PulseMemo *inner_;
    CacheCounters counters_;
};

} // namespace

CompileService::CompileService(ServiceOptions opts)
    : opts_(opts)
{
    threads_ = opts_.threads;
    if (threads_ <= 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        threads_ = hw ? static_cast<int>(hw) : 1;
    }
    if (opts_.backend) {
        // The gate-set selection loop runs once per service; jobs
        // only read the tables.
        reconfig_ = backend::reconfigure(*opts_.backend);
        if (opts_.backend->isHomogeneous() &&
            !opts_.backend->edges().empty()) {
            // One coupling chip-wide: the shared pulse cache can
            // serve it directly. (Backend::uniform can produce an
            // edge-less single-qubit chip; keep the default
            // coupling there.)
            opts_.coupling = opts_.backend->edges().front().coupling;
        } else {
            // The pulse cache is bound to a single coupling, which
            // heterogeneous chips do not have.
            opts_.enablePulseCache = false;
        }
    }
    if (opts_.enableSynthCache)
        synthCache_ = std::make_unique<SynthCache>(
            opts_.synthCacheCapacity);
    if (opts_.enablePulseCache)
        pulseCache_ = std::make_unique<PulseCache>(
            opts_.coupling, opts_.pulseClusterTol,
            opts_.pulseCacheCapacity);
    workers_.reserve(threads_);
    for (int i = 0; i < threads_; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

CompileService::~CompileService()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        stopping_ = true;
    }
    workCv_.notify_all();
    for (std::thread &t : workers_)
        t.join();
}

std::uint64_t
CompileService::submit(CompileRequest req)
{
    std::uint64_t id;
    {
        std::lock_guard<std::mutex> lk(mu_);
        id = nextId_++;
        queue_.push_back(Job{id, std::move(req)});
        pending_.insert(id);
        ++inFlight_;
    }
    workCv_.notify_one();
    return id;
}

std::vector<std::uint64_t>
CompileService::submitBatch(std::vector<CompileRequest> reqs)
{
    std::vector<std::uint64_t> ids;
    ids.reserve(reqs.size());
    {
        std::lock_guard<std::mutex> lk(mu_);
        for (CompileRequest &r : reqs) {
            const std::uint64_t id = nextId_++;
            queue_.push_back(Job{id, std::move(r)});
            pending_.insert(id);
            ++inFlight_;
            ids.push_back(id);
        }
    }
    workCv_.notify_all();
    return ids;
}

JobResult
CompileService::wait(std::uint64_t id)
{
    std::unique_lock<std::mutex> lk(mu_);
    if (id == 0 || id >= nextId_)
        throw std::invalid_argument("unknown job id");
    for (;;) {
        auto it = results_.find(id);
        if (it != results_.end()) {
            JobResult res = std::move(it->second);
            results_.erase(it);
            return res;
        }
        if (pending_.find(id) == pending_.end())
            throw std::invalid_argument(
                "job result already taken");
        doneCv_.wait(lk);
    }
}

std::vector<JobResult>
CompileService::waitAll()
{
    std::unique_lock<std::mutex> lk(mu_);
    doneCv_.wait(lk, [this] { return inFlight_ == 0; });
    std::vector<JobResult> out;
    out.reserve(results_.size());
    for (auto &[id, res] : results_) {
        (void)id;
        out.push_back(std::move(res));
    }
    results_.clear();
    return out;
}

void
CompileService::workerLoop()
{
    for (;;) {
        Job job;
        {
            std::unique_lock<std::mutex> lk(mu_);
            workCv_.wait(lk, [this] {
                return stopping_ || !queue_.empty();
            });
            if (queue_.empty())
                return;  // stopping_ and fully drained
            job = std::move(queue_.front());
            queue_.pop_front();
        }
        JobResult res = runJob(job);
        {
            std::lock_guard<std::mutex> lk(mu_);
            pending_.erase(job.id);
            results_.emplace(job.id, std::move(res));
            --inFlight_;
        }
        doneCv_.notify_all();
    }
}

JobResult
CompileService::runJob(const Job &job)
{
    JobResult res;
    res.id = job.id;
    res.name = job.req.name;
    const auto t0 = std::chrono::steady_clock::now();
    try {
        const circuit::Circuit input =
            job.req.qasm.empty() ? job.req.input
                                 : circuit::fromQasm(job.req.qasm);
        compiler::CompileOptions copts = job.req.options;
        CountingBlockMemo synthMemo(synthCache_.get());
        if (synthCache_)
            copts.synthMemo = &synthMemo;
        compiler::CompileResult compiled =
            job.req.pipeline == Pipeline::Eff
                ? compiler::reqiscEff(input, copts)
                : compiler::reqiscFull(input, copts);
        if (opts_.backend) {
            // Backend-aware path: route onto the chip, then time,
            // schedule and score everything against the per-edge
            // calibration.
            const backend::Backend &chip = *opts_.backend;
            route::RouteOptions ropts;
            ropts.mirroring = true;
            ropts.seed = copts.seed;
            const route::RouteResult rr = route::sabreRoute(
                compiled.circuit, chip.topology(), ropts);
            // SU(4)-ISA convention: an inserted SWAP is one Can gate.
            circuit::Circuit phys(rr.circuit.numQubits());
            for (const circuit::Gate &g : rr.circuit) {
                if (g.op == circuit::Op::SWAP)
                    phys.add(circuit::Gate::can(
                        g.qubits[0], g.qubits[1],
                        weyl::WeylCoord::swap()));
                else
                    phys.add(g);
            }
            const isa::DurationModel durations =
                chip.durationModel();
            res.metrics = compiler::evaluate(
                phys, [&durations](const circuit::Gate &g) {
                    return g.numQubits() < 2 ? 0.0
                                             : durations.gate(g);
                });
            res.metrics.backend.used = true;
            res.metrics.backend.routedSwaps = rr.swapsInserted;
            res.metrics.backend.routedSwapsAbsorbed =
                rr.swapsAbsorbed;
            res.metrics.backend.fidelityReconfigured =
                backend::estimateFidelity(phys, chip,
                                          reconfig_.table);
            res.metrics.backend.fidelityUniform =
                backend::estimateFidelity(phys, chip,
                                          reconfig_.uniformTable);
            // Logical q -> compiled wire -> physical wire.
            res.finalLayout.resize(
                compiled.finalPermutation.size());
            for (size_t q = 0;
                 q < compiled.finalPermutation.size(); ++q)
                res.finalLayout[q] = rr.finalLayout[static_cast<
                    size_t>(compiled.finalPermutation[q])];
            if (job.req.schedule) {
                isa::ScheduleOptions sopts =
                    job.req.scheduleOptions;
                sopts.durations = durations;
                sopts.topology = &chip.topology();
                res.program = isa::schedule(phys, sopts);
                res.metrics.schedule = res.program.stats();
            }
            res.routed = std::move(phys);
        } else {
            res.metrics = compiler::evaluate(
                compiled.circuit,
                compiler::reqiscDurationModel(opts_.coupling));
            if (job.req.schedule) {
                isa::ScheduleOptions sopts =
                    job.req.scheduleOptions;
                sopts.durations.coupling = opts_.coupling;
                res.program = isa::schedule(compiled.circuit, sopts);
                res.metrics.schedule = res.program.stats();
            }
        }
        if (synthCache_)
            res.metrics.synthCache = synthMemo.counters();
        // On a heterogeneous chip the reconfigured table *is* the
        // calibration set (one native instruction per edge), so the
        // per-circuit pulse-solve pass is skipped.
        const bool heterogeneousChip =
            opts_.backend && !opts_.backend->isHomogeneous();
        if (job.req.calibrate && !heterogeneousChip) {
            CountingPulseMemo pulseMemo(pulseCache_.get());
            const uarch::CalibrationPlan plan =
                uarch::planCalibration(
                    compiled.circuit, opts_.coupling,
                    opts_.pulseClusterTol,
                    pulseCache_ ? &pulseMemo : nullptr);
            res.unsolvedClasses = plan.unsolved;
            if (pulseCache_)
                res.metrics.pulseCache = pulseMemo.counters();
        }
        res.compiled = std::move(compiled);
        res.ok = true;
    } catch (const std::exception &e) {
        res.ok = false;
        res.error = e.what();
    } catch (...) {
        res.ok = false;
        res.error = "unknown error";
    }
    res.seconds = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    return res;
}

CacheCounters
CompileService::synthCacheStats() const
{
    return synthCache_ ? synthCache_->stats() : CacheCounters{};
}

CacheCounters
CompileService::pulseCacheStats() const
{
    return pulseCache_ ? pulseCache_->stats() : CacheCounters{};
}

std::size_t
CompileService::synthCacheSize() const
{
    return synthCache_ ? synthCache_->size() : 0;
}

std::size_t
CompileService::pulseCacheSize() const
{
    return pulseCache_ ? pulseCache_->size() : 0;
}

std::vector<ClassStats>
CompileService::synthCachePerClass() const
{
    return synthCache_ ? synthCache_->perClass()
                       : std::vector<ClassStats>{};
}

std::vector<ClassStats>
CompileService::pulseCachePerClass() const
{
    return pulseCache_ ? pulseCache_->perClass()
                       : std::vector<ClassStats>{};
}

} // namespace reqisc::service
