#include "service/service.hh"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <stdexcept>
#include <system_error>

#include "circuit/qasm.hh"
#include "compiler/pass_manager.hh"
#include "obs/obs.hh"

namespace reqisc::service
{

namespace
{

/** Service-level metrics, registered lazily on first service use. */
struct ServiceMetrics
{
    obs::Gauge *jobsInflight;
    obs::Counter *jobsCompleted;
    obs::Counter *jobsFailed;
    obs::Histogram *queueWaitSeconds;
    obs::Histogram *jobSeconds;
};

ServiceMetrics &serviceMetrics()
{
    static ServiceMetrics m = [] {
        auto &r = obs::Registry::global();
        return ServiceMetrics{
            r.gauge("reqisc_jobs_inflight",
                    "Jobs queued or running in the service"),
            r.counter("reqisc_jobs_completed_total",
                      "Jobs finished successfully"),
            r.counter("reqisc_jobs_failed_total",
                      "Jobs finished with a captured error"),
            r.histogram("reqisc_job_queue_wait_seconds",
                        "Time from submit() to a worker picking the "
                        "job up"),
            r.histogram("reqisc_job_seconds",
                        "Wall time of one job in its worker"),
        };
    }();
    return m;
}

/**
 * Per-job counting adapters: forward to the shared cache while
 * attributing this job's hits/misses/solve time to its Metrics. The
 * hit/miss *split* depends on what other jobs populated first; the
 * compiled artifacts do not (see the determinism contract).
 *
 * The block memo is consulted from BlockPool workers when intra-job
 * parallel resynthesis is on, so its counters take a (cheap) lock.
 */
class CountingBlockMemo final : public synth::BlockMemo
{
  public:
    explicit CountingBlockMemo(synth::BlockMemo *inner)
        : inner_(inner)
    {
    }

    bool lookup(const qmath::Matrix &target,
                const synth::SynthesisOptions &opts,
                synth::SynthesisResult &out) override
    {
        const bool hit = inner_->lookup(target, opts, out);
        std::lock_guard<std::mutex> lk(mu_);
        if (hit)
            ++counters_.hits;
        else
            ++counters_.misses;
        return hit;
    }

    void store(const qmath::Matrix &target,
               const synth::SynthesisOptions &opts,
               const synth::SynthesisResult &result,
               double solve_seconds) override
    {
        {
            std::lock_guard<std::mutex> lk(mu_);
            counters_.solveSeconds += solve_seconds;
        }
        inner_->store(target, opts, result, solve_seconds);
    }

    CacheCounters counters() const
    {
        std::lock_guard<std::mutex> lk(mu_);
        return counters_;
    }

  private:
    synth::BlockMemo *inner_;
    mutable std::mutex mu_;
    CacheCounters counters_;
};

class CountingPulseMemo final : public uarch::PulseMemo
{
  public:
    explicit CountingPulseMemo(uarch::PulseMemo *inner)
        : inner_(inner)
    {
    }

    bool lookup(const weyl::WeylCoord &coord,
                uarch::PulseSolution &sol) override
    {
        const bool hit = inner_->lookup(coord, sol);
        if (hit)
            ++counters_.hits;
        else
            ++counters_.misses;
        return hit;
    }

    void store(const weyl::WeylCoord &coord,
               const uarch::PulseSolution &sol,
               double solve_seconds) override
    {
        counters_.solveSeconds += solve_seconds;
        inner_->store(coord, sol, solve_seconds);
    }

    const CacheCounters &counters() const { return counters_; }

  private:
    uarch::PulseMemo *inner_;
    CacheCounters counters_;
};

/** Cache file names inside ServiceOptions::cacheDir. */
constexpr const char *kSynthCacheFile = "synth.cache";
constexpr const char *kPulseCacheFile = "pulse.cache";

std::string
joinPath(const std::string &dir, const char *file)
{
    return (std::filesystem::path(dir) / file).string();
}

} // namespace

CompileService::CompileService(ServiceOptions opts)
    : opts_(opts)
{
    threads_ = opts_.threads;
    if (threads_ <= 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        threads_ = hw ? static_cast<int>(hw) : 1;
    }
    if (opts_.backend) {
        // The gate-set selection loop runs once per service; jobs
        // only read the tables.
        reconfig_ = backend::reconfigure(*opts_.backend);
        if (opts_.backend->isHomogeneous() &&
            !opts_.backend->edges().empty()) {
            // One coupling chip-wide: the shared pulse cache can
            // serve it directly. (Backend::uniform can produce an
            // edge-less single-qubit chip; keep the default
            // coupling there.)
            opts_.coupling = opts_.backend->edges().front().coupling;
        } else {
            // The pulse cache is bound to a single coupling, which
            // heterogeneous chips do not have.
            opts_.enablePulseCache = false;
        }
    }
    if (opts_.enableSynthCache)
        synthCache_ = std::make_unique<SynthCache>(
            opts_.synthCacheCapacity);
    if (opts_.enablePulseCache)
        pulseCache_ = std::make_unique<PulseCache>(
            opts_.coupling, opts_.pulseClusterTol,
            opts_.pulseCacheCapacity);
    if (!opts_.cacheDir.empty()) {
        if (synthCache_)
            synthLoaded_ = synthCache_->load(
                joinPath(opts_.cacheDir, kSynthCacheFile));
        if (pulseCache_)
            pulseLoaded_ = pulseCache_->load(
                joinPath(opts_.cacheDir, kPulseCacheFile));
    }
    // One pool shared by every job keeps the total thread count at
    // threads_ + helpers regardless of how many jobs are in flight.
    int block_workers = opts_.blockWorkers;
    if (block_workers <= 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        block_workers = std::max(
            1, static_cast<int>(hw ? hw : 1) - threads_ + 1);
    }
    if (block_workers > 1)
        blockPool_ =
            std::make_unique<synth::BlockPool>(block_workers - 1);
    obs::log(obs::LogLevel::Info, "service", "service started",
             {{"threads", std::to_string(threads_)},
              {"blockWorkers", std::to_string(block_workers)},
              {"synthCache", synthCache_ ? "on" : "off"},
              {"pulseCache", pulseCache_ ? "on" : "off"},
              {"cacheDir", opts_.cacheDir}});
    workers_.reserve(threads_);
    for (int i = 0; i < threads_; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

CompileService::~CompileService()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        stopping_ = true;
    }
    workCv_.notify_all();
    for (std::thread &t : workers_)
        t.join();
    if (!opts_.cacheDir.empty())
        saveCaches();  // best effort; failure leaves old files intact
}

int
CompileService::blockWorkers() const
{
    return blockPool_ ? blockPool_->workers() : 1;
}

bool
CompileService::saveCaches() const
{
    if (opts_.cacheDir.empty())
        return false;
    std::error_code ec;
    std::filesystem::create_directories(opts_.cacheDir, ec);
    bool ok = true;
    if (synthCache_)
        ok &= synthCache_->save(
            joinPath(opts_.cacheDir, kSynthCacheFile));
    if (pulseCache_)
        ok &= pulseCache_->save(
            joinPath(opts_.cacheDir, kPulseCacheFile));
    return ok;
}

std::uint64_t
CompileService::submit(CompileRequest req)
{
    std::uint64_t id;
    {
        std::lock_guard<std::mutex> lk(mu_);
        id = nextId_++;
        queue_.push_back(Job{id, std::move(req),
                             std::chrono::steady_clock::now()});
        pending_.insert(id);
        ++inFlight_;
        serviceMetrics().jobsInflight->set(
            static_cast<double>(inFlight_));
    }
    workCv_.notify_one();
    return id;
}

std::vector<std::uint64_t>
CompileService::submitBatch(std::vector<CompileRequest> reqs)
{
    std::vector<std::uint64_t> ids;
    ids.reserve(reqs.size());
    {
        std::lock_guard<std::mutex> lk(mu_);
        const auto now = std::chrono::steady_clock::now();
        for (CompileRequest &r : reqs) {
            const std::uint64_t id = nextId_++;
            queue_.push_back(Job{id, std::move(r), now});
            pending_.insert(id);
            ++inFlight_;
            ids.push_back(id);
        }
        serviceMetrics().jobsInflight->set(
            static_cast<double>(inFlight_));
    }
    workCv_.notify_all();
    return ids;
}

JobResult
CompileService::wait(std::uint64_t id)
{
    std::unique_lock<std::mutex> lk(mu_);
    if (id == 0 || id >= nextId_)
        throw std::invalid_argument("unknown job id");
    for (;;) {
        auto it = results_.find(id);
        if (it != results_.end()) {
            JobResult res = std::move(it->second);
            results_.erase(it);
            return res;
        }
        if (pending_.find(id) == pending_.end())
            throw std::invalid_argument(
                "job result already taken");
        doneCv_.wait(lk);
    }
}

std::vector<JobResult>
CompileService::waitAll()
{
    std::unique_lock<std::mutex> lk(mu_);
    doneCv_.wait(lk, [this] { return inFlight_ == 0; });
    std::vector<JobResult> out;
    out.reserve(results_.size());
    for (auto &[id, res] : results_) {
        (void)id;
        out.push_back(std::move(res));
    }
    results_.clear();
    return out;
}

CompileService::CancelOutcome
CompileService::cancel(std::uint64_t id)
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        if (id == 0 || id >= nextId_)
            return CancelOutcome::Unknown;
        auto it = std::find_if(
            queue_.begin(), queue_.end(),
            [id](const Job &j) { return j.id == id; });
        if (it != queue_.end()) {
            queue_.erase(it);
            pending_.erase(id);
            --inFlight_;
            serviceMetrics().jobsInflight->set(
                static_cast<double>(inFlight_));
        } else if (pending_.count(id)) {
            return CancelOutcome::Running;
        } else {
            return CancelOutcome::Finished;
        }
    }
    // The canceled job may have been the last in-flight one.
    doneCv_.notify_all();
    obs::log(obs::LogLevel::Info, "service", "job canceled",
             {{"id", std::to_string(id)}});
    return CancelOutcome::Canceled;
}

void
CompileService::workerLoop()
{
    for (;;) {
        Job job;
        {
            std::unique_lock<std::mutex> lk(mu_);
            workCv_.wait(lk, [this] {
                return stopping_ || !queue_.empty();
            });
            if (queue_.empty())
                return;  // stopping_ and fully drained
            job = std::move(queue_.front());
            queue_.pop_front();
        }
        JobResult res = runJob(job);
        // A request with onDone owns result delivery (the daemon's
        // job registry): hand the result over outside the lock and
        // skip the results_ store so it is never double-delivered.
        const bool deliver = static_cast<bool>(job.req.onDone);
        {
            std::lock_guard<std::mutex> lk(mu_);
            pending_.erase(job.id);
            if (!deliver)
                results_.emplace(job.id, std::move(res));
            --inFlight_;
            serviceMetrics().jobsInflight->set(
                static_cast<double>(inFlight_));
        }
        if (deliver)
            job.req.onDone(std::move(res));
        doneCv_.notify_all();
    }
}

JobResult
CompileService::runJob(const Job &job)
{
    JobResult res;
    res.id = job.id;
    res.name = job.req.name;
    const std::string jobName = job.req.name.empty()
                                    ? std::to_string(job.id)
                                    : job.req.name;
    // Everything recorded under this scope — spans, log records,
    // flight events, even block tasks fanned out to pool threads —
    // carries job=<name> for cross-artifact correlation.
    obs::JobScope jobScope(jobName);
    obs::log(obs::LogLevel::Debug, "service", "job started",
             {{"id", std::to_string(job.id)}, {"name", jobName}});
    obs::Span jobSpan("job:" + jobName);
    jobSpan.annotate("id", std::to_string(job.id));
    obs::recordSpan("queue-wait", job.enqueuedAt,
                    std::chrono::steady_clock::now(),
                    jobSpan.context());
    serviceMetrics().queueWaitSeconds->observe(
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - job.enqueuedAt)
            .count());
    try {
        circuit::Circuit input;
        if (job.req.qasm.empty()) {
            input = job.req.input;
        } else {
            obs::Span parseSpan("parse");
            try {
                input = circuit::fromQasm(job.req.qasm);
            } catch (const std::exception &e) {
                throw ApiException(
                    makeError(errc::kParseError, e.what()));
            }
        }
        compiler::CompileOptions copts = job.req.options;
        CountingBlockMemo synthMemo(synthCache_.get());
        if (synthCache_)
            copts.synthMemo = &synthMemo;
        copts.synthPool = blockPool_.get();

        // One canonical path: the request resolves to a spec string
        // (pipelineSpec, or the deprecated enum spelled as its name)
        // and everything goes through the spec grammar.
        compiler::PipelineSpec spec;
        std::string error;
        if (!compiler::parsePipelineSpec(
                job.req.resolvedPipelineSpec(), spec, error))
            throw ApiException(
                makeError(errc::kBadPipelineSpec, error,
                          job.req.resolvedPipelineSpec()));

        // Build unit, assemble the pipeline, run it, copy out.
        compiler::CompilationUnit unit =
            compiler::CompilationUnit::forInput(std::move(input),
                                                copts);
        unit.backend = opts_.backend.get();
        unit.reconfig = opts_.backend ? &reconfig_ : nullptr;
        unit.coupling = opts_.coupling;
        unit.scheduleOptions = job.req.scheduleOptions;
        unit.onPass = job.req.onPass;

        compiler::PassManager pm;
        if (spec.kind == compiler::PipelineSpec::Kind::Custom) {
            // Custom lists run literally, except that requested
            // stages missing from the list are appended: `estimate`
            // always (so JobResult metrics are filled), `schedule`
            // when the request asked for a program.
            compiler::PipelineSpec literal = spec;
            bool has_estimate = false, has_schedule = false;
            for (const std::string &tok : literal.passes) {
                has_estimate |= tok == "estimate";
                has_schedule |= tok == "schedule" ||
                                tok.rfind("schedule:", 0) == 0;
            }
            if (!has_estimate)
                literal.passes.push_back("estimate");
            if (job.req.schedule && !has_schedule)
                literal.passes.push_back("schedule");
            if (!compiler::buildPipeline(literal, copts, pm, error))
                throw ApiException(
                    makeError(errc::kBadPipelineSpec, error));
        } else {
            // Named pipelines: compile stage + the service stages
            // (the former hand-sequenced route -> estimate ->
            // reconfigure -> schedule tail of this function).
            compiler::PipelineSpec staged = spec;
            staged.kind = compiler::PipelineSpec::Kind::Custom;
            staged.passes = compiler::compilePassList(
                spec.kind, copts);
            if (opts_.backend)
                staged.passes.push_back("route");
            staged.passes.push_back("estimate");
            if (opts_.backend)
                staged.passes.push_back("reconfigure");
            if (job.req.schedule)
                staged.passes.push_back("schedule");
            if (!compiler::buildPipeline(staged, copts, pm, error))
                throw ApiException(
                    makeError(errc::kBadPipelineSpec, error));
        }
        pm.run(unit);

        {
            obs::Span copyOut("copy-out");
            res.metrics = std::move(unit.metrics);
            if (unit.hasRouted) {
                res.routed = std::move(unit.routed);
                res.finalLayout = std::move(unit.finalLayout);
            }
            if (unit.hasProgram)
                res.program = std::move(unit.program);
            res.compiled.circuit = std::move(unit.circuit);
            res.compiled.finalPermutation =
                std::move(unit.finalPermutation);
        }

        if (synthCache_)
            res.metrics.synthCache = synthMemo.counters();
        // On a heterogeneous chip the reconfigured table *is* the
        // calibration set (one native instruction per edge), so the
        // per-circuit pulse-solve pass is skipped.
        const bool heterogeneousChip =
            opts_.backend && !opts_.backend->isHomogeneous();
        if (job.req.calibrate && !heterogeneousChip) {
            obs::Span calibrate("calibrate");
            CountingPulseMemo pulseMemo(pulseCache_.get());
            try {
                const uarch::CalibrationPlan plan =
                    uarch::planCalibration(
                        res.compiled.circuit, opts_.coupling,
                        opts_.pulseClusterTol,
                        pulseCache_ ? &pulseMemo : nullptr);
                res.unsolvedClasses = plan.unsolved;
            } catch (const std::exception &e) {
                throw ApiException(
                    makeError(errc::kCalibrateFailed, e.what()));
            }
            if (pulseCache_)
                res.metrics.pulseCache = pulseMemo.counters();
        }
        res.ok = true;
    } catch (const ApiException &e) {
        res.ok = false;
        res.errorInfo = e.error();
        res.error = res.errorInfo.message;
    } catch (const std::exception &e) {
        res.ok = false;
        res.errorInfo = makeError(errc::kInternal, e.what());
        res.error = res.errorInfo.message;
    } catch (...) {
        res.ok = false;
        res.errorInfo = makeError(errc::kInternal, "unknown error");
        res.error = res.errorInfo.message;
    }
    res.seconds = jobSpan.stop();
    ServiceMetrics &m = serviceMetrics();
    m.jobSeconds->observe(res.seconds);
    (res.ok ? m.jobsCompleted : m.jobsFailed)->inc();
    if (res.ok) {
        obs::log(obs::LogLevel::Info, "service", "job completed",
                 {{"id", std::to_string(job.id)},
                  {"name", jobName},
                  {"seconds", std::to_string(res.seconds)},
                  {"passes",
                   std::to_string(res.metrics.passes.size())}});
    } else {
        obs::log(obs::LogLevel::Error, "service", "job failed",
                 {{"id", std::to_string(job.id)},
                  {"name", jobName},
                  {"seconds", std::to_string(res.seconds)},
                  {"error", res.error}});
        // Black-box dump: the final spans + error record of the
        // failing job are still in the rings right now.
        obs::flight::dumpNow("job-failure");
    }
    return res;
}

CacheCounters
CompileService::synthCacheStats() const
{
    return synthCache_ ? synthCache_->stats() : CacheCounters{};
}

CacheCounters
CompileService::pulseCacheStats() const
{
    return pulseCache_ ? pulseCache_->stats() : CacheCounters{};
}

std::size_t
CompileService::synthCacheSize() const
{
    return synthCache_ ? synthCache_->size() : 0;
}

std::size_t
CompileService::pulseCacheSize() const
{
    return pulseCache_ ? pulseCache_->size() : 0;
}

std::vector<ClassStats>
CompileService::synthCachePerClass() const
{
    return synthCache_ ? synthCache_->perClass()
                       : std::vector<ClassStats>{};
}

std::vector<ClassStats>
CompileService::pulseCachePerClass() const
{
    return pulseCache_ ? pulseCache_->perClass()
                       : std::vector<ClassStats>{};
}

} // namespace reqisc::service
