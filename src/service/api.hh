/**
 * @file
 * The versioned wire schema (apiVersion 1) shared by every JSON
 * surface of the compiler: `reqisc-compile --json`, the
 * reqisc-compiled daemon's request/response bodies, and the
 * machine-readable bench summaries. One set of builders replaces the
 * three hand-maintained emitters those surfaces used to carry, so a
 * field added to Metrics shows up everywhere (or nowhere) at once.
 *
 * Versioning policy (docs/SERVICE.md): within an apiVersion, fields
 * and error codes never change meaning or disappear; new optional
 * fields may be added. Readers must ignore unknown *response* fields;
 * the request parser is strict (unknown request fields are rejected
 * with `bad-request`, catching client typos at submission time).
 *
 * All trees are backend::JsonValue, serialized with dumpJson —
 * numbers round-trip exactly through the repo's own parser
 * (tests/test_api.cc pins this).
 */

#ifndef REQISC_SERVICE_API_HH
#define REQISC_SERVICE_API_HH

#include <string>

#include "backend/json.hh"
#include "compiler/metrics.hh"
#include "service/error.hh"
#include "service/service.hh"

namespace reqisc::service::api
{

/** The wire-schema version every document carries. */
inline constexpr int kApiVersion = 1;

/** {code, httpStatus, message, detail} — the one error shape. */
backend::JsonValue errorToJson(const ApiError &e);

/**
 * Read an error object back (clients, bench_daemon validation).
 * Missing fields default; never throws on shape problems — a
 * malformed error report must not mask the error it reports.
 */
ApiError errorFromJson(const backend::JsonValue &v);

/** One PassTrace: {name, seconds, gates/2Q before+after, makespan}. */
backend::JsonValue passTraceToJson(const compiler::PassTrace &t);

/** {hits, misses, evictions, solveSeconds}. */
backend::JsonValue
cacheCountersToJson(const compiler::CacheCounters &c);

/**
 * Full circuit metrics: counts, duration, cache counters, per-pass
 * trace, plus `backend` / `schedule` sub-objects when those stages
 * ran.
 */
backend::JsonValue metricsToJson(const compiler::Metrics &m);

/**
 * A CompileRequest as a v1 submission body. The circuit travels as
 * OpenQASM text (`qasm` verbatim when the request carries source,
 * else circuit::toQasm of the input circuit — 17-significant-digit
 * parameters, so the round trip is bit-exact).
 */
backend::JsonValue compileRequestToJson(const CompileRequest &req);

/**
 * Parse and validate a v1 submission body. Strict: throws
 * ApiException with code `bad-request` on a non-object body, an
 * unsupported apiVersion, a missing/empty `qasm`, a wrongly typed
 * field, or an unknown field; `bad-pipeline-spec` on a `pipeline`
 * value the spec grammar rejects (validated here so the client gets
 * a 400 at submission instead of a failed job later).
 *
 * Accepted fields: apiVersion?, name?, qasm, pipeline?, seed?,
 * variational?, calibrate?, schedule? (false | true | "serial" |
 * "asap" | "alap").
 */
CompileRequest compileRequestFromJson(const backend::JsonValue &v);

/** What jobResultToJson includes beyond metrics. */
struct ResultEmitOptions
{
    /**
     * Emit the compiled artifacts: `circuit` (OpenQASM) +
     * `finalPermutation`, and `routed` + `finalLayout` when the job
     * was routed onto a chip. Off by default (artifacts dominate the
     * document size).
     */
    bool artifacts = false;
    /** Emit `schedule.isa` (RQISA assembly) when a program exists. */
    bool isaText = false;
    /**
     * Label reported as `schedule.strategy` when the pass trace does
     * not pin one (a custom `schedule:X` token in the trace wins).
     */
    std::string scheduleStrategy;
};

/**
 * A finished JobResult as a v1 result document: {apiVersion, id,
 * name, ok, seconds, ...metrics fields...} on success, {apiVersion,
 * id, name, ok: false, seconds, error: {...}} on failure. The
 * metric keys match what `reqisc-compile --json` always printed
 * (count2Q, depth2Q, duration, distinctSU4, synthCache, pulseCache,
 * passes, backend, schedule), because this *is* that emitter now.
 */
backend::JsonValue
jobResultToJson(const JobResult &r,
                const ResultEmitOptions &opts = {});

} // namespace reqisc::service::api

#endif // REQISC_SERVICE_API_HH
