/**
 * @file
 * reqisc-compile — batch compilation front-end for the service.
 *
 * Reads one or more OpenQASM files (and/or generated suite circuits),
 * compiles them through reqiscEff / reqiscFull on a CompileService
 * with `--jobs N` worker threads and shared SU(4) memoization caches,
 * and prints per-circuit metrics (#2Q, 2Q-depth, duration,
 * distinct-SU(4), cache hit rate) as an aligned table or JSON.
 *
 *   reqisc-compile --jobs 4 --stats examples/qasm/ghz8.qasm
 *   reqisc-compile --suite small --repeat 5 --json
 *
 * Exit status: 0 when every job compiled, 1 on any per-job failure
 * (each failure is reported with its captured error), 2 on usage
 * errors.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "backend/backend.hh"
#include "backend/json.hh"
#include "backend/reconfigure.hh"
#include "compiler/pass_manager.hh"
#include "isa/assembly.hh"
#include "isa/schedule.hh"
#include "circuit/qasm.hh"
#include "obs/obs.hh"
#include "obs/trace_json.hh"
#include "service/api.hh"
#include "service/error.hh"
#include "service/service.hh"
#include "suite/suite.hh"

#ifndef REQISC_VERSION
#define REQISC_VERSION "unknown"
#endif

namespace
{

using namespace reqisc;

struct CliOptions
{
    std::vector<std::string> files;
    std::string suite;           //!< "", "small" or "medium"
    std::string backendPath;     //!< chip JSON file; "" = no backend
    service::Pipeline pipeline = service::Pipeline::Full;
    std::string pipelineSpec;    //!< set for --pipeline custom:...
    int jobs = 1;
    int blockWorkers = 1;        //!< intra-job resynthesis workers
    std::string cacheDir;        //!< persistent caches; "" = off
    int repeat = 1;
    unsigned seed = 777;
    bool variational = false;
    bool noCache = false;
    bool calibrate = true;
    bool stats = false;
    bool json = false;
    bool schedule = false;       //!< lower into timed RQISA programs
    isa::Strategy strategy = isa::Strategy::Asap;
    bool emitIsa = false;        //!< dump RQISA assembly (implies schedule)
    bool emitCircuit = false;    //!< dump compiled circuits (QASM)
    std::string traceOut;        //!< Chrome trace JSON; "" = off
    std::string metricsOut;      //!< Prometheus exposition; "" = off
    std::string logOut;          //!< JSON-lines log file; "" = off
    std::string logLevel = "info";  //!< min severity for --log-out
    std::string flightDump;      //!< flight-recorder dump; "" = off
};

void
printUsage(std::ostream &os)
{
    os << "usage: reqisc-compile [options] [file.qasm ...]\n"
          "\n"
          "options:\n"
          "  --pipeline SPEC       pipeline to run: eff, full or an\n"
          "                        explicit pass list\n"
          "                        custom:pass[,pass...] e.g.\n"
          "                        custom:synth,mirror,route,"
          "schedule:asap\n"
          "                        (default: full)\n"
          "  --list-passes         print the registered passes and "
          "the pass\n"
          "                        lists of the named pipelines, "
          "then exit\n"
          "  --jobs N              worker threads; 0 = all cores "
          "(default: 1)\n"
          "  --block-workers N     intra-job 3Q block-resynthesis "
          "workers;\n"
          "                        0 = leftover cores (default: 1, "
          "serial);\n"
          "                        results are bit-identical at any "
          "N\n"
          "  --cache-dir DIR       persist the SU(4) caches in DIR: "
          "load\n"
          "                        them at start-up, save them on "
          "exit\n"
          "  --repeat K            submit each input K times "
          "(default: 1)\n"
          "  --suite small|medium  also compile the built-in suite\n"
          "  --backend FILE        compile to the chip described by "
          "FILE (JSON);\n"
          "                        routes onto its topology and "
          "reports per-edge\n"
          "                        reconfigured vs uniform gate-set "
          "fidelity\n"
          "  --seed N              instantiation seed (default: 777)\n"
          "  --variational         variational (fixed-basis) mode\n"
          "  --no-cache            disable the shared SU(4) caches\n"
          "  --no-calibrate        skip calibration planning\n"
          "  --schedule STRATEGY   lower into a timed RQISA program "
          "(serial|asap|alap)\n"
          "  --emit-isa            print each program's RQISA "
          "assembly (implies --schedule asap)\n"
          "  --emit-circuit        print each compiled circuit "
          "(OpenQASM; in --json,\n"
          "                        the artifact fields of the v1 "
          "schema)\n"
          "  --trace-out FILE      write a Chrome trace-event JSON "
          "of every\n"
          "                        span (jobs, passes, block tasks, "
          "cache\n"
          "                        persistence); load it in Perfetto "
          "or\n"
          "                        chrome://tracing\n"
          "  --metrics-out FILE    write a Prometheus-exposition "
          "snapshot of\n"
          "                        the service metrics at exit\n"
          "  --log-out FILE        write structured JSON-lines logs "
          "(job\n"
          "                        lifecycle, cache persistence, "
          "errors) at exit\n"
          "  --log-level LVL       minimum severity for --log-out: "
          "debug,\n"
          "                        info (default), warn or error\n"
          "  --flight-dump FILE    write the always-on flight "
          "recorder's\n"
          "                        last-events dump at exit; the "
          "same file\n"
          "                        is written on job failure and on "
          "fatal\n"
          "                        signals (SIGSEGV etc.)\n"
          "  --stats               print cache statistics\n"
          "  --json                machine-readable output\n"
          "  --version             print the version and exit\n"
          "  --help                this text\n";
}

void
printPassList(std::ostream &os)
{
    os << "registered passes (use in --pipeline "
          "custom:pass[,pass...]):\n";
    for (const compiler::PassInfo &info :
         compiler::passRegistry()) {
        std::string token = info.token;
        if (!info.args.empty()) {
            token += "[:";
            for (std::size_t i = 0; i < info.args.size(); ++i)
                token += (i ? "|" : "") + info.args[i];
            token += "]";
        }
        os << "  " << token << "\n      " << info.summary << "\n";
    }
    os << "\nnamed pipelines (compile stage, default options):\n";
    const compiler::CompileOptions defaults;
    for (const auto kind : {compiler::PipelineSpec::Kind::Eff,
                            compiler::PipelineSpec::Kind::Full}) {
        os << (kind == compiler::PipelineSpec::Kind::Eff
                   ? "  eff:  "
                   : "  full: ");
        const auto list = compiler::compilePassList(kind, defaults);
        for (std::size_t i = 0; i < list.size(); ++i)
            os << (i ? "," : "") << list[i];
        os << "\n";
    }
    os << "\nthe service appends route (with --backend), estimate,\n"
          "reconfigure (with --backend) and schedule (with "
          "--schedule)\nto the named pipelines; custom lists run "
          "literally (plus a\ntrailing estimate when absent).\n";
}

bool
parseArgs(int argc, char **argv, CliOptions &cli)
{
    auto value = [&](int &i) -> const char * {
        if (i + 1 >= argc) {
            std::cerr << "reqisc-compile: missing value for "
                      << argv[i] << "\n";
            return nullptr;
        }
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            printUsage(std::cout);
            std::exit(0);
        } else if (arg == "--version") {
            std::cout << "reqisc-compile " << REQISC_VERSION << "\n";
            std::exit(0);
        } else if (arg == "--pipeline") {
            const char *v = value(i);
            if (!v)
                return false;
            compiler::PipelineSpec spec;
            std::string error;
            if (!compiler::parsePipelineSpec(v, spec, error)) {
                std::cerr << "reqisc-compile: ["
                          << service::errc::kBadPipelineSpec << "] "
                          << error << "\n";
                return false;
            }
            if (spec.kind == compiler::PipelineSpec::Kind::Custom) {
                cli.pipelineSpec = v;
            } else {
                cli.pipelineSpec.clear();
                cli.pipeline =
                    spec.kind == compiler::PipelineSpec::Kind::Eff
                        ? service::Pipeline::Eff
                        : service::Pipeline::Full;
            }
        } else if (arg == "--list-passes") {
            printPassList(std::cout);
            std::exit(0);
        } else if (arg == "--jobs") {
            const char *v = value(i);
            if (!v)
                return false;
            cli.jobs = std::atoi(v);
        } else if (arg == "--block-workers") {
            const char *v = value(i);
            if (!v)
                return false;
            cli.blockWorkers = std::atoi(v);
        } else if (arg == "--cache-dir") {
            const char *v = value(i);
            if (!v)
                return false;
            cli.cacheDir = v;
        } else if (arg == "--repeat") {
            const char *v = value(i);
            if (!v)
                return false;
            cli.repeat = std::max(1, std::atoi(v));
        } else if (arg == "--suite") {
            const char *v = value(i);
            if (!v)
                return false;
            cli.suite = v;
            if (cli.suite != "small" && cli.suite != "medium") {
                std::cerr << "reqisc-compile: unknown suite '"
                          << cli.suite << "'\n";
                return false;
            }
        } else if (arg == "--backend") {
            const char *v = value(i);
            if (!v)
                return false;
            cli.backendPath = v;
        } else if (arg == "--seed") {
            const char *v = value(i);
            if (!v)
                return false;
            cli.seed = static_cast<unsigned>(std::atol(v));
        } else if (arg == "--variational") {
            cli.variational = true;
        } else if (arg == "--no-cache") {
            cli.noCache = true;
        } else if (arg == "--no-calibrate") {
            cli.calibrate = false;
        } else if (arg == "--schedule") {
            const char *v = value(i);
            if (!v)
                return false;
            if (!isa::strategyFromName(v, cli.strategy)) {
                std::cerr << "reqisc-compile: unknown schedule "
                             "strategy '" << v << "'\n";
                return false;
            }
            cli.schedule = true;
        } else if (arg == "--emit-isa") {
            cli.emitIsa = true;
            cli.schedule = true;
        } else if (arg == "--emit-circuit") {
            cli.emitCircuit = true;
        } else if (arg == "--trace-out") {
            const char *v = value(i);
            if (!v)
                return false;
            cli.traceOut = v;
        } else if (arg == "--metrics-out") {
            const char *v = value(i);
            if (!v)
                return false;
            cli.metricsOut = v;
        } else if (arg == "--log-out") {
            const char *v = value(i);
            if (!v)
                return false;
            cli.logOut = v;
        } else if (arg == "--log-level") {
            const char *v = value(i);
            if (!v)
                return false;
            obs::LogLevel parsed;
            if (!obs::parseLogLevel(v, parsed)) {
                std::cerr << "reqisc-compile: --log-level: "
                             "expected debug|info|warn|error, got '"
                          << v << "'\n";
                return false;
            }
            cli.logLevel = v;
        } else if (arg == "--flight-dump") {
            const char *v = value(i);
            if (!v)
                return false;
            cli.flightDump = v;
        } else if (arg == "--stats") {
            cli.stats = true;
        } else if (arg == "--json") {
            cli.json = true;
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "reqisc-compile: unknown option '" << arg
                      << "'\n";
            return false;
        } else {
            cli.files.push_back(arg);
        }
    }
    return true;
}

std::string
fmtDouble(double v, int precision)
{
    std::ostringstream os;
    os.precision(precision);
    os << std::fixed << v;
    return os.str();
}

void
printCacheBlock(const char *label,
                const compiler::CacheCounters &c,
                std::size_t entries,
                const std::vector<service::ClassStats> &per_class,
                bool show_coords)
{
    std::cout << label << ": " << entries << " classes, " << c.hits
              << " hits / " << c.misses << " misses ("
              << fmtDouble(100.0 * c.hitRate(), 1) << "% hit rate), "
              << c.evictions << " evictions, "
              << fmtDouble(c.solveSeconds, 3) << " s solving\n";
    // The heaviest classes first: most-used, then slowest to solve.
    std::vector<service::ClassStats> rows = per_class;
    std::sort(rows.begin(), rows.end(),
              [](const service::ClassStats &a,
                 const service::ClassStats &b) {
                  if (a.uses != b.uses)
                      return a.uses > b.uses;
                  return a.solveSeconds > b.solveSeconds;
              });
    const std::size_t shown = std::min<std::size_t>(rows.size(), 8);
    for (std::size_t i = 0; i < shown; ++i) {
        const auto &r = rows[i];
        std::cout << "    ";
        if (show_coords)
            std::cout << r.coord.toString();
        else
            std::cout << r.blockCount << " SU(4) blocks";
        std::cout << "  uses=" << r.uses << "  solve="
                  << fmtDouble(1e3 * r.solveSeconds, 2) << " ms\n";
    }
    if (rows.size() > shown)
        std::cout << "    ... " << (rows.size() - shown)
                  << " more classes\n";
}

/**
 * --stats: where compile time goes, aggregated over the batch.
 * Passes appear in first-execution order; `share` is each pass's
 * fraction of the total in-pass wall time.
 */
void
printPassStats(const std::vector<service::JobResult> &results)
{
    std::vector<const compiler::Metrics *> jobs;
    for (const service::JobResult &r : results)
        if (r.ok)
            jobs.push_back(&r.metrics);
    const std::vector<compiler::PassAggregate> agg =
        compiler::aggregatePassTraces(jobs);
    if (agg.empty())
        return;
    double total = 0.0;
    for (const compiler::PassAggregate &a : agg)
        total += a.seconds;
    std::printf("\nper-pass timings (batch aggregate):\n");
    std::printf("    %-14s %5s %10s %8s %8s\n", "pass", "runs",
                "total ms", "share", "d#2Q");
    for (const compiler::PassAggregate &a : agg)
        std::printf("    %-14s %5d %10.2f %7.1f%% %+8lld\n",
                    a.pass.c_str(), a.runs, 1e3 * a.seconds,
                    total > 0.0 ? 100.0 * a.seconds / total : 0.0,
                    a.delta2Q);
}

} // namespace

int
main(int argc, char **argv)
{
    CliOptions cli;
    if (!parseArgs(argc, argv, cli)) {
        printUsage(std::cerr);
        return 2;
    }
    if (cli.files.empty() && cli.suite.empty()) {
        printUsage(std::cerr);
        return 2;
    }

    // Assemble the batch: QASM files are parsed inside the workers
    // (so malformed input surfaces as a per-job error, not a crash).
    std::vector<service::CompileRequest> batch;
    for (const std::string &path : cli.files) {
        std::ifstream in(path);
        if (!in) {
            std::cerr << "reqisc-compile: cannot open '" << path
                      << "'\n";
            return 2;
        }
        std::ostringstream text;
        text << in.rdbuf();
        service::CompileRequest req;
        req.name = path;
        req.qasm = text.str();
        batch.push_back(std::move(req));
    }
    if (!cli.suite.empty()) {
        const std::vector<suite::Benchmark> bms =
            cli.suite == "small" ? suite::smallSuite()
                                 : suite::mediumSuite();
        for (const suite::Benchmark &bm : bms) {
            service::CompileRequest req;
            req.name = bm.name;
            req.input = bm.circuit;
            batch.push_back(std::move(req));
        }
    }
    for (service::CompileRequest &req : batch) {
        req.pipeline = cli.pipeline;
        req.pipelineSpec = cli.pipelineSpec;
        req.options.seed = cli.seed;
        req.options.variationalMode = cli.variational;
        req.calibrate = cli.calibrate;
        req.schedule = cli.schedule;
        req.scheduleOptions.strategy = cli.strategy;
    }
    if (cli.repeat > 1) {
        const std::vector<service::CompileRequest> once = batch;
        for (int k = 1; k < cli.repeat; ++k)
            batch.insert(batch.end(), once.begin(), once.end());
    }

    // Observability is opt-in: near-zero-cost no-ops otherwise.
    if (!cli.traceOut.empty() || !cli.metricsOut.empty())
        obs::setEnabled(true);
    if (!cli.logOut.empty()) {
        obs::LogLevel level = obs::LogLevel::Info;
        obs::parseLogLevel(cli.logLevel, level);  // validated above
        obs::Logger::global().setMinLevel(level);
        obs::Logger::global().setEnabled(true);
    }
    // The flight recorder itself is always on; the flag arms the
    // dump triggers (job failure, fatal signal, exit).
    if (!cli.flightDump.empty()) {
        obs::flight::setDumpPath(cli.flightDump);
        obs::flight::installSignalHandlers();
    }

    service::ServiceOptions sopts;
    sopts.threads = cli.jobs;
    sopts.blockWorkers = cli.blockWorkers;
    sopts.cacheDir = cli.cacheDir;
    sopts.enableSynthCache = !cli.noCache;
    sopts.enablePulseCache = !cli.noCache;
    if (!cli.backendPath.empty()) {
        try {
            sopts.backend =
                std::make_shared<const backend::Backend>(
                    backend::Backend::fromJsonFile(
                        cli.backendPath));
        } catch (const backend::JsonError &e) {
            // Same classification the daemon reports on the wire.
            const service::ApiError err = service::makeError(
                service::errc::kBadChipFile, e.what(),
                cli.backendPath);
            std::cerr << "reqisc-compile: [" << err.code << "] "
                      << err.message << "\n";
            return 2;
        }
    }

    const auto t0 = std::chrono::steady_clock::now();
    service::CompileService svc(sopts);
    svc.submitBatch(std::move(batch));
    std::vector<service::JobResult> results = svc.waitAll();
    const double wall = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();

    int failures = 0;
    for (const service::JobResult &r : results)
        if (!r.ok)
            ++failures;

    const compiler::CacheCounters synth_stats =
        svc.synthCacheStats();
    const compiler::CacheCounters pulse_stats =
        svc.pulseCacheStats();

    if (cli.json) {
        // Every field below goes through the v1 wire schema
        // (service/api.hh) — the same builders the daemon responds
        // with, so the CLI and the network agree by construction.
        using backend::JsonValue;
        JsonValue doc = JsonValue::makeObject();
        doc.set("apiVersion",
                JsonValue::makeNumber(static_cast<double>(
                    service::api::kApiVersion)));
        doc.set("jobs", JsonValue::makeNumber(
                            static_cast<double>(svc.threads())));
        doc.set("wallSeconds", JsonValue::makeNumber(wall));
        service::api::ResultEmitOptions emit;
        emit.artifacts = cli.emitCircuit;
        emit.isaText = cli.emitIsa;
        emit.scheduleStrategy = isa::strategyName(cli.strategy);
        JsonValue circuits = JsonValue::makeArray();
        for (const service::JobResult &r : results)
            circuits.push(service::api::jobResultToJson(r, emit));
        doc.set("circuits", std::move(circuits));
        if (svc.backend()) {
            const backend::Backend &chip = *svc.backend();
            const backend::ReconfigureResult &rc =
                *svc.reconfiguration();
            JsonValue b = JsonValue::makeObject();
            b.set("name", JsonValue::makeString(chip.name()));
            b.set("qubits",
                  JsonValue::makeNumber(
                      static_cast<double>(chip.numQubits())));
            b.set("uniformGate",
                  JsonValue::makeString(rc.uniformName));
            JsonValue edges = JsonValue::makeArray();
            for (const backend::EdgeInstruction &e : rc.table) {
                JsonValue edge = JsonValue::makeObject();
                edge.set("a", JsonValue::makeNumber(
                                  static_cast<double>(e.a)));
                edge.set("b", JsonValue::makeNumber(
                                  static_cast<double>(e.b)));
                edge.set("gate", JsonValue::makeString(e.name));
                edge.set("duration",
                         JsonValue::makeNumber(e.duration));
                edge.set("score", JsonValue::makeNumber(e.score));
                edges.push(std::move(edge));
            }
            b.set("edges", std::move(edges));
            doc.set("backend", std::move(b));
        }
        auto cacheBlock = [](const compiler::CacheCounters &c,
                             std::size_t entries, bool warm) {
            JsonValue o = service::api::cacheCountersToJson(c);
            o.set("entries", JsonValue::makeNumber(
                                 static_cast<double>(entries)));
            o.set("warmStart", JsonValue::makeBool(warm));
            return o;
        };
        doc.set("synthCache",
                cacheBlock(synth_stats, svc.synthCacheSize(),
                           svc.synthCacheWarmStarted()));
        doc.set("pulseCache",
                cacheBlock(pulse_stats, svc.pulseCacheSize(),
                           svc.pulseCacheWarmStarted()));
        doc.set("blockWorkers",
                JsonValue::makeNumber(
                    static_cast<double>(svc.blockWorkers())));
        std::cout << backend::dumpJson(doc, true);
    } else {
        if (svc.backend()) {
            const backend::Backend &chip = *svc.backend();
            const backend::ReconfigureResult &rc =
                *svc.reconfiguration();
            std::printf("backend %s: %d qubits, %zu edges, uniform "
                        "baseline '%s'\n",
                        chip.name().c_str(), chip.numQubits(),
                        chip.edges().size(),
                        rc.uniformName.c_str());
            for (const backend::EdgeInstruction &e : rc.table)
                std::printf("  (q%d,q%d) -> %-5s tau=%.3f "
                            "score=%.6f\n",
                            e.a, e.b, e.name.c_str(), e.duration,
                            e.score);
            std::printf("\n");
        }
        // Purely result-driven (not cli.schedule) so header and
        // rows always agree, whatever the pipeline ran.
        bool any_scheduled = false;
        for (const service::JobResult &r : results)
            any_scheduled |= r.ok && r.metrics.schedule.scheduled;
        std::printf("%-28s %6s %7s %9s %8s %7s %7s %8s", "circuit",
                    "#2Q", "2Q-dep", "duration", "distSU4", "synth%",
                    "pulse%", "ms");
        if (any_scheduled)
            std::printf(" %9s %5s %8s", "makespan", "par", "idle");
        if (svc.backend())
            std::printf(" %5s %9s %9s", "swaps", "F reconf",
                        "F unifrm");
        std::printf("\n");
        for (const service::JobResult &r : results) {
            if (!r.ok) {
                std::printf("%-28s ERROR: %s\n", r.name.c_str(),
                            r.error.c_str());
                continue;
            }
            std::printf(
                "%-28s %6d %7d %9.3f %8d %6.1f%% %6.1f%% %8.1f",
                r.name.c_str(), r.metrics.count2Q,
                r.metrics.depth2Q, r.metrics.duration,
                r.metrics.distinctSU4,
                100.0 * r.metrics.synthCache.hitRate(),
                100.0 * r.metrics.pulseCache.hitRate(),
                1e3 * r.seconds);
            if (r.metrics.schedule.scheduled)
                std::printf(" %9.3f %5.2f %8.3f",
                            r.metrics.schedule.makespan,
                            r.metrics.schedule.parallelism,
                            r.metrics.schedule.idleTime);
            // Same gate as the header above, so rows stay aligned
            // even for custom pipelines that skip route/reconfigure
            // (missing stages show as zeros).
            if (svc.backend())
                std::printf(" %5d %9.6f %9.6f",
                            r.metrics.backend.routedSwaps,
                            r.metrics.backend.fidelityReconfigured,
                            r.metrics.backend.fidelityUniform);
            std::printf("\n");
        }
        if (cli.emitIsa) {
            for (const service::JobResult &r : results) {
                if (!r.ok)
                    continue;
                std::printf("\n# --- %s (%s) ---\n", r.name.c_str(),
                            isa::strategyName(cli.strategy));
                try {
                    std::fputs(isa::toAssembly(r.program).c_str(),
                               stdout);
                } catch (const std::exception &e) {
                    std::printf("# cannot emit: %s\n", e.what());
                }
            }
        }
        if (cli.emitCircuit) {
            for (const service::JobResult &r : results) {
                if (!r.ok)
                    continue;
                std::printf("\n// --- %s ---\n", r.name.c_str());
                std::fputs(
                    circuit::toQasm(r.compiled.circuit).c_str(),
                    stdout);
            }
        }
        std::printf("\n%zu circuits, %d failed, %d jobs, %.3f s "
                    "(%.2f circuits/s)\n",
                    results.size(), failures, svc.threads(), wall,
                    results.empty() ? 0.0 : results.size() / wall);
        if (cli.stats) {
            std::cout << "\n";
            printCacheBlock("synth cache", synth_stats,
                            svc.synthCacheSize(),
                            svc.synthCachePerClass(), false);
            printCacheBlock("pulse cache", pulse_stats,
                            svc.pulseCacheSize(),
                            svc.pulseCachePerClass(), true);
            printPassStats(results);
        }
    }

    if (!cli.traceOut.empty()) {
        std::string error;
        if (!obs::writeTextFile(
                cli.traceOut,
                obs::chromeTraceJson(
                    obs::Tracer::global().collect()),
                error)) {
            std::cerr << "reqisc-compile: --trace-out: " << error
                      << "\n";
            return 1;
        }
    }
    if (!cli.metricsOut.empty()) {
        std::string error;
        if (!obs::writeTextFile(cli.metricsOut,
                                obs::metricsSnapshot(), error)) {
            std::cerr << "reqisc-compile: --metrics-out: " << error
                      << "\n";
            return 1;
        }
    }
    if (!cli.logOut.empty()) {
        std::string error;
        if (!obs::writeTextFile(
                cli.logOut,
                obs::jsonLines(obs::Logger::global().collect()),
                error)) {
            std::cerr << "reqisc-compile: --log-out: " << error
                      << "\n";
            return 1;
        }
    }
    // Written last so a failed run leaves the job-failure dump's
    // context in place alongside the exit snapshot (same rings; the
    // exit dump still contains the failure's final events).
    if (!cli.flightDump.empty() &&
        !obs::flight::dumpNow(failures ? "exit-after-failure"
                                       : "exit")) {
        std::cerr << "reqisc-compile: --flight-dump: cannot write "
                  << cli.flightDump << "\n";
        return 1;
    }

    return failures ? 1 : 0;
}
