/**
 * @file
 * Numeric circuit instantiation (the QFactor fixed point).
 *
 * Given a fixed circuit structure — a sequence of slots, some holding
 * frozen gates and some holding free unitaries on one or two qubits —
 * alternately replace each free slot with the unitary that maximizes
 * |Tr(target^dagger * circuit)| (the SVD of its environment tensor).
 * This is the workhorse behind approximate synthesis, the 3-CNOT
 * decomposition and the template library; it plays the role BQSKit's
 * instantiation engine plays in the paper's artifact.
 */

#ifndef REQISC_SYNTH_INSTANTIATE_HH
#define REQISC_SYNTH_INSTANTIATE_HH

#include <vector>

#include "qmath/matrix.hh"
#include "qmath/random.hh"

namespace reqisc::synth
{

using qmath::Complex;
using qmath::Matrix;

/** One position in the circuit structure being optimized. */
struct Slot
{
    enum class Kind { Free, Fixed };

    Kind kind = Kind::Free;
    std::vector<int> qubits;  //!< one or two qubit indices
    Matrix value;             //!< current (or frozen) unitary

    static Slot free2Q(int a, int b);
    static Slot free1Q(int q);
    static Slot fixed(std::vector<int> qubits, Matrix m);
};

/** Options for the alternating optimization. */
struct InstantiateOptions
{
    double tol = 1e-11;       //!< target infidelity 1 - |Tr|/2^n
    int maxSweeps = 400;
    int restarts = 3;         //!< random re-initializations
    unsigned seed = 12345;
};

/** Outcome of an instantiation run. */
struct InstantiateResult
{
    bool converged = false;
    double infidelity = 1.0;
    int sweeps = 0;
    std::vector<Slot> slots;  //!< with optimized values filled in
};

/**
 * Optimize the free slots to match the target unitary up to global
 * phase. Slot order is circuit order: slots[0] acts first.
 *
 * @param target 2^n x 2^n unitary to match
 * @param num_qubits register width n (<= 4 by design)
 * @param slots circuit structure
 */
InstantiateResult instantiate(const Matrix &target, int num_qubits,
                              const std::vector<Slot> &slots,
                              const InstantiateOptions &opts = {});

/** Lift a k-qubit gate matrix to the full register dimension. */
Matrix liftGate(const Matrix &g, const std::vector<int> &qubits,
                int num_qubits);

/**
 * Destination-passing liftGate: reuses `out`'s storage, so the sweep
 * loop lifts every slot with zero allocations once warm.
 */
void liftGateInto(Matrix &out, const Matrix &g,
                  const std::vector<int> &qubits, int num_qubits);

} // namespace reqisc::synth

#endif // REQISC_SYNTH_INSTANTIATE_HH
