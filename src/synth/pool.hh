/**
 * @file
 * Bounded task pool for intra-job block-resynthesis parallelism.
 *
 * The 3Q resynthesis targets inside compiler::hierarchicalSynthesis
 * are independent (each synthesizeBlock call is a pure function of
 * its target and options), so a single large circuit can fan its
 * blocks out across workers. A BlockPool owns a fixed number of
 * helper threads and is designed to be *shared* — the service keeps
 * one pool beside its job pool so the total thread count stays
 * capped no matter how many jobs are in flight.
 *
 * run() is a fan-out/join primitive with caller participation: the
 * submitting thread executes queued tasks itself until its batch
 * completes, so a pool with zero helper threads degrades to plain
 * serial execution and a shared pool can never deadlock a waiting
 * job (the waiter drains the queue, including other jobs' tasks).
 *
 * Determinism: the pool imposes no ordering on task execution, so it
 * must only be used for tasks that are independent and write to
 * disjoint slots — exactly the contract hierarchicalSynthesis
 * upholds (results land in an index-addressed vector and are emitted
 * in block order afterwards), which is what keeps the parallel gate
 * stream bit-identical to the serial one at every worker count.
 */

#ifndef REQISC_SYNTH_POOL_HH
#define REQISC_SYNTH_POOL_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/span.hh"

namespace reqisc::synth
{

/** Shared bounded pool for independent block-synthesis tasks. */
class BlockPool
{
  public:
    /**
     * @param helper_threads threads spawned in addition to the
     *        callers that join their own batches; 0 means run()
     *        executes everything on the calling thread.
     */
    explicit BlockPool(int helper_threads);
    ~BlockPool();

    BlockPool(const BlockPool &) = delete;
    BlockPool &operator=(const BlockPool &) = delete;

    /** Helper threads owned by the pool. */
    int helperThreads() const
    {
        return static_cast<int>(workers_.size());
    }

    /** Workers a batch can use at once (helpers + the caller). */
    int workers() const { return helperThreads() + 1; }

    /**
     * Execute every task and return when all of them finished. The
     * caller participates; tasks of other concurrent batches may be
     * executed by this thread while it drains the queue (that only
     * speeds them up). The first exception a task of this batch
     * throws is rethrown here after the batch completes.
     */
    void run(std::vector<std::function<void()>> tasks);

  private:
    /** Join state of one run() call. */
    struct Batch
    {
        std::mutex mu;
        std::condition_variable cv;
        std::size_t remaining = 0;
        std::exception_ptr error;
    };

    struct Item
    {
        std::function<void()> fn;
        std::shared_ptr<Batch> batch;
        /** Span of the run() caller, so each executed task can be
         *  traced as its child even on a helper thread. */
        obs::SpanContext parent;
        /** JobScope name of the run() caller, re-entered on the
         *  executing thread so block-task spans / logs / flight
         *  events keep their job attribution across threads. */
        std::string job;
    };

    void execute(Item &item);
    void workerLoop();
    void noteQueueDepth() const;  //!< callers hold mu_

    std::mutex mu_;
    std::condition_variable cv_;
    std::deque<Item> queue_;
    bool stopping_ = false;
    std::vector<std::thread> workers_;

    /** Utilization accounting: busy seconds across all executors
     *  over (wall seconds since construction x workers()). */
    std::chrono::steady_clock::time_point started_;
    std::atomic<double> busySeconds_{0.0};
};

} // namespace reqisc::synth

#endif // REQISC_SYNTH_POOL_HH
