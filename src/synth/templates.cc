#include "synth/templates.hh"

#include <algorithm>
#include <array>

#include "circuit/lower.hh"
#include "qsim/statevector.hh"
#include "synth/synthesis.hh"

namespace reqisc::synth
{

using circuit::Circuit;
using circuit::Gate;
using circuit::Op;

namespace
{

/** Permutation matrix for a 3-qubit relabeling q -> perm[q]. */
Matrix
permMatrix(const std::array<int, 3> &perm)
{
    Matrix p(8, 8);
    for (int idx = 0; idx < 8; ++idx) {
        int nidx = 0;
        for (int q = 0; q < 3; ++q) {
            const int bit = (idx >> (2 - q)) & 1;
            if (bit)
                nidx |= 1 << (2 - perm[q]);
        }
        p(nidx, idx) = 1.0;
    }
    return p;
}

/** Dagger of a {U4, U3} gate sequence (reversed order). */
std::vector<Gate>
daggerGates(const std::vector<Gate> &gates)
{
    std::vector<Gate> out;
    for (auto it = gates.rbegin(); it != gates.rend(); ++it) {
        const Gate &g = *it;
        if (g.op == Op::U4) {
            out.push_back(Gate::u4(g.qubits[0], g.qubits[1],
                                   g.payload->dagger()));
        } else {
            out.push_back(circuit::u3FromMatrix(
                g.qubits[0], g.matrix().dagger()));
        }
    }
    return out;
}

/** Apply a role permutation to the qubit indices of a sequence. */
std::vector<Gate>
permuteGates(const std::vector<Gate> &gates,
             const std::array<int, 3> &perm)
{
    std::vector<Gate> out = gates;
    for (Gate &g : out)
        for (int &q : g.qubits)
            q = perm[q];
    return out;
}

TemplateEntry
makeEntry(std::vector<Gate> gates)
{
    TemplateEntry e;
    e.gates = std::move(gates);
    bool first = true;
    for (const Gate &g : e.gates) {
        if (!g.is2Q())
            continue;
        ++e.canCount;
        auto pr = std::minmax(g.qubits[0], g.qubits[1]);
        if (first) {
            e.firstPair = pr;
            first = false;
        }
        e.lastPair = pr;
    }
    return e;
}

} // namespace

TemplateLibrary &
TemplateLibrary::instance()
{
    static TemplateLibrary lib;
    return lib;
}

void
TemplateLibrary::build(Op op)
{
    Gate ir;
    switch (op) {
      case Op::CCX: ir = Gate::ccx(0, 1, 2); break;
      case Op::CCZ: ir = Gate::ccz(0, 1, 2); break;
      case Op::CSWAP: ir = Gate::cswap(0, 1, 2); break;
      case Op::PERES: ir = Gate::peres(0, 1, 2); break;
      default:
        assert(false && "unsupported IR op");
        return;
    }
    const Matrix target = ir.matrix();

    // Base templates: the minimal block count plus a second structure
    // at the same count if one converges (diversity for assembly).
    std::vector<std::vector<Gate>> bases;
    SynthesisOptions opts;
    opts.tol = 1e-9;
    opts.restarts = 4;
    SynthesisResult first = synthesizeBlock(target, {0, 1, 2}, opts);
    assert(first.success);
    bases.push_back(first.gates);

    // ECC expansion: qubit-role permutations that leave the IR
    // invariant, plus the reversed-dagger form for self-inverse IRs.
    const bool self_inverse =
        (target * target)
            .approxEqualUpToPhase(Matrix::identity(8), 1e-9);
    std::vector<std::array<int, 3>> perms;
    const std::array<int, 3> all_perms[6] = {
        {0, 1, 2}, {0, 2, 1}, {1, 0, 2},
        {1, 2, 0}, {2, 0, 1}, {2, 1, 0}};
    for (const auto &p : all_perms) {
        const Matrix pm = permMatrix(p);
        if ((pm * target * pm.dagger())
                .approxEqualUpToPhase(target, 1e-9))
            perms.push_back(p);
    }

    std::vector<TemplateEntry> entries;
    auto addVariant = [&](const std::vector<Gate> &gates) {
        TemplateEntry e = makeEntry(gates);
        // Deduplicate on the (first, last) pair signature, keeping
        // the smallest block count.
        for (auto &ex : entries) {
            if (ex.firstPair == e.firstPair &&
                ex.lastPair == e.lastPair) {
                if (e.canCount < ex.canCount)
                    ex = e;
                return;
            }
        }
        entries.push_back(std::move(e));
    };
    for (const auto &base : bases) {
        for (const auto &p : perms) {
            addVariant(permuteGates(base, p));
            if (self_inverse)
                addVariant(daggerGates(permuteGates(base, p)));
        }
    }
    lib_[op] = std::move(entries);
}

const std::vector<TemplateEntry> &
TemplateLibrary::variants(Op op)
{
    std::lock_guard<std::mutex> lk(mu_);
    auto it = lib_.find(op);
    if (it == lib_.end()) {
        build(op);
        it = lib_.find(op);
    }
    return it->second;
}

int
TemplateLibrary::minBlocks(Op op)
{
    int m = 1 << 20;
    for (const auto &e : variants(op))
        m = std::min(m, e.canCount);
    return m;
}

const TemplateEntry &
TemplateLibrary::pick(Op op, std::pair<int, int> preferred_first)
{
    const auto &vs = variants(op);
    const TemplateEntry *best = &vs.front();
    for (const auto &e : vs)
        if (e.canCount < best->canCount)
            best = &e;
    for (const auto &e : vs) {
        if (e.firstPair == preferred_first &&
            e.canCount <= best->canCount)
            return e;
    }
    return *best;
}

} // namespace reqisc::synth
