/**
 * @file
 * Pre-synthesized SU(4) template library for the 3-qubit IRs of
 * real-world programs (Section 5.2.2).
 *
 * Each high-level IR (Toffoli, CCZ, controlled-SWAP, Peres) gets
 * minimal-#SU(4) synthesis templates found once by the numeric
 * engine, and an equivalent-circuit-class (ECC) expansion derived
 * from self-invertibility and control-permutability, enabling the
 * selective assembly that fuses adjacent SU(4)s on the same pair.
 */

#ifndef REQISC_SYNTH_TEMPLATES_HH
#define REQISC_SYNTH_TEMPLATES_HH

#include <map>
#include <mutex>
#include <vector>

#include "circuit/circuit.hh"

namespace reqisc::synth
{

/** One ECC variant of a 3Q IR's SU(4) synthesis. */
struct TemplateEntry
{
    /** Gates over role indices {0, 1, 2} ({U4, U3} ops). */
    std::vector<circuit::Gate> gates;
    int canCount = 0;         //!< number of 2Q blocks
    /** Role pair of the first / last 2Q block (sorted). */
    std::pair<int, int> firstPair{-1, -1};
    std::pair<int, int> lastPair{-1, -1};
};

/**
 * Lazily built singleton collection of synthesis templates.
 *
 * Thread-safe: concurrent compile jobs (service::CompileService
 * workers) all share the instance, so the lazy build-on-first-use is
 * serialized by a mutex. Returned references stay valid and
 * immutable after their build (the map is node-based and entries are
 * never modified or erased).
 */
class TemplateLibrary
{
  public:
    /** The process-wide instance (templates built on first use). */
    static TemplateLibrary &instance();

    /** All ECC variants for a 3-qubit IR op. */
    const std::vector<TemplateEntry> &variants(circuit::Op op);

    /** The minimum SU(4) count over all variants of op. */
    int minBlocks(circuit::Op op);

    /**
     * Pick the variant whose first 2Q block acts on `pair` (role
     * indices) if one exists, else the smallest variant.
     */
    const TemplateEntry &pick(circuit::Op op,
                              std::pair<int, int> preferred_first);

  private:
    TemplateLibrary() = default;

    void build(circuit::Op op);  //!< requires mu_ held

    std::mutex mu_;
    std::map<circuit::Op, std::vector<TemplateEntry>> lib_;
};

} // namespace reqisc::synth

#endif // REQISC_SYNTH_TEMPLATES_HH
