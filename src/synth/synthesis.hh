/**
 * @file
 * Approximate synthesis of small unitary blocks over the SU(4) and
 * CNOT gate sets (Section 5.1.1).
 *
 * Targets up to three qubits are synthesized by structure search
 * (candidate pair orderings of increasing depth) plus numeric
 * instantiation; the result is "numerically exact" (1e-10..1e-12
 * infidelity), matching the paper's use of BQSKit.
 */

#ifndef REQISC_SYNTH_SYNTHESIS_HH
#define REQISC_SYNTH_SYNTHESIS_HH

#include <vector>

#include "circuit/circuit.hh"
#include "synth/instantiate.hh"

namespace reqisc::synth
{

struct SynthesisOptions;
struct SynthesisResult;

/**
 * Memoization hook for block synthesis (implemented by
 * service::SynthCache; this layer only defines the interface so the
 * dependency direction stays downward).
 *
 * Cached gate lists use *local* qubit indices 0..w-1;
 * synthesizeBlock remaps them onto the block's global ids. Because
 * the search outcome is a deterministic function of (target, search
 * options), implementations key on both and may only return entries
 * they re-verified against the requested target — so a hit is
 * behaviourally identical to recomputing, regardless of which caller
 * populated the cache first.
 */
class BlockMemo
{
  public:
    virtual ~BlockMemo() = default;

    /**
     * @param target block unitary (2^w x 2^w)
     * @param opts the search options the caller would use
     * @param out filled with the cached result (local qubit ids)
     * @return true on a verified hit
     */
    virtual bool lookup(const Matrix &target,
                        const SynthesisOptions &opts,
                        SynthesisResult &out) = 0;

    /**
     * Record a freshly computed result (gates in local qubit ids).
     *
     * @param solve_seconds wall time the computation took, kept for
     *        the per-class instrumentation
     */
    virtual void store(const Matrix &target,
                       const SynthesisOptions &opts,
                       const SynthesisResult &result,
                       double solve_seconds) = 0;
};

/** Options for block synthesis. */
struct SynthesisOptions
{
    double tol = 1e-9;      //!< accepted infidelity
    int maxBlocks = 7;      //!< give up beyond this many SU(4)s
    int restarts = 3;
    unsigned seed = 777;
    /**
     * Ascending searches k = 0,1,2,... and certifies the minimum
     * (template building); descending starts at min(6, maxBlocks),
     * which always converges for 3 qubits, and walks down while
     * successful — much cheaper on the hot block-resynthesis path.
     */
    bool descending = false;
    /** Optional cross-call memoization (see BlockMemo). */
    BlockMemo *memo = nullptr;
};

/** Result of a block synthesis. */
struct SynthesisResult
{
    bool success = false;
    double infidelity = 1.0;
    int blockCount = 0;                 //!< number of SU(4) blocks
    std::vector<circuit::Gate> gates;   //!< over {U4 (+1Q U3)} ops
};

/**
 * Synthesize a 2^w x 2^w target (w = 2 or 3) into the fewest SU(4)
 * blocks the structure search can certify, emitting gates on the
 * given (global) qubit ids.
 *
 * @param target unitary to synthesize
 * @param qubits global ids of the block's qubits (size 2 or 3)
 * @param opts search options
 */
SynthesisResult synthesizeBlock(const Matrix &target,
                                const std::vector<int> &qubits,
                                const SynthesisOptions &opts = {});

/**
 * The theoretical minimum SU(4) count for n-qubit synthesis,
 * ceil((4^n - 3n - 1) / 9) (Section 5.1.1).
 */
int su4LowerBound(int n);

/** CNOT-count lower bound ceil((4^n - 3n - 1) / 4). */
int cnotLowerBound(int n);

/**
 * Exact 3-CNOT realization of an arbitrary two-qubit unitary on
 * qubits (a, b): analytic 0/1/2-CX classes, numeric instantiation of
 * the three-CX structure otherwise.
 */
std::vector<circuit::Gate> su4ToCnots(int a, int b, const Matrix &u);

/**
 * Decompose a two-qubit unitary over a fixed 2Q basis gate plus free
 * 1Q layers (k = 1..3 basis uses). This is the paper's variational-
 * program mode (Section 5.3.1): the 2Q calibration set shrinks to a
 * single gate (e.g. SQiSW) and all variational parameters move into
 * the 1Q layers, which the PMW protocol implements without explicit
 * calibration. Returns an empty vector only if instantiation fails
 * at k = 3 (numerically it never does for SQiSW/B).
 */
std::vector<circuit::Gate> su4ToFixedBasis(int a, int b,
                                           const Matrix &u,
                                           circuit::Op basis);

} // namespace reqisc::synth

#endif // REQISC_SYNTH_SYNTHESIS_HH
