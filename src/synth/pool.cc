#include "synth/pool.hh"

#include <utility>

#include "obs/log.hh"
#include "obs/metrics.hh"

namespace reqisc::synth
{

namespace
{

/**
 * Lazily registered pool metrics. Several pools (rare outside tests)
 * share these: gauges are last-writer-wins, counters/histograms
 * accumulate across pools — both acceptable for a process that in
 * practice runs one shared pool beside the service.
 */
struct PoolMetrics
{
    obs::Gauge *queueDepth;
    obs::Gauge *workers;
    obs::Gauge *utilization;
    obs::Counter *tasks;
    obs::Histogram *taskSeconds;
};

PoolMetrics &poolMetrics()
{
    static PoolMetrics m = [] {
        auto &r = obs::Registry::global();
        return PoolMetrics{
            r.gauge("reqisc_blockpool_queue_depth",
                    "Block-synthesis tasks waiting in the shared "
                    "pool queue"),
            r.gauge("reqisc_blockpool_workers",
                    "Executors a batch can use at once (helper "
                    "threads + the joining caller)"),
            r.gauge("reqisc_blockpool_utilization",
                    "Busy seconds / (wall seconds x workers) since "
                    "pool construction, in [0, 1]"),
            r.counter("reqisc_blockpool_tasks_total",
                      "Block-synthesis tasks executed"),
            r.histogram("reqisc_blockpool_task_seconds",
                        "Latency of one block-synthesis task"),
        };
    }();
    return m;
}

} // namespace

BlockPool::BlockPool(int helper_threads)
    : started_(std::chrono::steady_clock::now())
{
    if (helper_threads < 0)
        helper_threads = 0;
    workers_.reserve(static_cast<std::size_t>(helper_threads));
    for (int i = 0; i < helper_threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
    poolMetrics().workers->set(workers());
    obs::log(obs::LogLevel::Info, "blockpool", "pool started",
             {{"helpers", std::to_string(helperThreads())}});
}

BlockPool::~BlockPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stopping_ = true;
    }
    cv_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void BlockPool::noteQueueDepth() const
{
    poolMetrics().queueDepth->set(
        static_cast<double>(queue_.size()));
}

void BlockPool::execute(Item &item)
{
    obs::JobScope jobScope(item.job);
    obs::Span span("block-task", item.parent);
    try
    {
        item.fn();
    }
    catch (...)
    {
        obs::log(obs::LogLevel::Error, "blockpool",
                 "block task failed");
        std::lock_guard<std::mutex> lock(item.batch->mu);
        if (!item.batch->error)
            item.batch->error = std::current_exception();
    }
    const double secs = span.stop();
    PoolMetrics &m = poolMetrics();
    m.tasks->inc();
    m.taskSeconds->observe(secs);
    const double busy =
        busySeconds_.fetch_add(secs, std::memory_order_relaxed) +
        secs;
    const double wall =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - started_)
            .count();
    if (wall > 0.0)
        m.utilization->set(busy / (wall * workers()));

    std::size_t left;
    {
        std::lock_guard<std::mutex> lock(item.batch->mu);
        left = --item.batch->remaining;
    }
    if (left == 0)
        item.batch->cv.notify_all();
}

void BlockPool::workerLoop()
{
    for (;;)
    {
        Item item;
        {
            std::unique_lock<std::mutex> lock(mu_);
            cv_.wait(lock,
                     [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stopping_ and drained
            item = std::move(queue_.front());
            queue_.pop_front();
            noteQueueDepth();
        }
        execute(item);
    }
}

void BlockPool::run(std::vector<std::function<void()>> tasks)
{
    if (tasks.empty())
        return;
    auto batch = std::make_shared<Batch>();
    batch->remaining = tasks.size();
    // Tasks may execute on helper threads whose span stacks know
    // nothing about this job; carry the caller's innermost span and
    // job name so block-task events still parent and attribute onto
    // it.
    const obs::SpanContext parent = obs::currentSpan();
    const std::string job = obs::currentJobName();
    {
        std::lock_guard<std::mutex> lock(mu_);
        for (auto &t : tasks)
            queue_.push_back(Item{std::move(t), batch, parent, job});
        noteQueueDepth();
    }
    cv_.notify_all();

    // Caller participation: drain the queue (our batch's tasks and,
    // possibly, other batches' — executing those only helps them)
    // until it is empty, then wait for any of our tasks still being
    // executed by helper threads.
    for (;;)
    {
        Item item;
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (queue_.empty())
                break;
            item = std::move(queue_.front());
            queue_.pop_front();
            noteQueueDepth();
        }
        execute(item);
    }
    std::unique_lock<std::mutex> lock(batch->mu);
    batch->cv.wait(lock, [&] { return batch->remaining == 0; });
    if (batch->error)
        std::rethrow_exception(batch->error);
}

} // namespace reqisc::synth
