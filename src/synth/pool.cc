#include "synth/pool.hh"

#include <utility>

namespace reqisc::synth
{

BlockPool::BlockPool(int helper_threads)
{
    if (helper_threads < 0)
        helper_threads = 0;
    workers_.reserve(static_cast<std::size_t>(helper_threads));
    for (int i = 0; i < helper_threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

BlockPool::~BlockPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stopping_ = true;
    }
    cv_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void BlockPool::execute(Item &item)
{
    try
    {
        item.fn();
    }
    catch (...)
    {
        std::lock_guard<std::mutex> lock(item.batch->mu);
        if (!item.batch->error)
            item.batch->error = std::current_exception();
    }
    std::size_t left;
    {
        std::lock_guard<std::mutex> lock(item.batch->mu);
        left = --item.batch->remaining;
    }
    if (left == 0)
        item.batch->cv.notify_all();
}

void BlockPool::workerLoop()
{
    for (;;)
    {
        Item item;
        {
            std::unique_lock<std::mutex> lock(mu_);
            cv_.wait(lock,
                     [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stopping_ and drained
            item = std::move(queue_.front());
            queue_.pop_front();
        }
        execute(item);
    }
}

void BlockPool::run(std::vector<std::function<void()>> tasks)
{
    if (tasks.empty())
        return;
    auto batch = std::make_shared<Batch>();
    batch->remaining = tasks.size();
    {
        std::lock_guard<std::mutex> lock(mu_);
        for (auto &t : tasks)
            queue_.push_back(Item{std::move(t), batch});
    }
    cv_.notify_all();

    // Caller participation: drain the queue (our batch's tasks and,
    // possibly, other batches' — executing those only helps them)
    // until it is empty, then wait for any of our tasks still being
    // executed by helper threads.
    for (;;)
    {
        Item item;
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (queue_.empty())
                break;
            item = std::move(queue_.front());
            queue_.pop_front();
        }
        execute(item);
    }
    std::unique_lock<std::mutex> lock(batch->mu);
    batch->cv.wait(lock, [&] { return batch->remaining == 0; });
    if (batch->error)
        std::rethrow_exception(batch->error);
}

} // namespace reqisc::synth
