#include "synth/instantiate.hh"

#include <algorithm>
#include <array>
#include <cmath>

#include "qmath/kernels.hh"
#include "qmath/svd.hh"

namespace reqisc::synth
{

namespace kernels = qmath::kernels;

Slot
Slot::free2Q(int a, int b)
{
    Slot s;
    s.kind = Kind::Free;
    s.qubits = {a, b};
    s.value = Matrix::identity(4);
    return s;
}

Slot
Slot::free1Q(int q)
{
    Slot s;
    s.kind = Kind::Free;
    s.qubits = {q};
    s.value = Matrix::identity(2);
    return s;
}

Slot
Slot::fixed(std::vector<int> qubits, Matrix m)
{
    Slot s;
    s.kind = Kind::Fixed;
    s.qubits = std::move(qubits);
    s.value = std::move(m);
    return s;
}

void
liftGateInto(Matrix &out, const Matrix &g,
             const std::vector<int> &qubits, int num_qubits)
{
    const int k = static_cast<int>(qubits.size());
    const int dim = 1 << num_qubits;
    const int sub = 1 << k;
    assert(g.rows() == sub);
    assert(k <= 4);
    std::array<int, 4> shift{};
    for (int i = 0; i < k; ++i)
        shift[i] = num_qubits - 1 - qubits[i];
    out.setZero(dim, dim);
    for (int r = 0; r < dim; ++r) {
        // Decompose the row index into pair bits + rest.
        int rp = 0;
        for (int i = 0; i < k; ++i)
            rp = (rp << 1) | ((r >> shift[i]) & 1);
        int rest = r;
        for (int i = 0; i < k; ++i)
            rest &= ~(1 << shift[i]);
        for (int cp = 0; cp < sub; ++cp) {
            int c = rest;
            for (int i = 0; i < k; ++i)
                if (cp & (1 << (k - 1 - i)))
                    c |= (1 << shift[i]);
            out(r, c) = g(rp, cp);
        }
    }
}

Matrix
liftGate(const Matrix &g, const std::vector<int> &qubits,
         int num_qubits)
{
    Matrix out;
    liftGateInto(out, g, qubits, num_qubits);
    return out;
}

namespace
{

/**
 * Partial trace of E over all qubits except `qubits`:
 * F[p, q] = sum_rest E[(q,rest), (p,rest)] arranged so the optimal
 * free gate is the polar factor of F^dagger. Destination-passing:
 * `f`'s storage is reused across sweeps.
 */
void
environmentInto(Matrix &f, const Matrix &e,
                const std::vector<int> &qubits, int num_qubits)
{
    const int k = static_cast<int>(qubits.size());
    const int dim = 1 << num_qubits;
    const int sub = 1 << k;
    assert(k <= 4);
    std::array<int, 4> shift{};
    for (int i = 0; i < k; ++i)
        shift[i] = num_qubits - 1 - qubits[i];
    int mask = 0;
    for (int i = 0; i < k; ++i)
        mask |= (1 << shift[i]);
    std::array<int, 16> offs{};
    for (int s = 0; s < sub; ++s) {
        int o = 0;
        for (int i = 0; i < k; ++i)
            if (s & (1 << (k - 1 - i)))
                o |= (1 << shift[i]);
        offs[s] = o;
    }
    f.setZero(sub, sub);
    for (int base = 0; base < dim; ++base) {
        if (base & mask)
            continue;
        for (int p = 0; p < sub; ++p)
            for (int q = 0; q < sub; ++q)
                f(q, p) += e(base | offs[q], base | offs[p]);
    }
}

} // namespace

InstantiateResult
instantiate(const Matrix &target, int num_qubits,
            const std::vector<Slot> &structure,
            const InstantiateOptions &opts)
{
    const int dim = 1 << num_qubits;
    assert(target.rows() == dim && target.cols() == dim);
    const size_t m = structure.size();

    InstantiateResult best;
    qmath::Rng rng(opts.seed);

    const Matrix tdag = target.dagger();
    // Sweep scratch, hoisted so the inner loops run allocation-free:
    // every matrix here is recycled via the *Into kernels.
    std::vector<Matrix> lifted(m);
    std::vector<Matrix> after(m + 1);
    Matrix before, tmp, bt, e, f, udag;

    for (int restart = 0; restart < std::max(1, opts.restarts);
         ++restart) {
        std::vector<Slot> slots = structure;
        // Initialize free slots: identity on the first attempt,
        // random on subsequent restarts.
        if (restart > 0) {
            for (auto &s : slots)
                if (s.kind == Slot::Kind::Free)
                    s.value = qmath::randomUnitary(
                        1 << s.qubits.size(), rng);
        }

        double last = 2.0;
        int sweep = 0;
        double infid = 1.0;
        for (; sweep < opts.maxSweeps; ++sweep) {
            // Lift all slot matrices once per sweep.
            for (size_t i = 0; i < m; ++i)
                liftGateInto(lifted[i], slots[i].value,
                             slots[i].qubits, num_qubits);
            // Suffix products: after[i] = G_{m-1} ... G_{i+1}.
            after[m].setIdentity(dim);
            for (int i = static_cast<int>(m) - 1; i >= 0; --i)
                kernels::mulInto(after[i], after[i + 1], lifted[i]);
            // Walk forward keeping before = G_{i-1} ... G_0.
            before.setIdentity(dim);
            for (size_t i = 0; i < m; ++i) {
                if (slots[i].kind == Slot::Kind::Free) {
                    // E = before * tdag * after_{i+1}; optimal gate
                    // maximizes Re Tr(G_lift * E).
                    kernels::mulInto(bt, before, tdag);
                    kernels::mulInto(e, bt, after[i + 1]);
                    environmentInto(f, e, slots[i].qubits,
                                    num_qubits);
                    qmath::SvdResult sv = qmath::svd(f);
                    // G = V U^dagger gives Tr(G F) = sum of singular
                    // values (max over unitaries).
                    kernels::daggerInto(udag, sv.u);
                    kernels::mulInto(slots[i].value, sv.v, udag);
                    liftGateInto(lifted[i], slots[i].value,
                                 slots[i].qubits, num_qubits);
                }
                kernels::mulInto(tmp, lifted[i], before);
                std::swap(before, tmp);
            }
            // Same accumulation order as (tdag * before).trace(),
            // at n^2 instead of n^3 work.
            const Complex tr = kernels::mulTrace(tdag, before);
            infid = 1.0 - std::abs(tr) / dim;
            if (infid < opts.tol)
                break;
            // Stall detection: relative progress per sweep below
            // 1e-3 after a warm-up means this basin will not reach
            // the tolerance; restart instead of burning sweeps.
            if (sweep > 24 && last - infid < 1e-3 * infid)
                break;
            last = infid;
        }
        if (infid < best.infidelity) {
            best.infidelity = infid;
            best.sweeps = sweep;
            best.slots = slots;
            best.converged = infid < opts.tol;
        }
        if (best.converged)
            break;
    }
    return best;
}

} // namespace reqisc::synth
