#include "synth/instantiate.hh"

#include <algorithm>
#include <cmath>

#include "qmath/svd.hh"

namespace reqisc::synth
{

Slot
Slot::free2Q(int a, int b)
{
    Slot s;
    s.kind = Kind::Free;
    s.qubits = {a, b};
    s.value = Matrix::identity(4);
    return s;
}

Slot
Slot::free1Q(int q)
{
    Slot s;
    s.kind = Kind::Free;
    s.qubits = {q};
    s.value = Matrix::identity(2);
    return s;
}

Slot
Slot::fixed(std::vector<int> qubits, Matrix m)
{
    Slot s;
    s.kind = Kind::Fixed;
    s.qubits = std::move(qubits);
    s.value = std::move(m);
    return s;
}

Matrix
liftGate(const Matrix &g, const std::vector<int> &qubits,
         int num_qubits)
{
    const int k = static_cast<int>(qubits.size());
    const int dim = 1 << num_qubits;
    const int sub = 1 << k;
    assert(g.rows() == sub);
    std::vector<int> shift(k);
    for (int i = 0; i < k; ++i)
        shift[i] = num_qubits - 1 - qubits[i];
    Matrix out(dim, dim);
    for (int r = 0; r < dim; ++r) {
        // Decompose the row index into pair bits + rest.
        int rp = 0;
        for (int i = 0; i < k; ++i)
            rp = (rp << 1) | ((r >> shift[i]) & 1);
        int rest = r;
        for (int i = 0; i < k; ++i)
            rest &= ~(1 << shift[i]);
        for (int cp = 0; cp < sub; ++cp) {
            int c = rest;
            for (int i = 0; i < k; ++i)
                if (cp & (1 << (k - 1 - i)))
                    c |= (1 << shift[i]);
            out(r, c) = g(rp, cp);
        }
    }
    return out;
}

namespace
{

/**
 * Partial trace of E over all qubits except `qubits`:
 * F[p, q] = sum_rest E[(q,rest), (p,rest)] arranged so the optimal
 * free gate is the polar factor of F^dagger.
 */
Matrix
environment(const Matrix &e, const std::vector<int> &qubits,
            int num_qubits)
{
    const int k = static_cast<int>(qubits.size());
    const int dim = 1 << num_qubits;
    const int sub = 1 << k;
    std::vector<int> shift(k);
    for (int i = 0; i < k; ++i)
        shift[i] = num_qubits - 1 - qubits[i];
    int mask = 0;
    for (int i = 0; i < k; ++i)
        mask |= (1 << shift[i]);
    std::vector<int> offs(sub);
    for (int s = 0; s < sub; ++s) {
        int o = 0;
        for (int i = 0; i < k; ++i)
            if (s & (1 << (k - 1 - i)))
                o |= (1 << shift[i]);
        offs[s] = o;
    }
    Matrix f(sub, sub);
    for (int base = 0; base < dim; ++base) {
        if (base & mask)
            continue;
        for (int p = 0; p < sub; ++p)
            for (int q = 0; q < sub; ++q)
                f(q, p) += e(base | offs[q], base | offs[p]);
    }
    return f;
}

} // namespace

InstantiateResult
instantiate(const Matrix &target, int num_qubits,
            const std::vector<Slot> &structure,
            const InstantiateOptions &opts)
{
    const int dim = 1 << num_qubits;
    assert(target.rows() == dim && target.cols() == dim);
    const size_t m = structure.size();

    InstantiateResult best;
    qmath::Rng rng(opts.seed);

    for (int restart = 0; restart < std::max(1, opts.restarts);
         ++restart) {
        std::vector<Slot> slots = structure;
        // Initialize free slots: identity on the first attempt,
        // random on subsequent restarts.
        if (restart > 0) {
            for (auto &s : slots)
                if (s.kind == Slot::Kind::Free)
                    s.value = qmath::randomUnitary(
                        1 << s.qubits.size(), rng);
        }

        const Matrix tdag = target.dagger();
        double last = 2.0;
        int sweep = 0;
        double infid = 1.0;
        for (; sweep < opts.maxSweeps; ++sweep) {
            // Lift all slot matrices once per sweep.
            std::vector<Matrix> lifted(m);
            for (size_t i = 0; i < m; ++i)
                lifted[i] = liftGate(slots[i].value,
                                     slots[i].qubits, num_qubits);
            // Suffix products: after[i] = G_{m-1} ... G_{i+1}.
            std::vector<Matrix> after(m + 1);
            after[m] = Matrix::identity(dim);
            for (int i = static_cast<int>(m) - 1; i >= 0; --i)
                after[i] = after[i + 1] * lifted[i];
            // Walk forward keeping before = G_{i-1} ... G_0.
            Matrix before = Matrix::identity(dim);
            for (size_t i = 0; i < m; ++i) {
                if (slots[i].kind == Slot::Kind::Free) {
                    // E = before * tdag * after_{i+1}; optimal gate
                    // maximizes Re Tr(G_lift * E).
                    const Matrix e = before * tdag * after[i + 1];
                    const Matrix f =
                        environment(e, slots[i].qubits, num_qubits);
                    qmath::SvdResult sv = qmath::svd(f);
                    // G = V U^dagger gives Tr(G F) = sum of singular
                    // values (max over unitaries).
                    slots[i].value = sv.v * sv.u.dagger();
                    lifted[i] = liftGate(slots[i].value,
                                         slots[i].qubits, num_qubits);
                }
                before = lifted[i] * before;
            }
            const Complex tr = (tdag * before).trace();
            infid = 1.0 - std::abs(tr) / dim;
            if (infid < opts.tol)
                break;
            // Stall detection: relative progress per sweep below
            // 1e-3 after a warm-up means this basin will not reach
            // the tolerance; restart instead of burning sweeps.
            if (sweep > 24 && last - infid < 1e-3 * infid)
                break;
            last = infid;
        }
        if (infid < best.infidelity) {
            best.infidelity = infid;
            best.sweeps = sweep;
            best.slots = slots;
            best.converged = infid < opts.tol;
        }
        if (best.converged)
            break;
    }
    return best;
}

} // namespace reqisc::synth
