#include "synth/synthesis.hh"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "circuit/lower.hh"
#include "qmath/kernels.hh"
#include "qmath/optimize.hh"
#include "weyl/su2.hh"
#include "weyl/weyl.hh"

namespace reqisc::synth
{

using circuit::Gate;
using circuit::Op;

int
su4LowerBound(int n)
{
    const double p = std::pow(4.0, n) - 3.0 * n - 1.0;
    return static_cast<int>(std::ceil(p / 9.0));
}

int
cnotLowerBound(int n)
{
    const double p = std::pow(4.0, n) - 3.0 * n - 1.0;
    return static_cast<int>(std::ceil(p / 4.0));
}

namespace
{

/** Candidate pair sequences for a k-block structure on 3 qubits. */
std::vector<std::vector<std::pair<int, int>>>
threeQubitStructures(int k)
{
    const std::pair<int, int> pairs[3] = {{0, 1}, {1, 2}, {0, 2}};
    std::vector<std::vector<std::pair<int, int>>> out;
    // Cyclic patterns with the three possible phases, plus zig-zags.
    for (int phase = 0; phase < 3; ++phase) {
        std::vector<std::pair<int, int>> seq;
        for (int i = 0; i < k; ++i)
            seq.push_back(pairs[(phase + i) % 3]);
        out.push_back(std::move(seq));
    }
    const int zig[3][2] = {{0, 1}, {0, 2}, {1, 2}};
    for (const auto &z : zig) {
        std::vector<std::pair<int, int>> seq;
        for (int i = 0; i < k; ++i)
            seq.push_back(pairs[z[i % 2]]);
        out.push_back(std::move(seq));
    }
    // Reverse-cyclic pattern (helps asymmetric targets).
    {
        std::vector<std::pair<int, int>> seq;
        for (int i = 0; i < k; ++i)
            seq.push_back(pairs[(2 * i) % 3]);
        out.push_back(std::move(seq));
    }
    return out;
}

/** Emit optimized slots as gates, dropping identity 1Q layers. */
std::vector<Gate>
slotsToGates(const std::vector<Slot> &slots,
             const std::vector<int> &qmap)
{
    std::vector<Gate> gates;
    for (const auto &s : slots) {
        if (s.qubits.size() == 1) {
            if (!weyl::isIdentityUpToPhase(s.value, 1e-11))
                gates.push_back(circuit::u3FromMatrix(
                    qmap[s.qubits[0]], s.value));
        } else {
            gates.push_back(Gate::u4(qmap[s.qubits[0]],
                                     qmap[s.qubits[1]], s.value));
        }
    }
    return gates;
}

/**
 * The actual 3-qubit structure search, emitting gates on local qubit
 * ids 0..2 so results can be memoized independently of placement.
 */
SynthesisResult
synthesizeThreeQubitLocal(const Matrix &target,
                          const SynthesisOptions &opts)
{
    SynthesisResult res;
    const std::vector<int> local_ids = {0, 1, 2};

    InstantiateOptions iopts;
    iopts.tol = opts.tol;
    iopts.restarts = opts.restarts;
    iopts.seed = opts.seed;

    // Zero blocks: purely local target.
    {
        std::vector<Slot> slots = {Slot::free1Q(0), Slot::free1Q(1),
                                   Slot::free1Q(2)};
        InstantiateResult r = instantiate(target, 3, slots, iopts);
        if (r.converged) {
            res.success = true;
            res.infidelity = r.infidelity;
            res.blockCount = 0;
            res.gates = slotsToGates(r.slots, local_ids);
            return res;
        }
    }

    auto tryBlockCount = [&](int k, int max_structures,
                             SynthesisResult &slot_res) {
        int tried = 0;
        for (const auto &structure : threeQubitStructures(k)) {
            if (max_structures > 0 && tried++ >= max_structures)
                break;
            std::vector<Slot> slots;
            for (const auto &[a, b] : structure)
                slots.push_back(Slot::free2Q(a, b));
            // Trailing 1Q layer catches local residues on qubits the
            // last blocks miss.
            for (int q = 0; q < 3; ++q)
                slots.push_back(Slot::free1Q(q));
            InstantiateResult r =
                instantiate(target, 3, slots, iopts);
            if (r.converged) {
                slot_res.success = true;
                slot_res.infidelity = r.infidelity;
                slot_res.blockCount = k;
                slot_res.gates = slotsToGates(r.slots, local_ids);
                return true;
            }
        }
        return false;
    };

    if (opts.descending) {
        // Start where convergence is guaranteed and walk down.
        int k0 = std::min(6, opts.maxBlocks);
        SynthesisResult best;
        for (int k = k0; k <= opts.maxBlocks; ++k)
            if (tryBlockCount(k, 3, best))
                break;
        if (!best.success)
            return res;
        for (int k = best.blockCount - 1; k >= 1; --k) {
            SynthesisResult lower;
            if (!tryBlockCount(k, 3, lower))
                break;
            best = lower;
        }
        return best;
    }

    for (int k = 1; k <= opts.maxBlocks; ++k) {
        SynthesisResult found;
        if (tryBlockCount(k, 0, found))
            return found;
    }
    return res;
}

/** Relabel a local-id result onto the block's global qubit ids. */
SynthesisResult
remapResult(SynthesisResult local, const std::vector<int> &qubits)
{
    for (Gate &g : local.gates)
        for (int &q : g.qubits)
            q = qubits[q];
    return local;
}

} // namespace

SynthesisResult
synthesizeBlock(const Matrix &target, const std::vector<int> &qubits,
                const SynthesisOptions &opts)
{
    const int w = static_cast<int>(qubits.size());
    assert(w == 2 || w == 3);
    assert(target.rows() == (1 << w));

    if (w == 2) {
        // A single block always suffices.
        SynthesisResult res;
        res.success = true;
        res.infidelity = 0.0;
        res.blockCount = 1;
        res.gates.push_back(
            Gate::u4(qubits[0], qubits[1], target));
        return res;
    }

    if (opts.memo) {
        SynthesisResult cached;
        if (opts.memo->lookup(target, opts, cached))
            return remapResult(std::move(cached), qubits);
        const auto t0 = std::chrono::steady_clock::now();
        SynthesisResult local =
            synthesizeThreeQubitLocal(target, opts);
        const double secs =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - t0)
                .count();
        opts.memo->store(target, opts, local, secs);
        return remapResult(std::move(local), qubits);
    }

    return remapResult(synthesizeThreeQubitLocal(target, opts),
                       qubits);
}

std::vector<Gate>
su4ToCnots(int a, int b, const Matrix &u)
{
    weyl::KakDecomposition k = weyl::kakDecompose(u);
    // Analytic classes first (0, 1, 2 CNOTs).
    if (k.coord.norm1() < 1e-9 ||
        k.coord.approxEqual(weyl::WeylCoord::cnot(), 1e-9) ||
        std::abs(k.coord.z) < 1e-9)
        return circuit::gateToCnotsAnalytic(a, b, u);

    // Generic: instantiate the canonical 3-CX structure.
    const Matrix cx = Gate::cx(0, 1).matrix();
    std::vector<Slot> slots = {
        Slot::free1Q(0), Slot::free1Q(1),
        Slot::fixed({0, 1}, cx),
        Slot::free1Q(0), Slot::free1Q(1),
        Slot::fixed({0, 1}, cx),
        Slot::free1Q(0), Slot::free1Q(1),
        Slot::fixed({0, 1}, cx),
        Slot::free1Q(0), Slot::free1Q(1),
    };
    InstantiateOptions iopts;
    iopts.tol = 1e-11;
    iopts.restarts = 4;
    iopts.maxSweeps = 600;
    InstantiateResult r = instantiate(u, 2, slots, iopts);
    if (!r.converged) {
        // Analytic 4-CX construction always works.
        return circuit::gateToCnotsAnalytic(a, b, u);
    }
    std::vector<Gate> out;
    const std::vector<int> qmap = {a, b};
    for (const auto &s : r.slots) {
        if (s.kind == Slot::Kind::Fixed) {
            out.push_back(Gate::cx(a, b));
        } else if (!weyl::isIdentityUpToPhase(s.value, 1e-11)) {
            out.push_back(
                circuit::u3FromMatrix(qmap[s.qubits[0]], s.value));
        }
    }
    return out;
}

namespace
{

/**
 * Two-applications-of-basis fallback: optimize the middle 1Q layer's
 * six Euler angles so that B (k1 x k2) B matches the target's Weyl
 * coordinates, then wrap with conjugating locals. More reliable than
 * alternating SVD on this tightly constrained structure (e.g. the
 * known two-SQiSW CNOT).
 */
std::vector<Gate>
twoBasisByCoordMatch(int a, int b, const Matrix &u, const Gate &proto)
{
    const Matrix bm = proto.matrix();
    const weyl::WeylCoord target = weyl::weylCoordinate(u);
    // Objective scratch, reused across the thousands of Nelder-Mead
    // evaluations below (destination-passing kernels, no temporaries).
    Matrix kk, bk, mid;
    auto middle = [&](const std::vector<double> &t) -> const Matrix & {
        const Matrix k1 = weyl::u3Matrix(t[0], t[1], t[2]);
        const Matrix k2 = weyl::u3Matrix(t[3], t[4], t[5]);
        qmath::kernels::kronInto(kk, k1, k2);
        qmath::kernels::mulInto(bk, bm, kk);
        qmath::kernels::mulInto(mid, bk, bm);
        return mid;
    };
    auto objective = [&](const std::vector<double> &t) {
        return weyl::weylCoordinate(middle(t)).distance(target);
    };
    qmath::Rng rng(4242);
    std::uniform_real_distribution<double> d(-M_PI, M_PI);
    for (int start = 0; start < 16; ++start) {
        std::vector<double> x0(6);
        for (double &v : x0)
            v = start == 0 ? 0.0 : d(rng);
        qmath::MinimizeResult r =
            qmath::nelderMead(objective, x0, 0.8, 1e-16, 3000);
        if (r.value > 1e-9)
            continue;
        const Matrix core = middle(r.x);
        Matrix l1, l2, r1, r2;
        if (!circuit::conjugateOnto(u, core, l1, l2, r1, r2))
            continue;
        std::vector<Gate> out;
        auto emit1q = [&](int q, const Matrix &m) {
            if (!weyl::isIdentityUpToPhase(m, 1e-11))
                out.push_back(circuit::u3FromMatrix(q, m));
        };
        emit1q(a, r1);
        emit1q(b, r2);
        Gate g1 = proto;
        g1.qubits = {a, b};
        out.push_back(g1);
        emit1q(a, weyl::u3Matrix(r.x[0], r.x[1], r.x[2]));
        emit1q(b, weyl::u3Matrix(r.x[3], r.x[4], r.x[5]));
        out.push_back(g1);
        emit1q(a, l1);
        emit1q(b, l2);
        return out;
    }
    return {};
}

} // namespace

std::vector<Gate>
su4ToFixedBasis(int a, int b, const Matrix &u, Op basis)
{
    Gate proto;
    switch (basis) {
      case Op::SQISW: proto = Gate::sqisw(0, 1); break;
      case Op::B: proto = Gate::bgate(0, 1); break;
      case Op::CX: proto = Gate::cx(0, 1); break;
      default:
        assert(false && "unsupported fixed basis");
        return {};
    }
    const Matrix bm = proto.matrix();
    const std::vector<int> qmap = {a, b};
    for (int k = 0; k <= 3; ++k) {
        std::vector<Slot> slots = {Slot::free1Q(0), Slot::free1Q(1)};
        for (int i = 0; i < k; ++i) {
            slots.push_back(Slot::fixed({0, 1}, bm));
            slots.push_back(Slot::free1Q(0));
            slots.push_back(Slot::free1Q(1));
        }
        // Fixed-gate structures have a rougher optimization
        // landscape than free-block ones; spend more restarts so
        // the minimal k (e.g. two SQiSW for CNOT) is found reliably.
        InstantiateOptions iopts;
        iopts.tol = 1e-10;
        iopts.restarts = 10;
        iopts.maxSweeps = 600;
        InstantiateResult r = instantiate(u, 2, slots, iopts);
        if (!r.converged) {
            if (k == 2) {
                // Coordinate-matching fallback for the constrained
                // two-application structure.
                auto fb = twoBasisByCoordMatch(a, b, u, proto);
                if (!fb.empty())
                    return fb;
            }
            continue;
        }
        std::vector<Gate> out;
        for (const auto &s : r.slots) {
            if (s.kind == Slot::Kind::Fixed) {
                Gate g = proto;
                g.qubits = {a, b};
                out.push_back(std::move(g));
            } else if (!weyl::isIdentityUpToPhase(s.value, 1e-11)) {
                out.push_back(
                    circuit::u3FromMatrix(qmap[s.qubits[0]],
                                          s.value));
            }
        }
        return out;
    }
    return {};
}

} // namespace reqisc::synth
