#include "circuit/gate.hh"

#include <cmath>
#include <map>
#include <sstream>

#include "qmath/expm.hh"

namespace reqisc::circuit
{

using qmath::kI;

const char *
opName(Op op)
{
    switch (op) {
      case Op::I: return "id";
      case Op::X: return "x";
      case Op::Y: return "y";
      case Op::Z: return "z";
      case Op::H: return "h";
      case Op::S: return "s";
      case Op::Sdg: return "sdg";
      case Op::T: return "t";
      case Op::Tdg: return "tdg";
      case Op::SX: return "sx";
      case Op::RX: return "rx";
      case Op::RY: return "ry";
      case Op::RZ: return "rz";
      case Op::U3: return "u3";
      case Op::CX: return "cx";
      case Op::CY: return "cy";
      case Op::CZ: return "cz";
      case Op::SWAP: return "swap";
      case Op::ISWAP: return "iswap";
      case Op::SQISW: return "sqisw";
      case Op::B: return "b";
      case Op::CP: return "cp";
      case Op::RZZ: return "rzz";
      case Op::RXX: return "rxx";
      case Op::RYY: return "ryy";
      case Op::CAN: return "can";
      case Op::U4: return "u4";
      case Op::CCX: return "ccx";
      case Op::CCZ: return "ccz";
      case Op::CSWAP: return "cswap";
      case Op::PERES: return "peres";
      case Op::MCX: return "mcx";
    }
    return "?";
}

bool
opFromName(const std::string &name, Op &out)
{
    static const std::map<std::string, Op> table = [] {
        std::map<std::string, Op> t;
        for (int i = 0; i <= static_cast<int>(Op::MCX); ++i) {
            const Op op = static_cast<Op>(i);
            if (op != Op::U4)
                t.emplace(opName(op), op);
        }
        return t;
    }();
    const auto it = table.find(name);
    if (it == table.end())
        return false;
    out = it->second;
    return true;
}

int
opParamCount(Op op)
{
    switch (op) {
      case Op::RX: case Op::RY: case Op::RZ:
      case Op::CP: case Op::RZZ: case Op::RXX: case Op::RYY:
        return 1;
      case Op::U3: case Op::CAN:
        return 3;
      default:
        return 0;
    }
}

namespace
{

Matrix
oneQubitMatrix(Op op, const std::vector<double> &p)
{
    using qmath::pauliX;
    using qmath::pauliY;
    using qmath::pauliZ;
    const double r = 1.0 / std::sqrt(2.0);
    switch (op) {
      case Op::I: return Matrix::identity(2);
      case Op::X: return pauliX();
      case Op::Y: return pauliY();
      case Op::Z: return pauliZ();
      case Op::H: return {{r, r}, {r, -r}};
      case Op::S: return {{1.0, 0.0}, {0.0, kI}};
      case Op::Sdg: return {{1.0, 0.0}, {0.0, -kI}};
      case Op::T:
        return {{1.0, 0.0}, {0.0, std::exp(kI * (M_PI / 4.0))}};
      case Op::Tdg:
        return {{1.0, 0.0}, {0.0, std::exp(-kI * (M_PI / 4.0))}};
      case Op::SX:
        return {{Complex(0.5, 0.5), Complex(0.5, -0.5)},
                {Complex(0.5, -0.5), Complex(0.5, 0.5)}};
      case Op::RX: return qmath::expim(pauliX(), p[0] / 2.0);
      case Op::RY: return qmath::expim(pauliY(), p[0] / 2.0);
      case Op::RZ: return qmath::expim(pauliZ(), p[0] / 2.0);
      case Op::U3: {
        const double c = std::cos(p[0] / 2.0);
        const double s = std::sin(p[0] / 2.0);
        Matrix m(2, 2);
        m(0, 0) = c;
        m(0, 1) = -std::exp(kI * p[2]) * s;
        m(1, 0) = std::exp(kI * p[1]) * s;
        m(1, 1) = std::exp(kI * (p[1] + p[2])) * c;
        return m;
      }
      default:
        assert(false && "not a one-qubit op");
        return Matrix::identity(2);
    }
}

/** Embed a single-qubit unitary as controlled-u on two qubits. */
Matrix
controlled(const Matrix &u)
{
    Matrix m = Matrix::identity(4);
    for (int i = 0; i < 2; ++i)
        for (int j = 0; j < 2; ++j)
            m(2 + i, 2 + j) = u(i, j);
    return m;
}

Matrix
twoQubitMatrix(const Gate &g)
{
    switch (g.op) {
      case Op::CX: return controlled(qmath::pauliX());
      case Op::CY: return controlled(qmath::pauliY());
      case Op::CZ: return controlled(qmath::pauliZ());
      case Op::SWAP: {
        Matrix m(4, 4);
        m(0, 0) = 1.0; m(1, 2) = 1.0; m(2, 1) = 1.0; m(3, 3) = 1.0;
        return m;
      }
      case Op::ISWAP: {
        Matrix m(4, 4);
        m(0, 0) = 1.0; m(1, 2) = kI; m(2, 1) = kI; m(3, 3) = 1.0;
        return m;
      }
      case Op::SQISW: {
        const double r = 1.0 / std::sqrt(2.0);
        Matrix m(4, 4);
        m(0, 0) = 1.0; m(3, 3) = 1.0;
        m(1, 1) = r; m(2, 2) = r;
        m(1, 2) = r * kI; m(2, 1) = r * kI;
        return m;
      }
      case Op::B:
        return weyl::canonicalGate(weyl::WeylCoord::bgate());
      case Op::CP: {
        Matrix m = Matrix::identity(4);
        m(3, 3) = std::exp(kI * g.params[0]);
        return m;
      }
      case Op::RZZ:
        return qmath::expim(qmath::pauliZZ(), g.params[0] / 2.0);
      case Op::RXX:
        return qmath::expim(qmath::pauliXX(), g.params[0] / 2.0);
      case Op::RYY:
        return qmath::expim(qmath::pauliYY(), g.params[0] / 2.0);
      case Op::CAN:
        return weyl::canonicalGate(
            {g.params[0], g.params[1], g.params[2]});
      case Op::U4:
        assert(g.payload);
        return *g.payload;
      default:
        assert(false && "not a two-qubit op");
        return Matrix::identity(4);
    }
}

Matrix
threeQubitMatrix(const Gate &g)
{
    Matrix m = Matrix::identity(8);
    switch (g.op) {
      case Op::CCX:
        m(6, 6) = 0.0; m(7, 7) = 0.0;
        m(6, 7) = 1.0; m(7, 6) = 1.0;
        return m;
      case Op::CCZ:
        m(7, 7) = -1.0;
        return m;
      case Op::CSWAP:
        m(5, 5) = 0.0; m(6, 6) = 0.0;
        m(5, 6) = 1.0; m(6, 5) = 1.0;
        return m;
      case Op::PERES: {
        // Peres(a,b,c): CCX(a,b,c) then CX(a,b).
        Matrix ccx = Matrix::identity(8);
        ccx(6, 6) = 0.0; ccx(7, 7) = 0.0;
        ccx(6, 7) = 1.0; ccx(7, 6) = 1.0;
        Matrix cxab = kron(controlled(qmath::pauliX()),
                           Matrix::identity(2));
        return cxab * ccx;
      }
      default:
        assert(false && "not a three-qubit op");
        return m;
    }
}

} // namespace

Matrix
Gate::matrix() const
{
    if (op == Op::MCX) {
        const int n = numQubits();
        const int dim = 1 << n;
        Matrix m = Matrix::identity(dim);
        // All controls set <=> top (dim-2, dim-1) block is X.
        m(dim - 2, dim - 2) = 0.0;
        m(dim - 1, dim - 1) = 0.0;
        m(dim - 2, dim - 1) = 1.0;
        m(dim - 1, dim - 2) = 1.0;
        return m;
    }
    switch (numQubits()) {
      case 1: return oneQubitMatrix(op, params);
      case 2: return twoQubitMatrix(*this);
      case 3: return threeQubitMatrix(*this);
      default:
        assert(false && "unsupported gate arity");
        return Matrix::identity(1 << numQubits());
    }
}

weyl::WeylCoord
Gate::weylCoord() const
{
    assert(is2Q());
    if (op == Op::CAN)
        return {params[0], params[1], params[2]};
    return weyl::weylCoordinate(matrix());
}

std::string
Gate::toString() const
{
    std::ostringstream os;
    os << opName(op);
    if (!params.empty()) {
        os << "(";
        for (size_t i = 0; i < params.size(); ++i)
            os << (i ? "," : "") << params[i];
        os << ")";
    }
    for (int q : qubits)
        os << " q" << q;
    return os.str();
}

Gate
Gate::simple(Op op, int q)
{
    Gate g;
    g.op = op;
    g.qubits = {q};
    return g;
}

Gate
Gate::rx(int q, double a)
{
    Gate g = simple(Op::RX, q);
    g.params = {a};
    return g;
}

Gate
Gate::ry(int q, double a)
{
    Gate g = simple(Op::RY, q);
    g.params = {a};
    return g;
}

Gate
Gate::rz(int q, double a)
{
    Gate g = simple(Op::RZ, q);
    g.params = {a};
    return g;
}

Gate
Gate::u3(int q, double theta, double phi, double lambda)
{
    Gate g = simple(Op::U3, q);
    g.params = {theta, phi, lambda};
    return g;
}

Gate
Gate::cx(int c, int t)
{
    Gate g;
    g.op = Op::CX;
    g.qubits = {c, t};
    return g;
}

Gate
Gate::cy(int c, int t)
{
    Gate g;
    g.op = Op::CY;
    g.qubits = {c, t};
    return g;
}

Gate
Gate::cz(int c, int t)
{
    Gate g;
    g.op = Op::CZ;
    g.qubits = {c, t};
    return g;
}

Gate
Gate::swap(int a, int b)
{
    Gate g;
    g.op = Op::SWAP;
    g.qubits = {a, b};
    return g;
}

Gate
Gate::iswap(int a, int b)
{
    Gate g;
    g.op = Op::ISWAP;
    g.qubits = {a, b};
    return g;
}

Gate
Gate::sqisw(int a, int b)
{
    Gate g;
    g.op = Op::SQISW;
    g.qubits = {a, b};
    return g;
}

Gate
Gate::bgate(int a, int b)
{
    Gate g;
    g.op = Op::B;
    g.qubits = {a, b};
    return g;
}

Gate
Gate::cp(int c, int t, double a)
{
    Gate g;
    g.op = Op::CP;
    g.qubits = {c, t};
    g.params = {a};
    return g;
}

Gate
Gate::rzz(int a, int b, double t)
{
    Gate g;
    g.op = Op::RZZ;
    g.qubits = {a, b};
    g.params = {t};
    return g;
}

Gate
Gate::rxx(int a, int b, double t)
{
    Gate g;
    g.op = Op::RXX;
    g.qubits = {a, b};
    g.params = {t};
    return g;
}

Gate
Gate::ryy(int a, int b, double t)
{
    Gate g;
    g.op = Op::RYY;
    g.qubits = {a, b};
    g.params = {t};
    return g;
}

Gate
Gate::can(int a, int b, const weyl::WeylCoord &c)
{
    Gate g;
    g.op = Op::CAN;
    g.qubits = {a, b};
    g.params = {c.x, c.y, c.z};
    return g;
}

Gate
Gate::u4(int a, int b, const Matrix &m)
{
    assert(m.rows() == 4 && m.cols() == 4);
    Gate g;
    g.op = Op::U4;
    g.qubits = {a, b};
    g.payload = std::make_shared<const Matrix>(m);
    return g;
}

Gate
Gate::ccx(int c1, int c2, int t)
{
    Gate g;
    g.op = Op::CCX;
    g.qubits = {c1, c2, t};
    return g;
}

Gate
Gate::ccz(int c1, int c2, int t)
{
    Gate g;
    g.op = Op::CCZ;
    g.qubits = {c1, c2, t};
    return g;
}

Gate
Gate::cswap(int c, int a, int b)
{
    Gate g;
    g.op = Op::CSWAP;
    g.qubits = {c, a, b};
    return g;
}

Gate
Gate::peres(int c1, int c2, int t)
{
    Gate g;
    g.op = Op::PERES;
    g.qubits = {c1, c2, t};
    return g;
}

Gate
Gate::mcx(const std::vector<int> &controls, int target)
{
    assert(!controls.empty());
    Gate g;
    g.op = Op::MCX;
    g.qubits = controls;
    g.qubits.push_back(target);
    return g;
}

} // namespace reqisc::circuit
