/**
 * @file
 * Circuit container and the metrics the paper's evaluation reports.
 *
 * A Circuit is an ordered gate list on a fixed-size qubit register —
 * deliberately flat; structural views (dependency DAG, 3Q partitions)
 * are built on demand by dag.hh and the compiler passes. Member
 * metrics (#2Q, Depth2Q, duration under a pluggable per-gate model,
 * distinct-SU(4) count) are the quantities Tables 1/2 and Figs 12-16
 * track. Durations are in 1/g units; qubit indices are
 * register-global, 0-based.
 */

#ifndef REQISC_CIRCUIT_CIRCUIT_HH
#define REQISC_CIRCUIT_CIRCUIT_HH

#include <functional>
#include <string>
#include <vector>

#include "circuit/gate.hh"

namespace reqisc::circuit
{

/** An ordered list of gates on a fixed-size qubit register. */
class Circuit
{
  public:
    Circuit() : numQubits_(0) {}
    explicit Circuit(int num_qubits) : numQubits_(num_qubits) {}

    int numQubits() const { return numQubits_; }
    size_t size() const { return gates_.size(); }
    bool empty() const { return gates_.empty(); }

    const Gate &operator[](size_t i) const { return gates_[i]; }
    Gate &operator[](size_t i) { return gates_[i]; }

    const std::vector<Gate> &gates() const { return gates_; }
    std::vector<Gate> &gates() { return gates_; }

    auto begin() const { return gates_.begin(); }
    auto end() const { return gates_.end(); }

    /** Append a gate (qubit indices validated in debug builds). */
    void add(Gate g);

    /** Append all gates of another circuit. */
    void append(const Circuit &other);

    /** Number of gates acting on >= 2 qubits. */
    int count2Q() const;

    /** Number of gates matching the given op. */
    int countOp(Op op) const;

    /**
     * Two-qubit depth: longest chain of multi-qubit gates, computed
     * with per-qubit frontiers (one-qubit gates are free).
     */
    int depth2Q() const;

    /**
     * Number of distinct SU(4) classes among the 2Q gates, clustering
     * Weyl coordinates with the given tolerance. This is the paper's
     * calibration-overhead metric (Fig 13).
     */
    int countDistinctSU4(double tol = 1e-6) const;

    /** Pretty multi-line dump (one gate per line, QASM-like). */
    std::string toString() const;

  private:
    int numQubits_;
    std::vector<Gate> gates_;
};

/**
 * Critical-path duration of the circuit given a per-gate duration
 * model. One-qubit gates cost 0 (the paper's convention); each
 * multi-qubit gate's cost comes from the callback.
 */
double criticalPathDuration(
    const Circuit &c,
    const std::function<double(const Gate &)> &gate_duration);

} // namespace reqisc::circuit

#endif // REQISC_CIRCUIT_CIRCUIT_HH
