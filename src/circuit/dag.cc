#include "circuit/dag.hh"

#include <algorithm>

namespace reqisc::circuit
{

std::vector<int>
Dag::roots() const
{
    std::vector<int> r;
    for (size_t i = 0; i < nodes.size(); ++i)
        if (nodes[i].preds.empty())
            r.push_back(static_cast<int>(i));
    return r;
}

std::vector<int>
Dag::leaves() const
{
    std::vector<int> r;
    for (size_t i = 0; i < nodes.size(); ++i)
        if (nodes[i].succs.empty())
            r.push_back(static_cast<int>(i));
    return r;
}

Dag
buildDag(const Circuit &c)
{
    Dag dag;
    dag.nodes.resize(c.size());
    std::vector<int> last(c.numQubits(), -1);
    for (size_t i = 0; i < c.size(); ++i) {
        const Gate &g = c[static_cast<size_t>(i)];
        for (int q : g.qubits) {
            if (last[q] >= 0) {
                auto &succs = dag.nodes[last[q]].succs;
                if (std::find(succs.begin(), succs.end(),
                              static_cast<int>(i)) == succs.end()) {
                    succs.push_back(static_cast<int>(i));
                    dag.nodes[i].preds.push_back(last[q]);
                }
            }
            last[q] = static_cast<int>(i);
        }
    }
    return dag;
}

} // namespace reqisc::circuit
