/**
 * @file
 * Gate-level IR: the operations the ReQISC stack manipulates.
 *
 * Three layers of abstraction share this type:
 *  - high-level program IR (CCX / MCX / CSWAP and friends),
 *  - the conventional CNOT ISA ({CX, 1Q gates}),
 *  - the SU(4) ISA ({Can(x,y,z), U3} plus opaque fused U4 blocks).
 *
 * Qubit-ordering convention: the first qubit listed in a gate is the
 * most significant index of its matrix (matching kron(A, B) with A on
 * the first qubit). For controlled gates the control(s) come first.
 * All gate parameters (params) are angles in radians; Can(x, y, z)
 * parameters are Weyl-chamber coordinates (weyl/weyl.hh).
 */

#ifndef REQISC_CIRCUIT_GATE_HH
#define REQISC_CIRCUIT_GATE_HH

#include <memory>
#include <string>
#include <vector>

#include "qmath/matrix.hh"
#include "weyl/weyl.hh"

namespace reqisc::circuit
{

using qmath::Complex;
using qmath::Matrix;

/** Operation codes. */
enum class Op
{
    // One-qubit gates.
    I, X, Y, Z, H, S, Sdg, T, Tdg, SX, RX, RY, RZ, U3,
    // Two-qubit gates.
    CX, CY, CZ, SWAP, ISWAP, SQISW, B, CP, RZZ, RXX, RYY,
    CAN,   //!< canonical gate Can(x, y, z)
    U4,    //!< opaque two-qubit unitary (fused block), carries a matrix
    // Three-or-more-qubit gates (high-level IR).
    CCX, CCZ, CSWAP, PERES, MCX,
};

/** @return a short lowercase mnemonic ("cx", "can", ...). */
const char *opName(Op op);

/**
 * Reverse of opName for the textual formats (QASM, RQISA assembly):
 * fills `out` and returns true for every named op except the opaque
 * U4 (which carries a matrix payload and has no textual form).
 */
bool opFromName(const std::string &name, Op &out);

/** @return the number of parameters the op expects. */
int opParamCount(Op op);

/** A single gate instance. */
struct Gate
{
    Op op = Op::I;
    std::vector<int> qubits;
    std::vector<double> params;
    /** Matrix payload for Op::U4 (shared, immutable). */
    std::shared_ptr<const Matrix> payload;

    int numQubits() const { return static_cast<int>(qubits.size()); }
    bool is1Q() const { return qubits.size() == 1; }
    bool is2Q() const { return qubits.size() == 2; }

    /**
     * The unitary of this gate on its own qubits (dimension 2^k with
     * the first listed qubit most significant).
     */
    Matrix matrix() const;

    /** Weyl coordinate of a two-qubit gate. */
    weyl::WeylCoord weylCoord() const;

    std::string toString() const;

    // ----- Factories ---------------------------------------------------
    static Gate x(int q) { return simple(Op::X, q); }
    static Gate y(int q) { return simple(Op::Y, q); }
    static Gate z(int q) { return simple(Op::Z, q); }
    static Gate h(int q) { return simple(Op::H, q); }
    static Gate s(int q) { return simple(Op::S, q); }
    static Gate sdg(int q) { return simple(Op::Sdg, q); }
    static Gate t(int q) { return simple(Op::T, q); }
    static Gate tdg(int q) { return simple(Op::Tdg, q); }
    static Gate sx(int q) { return simple(Op::SX, q); }
    static Gate rx(int q, double a);
    static Gate ry(int q, double a);
    static Gate rz(int q, double a);
    static Gate u3(int q, double theta, double phi, double lambda);
    static Gate cx(int c, int t);
    static Gate cy(int c, int t);
    static Gate cz(int c, int t);
    static Gate swap(int a, int b);
    static Gate iswap(int a, int b);
    static Gate sqisw(int a, int b);
    static Gate bgate(int a, int b);
    static Gate cp(int c, int t, double a);
    static Gate rzz(int a, int b, double t);
    static Gate rxx(int a, int b, double t);
    static Gate ryy(int a, int b, double t);
    static Gate can(int a, int b, const weyl::WeylCoord &c);
    static Gate u4(int a, int b, const Matrix &m);
    static Gate ccx(int c1, int c2, int t);
    static Gate ccz(int c1, int c2, int t);
    static Gate cswap(int c, int a, int b);
    static Gate peres(int c1, int c2, int t);
    static Gate mcx(const std::vector<int> &controls, int target);

  private:
    static Gate simple(Op op, int q);
};

} // namespace reqisc::circuit

#endif // REQISC_CIRCUIT_GATE_HH
