#include "circuit/circuit.hh"

#include <algorithm>
#include <sstream>

namespace reqisc::circuit
{

void
Circuit::add(Gate g)
{
#ifndef NDEBUG
    for (int q : g.qubits)
        assert(q >= 0 && q < numQubits_);
    for (size_t i = 0; i < g.qubits.size(); ++i)
        for (size_t j = i + 1; j < g.qubits.size(); ++j)
            assert(g.qubits[i] != g.qubits[j]);
#endif
    gates_.push_back(std::move(g));
}

void
Circuit::append(const Circuit &other)
{
    assert(other.numQubits() <= numQubits_);
    for (const Gate &g : other.gates_)
        add(g);
}

int
Circuit::count2Q() const
{
    int n = 0;
    for (const Gate &g : gates_)
        if (g.numQubits() >= 2)
            ++n;
    return n;
}

int
Circuit::countOp(Op op) const
{
    int n = 0;
    for (const Gate &g : gates_)
        if (g.op == op)
            ++n;
    return n;
}

int
Circuit::depth2Q() const
{
    std::vector<int> frontier(numQubits_, 0);
    int depth = 0;
    for (const Gate &g : gates_) {
        if (g.numQubits() < 2)
            continue;
        int level = 0;
        for (int q : g.qubits)
            level = std::max(level, frontier[q]);
        ++level;
        for (int q : g.qubits)
            frontier[q] = level;
        depth = std::max(depth, level);
    }
    return depth;
}

int
Circuit::countDistinctSU4(double tol) const
{
    std::vector<weyl::WeylCoord> reps;
    for (const Gate &g : gates_) {
        if (!g.is2Q())
            continue;
        weyl::WeylCoord c = g.weylCoord();
        bool found = false;
        for (const auto &r : reps) {
            if (r.approxEqual(c, tol)) {
                found = true;
                break;
            }
        }
        if (!found)
            reps.push_back(c);
    }
    return static_cast<int>(reps.size());
}

std::string
Circuit::toString() const
{
    std::ostringstream os;
    os << "circuit(" << numQubits_ << " qubits, " << gates_.size()
       << " gates)\n";
    for (const Gate &g : gates_)
        os << "  " << g.toString() << "\n";
    return os.str();
}

double
criticalPathDuration(
    const Circuit &c,
    const std::function<double(const Gate &)> &gate_duration)
{
    std::vector<double> frontier(c.numQubits(), 0.0);
    double total = 0.0;
    for (const Gate &g : c) {
        if (g.numQubits() < 2)
            continue;
        double start = 0.0;
        for (int q : g.qubits)
            start = std::max(start, frontier[q]);
        const double end = start + gate_duration(g);
        for (int q : g.qubits)
            frontier[q] = end;
        total = std::max(total, end);
    }
    return total;
}

} // namespace reqisc::circuit
