#include "circuit/qasm.hh"

#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "circuit/lower.hh"

namespace reqisc::circuit
{

namespace
{

std::string
trimToken(const std::string &s)
{
    const size_t b = s.find_first_not_of(" \t\r\n");
    if (b == std::string::npos)
        return "";
    const size_t e = s.find_last_not_of(" \t\r\n");
    return s.substr(b, e - b + 1);
}

} // namespace

bool
parseTokenInt(const std::string &tok, int &out)
{
    const std::string t = trimToken(tok);
    if (t.empty())
        return false;
    try {
        size_t used = 0;
        out = std::stoi(t, &used);
        return used == t.size();
    } catch (const std::logic_error &) {
        return false;
    }
}

bool
parseTokenDouble(const std::string &tok, double &out)
{
    const std::string t = trimToken(tok);
    if (t.empty())
        return false;
    try {
        size_t used = 0;
        out = std::stod(t, &used);
        return used == t.size();
    } catch (const std::logic_error &) {
        return false;
    }
}


std::string
toQasm(const Circuit &input)
{
    // Expand opaque matrix payloads first so every line is textual.
    bool has_u4 = false;
    for (const Gate &g : input)
        if (g.op == Op::U4)
            has_u4 = true;
    const Circuit c = has_u4 ? expandToCanU3(input) : input;

    std::ostringstream os;
    os << "OPENQASM 2.0;\n";
    os << "qreg q[" << c.numQubits() << "];\n";
    os.precision(17);
    for (const Gate &g : c) {
        os << opName(g.op);
        if (!g.params.empty()) {
            os << "(";
            for (size_t i = 0; i < g.params.size(); ++i)
                os << (i ? "," : "") << g.params[i];
            os << ")";
        }
        os << " ";
        for (size_t i = 0; i < g.qubits.size(); ++i)
            os << (i ? "," : "") << "q[" << g.qubits[i] << "]";
        os << ";\n";
    }
    return os.str();
}

Circuit
fromQasm(const std::string &text)
{
    std::istringstream is(text);
    std::string line;
    Circuit c;
    int lineno = 0;
    auto fail = [&](const std::string &msg) {
        throw std::runtime_error("qasm parse error at line " +
                                 std::to_string(lineno) + ": " + msg);
    };
    // Strict-token wrappers so malformed numbers surface as clean
    // parse errors with a line number instead of bare exceptions.
    auto parseInt = [&](const std::string &tok) {
        int v = 0;
        if (!parseTokenInt(tok, v))
            fail("bad integer '" + tok + "'");
        return v;
    };
    auto parseDouble = [&](const std::string &tok) {
        double v = 0.0;
        if (!parseTokenDouble(tok, v))
            fail("bad number '" + tok + "'");
        return v;
    };
    while (std::getline(is, line)) {
        ++lineno;
        // Strip comments and whitespace.
        const size_t comment = line.find("//");
        if (comment != std::string::npos)
            line = line.substr(0, comment);
        size_t begin = line.find_first_not_of(" \t\r");
        if (begin == std::string::npos)
            continue;
        size_t end = line.find_last_not_of(" \t\r");
        line = line.substr(begin, end - begin + 1);
        if (line.empty() || line.rfind("OPENQASM", 0) == 0)
            continue;
        if (line.back() != ';')
            fail("missing ';'");
        line.pop_back();
        if (line.rfind("qreg", 0) == 0) {
            const size_t lb = line.find('[');
            const size_t rb = line.find(']');
            if (lb == std::string::npos || rb == std::string::npos ||
                rb < lb)
                fail("malformed qreg");
            const int n =
                parseInt(line.substr(lb + 1, rb - lb - 1));
            if (n <= 0)
                fail("qreg size must be positive");
            c = Circuit(n);
            continue;
        }
        // "<name>(p,..)? q[i],q[j],..."
        size_t sp = line.find_first_of(" (");
        if (sp == std::string::npos)
            fail("malformed gate line");
        const std::string name = line.substr(0, sp);
        Gate g;
        if (!opFromName(name, g.op))
            fail("unknown op '" + name + "'");
        size_t cursor = sp;
        if (line[sp] == '(') {
            const size_t close = line.find(')', sp);
            if (close == std::string::npos)
                fail("unterminated parameter list");
            std::string params = line.substr(sp + 1, close - sp - 1);
            std::istringstream ps(params);
            std::string tok;
            while (std::getline(ps, tok, ','))
                g.params.push_back(parseDouble(tok));
            cursor = close + 1;
        }
        // Qubit operands.
        std::string rest = line.substr(cursor);
        size_t pos = 0;
        while ((pos = rest.find("q[", pos)) != std::string::npos) {
            const size_t rb = rest.find(']', pos);
            if (rb == std::string::npos)
                fail("unterminated qubit operand");
            g.qubits.push_back(
                parseInt(rest.substr(pos + 2, rb - pos - 2)));
            pos = rb + 1;
        }
        if (g.qubits.empty())
            fail("gate with no qubits");
        if (c.numQubits() == 0)
            fail("gate before qreg declaration");
        for (int q : g.qubits)
            if (q < 0 || q >= c.numQubits())
                fail("qubit index q[" + std::to_string(q) +
                     "] out of range for qreg of size " +
                     std::to_string(c.numQubits()));
        for (size_t a = 0; a < g.qubits.size(); ++a)
            for (size_t b = a + 1; b < g.qubits.size(); ++b)
                if (g.qubits[a] == g.qubits[b])
                    fail("duplicate qubit operand q[" +
                         std::to_string(g.qubits[a]) + "]");
        if (g.op != Op::MCX &&
            opParamCount(g.op) !=
                static_cast<int>(g.params.size()) &&
            !(g.op == Op::CAN && g.params.size() == 3) &&
            !(g.op == Op::U3 && g.params.size() == 3))
            fail("wrong parameter count for '" + name + "'");
        c.add(std::move(g));
    }
    return c;
}

} // namespace reqisc::circuit
