#include "circuit/qasm.hh"

#include <cstdio>
#include <map>
#include <sstream>
#include <stdexcept>

#include "circuit/lower.hh"

namespace reqisc::circuit
{

namespace
{

/** Ops with a stable textual form (everything except U4). */
const std::map<std::string, Op> &
nameTable()
{
    static const std::map<std::string, Op> table = {
        {"id", Op::I}, {"x", Op::X}, {"y", Op::Y}, {"z", Op::Z},
        {"h", Op::H}, {"s", Op::S}, {"sdg", Op::Sdg}, {"t", Op::T},
        {"tdg", Op::Tdg}, {"sx", Op::SX}, {"rx", Op::RX},
        {"ry", Op::RY}, {"rz", Op::RZ}, {"u3", Op::U3},
        {"cx", Op::CX}, {"cy", Op::CY}, {"cz", Op::CZ},
        {"swap", Op::SWAP}, {"iswap", Op::ISWAP},
        {"sqisw", Op::SQISW}, {"b", Op::B}, {"cp", Op::CP},
        {"rzz", Op::RZZ}, {"rxx", Op::RXX}, {"ryy", Op::RYY},
        {"can", Op::CAN}, {"ccx", Op::CCX}, {"ccz", Op::CCZ},
        {"cswap", Op::CSWAP}, {"peres", Op::PERES},
        {"mcx", Op::MCX},
    };
    return table;
}

} // namespace

std::string
toQasm(const Circuit &input)
{
    // Expand opaque matrix payloads first so every line is textual.
    bool has_u4 = false;
    for (const Gate &g : input)
        if (g.op == Op::U4)
            has_u4 = true;
    const Circuit c = has_u4 ? expandToCanU3(input) : input;

    std::ostringstream os;
    os << "OPENQASM 2.0;\n";
    os << "qreg q[" << c.numQubits() << "];\n";
    os.precision(17);
    for (const Gate &g : c) {
        os << opName(g.op);
        if (!g.params.empty()) {
            os << "(";
            for (size_t i = 0; i < g.params.size(); ++i)
                os << (i ? "," : "") << g.params[i];
            os << ")";
        }
        os << " ";
        for (size_t i = 0; i < g.qubits.size(); ++i)
            os << (i ? "," : "") << "q[" << g.qubits[i] << "]";
        os << ";\n";
    }
    return os.str();
}

Circuit
fromQasm(const std::string &text)
{
    std::istringstream is(text);
    std::string line;
    Circuit c;
    int lineno = 0;
    auto fail = [&](const std::string &msg) {
        throw std::runtime_error("qasm parse error at line " +
                                 std::to_string(lineno) + ": " + msg);
    };
    while (std::getline(is, line)) {
        ++lineno;
        // Strip comments and whitespace.
        const size_t comment = line.find("//");
        if (comment != std::string::npos)
            line = line.substr(0, comment);
        size_t begin = line.find_first_not_of(" \t\r");
        if (begin == std::string::npos)
            continue;
        size_t end = line.find_last_not_of(" \t\r");
        line = line.substr(begin, end - begin + 1);
        if (line.empty() || line.rfind("OPENQASM", 0) == 0)
            continue;
        if (line.back() != ';')
            fail("missing ';'");
        line.pop_back();
        if (line.rfind("qreg", 0) == 0) {
            const size_t lb = line.find('[');
            const size_t rb = line.find(']');
            if (lb == std::string::npos || rb == std::string::npos)
                fail("malformed qreg");
            c = Circuit(std::stoi(line.substr(lb + 1, rb - lb - 1)));
            continue;
        }
        // "<name>(p,..)? q[i],q[j],..."
        size_t sp = line.find_first_of(" (");
        if (sp == std::string::npos)
            fail("malformed gate line");
        const std::string name = line.substr(0, sp);
        auto it = nameTable().find(name);
        if (it == nameTable().end())
            fail("unknown op '" + name + "'");
        Gate g;
        g.op = it->second;
        size_t cursor = sp;
        if (line[sp] == '(') {
            const size_t close = line.find(')', sp);
            if (close == std::string::npos)
                fail("unterminated parameter list");
            std::string params = line.substr(sp + 1, close - sp - 1);
            std::istringstream ps(params);
            std::string tok;
            while (std::getline(ps, tok, ','))
                g.params.push_back(std::stod(tok));
            cursor = close + 1;
        }
        // Qubit operands.
        std::string rest = line.substr(cursor);
        size_t pos = 0;
        while ((pos = rest.find("q[", pos)) != std::string::npos) {
            const size_t rb = rest.find(']', pos);
            if (rb == std::string::npos)
                fail("unterminated qubit operand");
            g.qubits.push_back(
                std::stoi(rest.substr(pos + 2, rb - pos - 2)));
            pos = rb + 1;
        }
        if (g.qubits.empty())
            fail("gate with no qubits");
        if (g.op != Op::MCX &&
            opParamCount(g.op) !=
                static_cast<int>(g.params.size()) &&
            !(g.op == Op::CAN && g.params.size() == 3) &&
            !(g.op == Op::U3 && g.params.size() == 3))
            fail("wrong parameter count for '" + name + "'");
        if (c.numQubits() == 0)
            fail("gate before qreg declaration");
        c.add(std::move(g));
    }
    return c;
}

} // namespace reqisc::circuit
