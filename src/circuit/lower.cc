#include "circuit/lower.hh"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "circuit/dag.hh"
#include "weyl/su2.hh"

namespace reqisc::circuit
{

namespace
{

constexpr double kPi = std::numbers::pi;

/** Emit the textbook 6-CX Toffoli on (c1, c2, t). */
void
emitCcx(Circuit &out, int c1, int c2, int t)
{
    out.add(Gate::h(t));
    out.add(Gate::cx(c2, t));
    out.add(Gate::tdg(t));
    out.add(Gate::cx(c1, t));
    out.add(Gate::t(t));
    out.add(Gate::cx(c2, t));
    out.add(Gate::tdg(t));
    out.add(Gate::cx(c1, t));
    out.add(Gate::t(c2));
    out.add(Gate::t(t));
    out.add(Gate::h(t));
    out.add(Gate::cx(c1, c2));
    out.add(Gate::t(c1));
    out.add(Gate::tdg(c2));
    out.add(Gate::cx(c1, c2));
}

/** The sqrt(X)-type rotation that swaps the y and z Weyl axes. */
Matrix
vGate()
{
    const double r = 1.0 / std::sqrt(2.0);
    return Matrix{{qmath::Complex(r, 0), qmath::Complex(0, -r)},
                  {qmath::Complex(0, -r), qmath::Complex(r, 0)}};
}

} // namespace

Gate
u3FromMatrix(int q, const Matrix &m)
{
    weyl::U3Angles a = weyl::u3Angles(m);
    return Gate::u3(q, a.theta, a.phi, a.lambda);
}

bool
conjugateOnto(const Matrix &u, const Matrix &v, Matrix &l1, Matrix &l2,
              Matrix &r1, Matrix &r2)
{
    weyl::KakDecomposition ku = weyl::kakDecompose(u);
    weyl::KakDecomposition kv = weyl::kakDecompose(v);
    if (!ku.coord.approxEqual(kv.coord, 1e-8))
        return false;
    // u = pu (Au1 x Au2) Can (Bu1 x Bu2), v likewise; substitute Can.
    const qmath::Complex scale = ku.phase / kv.phase;
    l1 = ku.a1 * kv.a1.dagger() * scale;
    l2 = ku.a2 * kv.a2.dagger();
    r1 = kv.b1.dagger() * ku.b1;
    r2 = kv.b2.dagger() * ku.b2;
    return true;
}

std::vector<Gate>
gateToCnotsAnalytic(int a, int b, const Matrix &u)
{
    std::vector<Gate> out;
    weyl::KakDecomposition k = weyl::kakDecompose(u);
    const weyl::WeylCoord c = k.coord;
    const double tol = 1e-9;

    auto emitLocalPair = [&](const Matrix &m1, const Matrix &m2) {
        if (!weyl::isIdentityUpToPhase(m1, 1e-11))
            out.push_back(u3FromMatrix(a, m1));
        if (!weyl::isIdentityUpToPhase(m2, 1e-11))
            out.push_back(u3FromMatrix(b, m2));
    };

    if (c.norm1() < tol) {
        // Purely local.
        emitLocalPair(k.a1 * k.b1, k.a2 * k.b2);
        return out;
    }

    // Build a structural core circuit with the same Weyl coordinates,
    // then wrap it with the conjugating locals.
    std::vector<Gate> core;
    Matrix core_matrix;
    if (c.approxEqual(weyl::WeylCoord::cnot(), tol)) {
        core.push_back(Gate::cx(a, b));
        core_matrix = core[0].matrix();
    } else if (std::abs(c.z) < tol) {
        // Two-CX class: (V x V)^dagger exp(-i(x XX + y ZZ)) (V x V)
        // realized as CX (Rx(2x) x Rz(2y)) CX.
        const Matrix v = vGate();
        core.push_back(u3FromMatrix(a, v));
        core.push_back(u3FromMatrix(b, v));
        core.push_back(Gate::cx(a, b));
        core.push_back(Gate::rx(a, 2.0 * c.x));
        core.push_back(Gate::rz(b, 2.0 * c.y));
        core.push_back(Gate::cx(a, b));
        core.push_back(u3FromMatrix(a, v.dagger()));
        core.push_back(u3FromMatrix(b, v.dagger()));
        const Matrix cxm = Gate::cx(a, b).matrix();
        const Matrix mid =
            kron(Gate::rx(a, 2.0 * c.x).matrix(),
                 Gate::rz(b, 2.0 * c.y).matrix());
        const Matrix vv = kron(v, v);
        core_matrix = vv.dagger() * cxm * mid * cxm * vv;
    } else {
        // Exact 4-CX fallback:
        //   Can(x,y,z) = Can(x,y,0) * Can(0,0,z),
        //   Can(0,0,z) = CX (I x Rz(2z)) CX.
        const Matrix v = vGate();
        core.push_back(Gate::cx(a, b));
        core.push_back(Gate::rz(b, 2.0 * c.z));
        core.push_back(Gate::cx(a, b));
        core.push_back(u3FromMatrix(a, v));
        core.push_back(u3FromMatrix(b, v));
        core.push_back(Gate::cx(a, b));
        core.push_back(Gate::rx(a, 2.0 * c.x));
        core.push_back(Gate::rz(b, 2.0 * c.y));
        core.push_back(Gate::cx(a, b));
        core.push_back(u3FromMatrix(a, v.dagger()));
        core.push_back(u3FromMatrix(b, v.dagger()));
        const Matrix cxm = Gate::cx(a, b).matrix();
        const Matrix vv = kron(v, v);
        const Matrix zpart =
            cxm * kron(Matrix::identity(2),
                       Gate::rz(b, 2.0 * c.z).matrix()) * cxm;
        const Matrix mid =
            kron(Gate::rx(a, 2.0 * c.x).matrix(),
                 Gate::rz(b, 2.0 * c.y).matrix());
        const Matrix xypart = vv.dagger() * cxm * mid * cxm * vv;
        core_matrix = xypart * zpart;
    }

    Matrix l1, l2, r1, r2;
    const bool ok = conjugateOnto(u, core_matrix, l1, l2, r1, r2);
    assert(ok && "core circuit must share Weyl coordinates");
    if (!ok)
        return {};
    emitLocalPair(r1, r2);
    for (const Gate &g : core)
        out.push_back(g);
    emitLocalPair(l1, l2);
    return out;
}

Circuit
decomposeMcx(const Circuit &c)
{
    Circuit out(c.numQubits());
    for (const Gate &g : c) {
        if (g.op != Op::MCX) {
            out.add(g);
            continue;
        }
        const int k = g.numQubits() - 1;
        const int target = g.qubits.back();
        if (k == 1) {
            out.add(Gate::cx(g.qubits[0], target));
            continue;
        }
        if (k == 2) {
            out.add(Gate::ccx(g.qubits[0], g.qubits[1], target));
            continue;
        }
        // Clean-ancilla V-chain: requires k - 2 idle qubits.
        std::vector<bool> used(c.numQubits(), false);
        for (int q : g.qubits)
            used[q] = true;
        std::vector<int> anc;
        for (int q = 0; q < c.numQubits() &&
                        static_cast<int>(anc.size()) < k - 2; ++q)
            if (!used[q])
                anc.push_back(q);
        assert(static_cast<int>(anc.size()) == k - 2 &&
               "MCX needs k-2 ancilla qubits");
        std::vector<Gate> compute;
        compute.push_back(
            Gate::ccx(g.qubits[0], g.qubits[1], anc[0]));
        for (int i = 2; i < k - 1; ++i)
            compute.push_back(
                Gate::ccx(g.qubits[i], anc[i - 2], anc[i - 1]));
        for (const Gate &cg : compute)
            out.add(cg);
        out.add(Gate::ccx(g.qubits[k - 1], anc[k - 3], target));
        for (auto it = compute.rbegin(); it != compute.rend(); ++it)
            out.add(*it);
    }
    return out;
}

Circuit
lowerThreeQubit(const Circuit &c)
{
    Circuit out(c.numQubits());
    for (const Gate &g : c) {
        switch (g.op) {
          case Op::CCX:
            emitCcx(out, g.qubits[0], g.qubits[1], g.qubits[2]);
            break;
          case Op::CCZ:
            out.add(Gate::h(g.qubits[2]));
            emitCcx(out, g.qubits[0], g.qubits[1], g.qubits[2]);
            out.add(Gate::h(g.qubits[2]));
            break;
          case Op::CSWAP:
            out.add(Gate::cx(g.qubits[2], g.qubits[1]));
            emitCcx(out, g.qubits[0], g.qubits[1], g.qubits[2]);
            out.add(Gate::cx(g.qubits[2], g.qubits[1]));
            break;
          case Op::PERES:
            emitCcx(out, g.qubits[0], g.qubits[1], g.qubits[2]);
            out.add(Gate::cx(g.qubits[0], g.qubits[1]));
            break;
          default:
            out.add(g);
        }
    }
    return out;
}

Circuit
lowerToCnot(const Circuit &c)
{
    Circuit mid = lowerThreeQubit(decomposeMcx(c));
    Circuit out(c.numQubits());
    for (const Gate &g : mid) {
        if (g.numQubits() == 1 || g.op == Op::CX) {
            out.add(g);
            continue;
        }
        assert(g.is2Q());
        for (Gate &e :
             gateToCnotsAnalytic(g.qubits[0], g.qubits[1], g.matrix()))
            out.add(std::move(e));
    }
    return out;
}

Circuit
expandToCanU3(const Circuit &c)
{
    Circuit out(c.numQubits());
    for (const Gate &g : c) {
        if (g.numQubits() == 1) {
            if (g.op == Op::U3) {
                out.add(g);
            } else {
                out.add(u3FromMatrix(g.qubits[0], g.matrix()));
            }
            continue;
        }
        assert(g.is2Q());
        if (g.op == Op::CAN) {
            out.add(g);
            continue;
        }
        weyl::KakDecomposition k = weyl::kakDecompose(g.matrix());
        const int a = g.qubits[0], b = g.qubits[1];
        if (!weyl::isIdentityUpToPhase(k.b1, 1e-11))
            out.add(u3FromMatrix(a, k.b1));
        if (!weyl::isIdentityUpToPhase(k.b2, 1e-11))
            out.add(u3FromMatrix(b, k.b2));
        if (k.coord.norm1() > 1e-11)
            out.add(Gate::can(a, b, k.coord));
        if (!weyl::isIdentityUpToPhase(k.a1, 1e-11))
            out.add(u3FromMatrix(a, k.a1));
        if (!weyl::isIdentityUpToPhase(k.a2, 1e-11))
            out.add(u3FromMatrix(b, k.a2));
    }
    return out;
}

} // namespace reqisc::circuit
