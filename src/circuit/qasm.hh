/**
 * @file
 * Textual circuit serialization (OpenQASM-2-flavoured).
 *
 * The paper's artifact emits QASM for every compiled benchmark; this
 * is the equivalent interchange path. All named ops round-trip;
 * opaque U4 blocks are expanded into {Can, U3} before writing.
 * Gate parameters are written as radians with 17 significant digits
 * (round-trip exact for doubles); the non-standard "can" mnemonic
 * carries the Weyl coordinates (x, y, z) as its three parameters.
 */

#ifndef REQISC_CIRCUIT_QASM_HH
#define REQISC_CIRCUIT_QASM_HH

#include <string>

#include "circuit/circuit.hh"

namespace reqisc::circuit
{

/** Serialize a circuit (U4 blocks are expanded to {Can, U3}). */
std::string toQasm(const Circuit &c);

/**
 * Parse a circuit written by toQasm (or hand-written in the same
 * dialect). Throws std::runtime_error on malformed input.
 */
Circuit fromQasm(const std::string &text);

} // namespace reqisc::circuit

#endif // REQISC_CIRCUIT_QASM_HH
