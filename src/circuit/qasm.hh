/**
 * @file
 * Textual circuit serialization (OpenQASM-2-flavoured).
 *
 * The paper's artifact emits QASM for every compiled benchmark; this
 * is the equivalent interchange path. All named ops round-trip;
 * opaque U4 blocks are expanded into {Can, U3} before writing.
 * Gate parameters are written as radians with 17 significant digits
 * (round-trip exact for doubles); the non-standard "can" mnemonic
 * carries the Weyl coordinates (x, y, z) as its three parameters.
 */

#ifndef REQISC_CIRCUIT_QASM_HH
#define REQISC_CIRCUIT_QASM_HH

#include <string>

#include "circuit/circuit.hh"

namespace reqisc::circuit
{

/** Serialize a circuit (U4 blocks are expanded to {Can, U3}). */
std::string toQasm(const Circuit &c);

/**
 * Parse a circuit written by toQasm (or hand-written in the same
 * dialect). Throws std::runtime_error on malformed input.
 */
Circuit fromQasm(const std::string &text);

/**
 * Strict numeric-token parsers shared by the textual formats (QASM
 * here, RQISA assembly in isa/): surrounding whitespace is trimmed,
 * then the whole token must parse — trailing garbage, overflow and
 * empty tokens all return false instead of throwing.
 */
bool parseTokenInt(const std::string &tok, int &out);
bool parseTokenDouble(const std::string &tok, double &out);

} // namespace reqisc::circuit

#endif // REQISC_CIRCUIT_QASM_HH
