/**
 * @file
 * Dependency-DAG view of a circuit.
 *
 * Gates are nodes; an edge connects two gates that share a qubit with
 * no intervening gate on that qubit. Used by the partitioners, the DAG
 * compacting pass and the SABRE routers.
 */

#ifndef REQISC_CIRCUIT_DAG_HH
#define REQISC_CIRCUIT_DAG_HH

#include <vector>

#include "circuit/circuit.hh"

namespace reqisc::circuit
{

/** One node per gate, indexed like the source circuit. */
struct DagNode
{
    std::vector<int> preds;
    std::vector<int> succs;
};

/** The full dependency graph of a circuit. */
struct Dag
{
    std::vector<DagNode> nodes;

    /** Gates with no predecessors. */
    std::vector<int> roots() const;

    /** Gates with no successors. */
    std::vector<int> leaves() const;
};

/** Build the dependency DAG (last-writer-per-qubit edges). */
Dag buildDag(const Circuit &c);

} // namespace reqisc::circuit

#endif // REQISC_CIRCUIT_DAG_HH
