/**
 * @file
 * Lowering passes between IR levels.
 *
 * High-level IR (MCX / CCX / Peres / CSWAP, named 2Q gates) is lowered
 * to the conventional {CX, 1Q} ISA for the baselines and Table 1
 * statistics. The generic SU(4) -> 3 CX case lives in the synth module
 * (it needs the numeric instantiation engine); here we provide the
 * analytic cases (0 / 1 / 2 CX and an exact 4-CX fallback).
 */

#ifndef REQISC_CIRCUIT_LOWER_HH
#define REQISC_CIRCUIT_LOWER_HH

#include "circuit/circuit.hh"

namespace reqisc::circuit
{

/**
 * Rewrite every MCX with >= 3 controls into a clean-ancilla CCX
 * ladder. Ancillas are taken from qubits unused by the gate; the
 * caller guarantees enough idle (|0>) qubits exist, as the RevLib-
 * style benchmarks do.
 */
Circuit decomposeMcx(const Circuit &c);

/** Rewrite CCX / CCZ / CSWAP / PERES into {CX, 1Q} gates. */
Circuit lowerThreeQubit(const Circuit &c);

/**
 * Lower everything to the conventional CNOT ISA {CX, 1Q}.
 * Generic SU(4) blocks fall back to an exact 4-CX construction; the
 * synth module provides the optimal 3-CX path used by the compiler.
 */
Circuit lowerToCnot(const Circuit &c);

/**
 * Express an arbitrary two-qubit unitary on qubits (a, b) over
 * {CX, U3} exactly (up to global phase). Uses 0 / 1 / 2 CX when the
 * Weyl coordinates permit, otherwise the 4-CX analytic fallback.
 */
std::vector<Gate> gateToCnotsAnalytic(int a, int b, const Matrix &u);

/**
 * Express u = phase * (l1 (x) l2) * v * (r1 (x) r2) given that u and v
 * share Weyl coordinates; returns false if they do not.
 */
bool conjugateOnto(const Matrix &u, const Matrix &v, Matrix &l1,
                   Matrix &l2, Matrix &r1, Matrix &r2);

/** Emit a U3 gate for an arbitrary 2x2 unitary (drops global phase). */
Gate u3FromMatrix(int q, const Matrix &m);

/**
 * Rewrite CAN/U4 gates as U3 + CAN + U3 normal form: every 2Q gate
 * becomes a bare canonical gate with explicit 1Q dressing, the shape
 * the ReQISC backend consumes.
 */
Circuit expandToCanU3(const Circuit &c);

} // namespace reqisc::circuit

#endif // REQISC_CIRCUIT_LOWER_HH
