#include "uarch/duration.hh"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace reqisc::uarch
{

namespace
{

constexpr double kPi = std::numbers::pi;

} // namespace

const char *
subSchemeName(SubScheme s)
{
    switch (s) {
      case SubScheme::ND: return "ND";
      case SubScheme::EAPlus: return "EA+";
      case SubScheme::EAMinus: return "EA-";
    }
    return "?";
}

DurationInfo
durationInfo(const Coupling &cpl, const weyl::WeylCoord &c)
{
    assert(cpl.isCanonical(1e-9));
    const double a = cpl.a, b = cpl.b, cc = cpl.c;
    const double x = c.x, y = c.y, z = c.z;

    // Direct branch.
    const double t0 = x / a;
    const double tp = (x + y - z) / (a + b - cc);
    const double tm = (x + y + z) / (a + b + cc);
    const double tau1 = std::max({t0, tp, tm});

    // Mirrored branch (x -> pi/2 - x, z -> -z).
    const double xm = kPi / 2.0 - x;
    const double t0b = xm / a;
    const double tpb = (xm + y + z) / (a + b - cc);
    const double tmb = (xm + y - z) / (a + b + cc);
    const double tau2 = std::max({t0b, tpb, tmb});

    DurationInfo info;
    info.tau1 = tau1;
    info.tau2 = tau2;
    info.usesMirrorBranch = tau2 < tau1;
    info.tau = std::min(tau1, tau2);

    double ex = x, ez = z, e0 = t0, ep = tp, em = tm;
    if (info.usesMirrorBranch) {
        ex = xm;
        ez = -z;
        e0 = t0b;
        ep = tpb;
        em = tmb;
    }
    info.effective = {ex, y, ez};

    // The binding constraint selects the subscheme.
    if (e0 >= ep && e0 >= em)
        info.scheme = SubScheme::ND;
    else if (ep >= em)
        info.scheme = SubScheme::EAPlus;
    else
        info.scheme = SubScheme::EAMinus;
    return info;
}

double
optimalDuration(const Coupling &cpl, const weyl::WeylCoord &c)
{
    return durationInfo(cpl, c).tau;
}

double
conventionalCnotDuration(double g)
{
    return kPi / (std::sqrt(2.0) * g);
}

} // namespace reqisc::uarch
