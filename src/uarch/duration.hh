/**
 * @file
 * Time-optimal two-qubit gate durations (Hammerer-Vidal-Cirac bound).
 *
 * Given canonical coupling coefficients (a, b, c) and a target Weyl
 * coordinate (x, y, z), the minimum evolution time with unbounded
 * local drives is tau_opt = min(tau1, tau2) where tau1 covers the
 * direct coordinate and tau2 its x -> pi/2 - x, z -> -z mirror
 * (Algorithm 1, lines 3-7 / Appendix A.1.3).
 *
 * All times are in 1/g units, where g := a + b + |c| is the coupling
 * strength (paper Eq. 3, so xy()/xx() with g = 1 give unit-strength
 * devices); Weyl coordinates are radians inside the chamber of
 * weyl/weyl.hh.
 */

#ifndef REQISC_UARCH_DURATION_HH
#define REQISC_UARCH_DURATION_HH

#include "uarch/coupling.hh"
#include "weyl/weyl.hh"

namespace reqisc::uarch
{

/** Micro-op execution modes of the genAshN scheme. */
enum class SubScheme
{
    ND,       //!< no detuning (delta = 0)
    EAPlus,   //!< equal amplitudes, opposite signs (Omega1 = 0)
    EAMinus,  //!< equal amplitudes, same sign (Omega2 = 0)
};

const char *subSchemeName(SubScheme s);

/** Breakdown of the duration computation. */
struct DurationInfo
{
    double tau = 0.0;        //!< optimal duration
    double tau1 = 0.0;       //!< direct-branch bound
    double tau2 = 0.0;       //!< mirrored-branch bound
    bool usesMirrorBranch = false;  //!< tau2 < tau1
    SubScheme scheme = SubScheme::ND;
    /** Coordinate actually steered to (transformed if tau2 branch). */
    weyl::WeylCoord effective;
};

/** Full breakdown for a coordinate. */
DurationInfo durationInfo(const Coupling &cpl,
                          const weyl::WeylCoord &c);

/** Just the optimal time. */
double optimalDuration(const Coupling &cpl, const weyl::WeylCoord &c);

/**
 * Duration of the conventional (baseline) pulse implementation used
 * for CNOT-based ISAs on XY-coupled transmons: tau = pi / (sqrt(2) g)
 * per CNOT (Krantz et al.); SWAP costs three CNOTs.
 */
double conventionalCnotDuration(double g = 1.0);

} // namespace reqisc::uarch

#endif // REQISC_UARCH_DURATION_HH
