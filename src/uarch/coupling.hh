/**
 * @file
 * Two-qubit coupling Hamiltonians and their canonical normal form.
 *
 * Every two-qubit interaction H splits as
 *   H = (U1 (x) U2)(a XX + b YY + c ZZ)(U1 (x) U2)^dagger
 *       + H'_1 (x) I + I (x) H'_2  (+ trace term)
 * with a >= b >= |c| (Bennett et al., Dur et al.). The genAshN solver
 * works in the canonical frame and maps its drives back through
 * (U1, U2, H'_1, H'_2).
 */

#ifndef REQISC_UARCH_COUPLING_HH
#define REQISC_UARCH_COUPLING_HH

#include "qmath/matrix.hh"
#include "qmath/random.hh"

namespace reqisc::uarch
{

using qmath::Complex;
using qmath::Matrix;

/** Canonical coupling coefficients a >= b >= |c|, a > 0. */
struct Coupling
{
    double a = 0.0;
    double b = 0.0;
    double c = 0.0;

    /** Coupling strength g := a + b + |c| (paper Eq. 3). */
    double strength() const { return a + b + std::abs(c); }

    /** The matrix a XX + b YY + c ZZ. */
    Matrix hamiltonian() const;

    bool isCanonical(double tol = 1e-12) const
    {
        return a >= b - tol && b >= std::abs(c) - tol && a > 0.0;
    }

    /** XY coupling (g/2)(XX + YY): flux-tunable transmons. */
    static Coupling xy(double g = 1.0) { return {g / 2.0, g / 2.0,
                                                 0.0}; }

    /** XX coupling g XX: trapped ions / lab-frame transmons. */
    static Coupling xx(double g = 1.0) { return {g, 0.0, 0.0}; }

    /** Random canonical coupling normalized to strength g. */
    static Coupling random(qmath::Rng &rng, double g = 1.0);
};

/** Result of putting an arbitrary 2Q Hamiltonian in normal form. */
struct HamiltonianNormalForm
{
    Coupling coupling;
    Matrix u1, u2;          //!< local frame change (SU(2) each)
    Matrix h1local, h2local; //!< residual local parts H'_1, H'_2 (2x2)
    double traceTerm = 0.0;  //!< identity component (ignorable phase)

    /** Reassemble the 4x4 Hamiltonian from the parts. */
    Matrix reconstruct() const;
};

/**
 * Canonical normal form of an arbitrary Hermitian 4x4 interaction
 * (Algorithm 1, line 2).
 */
HamiltonianNormalForm normalForm(const Matrix &h);

/**
 * Lift an SO(3) rotation to SU(2): returns U with
 * U sigma_i U^dagger = sum_j R_ji sigma_j.
 */
Matrix su2FromSo3(const double r[3][3]);

/** Adjoint rotation of an SU(2) element (the inverse of the lift). */
void so3FromSu2(const Matrix &u, double r[3][3]);

} // namespace reqisc::uarch

#endif // REQISC_UARCH_COUPLING_HH
