#include "uarch/coupling.hh"

#include <algorithm>
#include <array>
#include <cmath>

#include "qmath/eig.hh"

namespace reqisc::uarch
{

using qmath::pauliI;
using qmath::pauliX;
using qmath::pauliY;
using qmath::pauliZ;

Matrix
Coupling::hamiltonian() const
{
    return qmath::pauliXX() * Complex(a, 0.0) +
           qmath::pauliYY() * Complex(b, 0.0) +
           qmath::pauliZZ() * Complex(c, 0.0);
}

Coupling
Coupling::random(qmath::Rng &rng, double g)
{
    // Sample (a, b, |c|) uniformly on the simplex a + b + |c| = 1,
    // sort descending to enforce canonical ordering, random c sign.
    std::uniform_real_distribution<double> u(0.0, 1.0);
    while (true) {
        double v1 = u(rng), v2 = u(rng);
        double lo = std::min(v1, v2), hi = std::max(v1, v2);
        std::array<double, 3> s = {lo, hi - lo, 1.0 - hi};
        std::sort(s.begin(), s.end(), std::greater<double>());
        if (s[0] <= 1e-9)
            continue;
        double sign = (u(rng) < 0.5) ? -1.0 : 1.0;
        return {g * s[0], g * s[1], g * s[2] * sign};
    }
}

Matrix
HamiltonianNormalForm::reconstruct() const
{
    const Matrix frame = kron(u1, u2);
    Matrix h = frame * coupling.hamiltonian() * frame.dagger();
    h += kron(h1local, Matrix::identity(2));
    h += kron(Matrix::identity(2), h2local);
    h += Matrix::identity(4) * Complex(traceTerm, 0.0);
    return h;
}

Matrix
su2FromSo3(const double r[3][3])
{
    // Shepperd-style quaternion extraction, then
    // U = w I - i (x X + y Y + z Z).
    const double tr = r[0][0] + r[1][1] + r[2][2];
    double w, x, y, z;
    if (tr > 0.0) {
        double s = std::sqrt(tr + 1.0) * 2.0;
        w = 0.25 * s;
        x = (r[2][1] - r[1][2]) / s;
        y = (r[0][2] - r[2][0]) / s;
        z = (r[1][0] - r[0][1]) / s;
    } else if (r[0][0] > r[1][1] && r[0][0] > r[2][2]) {
        double s = std::sqrt(1.0 + r[0][0] - r[1][1] - r[2][2]) * 2.0;
        w = (r[2][1] - r[1][2]) / s;
        x = 0.25 * s;
        y = (r[0][1] + r[1][0]) / s;
        z = (r[0][2] + r[2][0]) / s;
    } else if (r[1][1] > r[2][2]) {
        double s = std::sqrt(1.0 + r[1][1] - r[0][0] - r[2][2]) * 2.0;
        w = (r[0][2] - r[2][0]) / s;
        x = (r[0][1] + r[1][0]) / s;
        y = 0.25 * s;
        z = (r[1][2] + r[2][1]) / s;
    } else {
        double s = std::sqrt(1.0 + r[2][2] - r[0][0] - r[1][1]) * 2.0;
        w = (r[1][0] - r[0][1]) / s;
        x = (r[0][2] + r[2][0]) / s;
        y = (r[1][2] + r[2][1]) / s;
        z = 0.25 * s;
    }
    Matrix u = pauliI() * Complex(w, 0.0);
    u -= pauliX() * Complex(0.0, x);
    u -= pauliY() * Complex(0.0, y);
    u -= pauliZ() * Complex(0.0, z);
    return u;
}

void
so3FromSu2(const Matrix &u, double r[3][3])
{
    const Matrix paulis[3] = {pauliX(), pauliY(), pauliZ()};
    for (int i = 0; i < 3; ++i) {
        const Matrix rot = u * paulis[i] * u.dagger();
        for (int j = 0; j < 3; ++j)
            r[j][i] = 0.5 * qmath::hsInner(paulis[j], rot).real();
    }
}

namespace
{

double
det3(const double m[3][3])
{
    return m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1]) -
           m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0]) +
           m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0]);
}

/**
 * Real SVD of a 3x3 matrix with descending singular values, built on
 * the real symmetric eigensolver (all factors exactly real).
 */
void
realSvd3(const double k[3][3], double u[3][3], double d[3],
         double v[3][3])
{
    Matrix km(3, 3);
    for (int i = 0; i < 3; ++i)
        for (int j = 0; j < 3; ++j)
            km(i, j) = k[i][j];
    Matrix ktk = km.transpose() * km;
    qmath::EigResult e = qmath::eighReal(ktk);
    // Descending order (eighReal sorts ascending).
    for (int j = 0; j < 3; ++j) {
        const int src = 2 - j;
        d[j] = std::sqrt(std::max(0.0, e.values[src]));
        for (int i = 0; i < 3; ++i)
            v[i][j] = e.vectors(i, src).real();
    }
    // u_j = K v_j / d_j, completed orthonormally for tiny d_j.
    for (int j = 0; j < 3; ++j) {
        double col[3] = {0, 0, 0};
        for (int i = 0; i < 3; ++i)
            for (int l = 0; l < 3; ++l)
                col[i] += k[i][l] * v[l][j];
        double nrm = std::sqrt(col[0] * col[0] + col[1] * col[1] +
                               col[2] * col[2]);
        if (nrm > 1e-12 * (1.0 + d[0])) {
            for (int i = 0; i < 3; ++i)
                u[i][j] = col[i] / nrm;
        } else {
            // Orthonormal completion against previous columns.
            for (int cand = 0; cand < 3; ++cand) {
                double e3[3] = {0, 0, 0};
                e3[cand] = 1.0;
                for (int p = 0; p < j; ++p) {
                    double dot = 0;
                    for (int i = 0; i < 3; ++i)
                        dot += u[i][p] * e3[i];
                    for (int i = 0; i < 3; ++i)
                        e3[i] -= dot * u[i][p];
                }
                double n2 = std::sqrt(e3[0] * e3[0] + e3[1] * e3[1] +
                                      e3[2] * e3[2]);
                if (n2 > 0.3) {
                    for (int i = 0; i < 3; ++i)
                        u[i][j] = e3[i] / n2;
                    break;
                }
            }
        }
    }
}

} // namespace

HamiltonianNormalForm
normalForm(const Matrix &h)
{
    assert(h.rows() == 4 && h.isHermitian(1e-8));
    const Matrix paulis[4] = {pauliI(), pauliX(), pauliY(), pauliZ()};

    // Pauli coefficients h_ij = Tr[(s_i (x) s_j) H] / 4.
    double coef[4][4];
    for (int i = 0; i < 4; ++i)
        for (int j = 0; j < 4; ++j)
            coef[i][j] = 0.25 *
                qmath::hsInner(kron(paulis[i], paulis[j]), h).real();

    HamiltonianNormalForm nf;
    nf.traceTerm = coef[0][0];
    nf.h1local = Matrix::zeros(2, 2);
    nf.h2local = Matrix::zeros(2, 2);
    for (int i = 1; i < 4; ++i) {
        nf.h1local += paulis[i] * Complex(coef[i][0], 0.0);
        nf.h2local += paulis[i] * Complex(coef[0][i], 0.0);
    }

    // Nonlocal block: K = R1 diag(a,b,c) R2^T with R1, R2 in SO(3);
    // conjugating by the lifted locals (U1 (x) U2)^dagger turns the
    // interaction into a XX + b YY + c ZZ.
    double k[3][3];
    for (int i = 0; i < 3; ++i)
        for (int j = 0; j < 3; ++j)
            k[i][j] = coef[i + 1][j + 1];
    double r1[3][3], r2[3][3], d[3];
    realSvd3(k, r1, d, r2);
    // Push the factors into SO(3); each flip negates the smallest
    // singular value, which lands the sign on c as the canonical form
    // wants (a >= b >= |c| holds since d is sorted descending).
    if (det3(r1) < 0.0) {
        for (int i = 0; i < 3; ++i)
            r1[i][2] = -r1[i][2];
        d[2] = -d[2];
    }
    if (det3(r2) < 0.0) {
        for (int i = 0; i < 3; ++i)
            r2[i][2] = -r2[i][2];
        d[2] = -d[2];
    }

    nf.coupling = {d[0], d[1], d[2]};
    nf.u1 = su2FromSo3(r1);
    nf.u2 = su2FromSo3(r2);
    return nf;
}

} // namespace reqisc::uarch
