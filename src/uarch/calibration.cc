#include "uarch/calibration.hh"

namespace reqisc::uarch
{

CalibrationPlan
planCalibration(const circuit::Circuit &c, const Coupling &cpl,
                double cluster_tol)
{
    CalibrationPlan plan;
    GateScheme scheme(cpl);
    for (const auto &g : c) {
        if (!g.is2Q())
            continue;
        const weyl::WeylCoord coord = g.weylCoord();
        bool found = false;
        for (auto &e : plan.entries) {
            if (e.coord.approxEqual(coord, cluster_tol)) {
                ++e.uses;
                found = true;
                break;
            }
        }
        if (found)
            continue;
        CalibrationEntry e;
        e.coord = coord;
        e.uses = 1;
        e.pulse = scheme.solveCoord(coord);
        if (!e.pulse.converged)
            ++plan.unsolved;
        plan.entries.push_back(std::move(e));
    }
    return plan;
}

} // namespace reqisc::uarch
