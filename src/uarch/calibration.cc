#include "uarch/calibration.hh"

#include <chrono>

namespace reqisc::uarch
{

CalibrationPlan
planCalibration(const circuit::Circuit &c, const Coupling &cpl,
                double cluster_tol, PulseMemo *memo)
{
    CalibrationPlan plan;
    GateScheme scheme(cpl);
    for (const auto &g : c) {
        if (!g.is2Q())
            continue;
        const weyl::WeylCoord coord = g.weylCoord();
        bool found = false;
        for (auto &e : plan.entries) {
            if (e.coord.approxEqual(coord, cluster_tol)) {
                ++e.uses;
                found = true;
                break;
            }
        }
        if (found)
            continue;
        CalibrationEntry e;
        e.coord = coord;
        e.uses = 1;
        if (memo && memo->lookup(coord, e.pulse)) {
            plan.entries.push_back(std::move(e));
            continue;
        }
        const auto t0 = std::chrono::steady_clock::now();
        e.pulse = scheme.solveCoord(coord);
        const double secs =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - t0)
                .count();
        if (memo)
            memo->store(coord, e.pulse, secs);
        if (!e.pulse.converged)
            ++plan.unsolved;
        plan.entries.push_back(std::move(e));
    }
    return plan;
}

} // namespace reqisc::uarch
