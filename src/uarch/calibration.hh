/**
 * @file
 * Calibration planning (Sections 6.5 / 6.5.1).
 *
 * A compiled program's calibration workload is proportional to its
 * number of *distinct* SU(4) classes: each class is pulse-solved once
 * (model-based parameter generation) and then characterized on
 * hardware. This module clusters a circuit's 2Q gates into classes,
 * solves each once with the genAshN scheme, and reports the total
 * cost under a simple linear model — the quantity Figs 13/14 track.
 */

#ifndef REQISC_UARCH_CALIBRATION_HH
#define REQISC_UARCH_CALIBRATION_HH

#include <vector>

#include "circuit/circuit.hh"
#include "uarch/genashn.hh"

namespace reqisc::uarch
{

/**
 * Memoization hook for pulse solves (implemented by
 * service::PulseCache; only the interface lives at this layer so the
 * dependency direction stays downward). An implementation is bound to
 * one coupling: callers must not share a memo across couplings. A
 * lookup may only return solutions the implementation can re-verify
 * for the requested coordinate (converged, coordinate within
 * tolerance), so a hit is behaviourally identical to re-solving.
 */
class PulseMemo
{
  public:
    virtual ~PulseMemo() = default;

    /** @return true on a verified hit; fills `sol`. */
    virtual bool lookup(const weyl::WeylCoord &coord,
                        PulseSolution &sol) = 0;

    /**
     * Record a freshly computed solution.
     *
     * @param solve_seconds wall time the solve took (per-class
     *        instrumentation)
     */
    virtual void store(const weyl::WeylCoord &coord,
                       const PulseSolution &sol,
                       double solve_seconds) = 0;
};

/** One calibration entry: a distinct SU(4) class and its pulse. */
struct CalibrationEntry
{
    weyl::WeylCoord coord;   //!< class representative
    int uses = 0;            //!< gates in the program using it
    PulseSolution pulse;     //!< model-generated parameters
};

/** A full calibration schedule for one program + coupling. */
struct CalibrationPlan
{
    std::vector<CalibrationEntry> entries;
    int unsolved = 0;        //!< classes the solver could not reach

    int distinctGates() const
    {
        return static_cast<int>(entries.size());
    }

    /**
     * Total calibration cost under the linear model of Section
     * 6.5.1: fixed characterization cost + per-class experiments.
     */
    double cost(double base_cost = 1.0,
                double per_gate_cost = 1.0) const
    {
        return base_cost + per_gate_cost * entries.size();
    }
};

/**
 * Build the calibration plan for a compiled {Can, U3} circuit on the
 * given coupling. Gates are clustered by Weyl coordinate with the
 * given tolerance; each class is solved once. With a `memo`, classes
 * already pulse-solved elsewhere (e.g. by another circuit of a batch
 * going through the same service cache) are reused instead of
 * re-solved — the clustering itself stays per-circuit, so the
 * entry list is deterministic regardless of cache state.
 */
CalibrationPlan planCalibration(const circuit::Circuit &c,
                                const Coupling &cpl,
                                double cluster_tol = 1e-6,
                                PulseMemo *memo = nullptr);

} // namespace reqisc::uarch

#endif // REQISC_UARCH_CALIBRATION_HH
