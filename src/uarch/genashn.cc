#include "uarch/genashn.hh"

#include <algorithm>
#include <array>
#include <cmath>
#include <numbers>

#include "qmath/expm.hh"
#include "qmath/kernels.hh"
#include "qmath/optimize.hh"

namespace reqisc::uarch
{

namespace
{

constexpr double kPi = std::numbers::pi;

using qmath::Complex;
using qmath::Matrix;

/** Diagonal signs of the two-qubit Paulis in the magic basis. */
struct Signs
{
    std::array<double, 4> xx, yy, zz;
};

const Signs &
magicSigns()
{
    static const Signs s = [] {
        Signs out;
        const Matrix &m = weyl::magicBasis();
        const Matrix dx = m.dagger() * qmath::pauliXX() * m;
        const Matrix dy = m.dagger() * qmath::pauliYY() * m;
        const Matrix dz = m.dagger() * qmath::pauliZZ() * m;
        for (int i = 0; i < 4; ++i) {
            out.xx[i] = dx(i, i).real();
            out.yy[i] = dy(i, i).real();
            out.zz[i] = dz(i, i).real();
        }
        return out;
    }();
    return s;
}

/**
 * Trace of V = U (YY) for a gate with Weyl coordinate (x, y, z):
 * the analytically known target spectrum sum (Appendix A.5).
 */
Complex
targetTrace(const weyl::WeylCoord &c)
{
    const Signs &sg = magicSigns();
    Complex t(0.0, 0.0);
    for (int k = 0; k < 4; ++k) {
        const double phase =
            c.x * sg.xx[k] + c.y * sg.yy[k] + c.z * sg.zz[k];
        t += sg.yy[k] * std::exp(Complex(0.0, -phase));
    }
    return t;
}

/** Smallest root of (coef) sin(S tau) - t S = 0 with S >= lo. */
bool
smallestSincRoot(double coef, double tau, double t, double lo,
                 double &root)
{
    auto f = [&](double s) { return coef * std::sin(s * tau) - t * s; };
    if (coef < 1e-13) {
        // Degenerate coupling direction: feasible only for t ~ 0.
        if (std::abs(t) < 1e-9) {
            root = std::max(lo, 0.0);
            return true;
        }
        return false;
    }
    const double f_lo = f(lo);
    if (std::abs(f_lo) < 1e-13 * std::max(1.0, coef)) {
        root = lo;
        return true;
    }
    // March in small steps to bracket the first sign change.
    const double span = 6.0 * kPi / std::max(tau, 1e-9);
    const double step = span / 4000.0;
    double prev = lo, fprev = f_lo;
    for (double s = lo + step; s <= lo + span; s += step) {
        const double fs = f(s);
        if (fprev == 0.0) {
            root = prev;
            return true;
        }
        if (fprev * fs <= 0.0) {
            root = qmath::bisect(f, prev, s, 1e-15);
            return true;
        }
        prev = s;
        fprev = fs;
    }
    return false;
}

} // namespace

double
PulseSolution::amplitudePenalty() const
{
    return std::abs(ampA1()) + std::abs(ampA2()) +
           2.0 * std::abs(delta);
}

GateScheme::GateScheme(const Coupling &cpl) : cpl_(cpl)
{
    assert(cpl.isCanonical(1e-9));
}

Matrix
GateScheme::totalHamiltonian(const PulseSolution &s) const
{
    Matrix h = cpl_.hamiltonian();
    const Matrix &id = qmath::pauliI();
    h += kron(qmath::pauliX(), id) *
         Complex(s.omega1 + s.omega2, 0.0);
    h += kron(id, qmath::pauliX()) *
         Complex(s.omega1 - s.omega2, 0.0);
    h += (kron(qmath::pauliZ(), id) + kron(id, qmath::pauliZ())) *
         Complex(s.delta, 0.0);
    return h;
}

Matrix
GateScheme::evolution(const PulseSolution &s) const
{
    return qmath::expim(totalHamiltonian(s), s.tau);
}

bool
GateScheme::solveNd(double tau, const weyl::WeylCoord &eff,
                    PulseSolution &sol) const
{
    const double b = cpl_.b, c = cpl_.c;
    double s1 = 0.0, s2 = 0.0;
    if (!smallestSincRoot(b - c, tau, std::sin(eff.y - eff.z),
                          std::max(0.0, b - c), s1))
        return false;
    if (!smallestSincRoot(b + c, tau, std::sin(eff.y + eff.z),
                          std::max(0.0, b + c), s2))
        return false;
    const double w1sq = 0.25 * (s1 * s1 - (b - c) * (b - c));
    const double w2sq = 0.25 * (s2 * s2 - (b + c) * (b + c));
    if (w1sq < -1e-9 || w2sq < -1e-9)
        return false;
    sol.omega1 = std::sqrt(std::max(0.0, w1sq));
    sol.omega2 = std::sqrt(std::max(0.0, w2sq));
    sol.delta = 0.0;
    sol.tau = tau;
    return true;
}

bool
GateScheme::solveEa(double tau, const weyl::WeylCoord &eff, bool plus,
                    PulseSolution &sol) const
{
    const Matrix hc = cpl_.hamiltonian();
    const Matrix &id = qmath::pauliI();
    const Matrix xi = kron(qmath::pauliX(), id);
    const Matrix ix = kron(id, qmath::pauliX());
    const Matrix zz_drive =
        kron(qmath::pauliZ(), id) + kron(id, qmath::pauliZ());
    const Matrix xdrive = plus ? (xi - ix) : (xi + ix);
    const Matrix yy = qmath::pauliYY();

    const Complex t_target = targetTrace(eff);

    // Solver-loop scratch: the Hamiltonian is assembled in place
    // (axpy) and the trace taken without forming expim(h) * yy, so
    // each Newton residual evaluation allocates nothing new.
    Matrix h;
    auto hamAt = [&](double omega, double delta) -> const Matrix & {
        h = hc;
        qmath::kernels::axpyInPlace(h, Complex(omega, 0.0), xdrive);
        qmath::kernels::axpyInPlace(h, Complex(delta, 0.0), zz_drive);
        return h;
    };
    auto traceOf = [&](double omega, double delta) {
        return qmath::kernels::mulTrace(
            qmath::expim(hamAt(omega, delta), tau), yy);
    };
    auto residual = [&](const std::vector<double> &p) {
        const Complex d = traceOf(p[0], p[1]) - t_target;
        return std::vector<double>{d.real(), d.imag()};
    };

    const double g = std::max(cpl_.strength(), 1e-12);
    // Grid of starts, ordered by increasing drive magnitude so the
    // first verified solution is also the physically cheapest.
    std::vector<std::pair<double, double>> starts;
    for (double w : {0.0, 0.3, 0.7, 1.2, 2.0, 3.2, 5.0})
        for (double d : {0.0, 0.3, -0.3, 0.8, -0.8, 1.6, -1.6, 3.0,
                         -3.0})
            starts.push_back({w * g, d * g});
    std::stable_sort(starts.begin(), starts.end(),
                     [](const auto &p, const auto &q) {
                         return std::abs(p.first) + std::abs(p.second) <
                                std::abs(q.first) + std::abs(q.second);
                     });

    PulseSolution best;
    bool found = false;
    for (const auto &[w0, d0] : starts) {
        qmath::RootResult r =
            qmath::newtonSolve(residual, {w0, d0}, 1e-12, 60);
        if (!r.converged)
            continue;
        PulseSolution cand = sol;
        cand.tau = tau;
        if (plus) {
            cand.omega1 = 0.0;
            cand.omega2 = r.x[0];
        } else {
            cand.omega1 = r.x[0];
            cand.omega2 = 0.0;
        }
        cand.delta = r.x[1];
        // Verify: the produced evolution must have the effective
        // coordinates (trace aliasing can admit spurious roots).
        // Near chamber corners the coordinate map has square-root
        // sensitivity, so accept a looser bound here and polish
        // below.
        const Matrix ev = qmath::expim(hamAt(r.x[0], r.x[1]), tau);
        weyl::WeylCoord got = weyl::weylCoordinate(ev);
        weyl::WeylCoord effc = eff;
        // Compare in canonicalized form: the effective coordinate may
        // sit outside the chamber (tau2 branch mirrors it back).
        weyl::WeylCoord effcan =
            weyl::weylCoordinate(weyl::canonicalGate(effc));
        if (got.distance(effcan) > 3e-5)
            continue;
        if (!found ||
            cand.amplitudePenalty() < best.amplitudePenalty()) {
            best = cand;
            found = true;
        }
        if (found && best.amplitudePenalty() <= 1e-9)
            break;
        // The grid is ordered by magnitude; the first couple of
        // verified solutions are near-minimal. Stop after a margin.
        if (found && cand.amplitudePenalty() >
                         best.amplitudePenalty() * 3.0 + 1e-9)
            break;
    }
    if (!found)
        return false;
    // Pattern-search polish on the coordinate distance: robust to
    // the non-smooth chamber folds that defeat Newton at corners.
    {
        weyl::WeylCoord effcan =
            weyl::weylCoordinate(weyl::canonicalGate(eff));
        auto coordDist = [&](double w, double d) {
            const Matrix ev = qmath::expim(hamAt(w, d), tau);
            return weyl::weylCoordinate(ev).distance(effcan);
        };
        double w = plus ? best.omega2 : best.omega1;
        double d = best.delta;
        double step = 1e-5;
        double cur = coordDist(w, d);
        for (int it = 0; it < 120 && step > 1e-14; ++it) {
            double bw = w, bd = d, bc = cur;
            for (int dir = 0; dir < 4; ++dir) {
                const double cw =
                    w + (dir == 0 ? step : dir == 1 ? -step : 0.0);
                const double cd =
                    d + (dir == 2 ? step : dir == 3 ? -step : 0.0);
                const double v = coordDist(cw, cd);
                if (v < bc) {
                    bc = v;
                    bw = cw;
                    bd = cd;
                }
            }
            if (bc < cur) {
                w = bw;
                d = bd;
                cur = bc;
            } else {
                step *= 0.5;
            }
            if (cur < 1e-10)
                break;
        }
        if (plus)
            best.omega2 = w;
        else
            best.omega1 = w;
        best.delta = d;
    }
    sol.omega1 = best.omega1;
    sol.omega2 = best.omega2;
    sol.delta = best.delta;
    sol.tau = tau;
    return true;
}

PulseSolution
GateScheme::solveCoord(const weyl::WeylCoord &target) const
{
    PulseSolution sol;
    sol.target = target;
    DurationInfo info = durationInfo(cpl_, target);
    sol.scheme = info.scheme;
    sol.tau = info.tau;
    sol.effective = info.effective;

    if (info.tau < 1e-12) {
        // Identity-class gate: nothing to do.
        sol.converged = true;
        sol.coordError = 0.0;
        return sol;
    }

    bool ok = false;
    switch (info.scheme) {
      case SubScheme::ND:
        ok = solveNd(info.tau, info.effective, sol);
        break;
      case SubScheme::EAPlus:
        ok = solveEa(info.tau, info.effective, true, sol);
        break;
      case SubScheme::EAMinus:
        ok = solveEa(info.tau, info.effective, false, sol);
        break;
    }
    if (!ok) {
        // Cross-scheme fallback: numerical ties between constraints
        // can put the point on a subscheme boundary; try the others.
        for (SubScheme s : {SubScheme::ND, SubScheme::EAPlus,
                            SubScheme::EAMinus}) {
            if (s == info.scheme)
                continue;
            bool got = false;
            switch (s) {
              case SubScheme::ND:
                got = solveNd(info.tau, info.effective, sol);
                break;
              case SubScheme::EAPlus:
                got = solveEa(info.tau, info.effective, true, sol);
                break;
              case SubScheme::EAMinus:
                got = solveEa(info.tau, info.effective, false, sol);
                break;
            }
            if (got) {
                sol.scheme = s;
                ok = true;
                break;
            }
        }
    }
    if (!ok)
        return sol;

    // Final verification against the canonicalized effective coords.
    const Matrix ev = evolution(sol);
    weyl::WeylCoord got = weyl::weylCoordinate(ev);
    weyl::WeylCoord effcan =
        weyl::weylCoordinate(weyl::canonicalGate(sol.effective));
    sol.coordError = got.distance(effcan);
    sol.converged = sol.coordError < 1e-6;
    return sol;
}

PulseSolution
GateScheme::solve(const Matrix &u) const
{
    weyl::KakDecomposition k = weyl::kakDecompose(u);
    PulseSolution sol = solveCoord(k.coord);
    if (!sol.converged)
        return sol;
    const Matrix ev = evolution(sol);
    // u = phase (a1 x a2) ev (b1 x b2): conjugate the decompositions.
    weyl::KakDecomposition ke = weyl::kakDecompose(ev);
    assert(ke.coord.approxEqual(k.coord, 1e-6));
    const Complex scale = k.phase / ke.phase;
    sol.a1 = k.a1 * ke.a1.dagger() * scale;
    sol.a2 = k.a2 * ke.a2.dagger();
    sol.b1 = ke.b1.dagger() * k.b1;
    sol.b2 = ke.b2.dagger() * k.b2;
    sol.hasCorrections = true;
    return sol;
}

bool
needsMirror(const weyl::WeylCoord &c, double r)
{
    return c.norm1() <= r;
}

ArbitrarySolution
solveArbitrary(const Matrix &h, const Matrix &u)
{
    ArbitrarySolution out;
    out.frame = normalForm(h);
    GateScheme scheme(out.frame.coupling);

    // Solve in the canonical frame for the target's coordinates.
    out.canonical = scheme.solve(u);
    if (!out.canonical.converged)
        return out;

    // Physical drives: H_i = U_i H''_i U_i^dagger - H'_i.
    const Matrix &x = qmath::pauliX();
    const Matrix &z = qmath::pauliZ();
    const Matrix h1pp =
        x * Complex(out.canonical.omega1 + out.canonical.omega2, 0.0) +
        z * Complex(out.canonical.delta, 0.0);
    const Matrix h2pp =
        x * Complex(out.canonical.omega1 - out.canonical.omega2, 0.0) +
        z * Complex(out.canonical.delta, 0.0);
    out.h1 = out.frame.u1 * h1pp * out.frame.u1.dagger() -
             out.frame.h1local;
    out.h2 = out.frame.u2 * h2pp * out.frame.u2.dagger() -
             out.frame.h2local;

    // Physical evolution and corrections.
    Matrix htot = h + kron(out.h1, Matrix::identity(2)) +
                  kron(Matrix::identity(2), out.h2);
    const Matrix ev = qmath::expim(htot, out.canonical.tau);
    weyl::KakDecomposition ku = weyl::kakDecompose(u);
    weyl::KakDecomposition ke = weyl::kakDecompose(ev);
    if (!ku.coord.approxEqual(ke.coord, 1e-6))
        return out;
    const Complex scale = ku.phase / ke.phase;
    out.a1 = ku.a1 * ke.a1.dagger() * scale;
    out.a2 = ku.a2 * ke.a2.dagger();
    out.b1 = ke.b1.dagger() * ku.b1;
    out.b2 = ke.b2.dagger() * ku.b2;
    out.converged = true;
    return out;
}

} // namespace reqisc::uarch
