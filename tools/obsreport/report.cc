#include "obsreport/report.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>

namespace reqisc::tools
{

namespace
{

/** Compact finite-number formatting for JSON and tables. %.9g keeps
 *  full attribution precision while staying diff-friendly; JSON has
 *  no NaN/Inf literal, so nonfinite values (which the pipeline
 *  filters before rendering) degrade to 0 instead of corrupting the
 *  document. */
std::string fmtNum(double v)
{
    if (!std::isfinite(v))
        v = 0.0;
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return buf;
}

void flattenScalars(const backend::JsonValue &v,
                    const std::string &prefix, RunData &run)
{
    if (v.isNumber())
    {
        run.scalars[prefix] = v.number;
        return;
    }
    if (!v.isObject())
        return;  // arrays/strings/bools carry no diffable scalar
    for (const auto &[key, child] : v.object)
        flattenScalars(child,
                       prefix.empty() ? key : prefix + "." + key,
                       run);
}

/** Sum the "passes" array of one reqisc-compile circuit entry. */
void addCircuitPasses(const backend::JsonValue &passes, RunData &run)
{
    for (const backend::JsonValue &p : passes.array)
    {
        if (!p.isObject())
            continue;
        const backend::JsonValue *name = p.find("name");
        const backend::JsonValue *secs = p.find("seconds");
        if (name && name->isString() && secs && secs->isNumber())
            run.passSeconds[name->str] += secs->number;
    }
}

} // namespace

void ingestBenchJson(RunData &run, const std::string &text,
                     const std::string &context)
{
    const backend::JsonValue doc = backend::parseJson(text, context);
    if (!doc.isObject())
        throw backend::JsonError(context +
                                 ": expected a top-level object");

    const backend::JsonValue *passes = doc.find("passes");
    const backend::JsonValue *circuits = doc.find("circuits");
    if (passes && passes->isObject())
    {
        // bench_service shape: "passes": {"name": {"seconds": s,
        // "share": f}, ...}.
        for (const auto &[name, entry] : passes->object)
        {
            const backend::JsonValue *secs =
                entry.isObject() ? entry.find("seconds") : nullptr;
            if (secs && secs->isNumber())
                run.passSeconds[name] += secs->number;
        }
    }
    else if (circuits && circuits->isArray())
    {
        // reqisc-compile shape: per-circuit pass lists, summed.
        for (const backend::JsonValue &c : circuits->array)
        {
            if (!c.isObject())
                continue;
            const backend::JsonValue *cp = c.find("passes");
            if (cp && cp->isArray())
                addCircuitPasses(*cp, run);
            // Per-circuit totals are useful scalars; arrays are
            // otherwise skipped by the flattener below.
            const backend::JsonValue *cname = c.find("name");
            const backend::JsonValue *csecs = c.find("seconds");
            if (cname && cname->isString() && csecs &&
                csecs->isNumber())
                run.scalars["circuits." + cname->str + ".seconds"] =
                    csecs->number;
        }
    }
    else
    {
        throw backend::JsonError(
            context + ": neither a bench_service (\"passes\" "
                      "object) nor a reqisc-compile (\"circuits\" "
                      "array) --json document");
    }

    flattenScalars(doc, "", run);
}

void ingestPromText(RunData &run, const std::string &text)
{
    // Intermediate cumulative-bucket state per histogram family.
    struct HistBuild
    {
        std::vector<std::pair<double, std::uint64_t>> cum;
        std::uint64_t count = 0;
        double sum = 0.0;
        bool sawInf = false;
    };
    std::map<std::string, HistBuild> hists;
    std::set<std::string> histNames;

    std::size_t pos = 0;
    while (pos < text.size())
    {
        std::size_t eol = text.find('\n', pos);
        if (eol == std::string::npos)
            eol = text.size();
        const std::string line = text.substr(pos, eol - pos);
        pos = eol + 1;
        if (line.empty())
            continue;
        if (line[0] == '#')
        {
            // Only "# TYPE <name> histogram" matters: it tells the
            // _bucket/_sum/_count suffixes apart from plain metrics
            // that happen to end the same way.
            static const std::string kType = "# TYPE ";
            if (line.rfind(kType, 0) == 0)
            {
                const std::string rest = line.substr(kType.size());
                const std::size_t sp = rest.find(' ');
                if (sp != std::string::npos &&
                    rest.substr(sp + 1) == "histogram")
                    histNames.insert(rest.substr(0, sp));
            }
            continue;
        }
        const std::size_t sp = line.rfind(' ');
        if (sp == std::string::npos || sp + 1 >= line.size())
            continue;
        const std::string series = line.substr(0, sp);
        char *end = nullptr;
        const double value =
            std::strtod(line.c_str() + sp + 1, &end);
        if (end == line.c_str() + sp + 1)
            continue;  // not a number; skip the line

        // _bucket{le="BOUND"} of a declared histogram.
        const std::size_t brace = series.find("_bucket{le=\"");
        if (brace != std::string::npos &&
            histNames.count(series.substr(0, brace)))
        {
            HistBuild &h = hists[series.substr(0, brace)];
            const std::size_t lo = brace + 12;
            const std::size_t hi = series.find('"', lo);
            if (hi == std::string::npos)
                continue;
            const std::string bound = series.substr(lo, hi - lo);
            if (bound == "+Inf")
                h.sawInf = true;  // total lands via _count below
            else
                h.cum.emplace_back(
                    std::strtod(bound.c_str(), nullptr),
                    static_cast<std::uint64_t>(value));
            continue;
        }
        const auto suffixed = [&](const char *suffix,
                                  std::string &family) {
            const std::size_t n = std::string(suffix).size();
            if (series.size() <= n ||
                series.compare(series.size() - n, n, suffix) != 0)
                return false;
            family = series.substr(0, series.size() - n);
            return histNames.count(family) != 0;
        };
        std::string family;
        if (suffixed("_sum", family))
        {
            hists[family].sum = value;
            continue;
        }
        if (suffixed("_count", family))
        {
            hists[family].count =
                static_cast<std::uint64_t>(value);
            continue;
        }
        run.scalars[series] = value;
    }

    for (auto &[name, h] : hists)
    {
        std::sort(h.cum.begin(), h.cum.end());
        obs::HistogramSnapshot snap;
        snap.name = name;
        snap.count = h.count;
        snap.sum = h.sum;
        std::uint64_t prev = 0;
        for (const auto &[bound, cum] : h.cum)
        {
            snap.bounds.push_back(bound);
            snap.buckets.push_back(cum >= prev ? cum - prev : 0);
            prev = cum;
        }
        // Final +Inf bucket: whatever the finite bounds missed.
        snap.buckets.push_back(h.count >= prev ? h.count - prev
                                               : 0);
        run.histograms[name] = std::move(snap);
    }
}

void ingestTraceJson(RunData &run, const std::string &text,
                     const std::string &context)
{
    const backend::JsonValue doc = backend::parseJson(text, context);
    const backend::JsonValue *events =
        doc.isObject() ? doc.find("traceEvents") : nullptr;
    if (!events || !events->isArray())
        throw backend::JsonError(
            context + ": not a Chrome trace (no \"traceEvents\" "
                      "array)");
    for (const backend::JsonValue &ev : events->array)
    {
        if (!ev.isObject())
            continue;
        const backend::JsonValue *name = ev.find("name");
        const backend::JsonValue *dur = ev.find("dur");
        if (name && name->isString() && dur && dur->isNumber())
            run.passSeconds[name->str] += dur->number * 1e-6;
    }
}

Report compare(const RunData &base, const RunData &cand)
{
    Report r;
    std::set<std::string> passNames;
    for (const auto &[name, secs] : base.passSeconds)
    {
        r.totalBaseSeconds += secs;
        passNames.insert(name);
    }
    for (const auto &[name, secs] : cand.passSeconds)
    {
        r.totalCandSeconds += secs;
        passNames.insert(name);
    }
    r.totalDeltaSeconds = r.totalCandSeconds - r.totalBaseSeconds;

    for (const std::string &name : passNames)
    {
        PassDelta d;
        d.pass = name;
        const auto bi = base.passSeconds.find(name);
        const auto ci = cand.passSeconds.find(name);
        d.baseSeconds = bi != base.passSeconds.end() ? bi->second
                                                     : 0.0;
        d.candSeconds = ci != cand.passSeconds.end() ? ci->second
                                                     : 0.0;
        d.deltaSeconds = d.candSeconds - d.baseSeconds;
        d.ratio = d.baseSeconds > 0.0
                      ? d.candSeconds / d.baseSeconds
                      : 0.0;
        d.shareOfTotalDelta =
            r.totalDeltaSeconds != 0.0
                ? d.deltaSeconds / std::abs(r.totalDeltaSeconds)
                : 0.0;
        r.passes.push_back(std::move(d));
    }
    std::sort(r.passes.begin(), r.passes.end(),
              [](const PassDelta &a, const PassDelta &b) {
                  if (a.deltaSeconds != b.deltaSeconds)
                      return a.deltaSeconds > b.deltaSeconds;
                  return a.pass < b.pass;
              });
    for (const PassDelta &d : r.passes)
        if (d.deltaSeconds > 0.0)
            r.topRegressors.push_back(d.pass);

    static const double kQs[] = {0.5, 0.95, 0.99};
    for (const auto &[name, bh] : base.histograms)
    {
        const auto ci = cand.histograms.find(name);
        if (ci == cand.histograms.end())
            continue;
        for (const double q : kQs)
        {
            const double bq = bh.quantile(q);
            const double cq = ci->second.quantile(q);
            // An empty histogram has NaN quantiles (no samples) —
            // skipping beats reporting a bogus shift from/to zero.
            if (std::isnan(bq) || std::isnan(cq))
                continue;
            r.quantiles.push_back(
                QuantileShift{name, q, bq, cq, cq - bq});
        }
    }

    for (const auto &[key, bv] : base.scalars)
    {
        const auto ci = cand.scalars.find(key);
        if (ci != cand.scalars.end() && ci->second != bv)
            r.scalars.push_back(
                ScalarDelta{key, bv, ci->second,
                            ci->second - bv});
    }
    return r;
}

std::string reportJson(const Report &r)
{
    std::string out;
    out.reserve(1024 + r.passes.size() * 160);
    out += "{\n  \"obsreport\": {\"version\": 1},\n";
    out += "  \"total\": {\"baseSeconds\": " +
           fmtNum(r.totalBaseSeconds) +
           ", \"candSeconds\": " + fmtNum(r.totalCandSeconds) +
           ", \"deltaSeconds\": " + fmtNum(r.totalDeltaSeconds) +
           "},\n";
    out += "  \"passes\": [";
    for (std::size_t i = 0; i < r.passes.size(); ++i)
    {
        const PassDelta &d = r.passes[i];
        out += i ? ",\n    " : "\n    ";
        out += "{\"pass\": \"" + backend::jsonEscape(d.pass) +
               "\", \"baseSeconds\": " + fmtNum(d.baseSeconds) +
               ", \"candSeconds\": " + fmtNum(d.candSeconds) +
               ", \"deltaSeconds\": " + fmtNum(d.deltaSeconds) +
               ", \"ratio\": " + fmtNum(d.ratio) +
               ", \"shareOfTotalDelta\": " +
               fmtNum(d.shareOfTotalDelta) + "}";
    }
    out += "\n  ],\n  \"topRegressors\": [";
    for (std::size_t i = 0; i < r.topRegressors.size(); ++i)
    {
        if (i)
            out += ", ";
        out += '"';
        out += backend::jsonEscape(r.topRegressors[i]);
        out += '"';
    }
    out += "],\n  \"quantiles\": [";
    for (std::size_t i = 0; i < r.quantiles.size(); ++i)
    {
        const QuantileShift &qd = r.quantiles[i];
        out += i ? ",\n    " : "\n    ";
        out += "{\"metric\": \"" + backend::jsonEscape(qd.metric) +
               "\", \"q\": " + fmtNum(qd.q) +
               ", \"base\": " + fmtNum(qd.base) +
               ", \"cand\": " + fmtNum(qd.cand) +
               ", \"delta\": " + fmtNum(qd.delta) + "}";
    }
    out += r.quantiles.empty() ? "],\n" : "\n  ],\n";
    out += "  \"scalars\": [";
    for (std::size_t i = 0; i < r.scalars.size(); ++i)
    {
        const ScalarDelta &sd = r.scalars[i];
        out += i ? ",\n    " : "\n    ";
        out += "{\"key\": \"" + backend::jsonEscape(sd.key) +
               "\", \"base\": " + fmtNum(sd.base) +
               ", \"cand\": " + fmtNum(sd.cand) +
               ", \"delta\": " + fmtNum(sd.delta) + "}";
    }
    out += r.scalars.empty() ? "]\n}\n" : "\n  ]\n}\n";
    return out;
}

std::string reportText(const Report &r, std::size_t topN)
{
    std::string out;
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "total in-pass seconds: base %.6f  cand %.6f  "
                  "delta %+.6f\n\n",
                  r.totalBaseSeconds, r.totalCandSeconds,
                  r.totalDeltaSeconds);
    out += buf;
    out += "pass attribution (worst regressor first):\n";
    std::snprintf(buf, sizeof(buf), "  %-24s %10s %10s %10s %8s %7s\n",
                  "pass", "base s", "cand s", "delta s", "ratio",
                  "share");
    out += buf;
    std::size_t shown = 0;
    for (const PassDelta &d : r.passes)
    {
        if (shown++ >= topN)
            break;
        std::snprintf(buf, sizeof(buf),
                      "  %-24s %10.6f %10.6f %+10.6f %8.3f %+6.1f%%\n",
                      d.pass.c_str(), d.baseSeconds, d.candSeconds,
                      d.deltaSeconds, d.ratio,
                      d.shareOfTotalDelta * 100.0);
        out += buf;
    }
    if (r.passes.size() > topN)
    {
        std::snprintf(buf, sizeof(buf),
                      "  ... %zu more passes (rerun with --top)\n",
                      r.passes.size() - topN);
        out += buf;
    }
    if (!r.topRegressors.empty())
    {
        out += "\ntop regressors:";
        std::size_t n = 0;
        for (const std::string &name : r.topRegressors)
        {
            if (n++ >= topN)
                break;
            out += " " + name;
        }
        out += "\n";
    }
    if (!r.quantiles.empty())
    {
        out += "\nhistogram quantile shifts:\n";
        for (const QuantileShift &q : r.quantiles)
        {
            std::snprintf(buf, sizeof(buf),
                          "  %-40s p%-4.3g %12.6g -> %-12.6g "
                          "(%+.6g)\n",
                          q.metric.c_str(), q.q * 100.0, q.base,
                          q.cand, q.delta);
            out += buf;
        }
    }
    if (!r.scalars.empty())
    {
        out += "\nchanged scalars:\n";
        for (const ScalarDelta &s : r.scalars)
        {
            std::snprintf(buf, sizeof(buf),
                          "  %-40s %12.6g -> %-12.6g (%+.6g)\n",
                          s.key.c_str(), s.base, s.cand, s.delta);
            out += buf;
        }
    }
    return out;
}

int checkBaselines(const backend::JsonValue &baselines,
                   const RunData &cand, std::string &out)
{
    const backend::JsonValue *metrics =
        baselines.isObject() ? baselines.find("metrics") : nullptr;
    if (!metrics || !metrics->isArray())
        throw backend::JsonError(
            "baselines: expected an object with a \"metrics\" "
            "array");

    int failures = 0;
    for (std::size_t i = 0; i < metrics->array.size(); ++i)
    {
        const backend::JsonValue &m = metrics->array[i];
        const backend::JsonValue *nameV =
            m.isObject() ? m.find("name") : nullptr;
        const std::string label =
            nameV && nameV->isString()
                ? nameV->str
                : "metric[" + std::to_string(i) + "]";
        const backend::JsonValue *keyV =
            m.isObject() ? m.find("key") : nullptr;
        const backend::JsonValue *baseV =
            m.isObject() ? m.find("baseline") : nullptr;
        if (!keyV || !keyV->isString() || !baseV ||
            !baseV->isNumber())
        {
            out += "FAIL  " + label +
                   ": baselines entry needs a string \"key\" and "
                   "numeric \"baseline\"\n";
            ++failures;
            continue;
        }
        const auto ci = cand.scalars.find(keyV->str);
        if (ci == cand.scalars.end())
        {
            // Unlike check_baselines.py (which sees every bench's
            // output at once), obsreport usually ingests one run —
            // keys from other benches are expected to be absent.
            out += "SKIP  " + label + ": key '" + keyV->str +
                   "' not present in this run\n";
            continue;
        }
        double maxRegression = 2.0;
        const backend::JsonValue *mr = m.find("maxRegression");
        if (mr)
        {
            if (!mr->isNumber() || mr->number <= 0.0)
            {
                out += "FAIL  " + label +
                       ": maxRegression must be a positive "
                       "number\n";
                ++failures;
                continue;
            }
            maxRegression = mr->number;
        }
        const backend::JsonValue *rp = m.find("requirePositive");
        const bool requirePositive =
            rp && rp->kind == backend::JsonValue::Kind::Bool &&
            rp->boolean;
        const double value = ci->second;
        const double floor = baseV->number / maxRegression;
        if (requirePositive && value <= 0.0)
        {
            out += "FAIL  " + label + ": sign flip: " +
                   fmtNum(value) + " <= 0 (baseline " +
                   fmtNum(baseV->number) + ")\n";
            ++failures;
        }
        else if (value < floor)
        {
            out += "FAIL  " + label + ": gross regression: " +
                   fmtNum(value) + " < " + fmtNum(floor) +
                   " (= baseline " + fmtNum(baseV->number) + " / " +
                   fmtNum(maxRegression) + ")\n";
            ++failures;
        }
        else
        {
            out += "OK    " + label + ": " + fmtNum(value) +
                   " (baseline " + fmtNum(baseV->number) +
                   ", floor " + fmtNum(floor) + ")\n";
        }
    }
    return failures;
}

} // namespace reqisc::tools
