/**
 * @file
 * Perf-regression attribution between two observability captures.
 *
 * obsreport ingests what an instrumented run leaves behind — the
 * --json summary of reqisc-compile or bench_service, a Prometheus
 * metrics snapshot (--metrics-out), a Chrome trace (--trace-out) —
 * for a BASE run and a CANDIDATE run, and answers "where did the
 * time go": per-pass absolute and share-of-total-delta attribution,
 * a top-regressors ranking, histogram quantile shifts, and flat
 * scalar diffs. A machine-readable mode lets CI diff the candidate
 * against bench/baselines.json with the exact check_baselines.py
 * rule (gross regression / sign flip), so the attribution report
 * and the guard agree on what counts as a regression.
 *
 * Everything here is pure: parse into RunData, compare() into a
 * Report, render. The CLI in obsreport.cc only does file I/O and
 * flag plumbing, which keeps the whole pipeline unit-testable on
 * canned inputs (tests/test_obsreport.cc).
 */

#ifndef REQISC_TOOLS_OBSREPORT_REPORT_HH
#define REQISC_TOOLS_OBSREPORT_REPORT_HH

#include <map>
#include <string>
#include <vector>

#include "backend/json.hh"
#include "obs/metrics.hh"

namespace reqisc::tools
{

/**
 * Everything obsreport knows about one run, merged from any subset
 * of the supported input files. Maps keep pass/metric iteration
 * deterministic regardless of input order.
 */
struct RunData
{
    /** Per-pass wall seconds. From a bench_service --json "passes"
     *  object, or aggregated over circuits[].passes[] of a
     *  reqisc-compile --json document, or summed span durations of
     *  a Chrome trace (by span name). */
    std::map<std::string, double> passSeconds;

    /** Flat numeric scalars under dotted keys ("memoSpeedup",
     *  "circuits.bell.seconds", counter/gauge values from a
     *  Prometheus snapshot). Arrays are not flattened — per-element
     *  keys would be meaningless to diff. */
    std::map<std::string, double> scalars;

    /** Histograms rebuilt from a Prometheus snapshot (cumulative
     *  buckets de-accumulated) for quantile-shift attribution. */
    std::map<std::string, obs::HistogramSnapshot> histograms;
};

/**
 * Ingest a --json document from either producer. The shape is
 * sniffed: a top-level "passes" object means bench_service, a
 * top-level "circuits" array means reqisc-compile (whose per-pass
 * seconds are summed across circuits). Top-level and nested numeric
 * scalars are flattened under dotted keys either way. Throws
 * backend::JsonError (with `context` in the message) on a document
 * that does not parse or matches neither shape.
 */
void ingestBenchJson(RunData &run, const std::string &text,
                     const std::string &context);

/**
 * Ingest a Prometheus text snapshot (the --metrics-out format).
 * Counters and gauges land in scalars; _bucket/_sum/_count series
 * are reassembled into HistogramSnapshots (the le="+Inf" cumulative
 * count is the total; per-bucket counts are recovered by
 * differencing). Unparseable lines are skipped — the format is
 * line-oriented and a partial snapshot is still useful.
 */
void ingestPromText(RunData &run, const std::string &text);

/**
 * Ingest a Chrome trace (the --trace-out format): sums the "dur"
 * field (microseconds) by event name into passSeconds, so a trace
 * can stand in for a missing --json summary. Throws
 * backend::JsonError on malformed JSON.
 */
void ingestTraceJson(RunData &run, const std::string &text,
                     const std::string &context);

/** Attribution of one pass's contribution to the total delta. */
struct PassDelta
{
    std::string pass;
    double baseSeconds = 0.0;
    double candSeconds = 0.0;
    double deltaSeconds = 0.0;  //!< cand - base
    /** cand/base; 0 when base is 0 (new pass). */
    double ratio = 0.0;
    /** deltaSeconds / |total delta|; signed, so improvements that
     *  mask a regression show up as negative shares. 0 when the
     *  total delta is 0. */
    double shareOfTotalDelta = 0.0;
};

/** One histogram quantile compared across runs. */
struct QuantileShift
{
    std::string metric;
    double q = 0.0;
    double base = 0.0;
    double cand = 0.0;
    double delta = 0.0;
};

/** One flat scalar compared across runs. */
struct ScalarDelta
{
    std::string key;
    double base = 0.0;
    double cand = 0.0;
    double delta = 0.0;
};

struct Report
{
    double totalBaseSeconds = 0.0;
    double totalCandSeconds = 0.0;
    double totalDeltaSeconds = 0.0;
    /** Sorted by deltaSeconds descending (worst regressor first). */
    std::vector<PassDelta> passes;
    /** Pass names with deltaSeconds > 0, worst first — the ranking
     *  the CI attribution smoke pins. */
    std::vector<std::string> topRegressors;
    /** q in {0.5, 0.95, 0.99} for every histogram present in both
     *  runs with samples on both sides (an empty histogram has NaN
     *  quantiles — see HistogramSnapshot::quantile — and is skipped
     *  rather than reported as a shift from/to zero). */
    std::vector<QuantileShift> quantiles;
    /** Scalars present in both runs whose value changed. */
    std::vector<ScalarDelta> scalars;
};

/** Diff two runs; see the Report field docs for the semantics. */
Report compare(const RunData &base, const RunData &cand);

/** Machine-readable report (one self-contained JSON document). */
std::string reportJson(const Report &r);

/** Human-readable report (aligned tables, worst regressor first). */
std::string reportText(const Report &r, std::size_t topN = 10);

/**
 * Apply the committed perf-guard to the candidate run: for every
 * entry of a bench/baselines.json document whose dotted "key" is
 * present in cand.scalars, fail on a gross regression
 * (current < baseline / maxRegression, default 2.0) or, with
 * "requirePositive", on current <= 0 — the exact check_baselines.py
 * rule. Keys absent from the candidate are skipped (obsreport
 * usually sees one bench's output, not all of them). Appends one
 * OK/SKIP/FAIL line per metric to `out`; returns the number of
 * failures. Throws backend::JsonError on a malformed document.
 */
int checkBaselines(const backend::JsonValue &baselines,
                   const RunData &cand, std::string &out);

} // namespace reqisc::tools

#endif // REQISC_TOOLS_OBSREPORT_REPORT_HH
