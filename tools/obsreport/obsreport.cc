/**
 * @file
 * CLI front of tools/obsreport: perf-regression attribution between
 * two instrumented runs. All the real work lives in report.cc; this
 * file only parses flags, slurps files, and renders.
 *
 * Exit codes: 0 report produced (and baselines guard, if requested,
 * passed); 1 the baselines guard found regressions; 2 usage, I/O or
 * parse errors.
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "obsreport/report.hh"

namespace
{

using reqisc::tools::RunData;

void printUsage(std::ostream &os)
{
    os << "usage: obsreport [options] BASE.json CAND.json\n"
          "\n"
          "Attribute the perf delta between two instrumented runs:\n"
          "per-pass absolute and share-of-total-delta breakdown,\n"
          "top-regressors ranking, histogram quantile shifts, and\n"
          "scalar diffs. BASE/CAND are --json outputs of either\n"
          "reqisc-compile or bench_service (shape is detected).\n"
          "\n"
          "options:\n"
          "  --metrics-base FILE   Prometheus snapshot of the base\n"
          "                        run (reqisc-compile "
          "--metrics-out)\n"
          "  --metrics-cand FILE   same, candidate run\n"
          "  --trace-base FILE     Chrome trace of the base run\n"
          "                        (--trace-out); summed span\n"
          "                        durations stand in for a missing\n"
          "                        BASE.json summary\n"
          "  --trace-cand FILE     same, candidate run\n"
          "  --baselines FILE      apply the bench/baselines.json\n"
          "                        guard (gross-regression / "
          "sign-flip\n"
          "                        rule) to the candidate's "
          "scalars;\n"
          "                        exit 1 on any failure\n"
          "  --json                machine-readable report\n"
          "  --top N               passes shown in the text report\n"
          "                        (default 10)\n"
          "  --out FILE            write the report to FILE\n"
          "  -h, --help            this message\n";
}

bool slurp(const std::string &path, std::string &out)
{
    std::ifstream f(path, std::ios::binary);
    if (!f)
        return false;
    std::ostringstream ss;
    ss << f.rdbuf();
    out = ss.str();
    return static_cast<bool>(f);
}

struct SideInputs
{
    std::string jsonPath;
    std::string metricsPath;
    std::string tracePath;
};

/** Build one side's RunData; returns false (with a message on
 *  stderr) on I/O or parse failure. A trace only substitutes for a
 *  missing --json summary — using both would double-count the pass
 *  spans the summary already aggregates. */
bool loadSide(const SideInputs &in, const char *side, RunData &run)
{
    try
    {
        std::string text;
        if (!in.jsonPath.empty())
        {
            if (!slurp(in.jsonPath, text))
            {
                std::cerr << "obsreport: cannot read " << in.jsonPath
                          << "\n";
                return false;
            }
            ingestBenchJson(run, text, in.jsonPath);
        }
        else if (!in.tracePath.empty())
        {
            if (!slurp(in.tracePath, text))
            {
                std::cerr << "obsreport: cannot read "
                          << in.tracePath << "\n";
                return false;
            }
            ingestTraceJson(run, text, in.tracePath);
        }
        if (!in.metricsPath.empty())
        {
            if (!slurp(in.metricsPath, text))
            {
                std::cerr << "obsreport: cannot read "
                          << in.metricsPath << "\n";
                return false;
            }
            ingestPromText(run, text);
        }
    }
    catch (const std::exception &e)
    {
        std::cerr << "obsreport: " << side << ": " << e.what()
                  << "\n";
        return false;
    }
    if (run.passSeconds.empty() && run.scalars.empty() &&
        run.histograms.empty())
    {
        std::cerr << "obsreport: no input for the " << side
                  << " run (give a summary JSON, --metrics-" << side
                  << " or --trace-" << side << ")\n";
        return false;
    }
    return true;
}

} // namespace

int main(int argc, char **argv)
{
    SideInputs base, cand;
    std::string baselinesPath, outPath;
    bool json = false;
    std::size_t topN = 10;

    std::vector<std::string> positional;
    for (int i = 1; i < argc; ++i)
    {
        const std::string arg = argv[i];
        const auto value = [&](std::string &dst) {
            if (i + 1 >= argc)
            {
                std::cerr << "obsreport: " << arg
                          << " needs a value\n";
                return false;
            }
            dst = argv[++i];
            return true;
        };
        if (arg == "-h" || arg == "--help")
        {
            printUsage(std::cout);
            return 0;
        }
        else if (arg == "--json")
            json = true;
        else if (arg == "--metrics-base")
        {
            if (!value(base.metricsPath))
                return 2;
        }
        else if (arg == "--metrics-cand")
        {
            if (!value(cand.metricsPath))
                return 2;
        }
        else if (arg == "--trace-base")
        {
            if (!value(base.tracePath))
                return 2;
        }
        else if (arg == "--trace-cand")
        {
            if (!value(cand.tracePath))
                return 2;
        }
        else if (arg == "--baselines")
        {
            if (!value(baselinesPath))
                return 2;
        }
        else if (arg == "--out")
        {
            if (!value(outPath))
                return 2;
        }
        else if (arg == "--top")
        {
            std::string v;
            if (!value(v))
                return 2;
            try
            {
                topN = static_cast<std::size_t>(std::stoul(v));
            }
            catch (const std::exception &)
            {
                std::cerr << "obsreport: --top: expected a "
                             "number, got '"
                          << v << "'\n";
                return 2;
            }
        }
        else if (!arg.empty() && arg[0] == '-')
        {
            std::cerr << "obsreport: unknown option " << arg
                      << "\n";
            printUsage(std::cerr);
            return 2;
        }
        else
            positional.push_back(arg);
    }
    if (positional.size() > 2)
    {
        std::cerr << "obsreport: at most two positional summary "
                     "files (base, cand)\n";
        return 2;
    }
    if (!positional.empty())
        base.jsonPath = positional[0];
    if (positional.size() > 1)
        cand.jsonPath = positional[1];

    RunData baseRun, candRun;
    if (!loadSide(base, "base", baseRun) ||
        !loadSide(cand, "cand", candRun))
        return 2;

    const reqisc::tools::Report report =
        reqisc::tools::compare(baseRun, candRun);
    const std::string rendered =
        json ? reqisc::tools::reportJson(report)
             : reqisc::tools::reportText(report, topN);
    if (outPath.empty())
        std::cout << rendered;
    else
    {
        std::ofstream f(outPath,
                        std::ios::binary | std::ios::trunc);
        f << rendered;
        f.flush();
        if (!f)
        {
            std::cerr << "obsreport: cannot write " << outPath
                      << "\n";
            return 2;
        }
    }

    if (!baselinesPath.empty())
    {
        std::string text, guard;
        int failures = 0;
        if (!slurp(baselinesPath, text))
        {
            std::cerr << "obsreport: cannot read " << baselinesPath
                      << "\n";
            return 2;
        }
        try
        {
            failures = reqisc::tools::checkBaselines(
                reqisc::backend::parseJson(text, baselinesPath),
                candRun, guard);
        }
        catch (const std::exception &e)
        {
            std::cerr << "obsreport: " << e.what() << "\n";
            return 2;
        }
        // Guard verdicts go to stderr so the report (possibly JSON
        // on stdout) stays machine-parseable.
        std::cerr << guard;
        if (failures)
        {
            std::cerr << "obsreport: " << failures
                      << " metric(s) regressed\n";
            return 1;
        }
        std::cerr << "obsreport: all baseline metrics within "
                     "bounds\n";
    }
    return 0;
}
