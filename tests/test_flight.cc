/**
 * @file
 * Tests for the structured logger and the always-on flight recorder:
 * severity filtering, rate limiting and the JSON-lines format; job
 * propagation into log records, spans and flight events (including
 * across BlockPool helper threads); ring wraparound eviction order;
 * multi-thread snapshot consistency (no torn events); the
 * job-failure dump of CompileService; and the fatal-signal dump
 * path, exercised in a death test.
 */

#include <gtest/gtest.h>

#include <csignal>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "backend/json.hh"
#include "obs/obs.hh"
#include "service/service.hh"
#include "synth/pool.hh"

using namespace reqisc;

// Sanitizers install their own fatal-signal machinery; the SIGSEGV
// death test would race it, so it only runs in plain builds.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define REQISC_UNDER_SANITIZER 1
#endif
#if !defined(REQISC_UNDER_SANITIZER) && defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define REQISC_UNDER_SANITIZER 1
#endif
#endif

namespace
{

/** Reset the (global) logger to its defaults around a test. */
struct LoggerGuard
{
    LoggerGuard()
    {
        obs::Logger::global().clear();
        obs::Logger::global().setEnabled(true);
        obs::Logger::global().setMinLevel(obs::LogLevel::Debug);
        obs::Logger::global().setRateLimit(1e9, 1e9);
    }
    ~LoggerGuard()
    {
        obs::Logger::global().setEnabled(false);
        obs::Logger::global().setMinLevel(obs::LogLevel::Info);
        obs::Logger::global().setRateLimit(100.0, 200.0);
        obs::Logger::global().clear();
    }
};

std::string tempPath(const std::string &name)
{
    return (std::filesystem::temp_directory_path() / name).string();
}

std::string slurp(const std::string &path)
{
    std::ifstream f(path, std::ios::binary);
    std::ostringstream ss;
    ss << f.rdbuf();
    return ss.str();
}

/** Parse a flight dump and return the events array. */
const backend::JsonValue *flightEvents(const backend::JsonValue &doc)
{
    const backend::JsonValue *fr = doc.find("flightRecorder");
    if (!fr)
        return nullptr;
    return fr->find("events");
}

} // namespace

// ---- Logger ------------------------------------------------------------

TEST(Log, DisabledByDefaultAndFiltersBySeverity)
{
    obs::Logger::global().clear();
    ASSERT_FALSE(obs::Logger::global().enabled());
    obs::log(obs::LogLevel::Error, "test", "dropped while off");
    EXPECT_TRUE(obs::Logger::global().collect().empty());

    LoggerGuard guard;
    obs::Logger::global().setMinLevel(obs::LogLevel::Warn);
    obs::log(obs::LogLevel::Info, "test", "below the floor");
    obs::log(obs::LogLevel::Warn, "test", "kept",
             {{"k", "v"}, {"n", "7"}});
    const auto records = obs::Logger::global().collect();
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].level, obs::LogLevel::Warn);
    EXPECT_EQ(records[0].component, "test");
    EXPECT_EQ(records[0].message, "kept");
    ASSERT_EQ(records[0].fields.size(), 2u);
    EXPECT_EQ(records[0].fields[0].first, "k");
    EXPECT_EQ(records[0].fields[0].second, "v");
    EXPECT_GE(records[0].tsNs, 0);
}

TEST(Log, RateLimitBoundsARepeatedMessage)
{
    LoggerGuard guard;
    obs::Logger::global().setRateLimit(10.0, 20.0);
    const std::uint64_t dropped0 =
        obs::Logger::global().droppedCount();
    for (int i = 0; i < 1000; ++i)
        obs::log(obs::LogLevel::Info, "hot", "same message");
    const auto records = obs::Logger::global().collect();
    // The burst admits ~20 plus whatever trickles in during the
    // loop; far fewer than the 1000 attempts either way.
    EXPECT_GE(records.size(), 1u);
    EXPECT_LE(records.size(), 100u);
    EXPECT_GT(obs::Logger::global().droppedCount(), dropped0);
}

TEST(Log, JsonLinesRoundTripsThroughTheParser)
{
    LoggerGuard guard;
    {
        obs::JobScope job("job-42");
        obs::log(obs::LogLevel::Error, "compiler",
                 "pass \"x\" failed", {{"pass", "synth"}});
    }
    obs::log(obs::LogLevel::Debug, "cache", "no job here");
    const std::string lines =
        obs::jsonLines(obs::Logger::global().collect());
    std::istringstream ss(lines);
    std::string line;
    std::vector<backend::JsonValue> docs;
    while (std::getline(ss, line))
        if (!line.empty())
            docs.push_back(backend::parseJson(line, "log-line"));
    ASSERT_EQ(docs.size(), 2u);
    EXPECT_EQ(docs[0].find("level")->str, "error");
    EXPECT_EQ(docs[0].find("component")->str, "compiler");
    EXPECT_EQ(docs[0].find("msg")->str, "pass \"x\" failed");
    ASSERT_NE(docs[0].find("job"), nullptr);
    EXPECT_EQ(docs[0].find("job")->str, "job-42");
    EXPECT_EQ(docs[0].find("fields")->find("pass")->str, "synth");
    // No JobScope active -> no job key at all (absence, not "").
    EXPECT_EQ(docs[1].find("job"), nullptr);
    EXPECT_EQ(docs[1].find("level")->str, "debug");
}

TEST(Log, LevelNamesParseAndPrint)
{
    obs::LogLevel lvl = obs::LogLevel::Info;
    EXPECT_TRUE(obs::parseLogLevel("warn", lvl));
    EXPECT_EQ(lvl, obs::LogLevel::Warn);
    EXPECT_FALSE(obs::parseLogLevel("loud", lvl));
    EXPECT_STREQ(obs::logLevelName(obs::LogLevel::Debug), "debug");
    EXPECT_STREQ(obs::logLevelName(obs::LogLevel::Error), "error");
}

// ---- JobScope ----------------------------------------------------------

TEST(JobScope, NestsAndRestores)
{
    EXPECT_STREQ(obs::currentJobName(), "");
    {
        obs::JobScope outer("outer");
        EXPECT_STREQ(obs::currentJobName(), "outer");
        {
            obs::JobScope inner("inner");
            EXPECT_STREQ(obs::currentJobName(), "inner");
        }
        EXPECT_STREQ(obs::currentJobName(), "outer");
    }
    EXPECT_STREQ(obs::currentJobName(), "");
}

TEST(JobScope, PropagatesAcrossBlockPoolThreads)
{
    synth::BlockPool pool(2);
    std::vector<std::string> seen(8);
    {
        obs::JobScope job("pool-job");
        std::vector<std::function<void()>> tasks;
        for (std::size_t i = 0; i < seen.size(); ++i)
            tasks.push_back(
                [&seen, i] { seen[i] = obs::currentJobName(); });
        pool.run(std::move(tasks));
    }
    for (const std::string &s : seen)
        EXPECT_EQ(s, "pool-job");
}

// ---- Flight recorder ---------------------------------------------------

TEST(Flight, CapturesSpansLogsAndMetricDeltasWithJob)
{
    namespace flight = obs::flight;
    flight::clear();
    obs::Registry reg;  // local and disabled: deltas still recorded
    obs::Counter *c = reg.counter("flight_test_total", "t");
    {
        obs::JobScope job("flight-job");
        obs::Span span("flight-span");
        obs::log(obs::LogLevel::Warn, "flightc", "hello flight");
        c->add(3);
    }
    const auto evs = flight::snapshotEvents();
    bool sawBegin = false, sawEnd = false, sawLog = false,
         sawCounter = false;
    std::uint64_t lastSeq = 0;
    for (const flight::Event &e : evs)
    {
        EXPECT_GT(e.seq, lastSeq);  // merged snapshot is seq-sorted
        lastSeq = e.seq;
        const std::string name = e.name;
        if (name == "flight-span" &&
            e.kind == std::uint8_t(flight::Kind::SpanBegin))
        {
            sawBegin = true;
            EXPECT_STREQ(e.job, "flight-job");
        }
        if (name == "flight-span" &&
            e.kind == std::uint8_t(flight::Kind::SpanEnd))
        {
            sawEnd = true;
            EXPECT_GE(e.value, 0.0);  // duration ns
        }
        if (name == "flightc" &&
            e.kind == std::uint8_t(flight::Kind::Log))
        {
            sawLog = true;
            EXPECT_STREQ(e.detail, "hello flight");
            EXPECT_EQ(e.level,
                      std::uint8_t(obs::LogLevel::Warn));
            EXPECT_STREQ(e.job, "flight-job");
        }
        if (name == "flight_test_total" &&
            e.kind == std::uint8_t(flight::Kind::Counter))
        {
            sawCounter = true;
            EXPECT_DOUBLE_EQ(e.value, 3.0);
        }
    }
    EXPECT_TRUE(sawBegin);
    EXPECT_TRUE(sawEnd);
    EXPECT_TRUE(sawLog);
    EXPECT_TRUE(sawCounter);
}

TEST(Flight, WraparoundKeepsExactlyTheNewestEvents)
{
    namespace flight = obs::flight;
    flight::clear();
    const int extra = 100;
    const int total = int(flight::kRingCapacity) + extra;
    for (int i = 0; i < total; ++i)
        flight::record(flight::Kind::Log, "wrap", "", double(i));
    std::vector<double> values;
    for (const flight::Event &e : flight::snapshotEvents())
        if (std::string(e.name) == "wrap")
            values.push_back(e.value);
    // Oldest events were evicted; the newest suffix remains in
    // recording order. The slot the writer may be about to reuse is
    // unreadable by design, hence capacity - 1 (see snapshotEvents).
    ASSERT_EQ(values.size(), flight::kRingCapacity - 1);
    for (std::size_t i = 0; i < values.size(); ++i)
        EXPECT_DOUBLE_EQ(values[i], double(extra + 1 + int(i)));
}

TEST(Flight, MultiThreadSnapshotHasNoTornEvents)
{
    namespace flight = obs::flight;
    flight::clear();
    constexpr int kThreads = 4;
    constexpr int kPerThread = 500;  // each ring wraps
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([t] {
            const std::string name = "mt" + std::to_string(t);
            for (int i = 0; i < kPerThread; ++i)
            {
                // name, detail and value must stay consistent in
                // every snapshotted event or a torn slot escaped
                // the seqlock check.
                const std::string detail =
                    name + ":" + std::to_string(i);
                flight::record(flight::Kind::Gauge, name.c_str(),
                               detail.c_str(),
                               double(t * 1000000 + i));
            }
        });
    for (auto &th : threads)
        th.join();

    std::vector<std::vector<double>> perThread(kThreads);
    for (const flight::Event &e : flight::snapshotEvents())
    {
        const std::string name = e.name;
        if (name.rfind("mt", 0) != 0)
            continue;
        const int t = std::stoi(name.substr(2));
        ASSERT_GE(t, 0);
        ASSERT_LT(t, kThreads);
        const int i = int(e.value) - t * 1000000;
        EXPECT_EQ(std::string(e.detail),
                  name + ":" + std::to_string(i));
        perThread[std::size_t(t)].push_back(e.value);
    }
    for (int t = 0; t < kThreads; ++t)
    {
        const auto &vals = perThread[std::size_t(t)];
        ASSERT_EQ(vals.size(), flight::kRingCapacity - 1);
        for (std::size_t i = 1; i < vals.size(); ++i)
            EXPECT_EQ(vals[i], vals[i - 1] + 1.0);
    }
}

TEST(Flight, SnapshotJsonIsSelfContainedAndParses)
{
    namespace flight = obs::flight;
    flight::clear();
    flight::record(flight::Kind::Log, "esc",
                   "quote \" backslash \\ done", 0.0,
                   int(obs::LogLevel::Error));
    const std::string json = flight::snapshotJson("unit-test");
    const backend::JsonValue doc =
        backend::parseJson(json, "flight");
    const backend::JsonValue *fr = doc.find("flightRecorder");
    ASSERT_NE(fr, nullptr);
    EXPECT_EQ(fr->find("version")->number, 1.0);
    EXPECT_EQ(fr->find("trigger")->str, "unit-test");
    EXPECT_EQ(fr->find("capacityPerThread")->number,
              double(flight::kRingCapacity));
    const backend::JsonValue *events = fr->find("events");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());
    bool found = false;
    for (const backend::JsonValue &e : events->array)
        if (e.find("name")->str == "esc")
        {
            found = true;
            EXPECT_EQ(e.find("kind")->str, "log");
            EXPECT_EQ(e.find("level")->str, "error");
            EXPECT_EQ(e.find("detail")->str,
                      "quote \" backslash \\ done");
        }
    EXPECT_TRUE(found);
}

TEST(Flight, JobFailureWritesADumpWithTheFailingJobsContext)
{
    namespace flight = obs::flight;
    const std::string path = tempPath("reqisc_flight_jobfail.json");
    std::filesystem::remove(path);
    flight::setDumpPath(path);
    flight::clear();
    {
        service::ServiceOptions sopts;
        sopts.threads = 1;
        service::CompileService svc(sopts);
        service::CompileRequest bad;
        bad.name = "broken-job";
        bad.qasm = "qreg q[2];\nfrobnicate q[0];\n";
        const service::JobResult res =
            svc.wait(svc.submit(std::move(bad)));
        ASSERT_FALSE(res.ok);
    }
    flight::setDumpPath("");

    const std::string text = slurp(path);
    ASSERT_FALSE(text.empty()) << "no dump written to " << path;
    const backend::JsonValue doc =
        backend::parseJson(text, "jobfail-dump");
    EXPECT_EQ(doc.find("flightRecorder")->find("trigger")->str,
              "job-failure");
    const backend::JsonValue *events = flightEvents(doc);
    ASSERT_NE(events, nullptr);
    bool sawErrorLog = false, sawJobSpan = false;
    for (const backend::JsonValue &e : events->array)
    {
        const std::string name = e.find("name")->str;
        const std::string kind = e.find("kind")->str;
        if (kind == "log" && name == "service" &&
            e.find("level")->str == "error" &&
            e.find("detail")->str == "job failed")
        {
            sawErrorLog = true;
            EXPECT_EQ(e.find("job")->str, "broken-job");
        }
        if (name.rfind("job:", 0) == 0 &&
            e.find("job")->str == "broken-job")
            sawJobSpan = true;
    }
    EXPECT_TRUE(sawErrorLog);
    EXPECT_TRUE(sawJobSpan);
    std::filesystem::remove(path);
}

#ifndef REQISC_UNDER_SANITIZER
TEST(FlightDeathTest, FatalSignalWritesAParseableDump)
{
    namespace flight = obs::flight;
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    const std::string path = tempPath("reqisc_flight_sigsegv.json");
    std::filesystem::remove(path);
    // The child arms the handlers, records a marker, then dies on
    // SIGSEGV; SA_RESETHAND + re-raise keeps the kill signal.
    EXPECT_EXIT(
        {
            flight::setDumpPath(path);
            flight::installSignalHandlers();
            flight::record(flight::Kind::Log, "crash-marker",
                           "about to fault");
            std::raise(SIGSEGV);
        },
        ::testing::KilledBySignal(SIGSEGV), "");

    const std::string text = slurp(path);
    ASSERT_FALSE(text.empty()) << "no dump written to " << path;
    const backend::JsonValue doc =
        backend::parseJson(text, "signal-dump");
    const backend::JsonValue *fr = doc.find("flightRecorder");
    ASSERT_NE(fr, nullptr);
    EXPECT_EQ(fr->find("trigger")->str, "signal");
    EXPECT_EQ(fr->find("signal")->number, double(SIGSEGV));
    const backend::JsonValue *events = fr->find("events");
    ASSERT_NE(events, nullptr);
    bool found = false;
    for (const backend::JsonValue &e : events->array)
        if (e.find("name")->str == "crash-marker")
            found = true;
    EXPECT_TRUE(found);
    std::filesystem::remove(path);
}
#endif // !REQISC_UNDER_SANITIZER
