/**
 * @file
 * Tests for the pass-manager architecture (compiler/pass_manager.hh):
 *
 *  - the named Eff/Full pass lists reproduce the pre-refactor
 *    monolithic pipelines bit-for-bit (a verbatim copy of the old
 *    implementation serves as the oracle) on every examples/qasm/
 *    circuit and on the options variants (no-mirroring, variational,
 *    dagCompacting off);
 *  - the service's pass-managed runJob matches the old hand-sequenced
 *    route -> evaluate -> reconfigure -> schedule tail on a concrete
 *    chip, artifact by artifact;
 *  - pipeline-spec parsing accepts the documented grammar and rejects
 *    malformed specs with actionable errors;
 *  - PassTrace invariants: nonnegative times, before/after chaining,
 *    and #2Q consistency with the final metrics.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "backend/backend.hh"
#include "backend/reconfigure.hh"
#include "circuit/lower.hh"
#include "circuit/qasm.hh"
#include "compiler/metrics.hh"
#include "compiler/pass_manager.hh"
#include "compiler/passes.hh"
#include "compiler/pipeline.hh"
#include "isa/assembly.hh"
#include "isa/schedule.hh"
#include "route/sabre.hh"
#include "service/service.hh"
#include "synth/instantiate.hh"
#include "synth/synthesis.hh"
#include "test_util.hh"

using namespace reqisc;
using namespace reqisc::circuit;
using compiler::CompilationUnit;
using compiler::CompileOptions;
using compiler::CompileResult;
using compiler::PassManager;
using compiler::PipelineSpec;
using qmath::Matrix;

#ifndef REQISC_SOURCE_DIR
#define REQISC_SOURCE_DIR "."
#endif

namespace
{

const std::vector<std::string> kExampleQasm = {
    "/examples/qasm/ghz8.qasm",
    "/examples/qasm/qft4.qasm",
    "/examples/qasm/adder5.qasm",
    "/examples/qasm/ising6.qasm",
};

Circuit
loadExample(const std::string &rel)
{
    std::ifstream in(std::string(REQISC_SOURCE_DIR) + rel);
    EXPECT_TRUE(in.good()) << "cannot open " << rel;
    std::ostringstream text;
    text << in.rdbuf();
    return circuit::fromQasm(text.str());
}

/** Bit-exact gate-stream equality (no tolerance anywhere). */
::testing::AssertionResult
circuitsIdentical(const Circuit &a, const Circuit &b)
{
    if (a.numQubits() != b.numQubits())
        return ::testing::AssertionFailure()
               << "qubit count " << a.numQubits() << " vs "
               << b.numQubits();
    if (a.size() != b.size())
        return ::testing::AssertionFailure()
               << "gate count " << a.size() << " vs " << b.size();
    for (size_t i = 0; i < a.size(); ++i) {
        const Gate &g = a[i], &h = b[i];
        if (g.op != h.op || g.qubits != h.qubits ||
            g.params != h.params)
            return ::testing::AssertionFailure()
                   << "gate " << i << ": " << g.toString() << " vs "
                   << h.toString();
        const bool gp = g.payload != nullptr,
                   hp = h.payload != nullptr;
        if (gp != hp)
            return ::testing::AssertionFailure()
                   << "gate " << i << ": payload presence differs";
        if (gp) {
            const Matrix &m = *g.payload, &n = *h.payload;
            if (m.rows() != n.rows() || m.cols() != n.cols())
                return ::testing::AssertionFailure()
                       << "gate " << i << ": payload shape differs";
            for (int r = 0; r < m.rows(); ++r)
                for (int c = 0; c < m.cols(); ++c)
                    if (m(r, c) != n(r, c))
                        return ::testing::AssertionFailure()
                               << "gate " << i << ": payload ("
                               << r << "," << c << ") differs";
        }
    }
    return ::testing::AssertionSuccess();
}

// ---- The pre-refactor pipelines, kept verbatim as the oracle -----------

CompileResult
legacyFinish(Circuit c, const CompileOptions &opts)
{
    CompileResult res;
    std::vector<int> perm(c.numQubits());
    for (int q = 0; q < c.numQubits(); ++q)
        perm[q] = q;
    if (opts.applyMirroring && !opts.variationalMode)
        c = compiler::mirrorNearIdentity(c, perm,
                                         opts.mirrorThreshold);
    if (opts.variationalMode) {
        Circuit fixed(c.numQubits());
        for (const Gate &g : c) {
            if (g.is2Q() && (g.op == Op::U4 || g.op == Op::CAN)) {
                auto gates = synth::su4ToFixedBasis(
                    g.qubits[0], g.qubits[1], g.matrix(),
                    opts.variationalBasis);
                if (!gates.empty()) {
                    for (Gate &e : gates)
                        fixed.add(std::move(e));
                    continue;
                }
            }
            fixed.add(g);
        }
        c = std::move(fixed);
        res.circuit = std::move(c);
        res.finalPermutation = std::move(perm);
        return res;
    }
    res.circuit = circuit::expandToCanU3(c);
    res.finalPermutation = std::move(perm);
    return res;
}

CompileResult
legacyEff(const Circuit &input, const CompileOptions &opts)
{
    Circuit c = circuit::decomposeMcx(input);
    c = compiler::templateSynthesis(c);
    c = compiler::groupPauliRotations(c);
    c = compiler::fuse2QBlocks(compiler::fuse1Q(c));
    return legacyFinish(std::move(c), opts);
}

CompileResult
legacyFull(const Circuit &input, const CompileOptions &opts)
{
    Circuit c = circuit::decomposeMcx(input);
    c = compiler::templateSynthesis(c);
    c = compiler::groupPauliRotations(c);
    c = compiler::fuse2QBlocks(compiler::fuse1Q(c));
    if (opts.dagCompacting) {
        c = compiler::hierarchicalSynthesis(
            c, opts.mTh, opts.synthTol, opts.seed, opts.synthMemo);
    } else {
        std::vector<compiler::Partition3Q> blocks =
            compiler::partition3Q(c);
        Circuit nc(input.numQubits());
        for (const auto &b : blocks)
            for (const Gate &g : b.gates)
                nc.add(g);
        c = std::move(nc);
        Circuit out(input.numQubits());
        for (const auto &b : compiler::partition3Q(c)) {
            if (b.count2Q <= opts.mTh || b.qubits.size() < 3) {
                for (const Gate &g : b.gates)
                    out.add(g);
                continue;
            }
            Matrix u = Matrix::identity(8);
            auto local = [&](const Gate &g) {
                std::vector<int> idx;
                for (int q : g.qubits)
                    idx.push_back(static_cast<int>(
                        std::find(b.qubits.begin(), b.qubits.end(),
                                  q) -
                        b.qubits.begin()));
                return idx;
            };
            for (const Gate &g : b.gates)
                u = synth::liftGate(g.matrix(), local(g), 3) * u;
            synth::SynthesisOptions sopts;
            sopts.tol = opts.synthTol;
            sopts.maxBlocks = std::min(7, b.count2Q - 1);
            sopts.descending = true;
            sopts.seed = opts.seed;
            sopts.memo = opts.synthMemo;
            synth::SynthesisResult r =
                synth::synthesizeBlock(u, b.qubits, sopts);
            if (r.success &&
                static_cast<int>(r.blockCount) < b.count2Q) {
                for (const Gate &g : r.gates)
                    out.add(g);
            } else {
                for (const Gate &g : b.gates)
                    out.add(g);
            }
        }
        c = compiler::fuse2QBlocks(compiler::fuse1Q(out));
    }
    return legacyFinish(std::move(c), opts);
}

/** Run a compile-stage pass list explicitly through a PassManager. */
CompileResult
runExplicit(const Circuit &input, const CompileOptions &opts,
            const std::vector<std::string> &tokens)
{
    CompilationUnit unit = CompilationUnit::forInput(input, opts);
    PassManager pm;
    for (const std::string &tok : tokens) {
        std::string error;
        auto pass = compiler::makePass(tok, error);
        EXPECT_NE(pass, nullptr) << error;
        if (pass)
            pm.add(std::move(pass));
    }
    pm.run(unit);
    CompileResult res;
    res.circuit = std::move(unit.circuit);
    res.finalPermutation = std::move(unit.finalPermutation);
    return res;
}

void
expectSameCompile(const CompileResult &a, const CompileResult &b,
                  const std::string &what)
{
    EXPECT_TRUE(circuitsIdentical(a.circuit, b.circuit)) << what;
    EXPECT_EQ(a.finalPermutation, b.finalPermutation) << what;
}

} // namespace

// ---- Wrapper vs explicit pass list vs legacy oracle --------------------

TEST(PassManagerEquivalence, EffAndFullMatchLegacyOnEveryExample)
{
    for (const std::string &rel : kExampleQasm) {
        const Circuit input = loadExample(rel);
        const CompileOptions opts;

        const CompileResult eff = compiler::reqiscEff(input, opts);
        expectSameCompile(eff, legacyEff(input, opts),
                          rel + " eff vs legacy");
        expectSameCompile(
            eff,
            runExplicit(input, opts,
                        compiler::compilePassList(
                            PipelineSpec::Kind::Eff, opts)),
            rel + " eff vs explicit list");

        const CompileResult full = compiler::reqiscFull(input, opts);
        expectSameCompile(full, legacyFull(input, opts),
                          rel + " full vs legacy");
        expectSameCompile(
            full,
            runExplicit(input, opts,
                        compiler::compilePassList(
                            PipelineSpec::Kind::Full, opts)),
            rel + " full vs explicit list");
    }
}

TEST(PassManagerEquivalence, OptionVariantsMatchLegacy)
{
    const Circuit input = loadExample(kExampleQasm[1]);  // qft4

    CompileOptions no_mirror;
    no_mirror.applyMirroring = false;
    expectSameCompile(compiler::reqiscEff(input, no_mirror),
                      legacyEff(input, no_mirror), "no-mirror eff");

    CompileOptions nc;
    nc.dagCompacting = false;
    expectSameCompile(compiler::reqiscFull(input, nc),
                      legacyFull(input, nc), "dagCompacting=off");
    // The ablation is also exactly the hier-synth:nc pass-list edit.
    expectSameCompile(
        compiler::reqiscFull(input, nc),
        runExplicit(input, nc,
                    {"synth", "group-pauli", "fuse", "hier-synth:nc",
                     "mirror", "lower"}),
        "dagCompacting=off vs explicit :nc list");

    CompileOptions variational;
    variational.variationalMode = true;
    expectSameCompile(compiler::reqiscEff(input, variational),
                      legacyEff(input, variational),
                      "variational eff");
    expectSameCompile(compiler::reqiscFull(input, variational),
                      legacyFull(input, variational),
                      "variational full");

    CompileOptions seeded;
    seeded.seed = 12345;
    expectSameCompile(compiler::reqiscFull(input, seeded),
                      legacyFull(input, seeded), "seed=12345");
}

// ---- Service runJob vs the legacy hand-sequenced tail ------------------

namespace
{

/** The pre-refactor runJob backend tail, verbatim. */
void
legacyBackendTail(const CompileResult &compiled,
                  const backend::Backend &chip,
                  const backend::ReconfigureResult &reconfig,
                  unsigned seed, isa::Strategy strategy,
                  Circuit &phys_out, std::vector<int> &layout_out,
                  compiler::Metrics &metrics_out,
                  isa::Program &program_out)
{
    route::RouteOptions ropts;
    ropts.mirroring = true;
    ropts.seed = seed;
    const route::RouteResult rr = route::sabreRoute(
        compiled.circuit, chip.topology(), ropts);
    Circuit phys(rr.circuit.numQubits());
    for (const Gate &g : rr.circuit) {
        if (g.op == Op::SWAP)
            phys.add(Gate::can(g.qubits[0], g.qubits[1],
                               weyl::WeylCoord::swap()));
        else
            phys.add(g);
    }
    const isa::DurationModel durations = chip.durationModel();
    metrics_out = compiler::evaluate(
        phys, [&durations](const Gate &g) {
            return g.numQubits() < 2 ? 0.0 : durations.gate(g);
        });
    metrics_out.backend.used = true;
    metrics_out.backend.routedSwaps = rr.swapsInserted;
    metrics_out.backend.routedSwapsAbsorbed = rr.swapsAbsorbed;
    metrics_out.backend.fidelityReconfigured =
        backend::estimateFidelity(phys, chip, reconfig.table);
    metrics_out.backend.fidelityUniform =
        backend::estimateFidelity(phys, chip,
                                  reconfig.uniformTable);
    layout_out.resize(compiled.finalPermutation.size());
    for (size_t q = 0; q < compiled.finalPermutation.size(); ++q)
        layout_out[q] = rr.finalLayout[static_cast<size_t>(
            compiled.finalPermutation[q])];
    isa::ScheduleOptions sopts;
    sopts.strategy = strategy;
    sopts.durations = durations;
    sopts.topology = &chip.topology();
    program_out = isa::schedule(phys, sopts);
    metrics_out.schedule = program_out.stats();
    phys_out = std::move(phys);
}

} // namespace

TEST(PassManagerEquivalence, ServiceMatchesLegacyRunJobOnChip)
{
    for (const char *chip_rel :
         {"/examples/chips/chain8_xy.json",
          "/examples/chips/hetero_heavy_hex.json"}) {
        const auto chip = std::make_shared<const backend::Backend>(
            backend::Backend::fromJsonFile(
                std::string(REQISC_SOURCE_DIR) + chip_rel));
        const backend::ReconfigureResult reconfig =
            backend::reconfigure(*chip);

        service::ServiceOptions sopts;
        sopts.threads = 1;
        sopts.backend = chip;
        service::CompileService svc(sopts);

        const Circuit input = loadExample(kExampleQasm[0]);  // ghz8
        service::CompileRequest req;
        req.name = "ghz8";
        req.input = input;
        req.pipeline = service::Pipeline::Eff;
        req.schedule = true;
        req.scheduleOptions.strategy = isa::Strategy::Asap;
        req.calibrate = false;
        const auto id = svc.submit(req);
        const service::JobResult r = svc.wait(id);
        ASSERT_TRUE(r.ok) << r.error;

        // Oracle: standalone compile + the legacy tail.
        const CompileResult compiled =
            compiler::reqiscEff(input, req.options);
        Circuit phys;
        std::vector<int> layout;
        compiler::Metrics metrics;
        isa::Program program;
        legacyBackendTail(compiled, *chip, reconfig,
                          req.options.seed, isa::Strategy::Asap,
                          phys, layout, metrics, program);

        EXPECT_TRUE(circuitsIdentical(r.compiled.circuit,
                                      compiled.circuit))
            << chip_rel;
        EXPECT_TRUE(circuitsIdentical(r.routed, phys)) << chip_rel;
        EXPECT_EQ(r.finalLayout, layout) << chip_rel;
        EXPECT_EQ(isa::toAssembly(r.program),
                  isa::toAssembly(program))
            << chip_rel;
        EXPECT_EQ(r.metrics.count2Q, metrics.count2Q);
        EXPECT_EQ(r.metrics.depth2Q, metrics.depth2Q);
        EXPECT_EQ(r.metrics.duration, metrics.duration);
        EXPECT_EQ(r.metrics.distinctSU4, metrics.distinctSU4);
        EXPECT_EQ(r.metrics.backend.routedSwaps,
                  metrics.backend.routedSwaps);
        EXPECT_EQ(r.metrics.backend.routedSwapsAbsorbed,
                  metrics.backend.routedSwapsAbsorbed);
        EXPECT_EQ(r.metrics.backend.fidelityReconfigured,
                  metrics.backend.fidelityReconfigured);
        EXPECT_EQ(r.metrics.backend.fidelityUniform,
                  metrics.backend.fidelityUniform);
        EXPECT_EQ(r.metrics.schedule.makespan,
                  metrics.schedule.makespan);
    }
}

TEST(PassManagerEquivalence, ServiceNoBackendMatchesLegacySequence)
{
    service::ServiceOptions sopts;
    sopts.threads = 1;
    service::CompileService svc(sopts);

    const Circuit input = loadExample(kExampleQasm[2]);  // adder5
    service::CompileRequest req;
    req.name = "adder5";
    req.input = input;
    req.pipeline = service::Pipeline::Full;
    req.schedule = true;
    req.scheduleOptions.strategy = isa::Strategy::Alap;
    req.calibrate = false;
    const service::JobResult r = svc.wait(svc.submit(req));
    ASSERT_TRUE(r.ok) << r.error;

    compiler::CompileOptions copts = req.options;
    // The service installs its synth memo; memo hits are re-verified
    // so artifacts are unchanged — compile standalone for the oracle.
    const CompileResult compiled = compiler::reqiscFull(input, copts);
    compiler::Metrics metrics = compiler::evaluate(
        compiled.circuit,
        compiler::reqiscDurationModel(sopts.coupling));
    isa::ScheduleOptions schopts = req.scheduleOptions;
    schopts.durations.coupling = sopts.coupling;
    const isa::Program program =
        isa::schedule(compiled.circuit, schopts);

    EXPECT_TRUE(
        circuitsIdentical(r.compiled.circuit, compiled.circuit));
    EXPECT_EQ(r.compiled.finalPermutation,
              compiled.finalPermutation);
    EXPECT_EQ(r.metrics.count2Q, metrics.count2Q);
    EXPECT_EQ(r.metrics.duration, metrics.duration);
    EXPECT_EQ(isa::toAssembly(r.program), isa::toAssembly(program));
    EXPECT_TRUE(r.routed.empty());
    EXPECT_TRUE(r.finalLayout.empty());
}

// ---- Pipeline-spec parsing ---------------------------------------------

TEST(PipelineSpec, ParsesNamedAndCustomSpecs)
{
    PipelineSpec spec;
    std::string error;

    EXPECT_TRUE(compiler::parsePipelineSpec("eff", spec, error));
    EXPECT_EQ(spec.kind, PipelineSpec::Kind::Eff);
    EXPECT_TRUE(spec.passes.empty());

    EXPECT_TRUE(compiler::parsePipelineSpec("full", spec, error));
    EXPECT_EQ(spec.kind, PipelineSpec::Kind::Full);

    EXPECT_TRUE(compiler::parsePipelineSpec(
        "custom:synth,mirror,route,schedule:asap", spec, error));
    EXPECT_EQ(spec.kind, PipelineSpec::Kind::Custom);
    const std::vector<std::string> want = {"synth", "mirror",
                                           "route",
                                           "schedule:asap"};
    EXPECT_EQ(spec.passes, want);

    EXPECT_TRUE(compiler::parsePipelineSpec("custom:hier-synth:nc",
                                            spec, error));
    EXPECT_EQ(spec.passes,
              std::vector<std::string>{"hier-synth:nc"});

    // Every registered token parses as a one-pass custom list.
    for (const compiler::PassInfo &info : compiler::passRegistry()) {
        EXPECT_TRUE(compiler::parsePipelineSpec(
            "custom:" + info.token, spec, error))
            << info.token << ": " << error;
        for (const std::string &arg : info.args)
            EXPECT_TRUE(compiler::parsePipelineSpec(
                "custom:" + info.token + ":" + arg, spec, error))
                << info.token << ":" << arg << ": " << error;
    }
}

TEST(PipelineSpec, RejectsMalformedSpecs)
{
    PipelineSpec spec;
    std::string error;

    EXPECT_FALSE(compiler::parsePipelineSpec("", spec, error));
    EXPECT_NE(error.find("unknown pipeline"), std::string::npos);

    EXPECT_FALSE(compiler::parsePipelineSpec("best", spec, error));
    EXPECT_NE(error.find("unknown pipeline 'best'"),
              std::string::npos);

    EXPECT_FALSE(compiler::parsePipelineSpec("custom:", spec,
                                             error));
    EXPECT_NE(error.find("empty pass name"), std::string::npos);

    EXPECT_FALSE(compiler::parsePipelineSpec("custom:synth,,fuse",
                                             spec, error));
    EXPECT_NE(error.find("empty pass name"), std::string::npos);

    EXPECT_FALSE(compiler::parsePipelineSpec("custom:synth,",
                                             spec, error));

    EXPECT_FALSE(compiler::parsePipelineSpec("custom:bogus", spec,
                                             error));
    EXPECT_NE(error.find("unknown pass 'bogus'"),
              std::string::npos);

    EXPECT_FALSE(compiler::parsePipelineSpec(
        "custom:schedule:sideways", spec, error));
    EXPECT_NE(error.find("does not accept argument 'sideways'"),
              std::string::npos);

    EXPECT_FALSE(compiler::parsePipelineSpec("custom:synth:nc",
                                             spec, error));
    EXPECT_NE(error.find("does not accept argument"),
              std::string::npos);

    // A dangling colon is a truncated argument, not the bare pass.
    EXPECT_FALSE(compiler::parsePipelineSpec("custom:hier-synth:",
                                             spec, error));
    EXPECT_NE(error.find("empty argument"), std::string::npos);
    EXPECT_FALSE(compiler::parsePipelineSpec("custom:fuse:", spec,
                                             error));
    EXPECT_FALSE(compiler::parsePipelineSpec("custom:schedule:",
                                             spec, error));

    // Spec names are case-sensitive and unpadded, per the grammar.
    EXPECT_FALSE(compiler::parsePipelineSpec("Eff", spec, error));
    EXPECT_FALSE(compiler::parsePipelineSpec("custom: synth", spec,
                                             error));
}

TEST(PipelineSpec, EveryRegistryTokenInstantiates)
{
    for (const compiler::PassInfo &info : compiler::passRegistry()) {
        std::string error;
        EXPECT_NE(compiler::makePass(info.token, error), nullptr)
            << info.token << ": " << error;
        for (const std::string &arg : info.args)
            EXPECT_NE(compiler::makePass(info.token + ":" + arg,
                                         error),
                      nullptr)
                << info.token << ":" << arg << ": " << error;
    }
    std::string error;
    EXPECT_EQ(compiler::makePass("bogus", error), nullptr);
    EXPECT_NE(error.find("unknown pass"), std::string::npos);
}

TEST(PipelineSpec, ServiceCapturesMalformedSpecAsJobError)
{
    service::CompileService svc{service::ServiceOptions{}};
    service::CompileRequest req;
    req.name = "bad-spec";
    req.input = loadExample(kExampleQasm[1]);
    req.pipelineSpec = "custom:synth,bogus";
    const service::JobResult r = svc.wait(svc.submit(req));
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("unknown pass 'bogus'"),
              std::string::npos);
}

TEST(PipelineSpec, ServiceAppendsEstimateToCustomLists)
{
    service::CompileService svc{service::ServiceOptions{}};
    service::CompileRequest req;
    req.name = "custom";
    req.input = loadExample(kExampleQasm[1]);
    req.pipelineSpec = "custom:synth,group-pauli,fuse,lower";
    req.calibrate = false;
    const service::JobResult r = svc.wait(svc.submit(req));
    ASSERT_TRUE(r.ok) << r.error;
    ASSERT_EQ(r.metrics.passes.size(), 5u);
    EXPECT_EQ(r.metrics.passes.back().pass, "estimate");
    EXPECT_GT(r.metrics.count2Q, 0);  // estimate actually ran
}

TEST(PipelineSpec, ServiceAppendsScheduleToCustomListsWhenRequested)
{
    service::CompileService svc{service::ServiceOptions{}};
    const Circuit input = loadExample(kExampleQasm[1]);

    // schedule=true + a list without a schedule pass: appended.
    service::CompileRequest req;
    req.name = "custom-sched";
    req.input = input;
    req.pipelineSpec = "custom:synth,group-pauli,fuse,lower";
    req.schedule = true;
    req.scheduleOptions.strategy = isa::Strategy::Asap;
    req.calibrate = false;
    const service::JobResult r = svc.wait(svc.submit(req));
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.metrics.passes.back().pass, "schedule");
    EXPECT_TRUE(r.metrics.schedule.scheduled);
    EXPECT_FALSE(r.program.instructions().empty());

    // An explicit schedule:X token wins: nothing is appended twice.
    service::CompileRequest req2 = req;
    req2.pipelineSpec =
        "custom:synth,group-pauli,fuse,lower,schedule:alap";
    const service::JobResult r2 = svc.wait(svc.submit(req2));
    ASSERT_TRUE(r2.ok) << r2.error;
    int schedule_passes = 0;
    for (const auto &t : r2.metrics.passes)
        schedule_passes += t.pass.rfind("schedule", 0) == 0;
    EXPECT_EQ(schedule_passes, 1);
    EXPECT_TRUE(r2.metrics.schedule.scheduled);
}

// ---- PassTrace invariants ----------------------------------------------

TEST(PassTrace, NamedFullPipelineTraceIsChainedAndConsistent)
{
    service::CompileService svc{service::ServiceOptions{}};
    service::CompileRequest req;
    req.name = "trace";
    req.input = loadExample(kExampleQasm[3]);  // ising6
    req.pipeline = service::Pipeline::Full;
    req.schedule = true;
    req.calibrate = false;
    const service::JobResult r = svc.wait(svc.submit(req));
    ASSERT_TRUE(r.ok) << r.error;

    const auto &trace = r.metrics.passes;
    const std::vector<std::string> want = {
        "synth", "group-pauli", "fuse", "hier-synth", "mirror",
        "lower", "estimate", "schedule"};
    ASSERT_EQ(trace.size(), want.size());
    for (size_t i = 0; i < trace.size(); ++i) {
        EXPECT_EQ(trace[i].pass, want[i]);
        EXPECT_GE(trace[i].seconds, 0.0);
        EXPECT_GE(trace[i].gatesBefore, 0);
        EXPECT_GE(trace[i].gatesAfter, 0);
        EXPECT_GE(trace[i].count2QBefore, 0);
        EXPECT_GE(trace[i].count2QAfter, 0);
        if (i > 0) {
            // Nothing mutates the artifact between passes.
            EXPECT_EQ(trace[i].gatesBefore, trace[i - 1].gatesAfter);
            EXPECT_EQ(trace[i].count2QBefore,
                      trace[i - 1].count2QAfter);
        }
    }
    // The final artifact the trace saw is what the metrics report.
    EXPECT_EQ(trace.back().count2QAfter, r.metrics.count2Q);
    EXPECT_EQ(static_cast<int>(r.compiled.circuit.size()),
              trace.back().gatesAfter);
    // Makespan appears in the trace exactly from the schedule pass.
    for (const auto &t : trace) {
        if (t.pass == "schedule")
            EXPECT_EQ(t.makespanAfter, r.metrics.schedule.makespan);
        else
            EXPECT_EQ(t.makespanAfter, 0.0);
    }
    EXPECT_GT(r.metrics.schedule.makespan, 0.0);
}

TEST(PassTrace, WrapperTraceMatchesJobArtifactDeltas)
{
    // Two back-to-back runs produce identical artifact deltas
    // (seconds may differ; nothing else may).
    const Circuit input = loadExample(kExampleQasm[0]);
    service::ServiceOptions sopts;
    sopts.enableSynthCache = false;
    sopts.enablePulseCache = false;
    std::vector<compiler::PassTrace> traces[2];
    for (int run = 0; run < 2; ++run) {
        service::CompileService svc(sopts);
        service::CompileRequest req;
        req.input = input;
        req.calibrate = false;
        const service::JobResult r = svc.wait(svc.submit(req));
        ASSERT_TRUE(r.ok) << r.error;
        traces[run] = r.metrics.passes;
    }
    ASSERT_EQ(traces[0].size(), traces[1].size());
    for (size_t i = 0; i < traces[0].size(); ++i) {
        EXPECT_EQ(traces[0][i].pass, traces[1][i].pass);
        EXPECT_EQ(traces[0][i].gatesBefore,
                  traces[1][i].gatesBefore);
        EXPECT_EQ(traces[0][i].gatesAfter, traces[1][i].gatesAfter);
        EXPECT_EQ(traces[0][i].count2QBefore,
                  traces[1][i].count2QBefore);
        EXPECT_EQ(traces[0][i].count2QAfter,
                  traces[1][i].count2QAfter);
        EXPECT_EQ(traces[0][i].makespanAfter,
                  traces[1][i].makespanAfter);
    }
}

// ---- Intra-job parallel block resynthesis ------------------------------

TEST(ParallelHierSynth, BitIdenticalAtEveryWorkerCountOnEveryExample)
{
    // hier-synth fans its independent block solves out over a
    // synth::BlockPool when CompileOptions::synthPool is set; the
    // compiled artifacts must be bit-identical to the serial path at
    // every worker count, with and without a shared memo.
    for (const std::string &rel : kExampleQasm) {
        const Circuit input = loadExample(rel);
        const CompileOptions opts;
        const CompileResult serial =
            compiler::reqiscFull(input, opts);

        for (int workers : {2, 4}) {
            synth::BlockPool pool(workers - 1);
            CompileOptions par = opts;
            par.synthPool = &pool;
            expectSameCompile(
                compiler::reqiscFull(input, par), serial,
                rel + " workers=" + std::to_string(workers));
        }

        // Pool + shared cache together (the service configuration):
        // two runs (cold then warm) both match the serial oracle.
        synth::BlockPool pool(3);
        service::SynthCache cache;
        CompileOptions par = opts;
        par.synthPool = &pool;
        par.synthMemo = &cache;
        expectSameCompile(compiler::reqiscFull(input, par), serial,
                          rel + " pool+memo cold");
        expectSameCompile(compiler::reqiscFull(input, par), serial,
                          rel + " pool+memo warm");
    }
}

TEST(ParallelHierSynth, TraceNoteReportsWorkerCount)
{
    const Circuit input = loadExample(kExampleQasm[1]);  // qft4
    synth::BlockPool pool(3);
    CompileOptions opts;
    opts.synthPool = &pool;
    CompilationUnit unit = CompilationUnit::forInput(input, opts);
    PassManager pm;
    std::string error;
    PipelineSpec spec;
    spec.kind = PipelineSpec::Kind::Custom;
    spec.passes =
        compiler::compilePassList(PipelineSpec::Kind::Full, opts);
    ASSERT_TRUE(compiler::buildPipeline(spec, opts, pm, error))
        << error;
    pm.run(unit);
    bool saw_hier_synth = false;
    for (const compiler::PassTrace &t : unit.metrics.passes) {
        if (t.pass == "hier-synth") {
            saw_hier_synth = true;
            EXPECT_EQ(t.note, "workers=4");
        } else {
            EXPECT_TRUE(t.note.empty()) << t.pass;
        }
    }
    EXPECT_TRUE(saw_hier_synth);
}
