/**
 * @file
 * Tests for the numeric instantiation engine, approximate synthesis
 * and the 3Q template library.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "circuit/lower.hh"
#include "qmath/random.hh"
#include "qsim/statevector.hh"
#include "synth/instantiate.hh"
#include "synth/synthesis.hh"
#include "synth/templates.hh"
#include "test_util.hh"

using namespace reqisc;
using namespace reqisc::circuit;
using namespace reqisc::qmath;
using namespace reqisc::synth;

TEST(Instantiate, LiftGateMatchesSimulator)
{
    Rng rng(201);
    Matrix g = randomUnitary(4, rng);
    Matrix lifted = liftGate(g, {0, 2}, 3);
    Circuit c(3);
    c.add(Gate::u4(0, 2, g));
    EXPECT_MATRIX_NEAR(lifted, qsim::buildUnitary(c), 1e-12);
}

TEST(Instantiate, SingleFreeBlockRecoversTarget)
{
    Rng rng(203);
    Matrix target = randomUnitary(4, rng);
    std::vector<Slot> slots = {Slot::free2Q(0, 1)};
    InstantiateResult r = instantiate(target, 2, slots);
    ASSERT_TRUE(r.converged);
    EXPECT_LT(r.infidelity, 1e-11);
    EXPECT_TRUE(r.slots[0].value.approxEqualUpToPhase(target, 1e-5));
}

TEST(Instantiate, FixedSlotsOnlyFreeOneQubit)
{
    // target = (u1 x u2) CX: free 1Q layers around a fixed CX.
    Rng rng(207);
    Matrix u1 = randomSU2(rng), u2 = randomSU2(rng);
    Matrix target = kron(u1, u2) * Gate::cx(0, 1).matrix();
    std::vector<Slot> slots = {
        Slot::fixed({0, 1}, Gate::cx(0, 1).matrix()),
        Slot::free1Q(0), Slot::free1Q(1)};
    InstantiateResult r = instantiate(target, 2, slots);
    ASSERT_TRUE(r.converged);
    EXPECT_LT(r.infidelity, 1e-11);
}

TEST(Instantiate, ThreeQubitRandomWithFiveBlocks)
{
    Rng rng(211);
    Matrix target = randomUnitary(8, rng);
    std::vector<Slot> slots;
    const std::pair<int, int> seq[] = {{0, 1}, {1, 2}, {0, 2},
                                       {0, 1}, {1, 2}};
    for (auto [a, b] : seq)
        slots.push_back(Slot::free2Q(a, b));
    for (int q = 0; q < 3; ++q)
        slots.push_back(Slot::free1Q(q));
    InstantiateOptions opts;
    opts.restarts = 5;
    opts.maxSweeps = 800;
    InstantiateResult r = instantiate(target, 3, slots, opts);
    // Five blocks cannot always express Haar targets exactly, but
    // they get very close; six blocks must converge (tested below via
    // synthesizeBlock). Here just require substantial progress.
    EXPECT_LT(r.infidelity, 0.05);
}

TEST(Synthesis, LowerBounds)
{
    // Section 5.1.1: b_SU4(3) = 6, b_CNOT(3) = 14 (ceil(54/4)).
    EXPECT_EQ(su4LowerBound(2), 1);
    EXPECT_EQ(su4LowerBound(3), 6);
    EXPECT_EQ(cnotLowerBound(2), 3);
    EXPECT_EQ(cnotLowerBound(3), 14);
}

TEST(Synthesis, RandomThreeQubitTarget)
{
    Rng rng(213);
    Matrix target = randomUnitary(8, rng);
    SynthesisOptions opts;
    opts.tol = 1e-8;
    SynthesisResult r = synthesizeBlock(target, {0, 1, 2}, opts);
    ASSERT_TRUE(r.success);
    EXPECT_GE(r.blockCount, su4LowerBound(3));
    EXPECT_LE(r.blockCount, 7);
    Circuit c(3);
    for (const Gate &g : r.gates)
        c.add(g);
    EXPECT_TRUE(qsim::buildUnitary(c).approxEqualUpToPhase(
        target, 1e-3));
}

TEST(Synthesis, StructuredTargetUsesFewerBlocks)
{
    // A CCX-like target needs far fewer than six blocks.
    Matrix target = Gate::ccx(0, 1, 2).matrix();
    SynthesisOptions opts;
    opts.tol = 1e-9;
    SynthesisResult r = synthesizeBlock(target, {0, 1, 2}, opts);
    ASSERT_TRUE(r.success);
    // Yu et al.: five two-qubit gates are necessary and sufficient
    // for the Toffoli gate.
    EXPECT_LE(r.blockCount, 5);
    Circuit c(3);
    for (const Gate &g : r.gates)
        c.add(g);
    EXPECT_TRUE(qsim::buildUnitary(c).approxEqualUpToPhase(
        target, 1e-3));
}

TEST(Synthesis, TwoQubitBlockTrivial)
{
    Rng rng(217);
    Matrix target = randomUnitary(4, rng);
    SynthesisResult r = synthesizeBlock(target, {5, 7});
    ASSERT_TRUE(r.success);
    EXPECT_EQ(r.blockCount, 1);
    EXPECT_EQ(r.gates[0].qubits[0], 5);
    EXPECT_EQ(r.gates[0].qubits[1], 7);
}

TEST(Synthesis, LocalTargetZeroBlocks)
{
    Rng rng(219);
    Matrix target = kron(kron(randomSU2(rng), randomSU2(rng)),
                         randomSU2(rng));
    SynthesisResult r = synthesizeBlock(target, {0, 1, 2});
    ASSERT_TRUE(r.success);
    EXPECT_EQ(r.blockCount, 0);
}

TEST(Synthesis, Su4ToCnotsGenericUsesThree)
{
    Rng rng(223);
    for (int rep = 0; rep < 5; ++rep) {
        Matrix u = randomUnitary(4, rng);
        auto gates = su4ToCnots(0, 1, u);
        Circuit c(2);
        int cx = 0;
        for (const Gate &g : gates) {
            c.add(g);
            if (g.op == Op::CX)
                ++cx;
        }
        EXPECT_LE(cx, 3) << "rep " << rep;
        EXPECT_TRUE(qsim::buildUnitary(c).approxEqualUpToPhase(
            u, 1e-4))
            << "rep " << rep;
    }
}

TEST(Synthesis, Su4ToCnotsSpecialClasses)
{
    auto cxCount = [](const Matrix &u) {
        int cx = 0;
        for (const Gate &g : su4ToCnots(0, 1, u))
            if (g.op == Op::CX)
                ++cx;
        return cx;
    };
    EXPECT_EQ(cxCount(Gate::cz(0, 1).matrix()), 1);
    EXPECT_EQ(cxCount(Gate::iswap(0, 1).matrix()), 2);
    EXPECT_LE(cxCount(Gate::swap(0, 1).matrix()), 3);
    Rng rng(227);
    EXPECT_EQ(cxCount(kron(randomSU2(rng), randomSU2(rng))), 0);
}

TEST(Templates, CcxVariantsCorrect)
{
    auto &lib = TemplateLibrary::instance();
    const auto &vs = lib.variants(Op::CCX);
    ASSERT_FALSE(vs.empty());
    const Matrix target = Gate::ccx(0, 1, 2).matrix();
    for (const auto &e : vs) {
        Circuit c(3);
        for (const Gate &g : e.gates)
            c.add(g);
        EXPECT_TRUE(qsim::buildUnitary(c).approxEqualUpToPhase(
            target, 1e-3));
        EXPECT_LE(e.canCount, 5);
    }
}

TEST(Templates, CcxBeatsCnotTemplateCount)
{
    // SU(4) templates must use fewer 2Q blocks than the 6-CX circuit.
    auto &lib = TemplateLibrary::instance();
    EXPECT_LE(lib.minBlocks(Op::CCX), 5);
}

TEST(Templates, EccVariantsOfferDifferentBoundaryPairs)
{
    auto &lib = TemplateLibrary::instance();
    const auto &vs = lib.variants(Op::CCX);
    // Control permutability + self-inverse must yield more than one
    // distinct (first, last) pair signature.
    std::set<std::pair<std::pair<int, int>, std::pair<int, int>>> sig;
    for (const auto &e : vs)
        sig.insert({e.firstPair, e.lastPair});
    EXPECT_GT(sig.size(), 1u);
}

TEST(Templates, PickPrefersRequestedPair)
{
    auto &lib = TemplateLibrary::instance();
    const auto &vs = lib.variants(Op::CCX);
    std::set<std::pair<int, int>> firsts;
    for (const auto &e : vs)
        firsts.insert(e.firstPair);
    for (const auto &f : firsts) {
        const auto &e = lib.pick(Op::CCX, f);
        EXPECT_EQ(e.firstPair, f);
    }
}

TEST(Templates, OtherIrsSynthesize)
{
    auto &lib = TemplateLibrary::instance();
    for (Op op : {Op::CCZ, Op::CSWAP, Op::PERES}) {
        const auto &vs = lib.variants(op);
        ASSERT_FALSE(vs.empty()) << opName(op);
        Gate ir;
        switch (op) {
          case Op::CCZ: ir = Gate::ccz(0, 1, 2); break;
          case Op::CSWAP: ir = Gate::cswap(0, 1, 2); break;
          default: ir = Gate::peres(0, 1, 2); break;
        }
        const Matrix target = ir.matrix();
        Circuit c(3);
        for (const Gate &g : vs.front().gates)
            c.add(g);
        EXPECT_TRUE(qsim::buildUnitary(c).approxEqualUpToPhase(
            target, 1e-3))
            << opName(op);
    }
}
