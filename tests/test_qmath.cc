/**
 * @file
 * Unit and property tests for the qmath substrate.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "qmath/eig.hh"
#include "qmath/expm.hh"
#include "qmath/matrix.hh"
#include "qmath/optimize.hh"
#include "qmath/random.hh"
#include "qmath/svd.hh"
#include "test_util.hh"

using namespace reqisc;
using namespace reqisc::qmath;

TEST(Matrix, IdentityAndMultiply)
{
    Matrix id = Matrix::identity(3);
    Matrix a(3, 3);
    for (int i = 0; i < 3; ++i)
        for (int j = 0; j < 3; ++j)
            a(i, j) = Complex(i + 1, j - 1);
    EXPECT_MATRIX_NEAR(a * id, a, 1e-15);
    EXPECT_MATRIX_NEAR(id * a, a, 1e-15);
}

TEST(Matrix, DaggerInvolution)
{
    Rng rng(7);
    Matrix a = randomGinibre(4, rng);
    EXPECT_MATRIX_NEAR(a.dagger().dagger(), a, 1e-15);
}

TEST(Matrix, TraceOfProductCyclic)
{
    Rng rng(11);
    Matrix a = randomGinibre(4, rng);
    Matrix b = randomGinibre(4, rng);
    Complex t1 = (a * b).trace();
    Complex t2 = (b * a).trace();
    EXPECT_NEAR(std::abs(t1 - t2), 0.0, 1e-10);
}

TEST(Matrix, KronMixedProduct)
{
    // (A (x) B)(C (x) D) = AC (x) BD.
    Rng rng(13);
    Matrix a = randomGinibre(2, rng), b = randomGinibre(2, rng);
    Matrix c = randomGinibre(2, rng), d = randomGinibre(2, rng);
    EXPECT_MATRIX_NEAR(kron(a, b) * kron(c, d), kron(a * c, b * d),
                       1e-9);
}

TEST(Matrix, PauliAlgebra)
{
    EXPECT_MATRIX_NEAR(pauliX() * pauliX(), Matrix::identity(2), 1e-15);
    EXPECT_MATRIX_NEAR(pauliY() * pauliY(), Matrix::identity(2), 1e-15);
    EXPECT_MATRIX_NEAR(pauliZ() * pauliZ(), Matrix::identity(2), 1e-15);
    // XY = iZ
    EXPECT_MATRIX_NEAR(pauliX() * pauliY(), pauliZ() * kI, 1e-15);
    // Two-qubit products commute pairwise.
    Matrix c1 = pauliXX() * pauliYY() - pauliYY() * pauliXX();
    EXPECT_NEAR(c1.maxAbs(), 0.0, 1e-15);
}

TEST(Matrix, ApproxEqualUpToPhase)
{
    Rng rng(17);
    Matrix u = randomUnitary(4, rng);
    Matrix v = u * std::exp(Complex(0.0, 1.234));
    EXPECT_TRUE(u.approxEqualUpToPhase(v, 1e-12));
    EXPECT_FALSE(u.approxEqual(v, 1e-12));
}

TEST(Matrix, KronFactorExact)
{
    Rng rng(19);
    for (int rep = 0; rep < 20; ++rep) {
        Matrix a = randomSU2(rng), b = randomSU2(rng);
        Matrix m = kron(a, b);
        Matrix fa, fb;
        double resid = kronFactor2x2(m, fa, fb);
        EXPECT_LT(resid, 1e-8);
        EXPECT_MATRIX_NEAR(kron(fa, fb), m, 1e-8);
    }
}

class EighProperty : public ::testing::TestWithParam<int> {};

TEST_P(EighProperty, RandomHermitianRoundTrip)
{
    const int n = GetParam();
    Rng rng(100 + n);
    for (int rep = 0; rep < 10; ++rep) {
        Matrix h = randomHermitian(n, rng);
        EigResult e = eigh(h);
        EXPECT_TRUE(e.vectors.isUnitary(1e-10));
        Matrix d(n, n);
        for (int i = 0; i < n; ++i)
            d(i, i) = e.values[i];
        EXPECT_MATRIX_NEAR(e.vectors * d * e.vectors.dagger(), h, 1e-9);
        // Ascending order.
        for (int i = 1; i < n; ++i)
            EXPECT_LE(e.values[i - 1], e.values[i] + 1e-12);
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, EighProperty,
                         ::testing::Values(2, 3, 4, 6, 8));

TEST(Eigh, DiagonalMatrix)
{
    Matrix d(3, 3);
    d(0, 0) = 3.0; d(1, 1) = -1.0; d(2, 2) = 0.5;
    EigResult e = eigh(d);
    EXPECT_NEAR(e.values[0], -1.0, 1e-12);
    EXPECT_NEAR(e.values[1], 0.5, 1e-12);
    EXPECT_NEAR(e.values[2], 3.0, 1e-12);
}

TEST(Eigh, DegenerateSpectrum)
{
    // XX has eigenvalues {-1,-1,1,1}; check the reconstruction.
    EigResult e = eigh(pauliXX());
    Matrix d(4, 4);
    for (int i = 0; i < 4; ++i)
        d(i, i) = e.values[i];
    EXPECT_MATRIX_NEAR(e.vectors * d * e.vectors.dagger(), pauliXX(),
                       1e-10);
}

TEST(SimultaneousDiag, CommutingPair)
{
    // Build commuting symmetric real matrices from a shared eigenbasis.
    Rng rng(23);
    for (int rep = 0; rep < 10; ++rep) {
        // Random rotation via QR on a real matrix.
        Matrix g(4, 4);
        std::normal_distribution<double> nd(0.0, 1.0);
        for (int i = 0; i < 4; ++i)
            for (int j = 0; j < 4; ++j)
                g(i, j) = nd(rng);
        // Orthogonalize columns (Gram-Schmidt).
        for (int j = 0; j < 4; ++j) {
            for (int k = 0; k < j; ++k) {
                Complex p(0, 0);
                for (int i = 0; i < 4; ++i)
                    p += g(i, k) * g(i, j);
                for (int i = 0; i < 4; ++i)
                    g(i, j) -= p * g(i, k);
            }
            double nn = 0;
            for (int i = 0; i < 4; ++i)
                nn += std::norm(g(i, j));
            for (int i = 0; i < 4; ++i)
                g(i, j) *= Complex(1.0 / std::sqrt(nn), 0.0);
        }
        Matrix da(4, 4), db(4, 4);
        // Degenerate a-spectrum forces the cluster path.
        da(0, 0) = 1.0; da(1, 1) = 1.0; da(2, 2) = -2.0; da(3, 3) = 0.0;
        db(0, 0) = 5.0; db(1, 1) = -3.0; db(2, 2) = 7.0; db(3, 3) = 2.0;
        Matrix a = g * da * g.transpose();
        Matrix b = g * db * g.transpose();
        Matrix q = simultaneousDiagonalize(a, b);
        Matrix qa = q.transpose() * a * q;
        Matrix qb = q.transpose() * b * q;
        for (int i = 0; i < 4; ++i)
            for (int j = 0; j < 4; ++j)
                if (i != j) {
                    EXPECT_NEAR(std::abs(qa(i, j)), 0.0, 1e-7);
                    EXPECT_NEAR(std::abs(qb(i, j)), 0.0, 1e-7);
                }
        EXPECT_TRUE(q.isUnitary(1e-9));
    }
}

class SvdProperty : public ::testing::TestWithParam<int> {};

TEST_P(SvdProperty, RandomRoundTrip)
{
    const int n = GetParam();
    Rng rng(31 + n);
    for (int rep = 0; rep < 10; ++rep) {
        Matrix a = randomGinibre(n, rng);
        SvdResult r = svd(a);
        EXPECT_TRUE(r.u.isUnitary(1e-9));
        EXPECT_TRUE(r.v.isUnitary(1e-9));
        Matrix s(n, n);
        for (int i = 0; i < n; ++i) {
            s(i, i) = r.s[i];
            EXPECT_GE(r.s[i], 0.0);
            if (i > 0) {
                EXPECT_LE(r.s[i], r.s[i - 1] + 1e-12);
            }
        }
        EXPECT_MATRIX_NEAR(r.u * s * r.v.dagger(), a, 1e-8);
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SvdProperty,
                         ::testing::Values(2, 3, 4, 8));

TEST(Svd, RankDeficient)
{
    Matrix a(3, 3);
    a(0, 0) = 1.0;  // rank one
    SvdResult r = svd(a);
    EXPECT_NEAR(r.s[0], 1.0, 1e-12);
    EXPECT_NEAR(r.s[1], 0.0, 1e-12);
    EXPECT_NEAR(r.s[2], 0.0, 1e-12);
    EXPECT_TRUE(r.u.isUnitary(1e-9));
}

TEST(Svd, PolarUnitaryOfUnitaryIsItself)
{
    Rng rng(37);
    Matrix u = randomUnitary(4, rng);
    EXPECT_MATRIX_NEAR(polarUnitary(u), u, 1e-8);
}

TEST(Expm, MatchesSeriesForSmallGenerator)
{
    Rng rng(41);
    Matrix h = randomHermitian(4, rng);
    const double t = 0.01;
    // 4th order Taylor comparison.
    Matrix acc = Matrix::identity(4);
    Matrix term = Matrix::identity(4);
    for (int k = 1; k <= 8; ++k) {
        term = term * h * Complex(0.0, -t) * Complex(1.0 / k, 0.0);
        acc += term;
    }
    EXPECT_MATRIX_NEAR(expim(h, t), acc, 1e-10);
}

TEST(Expm, UnitaryAndInverse)
{
    Rng rng(43);
    Matrix h = randomHermitian(4, rng);
    Matrix u = expim(h, 0.7);
    EXPECT_TRUE(u.isUnitary(1e-10));
    EXPECT_MATRIX_NEAR(u * expimPlus(h, 0.7), Matrix::identity(4),
                       1e-10);
}

TEST(Expm, PauliRotationClosedForm)
{
    // exp(-i t X) = cos t I - i sin t X.
    const double t = 0.3;
    Matrix expect = Matrix::identity(2) * Complex(std::cos(t), 0.0) -
                    pauliX() * Complex(0.0, std::sin(t));
    EXPECT_MATRIX_NEAR(expim(pauliX(), t), expect, 1e-12);
}

TEST(Random, UnitaryIsUnitary)
{
    Rng rng(47);
    for (int n : {2, 4, 8}) {
        Matrix u = randomUnitary(n, rng);
        EXPECT_TRUE(u.isUnitary(1e-10));
    }
}

TEST(Random, SU2HasUnitDeterminant)
{
    Rng rng(53);
    for (int rep = 0; rep < 5; ++rep) {
        Matrix u = randomSU2(rng);
        Complex det = u(0, 0) * u(1, 1) - u(0, 1) * u(1, 0);
        EXPECT_NEAR(std::abs(det - Complex(1.0, 0.0)), 0.0, 1e-10);
    }
}

TEST(Random, Deterministic)
{
    Rng a(99), b(99);
    EXPECT_MATRIX_NEAR(randomUnitary(4, a), randomUnitary(4, b), 0.0);
}

TEST(Optimize, NelderMeadQuadratic)
{
    auto f = [](const std::vector<double> &x) {
        return (x[0] - 1.0) * (x[0] - 1.0) +
               10.0 * (x[1] + 2.0) * (x[1] + 2.0);
    };
    MinimizeResult r = nelderMead(f, {0.0, 0.0}, 0.5);
    EXPECT_NEAR(r.x[0], 1.0, 1e-5);
    EXPECT_NEAR(r.x[1], -2.0, 1e-5);
}

TEST(Optimize, NewtonSolve2D)
{
    // Roots of (x^2 + y^2 - 4, x - y).
    auto f = [](const std::vector<double> &v) {
        return std::vector<double>{v[0] * v[0] + v[1] * v[1] - 4.0,
                                   v[0] - v[1]};
    };
    RootResult r = newtonSolve(f, {1.0, 0.5});
    EXPECT_TRUE(r.converged);
    EXPECT_NEAR(std::abs(r.x[0]), std::sqrt(2.0), 1e-9);
    EXPECT_NEAR(r.x[0], r.x[1], 1e-9);
}

TEST(Optimize, Bisect)
{
    double root = bisect([](double x) { return x * x - 2.0; },
                         0.0, 2.0);
    EXPECT_NEAR(root, std::sqrt(2.0), 1e-12);
}
