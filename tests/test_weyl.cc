/**
 * @file
 * Tests for the Weyl chamber geometry and KAK decomposition.
 */

#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "qmath/expm.hh"
#include "qmath/random.hh"
#include "test_util.hh"
#include "weyl/su2.hh"
#include "weyl/weyl.hh"

using namespace reqisc;
using namespace reqisc::qmath;
using namespace reqisc::weyl;

namespace
{

constexpr double kPi = std::numbers::pi;

Matrix
cnotMatrix()
{
    Matrix m(4, 4);
    m(0, 0) = 1.0;
    m(1, 1) = 1.0;
    m(2, 3) = 1.0;
    m(3, 2) = 1.0;
    return m;
}

Matrix
czMatrix()
{
    Matrix m = Matrix::identity(4);
    m(3, 3) = -1.0;
    return m;
}

Matrix
swapMatrix()
{
    Matrix m(4, 4);
    m(0, 0) = 1.0;
    m(1, 2) = 1.0;
    m(2, 1) = 1.0;
    m(3, 3) = 1.0;
    return m;
}

Matrix
iswapMatrix()
{
    Matrix m(4, 4);
    m(0, 0) = 1.0;
    m(1, 2) = kI;
    m(2, 1) = kI;
    m(3, 3) = 1.0;
    return m;
}

} // namespace

TEST(CanonicalGate, MatchesExponential)
{
    Rng rng(61);
    std::uniform_real_distribution<double> d(-1.5, 1.5);
    for (int rep = 0; rep < 20; ++rep) {
        WeylCoord c{d(rng), d(rng), d(rng)};
        Matrix h = pauliXX() * Complex(c.x, 0.0) +
                   pauliYY() * Complex(c.y, 0.0) +
                   pauliZZ() * Complex(c.z, 0.0);
        EXPECT_MATRIX_NEAR(canonicalGate(c), expim(h), 1e-10);
    }
}

TEST(CanonicalGate, KnownGates)
{
    // Can(pi/4,0,0) is locally equivalent to CNOT; check unitarity and
    // the explicit CNOT coordinate below instead of matrix equality.
    EXPECT_TRUE(canonicalGate(WeylCoord::cnot()).isUnitary(1e-12));
    // Can(pi/4,pi/4,pi/4) is SWAP up to phase.
    Matrix s = canonicalGate(WeylCoord::swap());
    EXPECT_TRUE(s.approxEqualUpToPhase(swapMatrix(), 1e-12));
    // Can(pi/4,pi/4,0) is iSWAP up to phase/locals: its coordinate
    // must be the iSWAP point.
    EXPECT_TRUE(weylCoordinate(iswapMatrix())
                    .approxEqual(WeylCoord::iswap(), 1e-9));
}

TEST(MagicBasis, IsUnitaryAndDiagonalizesPaulis)
{
    const Matrix &m = magicBasis();
    EXPECT_TRUE(m.isUnitary(1e-14));
    for (const Matrix *p : {&pauliXX(), &pauliYY(), &pauliZZ()}) {
        Matrix d = m.dagger() * (*p) * m;
        for (int i = 0; i < 4; ++i)
            for (int j = 0; j < 4; ++j)
                if (i != j) {
                    EXPECT_NEAR(std::abs(d(i, j)), 0.0, 1e-12);
                }
    }
}

TEST(WeylCoord, ChamberMembership)
{
    EXPECT_TRUE(WeylCoord::identity().inChamber());
    EXPECT_TRUE(WeylCoord::cnot().inChamber());
    EXPECT_TRUE(WeylCoord::swap().inChamber());
    EXPECT_TRUE(WeylCoord::bgate().inChamber());
    // z < 0 is allowed off the x = pi/4 face ...
    EXPECT_TRUE((WeylCoord{0.5, 0.3, -0.2}).inChamber());
    // ... but not on it.
    EXPECT_FALSE((WeylCoord{kPi / 4.0, 0.3, -0.2}).inChamber());
    EXPECT_FALSE((WeylCoord{0.3, 0.5, 0.1}).inChamber());
    EXPECT_FALSE((WeylCoord{0.9, 0.3, 0.1}).inChamber());
}

TEST(Kak, KnownCoordinates)
{
    EXPECT_TRUE(weylCoordinate(cnotMatrix())
                    .approxEqual(WeylCoord::cnot(), 1e-9));
    EXPECT_TRUE(weylCoordinate(czMatrix())
                    .approxEqual(WeylCoord::cnot(), 1e-9));
    EXPECT_TRUE(weylCoordinate(swapMatrix())
                    .approxEqual(WeylCoord::swap(), 1e-9));
    EXPECT_TRUE(weylCoordinate(iswapMatrix())
                    .approxEqual(WeylCoord::iswap(), 1e-9));
    EXPECT_TRUE(weylCoordinate(Matrix::identity(4))
                    .approxEqual(WeylCoord::identity(), 1e-9));
}

TEST(Kak, LocalGatesHaveZeroCoordinate)
{
    Rng rng(67);
    for (int rep = 0; rep < 10; ++rep) {
        Matrix u = kron(randomSU2(rng), randomSU2(rng));
        EXPECT_TRUE(weylCoordinate(u).approxEqual(
            WeylCoord::identity(), 1e-8));
    }
}

class KakRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(KakRoundTrip, RandomUnitaries)
{
    Rng rng(1000 + GetParam());
    for (int rep = 0; rep < 25; ++rep) {
        Matrix u = randomUnitary(4, rng);
        KakDecomposition k = kakDecompose(u);
        EXPECT_TRUE(k.coord.inChamber(1e-8))
            << "coord " << k.coord.toString();
        EXPECT_MATRIX_NEAR(k.reconstruct(), u, 1e-9);
        // Factors are in SU(2).
        for (const Matrix *f : {&k.a1, &k.a2, &k.b1, &k.b2}) {
            EXPECT_TRUE(f->isUnitary(1e-9));
            Complex det = (*f)(0, 0) * (*f)(1, 1) -
                          (*f)(0, 1) * (*f)(1, 0);
            EXPECT_NEAR(std::abs(det - Complex(1.0, 0.0)), 0.0, 1e-8);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KakRoundTrip,
                         ::testing::Range(0, 8));

TEST(Kak, CanonicalGateRoundTrip)
{
    // Coordinates already in the chamber must be recovered exactly.
    Rng rng(71);
    std::uniform_real_distribution<double> d(0.0, 1.0);
    for (int rep = 0; rep < 30; ++rep) {
        double x = d(rng) * kPi / 4.0;
        double y = d(rng) * x;
        double z = (2.0 * d(rng) - 1.0) * y;
        if (std::abs(x - kPi / 4.0) < 1e-6)
            z = std::abs(z);
        WeylCoord c{x, y, z};
        WeylCoord got = weylCoordinate(canonicalGate(c));
        EXPECT_TRUE(got.approxEqual(c, 1e-8))
            << "in " << c.toString() << " out " << got.toString();
    }
}

TEST(Kak, InvariantUnderLocalGates)
{
    Rng rng(73);
    for (int rep = 0; rep < 15; ++rep) {
        Matrix u = randomUnitary(4, rng);
        Matrix l = kron(randomSU2(rng), randomSU2(rng));
        Matrix r = kron(randomSU2(rng), randomSU2(rng));
        EXPECT_TRUE(locallyEquivalent(u, l * u * r, 1e-7));
    }
}

TEST(Kak, HardEdgeCases)
{
    // Gates sitting exactly on chamber boundaries and corners.
    std::vector<WeylCoord> cases = {
        WeylCoord::identity(), WeylCoord::cnot(), WeylCoord::iswap(),
        WeylCoord::swap(), WeylCoord::bgate(), WeylCoord::sqisw(),
        {kPi / 4.0, kPi / 8.0, kPi / 8.0},   // ECP
        {kPi / 4.0, kPi / 4.0, kPi / 8.0},   // QFT corner point
        {1e-9, 1e-10, 0.0},                  // near identity
        {kPi / 4.0, 1e-9, 1e-9},             // near CNOT
    };
    for (const auto &c : cases) {
        Matrix u = canonicalGate(c);
        KakDecomposition k = kakDecompose(u);
        EXPECT_TRUE(k.coord.inChamber(1e-7));
        EXPECT_MATRIX_NEAR(k.reconstruct(), u, 1e-8);
        EXPECT_TRUE(k.coord.approxEqual(c, 1e-7))
            << "in " << c.toString() << " out "
            << k.coord.toString();
    }
}

TEST(Mirror, CoordinateFormula)
{
    // SWAP * Can(c) must be locally equivalent to Can(mirror(c)).
    Rng rng(79);
    for (int rep = 0; rep < 20; ++rep) {
        WeylCoord c = randomWeylCoord(rng);
        Matrix lhs = swapMatrix() * canonicalGate(c);
        WeylCoord m = mirrorCoord(c);
        EXPECT_TRUE(m.inChamber(1e-7))
            << "c " << c.toString() << " mirror " << m.toString();
        EXPECT_TRUE(weylCoordinate(lhs).approxEqual(m, 1e-7))
            << "c " << c.toString() << " mirror " << m.toString()
            << " actual " << weylCoordinate(lhs).toString();
    }
}

TEST(Mirror, NearIdentityMovesFarFromOrigin)
{
    WeylCoord tiny{0.01, 0.005, 0.001};
    WeylCoord m = mirrorCoord(tiny);
    EXPECT_GT(m.norm1(), 1.0);
    // Mirroring twice returns to the original point.
    EXPECT_TRUE(mirrorCoord(m).approxEqual(tiny, 1e-12));
}

TEST(Mirror, SwapMapsToIdentityAndBack)
{
    EXPECT_TRUE(mirrorCoord(WeylCoord::swap())
                    .approxEqual(WeylCoord::identity(), 1e-12));
    EXPECT_TRUE(mirrorCoord(WeylCoord::identity())
                    .approxEqual(WeylCoord::swap(), 1e-12));
}

TEST(U3, RoundTripRandom)
{
    Rng rng(83);
    for (int rep = 0; rep < 30; ++rep) {
        Matrix u = randomSU2(rng);
        U3Angles a = u3Angles(u);
        Matrix back = u3Matrix(a.theta, a.phi, a.lambda) *
                      std::exp(Complex(0.0, a.phase));
        EXPECT_MATRIX_NEAR(back, u, 1e-10);
    }
}

TEST(U3, DiagonalAndAntiDiagonal)
{
    Matrix rz{{std::exp(Complex(0.0, -0.4)), 0.0},
              {0.0, std::exp(Complex(0.0, 0.4))}};
    U3Angles a = u3Angles(rz);
    EXPECT_MATRIX_NEAR(u3Matrix(a.theta, a.phi, a.lambda) *
                           std::exp(Complex(0.0, a.phase)),
                       rz, 1e-10);
    U3Angles b = u3Angles(pauliX());
    EXPECT_MATRIX_NEAR(u3Matrix(b.theta, b.phi, b.lambda) *
                           std::exp(Complex(0.0, b.phase)),
                       pauliX(), 1e-10);
    U3Angles c = u3Angles(pauliY());
    EXPECT_MATRIX_NEAR(u3Matrix(c.theta, c.phi, c.lambda) *
                           std::exp(Complex(0.0, c.phase)),
                       pauliY(), 1e-10);
}
