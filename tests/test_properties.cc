/**
 * @file
 * Cross-module property sweeps: parameterized invariants that stress
 * boundary regions and randomized inputs harder than the per-module
 * unit tests.
 */

#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "circuit/lower.hh"
#include "compiler/baselines.hh"
#include "compiler/passes.hh"
#include "compiler/pipeline.hh"
#include "qmath/expm.hh"
#include "qmath/optimize.hh"
#include "qmath/random.hh"
#include "qsim/statevector.hh"
#include "service/cache.hh"
#include "suite/suite.hh"
#include "synth/synthesis.hh"
#include "test_util.hh"
#include "uarch/genashn.hh"
#include "weyl/invariants.hh"
#include "weyl/weyl.hh"

using namespace reqisc;
using namespace reqisc::qmath;
using reqisc::weyl::WeylCoord;

namespace
{

constexpr double kPi = std::numbers::pi;

} // namespace

// ---- Weyl chamber / canonicalization sweeps ---------------------------

class CanonSweep : public ::testing::TestWithParam<int> {};

TEST_P(CanonSweep, ArbitraryCoordinatesCanonicalizeConsistently)
{
    // Build canonical gates from far-out-of-chamber coordinates and
    // check that KAK (a) lands in the chamber, (b) reconstructs, and
    // (c) agrees with the Makhlin invariants of the raw gate.
    Rng rng(5000 + GetParam());
    std::uniform_real_distribution<double> d(-8.0, 8.0);
    for (int rep = 0; rep < 10; ++rep) {
        WeylCoord raw{d(rng), d(rng), d(rng)};
        Matrix u = weyl::canonicalGate(raw);
        weyl::KakDecomposition k = weyl::kakDecompose(u);
        EXPECT_TRUE(k.coord.inChamber(1e-7)) << raw.toString();
        EXPECT_LT((k.reconstruct() - u).maxAbs(), 1e-8)
            << raw.toString();
        EXPECT_TRUE(weyl::makhlinInvariants(u).approxEqual(
            weyl::makhlinFromCoord(k.coord), 1e-7))
            << raw.toString();
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CanonSweep, ::testing::Range(0, 6));

TEST(WeylProperties, MirrorIsInvolutionAcrossChamber)
{
    Rng rng(311);
    for (int rep = 0; rep < 40; ++rep) {
        WeylCoord c = weyl::randomWeylCoord(rng);
        WeylCoord m = weyl::mirrorCoord(c);
        EXPECT_TRUE(m.inChamber(1e-9)) << c.toString();
        // Involution modulo the x = pi/4 face identification.
        WeylCoord mm = weyl::mirrorCoord(m);
        Matrix a = weyl::canonicalGate(mm);
        Matrix b = weyl::canonicalGate(c);
        EXPECT_TRUE(weyl::locallyEquivalentFast(a, b, 1e-8))
            << c.toString();
    }
}

TEST(WeylProperties, DurationInvariantUnderMirrorPair)
{
    // tau_opt treats (x,y,z) and its pi/2-x mirror identically by
    // construction: solving either reaches the same gate class.
    Rng rng(313);
    const uarch::Coupling cpl = uarch::Coupling::random(rng);
    for (int rep = 0; rep < 20; ++rep) {
        WeylCoord c = weyl::randomWeylCoord(rng);
        const double t1 = uarch::optimalDuration(cpl, c);
        // Mirror-equivalent representative: (pi/2 - x, y, -z),
        // re-canonicalized.
        WeylCoord alt = weyl::weylCoordinate(
            weyl::canonicalGate({kPi / 2 - c.x, c.y, -c.z}));
        const double t2 = uarch::optimalDuration(cpl, alt);
        EXPECT_NEAR(t1, t2, 1e-9);
    }
}

// ---- genAshN solver sweeps --------------------------------------------

class SolverSweep : public ::testing::TestWithParam<int> {};

TEST_P(SolverSweep, RandomCouplingRandomTarget)
{
    Rng rng(6000 + GetParam());
    uarch::Coupling cpl = uarch::Coupling::random(rng);
    uarch::GateScheme scheme(cpl);
    for (int rep = 0; rep < 4; ++rep) {
        Matrix u = qmath::randomUnitary(4, rng);
        WeylCoord c = weyl::weylCoordinate(u);
        if (uarch::needsMirror(c, 0.12))
            continue;
        uarch::PulseSolution s = scheme.solve(u);
        ASSERT_TRUE(s.converged)
            << "coupling (" << cpl.a << "," << cpl.b << "," << cpl.c
            << ") target " << c.toString();
        Matrix rebuilt = kron(s.a1, s.a2) * scheme.evolution(s) *
                         kron(s.b1, s.b2);
        EXPECT_LT(qmath::traceInfidelity(rebuilt, u), 1e-6);
        // Optimality: tau equals the closed-form bound.
        EXPECT_NEAR(s.tau, uarch::optimalDuration(cpl, c), 1e-12);
        // Subscheme structure: one drive parameter vanishes.
        const double m =
            std::min({std::abs(s.omega1), std::abs(s.omega2),
                      std::abs(s.delta)});
        EXPECT_NEAR(m, 0.0, 1e-9);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverSweep, ::testing::Range(0, 8));

TEST(SolverProperties, LabFrameXxHamiltonianOfEq7)
{
    // The capacitively-coupled lab-frame Hamiltonian of Eq. (7):
    // detuned qubits + XX coupling, handled through the normal form.
    Matrix h = uarch::Coupling::xx(1.0).hamiltonian();
    h += kron(qmath::pauliZ(), Matrix::identity(2)) *
         Complex(-0.35, 0.0);
    h += kron(Matrix::identity(2), qmath::pauliZ()) *
         Complex(0.21, 0.0);
    uarch::HamiltonianNormalForm nf = uarch::normalForm(h);
    EXPECT_NEAR(nf.coupling.a, 1.0, 1e-9);
    EXPECT_NEAR(nf.coupling.b, 0.0, 1e-9);
    EXPECT_NEAR(nf.coupling.c, 0.0, 1e-9);
    // Local parts captured exactly.
    EXPECT_MATRIX_NEAR(nf.reconstruct(), h, 1e-9);
    // And the full pipeline solves a CNOT on it.
    Matrix target = circuit::Gate::cx(0, 1).matrix();
    uarch::ArbitrarySolution s = uarch::solveArbitrary(h, target);
    ASSERT_TRUE(s.converged);
    Matrix htot = h + kron(s.h1, Matrix::identity(2)) +
                  kron(Matrix::identity(2), s.h2);
    Matrix ev = qmath::expim(htot, s.canonical.tau);
    EXPECT_LT(qmath::traceInfidelity(
                  kron(s.a1, s.a2) * ev * kron(s.b1, s.b2), target),
              1e-6);
}

TEST(SolverProperties, DurationScalesInverselyWithCoupling)
{
    // H -> k H implies tau -> tau / k (Appendix A.1.1 rescaling).
    Rng rng(317);
    for (int rep = 0; rep < 10; ++rep) {
        WeylCoord c = weyl::randomWeylCoord(rng);
        uarch::Coupling c1 = uarch::Coupling::random(rng);
        uarch::Coupling c2{2.0 * c1.a, 2.0 * c1.b, 2.0 * c1.c};
        EXPECT_NEAR(uarch::optimalDuration(c1, c),
                    2.0 * uarch::optimalDuration(c2, c), 1e-12);
    }
}

TEST(SolverProperties, StrongerCouplingNeverSlower)
{
    // Adding coupling strength along the canonical ordering can only
    // shorten the optimal duration.
    Rng rng(331);
    for (int rep = 0; rep < 20; ++rep) {
        WeylCoord c = weyl::randomWeylCoord(rng);
        uarch::Coupling weak = uarch::Coupling::random(rng);
        uarch::Coupling strong{weak.a * 1.5, weak.b * 1.5,
                               weak.c * 1.5};
        EXPECT_LE(uarch::optimalDuration(strong, c),
                  uarch::optimalDuration(weak, c) + 1e-12);
    }
}

// ---- Synthesis properties ----------------------------------------------

TEST(SynthProperties, FixedBasisDecompositionSqisw)
{
    Rng rng(337);
    for (int rep = 0; rep < 6; ++rep) {
        Matrix u = qmath::randomUnitary(4, rng);
        auto gates = synth::su4ToFixedBasis(0, 1, u,
                                            circuit::Op::SQISW);
        ASSERT_FALSE(gates.empty()) << rep;
        circuit::Circuit c(2);
        int basis_count = 0;
        for (const auto &g : gates) {
            c.add(g);
            if (g.op == circuit::Op::SQISW)
                ++basis_count;
        }
        EXPECT_LE(basis_count, 3);
        EXPECT_TRUE(qsim::buildUnitary(c).approxEqualUpToPhase(
            u, 1e-4))
            << rep;
    }
}

TEST(SynthProperties, FixedBasisUsesFewerForEasyClasses)
{
    // SQiSW itself costs one basis gate; CNOT-class costs two.
    auto count = [](const Matrix &u) {
        int n = 0;
        for (const auto &g :
             synth::su4ToFixedBasis(0, 1, u, circuit::Op::SQISW))
            if (g.op == circuit::Op::SQISW)
                ++n;
        return n;
    };
    EXPECT_EQ(count(circuit::Gate::sqisw(0, 1).matrix()), 1);
    EXPECT_EQ(count(circuit::Gate::cx(0, 1).matrix()), 2);
    EXPECT_LE(count(circuit::Gate::swap(0, 1).matrix()), 3);
}

TEST(SynthProperties, SynthesisNeverExceedsUniversalBound)
{
    // Any 3-qubit unitary synthesizes within seven blocks.
    Rng rng(347);
    for (int rep = 0; rep < 3; ++rep) {
        Matrix u = qmath::randomUnitary(8, rng);
        synth::SynthesisOptions opts;
        opts.tol = 1e-8;
        opts.descending = true;
        synth::SynthesisResult r =
            synth::synthesizeBlock(u, {0, 1, 2}, opts);
        ASSERT_TRUE(r.success);
        EXPECT_LE(r.blockCount, 7);
        EXPECT_GE(r.blockCount, synth::su4LowerBound(3));
    }
}

// ---- Compiler properties ------------------------------------------------

TEST(CompilerProperties, VariationalModePreservesSemantics)
{
    Rng rng(349);
    circuit::Circuit c(3);
    c.add(circuit::Gate::h(0));
    c.add(circuit::Gate::rzz(0, 1, 0.37));
    c.add(circuit::Gate::rzz(1, 2, 0.61));
    c.add(circuit::Gate::rx(1, 0.5));
    c.add(circuit::Gate::rzz(0, 1, 0.83));
    compiler::CompileOptions opts;
    opts.variationalMode = true;
    compiler::CompileResult r = compiler::reqiscEff(c, opts);
    // One distinct 2Q class (the fixed basis gate).
    EXPECT_EQ(r.circuit.countDistinctSU4(1e-6), 1);
    const Matrix ref = qsim::buildUnitary(circuit::lowerToCnot(c));
    const Matrix got = qsim::buildUnitaryWithPermutation(
        r.circuit, r.finalPermutation);
    EXPECT_LT(qmath::traceInfidelity(ref, got), 1e-6);
}

TEST(CompilerProperties, Fuse2QIdempotent)
{
    Rng rng(353);
    circuit::Circuit c(4);
    for (int i = 0; i < 10; ++i) {
        int a = static_cast<int>(rng() % 4);
        int b = (a + 1 + static_cast<int>(rng() % 3)) % 4;
        c.add(circuit::Gate::u4(a, b, qmath::randomUnitary(4, rng)));
    }
    circuit::Circuit once = compiler::fuse2QBlocks(c);
    circuit::Circuit twice = compiler::fuse2QBlocks(once);
    EXPECT_EQ(once.count2Q(), twice.count2Q());
}

TEST(CompilerProperties, CompactnessScoreNeverIncreasesUnderDagCompact)
{
    Rng rng(359);
    for (int rep = 0; rep < 5; ++rep) {
        circuit::Circuit c(5);
        for (int i = 0; i < 12; ++i) {
            int a = static_cast<int>(rng() % 5);
            int b = (a + 1 + static_cast<int>(rng() % 4)) % 5;
            c.add(circuit::Gate::u4(std::min(a, b), std::max(a, b),
                                    qmath::randomUnitary(4, rng)));
        }
        circuit::Circuit d = compiler::dagCompact(c);
        EXPECT_LE(compiler::compactnessScore(d),
                  compiler::compactnessScore(c));
        EXPECT_TRUE(qsim::buildUnitary(d).approxEqualUpToPhase(
            qsim::buildUnitary(c), 1e-4));
    }
}

TEST(CompilerProperties, BaselinesNeverIncreaseGateCount)
{
    for (unsigned seed : {401u, 402u, 403u}) {
        auto bm = suite::makeAlu(5, 15, seed);
        circuit::Circuit low = compiler::lowerToCnot3(bm.circuit);
        EXPECT_LE(compiler::qiskitLike(bm.circuit).count2Q(),
                  low.count2Q());
        EXPECT_LE(compiler::tketLike(bm.circuit).count2Q(),
                  low.count2Q());
        EXPECT_LE(compiler::bqskitLike(bm.circuit).count2Q(),
                  low.count2Q());
    }
}

// ---- Optimizer robustness ------------------------------------------------

TEST(OptimizerProperties, NelderMeadRosenbrock)
{
    auto f = [](const std::vector<double> &x) {
        const double a = 1.0 - x[0];
        const double b = x[1] - x[0] * x[0];
        return a * a + 100.0 * b * b;
    };
    MinimizeResult r = nelderMead(f, {-1.2, 1.0}, 0.5, 1e-15, 4000);
    EXPECT_NEAR(r.x[0], 1.0, 1e-3);
    EXPECT_NEAR(r.x[1], 1.0, 1e-3);
}

TEST(OptimizerProperties, NewtonFromPoorStart)
{
    auto f = [](const std::vector<double> &v) {
        return std::vector<double>{std::sin(v[0]) - 0.5};
    };
    RootResult r = newtonSolve(f, {2.9});
    EXPECT_TRUE(r.converged);
    EXPECT_NEAR(std::sin(r.x[0]), 0.5, 1e-10);
}

// ---- Cache-key properties (service/cache.hh) --------------------------

TEST(CacheKeyProperties, GlobalPhaseNeverSplitsSynthEntries)
{
    // The synth-cache fingerprint canonicalizes global phase, so
    // U and e^{i phi} U must always share one entry — for any U and
    // any phase. Failure entries are used as markers: a hit on the
    // exact key needs no verification, so the property is tested on
    // the key alone.
    Rng rng(7100);
    std::uniform_real_distribution<double> ph(-kPi, kPi);
    synth::SynthesisOptions opts;
    const synth::SynthesisResult marker;  // failure entry

    for (int rep = 0; rep < 20; ++rep) {
        service::SynthCache cache;
        const Matrix u = randomUnitary(8, rng);
        cache.store(u, opts, marker, 0.0);

        const Complex w = std::polar(1.0, ph(rng));
        Matrix phased = u;
        for (int i = 0; i < 8; ++i)
            for (int j = 0; j < 8; ++j)
                phased(i, j) = phased(i, j) * w;

        synth::SynthesisResult out;
        EXPECT_TRUE(cache.lookup(phased, opts, out)) << "rep " << rep;
        EXPECT_EQ(cache.size(), 1u);
    }
}

TEST(CacheKeyProperties, PerturbationsBeyondQuantizationMiss)
{
    // Entry-wise perturbations far above the fingerprint quantization
    // step (1e-12) land on a different key: the cache never serves a
    // result for a materially different unitary.
    Rng rng(7200);
    std::uniform_int_distribution<int> idx(0, 7);
    synth::SynthesisOptions opts;
    const synth::SynthesisResult marker;

    for (double delta : {1e-6, 1e-3, 0.1}) {
        for (int rep = 0; rep < 10; ++rep) {
            service::SynthCache cache;
            const Matrix u = randomUnitary(8, rng);
            cache.store(u, opts, marker, 0.0);

            Matrix nudged = u;
            const int i = idx(rng), j = idx(rng);
            nudged(i, j) = nudged(i, j) + Complex{delta, 0.0};
            synth::SynthesisResult out;
            EXPECT_FALSE(cache.lookup(nudged, opts, out))
                << "delta " << delta << " rep " << rep;
        }
    }
}

TEST(CacheKeyProperties, EverySearchOptionSplitsTheKey)
{
    // Each field of SynthesisOptions that determines the search
    // outcome is part of the cache key; changing any one of them must
    // miss (the deterministic-search contract of a hit would
    // otherwise be violated).
    Rng rng(7300);
    const Matrix u = randomUnitary(8, rng);
    const synth::SynthesisResult marker;

    synth::SynthesisOptions base;
    base.descending = true;

    std::vector<synth::SynthesisOptions> variants(5, base);
    variants[0].tol = base.tol * 10.0;
    variants[1].maxBlocks = base.maxBlocks + 1;
    variants[2].restarts = base.restarts + 1;
    variants[3].seed = base.seed + 1;
    variants[4].descending = !base.descending;

    for (size_t v = 0; v < variants.size(); ++v) {
        service::SynthCache cache;
        cache.store(u, base, marker, 0.0);
        synth::SynthesisResult out;
        EXPECT_TRUE(cache.lookup(u, base, out));
        EXPECT_FALSE(cache.lookup(u, variants[v], out))
            << "variant " << v;
    }
}

TEST(CacheKeyProperties, PulseLookupIsToleranceExactAcrossBuckets)
{
    // Sweep coordinates straddling bucket boundaries: a stored class
    // must hit for every probe within the cluster tolerance and miss
    // for every probe beyond it, no matter how the probe falls
    // against the hash-cell grid.
    const double tol = 1e-6;
    uarch::PulseSolution sol;
    sol.converged = true;
    sol.coordError = 0.0;

    Rng rng(7400);
    std::uniform_real_distribution<double> d(0.05, kPi / 4 - 0.05);
    for (int rep = 0; rep < 20; ++rep) {
        service::PulseCache cache(uarch::Coupling::xy(1.0), tol);
        WeylCoord c{d(rng), d(rng) / 2, d(rng) / 4};
        cache.store(c, sol, 0.0);

        for (double frac : {0.0, 0.3, 0.99}) {
            WeylCoord probe = c;
            probe.x += frac * tol;
            uarch::PulseSolution out;
            EXPECT_TRUE(cache.lookup(probe, out))
                << "rep " << rep << " frac " << frac;
        }
        for (double frac : {1.5, 3.0, 10.0}) {
            WeylCoord probe = c;
            probe.x += frac * tol;
            uarch::PulseSolution out;
            EXPECT_FALSE(cache.lookup(probe, out))
                << "rep " << rep << " frac " << frac;
        }
    }
}
