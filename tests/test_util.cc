#include "test_util.hh"

namespace reqisc::test
{

::testing::AssertionResult
matrixNear(const qmath::Matrix &a, const qmath::Matrix &b, double tol)
{
    if (a.rows() != b.rows() || a.cols() != b.cols()) {
        return ::testing::AssertionFailure()
               << "shape mismatch: " << a.rows() << "x" << a.cols()
               << " vs " << b.rows() << "x" << b.cols();
    }
    if (a.approxEqual(b, tol))
        return ::testing::AssertionSuccess();
    return ::testing::AssertionFailure()
           << "matrices differ (tol=" << tol << ")\nA=\n"
           << a.toString() << "B=\n" << b.toString()
           << "maxAbs(A-B)=" << (a - b).maxAbs();
}

::testing::AssertionResult
matrixNearUpToPhase(const qmath::Matrix &a, const qmath::Matrix &b,
                    double tol)
{
    if (a.approxEqualUpToPhase(b, tol))
        return ::testing::AssertionSuccess();
    return ::testing::AssertionFailure()
           << "matrices differ up to phase (tol=" << tol << ")\nA=\n"
           << a.toString() << "B=\n" << b.toString();
}

} // namespace reqisc::test
