/**
 * @file
 * Tests for the RQISA program layer: duration model, ASAP/ALAP/serial
 * scheduling invariants (qubit exclusivity, topology, makespan vs the
 * serial baseline), byte-identical assembly round-trips over every
 * example QASM circuit, and the timeline-aware fidelity estimator
 * (closed-form idle decoherence, agreement with qsim::simulateNoisy
 * when idle noise is off, ASAP beating serial under dephasing).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "circuit/lower.hh"
#include "circuit/qasm.hh"
#include "compiler/metrics.hh"
#include "compiler/pipeline.hh"
#include "isa/assembly.hh"
#include "isa/duration_model.hh"
#include "isa/fidelity.hh"
#include "isa/program.hh"
#include "isa/schedule.hh"
#include "qmath/random.hh"
#include "qsim/density.hh"
#include "qsim/statevector.hh"
#include "route/sabre.hh"
#include "route/topology.hh"
#include "service/service.hh"
#include "uarch/duration.hh"

using namespace reqisc;
using namespace reqisc::circuit;

namespace
{

/** The checked-in example programs (paths relative to the repo). */
const char *const kExampleFiles[] = {
    "examples/qasm/adder5.qasm",
    "examples/qasm/ghz8.qasm",
    "examples/qasm/ising6.qasm",
    "examples/qasm/qft4.qasm",
};

std::string
readFile(const std::string &rel)
{
    const std::string path =
        std::string(REQISC_SOURCE_DIR) + "/" + rel;
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "cannot open " << path;
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

/** Sum of per-gate durations: the serial-schedule makespan. */
double
serialSum(const Circuit &c, const isa::DurationModel &m)
{
    double t = 0.0;
    for (const Gate &g : c)
        t += m.gate(g);
    return t;
}

Circuit
ghz(int n)
{
    Circuit c(n);
    c.add(Gate::h(0));
    for (int q = 0; q + 1 < n; ++q)
        c.add(Gate::cx(q, q + 1));
    return c;
}

} // namespace

// ---- DurationModel -----------------------------------------------------

TEST(DurationModel, DefaultsAndGateDurations)
{
    const isa::DurationModel m;
    EXPECT_DOUBLE_EQ(m.oneQubit, isa::kDefaultOneQubitDuration);
    EXPECT_DOUBLE_EQ(m.measurement,
                     isa::kDefaultMeasurementDuration);
    EXPECT_DOUBLE_EQ(m.gate(Gate::h(0)),
                     isa::kDefaultOneQubitDuration);
    // 2Q gates cost their genAshN optimal duration on the coupling.
    const double cx = m.gate(Gate::cx(0, 1));
    EXPECT_NEAR(cx,
                uarch::optimalDuration(m.coupling,
                                       weyl::WeylCoord::cnot()),
                1e-12);
    EXPECT_GT(cx, 0.0);
    // High-level IR must be lowered before timing.
    EXPECT_THROW((void)m.gate(Gate::ccx(0, 1, 2)),
                 std::invalid_argument);
}

// ---- Scheduling --------------------------------------------------------

TEST(Schedule, AsapParallelizesDisjointGates)
{
    Circuit c(4);
    c.add(Gate::cx(0, 1));
    c.add(Gate::cx(2, 3));

    isa::ScheduleOptions opts;
    const isa::Program p = isa::schedule(c, opts);
    EXPECT_TRUE(p.validate().empty());
    ASSERT_EQ(p.size(), 2u);
    // Disjoint pairs run concurrently: both start at t = 0.
    EXPECT_DOUBLE_EQ(p[0].start, 0.0);
    EXPECT_DOUBLE_EQ(p[1].start, 0.0);
    EXPECT_LT(p.makespan(),
              serialSum(c, opts.durations) - 1e-9);

    opts.strategy = isa::Strategy::Serial;
    const isa::Program s = isa::schedule(c, opts);
    EXPECT_TRUE(s.validate().empty());
    EXPECT_NEAR(s.makespan(), serialSum(c, opts.durations), 1e-12);
}

TEST(Schedule, ChainIsInherentlySerial)
{
    // Every gate of a GHZ chain shares a qubit with its predecessor,
    // so ASAP cannot beat the serial schedule.
    const Circuit c = ghz(5);
    isa::ScheduleOptions opts;
    const isa::Program p = isa::schedule(c, opts);
    EXPECT_TRUE(p.validate().empty());
    EXPECT_NEAR(p.makespan(), serialSum(c, opts.durations), 1e-9);
}

TEST(Schedule, AlapMirrorsAsap)
{
    // A circuit with real slack: q3's lone 1Q gate can sit anywhere.
    Circuit c(4);
    c.add(Gate::h(3));
    c.add(Gate::cx(0, 1));
    c.add(Gate::cx(1, 2));
    c.add(Gate::cx(2, 3));

    isa::ScheduleOptions opts;
    const isa::Program asap = isa::schedule(c, opts);
    opts.strategy = isa::Strategy::Alap;
    const isa::Program alap = isa::schedule(c, opts);
    EXPECT_TRUE(alap.validate().empty());
    EXPECT_NEAR(asap.makespan(), alap.makespan(), 1e-12);

    // ALAP pushes the slack gate late: h(3) must end exactly when
    // cx(2,3) starts instead of running at t = 0.
    const auto find_h = [](const isa::Program &p) {
        for (const isa::Instruction &i : p.instructions())
            if (i.kind == isa::Instruction::Kind::Gate &&
                i.gate.op == Op::H)
                return i;
        return isa::Instruction{};
    };
    EXPECT_DOUBLE_EQ(find_h(asap).start, 0.0);
    EXPECT_GT(find_h(alap).start, 0.0);

    // Both carry the same gates in the same per-qubit order.
    EXPECT_EQ(asap.toCircuit().size(), c.size());
    EXPECT_EQ(alap.toCircuit().size(), c.size());
}

TEST(Schedule, TopologyViolationThrowsAndRoutedPasses)
{
    const route::Topology chain = route::Topology::chain(8);
    Circuit bad(8);
    bad.add(Gate::cx(0, 7));
    isa::ScheduleOptions opts;
    opts.topology = &chain;
    EXPECT_THROW((void)isa::schedule(bad, opts),
                 std::invalid_argument);

    // A routed circuit schedules cleanly and validates against the
    // device graph.
    const route::RouteResult routed =
        route::sabreRoute(ghz(8), chain);
    const isa::Program p = isa::schedule(routed.circuit, opts);
    EXPECT_TRUE(p.validate(&chain).empty());
}

TEST(Schedule, MeasureAtEndAppendsGlobalReadout)
{
    const Circuit c = ghz(3);
    isa::ScheduleOptions opts;
    opts.measureAtEnd = true;
    const isa::Program p = isa::schedule(c, opts);
    EXPECT_TRUE(p.validate().empty());
    ASSERT_EQ(p.size(), c.size() + 3);
    double gate_end = 0.0;
    int measures = 0;
    for (const isa::Instruction &i : p.instructions())
        if (i.kind == isa::Instruction::Kind::Gate)
            gate_end = std::max(gate_end, i.end());
    for (const isa::Instruction &i : p.instructions())
        if (i.kind == isa::Instruction::Kind::Measure) {
            ++measures;
            EXPECT_DOUBLE_EQ(i.start, gate_end);
            EXPECT_DOUBLE_EQ(i.duration,
                             opts.durations.measurement);
        }
    EXPECT_EQ(measures, 3);
    EXPECT_NEAR(p.makespan(),
                gate_end + opts.durations.measurement, 1e-12);
}

TEST(Schedule, ZeroOneQubitCostMatchesCriticalPathDuration)
{
    // With free 1Q gates (the paper's metrics convention) the ASAP
    // makespan is exactly the critical-path pulse duration that
    // compiler::Metrics reports.
    const Circuit qft = circuit::fromQasm(
        readFile("examples/qasm/qft4.qasm"));
    const compiler::CompileResult compiled = compiler::reqiscEff(qft);
    isa::ScheduleOptions opts;
    opts.durations.oneQubit = 0.0;
    const isa::Program p = isa::schedule(compiled.circuit, opts);
    const double critical = circuit::criticalPathDuration(
        compiled.circuit,
        compiler::reqiscDurationModel(opts.durations.coupling));
    EXPECT_NEAR(p.makespan(), critical, 1e-9);
}

TEST(Schedule, StatsReportMakespanParallelismIdle)
{
    Circuit c(4);
    c.add(Gate::cx(0, 1));
    c.add(Gate::cx(2, 3));
    c.add(Gate::cx(1, 2));
    isa::ScheduleOptions opts;
    const isa::Program p = isa::schedule(c, opts);
    const compiler::ScheduleStats s = p.stats();
    EXPECT_TRUE(s.scheduled);
    EXPECT_EQ(s.instructions, 3);
    EXPECT_NEAR(s.makespan, p.makespan(), 1e-12);
    EXPECT_NEAR(s.serialDuration, serialSum(c, opts.durations),
                1e-12);
    EXPECT_GT(s.parallelism, 1.0);  // the disjoint pair overlaps
    // All four qubits are busy whenever they are in-window here
    // (each participates in back-to-back gates), so idle time is 0.
    EXPECT_NEAR(s.idleTime, 0.0, 1e-9);
}

// ---- Assembly round-trip (acceptance property) -------------------------

TEST(Assembly, EmitParseEmitIsByteIdenticalOnEveryExample)
{
    int strictly_parallel = 0;
    for (const char *rel : kExampleFiles) {
        SCOPED_TRACE(rel);
        const Circuit parsed = circuit::fromQasm(readFile(rel));
        // adder5 contains CCX: lower to <= 2Q gates first.
        const Circuit c = circuit::lowerToCnot(parsed);

        for (const isa::Strategy strat :
             {isa::Strategy::Asap, isa::Strategy::Alap}) {
            isa::ScheduleOptions opts;
            opts.strategy = strat;
            const isa::Program p = isa::schedule(c, opts);

            // Schedule validity + the makespan bound.
            EXPECT_TRUE(p.validate().empty());
            const double serial = serialSum(c, opts.durations);
            EXPECT_LE(p.makespan(), serial + 1e-9);
            if (strat == isa::Strategy::Asap &&
                p.makespan() < serial - 1e-9)
                ++strictly_parallel;

            // Byte-identical emit -> parse -> emit.
            const std::string text = isa::toAssembly(p);
            const isa::Program back = isa::fromAssembly(text);
            EXPECT_EQ(isa::toAssembly(back), text);
            EXPECT_EQ(back.numQubits(), p.numQubits());
            EXPECT_EQ(back.size(), p.size());
            // Re-ingested circuit carries the same gate stream.
            EXPECT_EQ(back.toCircuit().toString(),
                      p.toCircuit().toString());
        }
    }
    // At least one example (qft4's final SWAP pair, ising6's
    // staggered trotter layers) must actually exploit parallelism.
    EXPECT_GE(strictly_parallel, 1);
}

TEST(Assembly, RoundTripWithMeasurementAndComments)
{
    isa::ScheduleOptions opts;
    opts.measureAtEnd = true;
    const isa::Program p = isa::schedule(ghz(3), opts);
    const std::string text = isa::toAssembly(p);
    EXPECT_NE(text.find("meas q[0]"), std::string::npos);
    const isa::Program back =
        isa::fromAssembly("# a comment\n" + text + "\n# trailing\n");
    EXPECT_EQ(isa::toAssembly(back), text);
}

TEST(Assembly, ParserRejectsMalformedInput)
{
    const auto expectError = [](const std::string &text,
                                const std::string &needle) {
        try {
            (void)isa::fromAssembly(text);
            FAIL() << "no error for: " << text;
        } catch (const std::runtime_error &e) {
            EXPECT_NE(std::string(e.what()).find(needle),
                      std::string::npos)
                << e.what();
        }
    };
    expectError("qubits 2;\n", "header");
    expectError("RQISA 1.0;\n", "qubits");
    expectError("RQISA 1.0;\nqubits 0;\n", "positive");
    expectError("RQISA 1.0;\nqubits 2;\n"
                "@0 frob q[0] dur 1;\n",
                "unknown mnemonic");
    expectError("RQISA 1.0;\nqubits 2;\n"
                "@0 h q[5] dur 1;\n",
                "out of range");
    expectError("RQISA 1.0;\nqubits 2;\n"
                "@x h q[0] dur 1;\n",
                "bad number");
    expectError("RQISA 1.0;\nqubits 2;\n"
                "@0 h q[0] dur 1\n",
                "missing ';'");
    expectError("RQISA 1.0;\nqubits 2;\n"
                "@0 h q[0];\n",
                "dur");
    expectError("RQISA 1.0;\nqubits 2;\n"
                "@0 meas(0.5) q[0] dur 1;\n",
                "meas takes no parameters");
    expectError("RQISA 1.0;\nqubits 2;\n"
                "@0 rx q[0] dur 1;\n",
                "parameter count");
    // The program invariants are enforced on ingest: two overlapping
    // instructions on one qubit are rejected.
    expectError("RQISA 1.0;\nqubits 2;\n"
                "@0 h q[0] dur 1;\n"
                "@0.5 x q[0] dur 1;\n",
                "overlapping");
}

TEST(Assembly, RefusesOpaqueU4Blocks)
{
    // u4 has no textual form (its matrix payload cannot round-trip),
    // so the emitter refuses instead of producing unparseable text.
    isa::Program p(2);
    qmath::Rng rng(3);
    p.add(isa::Instruction::timedGate(
        Gate::u4(0, 1, qmath::randomUnitary(4, rng)), 0.0, 1.0));
    EXPECT_THROW((void)isa::toAssembly(p), std::invalid_argument);
}

TEST(Assembly, ToleratesBenignWhitespaceInNumbers)
{
    const isa::Program p = isa::fromAssembly(
        "RQISA 1.0;\nqubits 2;\n"
        "@0 rx( 0.5 ) q[ 0 ] dur 1;\n"
        "@1 cx q[0],q[ 1 ] dur 2;\n");
    ASSERT_EQ(p.size(), 2u);
    EXPECT_DOUBLE_EQ(p[0].gate.params[0], 0.5);
    EXPECT_EQ(p[1].qubits()[1], 1);
}

// ---- Timeline-aware fidelity -------------------------------------------

TEST(Fidelity, AmplitudeDampingClosedForm)
{
    // X, idle for dt, X: the qubit sits in |1> while idle, so
    // P(|0>) afterwards is exactly exp(-dt/T1).
    isa::Program p(1);
    p.add(isa::Instruction::timedGate(Gate::x(0), 0.0, 1.0));
    p.add(isa::Instruction::timedGate(Gate::x(0), 4.0, 1.0));
    isa::NoiseModel noise;
    noise.t1 = 10.0;
    const std::vector<double> probs = isa::simulateTimed(p, noise);
    const double dt = 3.0;
    EXPECT_NEAR(probs[0], std::exp(-dt / noise.t1), 1e-12);
    EXPECT_NEAR(probs[0] + probs[1], 1.0, 1e-12);
}

TEST(Fidelity, DephasingClosedForm)
{
    // H, idle for dt, H: the |+> coherence decays by
    // sqrt(exp(-dt/T2)), so P(|0>) = (1 + exp(-dt/(2 T2))) / 2.
    isa::Program p(1);
    p.add(isa::Instruction::timedGate(Gate::h(0), 0.0, 1.0));
    p.add(isa::Instruction::timedGate(Gate::h(0), 6.0, 1.0));
    isa::NoiseModel noise;
    noise.t2 = 8.0;
    const std::vector<double> probs = isa::simulateTimed(p, noise);
    const double dt = 5.0;
    EXPECT_NEAR(probs[0],
                0.5 * (1.0 + std::exp(-dt / (2.0 * noise.t2))),
                1e-12);
}

TEST(Fidelity, QubitsInGroundStateAreFreeWhileWaiting)
{
    // q1 waits 100 time units in |0> before its only gate; with the
    // in-window idle convention that wait costs nothing.
    isa::Program p(2);
    p.add(isa::Instruction::timedGate(Gate::x(0), 0.0, 1.0));
    p.add(isa::Instruction::timedGate(Gate::x(0), 1.0, 1.0));
    p.add(isa::Instruction::timedGate(Gate::x(1), 100.0, 1.0));
    isa::NoiseModel noise;
    noise.t1 = 5.0;
    noise.t2 = 5.0;
    const std::vector<double> probs = isa::simulateTimed(p, noise);
    // |q0 q1> = |0 1> exactly: no decoherence anywhere.
    EXPECT_NEAR(probs[1], 1.0, 1e-12);
}

TEST(Fidelity, NoIdleNoiseMatchesSimulateNoisy)
{
    // With T1 = T2 = infinity the timed estimator reduces to the
    // Section-6.7 model of qsim::simulateNoisy on the same order.
    const compiler::CompileResult compiled =
        compiler::reqiscEff(ghz(3));
    isa::ScheduleOptions opts;
    opts.strategy = isa::Strategy::Serial;
    const isa::Program p = isa::schedule(compiled.circuit, opts);

    const isa::NoiseModel noise;  // idle channels off
    const std::vector<double> timed = isa::simulateTimed(p, noise);
    const std::vector<double> untimed = qsim::simulateNoisy(
        compiled.circuit,
        compiler::reqiscDurationModel(opts.durations.coupling),
        noise.p0, noise.tau0);
    ASSERT_EQ(timed.size(), untimed.size());
    for (size_t i = 0; i < timed.size(); ++i)
        EXPECT_NEAR(timed[i], untimed[i], 1e-10) << i;
}

TEST(Fidelity, AsapBeatsSerialUnderIdleNoise)
{
    // Two independent CX ladders: ASAP halves the idle time, so with
    // dephasing on, the ASAP program is strictly closer to the ideal
    // distribution. Gate error is switched off to isolate the
    // schedule's contribution.
    Circuit c(4);
    for (int rep = 0; rep < 3; ++rep) {
        c.add(Gate::h(0));
        c.add(Gate::h(2));
        c.add(Gate::cx(0, 1));
        c.add(Gate::cx(2, 3));
    }
    isa::ScheduleOptions opts;
    const isa::Program asap = isa::schedule(c, opts);
    opts.strategy = isa::Strategy::Serial;
    const isa::Program serial = isa::schedule(c, opts);
    ASSERT_LT(asap.makespan(), serial.makespan() - 1e-9);

    isa::NoiseModel ideal_noise;
    ideal_noise.p0 = 0.0;
    const std::vector<double> ideal =
        isa::simulateTimed(serial, ideal_noise);

    isa::NoiseModel noise;
    noise.p0 = 0.0;
    noise.t2 = 40.0;
    const double f_asap = qsim::hellingerFidelity(
        ideal, isa::simulateTimed(asap, noise));
    const double f_serial = qsim::hellingerFidelity(
        ideal, isa::simulateTimed(serial, noise));
    EXPECT_GT(f_asap, f_serial + 1e-6);

    // The closed-form proxy ranks the schedules the same way.
    EXPECT_GT(isa::analyticFidelity(asap, noise),
              isa::analyticFidelity(serial, noise) + 1e-9);
}

// ---- Service integration ----------------------------------------------

TEST(ServiceSchedule, JobsOptionallyScheduleAndFillMetrics)
{
    service::ServiceOptions sopts;
    sopts.threads = 2;
    service::CompileService svc(sopts);

    service::CompileRequest plain;
    plain.name = "plain";
    plain.input = ghz(3);
    service::CompileRequest timed;
    timed.name = "timed";
    timed.input = ghz(3);
    timed.schedule = true;
    timed.scheduleOptions.strategy = isa::Strategy::Alap;

    const auto plain_id = svc.submit(std::move(plain));
    const auto timed_id = svc.submit(std::move(timed));

    const service::JobResult pr = svc.wait(plain_id);
    ASSERT_TRUE(pr.ok) << pr.error;
    EXPECT_FALSE(pr.metrics.schedule.scheduled);
    EXPECT_TRUE(pr.program.empty());

    const service::JobResult tr = svc.wait(timed_id);
    ASSERT_TRUE(tr.ok) << tr.error;
    EXPECT_TRUE(tr.metrics.schedule.scheduled);
    EXPECT_GT(tr.metrics.schedule.makespan, 0.0);
    EXPECT_EQ(tr.metrics.schedule.instructions,
              static_cast<int>(tr.program.size()));
    EXPECT_TRUE(tr.program.validate().empty());
    // The program is the compiled circuit, timed (ALAP may reorder
    // instructions across qubits, so compare counts, not streams).
    EXPECT_EQ(tr.program.toCircuit().size(),
              tr.compiled.circuit.size());
    // And it round-trips through assembly.
    const std::string text = isa::toAssembly(tr.program);
    EXPECT_EQ(isa::toAssembly(isa::fromAssembly(text)), text);
}
