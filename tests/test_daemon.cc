/**
 * @file
 * Protocol tests for reqisc-compiled (src/daemon): every route and
 * error path of the v1 job API over real loopback HTTP — malformed
 * and oversized bodies, unknown routes and methods, the full cancel
 * state machine, admission control (queue bound and per-client
 * quotas, both answering immediate structured 429s), graceful drain,
 * and the end-to-end contract that a job compiled through the daemon
 * produces artifacts bit-identical to the same request run directly
 * on a CompileService.
 *
 * Job states are pinned with REQISC_PASS_DELAY_MS on hier-synth
 * (full pipeline only), set before any compile runs: a slowed `full`
 * job occupies the single worker long enough to observe queued /
 * running / draining behavior deterministically, while the `eff`
 * jobs the fast paths use are unaffected.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "backend/json.hh"
#include "circuit/qasm.hh"
#include "daemon/daemon.hh"
#include "daemon/http.hh"
#include "service/api.hh"
#include "service/error.hh"
#include "service/service.hh"
#include "suite/suite.hh"

using namespace reqisc;
using backend::JsonValue;
using backend::parseJson;

namespace
{

/** ~400ms inside hier-synth: the knob every state-pinning test uses. */
[[maybe_unused]] const bool kDelayEnvSet = [] {
    ::setenv("REQISC_PASS_DELAY_MS", "hier-synth=400", 1);
    return true;
}();

using Headers = std::vector<std::pair<std::string, std::string>>;

/** One loopback request; transport failure fails the test. */
daemon::HttpClientResponse
http(int port, const std::string &method, const std::string &target,
     const std::string &body = "", const Headers &headers = {})
{
    daemon::HttpClientResponse res;
    std::string error;
    if (!daemon::httpRequest("127.0.0.1", port, method, target, body,
                             headers, res, error))
        ADD_FAILURE() << method << " " << target << ": " << error;
    return res;
}

/** The daemon's error body: {apiVersion, error: {code, ...}}. */
std::string
errorCode(const daemon::HttpClientResponse &res)
{
    const JsonValue doc = parseJson(res.body, "error-body");
    const JsonValue *err = doc.find("error");
    if (err == nullptr)
        return "(no error object)";
    return service::api::errorFromJson(*err).code;
}

std::string
jobBody(const std::string &qasm, const std::string &pipeline,
        const std::string &name = "job")
{
    JsonValue doc = JsonValue::makeObject();
    doc.set("apiVersion", JsonValue::makeNumber(1));
    doc.set("name", JsonValue::makeString(name));
    doc.set("qasm", JsonValue::makeString(qasm));
    doc.set("pipeline", JsonValue::makeString(pipeline));
    return backend::dumpJson(doc);
}

/** POST a job; expects 202 and returns the assigned id. */
std::uint64_t
submit(int port, const std::string &body)
{
    const auto res = http(port, "POST", "/v1/jobs", body);
    EXPECT_EQ(res.status, 202) << res.body;
    const JsonValue doc = parseJson(res.body, "submit");
    const JsonValue *id = doc.find("id");
    EXPECT_NE(id, nullptr);
    return id ? static_cast<std::uint64_t>(id->number) : 0;
}

/** Poll status until done/failed/canceled; returns the final state. */
std::string
awaitFinal(int port, std::uint64_t id)
{
    const std::string target = "/v1/jobs/" + std::to_string(id);
    for (int i = 0; i < 4000; ++i) {  // 20s cap at 5ms per poll
        const auto res = http(port, "GET", target);
        if (res.status != 200)
            return "status=" + std::to_string(res.status);
        const JsonValue doc = parseJson(res.body, "status");
        const std::string st = doc.find("status")->str;
        if (st == "done" || st == "failed" || st == "canceled")
            return st;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return "(timeout)";
}

/** A started daemon on an ephemeral port; stops on destruction. */
struct Daemon
{
    daemon::CompileDaemon d;
    explicit Daemon(daemon::DaemonOptions opts) : d(std::move(opts))
    {
        std::string error;
        if (!d.start(error))
            ADD_FAILURE() << "daemon start: " << error;
    }
    ~Daemon() { d.stop(); }
    int port() { return d.port(); }
};

daemon::DaemonOptions
baseOptions()
{
    daemon::DaemonOptions opts;
    opts.service.threads = 1;  // one worker: FIFO, pinnable states
    opts.http.port = 0;
    return opts;
}

std::string
suiteQasm()
{
    return circuit::toQasm(suite::smallSuite().front().circuit);
}

} // namespace

// ---- Framing and routing -----------------------------------------------

TEST(DaemonProtocol, RejectsMalformedAndInvalidBodies)
{
    Daemon dm(baseOptions());
    const int p = dm.port();

    auto res = http(p, "POST", "/v1/jobs", "{not json");
    EXPECT_EQ(res.status, 400);
    EXPECT_EQ(errorCode(res), service::errc::kBadRequest);

    res = http(p, "POST", "/v1/jobs", R"({"qasm": ""})");
    EXPECT_EQ(res.status, 400);
    EXPECT_EQ(errorCode(res), service::errc::kBadRequest);

    res = http(p, "POST", "/v1/jobs",
               jobBody(suiteQasm(), "not-a-pipeline"));
    EXPECT_EQ(res.status, 400);
    EXPECT_EQ(errorCode(res), service::errc::kBadPipelineSpec);

    // Invalid QASM passes submission (parsing happens in the worker)
    // and surfaces as a failed job with a structured parse error.
    const std::uint64_t id =
        submit(p, jobBody("qreg q[2];\nh q[0]\n", "eff"));
    EXPECT_EQ(awaitFinal(p, id), "failed");
    res = http(p, "GET", "/v1/jobs/" + std::to_string(id) +
                             "/result");
    EXPECT_EQ(res.status, 200);
    const JsonValue doc = parseJson(res.body, "result");
    EXPECT_FALSE(doc.find("ok")->boolean);
    EXPECT_EQ(service::api::errorFromJson(*doc.find("error")).code,
              service::errc::kParseError);
}

TEST(DaemonProtocol, OversizedBodyIs413)
{
    daemon::DaemonOptions opts = baseOptions();
    opts.http.maxBodyBytes = 1024;
    Daemon dm(std::move(opts));
    const auto res = http(dm.port(), "POST", "/v1/jobs",
                          std::string(4096, 'x'));
    EXPECT_EQ(res.status, 413);
    EXPECT_EQ(errorCode(res), service::errc::kBodyTooLarge);
}

TEST(DaemonProtocol, UnknownRoutesAndMethods)
{
    Daemon dm(baseOptions());
    const int p = dm.port();
    EXPECT_EQ(http(p, "GET", "/v1/frobs").status, 404);
    EXPECT_EQ(errorCode(http(p, "GET", "/nope")),
              service::errc::kNotFound);
    // Job ids are numeric; a non-numeric id is no such route.
    EXPECT_EQ(http(p, "GET", "/v1/jobs/abc").status, 404);
    // Known routes, wrong verbs.
    EXPECT_EQ(http(p, "GET", "/v1/jobs").status, 405);
    EXPECT_EQ(http(p, "PUT", "/v1/jobs/1").status, 405);
    EXPECT_EQ(http(p, "DELETE", "/healthz").status, 405);
    EXPECT_EQ(errorCode(http(p, "POST", "/metrics")),
              service::errc::kMethodNotAllowed);
    // Unknown job id on a real route.
    EXPECT_EQ(http(p, "GET", "/v1/jobs/999").status, 404);
    EXPECT_EQ(http(p, "GET", "/v1/jobs/999/result").status, 404);
    EXPECT_EQ(http(p, "DELETE", "/v1/jobs/999").status, 404);
}

TEST(DaemonProtocol, HealthAndMetricsServe)
{
    Daemon dm(baseOptions());
    const auto health = http(dm.port(), "GET", "/healthz");
    EXPECT_EQ(health.status, 200);
    const JsonValue doc = parseJson(health.body, "healthz");
    EXPECT_EQ(doc.find("status")->str, "ok");
    EXPECT_FALSE(doc.find("draining")->boolean);

    const auto metrics = http(dm.port(), "GET", "/metrics");
    EXPECT_EQ(metrics.status, 200);
    EXPECT_NE(metrics.body.find("reqisc_daemon_requests_total"),
              std::string::npos);
}

// ---- The cancel state machine ------------------------------------------

TEST(DaemonProtocol, CancelStateMachine)
{
    Daemon dm(baseOptions());
    const int p = dm.port();
    // The slowed full job occupies the single worker for ~400ms...
    const std::uint64_t running =
        submit(p, jobBody(suiteQasm(), "full", "slow"));
    // ...so the eff job behind it is reliably still queued.
    const std::uint64_t queued =
        submit(p, jobBody(suiteQasm(), "eff", "fast"));

    // result of an unfinished job: 409 not-ready.
    auto res = http(p, "GET", "/v1/jobs/" + std::to_string(running) +
                                  "/result");
    EXPECT_EQ(res.status, 409);
    EXPECT_EQ(errorCode(res), service::errc::kNotReady);

    // Cancel the queued job: 200, and its result is now 410 gone.
    res = http(p, "DELETE", "/v1/jobs/" + std::to_string(queued));
    EXPECT_EQ(res.status, 200) << res.body;
    res = http(p, "GET",
               "/v1/jobs/" + std::to_string(queued) + "/result");
    EXPECT_EQ(res.status, 410);
    EXPECT_EQ(errorCode(res), service::errc::kCanceled);
    // Canceling again is idempotent.
    res = http(p, "DELETE", "/v1/jobs/" + std::to_string(queued));
    EXPECT_EQ(res.status, 200);

    // The running job cannot be canceled.
    res = http(p, "DELETE", "/v1/jobs/" + std::to_string(running));
    EXPECT_EQ(res.status, 409);
    EXPECT_EQ(errorCode(res), service::errc::kNotCancelable);

    // Once finished, cancel reports already-completed and the result
    // still serves.
    EXPECT_EQ(awaitFinal(p, running), "done");
    res = http(p, "DELETE", "/v1/jobs/" + std::to_string(running));
    EXPECT_EQ(res.status, 409);
    EXPECT_EQ(errorCode(res), service::errc::kAlreadyCompleted);
    res = http(p, "GET", "/v1/jobs/" + std::to_string(running) +
                             "/result");
    EXPECT_EQ(res.status, 200);
    const JsonValue doc = parseJson(res.body, "result");
    EXPECT_TRUE(doc.find("ok")->boolean);
    // The status document streamed per-pass progress on the way.
    res = http(p, "GET", "/v1/jobs/" + std::to_string(running));
    const JsonValue st = parseJson(res.body, "status");
    EXPECT_FALSE(st.find("passes")->array.empty());
}

// ---- Admission control -------------------------------------------------

TEST(DaemonProtocol, QueueFullIsAnImmediate429)
{
    daemon::DaemonOptions opts = baseOptions();
    opts.maxQueue = 1;
    Daemon dm(std::move(opts));
    const int p = dm.port();
    const std::uint64_t id =
        submit(p, jobBody(suiteQasm(), "full", "occupant"));
    const auto res = http(p, "POST", "/v1/jobs",
                          jobBody(suiteQasm(), "eff", "surplus"));
    EXPECT_EQ(res.status, 429);
    EXPECT_EQ(errorCode(res), service::errc::kQueueFull);
    EXPECT_NE(res.header("retry-after"), nullptr);
    // The accepted occupant still completes.
    EXPECT_EQ(awaitFinal(p, id), "done");
}

TEST(DaemonProtocol, QuotaExhaustionIsA429WithRetryAfter)
{
    daemon::DaemonOptions opts = baseOptions();
    opts.quotaRate = 0.001;  // effectively no refill inside the test
    opts.quotaBurst = 2;
    Daemon dm(std::move(opts));
    const int p = dm.port();
    const Headers client = {{"X-Client-Id", "tester"}};
    const std::string body = jobBody(suiteQasm(), "eff");
    EXPECT_EQ(http(p, "POST", "/v1/jobs", body, client).status, 202);
    EXPECT_EQ(http(p, "POST", "/v1/jobs", body, client).status, 202);
    const auto res = http(p, "POST", "/v1/jobs", body, client);
    EXPECT_EQ(res.status, 429);
    EXPECT_EQ(errorCode(res), service::errc::kQuotaExceeded);
    ASSERT_NE(res.header("retry-after"), nullptr);
    EXPECT_GE(std::atoi(res.header("retry-after")->c_str()), 1);
    // A different client has its own bucket.
    EXPECT_EQ(http(p, "POST", "/v1/jobs", body,
                   {{"X-Client-Id", "other"}})
                  .status,
              202);
}

TEST(DaemonProtocol, QueueFullRejectionDoesNotChargeQuota)
{
    daemon::DaemonOptions opts = baseOptions();
    opts.maxQueue = 1;
    opts.quotaRate = 0.001;  // effectively no refill inside the test
    opts.quotaBurst = 2;
    Daemon dm(std::move(opts));
    const int p = dm.port();
    const Headers client = {{"X-Client-Id", "meter"}};

    // Token 1 of 2: the slow full job fills the queue bound.
    auto res = http(p, "POST", "/v1/jobs",
                    jobBody(suiteQasm(), "full", "occupant"), client);
    ASSERT_EQ(res.status, 202) << res.body;
    const std::uint64_t occupant = static_cast<std::uint64_t>(
        parseJson(res.body, "submit").find("id")->number);

    // Bounced by the queue bound — must NOT cost a token.
    res = http(p, "POST", "/v1/jobs", jobBody(suiteQasm(), "eff"),
               client);
    EXPECT_EQ(res.status, 429);
    EXPECT_EQ(errorCode(res), service::errc::kQueueFull);

    // Token 2 of 2 is therefore still available once the queue
    // clears...
    EXPECT_EQ(awaitFinal(p, occupant), "done");
    res = http(p, "POST", "/v1/jobs",
               jobBody(suiteQasm(), "eff", "second"), client);
    EXPECT_EQ(res.status, 202) << res.body;
    const std::uint64_t second = static_cast<std::uint64_t>(
        parseJson(res.body, "submit").find("id")->number);
    EXPECT_EQ(awaitFinal(p, second), "done");

    // ...and only now is the bucket genuinely empty.
    res = http(p, "POST", "/v1/jobs", jobBody(suiteQasm(), "eff"),
               client);
    EXPECT_EQ(res.status, 429);
    EXPECT_EQ(errorCode(res), service::errc::kQuotaExceeded);
}

// ---- Finished-record retention -----------------------------------------

TEST(DaemonProtocol, FinishedRecordsEvictPastTheCap)
{
    daemon::DaemonOptions opts = baseOptions();
    opts.maxFinished = 2;
    Daemon dm(std::move(opts));
    const int p = dm.port();

    std::vector<std::uint64_t> ids;
    for (int i = 0; i < 3; ++i) {
        ids.push_back(submit(
            p, jobBody(suiteQasm(), "eff",
                       "job" + std::to_string(i))));
        ASSERT_EQ(awaitFinal(p, ids.back()), "done");
    }

    // The oldest finished record was evicted; the registry answers
    // 404 for it while the two newest still serve in full.
    EXPECT_EQ(http(p, "GET",
                   "/v1/jobs/" + std::to_string(ids[0]))
                  .status,
              404);
    EXPECT_EQ(http(p, "GET",
                   "/v1/jobs/" + std::to_string(ids[0]) + "/result")
                  .status,
              404);
    for (int i = 1; i < 3; ++i) {
        const auto res = http(
            p, "GET",
            "/v1/jobs/" + std::to_string(ids[i]) + "/result");
        EXPECT_EQ(res.status, 200);
        EXPECT_TRUE(
            parseJson(res.body, "result").find("ok")->boolean);
    }
}

// ---- Teardown with work in flight --------------------------------------

TEST(DaemonProtocol, DestructionWithJobsInFlightJoinsSafely)
{
    // Destroying the daemon with queued and running jobs must join
    // the compile workers before any registry state dies — their
    // onPass/onDone callbacks lock the registry mutex up to the very
    // last job. No assertions needed: the ASan/TSan jobs fail this
    // test if teardown touches destroyed state.
    Daemon dm(baseOptions());
    const int p = dm.port();
    submit(p, jobBody(suiteQasm(), "full", "running"));
    submit(p, jobBody(suiteQasm(), "eff", "queued1"));
    submit(p, jobBody(suiteQasm(), "eff", "queued2"));
}

// ---- Graceful drain ----------------------------------------------------

TEST(DaemonProtocol, DrainFinishesInFlightAndRejectsNewWork)
{
    Daemon dm(baseOptions());
    const int p = dm.port();
    const std::uint64_t inflight =
        submit(p, jobBody(suiteQasm(), "full", "inflight"));
    dm.d.beginDrain();

    // New submissions bounce with 503 shutting-down + Retry-After.
    const auto rejected = http(p, "POST", "/v1/jobs",
                               jobBody(suiteQasm(), "eff"));
    EXPECT_EQ(rejected.status, 503);
    EXPECT_EQ(errorCode(rejected), service::errc::kShuttingDown);
    EXPECT_NE(rejected.header("retry-after"), nullptr);

    // Status keeps serving during the drain and reports it.
    const auto health = http(p, "GET", "/healthz");
    EXPECT_TRUE(
        parseJson(health.body, "healthz").find("draining")->boolean);

    // The accepted job is never lost: drain completes it, and the
    // result remains fetchable afterwards.
    dm.d.waitDrained();
    EXPECT_EQ(awaitFinal(p, inflight), "done");
    const auto res = http(p, "GET", "/v1/jobs/" +
                                        std::to_string(inflight) +
                                        "/result");
    EXPECT_EQ(res.status, 200);
    EXPECT_TRUE(parseJson(res.body, "result").find("ok")->boolean);
}

// ---- End-to-end bit-identity vs the in-process service -----------------

TEST(DaemonProtocol, ArtifactsBitIdenticalToDirectService)
{
    const std::string qasm = suiteQasm();

    // Direct: the same request on a CompileService, no HTTP.
    service::ServiceOptions sopts;
    sopts.threads = 1;
    service::CompileService svc(sopts);
    service::CompileRequest req;
    req.name = "direct";
    req.qasm = qasm;
    req.pipelineSpec = "eff";
    svc.submit(std::move(req));
    const service::JobResult direct = svc.waitAll().front();
    ASSERT_TRUE(direct.ok) << direct.error;

    // Via the daemon, over the wire.
    Daemon dm(baseOptions());
    const int p = dm.port();
    const std::uint64_t id =
        submit(p, jobBody(qasm, "eff", "wire"));
    ASSERT_EQ(awaitFinal(p, id), "done");
    const auto res = http(p, "GET", "/v1/jobs/" + std::to_string(id) +
                                        "/result");
    ASSERT_EQ(res.status, 200);
    const JsonValue doc = parseJson(res.body, "result");

    // The compiled circuit travels as 17-significant-digit OpenQASM:
    // the daemon's artifact must equal the direct one byte for byte.
    ASSERT_NE(doc.find("circuit"), nullptr);
    EXPECT_EQ(doc.find("circuit")->str,
              circuit::toQasm(direct.compiled.circuit));
    const JsonValue &perm = *doc.find("finalPermutation");
    ASSERT_EQ(perm.array.size(),
              direct.compiled.finalPermutation.size());
    for (std::size_t i = 0; i < perm.array.size(); ++i)
        EXPECT_EQ(static_cast<int>(perm.array[i].number),
                  direct.compiled.finalPermutation[i]);
    // And the scalar metrics agree exactly.
    EXPECT_EQ(doc.find("count2Q")->number,
              static_cast<double>(direct.metrics.count2Q));
    EXPECT_EQ(doc.find("duration")->number,
              direct.metrics.duration);
}
