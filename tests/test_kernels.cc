/**
 * @file
 * The qmath kernel layer's three contracts, pinned:
 *
 *  1. Bit-identity: the SIMD backend produces exactly the same
 *     doubles as the scalar backend for every kernel at every
 *     supported size — oracled over randomized unitaries in one
 *     binary via setSimdEnabled(), and end to end by compiling every
 *     checked-in example circuit with SIMD on vs off and comparing
 *     the artifacts byte for byte.
 *
 *  2. The generic-matmul skip branch: small (<= 8x8) dense operands
 *     run every accumulation (non-finite values propagate), larger
 *     ones keep the structured-zero skip (a zero row contributes
 *     exactly nothing). Deliberate, observable behavior — pinned so
 *     it only changes on purpose.
 *
 *  3. Allocation-freedom: the 4x4/8x8 hot expressions (the synthesis
 *     inner loops) perform zero heap allocations once their
 *     destinations exist, counted by a global operator new hook.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <new>
#include <sstream>
#include <string>
#include <vector>

#include "circuit/qasm.hh"
#include "qmath/kernels.hh"
#include "qmath/random.hh"
#include "service/service.hh"
#include "test_util.hh"

#ifndef REQISC_SOURCE_DIR
#define REQISC_SOURCE_DIR "."
#endif

// ---- Global allocation counter (contract 3) ------------------------
// Counts every path into the heap, including the aligned forms
// std::vector<Matrix> uses now that Matrix carries a 32-byte-aligned
// inline buffer.

namespace
{
std::atomic<long> g_allocs{0};

void *
countedAlloc(std::size_t n)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(n ? n : 1))
        return p;
    throw std::bad_alloc();
}

void *
countedAlignedAlloc(std::size_t n, std::size_t al)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::aligned_alloc(al, (n + al - 1) & ~(al - 1)))
        return p;
    throw std::bad_alloc();
}
}

void *operator new(std::size_t n) { return countedAlloc(n); }
void *operator new[](std::size_t n) { return countedAlloc(n); }

void *
operator new(std::size_t n, std::align_val_t al)
{
    return countedAlignedAlloc(n, static_cast<std::size_t>(al));
}

void *
operator new[](std::size_t n, std::align_val_t al)
{
    return countedAlignedAlloc(n, static_cast<std::size_t>(al));
}

void operator delete(void *p) noexcept { std::free(p); }
void operator delete[](void *p) noexcept { std::free(p); }
void operator delete(void *p, std::size_t) noexcept { std::free(p); }
void operator delete[](void *p, std::size_t) noexcept { std::free(p); }
void operator delete(void *p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void *p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}
void operator delete[](void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

namespace
{

using namespace reqisc;
using qmath::Complex;
using qmath::Matrix;
namespace kernels = qmath::kernels;

/** Restore the dispatch state a test toggled, exception-safe. */
struct SimdGuard
{
    bool was = kernels::simdActive();
    ~SimdGuard() { kernels::setSimdEnabled(was); }
};

::testing::AssertionResult
bitIdentical(const Matrix &a, const Matrix &b)
{
    if (a.rows() != b.rows() || a.cols() != b.cols())
        return ::testing::AssertionFailure()
               << "shape " << a.rows() << "x" << a.cols() << " vs "
               << b.rows() << "x" << b.cols();
    if (std::memcmp(a.data(), b.data(),
                    a.size() * sizeof(Complex)) != 0) {
        for (int i = 0; i < a.rows(); ++i)
            for (int j = 0; j < a.cols(); ++j)
                if (std::memcmp(&a(i, j), &b(i, j),
                                sizeof(Complex)) != 0)
                    return ::testing::AssertionFailure()
                           << "first mismatch at (" << i << "," << j
                           << "): scalar (" << a(i, j).real() << ","
                           << a(i, j).imag() << ") simd ("
                           << b(i, j).real() << "," << b(i, j).imag()
                           << ")";
    }
    return ::testing::AssertionSuccess();
}

// ---- Contract 1: scalar-vs-SIMD oracle -----------------------------

TEST(KernelsBitIdentity, MulAtEverySpecializedSize)
{
    SimdGuard guard;
    if (!kernels::setSimdEnabled(true))
        GTEST_SKIP() << "SIMD backend unavailable in this build";
    qmath::Rng rng(7);
    for (int n : {2, 4, 8}) {
        for (int trial = 0; trial < 32; ++trial) {
            const Matrix a = qmath::randomUnitary(n, rng);
            const Matrix b = qmath::randomUnitary(n, rng);
            Matrix rs, rv;
            kernels::setSimdEnabled(false);
            kernels::mulInto(rs, a, b);
            const Complex ts = kernels::mulTrace(a, b);
            kernels::setSimdEnabled(true);
            kernels::mulInto(rv, a, b);
            const Complex tv = kernels::mulTrace(a, b);
            ASSERT_TRUE(bitIdentical(rs, rv)) << "mul n=" << n;
            // mulTrace is scalar on every backend, and must equal
            // the full product's trace bit for bit (same chains).
            ASSERT_EQ(std::memcmp(&ts, &tv, sizeof ts), 0);
            const Complex tp = kernels::trace(rv);
            ASSERT_EQ(std::memcmp(&ts, &tp, sizeof ts), 0)
                << "mulTrace != trace(mul) at n=" << n;
        }
    }
}

TEST(KernelsBitIdentity, KronDaggerAxpyScale)
{
    SimdGuard guard;
    if (!kernels::setSimdEnabled(true))
        GTEST_SKIP() << "SIMD backend unavailable in this build";
    qmath::Rng rng(11);
    const std::vector<std::pair<int, int>> kronDims = {
        {2, 2}, {2, 4}, {4, 2}, {2, 3}, {3, 2}};
    for (int trial = 0; trial < 32; ++trial) {
        for (auto [an, bn] : kronDims) {
            const Matrix a = qmath::randomUnitary(an, rng);
            const Matrix b = qmath::randomUnitary(bn, rng);
            Matrix ks, kv;
            kernels::setSimdEnabled(false);
            kernels::kronInto(ks, a, b);
            kernels::setSimdEnabled(true);
            kernels::kronInto(kv, a, b);
            ASSERT_TRUE(bitIdentical(ks, kv))
                << "kron " << an << "x" << bn;
        }
        for (int n : {2, 4, 8}) {
            const Matrix a = qmath::randomUnitary(n, rng);
            const Matrix x = qmath::randomUnitary(n, rng);
            std::uniform_real_distribution<double> u(-2.0, 2.0);
            const Complex s(u(rng), u(rng));
            Matrix ds, dv, ys, yv, ss, sv;
            kernels::setSimdEnabled(false);
            kernels::daggerInto(ds, a);
            ys = a;
            kernels::axpyInPlace(ys, s, x);
            ss = a;
            kernels::scaleInPlace(ss, s);
            kernels::setSimdEnabled(true);
            kernels::daggerInto(dv, a);
            yv = a;
            kernels::axpyInPlace(yv, s, x);
            sv = a;
            kernels::scaleInPlace(sv, s);
            ASSERT_TRUE(bitIdentical(ds, dv)) << "dagger n=" << n;
            ASSERT_TRUE(bitIdentical(ys, yv)) << "axpy n=" << n;
            ASSERT_TRUE(bitIdentical(ss, sv)) << "scale n=" << n;
        }
    }
}

TEST(KernelsBitIdentity, DispatchReportsItsState)
{
    SimdGuard guard;
    EXPECT_STREQ(kernels::backendName(),
                 kernels::simdActive() ? "avx2" : "scalar");
    kernels::setSimdEnabled(false);
    EXPECT_FALSE(kernels::simdActive());
    EXPECT_STREQ(kernels::backendName(), "scalar");
    if (kernels::simdCompiledIn() && kernels::setSimdEnabled(true)) {
        EXPECT_STREQ(kernels::backendName(), "avx2");
    }
}

// ---- Contract 2: the skip-branch boundary --------------------------

TEST(KernelsSkipBranch, SmallDenseOperandsPropagateNonFinites)
{
    // A zero entry meeting an infinity accumulates 0 * inf = NaN in
    // the dense (<= 8x8) path — every chain really runs.
    for (int n : {2, 4, 8}) {
        Matrix a(n, n), b(n, n);
        // a's first row is entirely zero; b(0,0) is infinite.
        for (int i = 1; i < n; ++i)
            a(i, i) = Complex(1.0, 0.0);
        b(0, 0) = Complex(INFINITY, 0.0);
        const Matrix r = a * b;  // dispatched kernel
        EXPECT_TRUE(std::isnan(r(0, 0).real()))
            << "n=" << n << ": dense path must run the 0 * inf chain";
        Matrix g;
        kernels::mulGenericInto(g, a, b);
        EXPECT_TRUE(std::isnan(g(0, 0).real()))
            << "n=" << n << ": generic dense loop must match";
    }
}

TEST(KernelsSkipBranch, LargeOperandsStillSkipZeroRows)
{
    // Above the inline size the structured-zero skip is kept: a zero
    // a(i,k) contributes exactly nothing, so the same 0-row-meets-inf
    // construction yields an exact 0.0, not NaN.
    const int n = 9;
    Matrix a(n, n), b(n, n);
    for (int i = 1; i < n; ++i)
        a(i, i) = Complex(1.0, 0.0);
    b(0, 0) = Complex(INFINITY, 0.0);
    const Matrix r = a * b;
    EXPECT_EQ(r(0, 0), Complex(0.0, 0.0))
        << "skip path must not touch the zero row";
    EXPECT_TRUE(std::isinf(r(1, 0).real()) || r(1, 0) == Complex(0.0, 0.0))
        << "nonzero rows still multiply through";
}

// ---- Contract 3: allocation-free hot expressions -------------------

TEST(KernelsAllocation, SmallMatrixHotExpressionsAreHeapFree)
{
    qmath::Rng rng(13);
    for (int n : {4, 8}) {
        const Matrix a = qmath::randomUnitary(n, rng);
        const Matrix b = qmath::randomUnitary(n, rng);
        const Matrix b2 = qmath::randomUnitary(2, rng);
        const Complex s(0.25, -0.5);
        Matrix dst, k, d;
        // Warm the destinations, then demand zero allocations from
        // the full set of hot expressions — including the
        // value-returning operators, whose results live in the
        // inline buffer.
        kernels::mulInto(dst, a, b);
        const long before = g_allocs.load(std::memory_order_relaxed);
        for (int rep = 0; rep < 16; ++rep) {
            kernels::mulInto(dst, a, b);
            if (n <= 4)
                kernels::kronInto(k, a, b2);
            kernels::daggerInto(d, dst);
            kernels::axpyInPlace(dst, s, a);
            kernels::scaleInPlace(dst, s);
            const Complex t = kernels::mulTrace(a, b);
            (void)t;
            const Matrix prod = a * b;
            const Matrix dd = prod.dagger();
            Matrix moved = std::move(d);
            d = std::move(moved);
            dst = prod + dd;
        }
        const long after = g_allocs.load(std::memory_order_relaxed);
        EXPECT_EQ(after, before)
            << "n=" << n << ": " << (after - before)
            << " heap allocation(s) in the hot loop";
    }
}

TEST(KernelsAllocation, LargeMatricesStillSpillToTheHeap)
{
    // Sanity check on the counter itself and the SBO boundary: a
    // 16x16 product must allocate.
    qmath::Rng rng(17);
    const Matrix a = qmath::randomUnitary(16, rng);
    const Matrix b = qmath::randomUnitary(16, rng);
    const long before = g_allocs.load(std::memory_order_relaxed);
    Matrix dst;
    kernels::mulInto(dst, a, b);
    EXPECT_GT(g_allocs.load(std::memory_order_relaxed), before);
}

// ---- Contract 1, end to end: artifacts with SIMD on vs off ---------

std::string
readFile(const std::string &rel)
{
    std::ifstream in(std::string(REQISC_SOURCE_DIR) + rel);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

struct Artifact
{
    std::string qasm;
    std::vector<int> permutation;
};

Artifact
compileExample(const std::string &source)
{
    service::ServiceOptions sopts;
    sopts.threads = 1;
    service::CompileService svc(sopts);
    service::CompileRequest req;
    req.name = "identity-check";
    req.qasm = source;
    req.pipelineSpec = "full";
    svc.submit(std::move(req));
    const service::JobResult r = svc.waitAll().front();
    EXPECT_TRUE(r.ok) << r.error;
    return {circuit::toQasm(r.compiled.circuit),
            r.compiled.finalPermutation};
}

TEST(KernelsBitIdentity, CompiledArtifactsMatchSimdOnVsOff)
{
    SimdGuard guard;
    if (!kernels::setSimdEnabled(true))
        GTEST_SKIP() << "SIMD backend unavailable in this build";
    const std::vector<std::string> examples = {
        "/examples/qasm/ghz8.qasm", "/examples/qasm/qft4.qasm",
        "/examples/qasm/adder5.qasm", "/examples/qasm/ising6.qasm"};
    for (const std::string &rel : examples) {
        const std::string src = readFile(rel);
        ASSERT_FALSE(src.empty()) << rel;
        kernels::setSimdEnabled(true);
        const Artifact with = compileExample(src);
        kernels::setSimdEnabled(false);
        const Artifact without = compileExample(src);
        // 17-significant-digit OpenQASM: byte equality is double
        // equality for every gate parameter in the artifact.
        EXPECT_EQ(with.qasm, without.qasm) << rel;
        EXPECT_EQ(with.permutation, without.permutation) << rel;
    }
}

} // namespace
