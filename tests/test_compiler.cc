/**
 * @file
 * Tests for the compiler passes, pipelines and baselines. The core
 * invariant: every pass and pipeline preserves circuit semantics up
 * to global phase (and the tracked output permutation for mirroring).
 */

#include <cmath>

#include <gtest/gtest.h>

#include "circuit/lower.hh"
#include "compiler/baselines.hh"
#include "compiler/metrics.hh"
#include "compiler/passes.hh"
#include "compiler/pipeline.hh"
#include "qmath/random.hh"
#include "qsim/statevector.hh"
#include "test_util.hh"

using namespace reqisc;
using namespace reqisc::circuit;
using namespace reqisc::compiler;
using namespace reqisc::qmath;

namespace
{

/** Small mixed test circuit with high-level and low-level gates. */
Circuit
mixedCircuit(int seed)
{
    Rng rng(seed);
    std::uniform_real_distribution<double> ang(-1.5, 1.5);
    Circuit c(4);
    c.add(Gate::h(0));
    c.add(Gate::cx(0, 1));
    c.add(Gate::t(1));
    c.add(Gate::cx(0, 1));
    c.add(Gate::ccx(0, 1, 2));
    c.add(Gate::rz(2, ang(rng)));
    c.add(Gate::cx(2, 3));
    c.add(Gate::rx(3, ang(rng)));
    c.add(Gate::cx(2, 3));
    c.add(Gate::ccx(1, 2, 3));
    c.add(Gate::h(3));
    c.add(Gate::cx(0, 3));
    return c;
}

/** Semantics check up to phase and an output permutation. */
::testing::AssertionResult
sameSemantics(const Circuit &a, const Circuit &b,
              const std::vector<int> &perm_b, double tol = 1e-6)
{
    Matrix ua = qsim::buildUnitary(a);
    Matrix ub = perm_b.empty()
        ? qsim::buildUnitary(b)
        : qsim::buildUnitaryWithPermutation(b, perm_b);
    if (ua.approxEqualUpToPhase(ub, tol))
        return ::testing::AssertionSuccess();
    return ::testing::AssertionFailure()
           << "circuits differ, fidelity="
           << qmath::traceFidelity(ua, ub);
}

} // namespace

TEST(Passes, Fuse1QPreservesSemantics)
{
    Circuit c(2);
    c.add(Gate::h(0));
    c.add(Gate::t(0));
    c.add(Gate::s(0));
    c.add(Gate::x(1));
    c.add(Gate::cx(0, 1));
    c.add(Gate::rz(1, 0.3));
    c.add(Gate::rx(1, 0.7));
    Circuit f = fuse1Q(c);
    EXPECT_TRUE(sameSemantics(c, f, {}));
    // The three leading 1Q gates merge into one U3.
    EXPECT_EQ(f.size(), 4u);
}

TEST(Passes, Fuse1QDropsIdentity)
{
    Circuit c(1);
    c.add(Gate::h(0));
    c.add(Gate::h(0));
    Circuit f = fuse1Q(c);
    EXPECT_EQ(f.size(), 0u);
}

TEST(Passes, Fuse2QBlocksMergesRuns)
{
    Circuit c = mixedCircuit(3);
    Circuit low = lowerThreeQubit(c);
    Circuit f = fuse2QBlocks(fuse1Q(low));
    EXPECT_TRUE(sameSemantics(low, f, {}));
    // The CX-T-CX runs on a pair collapse into single U4s.
    EXPECT_LT(f.count2Q(), low.count2Q());
}

TEST(Passes, Fuse2QBlocksParallelPairs)
{
    Circuit c(4);
    c.add(Gate::cx(0, 1));
    c.add(Gate::cx(2, 3));
    c.add(Gate::cx(0, 1));
    c.add(Gate::cx(2, 3));
    Circuit f = fuse2QBlocks(c);
    EXPECT_TRUE(sameSemantics(c, f, {}));
    EXPECT_EQ(f.count2Q(), 2);
}

TEST(Passes, Partition3QCoversAllGates)
{
    Circuit c = fuse2QBlocks(fuse1Q(lowerThreeQubit(
        mixedCircuit(5))));
    auto blocks = partition3Q(c);
    size_t total = 0;
    for (const auto &b : blocks) {
        EXPECT_LE(b.qubits.size(), 3u);
        total += b.gates.size();
    }
    EXPECT_EQ(total, c.size());
    Circuit re = blocksToCircuit(blocks, c.numQubits());
    EXPECT_TRUE(sameSemantics(c, re, {}));
}

TEST(Passes, DagCompactPreservesSemantics)
{
    Rng rng(31);
    Circuit c(4);
    // Chain of overlapping random SU(4)s, the compacting target.
    for (int i = 0; i < 6; ++i) {
        int a = i % 3;
        c.add(Gate::u4(a, a + 1, randomUnitary(4, rng)));
    }
    Circuit d = dagCompact(c);
    EXPECT_TRUE(sameSemantics(c, d, {}, 1e-4));
    EXPECT_LE(compactnessScore(d), compactnessScore(c));
}

TEST(Passes, HierarchicalSynthesisReducesCount)
{
    // A CCX-pair circuit in CX basis has 12+ 2Q gates; hierarchical
    // synthesis must cut it substantially.
    Circuit c(3);
    c.add(Gate::ccx(0, 1, 2));
    c.add(Gate::ccx(0, 2, 1));
    Circuit low = lowerThreeQubit(c);
    ASSERT_GE(low.count2Q(), 12);
    Circuit h = hierarchicalSynthesis(low);
    EXPECT_TRUE(sameSemantics(low, h, {}, 1e-3));
    EXPECT_LE(h.count2Q(), 7);
}

TEST(Passes, MirrorNearIdentityTracksPermutation)
{
    Rng rng(37);
    Circuit c(3);
    // A near-identity CAN plus regular gates.
    c.add(Gate::h(0));
    c.add(Gate::can(0, 1, {0.02, 0.01, 0.0}));
    c.add(Gate::cx(1, 2));
    c.add(Gate::can(1, 2, {0.03, 0.0, 0.0}));
    std::vector<int> perm;
    Circuit m = mirrorNearIdentity(c, perm, 0.1);
    EXPECT_TRUE(sameSemantics(c, m, perm));
    // Both near-identity gates were mirrored; #2Q unchanged.
    EXPECT_EQ(m.count2Q(), c.count2Q());
    // All remaining 2Q gates are far from identity.
    for (const Gate &g : m) {
        if (g.is2Q()) {
            EXPECT_GT(g.weylCoord().norm1(), 0.1);
        }
    }
}

TEST(Passes, MirrorIdentityPermWhenNothingNearIdentity)
{
    Circuit c(2);
    c.add(Gate::cx(0, 1));
    std::vector<int> perm;
    Circuit m = mirrorNearIdentity(c, perm, 0.05);
    EXPECT_EQ(perm, (std::vector<int>{0, 1}));
    EXPECT_TRUE(sameSemantics(c, m, perm));
}

TEST(Passes, GroupPauliRotationsEnablesFusion)
{
    Circuit c(3);
    c.add(Gate::rzz(0, 1, 0.3));
    c.add(Gate::rzz(1, 2, 0.4));
    c.add(Gate::rzz(0, 1, 0.5));
    Circuit g = groupPauliRotations(c);
    EXPECT_TRUE(sameSemantics(c, g, {}));
    Circuit f = fuse2QBlocks(g);
    EXPECT_EQ(f.count2Q(), 2);  // the two (0,1) rotations merged
}

TEST(Passes, CancelAdjacentCx)
{
    Circuit c(3);
    c.add(Gate::cx(0, 1));
    c.add(Gate::cx(0, 1));
    c.add(Gate::cx(1, 2));
    c.add(Gate::h(0));   // does not block the (1,2) pair
    c.add(Gate::cx(1, 2));
    Circuit f = cancelAdjacentCx(c);
    EXPECT_TRUE(sameSemantics(c, f, {}));
    EXPECT_EQ(f.countOp(Op::CX), 0);
}

TEST(Pipeline, TemplateSynthesisCorrectAndSmall)
{
    Circuit c(4);
    c.add(Gate::ccx(0, 1, 2));
    c.add(Gate::ccx(1, 2, 3));
    c.add(Gate::cx(0, 3));
    Circuit t = templateSynthesis(c);
    EXPECT_TRUE(sameSemantics(c, t, {}, 1e-3));
    // Each CCX costs at most 5 SU(4)s, far below the 6-CX unrolling.
    EXPECT_LE(t.count2Q(), 11);
}

TEST(Pipeline, EffPreservesSemantics)
{
    Circuit c = mixedCircuit(41);
    CompileResult r = reqiscEff(c);
    EXPECT_TRUE(sameSemantics(c, r.circuit, r.finalPermutation,
                              1e-4));
    for (const Gate &g : r.circuit)
        EXPECT_TRUE(g.op == Op::CAN || g.op == Op::U3);
}

TEST(Pipeline, FullPreservesSemanticsAndReduces)
{
    Circuit c = mixedCircuit(43);
    Circuit low = lowerToCnot3(c);
    CompileResult eff = reqiscEff(c);
    CompileResult full = reqiscFull(c);
    EXPECT_TRUE(sameSemantics(c, full.circuit,
                              full.finalPermutation, 1e-3));
    EXPECT_LE(full.circuit.count2Q(), eff.circuit.count2Q());
    EXPECT_LT(eff.circuit.count2Q(), low.count2Q());
}

TEST(Pipeline, EffHasFewDistinctSU4)
{
    // Template-based compilation keeps the calibration set small.
    Circuit c(5);
    for (int i = 0; i < 3; ++i) {
        c.add(Gate::ccx(i, i + 1, i + 2));
        c.add(Gate::cx(i, i + 1));
    }
    CompileResult r = reqiscEff(c);
    EXPECT_LE(r.circuit.countDistinctSU4(1e-6), 10);
}

TEST(Pipeline, NoCompactingAblationStillCorrect)
{
    Circuit c = mixedCircuit(47);
    CompileOptions opts;
    opts.dagCompacting = false;
    CompileResult r = reqiscFull(c, opts);
    EXPECT_TRUE(sameSemantics(c, r.circuit, r.finalPermutation,
                              1e-3));
}

TEST(Baselines, QiskitLikePreservesAndReduces)
{
    Circuit c = mixedCircuit(53);
    Circuit low = lowerToCnot3(c);
    Circuit q = qiskitLike(c);
    EXPECT_TRUE(sameSemantics(c, q, {}, 1e-4));
    EXPECT_LE(q.count2Q(), low.count2Q());
    for (const Gate &g : q)
        EXPECT_TRUE(g.numQubits() == 1 || g.op == Op::CX);
}

TEST(Baselines, TketLikeMergesRotations)
{
    Circuit c(3);
    c.add(Gate::rzz(0, 1, 0.3));
    c.add(Gate::rzz(1, 2, 0.4));
    c.add(Gate::rzz(0, 1, 0.5));
    c.add(Gate::rx(0, 0.2));
    Circuit t = tketLike(c);
    EXPECT_TRUE(sameSemantics(c, t, {}, 1e-4));
    // Merged (0,1) rotations: 2 + 2 CX instead of 6.
    EXPECT_LE(t.countOp(Op::CX), 4);
}

TEST(Baselines, BqskitLikeResynthesizes)
{
    Circuit c(3);
    c.add(Gate::ccx(0, 1, 2));
    c.add(Gate::ccx(0, 2, 1));
    Circuit b = bqskitLike(c);
    EXPECT_TRUE(sameSemantics(c, b, {}, 1e-3));
    // 12 CX unrolled -> at most 3 * (SU4 blocks) after resynthesis.
    EXPECT_LT(b.countOp(Op::CX), 12);
}

TEST(Baselines, Su4VariantsEmitCanU3)
{
    Circuit c = mixedCircuit(59);
    for (auto *fn : {&qiskitSU4, &tketSU4, &bqskitSU4}) {
        Circuit out = (*fn)(c);
        EXPECT_TRUE(sameSemantics(c, out, {}, 1e-3));
        for (const Gate &g : out)
            EXPECT_TRUE(g.op == Op::CAN || g.op == Op::U3)
                << g.toString();
    }
}

TEST(Metrics, DurationModels)
{
    Circuit c(2);
    c.add(Gate::cx(0, 1));
    auto conv = conventionalDurationModel(1.0);
    auto rq = reqiscDurationModel(uarch::Coupling::xy(1.0));
    Metrics mc = evaluate(c, conv);
    Metrics mr = evaluate(c, rq);
    EXPECT_NEAR(mc.duration, M_PI / std::sqrt(2.0), 1e-9);
    EXPECT_NEAR(mr.duration, M_PI / 2.0, 1e-9);
    EXPECT_EQ(mc.count2Q, 1);
    EXPECT_EQ(mc.depth2Q, 1);
}

TEST(Metrics, SwapCostsThreeConventionally)
{
    Circuit c(2);
    c.add(Gate::swap(0, 1));
    auto conv = conventionalDurationModel(1.0);
    EXPECT_NEAR(evaluate(c, conv).duration,
                3.0 * M_PI / std::sqrt(2.0), 1e-9);
    auto rq = reqiscDurationModel(uarch::Coupling::xy(1.0));
    EXPECT_NEAR(evaluate(c, rq).duration, 0.75 * M_PI, 1e-9);
}
