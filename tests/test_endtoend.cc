/**
 * @file
 * End-to-end integration tests: every small benchmark runs through
 * the full stack — compile (Eff and Full), route, pulse-solve — with
 * semantics and invariants checked at each stage. These are the
 * "executable Table 2 / Fig 12 / Fig 15" correctness backbone.
 */

#include <gtest/gtest.h>

#include "circuit/lower.hh"
#include "circuit/qasm.hh"
#include "compiler/baselines.hh"
#include "compiler/metrics.hh"
#include "compiler/pipeline.hh"
#include "qsim/statevector.hh"
#include "route/sabre.hh"
#include "suite/suite.hh"
#include "test_util.hh"
#include "uarch/calibration.hh"
#include "weyl/invariants.hh"

using namespace reqisc;
using namespace reqisc::circuit;
using namespace reqisc::qmath;

namespace
{

/** All small benchmarks, addressable by index for TEST_P. */
const std::vector<suite::Benchmark> &
benchmarks()
{
    static const auto suite = suite::smallSuite();
    return suite;
}

Matrix
referenceUnitary(const suite::Benchmark &bm)
{
    return qsim::buildUnitary(circuit::lowerToCnot(bm.circuit));
}

} // namespace

class EndToEnd : public ::testing::TestWithParam<int>
{
  protected:
    const suite::Benchmark &bm() const
    {
        return benchmarks()[GetParam()];
    }
};

TEST_P(EndToEnd, EffPreservesSemantics)
{
    if (bm().circuit.numQubits() > 8)
        GTEST_SKIP() << "too large for unitary verification";
    const Matrix ref = referenceUnitary(bm());
    compiler::CompileResult r = compiler::reqiscEff(bm().circuit);
    const Matrix got = qsim::buildUnitaryWithPermutation(
        r.circuit, r.finalPermutation);
    EXPECT_LT(qmath::traceInfidelity(ref, got), 1e-6) << bm().name;
}

TEST_P(EndToEnd, FullPreservesSemanticsAndNeverWorseThanEff)
{
    if (bm().circuit.numQubits() > 8)
        GTEST_SKIP() << "too large for unitary verification";
    const Matrix ref = referenceUnitary(bm());
    compiler::CompileResult eff = compiler::reqiscEff(bm().circuit);
    compiler::CompileResult full = compiler::reqiscFull(bm().circuit);
    const Matrix got = qsim::buildUnitaryWithPermutation(
        full.circuit, full.finalPermutation);
    EXPECT_LT(qmath::traceInfidelity(ref, got), 1e-5) << bm().name;
    EXPECT_LE(full.circuit.count2Q(), eff.circuit.count2Q())
        << bm().name;
}

TEST_P(EndToEnd, CompiledGatesAreNotNearIdentity)
{
    // Mirroring must leave no near-identity 2Q gate behind.
    compiler::CompileOptions opts;
    compiler::CompileResult r =
        compiler::reqiscFull(bm().circuit, opts);
    for (const Gate &g : r.circuit) {
        if (g.is2Q()) {
            EXPECT_GT(g.weylCoord().norm1(),
                      opts.mirrorThreshold - 1e-9)
                << bm().name << " " << g.toString();
        }
    }
}

TEST_P(EndToEnd, EveryCompiledGateIsPulseSolvable)
{
    // The whole point of the stack: each emitted SU(4) must have a
    // verified pulse solution on XY hardware.
    compiler::CompileResult r = compiler::reqiscFull(bm().circuit);
    uarch::GateScheme scheme(uarch::Coupling::xy(1.0));
    for (const Gate &g : r.circuit) {
        if (!g.is2Q())
            continue;
        uarch::PulseSolution s = scheme.solve(g.matrix());
        ASSERT_TRUE(s.converged)
            << bm().name << " " << g.toString();
        // Eq. (5): corrections reproduce the gate exactly.
        Matrix rebuilt = kron(s.a1, s.a2) * scheme.evolution(s) *
                         kron(s.b1, s.b2);
        EXPECT_LT(qmath::traceInfidelity(rebuilt, g.matrix()), 1e-6)
            << bm().name;
    }
}

TEST_P(EndToEnd, CalibrationPlanCoversCircuit)
{
    compiler::CompileResult r = compiler::reqiscEff(bm().circuit);
    uarch::CalibrationPlan plan = uarch::planCalibration(
        r.circuit, uarch::Coupling::xy(1.0));
    EXPECT_EQ(plan.unsolved, 0) << bm().name;
    int total = 0;
    for (const auto &e : plan.entries)
        total += e.uses;
    EXPECT_EQ(total, r.circuit.count2Q()) << bm().name;
    EXPECT_EQ(plan.distinctGates(),
              r.circuit.countDistinctSU4(1e-6));
    EXPECT_GT(plan.cost(), 0.0);
}

TEST_P(EndToEnd, RoutedOnChainRespectsTopologyAndSemantics)
{
    // 8-qubit instances (comparator_3, rip_add_8) are in scope: a
    // 256-amplitude statevector check is cheap, and routing is
    // deterministic (fixed RouteOptions::seed), so the whole small
    // suite exercises routed-chain semantics.
    if (bm().circuit.numQubits() > 8)
        GTEST_SKIP() << "too large for routed verification";
    compiler::CompileResult full = compiler::reqiscFull(bm().circuit);
    const int n = full.circuit.numQubits();
    route::Topology topo = route::Topology::chain(n);
    route::RouteOptions opts;
    opts.mirroring = true;
    route::RouteResult rr =
        route::sabreRoute(full.circuit, topo, opts);
    for (const Gate &g : rr.circuit) {
        if (g.numQubits() == 2) {
            EXPECT_TRUE(topo.connected(g.qubits[0], g.qubits[1]))
                << bm().name;
        }
    }
    // Statevector check from |0..0>: compose compile + route
    // permutations and compare with the reference output.
    qsim::StateVector ref_sv(n);
    ref_sv.applyCircuit(circuit::lowerToCnot(bm().circuit));
    qsim::StateVector phys_sv(n);
    Circuit lowered(n);
    for (const Gate &g : rr.circuit) {
        if (g.op == Op::SWAP) {
            lowered.add(Gate::cx(g.qubits[0], g.qubits[1]));
            lowered.add(Gate::cx(g.qubits[1], g.qubits[0]));
            lowered.add(Gate::cx(g.qubits[0], g.qubits[1]));
        } else {
            lowered.add(g);
        }
    }
    phys_sv.applyCircuit(lowered);
    std::vector<int> layout(n);
    for (int q = 0; q < n; ++q)
        layout[q] = rr.finalLayout[full.finalPermutation[q]];
    phys_sv.permuteQubits(qsim::inversePermutation(layout));
    EXPECT_GT(phys_sv.fidelity(ref_sv), 1.0 - 1e-5) << bm().name;
}

TEST_P(EndToEnd, QasmRoundTrip)
{
    const std::string text = circuit::toQasm(bm().circuit);
    Circuit back = circuit::fromQasm(text);
    ASSERT_EQ(back.numQubits(), bm().circuit.numQubits());
    if (bm().circuit.numQubits() > 8)
        return;
    const Matrix a = qsim::buildUnitary(
        circuit::lowerToCnot(bm().circuit));
    const Matrix b = qsim::buildUnitary(circuit::lowerToCnot(back));
    EXPECT_LT(qmath::traceInfidelity(a, b), 1e-9) << bm().name;
}

TEST_P(EndToEnd, CompiledQasmRoundTrip)
{
    // Compiled circuits contain CAN/U3 (and U4 expansion paths).
    compiler::CompileResult r = compiler::reqiscEff(bm().circuit);
    const std::string text = circuit::toQasm(r.circuit);
    Circuit back = circuit::fromQasm(text);
    if (bm().circuit.numQubits() > 8)
        return;
    const Matrix a = qsim::buildUnitary(r.circuit);
    const Matrix b = qsim::buildUnitary(back);
    EXPECT_LT(qmath::traceInfidelity(a, b), 1e-9) << bm().name;
}

INSTANTIATE_TEST_SUITE_P(
    Suite, EndToEnd,
    ::testing::Range(0, static_cast<int>(benchmarks().size())),
    [](const ::testing::TestParamInfo<int> &info) {
        std::string n = benchmarks()[info.param].name;
        for (char &ch : n)
            if (!std::isalnum(static_cast<unsigned char>(ch)))
                ch = '_';
        return n;
    });

TEST(Invariants, MatchKakOracle)
{
    Rng rng(301);
    for (int rep = 0; rep < 30; ++rep) {
        Matrix u = randomUnitary(4, rng);
        Matrix l = kron(randomSU2(rng), randomSU2(rng));
        Matrix r = kron(randomSU2(rng), randomSU2(rng));
        // Invariant under local dressing.
        EXPECT_TRUE(weyl::locallyEquivalentFast(u, l * u * r, 1e-7));
        // Agreement with the KAK-based oracle on both outcomes.
        Matrix v = randomUnitary(4, rng);
        EXPECT_EQ(weyl::locallyEquivalent(u, v, 1e-7),
                  weyl::locallyEquivalentFast(u, v, 1e-7));
    }
}

TEST(Invariants, KnownValues)
{
    // Makhlin: identity -> g1 = 1, g2 = 3; CNOT -> g1 = 0, g2 = 1;
    // SWAP -> g1 = -1, g2 = -3.
    auto id = weyl::makhlinInvariants(Matrix::identity(4));
    EXPECT_NEAR(std::abs(id.g1 - Complex(1, 0)), 0.0, 1e-10);
    EXPECT_NEAR(id.g2, 3.0, 1e-10);
    auto cx = weyl::makhlinInvariants(Gate::cx(0, 1).matrix());
    EXPECT_NEAR(std::abs(cx.g1), 0.0, 1e-10);
    EXPECT_NEAR(cx.g2, 1.0, 1e-10);
    auto sw = weyl::makhlinInvariants(Gate::swap(0, 1).matrix());
    EXPECT_NEAR(std::abs(sw.g1 - Complex(-1, 0)), 0.0, 1e-10);
    EXPECT_NEAR(sw.g2, -3.0, 1e-10);
}

TEST(Invariants, CoordConsistency)
{
    Rng rng(307);
    for (int rep = 0; rep < 10; ++rep) {
        Matrix u = randomUnitary(4, rng);
        auto direct = weyl::makhlinInvariants(u);
        auto via_coord =
            weyl::makhlinFromCoord(weyl::weylCoordinate(u));
        EXPECT_TRUE(direct.approxEqual(via_coord, 1e-8));
    }
}

TEST(Qasm, ParseErrors)
{
    EXPECT_THROW(circuit::fromQasm("qreg q[2];\nfoo q[0];\n"),
                 std::runtime_error);
    EXPECT_THROW(circuit::fromQasm("cx q[0],q[1];\n"),
                 std::runtime_error);   // gate before qreg
    EXPECT_THROW(circuit::fromQasm("qreg q[2];\ncx q[0],q[1]\n"),
                 std::runtime_error);   // missing semicolon
    EXPECT_THROW(
        circuit::fromQasm("qreg q[2];\nrz(0.4,0.3) q[0];\n"),
        std::runtime_error);            // wrong arity
}

TEST(Qasm, CommentsAndWhitespace)
{
    Circuit c = circuit::fromQasm(
        "OPENQASM 2.0;\n"
        "// header comment\n"
        "qreg q[3];\n"
        "  h q[0];   // trailing comment\n"
        "\n"
        "ccx q[0],q[1],q[2];\n");
    EXPECT_EQ(c.numQubits(), 3);
    EXPECT_EQ(c.size(), 2u);
    EXPECT_EQ(c[1].op, Op::CCX);
}

TEST(Calibration, SharedClassesAreClustered)
{
    Circuit c(3);
    c.add(Gate::cx(0, 1));
    c.add(Gate::cz(1, 2));   // same class as CX
    c.add(Gate::swap(0, 1));
    uarch::CalibrationPlan plan =
        uarch::planCalibration(c, uarch::Coupling::xy(1.0));
    EXPECT_EQ(plan.distinctGates(), 2);
    EXPECT_EQ(plan.unsolved, 0);
    int cnot_uses = 0;
    for (const auto &e : plan.entries)
        if (e.coord.approxEqual(weyl::WeylCoord::cnot(), 1e-6))
            cnot_uses = e.uses;
    EXPECT_EQ(cnot_uses, 2);
}
