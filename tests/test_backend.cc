/**
 * @file
 * Tests for the backend subsystem: the chip-file JSON reader and its
 * field/line-named error paths, per-edge duration / per-qubit noise
 * model wiring, the gate-set reconfiguration loop (analytic
 * application counts pinned against the numeric fixed-basis
 * decomposition), and the acceptance property — on the heterogeneous
 * example chips the reconfigured per-edge gate set estimates at
 * least the fidelity of the best uniform gate set on every example
 * circuit and strictly more on at least one.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "backend/backend.hh"
#include "backend/json.hh"
#include "backend/reconfigure.hh"
#include "circuit/qasm.hh"
#include "isa/fidelity.hh"
#include "isa/program.hh"
#include "service/service.hh"
#include "synth/synthesis.hh"
#include "uarch/duration.hh"
#include "weyl/weyl.hh"

using namespace reqisc;

namespace
{

std::string
repoPath(const std::string &rel)
{
    return std::string(REQISC_SOURCE_DIR) + "/" + rel;
}

std::string
chipPath(const std::string &name)
{
    return repoPath("examples/chips/" + name);
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in) << "cannot open " << path;
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

/**
 * Assert that parsing `json` fails and the error message carries
 * the context prefix and every expected fragment (field names, line
 * numbers).
 */
void
expectRejected(const std::string &json,
               const std::vector<std::string> &fragments)
{
    try {
        backend::Backend::fromJson(json, "chip.json");
        FAIL() << "expected rejection of: " << json;
    } catch (const backend::JsonError &e) {
        const std::string msg = e.what();
        EXPECT_EQ(msg.rfind("chip.json:", 0), 0u)
            << "error lacks file context: " << msg;
        for (const std::string &frag : fragments)
            EXPECT_NE(msg.find(frag), std::string::npos)
                << "error '" << msg << "' lacks fragment '" << frag
                << "'";
    }
}

/**
 * A two-qubit chip with one mutable line: `qubitLine` replaces the
 * first qubit entry, `edgeLines` the edge list body. Keeps the
 * error-path tests readable without string surgery.
 */
std::string
chipWith(const std::string &qubitLine,
         const std::string &edgeLines)
{
    return "{\n"
           "  \"name\": \"t\",\n"
           "  \"qubits\": [\n"
           "    " + qubitLine + ",\n"
           "    {\"t1\": 100, \"t2\": 50}\n"
           "  ],\n"
           "  \"edges\": [\n"
           "    " + edgeLines + "\n"
           "  ]\n"
           "}";
}

const char kPlainEdge[] =
    "{\"qubits\": [0, 1], \"coupling\": {\"type\": \"xy\"}}";
const char kPlainQubit[] = "{\"t1\": 100, \"t2\": 50}";

} // namespace

// ---------------------------------------------------------------------
// JSON reader
// ---------------------------------------------------------------------

TEST(BackendJson, ParsesValuesAndTracksLines)
{
    const backend::JsonValue doc = backend::parseJson(
        "{\n \"a\": [1, 2.5, -3e2],\n \"b\": \"x\\n\",\n"
        " \"c\": true,\n \"d\": null\n}",
        "t");
    ASSERT_TRUE(doc.isObject());
    const backend::JsonValue *a = doc.find("a");
    ASSERT_TRUE(a && a->isArray());
    ASSERT_EQ(a->array.size(), 3u);
    EXPECT_DOUBLE_EQ(a->array[0].number, 1.0);
    EXPECT_DOUBLE_EQ(a->array[1].number, 2.5);
    EXPECT_DOUBLE_EQ(a->array[2].number, -300.0);
    EXPECT_EQ(a->line, 2);
    const backend::JsonValue *b = doc.find("b");
    ASSERT_TRUE(b && b->isString());
    EXPECT_EQ(b->str, "x\n");
    EXPECT_EQ(b->line, 3);
    EXPECT_TRUE(doc.find("c")->boolean);
    EXPECT_TRUE(doc.find("d")->isNull());
    EXPECT_EQ(doc.find("missing"), nullptr);
}

TEST(BackendJson, MalformedInputNamesTheLine)
{
    const auto expectParseError =
        [](const std::string &text, const std::string &fragment) {
            try {
                backend::parseJson(text, "f.json");
                FAIL() << "expected parse error for: " << text;
            } catch (const backend::JsonError &e) {
                const std::string msg = e.what();
                EXPECT_EQ(msg.rfind("f.json:", 0), 0u) << msg;
                EXPECT_NE(msg.find(fragment), std::string::npos)
                    << msg << " lacks " << fragment;
            }
        };
    expectParseError("{\"a\": [1, 2", "unexpected end");
    expectParseError("{\"a\": 1} x", "trailing content");
    expectParseError("{\n\"a\": 01x\n}", "expected");
    expectParseError("{\n\n \"a\": truu}", "invalid literal");
    expectParseError("{\"a\": \"unterminated", "unterminated");
    // The line number points at the offending token.
    try {
        backend::parseJson("{\n \"a\": 1,\n \"b\": }\n}", "f.json");
        FAIL();
    } catch (const backend::JsonError &e) {
        EXPECT_NE(std::string(e.what()).find("f.json:3"),
                  std::string::npos)
            << e.what();
    }
}

// ---------------------------------------------------------------------
// Chip-file schema validation (the satellite error-path checklist)
// ---------------------------------------------------------------------

TEST(BackendSchema, RejectsMalformedFile)
{
    expectRejected("{ \"qubits\": [", {"unexpected end"});
    expectRejected("[1, 2]", {"top-level object"});
    expectRejected("{\"qubits\": [{}], \"edges\": 3}",
                   {"chip.edges", "expected array, got number"});
}

TEST(BackendSchema, RejectsUnknownFields)
{
    expectRejected(
        R"({"qubits": [{"t3": 1}], "edges": []})",
        {"qubits[0]", "unknown field 't3'"});
}

TEST(BackendSchema, RejectsEdgeWithOutOfRangeQubit)
{
    expectRejected(
        chipWith(kPlainQubit,
                 "{\"qubits\": [0, 9], "
                 "\"coupling\": {\"type\": \"xy\"}}"),
        {"edges[0].qubits[1] = 9", "out of range [0, 2)"});
    // A fractional index is rejected too.
    expectRejected(
        chipWith(kPlainQubit,
                 "{\"qubits\": [0, 0.5], "
                 "\"coupling\": {\"type\": \"xy\"}}"),
        {"edges[0].qubits[1]", "out of range"});
}

TEST(BackendSchema, RejectsSelfLoopAndDuplicateEdges)
{
    expectRejected(
        chipWith(kPlainQubit,
                 "{\"qubits\": [1, 1], "
                 "\"coupling\": {\"type\": \"xy\"}}"),
        {"edges[0].qubits", "self-loop on q1"});

    // A reversed duplicate is still a duplicate.
    expectRejected(
        chipWith(kPlainQubit,
                 std::string(kPlainEdge) + ",\n    "
                 "{\"qubits\": [1, 0], "
                 "\"coupling\": {\"type\": \"xy\"}}"),
        {"edges[1]", "duplicate of edges[0]", "(q0, q1)"});
}

TEST(BackendSchema, RejectsNonPositiveT1T2AndBadReadout)
{
    // The line number of the offending field (line 4: the first
    // qubit entry) is part of the message.
    expectRejected(chipWith("{\"t1\": 0, \"t2\": 50}", kPlainEdge),
                   {"chip.json:4", "qubits[0].t1",
                    "must be positive"});
    expectRejected(
        chipWith("{\"t1\": 100, \"t2\": -5}", kPlainEdge),
        {"qubits[0].t2", "must be positive"});
    expectRejected(
        chipWith("{\"t1\": 100, \"t2\": 50, "
                 "\"readoutError\": 1.5}",
                 kPlainEdge),
        {"qubits[0].readoutError", "[0, 1)"});
}

TEST(BackendSchema, RejectsBadCouplings)
{
    expectRejected(
        chipWith(kPlainQubit,
                 "{\"qubits\": [0, 1], "
                 "\"coupling\": {\"type\": \"xy\", \"g\": 0.0}}"),
        {"edges[0].coupling.g", "positive"});
    expectRejected(
        chipWith(kPlainQubit,
                 "{\"qubits\": [0, 1], "
                 "\"coupling\": {\"type\": \"zz\"}}"),
        {"edges[0].coupling.type", "unknown coupling type 'zz'"});
    // Non-canonical explicit coefficients (b > a).
    expectRejected(
        chipWith(kPlainQubit,
                 "{\"qubits\": [0, 1], "
                 "\"coupling\": {\"a\": 0.1, \"b\": 0.5}}"),
        {"edges[0].coupling", "canonical"});
    // Zero strength.
    expectRejected(
        chipWith(kPlainQubit,
                 "{\"qubits\": [0, 1], "
                 "\"coupling\": {\"a\": 0.0}}"),
        {"edges[0].coupling", "must be positive"});
}

TEST(BackendSchema, RejectsBadP0AndDisconnectedTopology)
{
    expectRejected(
        chipWith(kPlainQubit,
                 "{\"qubits\": [0, 1], "
                 "\"coupling\": {\"type\": \"xy\"}, \"p0\": 1.0}"),
        {"edges[0].p0", "[0, 1)"});

    expectRejected(
        R"({"qubits": [{}, {}, {}],
            "edges": [{"qubits": [0, 1],
                       "coupling": {"type": "xy"}}]})",
        {"chip.edges", "disconnected"});

    expectRejected(R"({"qubits": [{}, {}], "edges": []})",
                   {"chip.edges", "at least one edge"});
}

// ---------------------------------------------------------------------
// Loading the shipped chips + model wiring
// ---------------------------------------------------------------------

TEST(Backend, LoadsEveryShippedChipFile)
{
    for (const char *name :
         {"chain8_xy.json", "xx_chain5.json",
          "hetero_heavy_hex.json", "noisy_corner_grid9.json"}) {
        const backend::Backend chip =
            backend::Backend::fromJsonFile(chipPath(name));
        EXPECT_GE(chip.numQubits(), 5) << name;
        EXPECT_TRUE(chip.topology().isConnected()) << name;
        EXPECT_EQ(chip.topology().numQubits(), chip.numQubits());
        EXPECT_EQ(chip.topology().edges().size(),
                  chip.edges().size());
    }
}

TEST(Backend, HeavyHexFieldsSurviveTheRoundTrip)
{
    const backend::Backend chip = backend::Backend::fromJsonFile(
        chipPath("hetero_heavy_hex.json"));
    EXPECT_EQ(chip.name(), "hetero_heavy_hex");
    EXPECT_EQ(chip.numQubits(), 12);
    EXPECT_EQ(chip.edges().size(), 13u);
    EXPECT_FALSE(chip.isHomogeneous());

    // Edge (2,3) is the xx(0.9) coupler.
    const backend::EdgeProperties &e23 = chip.edge(2, 3);
    EXPECT_DOUBLE_EQ(e23.coupling.a, 0.9);
    EXPECT_DOUBLE_EQ(e23.coupling.b, 0.0);
    EXPECT_DOUBLE_EQ(e23.coupling.c, 0.0);
    EXPECT_DOUBLE_EQ(e23.p0, 0.0015);
    // Lookup is orientation-free.
    EXPECT_DOUBLE_EQ(chip.edge(3, 2).coupling.a, 0.9);
    EXPECT_TRUE(chip.hasEdge(3, 10));
    EXPECT_FALSE(chip.hasEdge(0, 5));
    EXPECT_THROW(chip.edge(0, 5), std::invalid_argument);

    EXPECT_DOUBLE_EQ(chip.qubit(11).t1, 650.0);
    EXPECT_DOUBLE_EQ(chip.qubit(11).readoutError, 0.028);
}

TEST(Backend, UniformFactoryMatchesTopologyAndDefaults)
{
    const route::Topology topo = route::Topology::gridFor(6);
    backend::QubitCalibration cal;
    cal.t1 = 500.0;
    cal.t2 = 250.0;
    const backend::Backend chip = backend::Backend::uniform(
        topo, uarch::Coupling::xx(0.8), cal, 0.002);
    EXPECT_EQ(chip.numQubits(), topo.numQubits());
    EXPECT_EQ(chip.edges().size(), topo.edges().size());
    EXPECT_TRUE(chip.isHomogeneous());
    for (const auto &e : chip.edges()) {
        EXPECT_DOUBLE_EQ(e.coupling.a, 0.8);
        EXPECT_DOUBLE_EQ(e.p0, 0.002);
    }
    EXPECT_DOUBLE_EQ(chip.qubit(0).t1, 500.0);
}

TEST(Backend, DurationModelUsesPerEdgeCouplings)
{
    const backend::Backend chip = backend::Backend::fromJsonFile(
        chipPath("hetero_heavy_hex.json"));
    const isa::DurationModel model = chip.durationModel();

    // CX on the xx(0.9) edge vs on the xy(1.0) edge: the same gate
    // class is timed against each edge's own coupling.
    const double onXx = model.gate(circuit::Gate::cx(2, 3));
    const double onXy = model.gate(circuit::Gate::cx(0, 1));
    EXPECT_NEAR(onXx,
                uarch::optimalDuration(uarch::Coupling::xx(0.9),
                                       weyl::WeylCoord::cnot()),
                1e-12);
    EXPECT_NEAR(onXy,
                uarch::optimalDuration(uarch::Coupling::xy(1.0),
                                       weyl::WeylCoord::cnot()),
                1e-12);
    EXPECT_GT(onXy, onXx);
    // Orientation does not matter.
    EXPECT_NEAR(model.gate(circuit::Gate::cx(3, 2)), onXx, 1e-12);
    // Off-edge pairs fall back to the chip-wide fallback coupling.
    EXPECT_NEAR(model.gate(circuit::Gate::cx(0, 5)),
                uarch::optimalDuration(model.coupling,
                                       weyl::WeylCoord::cnot()),
                1e-12);
    // An empty map reproduces the pre-backend behavior.
    isa::DurationModel plain;
    EXPECT_NEAR(plain.gate(circuit::Gate::cx(2, 3)),
                uarch::optimalDuration(plain.coupling,
                                       weyl::WeylCoord::cnot()),
                1e-12);
}

TEST(Backend, NoiseModelCarriesPerQubitAndPerEdgeCalibration)
{
    const backend::Backend chip = backend::Backend::fromJsonFile(
        chipPath("hetero_heavy_hex.json"));
    const isa::NoiseModel noise = chip.noiseModel();
    EXPECT_DOUBLE_EQ(noise.t1For(11), 650.0);
    EXPECT_DOUBLE_EQ(noise.t2For(11), 300.0);
    EXPECT_DOUBLE_EQ(noise.t1For(0), 2400.0);
    EXPECT_DOUBLE_EQ(noise.p0For(3, 4), 0.003);
    EXPECT_DOUBLE_EQ(noise.p0For(4, 3), 0.003);
    // Unlisted pairs fall back to the scalar default.
    EXPECT_DOUBLE_EQ(noise.p0For(0, 5), noise.p0);
}

TEST(Backend, AnalyticFidelityFeelsPerQubitDecoherence)
{
    // One idle window on qubit 0 between its two gates.
    isa::Program p(2);
    p.add(isa::Instruction::timedGate(circuit::Gate::x(0), 0.0,
                                      1.0));
    p.add(isa::Instruction::timedGate(circuit::Gate::x(1), 0.0,
                                      11.0));
    p.add(isa::Instruction::timedGate(
        circuit::Gate::cx(0, 1), 11.0, 1.0));

    isa::NoiseModel noisyQ0;
    noisyQ0.t1PerQubit = {100.0,
                          std::numeric_limits<double>::infinity()};
    isa::NoiseModel clean;
    const double fNoisy = isa::analyticFidelity(p, noisyQ0);
    const double fClean = isa::analyticFidelity(p, clean);
    EXPECT_LT(fNoisy, fClean);
    // Only qubit 0 idles in-window, so the loss matches exp(-dt/T1).
    EXPECT_NEAR(fNoisy / fClean, std::exp(-10.0 / 100.0), 1e-12);

    // Per-edge p0 scales the 2Q depolarizing factor.
    isa::NoiseModel edgy;
    edgy.p0PerEdge[{0, 1}] = 0.01;
    const double fEdge = isa::analyticFidelity(p, edgy);
    EXPECT_NEAR(fEdge / fClean,
                (1.0 - 0.01 * 1.0 / edgy.tau0) /
                    (1.0 - edgy.p0 * 1.0 / edgy.tau0),
                1e-12);
}

// ---------------------------------------------------------------------
// Reconfiguration loop
// ---------------------------------------------------------------------

TEST(Reconfigure, ApplicationCountsMatchNumericDecomposition)
{
    using weyl::WeylCoord;
    const struct
    {
        const char *name;
        WeylCoord coord;
    } targets[] = {
        {"identity", WeylCoord::identity()},
        {"cnot", WeylCoord::cnot()},
        {"iswap", WeylCoord::iswap()},
        {"sqisw", WeylCoord::sqisw()},
        {"b", WeylCoord::bgate()},
        {"swap", WeylCoord::swap()},
        {"generic", {0.55, 0.35, 0.15}},
    };
    for (const auto &cand : backend::gateSetCandidates()) {
        for (const auto &[name, coord] : targets) {
            const std::vector<circuit::Gate> gates =
                synth::su4ToFixedBasis(
                    0, 1, weyl::canonicalGate(coord), cand.op);
            int numeric = 0;
            for (const circuit::Gate &g : gates)
                if (g.is2Q())
                    ++numeric;
            if (gates.empty() && coord.norm1() > 1e-9)
                continue;  // numeric search failed; no information
            EXPECT_EQ(backend::applicationsFor(cand.op, coord),
                      numeric)
                << "basis " << cand.name << ", target " << name;
        }
    }
    EXPECT_THROW(
        backend::applicationsFor(circuit::Op::ISWAP,
                                 weyl::WeylCoord::cnot()),
        std::invalid_argument);
}

TEST(Reconfigure, PerEdgeChoiceDominatesUniformOnEveryEdge)
{
    for (const char *name :
         {"chain8_xy.json", "xx_chain5.json",
          "hetero_heavy_hex.json", "noisy_corner_grid9.json"}) {
        const backend::Backend chip =
            backend::Backend::fromJsonFile(chipPath(name));
        const backend::ReconfigureResult rc =
            backend::reconfigure(chip);
        ASSERT_EQ(rc.table.size(), chip.edges().size()) << name;
        ASSERT_EQ(rc.uniformTable.size(), chip.edges().size());
        for (size_t i = 0; i < rc.table.size(); ++i) {
            EXPECT_GE(rc.table[i].score,
                      rc.uniformTable[i].score - 1e-12)
                << name << " edge " << i;
            EXPECT_EQ(rc.uniformTable[i].op, rc.uniformOp);
        }
        if (chip.isHomogeneous()) {
            EXPECT_FALSE(rc.differsFromUniform()) << name;
        } else {
            EXPECT_TRUE(rc.differsFromUniform()) << name;
        }
    }
}

TEST(Reconfigure, HeterogeneousChipsMixInstructionsAsDesigned)
{
    const backend::Backend hex = backend::Backend::fromJsonFile(
        chipPath("hetero_heavy_hex.json"));
    const backend::ReconfigureResult rc = backend::reconfigure(hex);
    // XY edges keep SQiSW; XX and ZZ-parasitic edges flip to CX.
    EXPECT_EQ(rc.instruction(0, 1).name, "sqisw");
    EXPECT_EQ(rc.instruction(2, 3).name, "cx");
    EXPECT_EQ(rc.instruction(3, 4).name, "cx");
    EXPECT_EQ(rc.instruction(4, 5).name, "sqisw");
    EXPECT_THROW(rc.instruction(0, 7), std::invalid_argument);
    // The pure-XX chain flips chip-wide: uniform == per-edge == cx.
    const backend::Backend xx = backend::Backend::fromJsonFile(
        chipPath("xx_chain5.json"));
    const backend::ReconfigureResult rcXx =
        backend::reconfigure(xx);
    EXPECT_EQ(rcXx.uniformName, "cx");
    EXPECT_FALSE(rcXx.differsFromUniform());
}

TEST(Reconfigure, SolvePulsesFillsConvergedSolutions)
{
    const backend::Backend chip = backend::Backend::uniform(
        route::Topology::chain(2), uarch::Coupling::xy(1.0));
    backend::ReconfigureOptions opts;
    opts.solvePulses = true;
    const backend::ReconfigureResult rc =
        backend::reconfigure(chip, opts);
    ASSERT_EQ(rc.table.size(), 1u);
    EXPECT_TRUE(rc.table[0].pulse.converged);
    EXPECT_NEAR(rc.table[0].pulse.tau, rc.table[0].duration, 1e-9);
}

TEST(Reconfigure, WorkloadFromCircuitsCountsWeylClasses)
{
    circuit::Circuit c(3);
    c.add(circuit::Gate::cx(0, 1));
    c.add(circuit::Gate::cz(1, 2));  // same class as CX
    c.add(circuit::Gate::swap(0, 2));
    c.add(circuit::Gate::h(0));      // 1Q gates are ignored
    const backend::Workload w =
        backend::workloadFromCircuits({c});
    ASSERT_EQ(w.size(), 2u);
    double cnotWeight = 0.0, swapWeight = 0.0;
    for (const auto &[coord, weight] : w) {
        if (coord.approxEqual(weyl::WeylCoord::cnot(), 1e-6))
            cnotWeight = weight;
        if (coord.approxEqual(weyl::WeylCoord::swap(), 1e-6))
            swapWeight = weight;
    }
    EXPECT_NEAR(cnotWeight, 2.0 / 3.0, 1e-12);
    EXPECT_NEAR(swapWeight, 1.0 / 3.0, 1e-12);
}

// ---------------------------------------------------------------------
// Service integration + the acceptance property
// ---------------------------------------------------------------------

namespace
{

std::vector<service::CompileRequest>
exampleQasmBatch()
{
    std::vector<service::CompileRequest> batch;
    for (const char *rel :
         {"examples/qasm/ghz8.qasm", "examples/qasm/qft4.qasm",
          "examples/qasm/adder5.qasm",
          "examples/qasm/ising6.qasm"}) {
        service::CompileRequest req;
        req.name = rel;
        req.qasm = readFile(repoPath(rel));
        req.calibrate = false;
        batch.push_back(std::move(req));
    }
    return batch;
}

} // namespace

TEST(BackendService, RoutesOntoTheChipAndSchedulesPerEdge)
{
    service::ServiceOptions sopts;
    sopts.backend = std::make_shared<const backend::Backend>(
        backend::Backend::fromJsonFile(
            chipPath("hetero_heavy_hex.json")));
    service::CompileService svc(sopts);
    ASSERT_NE(svc.backend(), nullptr);
    ASSERT_NE(svc.reconfiguration(), nullptr);

    std::vector<service::CompileRequest> batch =
        exampleQasmBatch();
    for (auto &req : batch)
        req.schedule = true;
    svc.submitBatch(std::move(batch));
    for (const service::JobResult &r : svc.waitAll()) {
        ASSERT_TRUE(r.ok) << r.name << ": " << r.error;
        EXPECT_TRUE(r.metrics.backend.used);
        // The routed circuit respects the chip topology.
        EXPECT_EQ(r.routed.numQubits(),
                  svc.backend()->numQubits());
        for (const circuit::Gate &g : r.routed) {
            if (g.is2Q()) {
                EXPECT_TRUE(svc.backend()->hasEdge(g.qubits[0],
                                                   g.qubits[1]))
                    << r.name << ": " << g.toString();
            }
        }
        // The timed program validates against the topology too.
        EXPECT_TRUE(r.metrics.schedule.scheduled);
        EXPECT_TRUE(
            r.program.validate(&svc.backend()->topology()).empty());
        // finalLayout is a valid injective wire assignment.
        std::vector<bool> seen(
            static_cast<size_t>(svc.backend()->numQubits()),
            false);
        for (int w : r.finalLayout) {
            ASSERT_GE(w, 0);
            ASSERT_LT(w, svc.backend()->numQubits());
            EXPECT_FALSE(seen[static_cast<size_t>(w)]);
            seen[static_cast<size_t>(w)] = true;
        }
    }
}

TEST(BackendService, AcceptanceReconfiguredBeatsUniformOnHeteroChips)
{
    // The PR's headline property: on every heterogeneous example
    // chip, the reconfigured per-edge gate set estimates >= the
    // fixed uniform gate set on EVERY example circuit and strictly
    // more on at least one.
    for (const char *name :
         {"hetero_heavy_hex.json", "noisy_corner_grid9.json"}) {
        service::ServiceOptions sopts;
        sopts.backend = std::make_shared<const backend::Backend>(
            backend::Backend::fromJsonFile(chipPath(name)));
        service::CompileService svc(sopts);
        svc.submitBatch(exampleQasmBatch());
        int strictly = 0;
        for (const service::JobResult &r : svc.waitAll()) {
            ASSERT_TRUE(r.ok) << name << "/" << r.name << ": "
                              << r.error;
            const auto &b = r.metrics.backend;
            EXPECT_GE(b.fidelityReconfigured,
                      b.fidelityUniform - 1e-12)
                << name << "/" << r.name;
            EXPECT_GT(b.fidelityReconfigured, 0.0);
            if (b.fidelityReconfigured >
                b.fidelityUniform + 1e-9)
                ++strictly;
        }
        EXPECT_GE(strictly, 1)
            << name
            << ": no circuit benefited strictly from per-edge "
               "reconfiguration";
    }
}

TEST(BackendService, HomogeneousChipKeepsThePulseCacheAlive)
{
    service::ServiceOptions sopts;
    sopts.backend = std::make_shared<const backend::Backend>(
        backend::Backend::fromJsonFile(chipPath("chain8_xy.json")));
    service::CompileService svc(sopts);
    std::vector<service::CompileRequest> batch =
        exampleQasmBatch();
    for (auto &req : batch)
        req.calibrate = true;
    svc.submitBatch(std::move(batch));
    for (const service::JobResult &r : svc.waitAll())
        ASSERT_TRUE(r.ok) << r.name << ": " << r.error;
    // Calibration planning ran against the shared pulse cache.
    const compiler::CacheCounters stats = svc.pulseCacheStats();
    EXPECT_GT(stats.hits + stats.misses, 0);
}

TEST(BackendService, EstimateFidelityRejectsUnroutedCircuits)
{
    const backend::Backend chip = backend::Backend::fromJsonFile(
        chipPath("chain8_xy.json"));
    const backend::ReconfigureResult rc =
        backend::reconfigure(chip);
    circuit::Circuit offTopology(8);
    offTopology.add(circuit::Gate::cx(0, 5));
    EXPECT_THROW(
        backend::estimateFidelity(offTopology, chip, rc.table),
        std::invalid_argument);
    circuit::Circuit routed(8);
    routed.add(circuit::Gate::cx(0, 1));
    const double f =
        backend::estimateFidelity(routed, chip, rc.table);
    EXPECT_GT(f, 0.0);
    EXPECT_LT(f, 1.0);
}
