/**
 * @file
 * Tests for tools/obsreport on canned inputs: both --json shapes
 * (bench_service's passes object and reqisc-compile's circuits
 * array), Prometheus histogram reconstruction, Chrome-trace span
 * aggregation, the attribution pipeline (a deliberately slowed
 * hier-synth must rank as top regressor — the same invariant the CI
 * attribution smoke pins end-to-end), the empty-histogram NaN
 * guard, and the baselines gross-regression/sign-flip rule.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "backend/json.hh"
#include "obsreport/report.hh"

using namespace reqisc;
using tools::RunData;

namespace
{

const char *kServiceBase = R"({
  "circuits": 8,
  "memoSpeedup": 10.0,
  "obsEfficiency": 0.99,
  "passSecondsTotal": 1.0,
  "passes": {
    "hier-synth": {"seconds": 0.60, "share": 0.6},
    "synth": {"seconds": 0.30, "share": 0.3},
    "mirror": {"seconds": 0.10, "share": 0.1}
  }
})";

/** Same run with hier-synth slowed ~3x and synth slightly faster. */
const char *kServiceCand = R"({
  "circuits": 8,
  "memoSpeedup": 9.0,
  "obsEfficiency": 0.90,
  "passSecondsTotal": 2.15,
  "passes": {
    "hier-synth": {"seconds": 1.80, "share": 0.837},
    "synth": {"seconds": 0.25, "share": 0.116},
    "mirror": {"seconds": 0.10, "share": 0.047}
  }
})";

const char *kCompileJson = R"({
  "jobs": 2,
  "wallSeconds": 1.5,
  "circuits": [
    {"name": "a", "ok": true, "seconds": 0.5, "passes": [
      {"name": "synth", "seconds": 0.2},
      {"name": "hier-synth", "seconds": 0.3}]},
    {"name": "b", "ok": false, "error": "boom"},
    {"name": "c", "ok": true, "seconds": 0.4, "passes": [
      {"name": "hier-synth", "seconds": 0.4}]}
  ]
})";

const char *kPromText =
    "# HELP reqisc_jobs_total jobs\n"
    "# TYPE reqisc_jobs_total counter\n"
    "reqisc_jobs_total 12\n"
    "# HELP reqisc_queue_depth depth\n"
    "# TYPE reqisc_queue_depth gauge\n"
    "reqisc_queue_depth 2.5\n"
    "# HELP h latency\n"
    "# TYPE h histogram\n"
    "h_bucket{le=\"0.1\"} 2\n"
    "h_bucket{le=\"1\"} 6\n"
    "h_bucket{le=\"+Inf\"} 8\n"
    "h_sum 4.2\n"
    "h_count 8\n"
    "# TYPE empty histogram\n"
    "empty_bucket{le=\"1\"} 0\n"
    "empty_bucket{le=\"+Inf\"} 0\n"
    "empty_sum 0\n"
    "empty_count 0\n";

} // namespace

TEST(ObsReportIngest, BenchServiceShape)
{
    RunData run;
    ingestBenchJson(run, kServiceBase, "svc");
    EXPECT_DOUBLE_EQ(run.passSeconds.at("hier-synth"), 0.60);
    EXPECT_DOUBLE_EQ(run.passSeconds.at("mirror"), 0.10);
    // Scalars are flattened with dotted keys, including the passes
    // object itself (bench/baselines.json addresses
    // "passes.hier-synth.share" exactly this way).
    EXPECT_DOUBLE_EQ(run.scalars.at("memoSpeedup"), 10.0);
    EXPECT_DOUBLE_EQ(run.scalars.at("passes.hier-synth.share"),
                     0.6);
    EXPECT_DOUBLE_EQ(run.scalars.at("circuits"), 8.0);
}

TEST(ObsReportIngest, CompileShapeAggregatesAcrossCircuits)
{
    RunData run;
    ingestBenchJson(run, kCompileJson, "cli");
    EXPECT_DOUBLE_EQ(run.passSeconds.at("hier-synth"), 0.7);
    EXPECT_DOUBLE_EQ(run.passSeconds.at("synth"), 0.2);
    EXPECT_DOUBLE_EQ(run.scalars.at("wallSeconds"), 1.5);
    EXPECT_DOUBLE_EQ(run.scalars.at("circuits.a.seconds"), 0.5);
    EXPECT_DOUBLE_EQ(run.scalars.at("circuits.c.seconds"), 0.4);
    // The failed circuit contributes no passes and no scalar.
    EXPECT_EQ(run.scalars.count("circuits.b.seconds"), 0u);
}

TEST(ObsReportIngest, UnrecognizedShapeThrows)
{
    RunData run;
    EXPECT_THROW(ingestBenchJson(run, R"({"foo": 1})", "x"),
                 backend::JsonError);
    EXPECT_THROW(ingestBenchJson(run, "[1, 2]", "x"),
                 backend::JsonError);
    EXPECT_THROW(ingestBenchJson(run, "not json", "x"),
                 backend::JsonError);
}

TEST(ObsReportIngest, PromTextRebuildsHistograms)
{
    RunData run;
    ingestPromText(run, kPromText);
    EXPECT_DOUBLE_EQ(run.scalars.at("reqisc_jobs_total"), 12.0);
    EXPECT_DOUBLE_EQ(run.scalars.at("reqisc_queue_depth"), 2.5);
    // Histogram series must not leak into the scalar diff.
    EXPECT_EQ(run.scalars.count("h_sum"), 0u);
    EXPECT_EQ(run.scalars.count("h_count"), 0u);

    const obs::HistogramSnapshot &h = run.histograms.at("h");
    EXPECT_EQ(h.count, 8u);
    EXPECT_DOUBLE_EQ(h.sum, 4.2);
    ASSERT_EQ(h.bounds.size(), 2u);
    ASSERT_EQ(h.buckets.size(), 3u);  // cumulative de-accumulated
    EXPECT_EQ(h.buckets[0], 2u);
    EXPECT_EQ(h.buckets[1], 4u);
    EXPECT_EQ(h.buckets[2], 2u);  // +Inf remainder
    // Interpolated median: rank 4 falls 2/4 into (0.1, 1].
    EXPECT_NEAR(h.quantile(0.5), 0.55, 1e-12);

    // The empty histogram reconstructs but has NaN quantiles.
    const obs::HistogramSnapshot &e = run.histograms.at("empty");
    EXPECT_EQ(e.count, 0u);
    EXPECT_TRUE(std::isnan(e.quantile(0.5)));
}

TEST(ObsReportIngest, TraceJsonSumsSpanDurationsByName)
{
    RunData run;
    ingestTraceJson(
        run,
        R"({"traceEvents":[
          {"name":"hier-synth","ph":"X","ts":0,"dur":1000000},
          {"name":"hier-synth","ph":"X","ts":0,"dur":500000},
          {"name":"mirror","ph":"X","ts":0,"dur":250000}
        ],"displayTimeUnit":"ms"})",
        "trace");
    EXPECT_NEAR(run.passSeconds.at("hier-synth"), 1.5, 1e-9);
    EXPECT_NEAR(run.passSeconds.at("mirror"), 0.25, 1e-9);
    EXPECT_THROW(ingestTraceJson(run, R"({"foo":1})", "t"),
                 backend::JsonError);
}

TEST(ObsReport, SlowedHierSynthRanksTopRegressor)
{
    RunData base, cand;
    ingestBenchJson(base, kServiceBase, "base");
    ingestBenchJson(cand, kServiceCand, "cand");
    const tools::Report r = tools::compare(base, cand);

    EXPECT_NEAR(r.totalBaseSeconds, 1.0, 1e-9);
    EXPECT_NEAR(r.totalCandSeconds, 2.15, 1e-9);
    ASSERT_FALSE(r.topRegressors.empty());
    EXPECT_EQ(r.topRegressors[0], "hier-synth");

    ASSERT_FALSE(r.passes.empty());
    const tools::PassDelta &worst = r.passes[0];
    EXPECT_EQ(worst.pass, "hier-synth");
    EXPECT_NEAR(worst.deltaSeconds, 1.2, 1e-9);
    EXPECT_NEAR(worst.ratio, 3.0, 1e-9);
    // 1.2s of a 1.15s total delta: the improvement elsewhere gives
    // the regressor a share slightly above 1 — by design.
    EXPECT_NEAR(worst.shareOfTotalDelta, 1.2 / 1.15, 1e-9);
    // synth got faster: negative delta, sorted last.
    EXPECT_EQ(r.passes.back().pass, "synth");
    EXPECT_LT(r.passes.back().deltaSeconds, 0.0);

    // The scalar diff picks up the changed keys only.
    bool sawMemo = false;
    for (const tools::ScalarDelta &s : r.scalars)
    {
        EXPECT_NE(s.key, "circuits");  // unchanged: not reported
        if (s.key == "memoSpeedup")
        {
            sawMemo = true;
            EXPECT_NEAR(s.delta, -1.0, 1e-9);
        }
    }
    EXPECT_TRUE(sawMemo);
}

TEST(ObsReport, EmptyHistogramsAreSkippedNotDividedByZero)
{
    RunData base, cand;
    ingestPromText(base, kPromText);
    // Candidate run: "h" never got a sample, "empty" stays empty.
    ingestPromText(cand,
                   "# TYPE h histogram\n"
                   "h_bucket{le=\"0.1\"} 0\n"
                   "h_bucket{le=\"1\"} 0\n"
                   "h_bucket{le=\"+Inf\"} 0\n"
                   "h_sum 0\n"
                   "h_count 0\n"
                   "# TYPE empty histogram\n"
                   "empty_bucket{le=\"1\"} 0\n"
                   "empty_bucket{le=\"+Inf\"} 0\n"
                   "empty_sum 0\n"
                   "empty_count 0\n");
    const tools::Report r = tools::compare(base, cand);
    // No quantile shift may be reported from/to a no-sample run.
    EXPECT_TRUE(r.quantiles.empty());
}

TEST(ObsReport, QuantileShiftsReportedWhenBothSidesHaveSamples)
{
    RunData base, cand;
    ingestPromText(base, kPromText);
    ingestPromText(cand,
                   "# TYPE h histogram\n"
                   "h_bucket{le=\"0.1\"} 0\n"
                   "h_bucket{le=\"1\"} 4\n"
                   "h_bucket{le=\"+Inf\"} 8\n"
                   "h_sum 9.0\n"
                   "h_count 8\n");
    const tools::Report r = tools::compare(base, cand);
    ASSERT_EQ(r.quantiles.size(), 3u);  // p50/p95/p99 for "h"
    EXPECT_EQ(r.quantiles[0].metric, "h");
    EXPECT_DOUBLE_EQ(r.quantiles[0].q, 0.5);
    EXPECT_GT(r.quantiles[0].cand, r.quantiles[0].base);
}

TEST(ObsReport, ReportJsonIsParseable)
{
    RunData base, cand;
    ingestBenchJson(base, kServiceBase, "base");
    ingestBenchJson(cand, kServiceCand, "cand");
    const std::string json =
        tools::reportJson(tools::compare(base, cand));
    const backend::JsonValue doc =
        backend::parseJson(json, "report");
    ASSERT_NE(doc.find("obsreport"), nullptr);
    const backend::JsonValue *top = doc.find("topRegressors");
    ASSERT_NE(top, nullptr);
    ASSERT_TRUE(top->isArray());
    ASSERT_FALSE(top->array.empty());
    EXPECT_EQ(top->array[0].str, "hier-synth");
    const backend::JsonValue *total = doc.find("total");
    ASSERT_NE(total, nullptr);
    EXPECT_NEAR(total->find("deltaSeconds")->number, 1.15, 1e-6);
}

TEST(ObsReport, BaselinesGuardAppliesTheCheckRule)
{
    RunData cand;
    ingestBenchJson(cand, kServiceCand, "cand");
    cand.scalars["neg"] = -0.5;
    const backend::JsonValue baselines = backend::parseJson(R"({
      "metrics": [
        {"name": "ok1", "key": "memoSpeedup", "baseline": 10.0,
         "maxRegression": 2.0},
        {"name": "skipme", "key": "absentKey", "baseline": 1.0},
        {"name": "regressed", "key": "obsEfficiency",
         "baseline": 1.0, "maxRegression": 1.05},
        {"name": "flip", "key": "neg", "baseline": 1.0,
         "requirePositive": true},
        {"name": "badmr", "key": "memoSpeedup", "baseline": 1.0,
         "maxRegression": 0},
        {"key": "memoSpeedup"}
      ]
    })");
    std::string out;
    const int failures =
        tools::checkBaselines(baselines, cand, out);
    // regressed (0.90 < 1/1.05), flip, badmr, and the entry with no
    // baseline: four failures; ok1 passes, skipme skips.
    EXPECT_EQ(failures, 4);
    EXPECT_NE(out.find("OK    ok1"), std::string::npos) << out;
    EXPECT_NE(out.find("SKIP  skipme"), std::string::npos) << out;
    EXPECT_NE(out.find("FAIL  regressed: gross regression"),
              std::string::npos)
        << out;
    EXPECT_NE(out.find("FAIL  flip: sign flip"),
              std::string::npos)
        << out;
    EXPECT_NE(out.find("FAIL  badmr: maxRegression"),
              std::string::npos)
        << out;
    EXPECT_NE(out.find("FAIL  metric[5]"), std::string::npos)
        << out;

    // A document without a metrics array is a usage error.
    EXPECT_THROW(tools::checkBaselines(
                     backend::parseJson("{}", "b"), cand, out),
                 backend::JsonError);
}
